package pano

import (
	"context"
	"net/http/httptest"
	"testing"
)

// TestFacadeEndToEnd exercises the full public API surface: generate,
// preprocess, simulate, serve, and stream.
func TestFacadeEndToEnd(t *testing.T) {
	opts := VideoOptions{W: 240, H: 120, FPS: 10, DurationSec: 3}
	v := GenerateVideo(Sports, 1, opts)
	tr := SynthesizeTrace(v, 2)

	m, err := Preprocess(v, []*ViewTrace{tr}, DefaultPreprocess())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != 3 {
		t.Fatalf("chunks = %d", m.NumChunks())
	}

	link := ScaledLink(m, 0.4, 7)
	res, err := Simulate(m, tr, link, NewPanoPlanner(), DefaultSimConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanPSPNR <= 0 {
		t.Errorf("PSPNR = %v", res.MeanPSPNR)
	}

	srv, err := NewServer(m)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	cl := NewClient(ts.URL)
	sres, err := cl.Stream(context.Background(), tr, StreamConfig{MaxChunks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.Chunks) != 2 || sres.TotalBytes == 0 {
		t.Errorf("stream result: %d chunks, %d bytes", len(sres.Chunks), sres.TotalBytes)
	}
}

func TestFacadeJND(t *testing.T) {
	p := DefaultJND()
	if p.ActionRatio(JNDFactors{}) != 1 {
		t.Error("static action ratio should be 1")
	}
	if p.ActionRatio(JNDFactors{SpeedDegS: 20}) <= 1 {
		t.Error("fast motion should raise the ratio")
	}
}

func TestFacadeBaselines(t *testing.T) {
	if NewViewportPlanner().Name() == "" || NewWholePlanner().Name() == "" {
		t.Error("planners should be named")
	}
	tr := SynthesizeLTE(1, 60, 1.05)
	if tr.Mean() < 1.0 || tr.Mean() > 1.1 {
		t.Errorf("LTE mean = %v", tr.Mean())
	}
	if NewLink(tr).MeanThroughput() <= 0 {
		t.Error("link throughput")
	}
}
