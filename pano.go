// Package pano is a Go implementation of Pano (Guan et al., SIGCOMM
// 2019): a 360° video streaming system that models how users actually
// perceive 360° video quality — accounting for viewpoint-moving speed,
// luminance changes, and depth-of-field differences — and uses that
// model to save bandwidth or raise perceived quality.
//
// The library is organized as a pipeline:
//
//	video → Preprocess (tiling + PSPNR lookup table) → manifest
//	manifest → Serve (DASH-style HTTP) → Stream (adaptive client)
//	manifest + traces → Simulate (trace-driven evaluation)
//
// An optional edge cache tier (NewEdge, cmd/pano-edge) slots between
// Serve and Stream: the same HTTP interface, with tile fetches
// coalesced, cached, and prefetched close to the clients.
//
// The package root re-exports the stable surface of the internal
// packages; see the examples directory for end-to-end programs, and
// cmd/pano-bench for the paper's full evaluation suite.
package pano

import (
	"context"
	"io"
	"net/http"

	"pano/internal/chaos"
	"pano/internal/edge"
	"pano/internal/fleet"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/nettrace"
	"pano/internal/obs"
	"pano/internal/parallel"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/sim"
	"pano/internal/swarm"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"

	panoclient "pano/internal/client"
)

// Core data types.
type (
	// Video is a synthetic 360° video with analytic ground truth
	// (objects, luminance, depth) standing in for real footage.
	Video = scene.Video
	// Genre labels video content categories (Table 2).
	Genre = scene.Genre
	// VideoOptions sizes generated videos.
	VideoOptions = scene.Options
	// Manifest is the DASH-style manifest with the PSPNR lookup table.
	Manifest = manifest.Video
	// ViewTrace is a viewpoint trajectory.
	ViewTrace = viewport.Trace
	// NetTrace is a bandwidth trace.
	NetTrace = nettrace.Trace
	// Link is an emulated download link over a NetTrace.
	Link = nettrace.Link
	// JNDProfile holds the 360JND multiplier curves of §4.
	JNDProfile = jnd.Profile
	// JNDFactors are the three viewpoint-driven quantities.
	JNDFactors = jnd.Factors
	// Planner decides per-tile quality levels (Pano or a baseline).
	Planner = player.Planner
	// SessionResult summarizes a simulated playback session.
	SessionResult = sim.Result
	// SimConfig tunes a simulated session.
	SimConfig = sim.Config
	// PreprocessConfig tunes offline preprocessing.
	PreprocessConfig = provider.Config
	// Server serves an encoded video over HTTP.
	Server = server.Server
	// Client streams from a Server.
	Client = panoclient.Client
	// StreamConfig tunes an HTTP streaming session.
	StreamConfig = panoclient.StreamConfig
	// StreamResult summarizes an HTTP streaming session.
	StreamResult = panoclient.StreamResult
	// FetchPolicy tunes the client's resilient tile pipeline: per-attempt
	// deadlines from buffer occupancy, capped jittered backoff, and the
	// degrade-to-lowest-then-skip ladder. Set via StreamConfig.Fetch; the
	// zero value selects DefaultFetchPolicy.
	FetchPolicy = panoclient.FetchPolicy
	// ChaosProfile configures the deterministic fault-injection
	// middleware (per-endpoint error/abort/truncate/stall rates, latency,
	// throttling, flaky windows).
	ChaosProfile = chaos.Profile
	// ChaosRule is the fault mix for one endpoint class.
	ChaosRule = chaos.Rule
	// ChaosWindow is the request-sequence flaky schedule.
	ChaosWindow = chaos.Window
	// ChaosInjector wraps an http.Handler with a ChaosProfile's faults.
	ChaosInjector = chaos.Injector
	// Metrics is the zero-dependency observability registry; pass it
	// via SimConfig.Obs, StreamConfig.Obs, or NewServerWith to collect
	// QoE metrics and scrape them in Prometheus format. nil disables.
	Metrics = obs.Registry
	// EventLog is the structured session event logger (log/slog based,
	// with an in-memory ring buffer for assertions).
	EventLog = obs.EventLog
	// JNDFieldCache is the size-bounded concurrent cache of per-chunk
	// content-JND fields; pass it via SimConfig.FieldCache so repeated
	// PSPNR scoring stops recomputing C(i,j). Hit/miss/eviction
	// counters register in the obs registry it was built with.
	JNDFieldCache = jnd.FieldCache
	// Tracer records streaming sessions as span trees (session → chunk →
	// estimate/mpc/assign/fetch/stitch, plus per-tile fetch attempts and
	// server-side handler spans stitched over the W3C traceparent
	// header). Pass it via SimConfig.Trace, StreamConfig.Trace, or
	// server.WithTracer; nil disables tracing at zero cost.
	Tracer = trace.Tracer
	// TracerConfig tunes a Tracer (sampling, store bounds, obs/event-log
	// sinks).
	TracerConfig = trace.Config
	// TraceData is one finished trace (all spans, cloned out of the
	// store).
	TraceData = trace.TraceData
	// Edge is the caching reverse proxy between clients and an origin
	// Server: byte-budgeted LRU cache with TTLs and negative caching,
	// singleflight request coalescing, ETag revalidation (304 fast
	// path), serve-stale on origin faults, and prediction-driven
	// next-chunk tile prefetch (cross-user consensus when peer traces
	// are configured).
	Edge = edge.Edge
	// EdgeConfig tunes an Edge (origin URL, cache budget, TTLs, origin
	// FetchPolicy, prefetch budget and peer traces, observability).
	EdgeConfig = edge.Config
	// TelemetrySampler periodically scrapes a Metrics registry into
	// windowed ring-buffer series, samples Go runtime health, and
	// evaluates SLO burn rates (ok/warn/page with flap damping); serve
	// its SLOHandler/DashHandler or pass it to server.WithTelemetry /
	// EdgeConfig.Telemetry for /debug/slo and /debug/dash. A nil sampler
	// is a valid no-op.
	TelemetrySampler = telemetry.Sampler
	// TelemetryConfig tunes a TelemetrySampler (registry, scrape
	// interval, retained window, SLO set, event/trace sinks).
	TelemetryConfig = telemetry.Config
	// SLO is one declarative objective (rate, floor, ceiling, or
	// quantile) with burn windows and alert thresholds.
	SLO = telemetry.SLO
	// SLOStatus is one SLO's current evaluation, as served by /debug/slo.
	SLOStatus = telemetry.SLOStatus
	// Clock abstracts how the streaming client observes and spends
	// time; the default RealClock is the wall clock, and
	// internal/swarm's virtual clock drives the same session loop in
	// discrete-event time.
	Clock = panoclient.Clock
	// Transport abstracts how the streaming client moves bytes: the
	// HTTP Client is one implementation, the swarm's logical network
	// emulator is another.
	Transport = panoclient.Transport
	// SwarmConfig describes a virtual-time population run: one
	// manifest, pools of viewport and bandwidth traces, a fault
	// profile, and a session count (100k–1M sessions in one process).
	SwarmConfig = swarm.Config
	// SwarmReport is a swarm run's outcome: the deterministic
	// population Summary (byte-identical for a given config at any
	// worker count) plus wall-clock throughput figures.
	SwarmReport = swarm.Report
	// SwarmSummary is the deterministic population rollup (QoE
	// quantiles, rebuffer ratio, concurrency curve, origin load).
	SwarmSummary = swarm.Summary
	// FleetConfig tunes a sharded origin fleet (origin URLs, breaker
	// and probe settings, hedging policy); set EdgeConfig.Origins to
	// route an edge's cache fills through one.
	FleetConfig = fleet.Config
	// Fleet is the sharded origin delivery layer: consistent-hash
	// placement, health-checked circuit breakers, hedged fetches, and
	// a token-bucket retry/hedge budget.
	Fleet = fleet.Fleet
	// SwarmFleetConfig reshards a swarm run's virtual origin the same
	// way (ring placement, per-session breakers, outage schedules).
	SwarmFleetConfig = swarm.FleetConfig
)

// NewJNDFieldCache returns a content-JND field cache holding at most
// maxEntries fields (<= 0 selects a default); reg may be nil.
func NewJNDFieldCache(maxEntries int, reg *Metrics) *JNDFieldCache {
	return jnd.NewFieldCache(maxEntries, reg)
}

// SetParallelism overrides the worker count the pixel kernels
// (content-JND fields, PSPNR reductions, tile scoring, offline
// preprocessing) use, returning the previous value. n <= 0 reverts to
// GOMAXPROCS. The kernels are bit-identical for every worker count.
func SetParallelism(n int) int { return parallel.SetWorkers(n) }

// Parallelism returns the current kernel worker count.
func Parallelism() int { return parallel.Workers() }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// NewEventLog returns an event log retaining the last ringSize events
// (a default when <= 0) and optionally mirroring JSON lines to w.
func NewEventLog(w io.Writer, ringSize int) *EventLog { return obs.NewEventLog(w, ringSize) }

// NewServerWith is NewServer with observability attached: the server
// exposes /metrics and records per-endpoint request metrics into reg.
func NewServerWith(m *Manifest, reg *Metrics) (*Server, error) {
	return server.New(m, server.WithObs(reg))
}

// Genres.
const (
	Sports      = scene.Sports
	Performance = scene.Performance
	Documentary = scene.Documentary
	Tourism     = scene.Tourism
	Adventure   = scene.Adventure
	Science     = scene.Science
	Gaming      = scene.Gaming
)

// GenerateVideo creates a deterministic synthetic 360° video.
func GenerateVideo(g Genre, seed uint64, opts VideoOptions) *Video {
	return scene.Generate(g, seed, opts)
}

// DefaultVideoOptions returns the evaluation default geometry.
func DefaultVideoOptions() VideoOptions { return scene.DefaultOptions() }

// SynthesizeTrace generates a viewpoint trace for a video following the
// paper's object-tracking behaviour model (§8.5).
func SynthesizeTrace(v *Video, seed uint64) *ViewTrace {
	return viewport.Synthesize(v, seed, viewport.DefaultSynthesizeOpts())
}

// DefaultJND returns the paper-calibrated 360JND profile (§4.2).
func DefaultJND() *JNDProfile { return jnd.Default() }

// DefaultPreprocess returns Pano's preprocessing defaults: variable
// tiling with N=30 tiles, 1 s chunks, 1-in-10 frame sampling.
func DefaultPreprocess() PreprocessConfig { return provider.DefaultConfig() }

// Preprocess runs the provider pipeline (§5, §6.3): tiling, per-tile
// encoding sizes, and the compressed PSPNR lookup table.
func Preprocess(v *Video, history []*ViewTrace, cfg PreprocessConfig) (*Manifest, error) {
	return provider.Preprocess(v, history, cfg)
}

// NewPanoPlanner returns Pano's tile-level quality planner (§6.1).
func NewPanoPlanner() Planner { return player.NewPanoPlanner() }

// NewViewportPlanner returns the viewport-driven baseline planner
// (Flare-style distance-based allocation).
func NewViewportPlanner() Planner { return player.NewViewportPlanner("viewport-driven") }

// NewWholePlanner returns the whole-video baseline planner.
func NewWholePlanner() Planner { return player.WholePlanner{} }

// SynthesizeLTE generates an LTE-like bandwidth trace scaled to a mean
// throughput in Mbps.
func SynthesizeLTE(seed uint64, durationSec int, meanMbps float64) *NetTrace {
	return nettrace.SynthesizeLTE(seed, durationSec, meanMbps)
}

// NewLink wraps a bandwidth trace as an emulated download link.
func NewLink(t *NetTrace) *Link { return nettrace.NewLink(t) }

// ScaledLink builds a link whose mean throughput is frac times the
// video's top-level bitrate — the operating band of the paper's
// cellular traces (see DESIGN.md).
func ScaledLink(m *Manifest, frac float64, seed uint64) *Link {
	return sim.ScaledLink(m, frac, seed)
}

// DefaultSimConfig returns the default session configuration (2 s
// buffer target).
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// Simulate runs a trace-driven playback session and reports delivered
// quality, buffering, and bandwidth.
func Simulate(m *Manifest, tr *ViewTrace, link *Link, pl Planner, cfg SimConfig) (*SessionResult, error) {
	return sim.Run(m, tr, link, pl, cfg)
}

// NewServer returns an HTTP server for an encoded video.
func NewServer(m *Manifest) (*Server, error) { return server.New(m) }

// NewClient returns a streaming client for a server base URL.
func NewClient(baseURL string) *Client { return panoclient.New(baseURL) }

// NewEdge returns the edge cache tier for cfg.Origin; mount
// Edge.Handler and Close when done. cfg.CacheBytes = 0 degrades to a
// byte-transparent pass-through proxy. See cmd/pano-edge for the
// standalone binary.
func NewEdge(cfg EdgeConfig) (*Edge, error) { return edge.New(cfg) }

// DefaultFetchPolicy returns the client's default resilience knobs
// (3 attempts per ladder rung, 50ms-1s jittered backoff, buffer-derived
// attempt deadlines capped at 5s).
func DefaultFetchPolicy() FetchPolicy { return panoclient.DefaultFetchPolicy() }

// NewChaosInjector returns a fault-injection middleware for the
// profile; wrap any handler (typically Server.Handler) with Wrap. reg
// may be nil.
func NewChaosInjector(p ChaosProfile, reg *Metrics) *ChaosInjector {
	return chaos.New(p, chaos.WithObs(reg))
}

// ParseChaos parses the compact comma-separated chaos spec used by the
// pano-server -chaos flag, e.g. "seed=7,tile-error=0.1,tile-latency=20ms".
func ParseChaos(spec string) (ChaosProfile, error) { return chaos.Parse(spec) }

// NewTracer returns a span tracer. The zero TracerConfig samples every
// trace and keeps the most recent 64 in memory.
func NewTracer(cfg TracerConfig) *Tracer { return trace.New(cfg) }

// TraceHTTP wraps an http.Handler so requests carrying a W3C
// traceparent header (injected by a traced Client) get a server-side
// handler span in the same trace. Wrap it OUTSIDE chaos middleware so
// injected faults annotate the handler span.
func TraceHTTP(t *Tracer, next http.Handler) http.Handler { return trace.Middleware(t, next) }

// WriteChromeTrace renders finished traces (Tracer.Traces) as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing.
func WriteChromeTrace(w io.Writer, traces ...*TraceData) error {
	return trace.WriteChromeTrace(w, traces...)
}

// NewTelemetry returns a windowed-telemetry sampler over a Metrics
// registry (nil registry yields the no-op nil sampler). Call Start for
// wall-clock sampling or Step for deterministic logical time, and Stop
// on shutdown.
func NewTelemetry(cfg TelemetryConfig) *TelemetrySampler { return telemetry.New(cfg) }

// DefaultSLOs returns the stock QoE objective set (rebuffer ratio,
// viewport-PSPNR floor, tile-fetch p99, edge hit ratio, session abort
// rate), each annotated with the paper claim it guards.
func DefaultSLOs() []SLO { return telemetry.DefaultSLOs() }

// ParseSLOs parses the compact -slo flag grammar ("default",
// "rebuffer<=0.02;edge_hit=off", window/burn suffixes) into an SLO
// set; "" disables telemetry.
func ParseSLOs(spec string) ([]SLO, error) { return telemetry.ParseSLOs(spec) }

// RunSwarm simulates a population of streaming sessions in virtual
// time on a worker pool: every session runs the real client loop
// (estimate → MPC → assign → fetch → stitch → QoE) against a logical
// network, and the aggregated Summary is deterministic — byte-identical
// for the same SwarmConfig at any worker count.
func RunSwarm(ctx context.Context, cfg SwarmConfig) (*SwarmReport, error) {
	return swarm.Run(ctx, cfg)
}
