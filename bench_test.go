package pano

// One benchmark per paper table/figure (DESIGN.md §3 maps ids to
// artifacts), plus ablation and micro benchmarks on the core paths.
// Each experiment bench regenerates its table once per iteration on a
// shared quick-scale dataset, and reports the headline numbers via
// b.ReportMetric so `go test -bench` output doubles as a results sheet.

import (
	"sync"
	"testing"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/experiments"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/quality"
	"pano/internal/scene"
	"pano/internal/sim"
	"pano/internal/tiling"
	"pano/internal/viewport"
)

var (
	benchOnce sync.Once
	benchDS   *experiments.Dataset
)

func benchDataset(b *testing.B) *experiments.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		s := experiments.QuickScale()
		s.TracedVideos = 3
		s.TotalVideos = 7
		s.Users = 2
		s.DurationSec = 8
		benchDS = experiments.NewDataset(s)
	})
	return benchDS
}

func runExperiment(b *testing.B, id string) {
	d := benchDataset(b)
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(d, id); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Paper figures and tables ---

func BenchmarkFig1PSPNRvsBuffering(b *testing.B) {
	d := benchDataset(b)
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Fig1(d)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.System == experiments.SysPano {
				b.ReportMetric(r.PSPNR, "pano_dB")
				b.ReportMetric(r.BufferingRatio, "pano_buf%")
			}
		}
	}
}

func BenchmarkFig3FactorCDFs(b *testing.B)         { runExperiment(b, "fig3") }
func BenchmarkFig4TilingOverhead(b *testing.B)     { runExperiment(b, "fig4") }
func BenchmarkFig6JNDFactors(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7JointJND(b *testing.B)           { runExperiment(b, "fig7") }
func BenchmarkFig8MOSAccuracy(b *testing.B)        { runExperiment(b, "fig8") }
func BenchmarkFig10SpeedBound(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkFig13MOSByGenre(b *testing.B)        { runExperiment(b, "fig13") }
func BenchmarkFig15TraceDriven(b *testing.B)       { runExperiment(b, "fig15") }
func BenchmarkFig16aNoiseError(b *testing.B)       { runExperiment(b, "fig16a") }
func BenchmarkFig16bUserSpread(b *testing.B)       { runExperiment(b, "fig16b") }
func BenchmarkFig16cNoiseSweep(b *testing.B)       { runExperiment(b, "fig16c") }
func BenchmarkFig16dThroughputError(b *testing.B)  { runExperiment(b, "fig16d") }
func BenchmarkFig17aClientOverhead(b *testing.B)   { runExperiment(b, "fig17a") }
func BenchmarkFig17bStartupDelay(b *testing.B)     { runExperiment(b, "fig17b") }
func BenchmarkFig17cPreprocessing(b *testing.B)    { runExperiment(b, "fig17c") }
func BenchmarkFig18aComponentwise(b *testing.B)    { runExperiment(b, "fig18a") }
func BenchmarkFig18bBandwidthByGenre(b *testing.B) { runExperiment(b, "fig18b") }
func BenchmarkTable2Dataset(b *testing.B)          { runExperiment(b, "tab2") }
func BenchmarkTable3MOSMap(b *testing.B)           { runExperiment(b, "tab3") }
func BenchmarkLookupTableCompression(b *testing.B) { runExperiment(b, "lut") }

func BenchmarkTileAllocationPruning(b *testing.B) { runExperiment(b, "prune") }

func BenchmarkFig14Snapshot(b *testing.B) {
	d := benchDataset(b)
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		if _, _, err := experiments.Fig14(d, dir); err != nil {
			b.Fatal(err)
		}
	}
}

// Extensions beyond the paper (EXPERIMENTS.md).
func BenchmarkJoint3FactorJND(b *testing.B)     { runExperiment(b, "joint3") }
func BenchmarkCrossUserPrediction(b *testing.B) { runExperiment(b, "crossuser") }

// --- Ablations (DESIGN.md §3) ---

// BenchmarkAblationTileCount varies N, the number of variable-size
// tiles, around the paper's default of 30.
func BenchmarkAblationTileCount(b *testing.B) {
	v := scene.Generate(scene.Sports, 3, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 4})
	tr := viewport.Synthesize(v, 1, viewport.DefaultSynthesizeOpts())
	for _, n := range []int{10, 30, 60} {
		b.Run(benchName("tiles", n), func(b *testing.B) {
			cfg := provider.DefaultConfig()
			cfg.Tiles = n
			m, err := provider.Preprocess(v, []*viewport.Trace{tr}, cfg)
			if err != nil {
				b.Fatal(err)
			}
			link := sim.ScaledLink(m, sim.Trace1Frac, 5)
			var pspnr float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sim.Run(m, tr, link, player.NewPanoPlanner(), sim.DefaultConfig())
				if err != nil {
					b.Fatal(err)
				}
				pspnr = res.MeanPSPNR
			}
			b.ReportMetric(pspnr, "dB")
		})
	}
}

// BenchmarkAblationSampling compares per-frame PSPNR preprocessing with
// the paper's 1-in-10 sampling (§6.3).
func BenchmarkAblationSampling(b *testing.B) {
	v := scene.Generate(scene.Documentary, 5, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 2})
	tr := viewport.Synthesize(v, 1, viewport.DefaultSynthesizeOpts())
	for _, stride := range []int{1, 10} {
		b.Run(benchName("stride", stride), func(b *testing.B) {
			cfg := provider.DefaultConfig()
			cfg.FrameStride = stride
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := provider.Preprocess(v, []*viewport.Trace{tr}, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBoundKind compares the conservative lower-bound
// factor estimate against a best-guess estimate in the allocator.
func BenchmarkAblationBoundKind(b *testing.B) {
	d := benchDataset(b)
	vi := d.TracedIndices()[0]
	m, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		b.Fatal(err)
	}
	tr := d.Traces(vi)[0]
	est := player.NewEstimator()
	for _, kind := range []string{"lower-bound", "best-guess"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			pl := player.NewPanoPlanner()
			var total float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < m.NumChunks(); k++ {
					now := float64(k) * m.ChunkSec
					var view player.ChunkView
					if kind == "lower-bound" {
						view = est.View(m, tr, k, now)
					} else {
						view = est.BestGuessView(m, tr, k, now)
					}
					alloc := pl.Plan(m, k, view, m.ChunkBits(k, codec.Level(2)))
					actual := est.ActualView(m, tr, k)
					total += player.ViewportPSPNR(m, k, alloc, actual, jnd.Default())
				}
			}
			b.ReportMetric(total/float64(b.N*m.NumChunks()), "dB")
		})
	}
}

// BenchmarkAblationController compares the §6.1 MPC against BOLA as the
// chunk-level bitrate algorithm under identical tile allocation.
func BenchmarkAblationController(b *testing.B) {
	d := benchDataset(b)
	vi := d.TracedIndices()[0]
	m, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		b.Fatal(err)
	}
	tr := d.Traces(vi)[0]
	link := sim.ScaledLink(m, sim.Trace1Frac, 9)
	for _, kind := range []string{"mpc", "bola"} {
		kind := kind
		b.Run(kind, func(b *testing.B) {
			var pspnr, stall float64
			for i := 0; i < b.N; i++ {
				cfg := sim.DefaultConfig()
				cfg.Scene = d.Video(vi)
				if kind == "bola" {
					cfg.Controller = abr.NewBOLA(cfg.BufferTargetSec + 1)
				}
				res, err := sim.Run(m, tr, link, player.NewPanoPlanner(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				pspnr = res.MeanPSPNR
				stall = res.StallSec
			}
			b.ReportMetric(pspnr, "dB")
			b.ReportMetric(stall, "stall_s")
		})
	}
}

// --- Micro-benchmarks on the hot paths ---

func BenchmarkEncoderDistortFrame(b *testing.B) {
	v := scene.Generate(scene.Sports, 1, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	e := codec.NewEncoder()
	r := geom.Rect{X1: f.W, Y1: f.H}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.DistortRegion(f, r, 32); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncoderRateFrame(b *testing.B) {
	v := scene.Generate(scene.Sports, 1, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	e := codec.NewEncoder()
	r := geom.Rect{X1: f.W, Y1: f.H}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.FrameRegionBits(f, r, 32)
	}
}

func BenchmarkPSPNRFrame(b *testing.B) {
	v := scene.Generate(scene.Sports, 1, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	r := geom.Rect{X1: f.W, Y1: f.H}
	enc, err := codec.NewEncoder().DistortRegion(f, r, 32)
	if err != nil {
		b.Fatal(err)
	}
	prof := jnd.Default()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := quality.TilePSPNR(prof, f, enc, r, jnd.Factors{SpeedDegS: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVariableTiling(b *testing.B) {
	rng := mathx.NewRNG(9)
	scores := make([][]float64, tiling.UnitRows)
	for r := range scores {
		scores[r] = make([]float64, tiling.UnitCols)
		for c := range scores[r] {
			scores[r][c] = rng.Range(0, 10)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tiling.VariableTiling(scores, tiling.DefaultTiles); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocators(b *testing.B) {
	rng := mathx.NewRNG(4)
	tiles := make([]abr.TileChoice, 30)
	for i := range tiles {
		base := rng.Range(1e4, 2e5)
		cost := rng.Range(1, 30)
		for l := 0; l < codec.NumLevels; l++ {
			tiles[i].Bits[l] = base / float64(uint(1)<<uint(l))
			tiles[i].Cost[l] = cost * float64(uint(1)<<uint(l))
		}
	}
	budget := abr.TotalBits(tiles, make(abr.Allocation, 30)) / 2
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			abr.AllocatePruned(tiles, budget, 0)
		}
	})
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			abr.AllocateGreedy(tiles, budget)
		}
	})
	b.Run("exhaustive8", func(b *testing.B) {
		sub := tiles[:8]
		subBudget := budget * 8 / 30
		for i := 0; i < b.N; i++ {
			if _, err := abr.AllocateExhaustive(sub, subBudget); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkViewpointPrediction(b *testing.B) {
	v := scene.Generate(scene.Sports, 2, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 20})
	tr := viewport.Synthesize(v, 3, viewport.DefaultSynthesizeOpts())
	p := viewport.NewPredictor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Predict(tr, 10, 1.5)
	}
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "-0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "-" + string(buf[i:])
}
