# Development targets. `make check` is the gate every change must pass:
# vet, formatting, and the full test suite under the race detector
# (which exercises the concurrent obs registry, among others).

GO ?= go

.PHONY: build test check vet fmt race bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -short skips only the full paper-evaluation registry sweep (which
# exceeds go test's default timeout under the ~10x race slowdown);
# everything else — including the dedicated multi-goroutine registry
# tests in internal/obs — runs with the race detector on.
race:
	$(GO) test -race -short ./...

check: vet fmt race

# Quick-scale paper evaluation; writes BENCH_<id>.json files.
bench: build
	$(GO) run ./cmd/pano-bench -scale quick

clean:
	rm -f BENCH_*.json
	rm -rf fig14-out
