# Development targets. `make check` is the gate every change must pass:
# vet, formatting, and the full test suite under the race detector
# (which exercises the concurrent obs registry, among others).

GO ?= go

.PHONY: build test check vet fmt race race-kernels chaos trace edge dash swarm fleet cluster live benchdiff bench microbench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Fails if any file needs reformatting.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# -short skips only the full paper-evaluation registry sweep (which
# exceeds go test's default timeout under the ~10x race slowdown);
# everything else — including the dedicated multi-goroutine registry
# tests in internal/obs — runs with the race detector on.
race:
	$(GO) test -race -short ./...

# The parallel pixel pipeline and its golden/property suite run in full
# (no -short) under the race detector: worker pool, field cache, and
# the serial≡parallel properties at explicit worker counts.
race-kernels:
	$(GO) test -race ./internal/parallel ./internal/jnd ./internal/quality ./internal/tiling

# The fault-injection suite under the race detector: the chaos
# middleware itself plus the client's resilient fetch pipeline
# (retry/degrade/skip ladder, concurrent-session stress).
chaos:
	$(GO) test -race ./internal/chaos -run . -count 1
	$(GO) test -race ./internal/client -run 'Chaos|Retry|Degrade|Skip|Resilient|Throughput' -count 1

# One traced session end to end: a seeded simulator run (per-phase
# latency breakdown lands in BENCH_trace.json) plus a chaos-wrapped HTTP
# session whose client and server spans stitch into one trace. The
# exported trace.perfetto.json is shape-validated and loads in Perfetto
# (ui.perfetto.dev) or chrome://tracing.
trace:
	$(GO) run ./cmd/pano-bench -scale quick trace

# The edge cache tier: the coalescing/prefetch suites under the race
# detector (stampede stress: N concurrent misses, exactly one origin
# fetch), then the origin-offload experiment (20 concurrent overlapping
# sessions direct vs via edge; lands in BENCH_edge.json).
edge:
	$(GO) test -race ./internal/edge ./internal/graceful -count 1
	$(GO) run ./cmd/pano-bench -scale quick edge

# The telemetry layer: windowed-store, burn-rate, and handler suites
# (including the scrape-while-serving SSE stress) under the race
# detector, then the telemetry experiment — healthy → chaos → recovery
# in logical time, with the rebuffer SLO paging and recovering and the
# sampler's Step overhead measured (lands in BENCH_telemetry.json).
dash:
	$(GO) test -race ./internal/telemetry ./internal/obs -count 1
	$(GO) run ./cmd/pano-bench -scale quick telemetry

# The virtual-time swarm: the determinism lockdown (byte-identical
# summaries across runs and worker counts), the sim-equivalence
# property, and the client clock-audit under the race detector; then
# the population-scaling experiment (1k → 1M sessions, lands in
# BENCH_swarm.json) gated against the committed baseline. Wall-clock
# columns measure the machine, not the system, so the gate ignores
# them.
swarm:
	$(GO) test -race ./internal/swarm ./internal/viewport -count 1
	$(GO) test -race ./internal/client -run 'Clock|WallClock|Session' -count 1
	$(GO) run ./cmd/pano-bench -scale quick swarm
	$(GO) run ./cmd/pano-benchdiff -threshold 0.10 \
		-ignore wall_sec,sessions_per_wall_sec \
		baseline/BENCH_swarm.json BENCH_swarm.json

# The origin fleet: ring/breaker/budget/hedge suites and the edge
# failover tests under the race detector, then the fleet resilience
# experiment (4 shards, one killed mid-run, swarm + live scenarios,
# lands in BENCH_fleet.json) gated against the committed baseline.
# live_reqs, breaker_open_ms, and wall_sec measure the machine, not
# the system, so the gate ignores them.
fleet:
	$(GO) test -race ./internal/fleet -count 1
	$(GO) test -race ./internal/edge -run 'Fleet|Outage|Hedge' -count 1
	$(GO) test -race ./internal/swarm -run Fleet -count 1
	$(GO) run ./cmd/pano-bench -scale quick fleet
	$(GO) run ./cmd/pano-benchdiff -threshold 0.10 \
		-ignore live_reqs,breaker_open_ms,wall_sec \
		baseline/BENCH_fleet.json BENCH_fleet.json

# The cluster observability plane: the /metrics text parser (incl. the
# checked-in real-exposition fuzz corpus), federation scraper, and
# cross-process trace assembly suites under the race detector, then the
# cluster experiment — five live processes scraped by an obsd plane, an
# origin killed and revived, fleet-wide SLOs paging on the merged
# series, and the rollup proven bit-exact against per-process sums
# (lands in BENCH_cluster.json) gated against the committed baseline.
# The info column carries wall-clock detail (page steps, span counts),
# so the gate ignores it.
cluster:
	$(GO) test -race ./internal/obs ./internal/telemetry ./internal/trace -count 1
	$(GO) run ./cmd/pano-bench -scale quick cluster
	$(GO) run ./cmd/pano-benchdiff -threshold 0.10 \
		-ignore info \
		baseline/BENCH_cluster.json BENCH_cluster.json

# The live-streaming subsystem: the content-addressed store (incl. the
# crash-recovery suite), the JIT pipeline, and the live client/edge
# behaviour under the race detector, then the live experiment — publish
# punctuality, graceful degradation under an impossible deadline, the
# two-origins-one-store byte/ETag proof, and an origin killed mid-feed
# under real live sessions (lands in BENCH_live.json) gated against the
# committed baseline. lat_*, pub_ms, and wall_sec measure the machine
# (the feed clock is compressed), so the gate ignores them.
live:
	$(GO) test -race ./internal/store ./internal/live -count 1
	$(GO) test -race ./internal/client -run Live -count 1
	$(GO) test -race ./internal/edge -run 'Live|Prefetch' -count 1
	$(GO) run ./cmd/pano-bench -scale quick live
	$(GO) run ./cmd/pano-benchdiff -threshold 0.10 \
		-ignore lat_mean_s,lat_max_s,pub_ms,wall_sec \
		baseline/BENCH_live.json BENCH_live.json

# Compare two benchmark runs: files or directories of BENCH_*.json.
# Usage: make benchdiff OLD=baseline/ NEW=. [THRESHOLD=0.10]
THRESHOLD ?= 0.10
benchdiff:
	$(GO) run ./cmd/pano-benchdiff -threshold $(THRESHOLD) $(OLD) $(NEW)

check: vet fmt race race-kernels chaos trace edge dash swarm fleet cluster live

# Quick-scale paper evaluation; writes BENCH_<id>.json files.
bench: build microbench
	$(GO) run ./cmd/pano-bench -scale quick

# Kernel micro-benchmarks (serial vs parallel vs cached); appends to
# BENCH_micro.txt with the commit hash so runs diff across commits with
# benchstat or plain text tools.
microbench:
	@echo "## $$(git rev-parse --short HEAD 2>/dev/null || echo dirty) $$(date -u +%Y-%m-%dT%H:%M:%SZ)" >> BENCH_micro.txt
	$(GO) test -run XXX -bench 'ContentField|FieldCache|TilePSPNR|Plan' -benchmem \
		./internal/jnd ./internal/quality ./internal/tiling | tee -a BENCH_micro.txt

clean:
	rm -f BENCH_*.json BENCH_micro.txt trace.perfetto.json cluster.perfetto.json
	rm -rf fig14-out
