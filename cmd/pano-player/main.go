// Command pano-player streams a 360° video from a pano-server and
// prints per-chunk adaptation decisions and QoE accounting.
//
// Usage:
//
//	pano-player [-url http://127.0.0.1:8360] [-planner pano|viewport|whole]
//	            [-buffer 2] [-chunks 0] [-trace-seed 3]
//	            [-events] [-metrics] [-trace-out session.json]
//
// -events mirrors the session's structured event log as JSON lines on
// stderr; -metrics dumps the session's metrics in Prometheus text
// exposition format on exit; -trace-out records the session as a span
// tree and writes it as Chrome trace-event JSON (open in Perfetto or
// chrome://tracing).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"pano/internal/client"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/scene"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8360", "pano-server base URL")
	plannerName := flag.String("planner", "pano", "quality planner: pano, viewport, or whole")
	buffer := flag.Float64("buffer", 2, "buffer target in seconds")
	chunks := flag.Int("chunks", 0, "max chunks to stream (0 = all)")
	traceSeed := flag.Uint64("trace-seed", 3, "viewpoint trace seed")
	events := flag.Bool("events", false, "emit structured JSON events on stderr")
	metrics := flag.Bool("metrics", false, "dump Prometheus metrics on exit")
	traceOut := flag.String("trace-out", "", "write the session trace as Chrome trace-event JSON to this file")
	sloSpec := flag.String("slo", "", `SLO telemetry spec, e.g. "default" ("" = off; see telemetry.ParseSLOs)`)
	telAddr := flag.String("telemetry-addr", "", "serve /metrics, /debug/slo, and /debug/dash on this address while streaming (requires -slo)")
	flag.Parse()

	var pl player.Planner
	switch *plannerName {
	case "pano":
		pl = player.NewPanoPlanner()
	case "viewport":
		pl = player.NewViewportPlanner("viewport-driven")
	case "whole":
		pl = player.WholePlanner{}
	default:
		fmt.Fprintf(os.Stderr, "pano-player: unknown planner %q\n", *plannerName)
		os.Exit(2)
	}

	cl := client.New(*url)
	ctx := context.Background()
	m, err := cl.FetchManifest(ctx)
	if err != nil {
		log.Fatalf("pano-player: %v", err)
	}
	fmt.Printf("manifest: %q %dx%d@%d, %d chunks, %d tiles/chunk\n",
		m.Name, m.W, m.H, m.FPS, m.NumChunks(), len(m.Chunks[0].Tiles))

	// The player needs a head-motion feed; without an HMD we replay a
	// synthesized trace over a reconstruction of the scene's behaviour.
	proxy := scene.Generate(scene.Sports, *traceSeed, scene.Options{
		W: m.W, H: m.H, FPS: m.FPS, DurationSec: int(m.DurationSec()),
	})
	tr := viewport.Synthesize(proxy, *traceSeed, viewport.DefaultSynthesizeOpts())

	reg := obs.NewRegistry()
	obs.ExportBuildInfo(reg)
	var evlog *obs.EventLog
	if *events {
		evlog = obs.NewEventLog(os.Stderr, 0)
	} else {
		evlog = obs.NewEventLog(nil, 0)
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = trace.New(trace.Config{Obs: reg, Log: evlog})
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("pano-player: %v", err)
	}
	var sampler *telemetry.Sampler
	if slos != nil {
		evlog.ObserveDrops(reg)
		sampler = telemetry.New(telemetry.Config{
			Obs: reg, SLOs: slos, Log: evlog, Tracer: tracer,
			Interval: 250 * time.Millisecond, // sessions are short; sample fast
		})
		sampler.Start()
		defer sampler.Stop()
		if *telAddr != "" {
			// A session-local debug endpoint: watch the SLO dashboard live
			// while the player streams. Plain http.Serve — the process exits
			// with the session, so graceful drain buys nothing here.
			mux := http.NewServeMux()
			mux.Handle("/metrics", reg.Handler())
			mux.Handle("/debug/slo", sampler.SLOHandler())
			mux.Handle("/debug/dash", sampler.DashHandler())
			ln, lerr := net.Listen("tcp", *telAddr)
			if lerr != nil {
				log.Fatalf("pano-player: %v", lerr)
			}
			defer ln.Close()
			go http.Serve(ln, mux)
			fmt.Printf("telemetry: http://%s/debug/dash\n", ln.Addr())
		}
	} else if *telAddr != "" {
		log.Fatalf("pano-player: -telemetry-addr requires -slo (try -slo default)")
	}
	res, err := cl.Stream(ctx, tr, client.StreamConfig{
		BufferTargetSec: *buffer,
		Planner:         pl,
		MaxChunks:       *chunks,
		Obs:             reg,
		Log:             evlog,
		Trace:           tracer,
	})
	if *metrics {
		// Written before the error check so a failed session still
		// dumps what it recorded (log.Fatalf skips defers).
		_ = reg.WritePrometheus(os.Stderr)
	}
	if tracer != nil {
		// Written before the error check too: a failed session's trace is
		// the one most worth looking at.
		if werr := writeTrace(*traceOut, tracer); werr != nil {
			log.Printf("pano-player: %v", werr)
		}
	}
	if err != nil {
		log.Fatalf("pano-player: %v", err)
	}
	fmt.Printf("startup delay: %v\n", res.StartupDelay)
	if res.TraceID != "" {
		fmt.Printf("trace: %s (%s)\n", res.TraceID, *traceOut)
	}
	for _, ch := range res.Chunks {
		hi, lo := levelSpread(ch)
		fmt.Printf("chunk %3d: %7d bytes in %8v (%.2f Mbps), levels L%d..L%d\n",
			ch.Chunk, ch.Bytes, ch.Download.Round(1000), ch.Throughput/1e6, hi, lo)
	}
	fmt.Printf("total: %d bytes over %d chunks (planner=%s)\n",
		res.TotalBytes, len(res.Chunks), pl.Name())
	fmt.Printf("qoe: est PSPNR %.1f dB (MOS %d), rebuffer %.2fs\n",
		res.MeanEstPSPNR, res.MOS(), res.RebufferSec)
}

func writeTrace(path string, tracer *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, tracer.Traces()...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func levelSpread(ch client.ChunkResult) (hi, lo int) {
	hi, lo = 99, -1
	for _, l := range ch.Levels {
		if int(l) < hi {
			hi = int(l)
		}
		if int(l) > lo {
			lo = int(l)
		}
	}
	return hi, lo
}
