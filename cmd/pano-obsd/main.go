// Command pano-obsd runs the cluster observability plane: it federates
// the /metrics endpoints of every pano process (origins, edges,
// players), evaluates the stock SLOs against the merged fleet-wide
// series, and assembles cross-process traces into single timelines.
//
// Usage:
//
//	pano-obsd -scrape edge0=http://127.0.0.1:8361,origin0=http://127.0.0.1:8360
//	          [-addr :8380] [-interval 2s] [-timeout 2s]
//	          [-slo default] [-log]
//
// Endpoints:
//
//	/metrics       federated exposition: cluster rollup (counters summed,
//	               histograms bucket-merged, gauges by per-family hint),
//	               pano_federation_* health, and every per-instance series
//	               labelled instance=
//	/debug/slo     fleet-wide SLO burn-rate state as JSON
//	/debug/dash    live cluster dashboard (rollup + per-instance panels)
//	/debug/traces  cross-process traces assembled on demand from every
//	               target's /debug/traces, joined on trace ID
//	/healthz       liveness
//
// A target that stops answering is marked stale (pano_federation_
// target_up 0) and its series freeze at their last-good values instead
// of vanishing — so cluster rates dip to zero only when the work
// stopped, not when the scrape did. Shuts down gracefully on
// SIGINT/SIGTERM like the other pano binaries.
package main

import (
	"flag"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"pano/internal/graceful"
	"pano/internal/obs"
	"pano/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8380", "listen address")
	scrape := flag.String("scrape", "", `comma-separated scrape targets: "url" or "instance=url" (required)`)
	interval := flag.Duration("interval", 2*time.Second, "federation scrape period")
	timeout := flag.Duration("timeout", 2*time.Second, "per-target scrape timeout")
	sloSpec := flag.String("slo", "default", `SLO spec evaluated on the cluster rollup ("" = none; see telemetry.ParseSLOs)`)
	logEvents := flag.Bool("log", false, "emit structured JSON log lines (scrape failures, SLO transitions)")
	flag.Parse()

	if *scrape == "" {
		log.Fatal("pano-obsd: -scrape is required")
	}
	targets, err := telemetry.ParseScrapeTargets(*scrape)
	if err != nil {
		log.Fatalf("pano-obsd: %v", err)
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("pano-obsd: %v", err)
	}
	if slos == nil {
		// "" disables SLOs but federation still ticks: the sampler is the
		// scrape clock, so it runs either way with an empty objective set.
		slos = []telemetry.SLO{}
	}

	reg := obs.NewRegistry()
	obs.ExportBuildInfo(reg)
	var evlog *obs.EventLog
	if *logEvents {
		evlog = obs.NewEventLog(os.Stderr, 0)
		evlog.ObserveDrops(reg)
	}
	sc, err := telemetry.NewScraper(telemetry.ScraperConfig{
		Targets:      targets,
		Timeout:      *timeout,
		Interval:     *interval,
		Log:          evlog,
		Self:         reg,
		SelfInstance: "obsd",
	})
	if err != nil {
		log.Fatalf("pano-obsd: %v", err)
	}
	sampler := telemetry.New(telemetry.Config{
		Obs:       reg,
		Interval:  *interval,
		SLOs:      slos,
		Log:       evlog,
		Source:    sc.Collect,
		DashExtra: sc.DashPanels,
	})

	mux := http.NewServeMux()
	mux.Handle("/metrics", sc.MetricsHandler())
	mux.Handle("/debug/slo", sampler.SLOHandler())
	mux.Handle("/debug/dash", sampler.DashHandler())
	mux.Handle("/debug/traces", sc.TraceHandler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !obs.AllowGetHead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		io.WriteString(w, "ok\n")
	})

	sampler.Start()
	log.Printf("obsd federating %d targets every %s on %s (%d SLOs; /metrics, /debug/slo, /debug/dash, /debug/traces)",
		len(targets), *interval, *addr, len(slos))
	if err := graceful.Serve(*addr, mux, graceful.DefaultDrain, sampler); err != nil {
		log.Fatalf("pano-obsd: %v", err)
	}
	log.Printf("drained; bye")
}
