// Command pano-benchdiff compares two BENCH_<id>.json result files (or
// two directories of them) produced by pano-bench and prints per-metric
// deltas, so bench trajectories can be gated in CI instead of eyeballed.
//
// Usage:
//
//	pano-benchdiff [-threshold 0.1] old.json new.json
//	pano-benchdiff [-threshold 0.1] old-dir/ new-dir/
//
// Rows are matched by their first cell (the experiment's row key) and
// columns by header name; numeric cells get a relative delta, and
// non-numeric cells are compared for equality. In directory mode every
// BENCH_*.json present in BOTH directories is compared (files present
// on only one side are reported but don't fail the diff).
//
// With -threshold t > 0 the exit status becomes 1 when any numeric
// cell moved by more than t relative to the old value (both directions
// — without knowing a metric's polarity, any large move is worth a
// human look). -threshold 0 (default) reports only.
//
// -ignore takes a comma-separated list of column names to exclude from
// threshold enforcement (they are still reported). Use it for columns
// that measure the machine rather than the system under test — wall
// seconds, sessions per wall second — which would otherwise make the
// gate flake on every hardware change.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// benchFile is the subset of pano-bench's benchRecord schema the diff
// needs (unknown fields are ignored, so older files still load).
type benchFile struct {
	ID        string     `json:"id"`
	Scale     string     `json:"scale"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Seconds   float64    `json:"seconds"`
	Commit    string     `json:"commit"`
	GoVersion string     `json:"go_version"`
	Time      string     `json:"time"`
}

// cellDelta is one compared cell.
type cellDelta struct {
	ID, Row, Col string
	Old, New     float64
	Rel          float64 // (new-old)/|old|; ±Inf when old == 0 and new != 0
	Numeric      bool
	OldS, NewS   string // original cells, for non-numeric mismatch reports
	Changed      bool
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"max allowed relative change per numeric cell before exiting 1 (0 = report only)")
	quiet := flag.Bool("quiet", false, "print only cells exceeding the threshold")
	ignore := flag.String("ignore", "",
		"comma-separated column names exempt from the threshold (machine-dependent metrics)")
	flag.Parse()
	ignored := ignoredColumns(*ignore)
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: pano-benchdiff [-threshold 0.1] <old.json|old-dir> <new.json|new-dir>")
		os.Exit(2)
	}
	oldArg, newArg := flag.Arg(0), flag.Arg(1)

	pairs, err := resolvePairs(oldArg, newArg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pano-benchdiff: %v\n", err)
		os.Exit(2)
	}
	if len(pairs) == 0 {
		fmt.Fprintln(os.Stderr, "pano-benchdiff: no BENCH_*.json pairs to compare")
		os.Exit(2)
	}

	regressions := 0
	for _, pr := range pairs {
		a, err := loadBench(pr[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "pano-benchdiff: %v\n", err)
			os.Exit(2)
		}
		b, err := loadBench(pr[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "pano-benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("== %s: %s (%s, go %s) vs %s (%s, go %s)\n",
			firstNonEmpty(a.ID, filepath.Base(pr[0])),
			short(a.Commit), firstNonEmpty(a.Time, "?"), strings.TrimPrefix(a.GoVersion, "go"),
			short(b.Commit), firstNonEmpty(b.Time, "?"), strings.TrimPrefix(b.GoVersion, "go"))
		for _, d := range diffRecords(a, b) {
			over := d.Numeric && *threshold > 0 && math.Abs(d.Rel) > *threshold && !ignored[d.Col]
			if over {
				regressions++
			}
			if *quiet && !over {
				continue
			}
			switch {
			case !d.Changed:
				// Unchanged cells stay silent even in verbose mode.
			case d.Numeric:
				mark := ""
				if over {
					mark = "  <-- past threshold"
				}
				fmt.Printf("  %-24s %-16s %12g -> %-12g (%+.1f%%)%s\n",
					d.Row, d.Col, d.Old, d.New, 100*d.Rel, mark)
			default:
				fmt.Printf("  %-24s %-16s %q -> %q\n", d.Row, d.Col, d.OldS, d.NewS)
			}
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "pano-benchdiff: %d cell(s) moved past the %.0f%% threshold\n",
			regressions, 100**threshold)
		os.Exit(1)
	}
}

// ignoredColumns parses the -ignore flag into a lookup set.
func ignoredColumns(s string) map[string]bool {
	out := make(map[string]bool)
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out[c] = true
		}
	}
	return out
}

// resolvePairs maps the two arguments to (old, new) file pairs: either
// the single pair given directly, or matching BENCH_*.json basenames
// when both arguments are directories.
func resolvePairs(oldArg, newArg string) ([][2]string, error) {
	oi, err := os.Stat(oldArg)
	if err != nil {
		return nil, err
	}
	ni, err := os.Stat(newArg)
	if err != nil {
		return nil, err
	}
	if oi.IsDir() != ni.IsDir() {
		return nil, fmt.Errorf("mixed arguments: %s and %s must both be files or both directories", oldArg, newArg)
	}
	if !oi.IsDir() {
		return [][2]string{{oldArg, newArg}}, nil
	}
	olds, err := filepath.Glob(filepath.Join(oldArg, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	var pairs [][2]string
	for _, op := range olds {
		np := filepath.Join(newArg, filepath.Base(op))
		if _, err := os.Stat(np); err != nil {
			fmt.Fprintf(os.Stderr, "pano-benchdiff: %s only in %s (skipped)\n", filepath.Base(op), oldArg)
			continue
		}
		pairs = append(pairs, [2]string{op, np})
	}
	news, _ := filepath.Glob(filepath.Join(newArg, "BENCH_*.json"))
	for _, np := range news {
		if _, err := os.Stat(filepath.Join(oldArg, filepath.Base(np))); err != nil {
			fmt.Fprintf(os.Stderr, "pano-benchdiff: %s only in %s (skipped)\n", filepath.Base(np), newArg)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i][0] < pairs[j][0] })
	return pairs, nil
}

func loadBench(path string) (benchFile, error) {
	var b benchFile
	raw, err := os.ReadFile(path)
	if err != nil {
		return b, err
	}
	if err := json.Unmarshal(raw, &b); err != nil {
		return b, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// diffRecords compares two bench tables cell by cell: rows matched by
// first cell, columns by header name (falling back to position when a
// header is absent), changed cells reported in row order. Rows present
// on only one side surface as "(row)" present/missing deltas.
func diffRecords(a, b benchFile) []cellDelta {
	newRows := make(map[string][]string, len(b.Rows))
	for _, r := range b.Rows {
		if len(r) > 0 {
			newRows[r[0]] = r
		}
	}
	oldKeys := make(map[string]bool, len(a.Rows))
	for _, r := range a.Rows {
		if len(r) > 0 {
			oldKeys[r[0]] = true
		}
	}
	newCol := make(map[string]int, len(b.Header))
	for i, h := range b.Header {
		newCol[h] = i
	}
	var out []cellDelta
	for _, row := range a.Rows {
		if len(row) == 0 {
			continue
		}
		nrow, ok := newRows[row[0]]
		if !ok {
			out = append(out, cellDelta{ID: a.ID, Row: row[0], Col: "(row)",
				OldS: "present", NewS: "missing", Changed: true})
			continue
		}
		for ci := 1; ci < len(row); ci++ {
			col := fmt.Sprintf("col%d", ci)
			nci := ci
			if ci < len(a.Header) {
				col = a.Header[ci]
				if j, ok := newCol[col]; ok {
					nci = j
				}
			}
			if nci >= len(nrow) {
				continue
			}
			d := compareCell(row[ci], nrow[nci])
			d.ID, d.Row, d.Col = a.ID, row[0], col
			out = append(out, d)
		}
	}
	for _, r := range b.Rows {
		if len(r) == 0 || oldKeys[r[0]] {
			continue
		}
		out = append(out, cellDelta{ID: a.ID, Row: r[0], Col: "(row)",
			OldS: "missing", NewS: "present", Changed: true})
	}
	return out
}

// compareCell parses both cells as floats when possible (tolerating
// unit suffixes like "12.3ms" or "85%") and computes the relative
// delta; otherwise it falls back to string equality.
func compareCell(oldS, newS string) cellDelta {
	d := cellDelta{OldS: oldS, NewS: newS}
	ov, oerr := parseNumeric(oldS)
	nv, nerr := parseNumeric(newS)
	if oerr == nil && nerr == nil {
		d.Numeric, d.Old, d.New = true, ov, nv
		switch {
		case ov == nv:
			// unchanged
		case ov == 0:
			d.Rel = math.Inf(sign(nv))
			d.Changed = true
		default:
			d.Rel = (nv - ov) / math.Abs(ov)
			d.Changed = true
		}
		return d
	}
	d.Changed = oldS != newS
	return d
}

// parseNumeric reads the leading float of a cell ("42", "3.1ms",
// "85%", "1.2e3"); pure text fails.
func parseNumeric(s string) (float64, error) {
	s = strings.TrimSpace(s)
	end := len(s)
	for end > 0 {
		if v, err := strconv.ParseFloat(s[:end], 64); err == nil {
			return v, nil
		}
		end--
	}
	return 0, fmt.Errorf("not numeric: %q", s)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

func short(c string) string {
	if c == "" {
		return "?"
	}
	if len(c) > 12 {
		return c[:12]
	}
	return c
}

func firstNonEmpty(vals ...string) string {
	for _, v := range vals {
		if v != "" {
			return v
		}
	}
	return ""
}
