package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestParseNumeric(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"42", 42, true},
		{"3.25", 3.25, true},
		{"3.1ms", 3.1, true},
		{"85%", 85, true},
		{"1.2e3", 1200, true},
		{"-0.5", -0.5, true},
		{" 7 ", 7, true},
		{"pano", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, err := parseNumeric(c.in)
		if (err == nil) != c.ok {
			t.Errorf("parseNumeric(%q): err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("parseNumeric(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestDiffRecords(t *testing.T) {
	a := benchFile{
		ID:     "edge",
		Header: []string{"mode", "hit ratio", "p99 ms", "planner"},
		Rows: [][]string{
			{"direct", "0.00", "12.0", "pano"},
			{"edge", "0.80", "4.0", "pano"},
			{"gone", "1.0", "1.0", "pano"},
		},
	}
	b := benchFile{
		ID:     "edge",
		Header: []string{"mode", "hit ratio", "p99 ms", "planner"},
		Rows: [][]string{
			{"direct", "0.00", "12.0", "pano"},
			{"edge", "0.60", "6.0", "greedy"},
			{"fresh", "0.50", "2.0", "pano"},
		},
	}
	ds := diffRecords(a, b)
	byKey := map[string]cellDelta{}
	for _, d := range ds {
		byKey[d.Row+"/"+d.Col] = d
	}
	if d := byKey["edge/hit ratio"]; !d.Changed || !d.Numeric || math.Abs(d.Rel-(-0.25)) > 1e-9 {
		t.Errorf("hit ratio delta = %+v, want rel -0.25", d)
	}
	if d := byKey["edge/p99 ms"]; !d.Changed || math.Abs(d.Rel-0.5) > 1e-9 {
		t.Errorf("p99 delta = %+v, want rel +0.5", d)
	}
	if d := byKey["edge/planner"]; !d.Changed || d.Numeric {
		t.Errorf("planner cell should be a non-numeric change, got %+v", d)
	}
	if d := byKey["direct/hit ratio"]; d.Changed {
		t.Errorf("unchanged cell reported as changed: %+v", d)
	}
	if d := byKey["gone/(row)"]; !d.Changed || d.OldS != "present" || d.NewS != "missing" {
		t.Errorf("missing row not reported: %+v", ds)
	}
	if d := byKey["fresh/(row)"]; !d.Changed || d.OldS != "missing" || d.NewS != "present" {
		t.Errorf("new-only row not reported: %+v", ds)
	}
}

func TestDiffRecordsZeroBase(t *testing.T) {
	a := benchFile{Header: []string{"k", "v"}, Rows: [][]string{{"r", "0"}}}
	b := benchFile{Header: []string{"k", "v"}, Rows: [][]string{{"r", "3"}}}
	ds := diffRecords(a, b)
	if len(ds) != 1 || !math.IsInf(ds[0].Rel, 1) {
		t.Fatalf("zero-base delta = %+v, want +Inf rel", ds)
	}
}

func TestResolvePairsDirs(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	write := func(dir, name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(oldDir, "BENCH_a.json", "{}")
	write(oldDir, "BENCH_b.json", "{}")
	write(newDir, "BENCH_a.json", "{}")
	write(newDir, "BENCH_c.json", "{}")
	pairs, err := resolvePairs(oldDir, newDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || filepath.Base(pairs[0][0]) != "BENCH_a.json" {
		t.Fatalf("pairs = %v, want only BENCH_a.json", pairs)
	}
}

func TestResolvePairsFiles(t *testing.T) {
	dir := t.TempDir()
	oldP := filepath.Join(dir, "old.json")
	newP := filepath.Join(dir, "new.json")
	for _, p := range []string{oldP, newP} {
		if err := os.WriteFile(p, []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pairs, err := resolvePairs(oldP, newP)
	if err != nil || len(pairs) != 1 {
		t.Fatalf("pairs=%v err=%v", pairs, err)
	}
	if _, err := resolvePairs(oldP, dir); err == nil {
		t.Fatal("mixed file/dir arguments should error")
	}
}

func TestIgnoredColumns(t *testing.T) {
	got := ignoredColumns(" wall_sec, sessions_per_wall_sec ,,")
	if len(got) != 2 || !got["wall_sec"] || !got["sessions_per_wall_sec"] {
		t.Fatalf("ignoredColumns = %v", got)
	}
	if len(ignoredColumns("")) != 0 {
		t.Fatal("empty -ignore should yield no columns")
	}
}
