// Command pano-bench runs the paper's evaluation experiments and prints
// each table/figure's rows.
//
// Usage:
//
//	pano-bench [-scale quick|paper] [-list] [-json-dir .] [experiment ids...]
//
// With no ids, every experiment runs in order. Ids match DESIGN.md §3:
// fig1 fig3 fig4 fig6 fig7 fig8 fig10 fig13 fig14 fig15 fig16a fig16b
// fig16c fig16d fig17a fig17b fig17c fig18a fig18b tab2 tab3 lut prune,
// plus the extensions joint3, crossuser, parallel, chaos (streaming
// under scripted fault profiles — abort rate, retries, degraded/skipped
// tile fractions, mean PSPNR — lands in BENCH_chaos.json), and edge
// (20 concurrent overlapping sessions direct vs through the
// internal/edge caching proxy — origin offload, hit ratio, coalesced
// fetches, tile latency percentiles — lands in BENCH_edge.json). fig14
// writes its snapshot PNGs into ./fig14-out.
//
// Each experiment's result is also written as machine-readable JSON to
// BENCH_<id>.json under -json-dir (default the working directory; set
// -json-dir "" to disable), so the bench trajectory can be tracked
// across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"pano/internal/experiments"
	"pano/internal/obs"
)

// benchRecord is the schema of a BENCH_<id>.json file. Commit,
// GoVersion, and Time stamp provenance so two result files can be
// compared across commits (see cmd/pano-benchdiff) without guessing
// which build produced which numbers.
type benchRecord struct {
	ID        string     `json:"id"`
	Scale     string     `json:"scale"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Seconds   float64    `json:"seconds"`
	Commit    string     `json:"commit"`
	GoVersion string     `json:"go_version"`
	Time      string     `json:"time"`
}

// commitHash resolves the building commit; shared with the
// pano_build_info gauge every binary exports.
func commitHash() string { return obs.BuildCommit() }

func main() {
	scale := flag.String("scale", "quick", "dataset scale: quick or paper")
	list := flag.Bool("list", false, "list experiment ids and exit")
	jsonDir := flag.String("json-dir", ".", `directory for BENCH_<id>.json results ("" = disabled)`)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "pano-bench: unknown scale %q (quick|paper)\n", *scale)
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	d := experiments.NewDataset(s)
	commit := commitHash()
	exit := 0
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(d, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pano-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		elapsed := time.Since(start).Seconds()
		fmt.Print(table.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, elapsed)
		if *jsonDir != "" {
			rec := benchRecord{
				ID: id, Scale: *scale, Title: table.Title,
				Header: table.Header, Rows: table.Rows, Seconds: elapsed,
				Commit: commit, GoVersion: runtime.Version(),
				Time: time.Now().UTC().Format(time.RFC3339),
			}
			if err := writeJSON(filepath.Join(*jsonDir, "BENCH_"+id+".json"), rec); err != nil {
				fmt.Fprintf(os.Stderr, "pano-bench: %s: %v\n", id, err)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

func writeJSON(path string, rec benchRecord) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
