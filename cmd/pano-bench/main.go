// Command pano-bench runs the paper's evaluation experiments and prints
// each table/figure's rows.
//
// Usage:
//
//	pano-bench [-scale quick|paper] [-list] [experiment ids...]
//
// With no ids, every experiment runs in order. Ids match DESIGN.md §3:
// fig1 fig3 fig4 fig6 fig7 fig8 fig10 fig13 fig14 fig15 fig16a fig16b
// fig16c fig16d fig17a fig17b fig17c fig18a fig18b tab2 tab3 lut prune,
// plus the extensions joint3 and crossuser. fig14 writes its snapshot
// PNGs into ./fig14-out.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pano/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "dataset scale: quick or paper")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var s experiments.Scale
	switch *scale {
	case "quick":
		s = experiments.QuickScale()
	case "paper":
		s = experiments.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "pano-bench: unknown scale %q (quick|paper)\n", *scale)
		os.Exit(2)
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	d := experiments.NewDataset(s)
	exit := 0
	for _, id := range ids {
		start := time.Now()
		table, err := experiments.Run(d, id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pano-bench: %s: %v\n", id, err)
			exit = 1
			continue
		}
		fmt.Print(table.String())
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	os.Exit(exit)
}
