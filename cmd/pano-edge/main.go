// Command pano-edge runs the edge cache tier: a caching reverse proxy
// between Pano clients and an origin pano-server, with request
// coalescing, ETag revalidation, negative caching, serve-stale on
// origin faults, and optional prediction-driven prefetch of next-chunk
// tiles.
//
// Usage:
//
//	pano-edge -origins http://127.0.0.1:8360[,http://127.0.0.1:8370,...]
//	          [-addr :8361] [-probe-interval 2s]
//	          [-cache-bytes 67108864] [-ttl 60s] [-prefetch 0]
//	          [-peer-traces a.csv,b.csv] [-chaos spec] [-trace] [-pprof]
//
// Two or more -origins entries enable fleet mode: cache fills shard
// across the origins on a consistent-hash ring, active /healthz probes
// and passive error signals drive per-origin circuit breakers, failed
// fetches fail over along the ring, and slow ones race a hedged backup
// request — all under a token-bucket retry budget. -origin (singular)
// is a deprecated alias for a one-entry -origins.
//
// -cache-bytes 0 disables caching entirely: the edge becomes a
// transparent pass-through whose responses are byte-identical to the
// origin's. -prefetch N enables warming with a token budget of N tiles;
// with -peer-traces the warm set follows the peers' consensus viewpoint
// (cross-user prediction), without it the edge mirrors its own observed
// demand one chunk ahead.
//
// -chaos wraps the edge's own handler in the deterministic fault
// injector (same spec grammar as pano-server), exercising client
// resilience against a flaky edge; a chaotic *origin* is instead
// tolerated natively by the edge's retry ladder and serve-stale path.
//
// Like pano-server, the process drains in-flight responses on
// SIGINT/SIGTERM instead of severing them.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"strings"
	"time"

	"pano/internal/chaos"
	"pano/internal/edge"
	"pano/internal/graceful"
	"pano/internal/obs"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"
)

func main() {
	addr := flag.String("addr", ":8361", "listen address")
	origin := flag.String("origin", "", "origin server base URL (deprecated alias for -origins with one entry)")
	origins := flag.String("origins", "", "comma-separated origin base URLs; two or more enable fleet mode (consistent-hash sharding, failover, breakers, hedged fetches)")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "fleet mode: active /healthz probe period per origin (0 = passive health only)")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "cache byte budget (0 = pass-through, no caching)")
	ttl := flag.Duration("ttl", 60*time.Second, "freshness TTL for cached objects")
	negTTL := flag.Duration("neg-ttl", 5*time.Second, "TTL for cached negative (404) answers")
	staleFor := flag.Duration("stale-for", 5*time.Minute, "serve-stale window when the origin is faulty")
	prefetch := flag.Int("prefetch", 0, "prefetch token budget (0 = prefetch off)")
	peerTraces := flag.String("peer-traces", "", "comma-separated viewpoint-trace CSVs for cross-user prefetch prediction")
	chaosSpec := flag.String("chaos", "", `fault-injection spec wrapping the edge handler ("" = off)`)
	enableTrace := flag.Bool("trace", false, "record edge spans for traced requests (browse at /debug/traces)")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logRequests := flag.Bool("log-requests", false, "emit structured JSON log lines for edge activity")
	sloSpec := flag.String("slo", "", `SLO telemetry spec, e.g. "default" or "edge_hit>=0.7" ("" = off; see telemetry.ParseSLOs)`)
	flag.Parse()

	var fleetOrigins []string
	for _, o := range strings.Split(*origins, ",") {
		if o = strings.TrimSpace(o); o != "" {
			fleetOrigins = append(fleetOrigins, o)
		}
	}
	switch {
	case *origin != "" && len(fleetOrigins) > 0:
		log.Fatal("pano-edge: -origin and -origins are mutually exclusive")
	case *origin != "":
		log.Printf("-origin is deprecated; use -origins")
		fleetOrigins = []string{*origin}
	case len(fleetOrigins) == 0:
		log.Fatal("pano-edge: -origins is required")
	}
	for _, o := range fleetOrigins {
		if u, err := url.Parse(o); err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			log.Fatalf("pano-edge: bad origin %q (want http[s]://host[:port])", o)
		}
	}
	chaosProfile, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("pano-edge: %v", err)
	}
	var peers []*viewport.Trace
	if *peerTraces != "" {
		for _, path := range strings.Split(*peerTraces, ",") {
			f, err := os.Open(strings.TrimSpace(path))
			if err != nil {
				log.Fatalf("pano-edge: %v", err)
			}
			tr, err := viewport.ParseCSV(f)
			f.Close()
			if err != nil {
				log.Fatalf("pano-edge: %s: %v", path, err)
			}
			peers = append(peers, tr)
		}
	}

	reg := obs.NewRegistry()
	obs.ExportBuildInfo(reg)
	var evlog *obs.EventLog
	if *logRequests {
		evlog = obs.NewEventLog(os.Stderr, 0)
	}
	var tracer *trace.Tracer
	if *enableTrace {
		tracer = trace.New(trace.Config{Obs: reg, Log: evlog})
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("pano-edge: %v", err)
	}
	var sampler *telemetry.Sampler
	if slos != nil {
		evlog.ObserveDrops(reg)
		sampler = telemetry.New(telemetry.Config{
			Obs: reg, SLOs: slos, Log: evlog, Tracer: tracer,
		})
	}

	ecfg := edge.Config{
		Origin:         fleetOrigins[0],
		CacheBytes:     *cacheBytes,
		TTL:            *ttl,
		NegTTL:         *negTTL,
		StaleFor:       *staleFor,
		PrefetchBudget: *prefetch,
		Peers:          peers,
		Obs:            reg,
		Log:            evlog,
		Tracer:         tracer,
		Telemetry:      sampler,
	}
	if len(fleetOrigins) > 1 {
		ecfg.Origins = fleetOrigins
		ecfg.ProbeInterval = *probeInterval
	}
	e, err := edge.New(ecfg)
	if err != nil {
		log.Fatalf("pano-edge: %v", err)
	}
	defer e.Close()

	handler := e.Handler()
	if chaosProfile.Enabled() {
		injectorOpts := []chaos.Option{chaos.WithObs(reg)}
		if evlog != nil {
			injectorOpts = append(injectorOpts, chaos.WithEventLog(evlog))
		}
		handler = chaos.New(chaosProfile, injectorOpts...).Wrap(handler)
		log.Printf("chaos injection enabled: %s", chaosProfile)
	}
	if tracer != nil {
		// Outermost, so chaos and edge lookup/fill spans stitch into the
		// requesting client's trace.
		handler = trace.Middleware(tracer, handler)
		log.Printf("span tracing enabled (traces at /debug/traces)")
	}
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof mounted at /debug/pprof/")
	}

	if sampler != nil {
		sampler.Start()
		log.Printf("SLO telemetry enabled (%d objectives; /debug/slo, dashboard at /debug/dash)", len(slos))
	}
	mode := "caching"
	if *cacheBytes == 0 {
		mode = "pass-through"
	}
	originDesc := fleetOrigins[0]
	if len(fleetOrigins) > 1 {
		originDesc = fmt.Sprintf("fleet of %d shards %s (probe %s)",
			len(fleetOrigins), strings.Join(fleetOrigins, ","), *probeInterval)
	}
	log.Printf("edge (%s) for origin %s on %s (cache %d bytes, ttl %s, prefetch budget %d, %d peer traces; metrics at /metrics)",
		mode, originDesc, *addr, *cacheBytes, *ttl, *prefetch, len(peers))
	// Same graceful pattern as pano-server: drain in-flight responses on
	// SIGINT/SIGTERM.
	if err := graceful.Serve(*addr, handler, graceful.DefaultDrain, sampler); err != nil {
		log.Fatalf("pano-edge: %v", err)
	}
	log.Printf("drained; bye")
}
