// Command pano-server serves an encoded 360° video over HTTP in the
// DASH-compatible layout of §6.2: /manifest.json plus per-tile media
// objects under /video/{chunk}/{tile}/{level}.bin.
//
// Usage:
//
//	pano-server [-addr :8360] [-manifest path.json]
//	pano-server [-addr :8360] [-genre sports] [-seed 1] [-duration 30]
//	pano-server -chaos "seed=7,tile-error=0.1,tile-latency=20ms"
//
// With -manifest it serves a preprocessed manifest (e.g. produced by
// pano-tracegen); otherwise it generates a synthetic video of the given
// genre and preprocesses it on startup.
//
// -chaos wraps the handler in the deterministic fault injector of
// internal/chaos (see chaos.Parse for the spec grammar) to exercise
// client resilience: injected 500s, connection aborts, latency,
// throttling, truncated or stalled bodies, flaky windows.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"

	"pano/internal/chaos"
	"pano/internal/graceful"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"
)

func main() {
	addr := flag.String("addr", ":8360", "listen address")
	manPath := flag.String("manifest", "", "serve this preprocessed manifest JSON")
	genre := flag.String("genre", "sports", "genre for the generated video")
	seed := flag.Uint64("seed", 1, "generation seed")
	duration := flag.Int("duration", 10, "video duration in seconds")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logRequests := flag.Bool("log-requests", false, "emit one structured JSON log line per request")
	chaosSpec := flag.String("chaos", "", `fault-injection spec, e.g. "seed=7,tile-error=0.1" ("" = off)`)
	enableTrace := flag.Bool("trace", false, "record handler spans for traced requests (browse at /debug/traces)")
	sloSpec := flag.String("slo", "", `SLO telemetry spec, e.g. "default" or "rebuffer<=0.02;tile_p99<=0.3" ("" = off; see telemetry.ParseSLOs)`)
	flag.Parse()

	chaosProfile, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("pano-server: %v", err)
	}

	var m *manifest.Video
	if *manPath != "" {
		f, err := os.Open(*manPath)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		m2, err := manifest.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		m = m2
	} else {
		g, err := parseGenre(*genre)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		opts := scene.DefaultOptions()
		opts.DurationSec = *duration
		v := scene.Generate(g, *seed, opts)
		log.Printf("generated %s (%dx%d@%d, %ds); preprocessing...", v.Name, v.W, v.H, v.FPS, v.DurationSec)
		history := []*viewport.Trace{
			viewport.Synthesize(v, *seed+1, viewport.DefaultSynthesizeOpts()),
			viewport.Synthesize(v, *seed+2, viewport.DefaultSynthesizeOpts()),
		}
		m, err = provider.Preprocess(v, history, provider.DefaultConfig())
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
	}
	reg := obs.NewRegistry()
	obs.ExportBuildInfo(reg)
	opts := []server.Option{server.WithObs(reg)}
	// One shared event log: server requests, chaos injections, and span
	// records all land in the same stderr stream and the same
	// /debug/events ring buffer.
	var evlog *obs.EventLog
	if *logRequests {
		evlog = obs.NewEventLog(os.Stderr, 0)
		opts = append(opts, server.WithEventLog(evlog))
	}
	var tracer *trace.Tracer
	if *enableTrace {
		tracer = trace.New(trace.Config{Obs: reg, Log: evlog})
		opts = append(opts, server.WithTracer(tracer))
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	var sampler *telemetry.Sampler
	if slos != nil {
		evlog.ObserveDrops(reg)
		sampler = telemetry.New(telemetry.Config{
			Obs: reg, SLOs: slos, Log: evlog, Tracer: tracer,
		})
		opts = append(opts, server.WithTelemetry(sampler))
	}
	s, err := server.New(m, opts...)
	if err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	handler := s.Handler()
	if chaosProfile.Enabled() {
		injectorOpts := []chaos.Option{chaos.WithObs(reg)}
		if evlog != nil {
			injectorOpts = append(injectorOpts, chaos.WithEventLog(evlog))
		}
		handler = chaos.New(chaosProfile, injectorOpts...).Wrap(handler)
		log.Printf("chaos injection enabled: %s", chaosProfile)
	}
	if tracer != nil {
		// Outermost, so the chaos injector and the handler instrumentation
		// both see (and annotate) the active span via the request context.
		handler = trace.Middleware(tracer, handler)
		log.Printf("span tracing enabled (traces at /debug/traces)")
	}
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof mounted at /debug/pprof/")
	}
	if sampler != nil {
		sampler.Start()
		log.Printf("SLO telemetry enabled (%d objectives; /debug/slo, dashboard at /debug/dash)", len(slos))
	}
	log.Printf("serving %q (%d chunks, %d tiles/chunk) on %s (metrics at /metrics)",
		m.Name, m.NumChunks(), len(m.Chunks[0].Tiles), *addr)
	// Graceful shutdown: SIGINT/SIGTERM drains in-flight tile responses
	// (bounded) instead of severing them mid-body; the telemetry sampler
	// stops after the drain.
	if err := graceful.Serve(*addr, handler, graceful.DefaultDrain, sampler); err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	log.Printf("drained; bye")
}

func parseGenre(s string) (scene.Genre, error) {
	for _, g := range scene.AllGenres() {
		if strings.EqualFold(g.String(), s) {
			return g, nil
		}
	}
	return 0, fmt.Errorf("unknown genre %q", s)
}
