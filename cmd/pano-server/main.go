// Command pano-server serves an encoded 360° video over HTTP in the
// DASH-compatible layout of §6.2: /manifest.json plus per-tile media
// objects under /video/{chunk}/{tile}/{level}.bin.
//
// Usage:
//
//	pano-server [-addr :8360] [-manifest path.json]
//	pano-server [-addr :8360] [-genre sports] [-seed 1] [-duration 30]
//	pano-server -chaos "seed=7,tile-error=0.1,tile-latency=20ms"
//	pano-server -store /var/pano/store            (stateless origin)
//	pano-server -store /var/pano/store -live      (origin + JIT publisher)
//
// With -manifest it serves a preprocessed manifest (e.g. produced by
// pano-tracegen); otherwise it generates a synthetic video of the given
// genre and preprocesses it on startup.
//
// With -store it serves from a content-addressed tile store directory
// instead of process memory: any number of pano-server processes can
// point at the same directory and answer with byte-identical objects
// and ETags (stateless origins). -live additionally runs the
// just-in-time live pipeline in-process, publishing the generated video
// into the store chunk by chunk while serving it.
//
// -chaos wraps the handler in the deterministic fault injector of
// internal/chaos (see chaos.Parse for the spec grammar) to exercise
// client resilience: injected 500s, connection aborts, latency,
// throttling, truncated or stalled bodies, flaky windows.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"pano/internal/chaos"
	"pano/internal/graceful"
	"pano/internal/live"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/store"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"
)

func main() {
	addr := flag.String("addr", ":8360", "listen address")
	manPath := flag.String("manifest", "", "serve this preprocessed manifest JSON")
	genre := flag.String("genre", "sports", "genre for the generated video")
	seed := flag.Uint64("seed", 1, "generation seed")
	duration := flag.Int("duration", 10, "video duration in seconds")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logRequests := flag.Bool("log-requests", false, "emit one structured JSON log line per request")
	chaosSpec := flag.String("chaos", "", `fault-injection spec, e.g. "seed=7,tile-error=0.1" ("" = off)`)
	enableTrace := flag.Bool("trace", false, "record handler spans for traced requests (browse at /debug/traces)")
	sloSpec := flag.String("slo", "", `SLO telemetry spec, e.g. "default" or "rebuffer<=0.02;tile_p99<=0.3" ("" = off; see telemetry.ParseSLOs)`)
	storeDir := flag.String("store", "", "serve from this content-addressed store directory (stateless origin mode)")
	liveMode := flag.Bool("live", false, "run the just-in-time live pipeline, publishing the generated video into -store")
	liveDeadline := flag.Duration("live-deadline", time.Second, "per-chunk publish deadline for -live (0 = untracked)")
	liveWindow := flag.Int("live-window", 0, "live availability window in chunks (0 = unbounded)")
	liveInterval := flag.Duration("live-interval", 0, "capture pacing for -live (0 = real time: one chunk duration per chunk)")
	flag.Parse()

	chaosProfile, err := chaos.Parse(*chaosSpec)
	if err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	if *liveMode && *storeDir == "" {
		log.Fatalf("pano-server: -live requires -store")
	}
	if *storeDir != "" && *manPath != "" {
		log.Fatalf("pano-server: -store and -manifest are mutually exclusive")
	}

	var m *manifest.Video
	var v *scene.Video
	var history []*viewport.Trace
	switch {
	case *manPath != "":
		f, err := os.Open(*manPath)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		m2, err := manifest.Decode(f)
		f.Close()
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		m = m2
	case *storeDir != "" && !*liveMode:
		// Stateless origin: the manifest lives in the store's catalog.
	default:
		g, err := parseGenre(*genre)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		opts := scene.DefaultOptions()
		opts.DurationSec = *duration
		v = scene.Generate(g, *seed, opts)
		history = []*viewport.Trace{
			viewport.Synthesize(v, *seed+1, viewport.DefaultSynthesizeOpts()),
			viewport.Synthesize(v, *seed+2, viewport.DefaultSynthesizeOpts()),
		}
		if *liveMode {
			log.Printf("generated %s (%dx%d@%d, %ds); publishing just in time", v.Name, v.W, v.H, v.FPS, v.DurationSec)
		} else {
			log.Printf("generated %s (%dx%d@%d, %ds); preprocessing...", v.Name, v.W, v.H, v.FPS, v.DurationSec)
			m, err = provider.Preprocess(v, history, provider.DefaultConfig())
			if err != nil {
				log.Fatalf("pano-server: %v", err)
			}
		}
	}
	reg := obs.NewRegistry()
	obs.ExportBuildInfo(reg)
	opts := []server.Option{server.WithObs(reg)}
	// One shared event log: server requests, chaos injections, and span
	// records all land in the same stderr stream and the same
	// /debug/events ring buffer.
	var evlog *obs.EventLog
	if *logRequests {
		evlog = obs.NewEventLog(os.Stderr, 0)
		opts = append(opts, server.WithEventLog(evlog))
	}
	var tracer *trace.Tracer
	if *enableTrace {
		tracer = trace.New(trace.Config{Obs: reg, Log: evlog})
		opts = append(opts, server.WithTracer(tracer))
	}
	slos, err := telemetry.ParseSLOs(*sloSpec)
	if err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	var sampler *telemetry.Sampler
	if slos != nil {
		evlog.ObserveDrops(reg)
		sampler = telemetry.New(telemetry.Config{
			Obs: reg, SLOs: slos, Log: evlog, Tracer: tracer,
		})
		opts = append(opts, server.WithTelemetry(sampler))
	}
	var s *server.Server
	if *storeDir != "" {
		st, err := store.Open(*storeDir, store.WithObs(reg), store.WithEventLog(evlog))
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		if *liveMode {
			pipe, err := live.New(live.Config{
				Video: v, History: history,
				Deadline: *liveDeadline, WindowChunks: *liveWindow,
				CaptureInterval: *liveInterval,
				Store:           st, Obs: reg, Log: evlog, Tracer: tracer,
			})
			if err != nil {
				log.Fatalf("pano-server: %v", err)
			}
			go func() {
				rep, err := pipe.Run(context.Background())
				if err != nil {
					log.Printf("live feed failed: %v", err)
					return
				}
				log.Printf("live feed done: %d chunks, %d deadline misses (%.1f%% on time), %d degraded",
					rep.Chunks, rep.DeadlineMisses, 100*rep.OnTimeFrac(), rep.Degraded)
			}()
		}
		// The pipeline publishes its head asynchronously; give a fresh
		// store a moment to grow a catalog before giving up.
		var b *store.Backend
		for i := 0; ; i++ {
			b, err = store.NewBackend(st)
			if err == nil || !*liveMode || i >= 100 {
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		s, err = server.NewBackend(b, opts...)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
		man, _, _, _ := b.Manifest()
		m = man
		log.Printf("serving store %s (catalog seq %d, %d chunks published)", *storeDir, m.Seq, m.NumChunks())
	} else {
		s, err = server.New(m, opts...)
		if err != nil {
			log.Fatalf("pano-server: %v", err)
		}
	}
	handler := s.Handler()
	if chaosProfile.Enabled() {
		injectorOpts := []chaos.Option{chaos.WithObs(reg)}
		if evlog != nil {
			injectorOpts = append(injectorOpts, chaos.WithEventLog(evlog))
		}
		handler = chaos.New(chaosProfile, injectorOpts...).Wrap(handler)
		log.Printf("chaos injection enabled: %s", chaosProfile)
	}
	if tracer != nil {
		// Outermost, so the chaos injector and the handler instrumentation
		// both see (and annotate) the active span via the request context.
		handler = trace.Middleware(tracer, handler)
		log.Printf("span tracing enabled (traces at /debug/traces)")
	}
	if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		log.Printf("pprof mounted at /debug/pprof/")
	}
	if sampler != nil {
		sampler.Start()
		log.Printf("SLO telemetry enabled (%d objectives; /debug/slo, dashboard at /debug/dash)", len(slos))
	}
	tiles0 := 0
	if len(m.Chunks) > 0 {
		tiles0 = len(m.Chunks[0].Tiles)
	}
	log.Printf("serving %q (%d chunks, %d tiles/chunk) on %s (metrics at /metrics)",
		m.Name, m.NumChunks(), tiles0, *addr)
	// Graceful shutdown: SIGINT/SIGTERM drains in-flight tile responses
	// (bounded) instead of severing them mid-body; the telemetry sampler
	// stops after the drain.
	if err := graceful.Serve(*addr, handler, graceful.DefaultDrain, sampler); err != nil {
		log.Fatalf("pano-server: %v", err)
	}
	log.Printf("drained; bye")
}

func parseGenre(s string) (scene.Genre, error) {
	for _, g := range scene.AllGenres() {
		if strings.EqualFold(g.String(), s) {
			return g, nil
		}
	}
	return 0, fmt.Errorf("unknown genre %q", s)
}
