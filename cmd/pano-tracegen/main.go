// Command pano-tracegen generates the evaluation dataset: synthetic 360°
// videos (as preprocessed manifests), viewpoint traces, and cellular
// bandwidth traces, written under an output directory:
//
//	out/
//	  video-<i>-<genre>.manifest.json
//	  video-<i>-<genre>.user-<u>.viewtrace.csv
//	  nettrace-1.csv  (0.71 Mbps-class)
//	  nettrace-2.csv  (1.05 Mbps-class)
//
// Usage:
//
//	pano-tracegen [-out dataset] [-videos 4] [-users 4] [-duration 10] [-seed 2019]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"pano/internal/experiments"
	"pano/internal/nettrace"
	"pano/internal/obs"
	"pano/internal/provider"
)

func main() {
	out := flag.String("out", "dataset", "output directory")
	videos := flag.Int("videos", 4, "number of videos")
	users := flag.Int("users", 4, "viewpoint traces per video")
	duration := flag.Int("duration", 10, "video duration in seconds")
	seed := flag.Uint64("seed", 2019, "generation seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("pano-tracegen: %v", err)
	}
	// Structured progress log: one JSON line per artifact plus a final
	// summary (stderr, same stream log.Fatalf uses).
	slog := obs.NewEventLog(os.Stderr, 0).Session("out_dir", *out, "seed", *seed)
	start := time.Now()
	files := 0
	scale := experiments.QuickScale()
	scale.TotalVideos = *videos
	scale.TracedVideos = *videos
	scale.Users = *users
	scale.DurationSec = *duration
	scale.Seed = *seed
	d := experiments.NewDataset(scale)

	for i, v := range d.Videos() {
		base := fmt.Sprintf("video-%d-%s", i, strings.ToLower(v.Genre.String()))
		m, err := d.Manifest(i, provider.ModePano)
		if err != nil {
			log.Fatalf("pano-tracegen: %v", err)
		}
		if err := writeFile(filepath.Join(*out, base+".manifest.json"), m.Encode); err != nil {
			log.Fatalf("pano-tracegen: %v", err)
		}
		for u, tr := range d.Traces(i) {
			name := fmt.Sprintf("%s.user-%d.viewtrace.csv", base, u)
			if err := writeFile(filepath.Join(*out, name), tr.WriteCSV); err != nil {
				log.Fatalf("pano-tracegen: %v", err)
			}
			files++
		}
		files++
		slog.Info("video_written", "base", base, "chunks", m.NumChunks(), "user_traces", *users)
	}
	for i, mbps := range []float64{0.71, 1.05} {
		tr := nettrace.SynthesizeLTE(*seed+uint64(i), 600, mbps)
		name := fmt.Sprintf("nettrace-%d.csv", i+1)
		if err := writeFile(filepath.Join(*out, name), tr.WriteCSV); err != nil {
			log.Fatalf("pano-tracegen: %v", err)
		}
		files++
		slog.Info("nettrace_written", "name", name, "mean_mbps", tr.Mean())
	}
	slog.Info("dataset_complete",
		"videos", *videos, "users", *users, "files", files,
		"elapsed_sec", time.Since(start).Seconds())
}

func writeFile(path string, encode func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
