// Package userstudy simulates the paper's two human studies:
//
//   - The JND profiling study of Appendix A: participants watch a
//     synthetic stimulus (a 64×64 object over a controlled background)
//     whose distortion rises until they report noticing it, under
//     controlled viewpoint speed, luminance change, and DoF difference.
//     The per-participant perception model is the 360JND ground truth
//     scaled by an individual sensitivity and report noise, so the
//     study harness regenerates Figures 6–7 the way the paper measured
//     them.
//
//   - The MOS rating survey of §8.1: participants watch a rendered
//     session and rate it 1–5. Ratings are drawn around the Table 3
//     PSPNR→MOS band with per-user bias and noise.
//
// The panel is deterministic given its seed, so experiments are
// reproducible.
package userstudy

import (
	"math"

	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/quality"
)

// StimulusBaseJND is the content-dependent JND of the Appendix A test
// stimulus: a flat grey-50 object, whose Chou–Li luminance masking
// dominates (≈ 17·(1−sqrt(50/127))+3).
var StimulusBaseJND = jnd.LuminanceMasking(50)

// Participant models one study subject.
type Participant struct {
	// Sens scales the true JND: values above 1 mean a less sensitive
	// viewer (notices distortion later).
	Sens float64
	// ReportNoise is the std-dev of multiplicative report noise.
	ReportNoise float64
	// RatingBias shifts the subject's MOS ratings.
	RatingBias float64
}

// Panel is a set of participants with a deterministic noise stream.
type Panel struct {
	Participants []Participant
	rng          *mathx.RNG
	Profile      *jnd.Profile
}

// NewPanel creates n participants (the paper uses 20).
func NewPanel(n int, seed uint64) *Panel {
	rng := mathx.NewRNG(seed ^ 0x9a7e1)
	p := &Panel{rng: rng, Profile: jnd.Default()}
	for i := 0; i < n; i++ {
		p.Participants = append(p.Participants, Participant{
			Sens:        math.Exp(rng.NormMS(0, 0.15)),
			ReportNoise: 0.08,
			RatingBias:  rng.NormMS(0, 0.3),
		})
	}
	return p
}

// MeasureJND runs the staircase protocol for one factor setting: the
// distortion level Δ rises in unit steps until the participant reports
// it; the first-report average across the panel is the measured JND
// (Appendix A.1).
func (p *Panel) MeasureJND(f jnd.Factors) float64 {
	var sum float64
	for _, part := range p.Participants {
		threshold := StimulusBaseJND * p.Profile.ActionRatio(f) * part.Sens
		threshold *= 1 + part.ReportNoise*p.rng.Norm()
		// Staircase: the first integer Δ ≥ threshold is reported.
		delta := math.Ceil(threshold)
		if delta < 1 {
			delta = 1
		}
		if delta > 205 {
			delta = 205 // the study's maximum distortion
		}
		sum += delta
	}
	return sum / float64(len(p.Participants))
}

// Multiplier measures the panel's JND at factors f normalized by its
// JND at zero factors — the empirical Fv/Fl/Fd of Figure 6.
func (p *Panel) Multiplier(f jnd.Factors) float64 {
	base := p.MeasureJND(jnd.Factors{})
	if base == 0 {
		return 1
	}
	return p.MeasureJND(f) / base
}

// Rate returns one participant's 1–5 rating for a session with the
// given 360JND-based PSPNR (the paper's premise, validated by Figure 8,
// is that this metric tracks perception).
func (p *Panel) rate(part *Participant, pspnr float64) int {
	base := float64(quality.MOSFromPSPNR(pspnr))
	r := base + part.RatingBias + p.rng.NormMS(0, 0.35)
	ri := int(math.Round(r))
	if ri < 1 {
		ri = 1
	}
	if ri > 5 {
		ri = 5
	}
	return ri
}

// Ratings returns every participant's rating for a session.
func (p *Panel) Ratings(pspnr float64) []int {
	out := make([]int, len(p.Participants))
	for i := range p.Participants {
		out[i] = p.rate(&p.Participants[i], pspnr)
	}
	return out
}

// MOS returns the panel's mean opinion score for a session.
func (p *Panel) MOS(pspnr float64) float64 {
	rs := p.Ratings(pspnr)
	var s float64
	for _, r := range rs {
		s += float64(r)
	}
	return s / float64(len(rs))
}

// PredictorErrors evaluates how well a quality metric predicts MOS
// (Figure 8): given per-video metric values and the observed MOS of
// each video (rate every video once with Panel.MOS, then evaluate all
// candidate metrics against the same ratings), fit a linear predictor
// metric→MOS and return the per-video relative errors
// |MOSpred − MOSreal| / MOSreal.
func PredictorErrors(metricValues, mosReal []float64) []float64 {
	if len(metricValues) != len(mosReal) || len(metricValues) < 2 {
		return nil
	}
	fit, err := mathx.FitLinear(metricValues, mosReal)
	if err != nil {
		return nil
	}
	out := make([]float64, len(metricValues))
	for i := range metricValues {
		pred := fit.Eval(metricValues[i])
		if mosReal[i] == 0 {
			continue
		}
		out[i] = math.Abs(pred-mosReal[i]) / mosReal[i]
	}
	return out
}
