package userstudy

import (
	"math"
	"testing"

	"pano/internal/jnd"
)

func TestPanelDeterministic(t *testing.T) {
	a := NewPanel(20, 7)
	b := NewPanel(20, 7)
	fa := a.MeasureJND(jnd.Factors{SpeedDegS: 10})
	fb := b.MeasureJND(jnd.Factors{SpeedDegS: 10})
	if fa != fb {
		t.Error("same seed should reproduce measurements")
	}
	c := NewPanel(20, 8)
	if c.MeasureJND(jnd.Factors{SpeedDegS: 10}) == fa {
		t.Error("different seeds should differ")
	}
}

func TestMeasuredJNDRisesWithEachFactor(t *testing.T) {
	p := NewPanel(20, 3)
	base := p.MeasureJND(jnd.Factors{})
	if base < 3 || base > 25 {
		t.Errorf("base JND = %v, want near the stimulus JND %.1f", base, StimulusBaseJND)
	}
	cases := []jnd.Factors{
		{SpeedDegS: 20},
		{LumaChange: 240},
		{DoFDiff: 2},
	}
	for _, f := range cases {
		if got := p.MeasureJND(f); got <= base {
			t.Errorf("JND at %+v = %v, want > base %v", f, got, base)
		}
	}
}

func TestMultipliersMatchProfileShape(t *testing.T) {
	// The study harness should recover the Figure 6 curve shapes: the
	// measured multiplier at the §2.3 thresholds is ≈1.5.
	p := NewPanel(40, 5)
	for _, c := range []struct {
		f    jnd.Factors
		want float64
	}{
		{jnd.Factors{SpeedDegS: 10}, 1.5},
		{jnd.Factors{LumaChange: 200}, 1.5},
		{jnd.Factors{DoFDiff: 0.7}, 1.5},
		{jnd.Factors{SpeedDegS: 20}, 4.0},
		{jnd.Factors{DoFDiff: 2}, 5.0},
	} {
		got := p.Multiplier(c.f)
		if math.Abs(got-c.want) > 0.35*c.want {
			t.Errorf("multiplier at %+v = %v, want ≈%v", c.f, got, c.want)
		}
	}
}

func TestJointIndependence(t *testing.T) {
	// Figure 7: the joint multiplier is ≈ the product of marginals.
	p := NewPanel(40, 9)
	joint := p.Multiplier(jnd.Factors{SpeedDegS: 10, DoFDiff: 0.7})
	product := p.Multiplier(jnd.Factors{SpeedDegS: 10}) * p.Multiplier(jnd.Factors{DoFDiff: 0.7})
	if math.Abs(joint-product)/product > 0.2 {
		t.Errorf("joint %v vs product %v: deviation over 20%%", joint, product)
	}
}

func TestMOSMonotoneInQuality(t *testing.T) {
	p := NewPanel(20, 11)
	low := p.MOS(40)
	mid := p.MOS(58)
	high := p.MOS(75)
	if !(low < mid && mid < high) {
		t.Errorf("MOS not monotone: %v %v %v", low, mid, high)
	}
	if low < 1 || high > 5 {
		t.Errorf("MOS out of range: %v %v", low, high)
	}
}

func TestRatingsWithinScale(t *testing.T) {
	p := NewPanel(20, 13)
	for _, q := range []float64{20, 50, 65, 90} {
		for _, r := range p.Ratings(q) {
			if r < 1 || r > 5 {
				t.Fatalf("rating %d out of scale", r)
			}
		}
	}
}

func TestPredictorErrorsOrdering(t *testing.T) {
	// A metric equal to the true quality should predict MOS better
	// than a badly distorted metric — the structure behind Figure 8.
	p := NewPanel(20, 17)
	n := 24
	truth := make([]float64, n)
	good := make([]float64, n)
	bad := make([]float64, n)
	rng := []float64{42, 47, 52, 57, 62, 67, 72, 77}
	for i := 0; i < n; i++ {
		truth[i] = rng[i%len(rng)] + float64(i%5)
		good[i] = truth[i]
		// A metric that ignores a big quality factor: heavily
		// compressed dynamic range plus structured error.
		bad[i] = 55 + 0.2*truth[i] + 12*math.Sin(float64(i))
	}
	mosReal := make([]float64, n)
	for i, q := range truth {
		mosReal[i] = p.MOS(q)
	}
	ge := PredictorErrors(good, mosReal)
	be := PredictorErrors(bad, mosReal)
	if ge == nil || be == nil {
		t.Fatal("predictor errors nil")
	}
	if mean(ge) >= mean(be) {
		t.Errorf("good metric error %v should beat bad %v", mean(ge), mean(be))
	}
	_ = p
}

func TestPredictorErrorsDegenerate(t *testing.T) {
	if PredictorErrors([]float64{1}, []float64{1}) != nil {
		t.Error("single point should return nil")
	}
	if PredictorErrors([]float64{1, 2}, []float64{1}) != nil {
		t.Error("mismatched lengths should return nil")
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
