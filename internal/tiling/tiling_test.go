package tiling

import (
	"testing"
	"testing/quick"

	"pano/internal/mathx"
)

func flatScores(rows, cols int, v float64) [][]float64 {
	s := make([][]float64, rows)
	for r := range s {
		s[r] = make([]float64, cols)
		for c := range s[r] {
			s[r][c] = v
		}
	}
	return s
}

func TestGridRectsCoverFrame(t *testing.T) {
	for _, g := range []Grid{Grid3x6, Grid6x12, Grid12x24, {Rows: 5, Cols: 7}} {
		rects := g.Rects(480, 240)
		if len(rects) != g.Rows*g.Cols {
			t.Fatalf("%v: %d rects", g, len(rects))
		}
		area := 0
		for _, r := range rects {
			if r.Empty() {
				t.Fatalf("%v: empty rect %v", g, r)
			}
			area += r.Area()
		}
		if area != 480*240 {
			t.Errorf("%v: covered area %d, want %d", g, area, 480*240)
		}
	}
}

func TestUniformLayout(t *testing.T) {
	l, err := UniformLayout(Grid3x6)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tiles) != 18 {
		t.Fatalf("tiles = %d, want 18", len(l.Tiles))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := UniformLayout(Grid{Rows: 5, Cols: 7}); err == nil {
		t.Error("non-divisor grid should error")
	}
}

func TestLayoutValidateCatchesBadLayouts(t *testing.T) {
	// Overlap.
	l := Layout{Rows: 2, Cols: 2, Tiles: []UnitRect{
		{0, 0, 2, 2}, {0, 0, 1, 1},
	}}
	if err := l.Validate(); err == nil {
		t.Error("overlapping layout should fail")
	}
	// Gap.
	l = Layout{Rows: 2, Cols: 2, Tiles: []UnitRect{{0, 0, 1, 2}}}
	if err := l.Validate(); err == nil {
		t.Error("gapped layout should fail")
	}
	// Out of bounds.
	l = Layout{Rows: 2, Cols: 2, Tiles: []UnitRect{{0, 0, 3, 2}}}
	if err := l.Validate(); err == nil {
		t.Error("out-of-bounds layout should fail")
	}
}

func TestVariableTilingPartition(t *testing.T) {
	rng := mathx.NewRNG(3)
	scores := make([][]float64, UnitRows)
	for r := range scores {
		scores[r] = make([]float64, UnitCols)
		for c := range scores[r] {
			scores[r][c] = rng.Range(0, 10)
		}
	}
	l, err := VariableTiling(scores, DefaultTiles)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tiles) != DefaultTiles {
		t.Errorf("tiles = %d, want %d", len(l.Tiles), DefaultTiles)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariableTilingIsolatesHotRegion(t *testing.T) {
	// Figure 9's example: a uniform field with two high-score blobs.
	// With enough tiles, the blobs should be separated from the
	// background: weighted variance falls well below the uniform
	// layout's.
	scores := flatScores(UnitRows, UnitCols, 1)
	for r := 3; r < 6; r++ {
		for c := 4; c < 8; c++ {
			scores[r][c] = 9
		}
	}
	for r := 7; r < 9; r++ {
		for c := 16; c < 20; c++ {
			scores[r][c] = 5
		}
	}
	varLayout, err := VariableTiling(scores, 12)
	if err != nil {
		t.Fatal(err)
	}
	uni, _ := UniformLayout(Grid3x6)
	wvVar := varLayout.WeightedVariance(scores)
	wvUni := uni.WeightedVariance(scores)
	if wvVar >= wvUni/4 {
		t.Errorf("variable tiling variance %v should be ≪ uniform %v", wvVar, wvUni)
	}
}

func TestVariableTilingFlatScoresStillPartitions(t *testing.T) {
	l, err := VariableTiling(flatScores(UnitRows, UnitCols, 2), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tiles) != 7 {
		t.Errorf("tiles = %d, want 7", len(l.Tiles))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if wv := l.WeightedVariance(flatScores(UnitRows, UnitCols, 2)); wv != 0 {
		t.Errorf("flat-score variance = %v, want 0", wv)
	}
}

func TestVariableTilingNCapsAtUnitCount(t *testing.T) {
	scores := flatScores(2, 3, 1)
	scores[0][0] = 5
	l, err := VariableTiling(scores, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tiles) != 6 {
		t.Errorf("tiles = %d, want 6 (all units)", len(l.Tiles))
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestVariableTilingErrors(t *testing.T) {
	if _, err := VariableTiling(nil, 5); err == nil {
		t.Error("empty matrix should error")
	}
	if _, err := VariableTiling([][]float64{{1, 2}, {1}}, 5); err == nil {
		t.Error("ragged matrix should error")
	}
	if _, err := VariableTiling(flatScores(2, 2, 1), 0); err == nil {
		t.Error("n=0 should error")
	}
}

func TestVariableTilingSingleTile(t *testing.T) {
	l, err := VariableTiling(flatScores(4, 4, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(l.Tiles) != 1 || l.Tiles[0].Units() != 16 {
		t.Errorf("single tile layout wrong: %+v", l.Tiles)
	}
}

func TestVariableTilingPropertyAlwaysPartition(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := mathx.NewRNG(seed)
		rows, cols := 4+rng.Intn(9), 4+rng.Intn(21)
		scores := make([][]float64, rows)
		for r := range scores {
			scores[r] = make([]float64, cols)
			for c := range scores[r] {
				scores[r][c] = rng.Range(0, 100)
			}
		}
		n := 1 + int(nRaw)%64
		l, err := VariableTiling(scores, n)
		if err != nil {
			return false
		}
		if len(l.Tiles) > n || len(l.Tiles) > rows*cols {
			return false
		}
		return l.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPixelRects(t *testing.T) {
	l, _ := UniformLayout(Grid3x6)
	rects := l.PixelRects(480, 240)
	area := 0
	for _, r := range rects {
		area += r.Area()
	}
	if area != 480*240 {
		t.Errorf("pixel area %d, want full frame", area)
	}
	// First tile is the top-left 80x80 block (480/6 x 240/3).
	if rects[0].W() != 80 || rects[0].H() != 80 {
		t.Errorf("tile 0 = %v, want 80x80", rects[0])
	}
}

func TestUnitRectPixels(t *testing.T) {
	u := UnitRect{R0: 0, C0: 0, R1: UnitRows, C1: UnitCols}
	r := u.Pixels(480, 240, UnitRows, UnitCols)
	if r.W() != 480 || r.H() != 240 {
		t.Errorf("full unit rect pixels = %v", r)
	}
}
