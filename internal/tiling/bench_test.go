package tiling

import (
	"testing"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/parallel"
)

// runPlanBench scores the 12×24 unit grid with a real pixel kernel
// (mean content-JND per unit tile, as the provider's Equation-5 scoring
// does) so the benchmark reflects what Plan actually parallelizes.
func runPlanBench(b *testing.B, workers int) {
	const w, h = 960, 480
	rng := mathx.NewRNG(0xBE9C)
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	full := geom.Rect{X1: w, Y1: h}
	score := func(r, c int) float64 {
		u := UnitRect{R0: r, C0: c, R1: r + 1, C1: c + 1}
		return jnd.MeanContentJND(f, u.Pixels(w, h, UnitRows, UnitCols).Intersect(full))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := PlanWorkers(UnitRows, UnitCols, 36, score, workers); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlanSerial(b *testing.B)   { runPlanBench(b, 1) }
func BenchmarkPlanParallel(b *testing.B) { runPlanBench(b, parallel.Workers()) }
