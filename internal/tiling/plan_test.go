package tiling

import (
	"sync/atomic"
	"testing"

	"pano/internal/mathx"
)

func planScore(seed uint64) func(r, c int) float64 {
	return func(r, c int) float64 {
		h := mathx.NewRNG(seed ^ uint64(r*UnitCols+c+1))
		return h.Range(0, 100)
	}
}

func TestPlanMatchesVariableTiling(t *testing.T) {
	score := planScore(42)
	scores := make([][]float64, UnitRows)
	for r := range scores {
		scores[r] = make([]float64, UnitCols)
		for c := range scores[r] {
			scores[r][c] = score(r, c)
		}
	}
	want, err := VariableTiling(scores, 36)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Plan(UnitRows, UnitCols, 36, score)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Tiles) != len(want.Tiles) {
		t.Fatalf("Plan: %d tiles, VariableTiling: %d", len(got.Tiles), len(want.Tiles))
	}
	for i := range got.Tiles {
		if got.Tiles[i] != want.Tiles[i] {
			t.Fatalf("tile %d: %+v vs %+v", i, got.Tiles[i], want.Tiles[i])
		}
	}
}

func TestPlanIdenticalAcrossWorkerCounts(t *testing.T) {
	score := planScore(7)
	ref, err := PlanWorkers(UnitRows, UnitCols, 24, score, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := PlanWorkers(UnitRows, UnitCols, 24, score, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Tiles) != len(ref.Tiles) {
			t.Fatalf("workers=%d: %d tiles, want %d", workers, len(got.Tiles), len(ref.Tiles))
		}
		for i := range got.Tiles {
			if got.Tiles[i] != ref.Tiles[i] {
				t.Fatalf("workers=%d tile %d: %+v, want %+v", workers, i, got.Tiles[i], ref.Tiles[i])
			}
		}
	}
}

func TestPlanScoresEachUnitOnce(t *testing.T) {
	var calls atomic.Int64
	score := func(r, c int) float64 {
		calls.Add(1)
		return float64(r + c)
	}
	if _, err := PlanWorkers(6, 10, 12, score, 4); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 60 {
		t.Fatalf("score called %d times, want 60", n)
	}
}

func TestPlanErrors(t *testing.T) {
	ok := func(r, c int) float64 { return 1 }
	cases := []struct {
		name       string
		rows, cols int
		n          int
		score      func(r, c int) float64
	}{
		{"zero rows", 0, 24, 12, ok},
		{"negative cols", 12, -1, 12, ok},
		{"zero n", 12, 24, 0, ok},
		{"nil score", 12, 24, 12, nil},
	}
	for _, c := range cases {
		if _, err := Plan(c.rows, c.cols, c.n, c.score); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
