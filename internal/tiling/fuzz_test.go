package tiling

import (
	"testing"

	"pano/internal/mathx"
)

// FuzzPlan feeds Plan arbitrary grid dimensions, tile budgets, and
// score surfaces (derived deterministically from the seed). The
// contract under fuzzing: invalid inputs return an error and never
// panic; valid inputs produce a layout whose tiles exactly partition
// the rows×cols unit grid (Layout.Validate) with at most n tiles, and
// the layout is identical at every worker count.
func FuzzPlan(f *testing.F) {
	f.Add(12, 24, 36, int64(1))
	f.Add(1, 1, 1, int64(2))
	f.Add(5, 7, 1, int64(3))   // n=1 → whole-grid tile
	f.Add(3, 3, 100, int64(4)) // budget above unit count
	f.Add(0, 24, 36, int64(5)) // invalid rows
	f.Add(12, -2, 36, int64(6))
	f.Add(12, 24, 0, int64(7)) // invalid n
	f.Fuzz(func(t *testing.T, rows, cols, n int, seed int64) {
		// Bound the valid region so the fuzzer can't allocate huge
		// matrices; oversized dims are still exercised as error paths.
		if rows > 64 {
			rows = 64
		}
		if cols > 64 {
			cols = 64
		}
		if n > 4096 {
			n = 4096
		}
		// Per-cell values derived from (r,c) alone, so concurrent
		// scoring is safe and independent of evaluation order.
		score := func(r, c int) float64 {
			h := mathx.NewRNG(uint64(seed)<<20 ^ uint64(r*1000003+c))
			return h.Range(0, 50)
		}

		layout, err := Plan(rows, cols, n, score)
		if rows <= 0 || cols <= 0 || n < 1 {
			if err == nil {
				t.Fatalf("Plan(%d, %d, %d) accepted invalid input", rows, cols, n)
			}
			return
		}
		if err != nil {
			t.Fatalf("Plan(%d, %d, %d): %v", rows, cols, n, err)
		}
		if err := layout.Validate(); err != nil {
			t.Fatalf("Plan(%d, %d, %d) layout invalid: %v", rows, cols, n, err)
		}
		if len(layout.Tiles) > n {
			t.Fatalf("Plan(%d, %d, %d) produced %d tiles", rows, cols, n, len(layout.Tiles))
		}

		// Layout must not depend on the worker count.
		for _, workers := range []int{1, 3} {
			alt, err := PlanWorkers(rows, cols, n, score, workers)
			if err != nil {
				t.Fatalf("PlanWorkers(workers=%d): %v", workers, err)
			}
			if len(alt.Tiles) != len(layout.Tiles) {
				t.Fatalf("workers=%d: %d tiles, want %d", workers, len(alt.Tiles), len(layout.Tiles))
			}
			for i := range alt.Tiles {
				if alt.Tiles[i] != layout.Tiles[i] {
					t.Fatalf("workers=%d: tile %d = %+v, want %+v", workers, i, alt.Tiles[i], layout.Tiles[i])
				}
			}
		}
	})
}
