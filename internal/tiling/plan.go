package tiling

import (
	"fmt"

	"pano/internal/parallel"
)

// Plan scores a rows×cols unit grid concurrently and groups it into at
// most n variable-size rectangles with the §5 top-down splitting. It is
// the one-call form of the offline step the provider runs per chunk:
// score(r, c) — typically a per-unit-tile PSPNR-efficiency evaluation,
// the dominant cost — is invoked exactly once per unit tile, from
// multiple goroutines, so it must be safe for concurrent use. The
// resulting layout always tiles the grid exactly (no gaps, no
// overlaps); invalid dimensions or n return an error, never a panic.
func Plan(rows, cols, n int, score func(r, c int) float64) (Layout, error) {
	return PlanWorkers(rows, cols, n, score, parallel.Workers())
}

// PlanWorkers is Plan with an explicit worker count (<= 1 scores
// serially). The layout is identical for every worker count: scoring
// writes one matrix cell per unit tile and the splitting runs on the
// completed matrix.
func PlanWorkers(rows, cols, n int, score func(r, c int) float64, workers int) (Layout, error) {
	if rows <= 0 || cols <= 0 {
		return Layout{}, fmt.Errorf("tiling: invalid grid %dx%d", rows, cols)
	}
	if n < 1 {
		return Layout{}, fmt.Errorf("tiling: n = %d, want >= 1", n)
	}
	if score == nil {
		return Layout{}, fmt.Errorf("tiling: nil score function")
	}
	scores := make([][]float64, rows)
	for r := range scores {
		scores[r] = make([]float64, cols)
	}
	parallel.ForWorkers(workers, rows*cols, func(i int) {
		r, c := i/cols, i%cols
		scores[r][c] = score(r, c)
	})
	return VariableTiling(scores, n)
}
