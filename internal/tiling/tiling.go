// Package tiling implements the spatial tiling schemes of §5.
//
// A chunk is first divided into a fine 12×24 grid of unit tiles. Pano
// then groups unit tiles into N variable-size rectangles so that unit
// tiles with similar efficiency scores — how fast a tile's PSPNR grows
// with quality level (Equation 5) — land in the same rectangle. The
// grouping minimizes the area-weighted variance of scores within
// rectangles via a top-down 2-D splitting process, in the spirit of the
// classic CLIQUE 2-D clustering enumeration the paper cites.
//
// Uniform grids (3×6, 6×12, 12×24) are also provided for the baselines
// and the Figure 4 overhead study.
package tiling

import (
	"container/heap"
	"fmt"

	"pano/internal/geom"
)

// Unit grid dimensions used by Pano's step 1 (§5).
const (
	UnitRows = 12
	UnitCols = 24
)

// DefaultTiles is the default number of variable-size tiles (N in §5).
const DefaultTiles = 30

// Grid is a uniform rows×cols tiling.
type Grid struct {
	Rows, Cols int
}

// Common uniform grids from the paper.
var (
	Grid3x6   = Grid{Rows: 3, Cols: 6}
	Grid6x12  = Grid{Rows: 6, Cols: 12}
	Grid12x24 = Grid{Rows: UnitRows, Cols: UnitCols}
)

// Rects returns the pixel rectangles of the grid over a w×h frame.
// Remainder pixels are distributed by proportional integer boundaries.
func (g Grid) Rects(w, h int) []geom.Rect {
	out := make([]geom.Rect, 0, g.Rows*g.Cols)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			out = append(out, geom.Rect{
				X0: c * w / g.Cols, Y0: r * h / g.Rows,
				X1: (c + 1) * w / g.Cols, Y1: (r + 1) * h / g.Rows,
			})
		}
	}
	return out
}

// String implements fmt.Stringer.
func (g Grid) String() string { return fmt.Sprintf("%dx%d", g.Rows, g.Cols) }

// UnitRect is a rectangle in unit-tile coordinates: rows [R0,R1) and
// columns [C0,C1) of the 12×24 unit grid.
type UnitRect struct {
	R0, C0, R1, C1 int
}

// Units returns the number of unit tiles covered.
func (u UnitRect) Units() int { return (u.R1 - u.R0) * (u.C1 - u.C0) }

// Pixels converts the unit rectangle to pixels on a w×h frame tiled by
// the rows×cols unit grid.
func (u UnitRect) Pixels(w, h, rows, cols int) geom.Rect {
	return geom.Rect{
		X0: u.C0 * w / cols, Y0: u.R0 * h / rows,
		X1: u.C1 * w / cols, Y1: u.R1 * h / rows,
	}
}

// Layout is a complete tiling of the unit grid into disjoint rectangles.
type Layout struct {
	Rows, Cols int
	Tiles      []UnitRect
}

// UniformLayout returns a layout mirroring uniform grid g on the unit
// grid; g's dimensions must divide the unit grid's.
func UniformLayout(g Grid) (Layout, error) {
	if g.Rows <= 0 || g.Cols <= 0 || UnitRows%g.Rows != 0 || UnitCols%g.Cols != 0 {
		return Layout{}, fmt.Errorf("tiling: grid %v does not divide unit grid %dx%d", g, UnitRows, UnitCols)
	}
	rh := UnitRows / g.Rows
	cw := UnitCols / g.Cols
	l := Layout{Rows: UnitRows, Cols: UnitCols}
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			l.Tiles = append(l.Tiles, UnitRect{R0: r * rh, C0: c * cw, R1: (r + 1) * rh, C1: (c + 1) * cw})
		}
	}
	return l, nil
}

// Validate checks that the layout's tiles exactly partition the unit
// grid: disjoint and covering.
func (l Layout) Validate() error {
	if l.Rows <= 0 || l.Cols <= 0 {
		return fmt.Errorf("tiling: invalid layout dims %dx%d", l.Rows, l.Cols)
	}
	covered := make([]bool, l.Rows*l.Cols)
	for _, t := range l.Tiles {
		if t.R0 < 0 || t.C0 < 0 || t.R1 > l.Rows || t.C1 > l.Cols || t.R1 <= t.R0 || t.C1 <= t.C0 {
			return fmt.Errorf("tiling: tile %+v out of bounds", t)
		}
		for r := t.R0; r < t.R1; r++ {
			for c := t.C0; c < t.C1; c++ {
				if covered[r*l.Cols+c] {
					return fmt.Errorf("tiling: unit (%d,%d) covered twice", r, c)
				}
				covered[r*l.Cols+c] = true
			}
		}
	}
	for i, ok := range covered {
		if !ok {
			return fmt.Errorf("tiling: unit (%d,%d) uncovered", i/l.Cols, i%l.Cols)
		}
	}
	return nil
}

// PixelRects converts every tile to pixel coordinates on a w×h frame.
func (l Layout) PixelRects(w, h int) []geom.Rect {
	out := make([]geom.Rect, len(l.Tiles))
	for i, t := range l.Tiles {
		out[i] = t.Pixels(w, h, l.Rows, l.Cols)
	}
	return out
}

// WeightedVariance returns the layout's objective value on a score
// matrix: the sum over tiles of (tile unit count) × (variance of scores
// within the tile). Lower is better.
func (l Layout) WeightedVariance(scores [][]float64) float64 {
	var total float64
	for _, t := range l.Tiles {
		n := float64(t.Units())
		var sum, sum2 float64
		for r := t.R0; r < t.R1; r++ {
			for c := t.C0; c < t.C1; c++ {
				s := scores[r][c]
				sum += s
				sum2 += s * s
			}
		}
		mean := sum / n
		total += n * (sum2/n - mean*mean)
	}
	if total < 0 {
		total = 0
	}
	return total
}

// prefix holds 2-D prefix sums of the score matrix and its square for
// O(1) rectangle variance queries.
type prefix struct {
	rows, cols int
	s, s2      []float64
}

func newPrefix(scores [][]float64) *prefix {
	rows := len(scores)
	cols := len(scores[0])
	p := &prefix{rows: rows, cols: cols,
		s:  make([]float64, (rows+1)*(cols+1)),
		s2: make([]float64, (rows+1)*(cols+1)),
	}
	w := cols + 1
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := scores[r][c]
			p.s[(r+1)*w+c+1] = v + p.s[r*w+c+1] + p.s[(r+1)*w+c] - p.s[r*w+c]
			p.s2[(r+1)*w+c+1] = v*v + p.s2[r*w+c+1] + p.s2[(r+1)*w+c] - p.s2[r*w+c]
		}
	}
	return p
}

// cost returns n * variance for a unit rectangle.
func (p *prefix) cost(u UnitRect) float64 {
	w := p.cols + 1
	rect := func(a []float64) float64 {
		return a[u.R1*w+u.C1] - a[u.R0*w+u.C1] - a[u.R1*w+u.C0] + a[u.R0*w+u.C0]
	}
	n := float64(u.Units())
	sum := rect(p.s)
	sum2 := rect(p.s2)
	v := sum2 - sum*sum/n
	if v < 0 {
		v = 0
	}
	return v
}

// split describes the best way to cut a rectangle.
type split struct {
	rect       UnitRect
	a, b       UnitRect
	gain       float64 // cost(rect) - cost(a) - cost(b), >= 0
	splittable bool
}

func bestSplit(p *prefix, u UnitRect) split {
	out := split{rect: u}
	base := p.cost(u)
	try := func(a, b UnitRect) {
		g := base - p.cost(a) - p.cost(b)
		if !out.splittable || g > out.gain {
			out = split{rect: u, a: a, b: b, gain: g, splittable: true}
		}
	}
	for r := u.R0 + 1; r < u.R1; r++ {
		try(UnitRect{u.R0, u.C0, r, u.C1}, UnitRect{r, u.C0, u.R1, u.C1})
	}
	for c := u.C0 + 1; c < u.C1; c++ {
		try(UnitRect{R0: u.R0, C0: u.C0, R1: u.R1, C1: c}, UnitRect{R0: u.R0, C0: c, R1: u.R1, C1: u.C1})
	}
	return out
}

// splitHeap orders candidate splits by descending gain.
type splitHeap []split

func (h splitHeap) Len() int            { return len(h) }
func (h splitHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h splitHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *splitHeap) Push(x interface{}) { *h = append(*h, x.(split)) }
func (h *splitHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// VariableTiling groups the unit grid into at most n rectangles using
// the top-down splitting of §5: starting from one whole-frame rectangle,
// repeatedly apply the split with the largest reduction in area-weighted
// score variance until n rectangles exist (or no rectangle can be split
// further). scores must be a UnitRows×UnitCols-shaped matrix, scores[r][c]
// being the efficiency score γ of unit tile (r, c).
func VariableTiling(scores [][]float64, n int) (Layout, error) {
	rows := len(scores)
	if rows == 0 {
		return Layout{}, fmt.Errorf("tiling: empty score matrix")
	}
	cols := len(scores[0])
	for _, row := range scores {
		if len(row) != cols {
			return Layout{}, fmt.Errorf("tiling: ragged score matrix")
		}
	}
	if n < 1 {
		return Layout{}, fmt.Errorf("tiling: n = %d, want >= 1", n)
	}
	p := newPrefix(scores)

	final := make([]UnitRect, 0, n)
	h := &splitHeap{}
	seed := bestSplit(p, UnitRect{R0: 0, C0: 0, R1: rows, C1: cols})
	if !seed.splittable {
		final = append(final, seed.rect)
	} else {
		heap.Push(h, seed)
	}
	// Invariant: len(final) + h.Len() rectangles currently partition the
	// grid; each heap entry carries its own best split.
	for len(final)+h.Len() < n && h.Len() > 0 {
		s := heap.Pop(h).(split)
		for _, child := range []UnitRect{s.a, s.b} {
			cs := bestSplit(p, child)
			if !cs.splittable {
				final = append(final, child)
			} else {
				heap.Push(h, cs)
			}
		}
	}
	for h.Len() > 0 {
		final = append(final, heap.Pop(h).(split).rect)
	}
	l := Layout{Rows: rows, Cols: cols, Tiles: final}
	if err := l.Validate(); err != nil {
		return Layout{}, fmt.Errorf("tiling: internal error: %w", err)
	}
	return l, nil
}
