package trace

import (
	"bytes"
	"context"
	"testing"
	"time"
)

// buildProcs simulates three processes contributing spans to one trace
// (client root → edge fill → origin handler) plus a trace private to
// the edge, by round-tripping each tracer through its own chrome
// export — the same path federation takes over HTTP.
func buildProcs(t *testing.T) (procs []ProcessTraces, shared TraceID) {
	t.Helper()
	// Seeds far apart in high bits: newTraceID mixes seed^counter, so
	// adjacent small seeds collide across tracers at small counters.
	client := New(Config{Seed: 0x100})
	edge := New(Config{Seed: 0x200})
	origin := New(Config{Seed: 0x300})

	ctx, root := client.Start(context.Background(), "stream", A("component", "client"))
	shared = root.TraceID()
	_, tile := client.Start(ctx, "tile_fetch", A("tile", 3))

	ectx, fill := edge.StartRemote(context.Background(), "edge.fill", shared, tile.SpanID(),
		A("component", "edge"))
	_, oh := origin.StartRemote(context.Background(), "http_request", shared, fill.SpanID(),
		A("component", "server"))
	oh.End()
	fill.End()
	_ = ectx
	tile.End()
	root.End()

	// A second, edge-local trace must stay separate after assembly.
	_, solo := edge.Start(context.Background(), "probe")
	solo.End()

	for name, tr := range map[string]*Tracer{"client": client, "edge0": edge, "origin0": origin} {
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Traces()...); err != nil {
			t.Fatal(err)
		}
		tds, err := ParseChromeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("%s: ParseChromeTrace: %v", name, err)
		}
		procs = append(procs, ProcessTraces{Process: name, Traces: tds})
	}
	return procs, shared
}

func TestParseChromeTraceRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 7})
	ctx, root := tr.Start(context.Background(), "session", A("component", "client"), A("w", 3840))
	_, child := tr.Start(ctx, "tile_fetch", A("tile", 9))
	child.SetError("timeout")
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Traces()...); err != nil {
		t.Fatal(err)
	}
	tds, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 1 {
		t.Fatalf("parsed %d traces, want 1", len(tds))
	}
	td := tds[0]
	if td.ID != root.TraceID() {
		t.Errorf("trace id %s, want %s", td.ID, root.TraceID())
	}
	if len(td.Spans) != 2 {
		t.Fatalf("parsed %d spans, want 2", len(td.Spans))
	}
	r := td.Root()
	if r == nil || r.Name != "session" {
		t.Fatalf("root = %+v, want session span", r)
	}
	if got := r.Attr("component"); got != "client" {
		t.Errorf("root component = %v", got)
	}
	tf := td.Find("tile_fetch")
	if len(tf) != 1 {
		t.Fatalf("tile_fetch spans = %d, want 1", len(tf))
	}
	if tf[0].Parent != r.ID {
		t.Errorf("child parent = %s, want %s", tf[0].Parent, r.ID)
	}
	if tf[0].Err != "timeout" {
		t.Errorf("child err = %q, want timeout", tf[0].Err)
	}
	if tf[0].Start.Before(r.Start.Add(-time.Millisecond)) {
		t.Errorf("child start %v before root %v", tf[0].Start, r.Start)
	}
}

func TestAssembleTraces(t *testing.T) {
	procs, shared := buildProcs(t)
	assembled := AssembleTraces(procs)
	if len(assembled) != 2 {
		t.Fatalf("assembled %d traces, want 2 (shared + edge-local)", len(assembled))
	}
	var joint *TraceData
	for _, td := range assembled {
		if td.ID == shared {
			joint = td
		}
	}
	if joint == nil {
		t.Fatalf("shared trace %s missing from assembly", shared)
	}
	if len(joint.Spans) != 4 {
		t.Fatalf("joint trace has %d spans, want 4 (client 2 + edge 1 + origin 1)", len(joint.Spans))
	}
	ps := joint.Processes()
	if len(ps) != 3 {
		t.Fatalf("joint trace spans %d processes (%v), want 3", len(ps), ps)
	}
	for i := 1; i < len(joint.Spans); i++ {
		if joint.Spans[i].Start.Before(joint.Spans[i-1].Start) {
			t.Errorf("spans not start-ordered at %d", i)
		}
	}

	// Feeding overlapping fragments twice must not duplicate spans.
	again := AssembleTraces(append(procs, procs...))
	for _, td := range again {
		if td.ID == shared && len(td.Spans) != 4 {
			t.Errorf("dedupe failed: %d spans after double feed, want 4", len(td.Spans))
		}
	}
}

func TestWriteAssembledChromeTrace(t *testing.T) {
	procs, shared := buildProcs(t)
	assembled := AssembleTraces(procs)
	var buf bytes.Buffer
	if err := WriteAssembledChromeTrace(&buf, assembled...); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("assembled trace does not validate: %v", err)
	}
	if spans != 5 {
		t.Errorf("validated %d X events, want 5", spans)
	}

	// The per-process tracks survive a reparse: every span still carries
	// its process attribute.
	tds, err := ParseChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, td := range tds {
		if td.ID != shared {
			continue
		}
		if ps := td.Processes(); len(ps) != 3 {
			t.Errorf("reparsed joint trace has processes %v, want 3 distinct", ps)
		}
	}

	// Determinism: assembling the same fragments again renders the same
	// bytes (the bench gate depends on this).
	var buf2 bytes.Buffer
	if err := WriteAssembledChromeTrace(&buf2, AssembleTraces(procs)...); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("assembled rendering is not deterministic")
	}
}

func TestParseChromeTraceRejectsBadIDs(t *testing.T) {
	bad := []string{
		`{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1,"args":{"trace_id":"zz","span_id":"0102030405060708"}}]}`,
		`{"traceEvents":[{"name":"x","ph":"X","ts":1,"pid":1,"tid":1,"args":{"trace_id":"000102030405060708090a0b0c0d0e0f","span_id":"nope"}}]}`,
		`not json`,
	}
	for _, in := range bad {
		if _, err := ParseChromeTrace([]byte(in)); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
	// Events without our id args are skipped, not fatal.
	tds, err := ParseChromeTrace([]byte(`{"traceEvents":[{"name":"m","ph":"M","pid":1,"tid":0},{"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(tds) != 0 {
		t.Errorf("foreign events produced %d traces, want 0", len(tds))
	}
}
