// Package trace is the repo's zero-dependency span tracer: a bounded
// in-memory store of session→chunk→tile→attempt span trees with
// context.Context propagation, W3C traceparent stitching across the
// HTTP hop, deterministic sampling, and three export paths (JSONL via
// the obs event log, Chrome trace-event JSON loadable in Perfetto or
// chrome://tracing, and exemplar trace IDs on obs histograms).
//
// Like the rest of the observability layer, a nil *Tracer is a valid
// no-op: Start on a nil tracer returns the context unchanged and a nil
// *Span, and every method on a nil *Span is safe and does nothing, so
// the instrumented hot paths pay only a nil check (and zero
// allocations) when tracing is disabled.
//
// Roots are opened with Tracer.Start; library code deeper in the stack
// opens children with the package-level StartSpan, which finds the
// parent span (and through it the tracer) in the context — so only the
// session entry points (client.Stream, sim.Run, the server middleware)
// ever hold a *Tracer.
package trace

import (
	"context"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"

	"pano/internal/obs"
)

// TraceID is a W3C trace-context trace id (16 bytes, hex-rendered).
type TraceID [16]byte

// IsZero reports whether the id is the invalid all-zero id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// String renders the id as 32 lowercase hex characters.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// SpanID is a W3C trace-context span id (8 bytes, hex-rendered).
type SpanID [8]byte

// IsZero reports whether the id is the invalid all-zero id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 16 lowercase hex characters.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value any
}

// A is shorthand for constructing an Attr.
func A(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Config tunes a Tracer.
type Config struct {
	// SampleRate is the fraction of new root spans that are traced,
	// decided deterministically from the trace id (<= 0 or >= 1 means
	// every root is sampled). Unsampled roots cost nothing downstream:
	// Start returns a nil span and no child ever allocates.
	SampleRate float64
	// MaxTraces bounds how many traces the in-memory store retains
	// (default 64); the oldest finished trace is evicted first.
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's span count (default 4096);
	// spans beyond the cap are counted as dropped, not stored.
	MaxSpansPerTrace int
	// Seed drives span/trace id generation (ids are unique per tracer
	// for any seed; a fixed seed makes them reproducible for tests).
	Seed uint64
	// Log, when set, receives one "span" event per finished span and a
	// "trace_complete" event per finished trace — the JSONL export path
	// (obs.EventLog mirrors records as JSON lines). nil disables it.
	Log *obs.EventLog
	// Obs, when set, receives tracer self-metrics:
	// pano_trace_spans_total, pano_trace_traces_total, and
	// pano_trace_dropped_spans_total. nil disables them.
	Obs *obs.Registry
}

// Tracer creates spans and retains finished traces in a bounded store.
// All methods are safe for concurrent use; a nil *Tracer is a no-op.
type Tracer struct {
	sampleRate float64
	seed       uint64
	ctr        atomic.Uint64
	store      *store
	log        *obs.EventLog

	spansTotal   *obs.Counter
	tracesTotal  *obs.Counter
	droppedTotal *obs.Counter
}

// New returns a tracer with the given configuration.
func New(cfg Config) *Tracer {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = 64
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = 4096
	}
	t := &Tracer{
		sampleRate: cfg.SampleRate,
		seed:       cfg.Seed,
		store:      newStore(cfg.MaxTraces, cfg.MaxSpansPerTrace),
		log:        cfg.Log,
	}
	if cfg.Obs != nil {
		t.spansTotal = cfg.Obs.Counter("pano_trace_spans_total", "spans finished by the tracer")
		t.tracesTotal = cfg.Obs.Counter("pano_trace_traces_total", "traces completed (root span ended)")
		t.droppedTotal = cfg.Obs.Counter("pano_trace_dropped_spans_total",
			"spans dropped by the bounded store (per-trace or store capacity)")
	}
	return t
}

// Nop returns the no-op tracer (nil), mirroring obs.Nop.
func Nop() *Tracer { return nil }

// splitmix64 is the id-generation mix (SplitMix64 finalizer).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}

func (t *Tracer) newTraceID() TraceID {
	c := t.ctr.Add(1)
	var id TraceID
	putU64(id[:8], splitmix64(t.seed^c))
	putU64(id[8:], splitmix64(t.seed^c^0xa5a5a5a5a5a5a5a5))
	if id.IsZero() {
		id[15] = 1
	}
	return id
}

func (t *Tracer) newSpanID() SpanID {
	c := t.ctr.Add(1)
	var id SpanID
	putU64(id[:], splitmix64(t.seed^c^0x5bd1e9955bd1e995))
	if id.IsZero() {
		id[7] = 1
	}
	return id
}

// sampled decides a root's fate deterministically from its trace id, so
// the same seed reproduces the same sampled set.
func (t *Tracer) sampled(id TraceID) bool {
	if t.sampleRate <= 0 || t.sampleRate >= 1 {
		return true
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(id[i])
	}
	return float64(v)/float64(^uint64(0)) < t.sampleRate
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// FromContext returns the active span (nil when none).
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWith returns ctx with s as the active span.
func ContextWith(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// Start opens a span. With no active span in ctx it opens a new root
// (subject to sampling); otherwise it opens a child of the active span.
// On a nil tracer, or for an unsampled root, it returns ctx unchanged
// and a nil span. The caller must End the span.
func (t *Tracer) Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if parent := FromContext(ctx); parent != nil {
		return t.start(ctx, parent.trace, parent.id, false, name, attrs)
	}
	tid := t.newTraceID()
	if !t.sampled(tid) {
		return ctx, nil
	}
	return t.start(ctx, tid, SpanID{}, true, name, attrs)
}

// StartRemote opens a span joining a trace begun elsewhere (the server
// side of a W3C traceparent hop). The caller must End the span. Since
// the remote root will never End in THIS tracer's store, ending a
// remote-joined span marks its trace locally complete — so a
// standalone server's /debug/traces serves the handler spans it
// recorded for traces rooted in another process. Later spans of the
// same trace still append.
func (t *Tracer) StartRemote(ctx context.Context, name string, tid TraceID, parent SpanID, attrs ...Attr) (context.Context, *Span) {
	if t == nil || tid.IsZero() {
		return ctx, nil
	}
	sctx, s := t.start(ctx, tid, parent, false, name, attrs)
	s.remote = true
	return sctx, s
}

func (t *Tracer) start(ctx context.Context, tid TraceID, parent SpanID, root bool, name string, attrs []Attr) (context.Context, *Span) {
	s := &Span{
		tracer: t,
		trace:  tid,
		id:     t.newSpanID(),
		parent: parent,
		root:   root,
		name:   name,
		start:  time.Now(),
		attrs:  append([]Attr(nil), attrs...),
	}
	return ContextWith(ctx, s), s
}

// StartSpan opens a child of the context's active span, routing through
// that span's tracer; with no active span it is a no-op. This is the
// entry point for library code that never holds a *Tracer itself.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent := FromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	return parent.tracer.Start(ctx, name, attrs...)
}

// Span is one timed operation in a trace. All methods are nil-safe.
type Span struct {
	tracer *Tracer
	trace  TraceID
	id     SpanID
	parent SpanID
	root   bool
	remote bool // joined via StartRemote: End marks the trace locally complete
	name   string
	start  time.Time

	mu       sync.Mutex
	attrs    []Attr
	errClass string
	ended    bool
}

// TraceID returns the span's trace id (zero on nil).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.trace
}

// SpanID returns the span's id (zero on nil).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return SpanID{}
	}
	return s.id
}

// TraceHex returns the hex trace id, or "" on nil — the form histogram
// exemplars and log fields want.
func (s *Span) TraceHex() string {
	if s == nil {
		return ""
	}
	return s.trace.String()
}

// Annotate attaches one key/value to the span.
func (s *Span) Annotate(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetError marks the span failed with a short error class (e.g.
// "timeout", "http_5xx", "conn_reset", "truncated").
func (s *Span) SetError(class string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.errClass = class
	s.mu.Unlock()
}

// End finishes the span and hands it to the tracer's store. Ending a
// span twice records it once; ending a root completes its trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	sd := SpanData{
		Trace:  s.trace,
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Start:  s.start,
		Dur:    end.Sub(s.start),
		Attrs:  append([]Attr(nil), s.attrs...),
		Err:    s.errClass,
	}
	s.mu.Unlock()
	s.tracer.finish(sd, s.root, s.remote)
}

// finish stores the span. root marks a locally-rooted trace done (and
// counts it); remote-joined spans also complete their trace in the
// store — without the root accounting, since many handler spans share
// one remote trace.
func (t *Tracer) finish(sd SpanData, root, remote bool) {
	stored := t.store.add(sd, root || remote)
	if stored {
		t.spansTotal.Inc()
	} else {
		t.droppedTotal.Inc()
	}
	if t.log != nil {
		args := []any{
			"trace_id", sd.Trace.String(), "span_id", sd.ID.String(),
			"name", sd.Name, "dur_sec", sd.Dur.Seconds(),
		}
		if !sd.Parent.IsZero() {
			args = append(args, "parent_id", sd.Parent.String())
		}
		if sd.Err != "" {
			args = append(args, "error_class", sd.Err)
		}
		for _, a := range sd.Attrs {
			args = append(args, "attr."+a.Key, a.Value)
		}
		t.log.Logger().Debug("span", args...)
	}
	if root {
		t.tracesTotal.Inc()
		if t.log != nil {
			td := t.store.get(sd.Trace)
			spans := 0
			if td != nil {
				spans = len(td.Spans)
			}
			t.log.Logger().Info("trace_complete",
				"trace_id", sd.Trace.String(), "root", sd.Name,
				"spans", spans, "dur_sec", sd.Dur.Seconds())
		}
	}
}

// Traces returns the finished traces, oldest first.
func (t *Tracer) Traces() []*TraceData {
	if t == nil {
		return nil
	}
	return t.store.finished()
}

// Trace returns one trace by id (finished or still active), or nil.
func (t *Tracer) Trace(id TraceID) *TraceData {
	if t == nil {
		return nil
	}
	return t.store.get(id)
}

// DroppedSpans returns how many spans the bounded store rejected.
func (t *Tracer) DroppedSpans() uint64 {
	if t == nil {
		return 0
	}
	return t.store.dropped()
}
