package trace

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pano/internal/obs"
)

func TestNilTracerAndSpanAreSafe(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.Start(context.Background(), "session", A("k", 1))
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer modified the context")
	}
	// Every span method must be a no-op on nil.
	sp.Annotate("k", "v")
	sp.SetError("timeout")
	sp.End()
	if got := sp.TraceHex(); got != "" {
		t.Errorf("nil span TraceHex = %q", got)
	}
	if !sp.TraceID().IsZero() || !sp.SpanID().IsZero() {
		t.Error("nil span has non-zero ids")
	}
	if sp.Traceparent() != "" {
		t.Error("nil span renders a traceparent")
	}
	if tr.Traces() != nil || tr.DroppedSpans() != 0 {
		t.Error("nil tracer has state")
	}
	// StartSpan without a parent in the context is also a no-op.
	if _, child := StartSpan(context.Background(), "chunk"); child != nil {
		t.Error("StartSpan without a parent returned a span")
	}
	if Nop() != nil {
		t.Error("Nop is not nil")
	}
}

func TestSpanTreeAndStore(t *testing.T) {
	tr := New(Config{Seed: 1})
	ctx, root := tr.Start(context.Background(), "session", A("component", "client"))
	if root == nil {
		t.Fatal("no root span")
	}
	cctx, chunk := StartSpan(ctx, "chunk", A("chunk", 0))
	if chunk == nil {
		t.Fatal("no child span")
	}
	if chunk.TraceID() != root.TraceID() {
		t.Fatalf("child trace %s != root trace %s", chunk.TraceHex(), root.TraceHex())
	}
	_, attempt := StartSpan(cctx, "attempt")
	attempt.SetError("timeout")
	attempt.End()
	chunk.End()
	chunk.End() // double End records once

	if got := tr.Traces(); len(got) != 0 {
		t.Fatalf("trace finished before its root ended: %d", len(got))
	}
	root.End()
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("finished traces = %d, want 1", len(traces))
	}
	td := traces[0]
	if !td.Complete || len(td.Spans) != 3 {
		t.Fatalf("trace complete=%v spans=%d, want true/3", td.Complete, len(td.Spans))
	}
	if r := td.Root(); r == nil || r.Name != "session" {
		t.Fatalf("root = %+v, want session", r)
	}
	// Parent linkage: the attempt's parent is the chunk, the chunk's the root.
	at := td.Find("attempt")[0]
	ch := td.Find("chunk")[0]
	if at.Parent != ch.ID {
		t.Errorf("attempt parent %s, want chunk %s", at.Parent, ch.ID)
	}
	if ch.Parent != td.Root().ID {
		t.Errorf("chunk parent %s, want root %s", ch.Parent, td.Root().ID)
	}
	if at.Err != "timeout" {
		t.Errorf("attempt error class %q, want timeout", at.Err)
	}
	if v, ok := ch.Attr("chunk").(int); !ok || v != 0 {
		t.Errorf("chunk attr = %v", ch.Attr("chunk"))
	}
	// By-id lookup.
	if tr.Trace(td.ID) == nil {
		t.Error("Trace(id) did not find the finished trace")
	}
	if tr.Trace(TraceID{1}) != nil {
		t.Error("Trace(unknown) returned a trace")
	}
}

func TestIDReproducibilityAndUniqueness(t *testing.T) {
	a, b := New(Config{Seed: 42}), New(Config{Seed: 42})
	for i := 0; i < 4; i++ {
		_, sa := a.Start(context.Background(), "s")
		_, sb := b.Start(context.Background(), "s")
		if sa.TraceID() != sb.TraceID() || sa.SpanID() != sb.SpanID() {
			t.Fatalf("seeded ids diverge at %d", i)
		}
	}
	seen := map[TraceID]bool{}
	c := New(Config{Seed: 7})
	for i := 0; i < 1000; i++ {
		_, s := c.Start(context.Background(), "s")
		if seen[s.TraceID()] {
			t.Fatalf("duplicate trace id at %d", i)
		}
		seen[s.TraceID()] = true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 3})
	_, sp := tr.Start(context.Background(), "session")
	h := sp.Traceparent()
	tid, parent, sampled, ok := ParseTraceparent(h)
	if !ok || !sampled {
		t.Fatalf("round trip failed on %q", h)
	}
	if tid != sp.TraceID() || parent != sp.SpanID() {
		t.Fatalf("parsed (%s,%s), want (%s,%s)", tid, parent, sp.TraceID(), sp.SpanID())
	}
	sp.End()

	bad := []string{
		"",
		"00-short-id-01",
		"01-" + tid.String() + "-" + parent.String() + "-01",            // unknown version
		"00-" + strings.Repeat("0", 32) + "-" + parent.String() + "-01", // zero trace id
		"00-" + tid.String() + "-" + strings.Repeat("0", 16) + "-01",    // zero span id
		"00-" + strings.Repeat("g", 32) + "-" + parent.String() + "-01", // non-hex
		"00-" + tid.String() + "-" + parent.String() + "-01-extra",      // extra field
		"00-" + tid.String()[:31] + "-" + parent.String() + "-01",       // short trace id
		"00-" + tid.String() + "-" + parent.String() + "-zz",            // non-hex flags
	}
	for _, h := range bad {
		if _, _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("accepted malformed traceparent %q", h)
		}
	}
	// Unsampled flag parses fine but reports sampled=false.
	if _, _, s, ok := ParseTraceparent("00-" + tid.String() + "-" + parent.String() + "-00"); !ok || s {
		t.Errorf("flags 00: ok=%v sampled=%v, want true/false", ok, s)
	}
}

func TestSamplingDeterministicAndRoughlyProportional(t *testing.T) {
	const n = 2000
	count := func() int {
		tr := New(Config{Seed: 9, SampleRate: 0.25, MaxTraces: 4 * n})
		kept := 0
		for i := 0; i < n; i++ {
			_, sp := tr.Start(context.Background(), "s")
			if sp != nil {
				kept++
				sp.End()
			}
		}
		return kept
	}
	a, b := count(), count()
	if a != b {
		t.Fatalf("sampling not deterministic: %d vs %d", a, b)
	}
	if a < n/8 || a > n/2 {
		t.Fatalf("sampled %d of %d at rate 0.25", a, n)
	}
	// Children of a sampled root are always kept; unsampled roots are nil,
	// so their children never start (StartSpan sees no parent).
	tr := New(Config{Seed: 9, SampleRate: 0.0001})
	for i := 0; i < 200; i++ {
		ctx, sp := tr.Start(context.Background(), "s")
		if sp == nil {
			if _, child := StartSpan(ctx, "c"); child != nil {
				t.Fatal("unsampled root produced a child span")
			}
		} else {
			sp.End()
		}
	}
}

func TestStoreBounds(t *testing.T) {
	tr := New(Config{Seed: 5, MaxTraces: 3, MaxSpansPerTrace: 4})
	var roots []*Span
	var ids []TraceID
	for i := 0; i < 5; i++ {
		ctx, root := tr.Start(context.Background(), fmt.Sprintf("session-%d", i))
		ids = append(ids, root.TraceID())
		// 3 children + root = 4 spans exactly at the cap; a 5th drops.
		for j := 0; j < 4; j++ {
			_, c := StartSpan(ctx, "chunk")
			c.End()
		}
		roots = append(roots, root)
	}
	for _, r := range roots {
		r.End() // roots themselves are over the span cap, but still complete the trace
	}
	if tr.DroppedSpans() != 5 {
		t.Errorf("dropped = %d, want 5 (each trace's over-cap root)", tr.DroppedSpans())
	}
	finished := tr.Traces()
	if len(finished) != 3 {
		t.Fatalf("retained %d traces, want 3", len(finished))
	}
	// Oldest-first eviction: the two oldest sessions are gone.
	for i, td := range finished {
		if td.ID != ids[i+2] {
			t.Errorf("retained trace %d = %s, want %s", i, td.ID, ids[i+2])
		}
	}
}

func TestSelfMetricsAndEventLog(t *testing.T) {
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 0)
	tr := New(Config{Seed: 2, Obs: reg, Log: el})
	ctx, root := tr.Start(context.Background(), "session")
	_, c := StartSpan(ctx, "chunk", A("chunk", 3))
	c.SetError("timeout")
	c.End()
	root.End()

	if got := reg.CounterValue("pano_trace_spans_total"); got != 2 {
		t.Errorf("spans_total = %v, want 2", got)
	}
	if got := reg.CounterValue("pano_trace_traces_total"); got != 1 {
		t.Errorf("traces_total = %v, want 1", got)
	}
	ev, ok := el.Last("trace_complete")
	if !ok {
		t.Fatal("no trace_complete event")
	}
	if ev.Str("trace_id") != root.TraceHex() {
		t.Errorf("trace_complete trace_id %q, want %q", ev.Str("trace_id"), root.TraceHex())
	}
	spans := el.Find("span")
	if len(spans) != 2 {
		t.Fatalf("span events = %d, want 2", len(spans))
	}
	chunkEv := spans[0]
	if chunkEv.Str("name") != "chunk" || chunkEv.Str("error_class") != "timeout" {
		t.Errorf("chunk span event = %+v", chunkEv.Attrs)
	}
	if chunkEv.Attr("attr.chunk") == nil {
		t.Error("span event lost its attributes")
	}
}

func TestMiddlewareStitchesAndSurvivesAbort(t *testing.T) {
	tr := New(Config{Seed: 11})
	var aborts int
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sp := FromContext(r.Context())
		sp.Annotate("handled", true)
		if r.URL.Path == "/abort" {
			aborts++
			sp.SetError("conn_reset")
			panic(http.ErrAbortHandler)
		}
		w.WriteHeader(http.StatusOK)
	})
	ts := httptest.NewServer(Middleware(tr, inner))
	defer ts.Close()

	// A client-side root provides the traceparent.
	_, client := tr.Start(context.Background(), "session", A("component", "client"))

	// Fresh connections per request: a GET aborted on a reused keep-alive
	// connection would be silently retried by the transport, duplicating
	// the aborted request's handler span.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	defer hc.CloseIdleConnections()
	do := func(path string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		req.Header.Set("traceparent", client.Traceparent())
		resp, err := hc.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}
	do("/ok")
	do("/abort") // server aborts the connection; the span must still record
	do("/ok")
	client.End()

	td := tr.Trace(client.TraceID())
	if td == nil {
		t.Fatal("no stitched trace")
	}
	reqs := td.Find("http_request")
	if len(reqs) != 3 {
		t.Fatalf("server spans = %d, want 3", len(reqs))
	}
	var sawAbort bool
	for _, sd := range reqs {
		if sd.Parent != client.SpanID() {
			t.Errorf("server span parent %s, want client span %s", sd.Parent, client.SpanID())
		}
		if sd.Attr("component") != "server" || sd.Attr("handled") != true {
			t.Errorf("server span attrs = %+v", sd.Attrs)
		}
		if sd.Err == "conn_reset" {
			sawAbort = true
		}
	}
	if !sawAbort {
		t.Error("aborted request's span lost its error class")
	}
	if aborts != 1 {
		t.Fatalf("aborts = %d", aborts)
	}
}

func TestRemoteJoinedTraceCompletesLocally(t *testing.T) {
	// A standalone server only ever sees StartRemote spans: the remote
	// root (the client's session, in another process) never ends in this
	// store. The trace must still list as finished — with later handler
	// spans appending — or /debug/traces would always serve nothing.
	reg := obs.NewRegistry()
	tr := New(Config{Seed: 21, Obs: reg})
	tid := TraceID{0xab, 1}
	for i := 0; i < 2; i++ {
		_, sp := tr.StartRemote(context.Background(), "http_request", tid, SpanID{1})
		sp.End()
	}
	traces := tr.Traces()
	if len(traces) != 1 || traces[0].ID != tid {
		t.Fatalf("finished traces = %d, want the remote-joined trace", len(traces))
	}
	if got := len(traces[0].Spans); got != 2 {
		t.Errorf("spans = %d, want 2 (spans append after local completion)", got)
	}
	// Remote joins are not locally-rooted traces: only spans count.
	if got := reg.CounterValue("pano_trace_traces_total"); got != 0 {
		t.Errorf("traces_total = %v, want 0 for remote joins", got)
	}
	if got := reg.CounterValue("pano_trace_spans_total"); got != 2 {
		t.Errorf("spans_total = %v, want 2", got)
	}
}

func TestMiddlewarePassThrough(t *testing.T) {
	tr := New(Config{Seed: 12})
	var sawSpan bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sawSpan = FromContext(r.Context()) != nil
	})
	ts := httptest.NewServer(Middleware(tr, inner))
	defer ts.Close()

	// No header: no span.
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sawSpan {
		t.Error("request without traceparent got a span")
	}
	// Unsampled header: no span.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/x", nil)
	req.Header.Set("traceparent", "00-0123456789abcdef0123456789abcdef-0123456789abcdef-00")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sawSpan {
		t.Error("unsampled traceparent got a span")
	}
	if got := len(tr.Traces()); got != 0 {
		t.Errorf("pass-through requests produced %d traces", got)
	}
}

func TestChromeTraceExportRoundTrip(t *testing.T) {
	tr := New(Config{Seed: 13})
	ctx, root := tr.Start(context.Background(), "session", A("component", "client"))
	sctx, chunk := StartSpan(ctx, "chunk")
	_, srv := tr.StartRemote(sctx, "http_request", root.TraceID(), chunk.SpanID(), A("component", "server"))
	srv.SetError("http_5xx")
	srv.End()
	chunk.End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tr.Traces()...); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateChromeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("export does not validate: %v\n%s", err, buf.String())
	}
	if n != 3 {
		t.Errorf("X events = %d, want 3", n)
	}
	out := buf.String()
	// Server spans land on tid 2 (the "server" thread), client work on 1.
	if !strings.Contains(out, `"name": "server"`) || !strings.Contains(out, `"name": "client"`) {
		t.Error("missing thread_name metadata events")
	}
	if !strings.Contains(out, `"error_class": "http_5xx"`) || !strings.Contains(out, `"cat": "error"`) {
		t.Error("error span lost its class/category")
	}
	if !strings.Contains(out, root.TraceHex()) {
		t.Error("trace id missing from args")
	}

	// Garbage must not validate.
	for _, bad := range []string{
		`{}`,
		`{"traceEvents":[{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1}]}`,     // empty name
		`{"traceEvents":[{"name":"x","ph":"Q","pid":1,"tid":1}]}`,         // unknown phase
		`{"traceEvents":[{"name":"x","ph":"X","ts":-5,"pid":1,"tid":1}]}`, // negative ts
		`{"traceEvents":[{"name":"x","ph":"X","ts":1,"dur":1}]}`,          // missing pid/tid
		`not json`,
	} {
		if _, err := ValidateChromeTrace([]byte(bad)); err == nil {
			t.Errorf("validated garbage %q", bad)
		}
	}
}

func TestDebugTracesHandler(t *testing.T) {
	tr := New(Config{Seed: 14})
	_, root := tr.Start(context.Background(), "session")
	root.End()

	ts := httptest.NewServer(tr.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body)
		return resp.StatusCode, b.String()
	}
	if code, body := get(""); code != http.StatusOK {
		t.Errorf("GET = %d (%s)", code, body)
	} else if _, err := ValidateChromeTrace([]byte(body)); err != nil {
		t.Errorf("handler output invalid: %v", err)
	}
	if code, _ := get("?trace=" + root.TraceHex()); code != http.StatusOK {
		t.Errorf("GET ?trace= = %d", code)
	}
	if code, _ := get("?trace=zz"); code != http.StatusBadRequest {
		t.Errorf("bad id = %d, want 400", code)
	}
	if code, _ := get("?trace=" + strings.Repeat("a", 32)); code != http.StatusNotFound {
		t.Errorf("unknown id = %d, want 404", code)
	}
	resp, err := http.Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") == "" {
		t.Errorf("POST = %d Allow=%q, want 405 with Allow", resp.StatusCode, resp.Header.Get("Allow"))
	}

	// A nil tracer's handler answers 503.
	var nilTr *Tracer
	ts2 := httptest.NewServer(nilTr.Handler())
	defer ts2.Close()
	resp, err = http.Get(ts2.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("nil handler = %d, want 503", resp.StatusCode)
	}
}

func TestConcurrentSpansRace(t *testing.T) {
	tr := New(Config{Seed: 15, MaxTraces: 8, MaxSpansPerTrace: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx, root := tr.Start(context.Background(), "session")
			for i := 0; i < 50; i++ {
				_, c := StartSpan(ctx, "chunk")
				c.Annotate("i", i)
				if i%7 == 0 {
					c.SetError("timeout")
				}
				c.End()
			}
			root.End()
		}(g)
	}
	wg.Wait()
	if got := len(tr.Traces()); got != 8 {
		t.Fatalf("finished traces = %d, want 8", got)
	}
	if tr.DroppedSpans() != 0 {
		t.Errorf("dropped %d spans; 51 per trace fits the 64 cap", tr.DroppedSpans())
	}
}

func BenchmarkStartSpanDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "chunk")
		sp.Annotate("k", i)
		sp.End()
	}
}

func BenchmarkStartSpanEnabled(b *testing.B) {
	tr := New(Config{Seed: 1, MaxTraces: 2, MaxSpansPerTrace: 1 << 20})
	ctx, root := tr.Start(context.Background(), "session")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "chunk")
		sp.End()
	}
}
