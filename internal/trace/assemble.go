package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// ParseChromeTrace parses Chrome trace-event JSON of the dialect
// WriteChromeTrace emits back into TraceData — the inverse of a
// /debug/traces export, and the ingestion half of cross-process trace
// assembly. Only "X" complete events carrying trace_id and span_id
// args become spans (metadata events shape the rendering, not the
// model); remaining args are kept as attributes, sorted by key so
// assembly output is deterministic regardless of JSON map order.
// Traces come back in first-appearance order with spans in event
// order.
func ParseChromeTrace(data []byte) ([]*TraceData, error) {
	var ct struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		return nil, fmt.Errorf("trace: parse chrome JSON: %w", err)
	}
	byID := map[TraceID]*TraceData{}
	var order []TraceID
	for i, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		tidHex, ok1 := ev.Args["trace_id"].(string)
		sidHex, ok2 := ev.Args["span_id"].(string)
		if !ok1 || !ok2 {
			continue // not one of our span events
		}
		var tid TraceID
		var sid SpanID
		if n, err := hex.Decode(tid[:], []byte(tidHex)); err != nil || n != len(tid) {
			return nil, fmt.Errorf("trace: event %d (%s): bad trace_id %q", i, ev.Name, tidHex)
		}
		if n, err := hex.Decode(sid[:], []byte(sidHex)); err != nil || n != len(sid) {
			return nil, fmt.Errorf("trace: event %d (%s): bad span_id %q", i, ev.Name, sidHex)
		}
		sd := SpanData{
			Trace: tid,
			ID:    sid,
			Name:  ev.Name,
			Start: time.Unix(0, int64(ev.Ts*1e3)),
			Dur:   time.Duration(ev.Dur * 1e3),
		}
		if pHex, ok := ev.Args["parent_id"].(string); ok {
			var pid SpanID
			if n, err := hex.Decode(pid[:], []byte(pHex)); err != nil || n != len(pid) {
				return nil, fmt.Errorf("trace: event %d (%s): bad parent_id %q", i, ev.Name, pHex)
			}
			sd.Parent = pid
		}
		if ec, ok := ev.Args["error_class"].(string); ok {
			sd.Err = ec
		}
		keys := make([]string, 0, len(ev.Args))
		for k := range ev.Args {
			switch k {
			case "trace_id", "span_id", "parent_id", "error_class":
			default:
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			sd.Attrs = append(sd.Attrs, Attr{Key: k, Value: ev.Args[k]})
		}
		td := byID[tid]
		if td == nil {
			td = &TraceData{ID: tid, Complete: true}
			byID[tid] = td
			order = append(order, tid)
		}
		td.Spans = append(td.Spans, sd)
	}
	out := make([]*TraceData, len(order))
	for i, id := range order {
		out[i] = byID[id]
	}
	return out, nil
}

// ProcessTraces is one process's contribution to cluster assembly: the
// traces scraped from its /debug/traces endpoint, tagged with the
// instance name they came from.
type ProcessTraces struct {
	Process string
	Traces  []*TraceData
}

// AssembleTraces joins per-process trace fragments on trace ID into
// whole cross-process traces: the client's root span, the edge's fill,
// the fleet fetch attempts, and the origin handler all land in one
// TraceData. Each span is tagged with a "process" attribute naming the
// instance that recorded it; spans seen from several scrapes dedupe by
// span ID (first wins). Traces are returned sorted by ID and spans by
// start time, so assembly of the same fragments is byte-stable.
func AssembleTraces(procs []ProcessTraces) []*TraceData {
	byID := map[TraceID]*TraceData{}
	seen := map[TraceID]map[SpanID]bool{}
	for _, p := range procs {
		for _, td := range p.Traces {
			if td == nil {
				continue
			}
			out := byID[td.ID]
			if out == nil {
				out = &TraceData{ID: td.ID, Complete: true}
				byID[td.ID] = out
				seen[td.ID] = map[SpanID]bool{}
			}
			for _, sd := range td.Spans {
				if seen[td.ID][sd.ID] {
					continue
				}
				seen[td.ID][sd.ID] = true
				sd.Attrs = append(append([]Attr(nil), sd.Attrs...), Attr{Key: "process", Value: p.Process})
				out.Spans = append(out.Spans, sd)
			}
		}
	}
	out := make([]*TraceData, 0, len(byID))
	for _, td := range byID {
		sort.SliceStable(td.Spans, func(i, j int) bool { return td.Spans[i].Start.Before(td.Spans[j].Start) })
		out = append(out, td)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID.String() < out[j].ID.String() })
	return out
}

// Processes returns the distinct "process" attribute values across the
// trace's spans, in first-appearance order — how many instances
// contributed to an assembled trace.
func (t *TraceData) Processes() []string {
	var out []string
	seen := map[string]bool{}
	for i := range t.Spans {
		p, _ := t.Spans[i].Attr("process").(string)
		if p != "" && !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// WriteAssembledChromeTrace renders assembled cross-process traces as
// Chrome trace-event JSON with one thread track per contributing
// process (named after it), so a single timeline shows the request
// hopping client→edge→origin. Spans keep their process attribute in
// args; the output passes ValidateChromeTrace and loads in Perfetto.
func WriteAssembledChromeTrace(w io.Writer, traces ...*TraceData) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pi, td := range traces {
		if td == nil || len(td.Spans) == 0 {
			continue
		}
		pid := pi + 1
		name := td.ID.String()
		if r := td.Root(); r != nil {
			name = r.Name + " " + name
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
		tidOf := map[string]int{}
		spans := append([]SpanData(nil), td.Spans...)
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		for i := range spans {
			sd := &spans[i]
			proc, _ := sd.Attr("process").(string)
			if proc == "" {
				proc = "unknown"
			}
			tid, ok := tidOf[proc]
			if !ok {
				tid = len(tidOf) + 1
				tidOf[proc] = tid
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": proc},
				})
			}
			args := map[string]any{
				"trace_id": sd.Trace.String(),
				"span_id":  sd.ID.String(),
			}
			if !sd.Parent.IsZero() {
				args["parent_id"] = sd.Parent.String()
			}
			if sd.Err != "" {
				args["error_class"] = sd.Err
			}
			for _, a := range sd.Attrs {
				args[a.Key] = a.Value
			}
			cat := "span"
			if sd.Err != "" {
				cat = "error"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sd.Name, Ph: "X", Cat: cat,
				Ts:  float64(sd.Start.UnixNano()) / 1e3,
				Dur: maxf(float64(sd.Dur.Nanoseconds())/1e3, 0.001),
				Pid: pid, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
