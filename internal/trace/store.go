package trace

import (
	"sync"
	"time"
)

// SpanData is one finished span as retained by the store.
type SpanData struct {
	Trace  TraceID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  time.Time
	Dur    time.Duration
	Attrs  []Attr
	// Err is the short error class set via SetError ("" on success).
	Err string
}

// Attr returns the named attribute's value (nil when absent; the last
// annotation wins when a key repeats).
func (s *SpanData) Attr(key string) any {
	var v any
	for _, a := range s.Attrs {
		if a.Key == key {
			v = a.Value
		}
	}
	return v
}

// TraceData is every stored span of one trace, in end order.
type TraceData struct {
	ID    TraceID
	Spans []SpanData
	// Complete is set once the root span has ended.
	Complete bool
}

// Root returns the trace's root span (nil when the root was dropped or
// has not ended).
func (t *TraceData) Root() *SpanData {
	for i := range t.Spans {
		if t.Spans[i].Parent.IsZero() {
			return &t.Spans[i]
		}
	}
	return nil
}

// Find returns every span with the given name, in end order.
func (t *TraceData) Find(name string) []*SpanData {
	var out []*SpanData
	for i := range t.Spans {
		if t.Spans[i].Name == name {
			out = append(out, &t.Spans[i])
		}
	}
	return out
}

// store is the bounded trace retention: at most maxTraces traces of at
// most maxSpans spans each. Completed traces are evicted oldest-first;
// spans over a cap are dropped and counted.
type store struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[TraceID]*TraceData
	order     []TraceID // completion order, oldest first
	droppedN  uint64
}

func newStore(maxTraces, maxSpans int) *store {
	return &store{
		maxTraces: maxTraces,
		maxSpans:  maxSpans,
		traces:    make(map[TraceID]*TraceData),
	}
}

// add stores one finished span, reporting whether it was retained.
// root marks the span completing its trace.
func (st *store) add(sd SpanData, root bool) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	td := st.traces[sd.Trace]
	if td == nil {
		// Bound active traces too: a runaway span source cannot grow the
		// map past twice the retention target.
		if len(st.traces) >= 2*st.maxTraces {
			st.droppedN++
			return false
		}
		td = &TraceData{ID: sd.Trace}
		st.traces[sd.Trace] = td
	}
	stored := true
	if len(td.Spans) >= st.maxSpans {
		st.droppedN++
		stored = false
	} else {
		td.Spans = append(td.Spans, sd)
	}
	if root && !td.Complete {
		td.Complete = true
		st.order = append(st.order, sd.Trace)
		for len(st.order) > st.maxTraces {
			evict := st.order[0]
			st.order = st.order[1:]
			delete(st.traces, evict)
		}
	}
	return stored
}

// finished returns the completed traces, oldest first (copies of the
// span slices, safe to hold).
func (st *store) finished() []*TraceData {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*TraceData, 0, len(st.order))
	for _, id := range st.order {
		if td := st.traces[id]; td != nil {
			out = append(out, td.clone())
		}
	}
	return out
}

func (st *store) get(id TraceID) *TraceData {
	st.mu.Lock()
	defer st.mu.Unlock()
	td := st.traces[id]
	if td == nil {
		return nil
	}
	return td.clone()
}

func (st *store) dropped() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.droppedN
}

func (t *TraceData) clone() *TraceData {
	return &TraceData{ID: t.ID, Spans: append([]SpanData(nil), t.Spans...), Complete: t.Complete}
}
