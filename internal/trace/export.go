package trace

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"pano/internal/obs"
)

// Traceparent renders the span as a W3C trace-context traceparent
// header value ("" on nil), always flagged sampled: unsampled work
// never has a span to render.
func (s *Span) Traceparent() string {
	if s == nil {
		return ""
	}
	return "00-" + s.trace.String() + "-" + s.id.String() + "-01"
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex flags>"). ok is false for malformed or
// all-zero ids; sampled reflects the flags' sampled bit.
func ParseTraceparent(h string) (tid TraceID, parent SpanID, sampled, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(tid[:], []byte(parts[1])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if _, err := hex.Decode(parent[:], []byte(parts[2])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(parts[3])); err != nil {
		return TraceID{}, SpanID{}, false, false
	}
	if tid.IsZero() || parent.IsZero() {
		return TraceID{}, SpanID{}, false, false
	}
	return tid, parent, flags[0]&0x01 != 0, true
}

// Middleware wraps next so requests carrying a sampled traceparent
// header get a server-side span stitched into the caller's trace. The
// span is placed in the request context for downstream annotation (the
// server's instrument hook, the chaos injector); requests without a
// (sampled) traceparent pass through untouched. A nil tracer returns
// next unchanged.
func Middleware(t *Tracer, next http.Handler) http.Handler {
	if t == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tid, parent, sampled, ok := ParseTraceparent(r.Header.Get("traceparent"))
		if !ok || !sampled {
			next.ServeHTTP(w, r)
			return
		}
		ctx, sp := t.StartRemote(r.Context(), "http_request", tid, parent,
			A("component", "server"), A("method", r.Method), A("path", r.URL.Path))
		// End runs during panic unwinding too, so aborted-connection
		// faults (http.ErrAbortHandler) still record their span.
		defer sp.End()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// chromeEvent is one Chrome trace-event ("X" complete span or "M"
// metadata), the JSON object format Perfetto and chrome://tracing load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Cat  string         `json:"cat,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// componentTid maps a span's component attribute to a stable thread
// lane, so client/sim work and server work render as separate tracks.
func componentTid(sd *SpanData) int {
	switch sd.Attr("component") {
	case "server":
		return 2
	default:
		return 1
	}
}

// WriteChromeTrace renders traces in Chrome trace-event JSON (object
// form, ph "X" complete events, microsecond timestamps): one process
// per trace, one thread per component, span attributes in args. The
// output loads directly in Perfetto (ui.perfetto.dev) and
// chrome://tracing.
func WriteChromeTrace(w io.Writer, traces ...*TraceData) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for pi, td := range traces {
		if td == nil || len(td.Spans) == 0 {
			continue
		}
		pid := pi + 1
		name := td.ID.String()
		if r := td.Root(); r != nil {
			name = r.Name + " " + name
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": name},
		})
		tids := map[int]string{1: "client", 2: "server"}
		seen := map[int]bool{}
		spans := append([]SpanData(nil), td.Spans...)
		sort.Slice(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
		for i := range spans {
			sd := &spans[i]
			tid := componentTid(sd)
			if !seen[tid] {
				seen[tid] = true
				out.TraceEvents = append(out.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": tids[tid]},
				})
			}
			args := map[string]any{
				"trace_id": sd.Trace.String(),
				"span_id":  sd.ID.String(),
			}
			if !sd.Parent.IsZero() {
				args["parent_id"] = sd.Parent.String()
			}
			if sd.Err != "" {
				args["error_class"] = sd.Err
			}
			for _, a := range sd.Attrs {
				args[a.Key] = a.Value
			}
			cat := "span"
			if sd.Err != "" {
				cat = "error"
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sd.Name, Ph: "X", Cat: cat,
				Ts:  float64(sd.Start.UnixNano()) / 1e3,
				Dur: maxf(float64(sd.Dur.Nanoseconds())/1e3, 0.001),
				Pid: pid, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// ValidateChromeTrace checks that data parses as Chrome trace-event
// JSON of the shape WriteChromeTrace emits: a traceEvents array whose
// events have a name, a known phase, and non-negative timestamps and
// durations. It returns the number of "X" span events.
func ValidateChromeTrace(data []byte) (int, error) {
	var ct struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  float64  `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &ct); err != nil {
		return 0, fmt.Errorf("trace: chrome JSON: %w", err)
	}
	if ct.TraceEvents == nil {
		return 0, fmt.Errorf("trace: chrome JSON: missing traceEvents array")
	}
	spans := 0
	for i, ev := range ct.TraceEvents {
		if ev.Name == "" {
			return 0, fmt.Errorf("trace: event %d: empty name", i)
		}
		if ev.Pid == nil || ev.Tid == nil {
			return 0, fmt.Errorf("trace: event %d (%s): missing pid/tid", i, ev.Name)
		}
		switch ev.Ph {
		case "M":
		case "X":
			if ev.Ts == nil || *ev.Ts < 0 || ev.Dur < 0 {
				return 0, fmt.Errorf("trace: event %d (%s): bad ts/dur", i, ev.Name)
			}
			spans++
		default:
			return 0, fmt.Errorf("trace: event %d (%s): unknown phase %q", i, ev.Name, ev.Ph)
		}
	}
	return spans, nil
}

// Handler serves the store's finished traces as Chrome trace-event
// JSON; mount it at /debug/traces. ?trace=<hex id> selects one trace
// (404 when absent). A nil tracer serves 503; non-GET/HEAD methods get
// 405, matching the other debug endpoints.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !obs.AllowGetHead(w, r) {
			return
		}
		if t == nil {
			http.Error(w, "tracing disabled", http.StatusServiceUnavailable)
			return
		}
		var traces []*TraceData
		if q := r.URL.Query().Get("trace"); q != "" {
			var id TraceID
			if n, err := hex.Decode(id[:], []byte(q)); err != nil || n != len(id) {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			td := t.Trace(id)
			if td == nil {
				http.NotFound(w, r)
				return
			}
			traces = []*TraceData{td}
		} else {
			traces = t.Traces()
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		_ = WriteChromeTrace(w, traces...)
	})
}
