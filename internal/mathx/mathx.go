// Package mathx provides the small numeric toolkit shared by the Pano
// packages: least-squares regression (linear and power-law), running
// statistics, empirical CDFs, and a deterministic PRNG suitable for
// reproducible experiments.
package mathx

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned by fitters given fewer points than
// unknowns.
var ErrInsufficientData = errors.New("mathx: insufficient data points")

// Linear is a fitted line y = Slope*x + Intercept.
type Linear struct {
	Slope     float64
	Intercept float64
}

// Eval evaluates the line at x.
func (l Linear) Eval(x float64) float64 { return l.Slope*x + l.Intercept }

// FitLinear fits y = a*x + b by ordinary least squares.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return Linear{}, ErrInsufficientData
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		// All x identical: fall back to a flat line through the mean.
		return Linear{Slope: 0, Intercept: sy / n}, nil
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return Linear{Slope: a, Intercept: b}, nil
}

// Power is a fitted power law y = A * x^B.
type Power struct {
	A float64
	B float64
}

// Eval evaluates the power law at x. Eval(0) returns 0 when B > 0, A when
// B == 0, and +Inf when B < 0.
func (p Power) Eval(x float64) float64 {
	if x == 0 {
		switch {
		case p.B > 0:
			return 0
		case p.B == 0:
			return p.A
		default:
			return math.Inf(1)
		}
	}
	return p.A * math.Pow(x, p.B)
}

// FitPower fits y = A*x^B by least squares in log-log space. All xs and ys
// must be strictly positive; non-positive points are skipped. It returns
// ErrInsufficientData if fewer than two usable points remain.
func FitPower(xs, ys []float64) (Power, error) {
	if len(xs) != len(ys) {
		return Power{}, ErrInsufficientData
	}
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	lin, err := FitLinear(lx, ly)
	if err != nil {
		return Power{}, err
	}
	return Power{A: math.Exp(lin.Intercept), B: lin.Slope}, nil
}

// Stats accumulates running moments without storing samples.
// The zero value is ready to use.
type Stats struct {
	n          int
	mean, m2   float64
	min, max   float64
	hasExtreme bool
}

// Add records one observation.
func (s *Stats) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if !s.hasExtreme || x < s.min {
		s.min = x
	}
	if !s.hasExtreme || x > s.max {
		s.max = x
	}
	s.hasExtreme = true
}

// N returns the number of observations.
func (s *Stats) N() int { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Stats) Mean() float64 { return s.mean }

// Var returns the sample variance (n-1 denominator), or 0 for n < 2.
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }

// StdErr returns the standard error of the mean.
func (s *Stats) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Min returns the minimum observation, or 0 with no observations.
func (s *Stats) Min() float64 { return s.min }

// Max returns the maximum observation, or 0 with no observations.
func (s *Stats) Max() float64 { return s.max }

// CDF is an empirical cumulative distribution over a sample.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from samples (copied, then sorted).
func NewCDF(samples []float64) *CDF {
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of samples.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x) in [0, 1].
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-quantile for q in [0, 1] using nearest-rank.
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Points returns up to n evenly spaced (x, P(X<=x)) pairs for plotting.
func (c *CDF) Points(n int) (xs, ps []float64) {
	if len(c.sorted) == 0 || n <= 0 {
		return nil, nil
	}
	if n > len(c.sorted) {
		n = len(c.sorted)
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.sorted) - 1) / maxInt(n-1, 1)
		xs[i] = c.sorted[idx]
		ps[i] = float64(idx+1) / float64(len(c.sorted))
	}
	return xs, ps
}

// Mean returns the sample mean of the CDF's underlying data.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var s float64
	for _, v := range c.sorted {
		s += v
	}
	return s / float64(len(c.sorted))
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Interp performs piecewise-linear interpolation of y(x) over anchor
// points (xs ascending). Outside the range it clamps to the end values.
func Interp(x float64, xs, ys []float64) float64 {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	n := len(xs)
	if x >= xs[n-1] {
		return ys[n-1]
	}
	i := sort.SearchFloat64s(xs, x)
	// xs[i-1] < x <= xs[i]
	t := (x - xs[i-1]) / (xs[i] - xs[i-1])
	return ys[i-1] + t*(ys[i]-ys[i-1])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
