package mathx

import "math"

// RNG is a small, fast, deterministic PRNG (splitmix64 core) used so that
// every experiment in the repository is reproducible from a seed without
// depending on math/rand's global state.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal deviate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// NormMS returns a normal deviate with the given mean and standard
// deviation.
func (r *RNG) NormMS(mean, std float64) float64 {
	return mean + std*r.Norm()
}

// Fork returns an independent generator derived from this one's stream,
// so that sub-experiments can be seeded without consuming correlated
// state.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64())
}
