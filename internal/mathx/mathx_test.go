package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	l, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-9 || math.Abs(l.Intercept-1) > 1e-9 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", l)
	}
	if math.Abs(l.Eval(10)-21) > 1e-9 {
		t.Errorf("Eval(10) = %v, want 21", l.Eval(10))
	}
}

func TestFitLinearDegenerate(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLinear([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	l, err := FitLinear([]float64{3, 3, 3}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if l.Slope != 0 || math.Abs(l.Intercept-2) > 1e-9 {
		t.Errorf("vertical data fit = %+v, want flat mean", l)
	}
}

func TestFitPowerExact(t *testing.T) {
	// y = 3 x^1.7
	xs := []float64{0.5, 1, 2, 4, 8}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 1.7)
	}
	p, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.A-3) > 1e-6 || math.Abs(p.B-1.7) > 1e-6 {
		t.Errorf("power fit = %+v, want A=3 B=1.7", p)
	}
}

func TestFitPowerSkipsNonPositive(t *testing.T) {
	xs := []float64{-1, 0, 1, 2, 4}
	ys := []float64{5, 5, 2, 4, 8} // last three: y = 2x
	p, err := FitPower(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.A-2) > 1e-6 || math.Abs(p.B-1) > 1e-6 {
		t.Errorf("power fit = %+v, want A=2 B=1", p)
	}
}

func TestPowerEvalEdgeCases(t *testing.T) {
	if got := (Power{A: 2, B: 1.5}).Eval(0); got != 0 {
		t.Errorf("Eval(0) with B>0 = %v, want 0", got)
	}
	if got := (Power{A: 2, B: 0}).Eval(0); got != 2 {
		t.Errorf("Eval(0) with B=0 = %v, want 2", got)
	}
	if got := (Power{A: 2, B: -1}).Eval(0); !math.IsInf(got, 1) {
		t.Errorf("Eval(0) with B<0 = %v, want +Inf", got)
	}
}

func TestStats(t *testing.T) {
	var s Stats
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-9 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(s.Var()-32.0/7.0) > 1e-9 {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestStatsZeroValue(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Var() != 0 || s.StdErr() != 0 {
		t.Error("zero-value Stats should report zeros")
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	if got := c.At(3); math.Abs(got-0.6) > 1e-9 {
		t.Errorf("At(3) = %v, want 0.6", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %v, want 0", got)
	}
	if got := c.At(10); got != 1 {
		t.Errorf("At(10) = %v, want 1", got)
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("q0 = %v, want 1", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("q1 = %v, want 5", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) < 2 {
			return true
		}
		c := NewCDF(vals)
		// CDF evaluated at increasing points must be non-decreasing.
		prev := -1.0
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			x := c.Quantile(q)
			p := c.At(x)
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	xs, ps := c.Points(5)
	if len(xs) != 5 || len(ps) != 5 {
		t.Fatalf("Points lengths %d/%d", len(xs), len(ps))
	}
	if xs[0] != 1 || xs[4] != 5 {
		t.Errorf("Points endpoints = %v", xs)
	}
	if ps[4] != 1 {
		t.Errorf("last p = %v, want 1", ps[4])
	}
}

func TestInterp(t *testing.T) {
	xs := []float64{0, 10, 20}
	ys := []float64{1, 2, 4}
	cases := []struct{ x, want float64 }{
		{-5, 1}, {0, 1}, {5, 1.5}, {10, 2}, {15, 3}, {20, 4}, {30, 4},
	}
	for _, c := range cases {
		if got := Interp(c.x, xs, ys); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Interp(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should yield same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(11)
	var s Stats
	for i := 0; i < 20000; i++ {
		s.Add(r.Norm())
	}
	if math.Abs(s.Mean()) > 0.05 {
		t.Errorf("normal mean = %v, want ~0", s.Mean())
	}
	if math.Abs(s.Std()-1) > 0.05 {
		t.Errorf("normal std = %v, want ~1", s.Std())
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked streams should differ")
	}
}
