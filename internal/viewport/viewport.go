// Package viewport provides viewpoint trajectory traces and the
// client-side estimators of §6: linear-regression viewpoint prediction
// (as in Flare) and the conservative lower-bound factor estimates that
// make Pano robust to prediction error (Figure 10).
//
// A trace is a sequence of (time, direction) samples at a fixed refresh
// interval (0.05 s on the paper's HTC Vive rig). Synthetic traces follow
// the paper's §8.5 recipe: the viewpoint tracks a randomly picked object
// 70% of the time and dwells on a random region the remaining 30%.
package viewport

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/scene"
)

// RefreshInterval is the sampling period of viewpoint traces in seconds,
// matching mainstream VR devices (§8.1).
const RefreshInterval = 0.05

// Trace is a viewpoint trajectory sampled every RefreshInterval seconds
// starting at t = 0. Yaw values are stored unwrapped (continuous across
// the ±180° seam) so that finite differences and regression are
// well-defined; At normalizes on the way out.
type Trace struct {
	YawDeg   []float64 // unwrapped
	PitchDeg []float64
}

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.YawDeg) }

// Duration returns the trace duration in seconds.
func (tr *Trace) Duration() float64 {
	if tr.Len() == 0 {
		return 0
	}
	return float64(tr.Len()-1) * RefreshInterval
}

// At returns the (normalized) viewpoint at time t, linearly interpolated
// and clamped to the trace's span.
func (tr *Trace) At(t float64) geom.Angle {
	y, p := tr.raw(t)
	return geom.Angle{Yaw: geom.NormYaw(y), Pitch: geom.ClampPitch(p)}
}

// raw returns unwrapped yaw and pitch at time t.
func (tr *Trace) raw(t float64) (yaw, pitch float64) {
	n := tr.Len()
	if n == 0 {
		return 0, 0
	}
	ft := t / RefreshInterval
	i := int(ft)
	if i < 0 {
		return tr.YawDeg[0], tr.PitchDeg[0]
	}
	if i >= n-1 {
		return tr.YawDeg[n-1], tr.PitchDeg[n-1]
	}
	f := ft - float64(i)
	return tr.YawDeg[i] + f*(tr.YawDeg[i+1]-tr.YawDeg[i]),
		tr.PitchDeg[i] + f*(tr.PitchDeg[i+1]-tr.PitchDeg[i])
}

// SpeedAt returns the viewpoint's angular speed in deg/s at time t,
// from a centered finite difference over a 0.3 s window. The window
// averages out per-sample head jitter so the speed reflects pursuit
// motion rather than sensor noise — without it, the conservative
// minimum-speed bound of §6.1 collapses to zero on any real trace.
func (tr *Trace) SpeedAt(t float64) float64 {
	if tr.Len() < 2 {
		return 0
	}
	h := 6 * RefreshInterval
	y0, p0 := tr.raw(t - h/2)
	y1, p1 := tr.raw(t + h/2)
	return math.Hypot(y1-y0, p1-p0) / h
}

// MinSpeedIn returns the minimum speed observed in [t0, t1], sampled at
// the refresh interval. It is the paper's conservative speed estimator:
// "the lowest speed in the last two seconds serves as a reliable
// conservative estimator of the speed in the next few seconds" (§6.1).
func (tr *Trace) MinSpeedIn(t0, t1 float64) float64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	minV := math.Inf(1)
	for t := t0; t <= t1+1e-9; t += RefreshInterval {
		if v := tr.SpeedAt(t); v < minV {
			minV = v
		}
	}
	if math.IsInf(minV, 1) {
		return 0
	}
	return minV
}

// MaxLumaChange returns the largest luminance swing seen by the
// viewpoint over the window [t-window, t], given a luminance lookup for
// the viewpoint's position — the l factor of the 360JND model.
func (tr *Trace) MaxLumaChange(t, window float64, lumaAt func(geom.Angle, float64) float64) float64 {
	ref := lumaAt(tr.At(t), t)
	var maxDiff float64
	for u := math.Max(0, t-window); u <= t+1e-9; u += RefreshInterval {
		d := math.Abs(lumaAt(tr.At(u), u) - ref)
		if d > maxDiff {
			maxDiff = d
		}
	}
	return maxDiff
}

// AddNoise returns a copy of the trace with every sample shifted by a
// uniform random distance in [0, n] degrees in a random direction — the
// §8.3 stress test for viewpoint prediction errors.
func (tr *Trace) AddNoise(n float64, rng *mathx.RNG) *Trace {
	out := &Trace{
		YawDeg:   make([]float64, tr.Len()),
		PitchDeg: make([]float64, tr.Len()),
	}
	for i := range tr.YawDeg {
		dist := rng.Range(0, n)
		dir := rng.Range(0, 2*math.Pi)
		out.YawDeg[i] = tr.YawDeg[i] + dist*math.Cos(dir)
		out.PitchDeg[i] = geom.ClampPitch(tr.PitchDeg[i] + dist*math.Sin(dir))
	}
	return out
}

// Predictor extrapolates the viewpoint by linear regression over recent
// history, the method shared by Pano and the baselines (§7, [52, 53]).
type Predictor struct {
	// HistoryWindow is how much history feeds the regression, seconds.
	HistoryWindow float64
}

// NewPredictor returns a predictor with the paper's 1 s history window.
func NewPredictor() *Predictor { return &Predictor{HistoryWindow: 1.0} }

// Predict returns the predicted viewpoint at now+horizon, fitting
// separate lines to unwrapped yaw and pitch over the history window.
func (p *Predictor) Predict(tr *Trace, now, horizon float64) geom.Angle {
	t0 := math.Max(0, now-p.HistoryWindow)
	var ts, ys, ps []float64
	for t := t0; t <= now+1e-9; t += RefreshInterval {
		y, pi := tr.raw(t)
		ts = append(ts, t)
		ys = append(ys, y)
		ps = append(ps, pi)
	}
	if len(ts) < 2 {
		return tr.At(now)
	}
	ly, err1 := mathx.FitLinear(ts, ys)
	lp, err2 := mathx.FitLinear(ts, ps)
	if err1 != nil || err2 != nil {
		return tr.At(now)
	}
	tt := now + horizon
	return geom.Angle{
		Yaw:   geom.NormYaw(ly.Eval(tt)),
		Pitch: geom.ClampPitch(lp.Eval(tt)),
	}
}

// PredictError returns the great-circle error in degrees between the
// prediction made at now for now+horizon and the truth.
func (p *Predictor) PredictError(tr *Trace, now, horizon float64) float64 {
	return geom.GreatCircleDeg(p.Predict(tr, now, horizon), tr.At(now+horizon))
}

// SynthesizeOpts tunes trace synthesis.
type SynthesizeOpts struct {
	// TrackFraction is the fraction of time spent tracking an object
	// (the paper uses 0.7, matching real traces).
	TrackFraction float64
	// HeadNoiseDeg is the std-dev of per-sample head jitter in degrees.
	HeadNoiseDeg float64
	// SwitchMeanSec is the mean dwell before re-picking a target.
	SwitchMeanSec float64
}

// DefaultSynthesizeOpts returns the §8.5 settings.
func DefaultSynthesizeOpts() SynthesizeOpts {
	return SynthesizeOpts{TrackFraction: 0.7, HeadNoiseDeg: 0.3, SwitchMeanSec: 5}
}

// Synthesize generates a viewpoint trace for a video: alternating
// object-tracking and free-look phases with smooth saccade transitions.
func Synthesize(v *scene.Video, seed uint64, opts SynthesizeOpts) *Trace {
	rng := mathx.NewRNG(seed*0x9e3779b9 + 1)
	n := int(float64(v.DurationSec)/RefreshInterval) + 1
	tr := &Trace{YawDeg: make([]float64, n), PitchDeg: make([]float64, n)}

	type target struct {
		obj   int // -1 = free look
		fixed geom.Angle
	}
	pick := func() target {
		if len(v.Objects) > 0 && rng.Float64() < opts.TrackFraction {
			return target{obj: rng.Intn(len(v.Objects))}
		}
		return target{obj: -1, fixed: geom.Angle{
			Yaw:   rng.Range(-180, 180),
			Pitch: rng.Range(-40, 40),
		}}
	}
	cur := pick()
	nextSwitch := rng.Range(0.5, 2*opts.SwitchMeanSec)

	// The head lags its target with a first-order filter, which yields
	// the smooth-pursuit speeds seen in real traces.
	const lag = 0.4 // seconds to close ~63% of the gap
	yaw, pitch := 0.0, 0.0
	if cur.obj >= 0 {
		p := v.Objects[cur.obj].PositionAt(0)
		yaw, pitch = p.Yaw, p.Pitch
	} else {
		yaw, pitch = cur.fixed.Yaw, cur.fixed.Pitch
	}
	for i := 0; i < n; i++ {
		t := float64(i) * RefreshInterval
		if t >= nextSwitch {
			cur = pick()
			nextSwitch = t + rng.Range(0.5, 2*opts.SwitchMeanSec)
		}
		var goal geom.Angle
		if cur.obj >= 0 {
			goal = v.Objects[cur.obj].PositionAt(t)
		} else {
			goal = cur.fixed
		}
		// Move toward the goal along the short arc, in unwrapped space.
		dy := geom.YawDelta(geom.NormYaw(yaw), goal.Yaw)
		dp := goal.Pitch - pitch
		alpha := RefreshInterval / lag
		if alpha > 1 {
			alpha = 1
		}
		yaw += dy*alpha + rng.NormMS(0, opts.HeadNoiseDeg)
		pitch = geom.ClampPitch(pitch + dp*alpha + rng.NormMS(0, opts.HeadNoiseDeg))
		tr.YawDeg[i] = yaw
		tr.PitchDeg[i] = pitch
	}
	return tr
}

// WriteCSV serializes the trace as "t,yaw,pitch" rows (normalized yaw).
func (tr *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,yaw,pitch"); err != nil {
		return err
	}
	for i := range tr.YawDeg {
		t := float64(i) * RefreshInterval
		if _, err := fmt.Fprintf(bw, "%.3f,%.4f,%.4f\n", t, geom.NormYaw(tr.YawDeg[i]), tr.PitchDeg[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseCSV reads a trace written by WriteCSV (or any t,yaw,pitch CSV at
// the refresh interval), re-unwrapping yaw across the seam.
func ParseCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{}
	line := 0
	var prevYaw float64
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "t,") || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 3 {
			return nil, fmt.Errorf("viewport: line %d: want 3 fields, got %d", line, len(parts))
		}
		yaw, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("viewport: line %d: bad yaw: %v", line, err)
		}
		pitch, err := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("viewport: line %d: bad pitch: %v", line, err)
		}
		if tr.Len() > 0 {
			// Unwrap: choose the representation nearest the previous one.
			yaw = prevYaw + geom.YawDelta(geom.NormYaw(prevYaw), yaw)
		}
		prevYaw = yaw
		tr.YawDeg = append(tr.YawDeg, yaw)
		tr.PitchDeg = append(tr.PitchDeg, pitch)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("viewport: empty trace")
	}
	return tr, nil
}
