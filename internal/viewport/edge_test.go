package viewport

import (
	"math"
	"testing"

	"pano/internal/mathx"
)

// TestTraceEdgeCases drives the sampling surface through the degenerate
// shapes the swarm's trace pools can contain: empty traces,
// single-sample traces, and queries past the last timestamp.
func TestTraceEdgeCases(t *testing.T) {
	empty := &Trace{}
	single := &Trace{YawDeg: []float64{30}, PitchDeg: []float64{-10}}
	two := &Trace{YawDeg: []float64{0, 10}, PitchDeg: []float64{0, 5}}
	lastT := two.Duration()

	cases := []struct {
		name       string
		tr         *Trace
		t          float64
		wantYaw    float64
		wantPitch  float64
		wantSpeed0 bool // SpeedAt(t) must be exactly 0
	}{
		{"empty at zero", empty, 0, 0, 0, true},
		{"empty past end", empty, 99, 0, 0, true},
		{"single at zero", single, 0, 30, -10, true},
		{"single before start", single, -5, 30, -10, true},
		{"single past end", single, 7.5, 30, -10, true},
		{"two at last sample", two, lastT, 10, 5, false},
		{"two past end clamps", two, lastT + 3, 10, 5, false},
		{"two before start clamps", two, -1, 0, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.tr.At(tc.t)
			if math.Abs(a.Yaw-tc.wantYaw) > 1e-12 || math.Abs(a.Pitch-tc.wantPitch) > 1e-12 {
				t.Errorf("At(%v) = %+v, want yaw %v pitch %v", tc.t, a, tc.wantYaw, tc.wantPitch)
			}
			s := tc.tr.SpeedAt(tc.t)
			if tc.wantSpeed0 && s != 0 {
				t.Errorf("SpeedAt(%v) = %v, want 0", tc.t, s)
			}
			if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				t.Errorf("SpeedAt(%v) = %v, want finite non-negative", tc.t, s)
			}
		})
	}
}

func TestDurationEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
		want float64
	}{
		{"empty", &Trace{}, 0},
		{"single sample", &Trace{YawDeg: []float64{1}, PitchDeg: []float64{2}}, 0},
		{"two samples", &Trace{YawDeg: []float64{0, 1}, PitchDeg: []float64{0, 0}}, RefreshInterval},
	}
	for _, tc := range cases {
		if got := tc.tr.Duration(); got != tc.want {
			t.Errorf("%s: Duration = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestSpeedPastEndIsZero: past the last timestamp both finite-difference
// endpoints clamp to the final sample, so the apparent speed must decay
// to exactly zero rather than extrapolate.
func TestSpeedPastEndIsZero(t *testing.T) {
	tr := &Trace{
		YawDeg:   []float64{0, 10, 20, 30},
		PitchDeg: []float64{0, 0, 0, 0},
	}
	past := tr.Duration() + 6*RefreshInterval // both window endpoints beyond the trace
	if got := tr.SpeedAt(past); got != 0 {
		t.Errorf("SpeedAt past end = %v, want 0", got)
	}
	if got := tr.MinSpeedIn(past, past+1); got != 0 {
		t.Errorf("MinSpeedIn past end = %v, want 0", got)
	}
}

func TestMinSpeedInEdgeCases(t *testing.T) {
	if got := (&Trace{}).MinSpeedIn(0, 2); got != 0 {
		t.Errorf("empty trace MinSpeedIn = %v", got)
	}
	single := &Trace{YawDeg: []float64{5}, PitchDeg: []float64{5}}
	if got := single.MinSpeedIn(0, 2); got != 0 {
		t.Errorf("single-sample MinSpeedIn = %v", got)
	}
	// Degenerate window (t0 == t1) still samples once.
	tr := &Trace{YawDeg: []float64{0, 10}, PitchDeg: []float64{0, 0}}
	if got := tr.MinSpeedIn(0.05, 0.05); got < 0 || math.IsInf(got, 1) {
		t.Errorf("point-window MinSpeedIn = %v", got)
	}
}

// TestPredictorEdgeCases: prediction must stay finite and fall back to
// At(now) on traces too short to regress over, including queries past
// the end of the trace.
func TestPredictorEdgeCases(t *testing.T) {
	p := NewPredictor()

	empty := &Trace{}
	a := p.Predict(empty, 0, 1)
	if a.Yaw != 0 || a.Pitch != 0 {
		t.Errorf("empty trace Predict = %+v", a)
	}

	single := &Trace{YawDeg: []float64{45}, PitchDeg: []float64{10}}
	a = p.Predict(single, 0, 2)
	if a.Yaw != 45 || a.Pitch != 10 {
		t.Errorf("single-sample Predict = %+v, want the sample", a)
	}

	// Past the last timestamp the history window reads a constant
	// (clamped) tail, so the fit is flat: the prediction must equal the
	// final sample, not extrapolate the old motion.
	moving := &Trace{
		YawDeg:   []float64{0, 10, 20, 30, 40},
		PitchDeg: []float64{0, 0, 0, 0, 0},
	}
	past := moving.Duration() + 2
	a = p.Predict(moving, past, 3)
	if math.Abs(a.Yaw-40) > 1e-6 || math.Abs(a.Pitch) > 1e-6 {
		t.Errorf("past-end Predict = %+v, want clamp to last sample", a)
	}
	if e := p.PredictError(moving, past, 3); math.IsNaN(e) || e > 1e-6 {
		t.Errorf("past-end PredictError = %v", e)
	}
}

func TestAddNoiseEdgeCases(t *testing.T) {
	rng := mathx.NewRNG(1)
	out := (&Trace{}).AddNoise(5, rng)
	if out.Len() != 0 {
		t.Errorf("empty AddNoise len = %d", out.Len())
	}
	single := &Trace{YawDeg: []float64{0}, PitchDeg: []float64{80}}
	out = single.AddNoise(0, rng) // zero noise: identity (pitch stays clamped)
	if out.YawDeg[0] != 0 || out.PitchDeg[0] != 80 {
		t.Errorf("zero-noise AddNoise = %+v", out)
	}
}
