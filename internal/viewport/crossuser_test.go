package viewport

import (
	"testing"

	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/scene"
)

// crossUserFixture builds a video where everyone tracks the same
// objects, plus traces for a peer pool and a held-out user.
func crossUserFixture() (*scene.Video, []*Trace, *Trace) {
	v := scene.Generate(scene.Sports, 77, scene.Options{W: 120, H: 60, FPS: 10, DurationSec: 20})
	opts := DefaultSynthesizeOpts()
	opts.TrackFraction = 1 // strong cross-user consensus
	var peers []*Trace
	for i := 0; i < 6; i++ {
		peers = append(peers, Synthesize(v, uint64(100+i), opts))
	}
	user := Synthesize(v, 999, opts)
	return v, peers, user
}

func TestCrossUserBeatsLinearAtLongHorizon(t *testing.T) {
	_, peers, user := crossUserFixture()
	linear := NewPredictor()
	cross := NewCrossUserPredictor(peers)

	var linErr, crossErr mathx.Stats
	for now := 3.0; now < 15; now += 0.5 {
		const horizon = 3.0
		linErr.Add(linear.PredictError(user, now, horizon))
		crossErr.Add(cross.PredictError(user, now, horizon))
	}
	if crossErr.Mean() >= linErr.Mean() {
		t.Errorf("cross-user error %.1f° should beat linear %.1f° at 3 s horizon",
			crossErr.Mean(), linErr.Mean())
	}
}

func TestCrossUserFallsBackWithoutConsensus(t *testing.T) {
	// Peers spread uniformly: no consensus, prediction must equal the
	// linear fallback.
	var peers []*Trace
	for i := 0; i < 5; i++ {
		tr := linearTrace(0, 0, 201)
		for j := range tr.YawDeg {
			tr.YawDeg[j] = float64(i*72) - 144 // -144,-72,0,72,144
		}
		peers = append(peers, tr)
	}
	user := linearTrace(12, 5, 201)
	cross := NewCrossUserPredictor(peers)
	lin := NewPredictor()
	got := cross.Predict(user, 5, 1)
	want := lin.Predict(user, 5, 1)
	if geom.GreatCircleDeg(got, want) > 1e-6 {
		t.Errorf("no-consensus prediction %v, want linear %v", got, want)
	}
}

func TestCrossUserEmptyPeers(t *testing.T) {
	cross := NewCrossUserPredictor(nil)
	user := linearTrace(10, 0, 201)
	got := cross.Predict(user, 5, 1)
	want := NewPredictor().Predict(user, 5, 1)
	if geom.GreatCircleDeg(got, want) > 1e-6 {
		t.Error("empty peer pool should be pure linear")
	}
}

func TestCrossUserConsensusPullsPrediction(t *testing.T) {
	// All peers dwell at yaw 90; the user's own history points at 0
	// moving away. With consensus, the prediction must move toward 90.
	var peers []*Trace
	for i := 0; i < 5; i++ {
		tr := linearTrace(0, 0, 201)
		for j := range tr.YawDeg {
			tr.YawDeg[j] = 90
		}
		peers = append(peers, tr)
	}
	user := linearTrace(0, 0, 201) // static at yaw 0
	cross := NewCrossUserPredictor(peers)
	got := cross.Predict(user, 5, 2)
	if got.Yaw < 20 {
		t.Errorf("prediction yaw %v should be pulled toward the consensus at 90", got.Yaw)
	}
}

func TestCentroidHelpers(t *testing.T) {
	c := geom.Centroid([]geom.Angle{{Yaw: 10, Pitch: 0}, {Yaw: -10, Pitch: 0}})
	if geom.GreatCircleDeg(c, geom.Angle{}) > 0.5 {
		t.Errorf("centroid = %v, want ~origin", c)
	}
	// Round trip through vectors.
	for _, a := range []geom.Angle{{Yaw: 45, Pitch: 30}, {Yaw: -170, Pitch: -60}} {
		back := geom.FromVec(a.Vec())
		if geom.GreatCircleDeg(a, back) > 1e-9 {
			t.Errorf("vec round trip %v -> %v", a, back)
		}
	}
	if got := geom.FromVec([3]float64{}); got != (geom.Angle{}) {
		t.Errorf("zero vector = %v, want origin", got)
	}
}
