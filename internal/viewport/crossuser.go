package viewport

import (
	"pano/internal/geom"
)

// CrossUserPredictor extends the linear-regression predictor with
// cross-user behaviour, in the direction of the CLS/CUB360 work the
// paper cites ([25], [61]): most viewers of a 360° video attend to the
// same salient content, so where *other* users looked at media time t
// is a strong prior for where this user will look — especially at the
// multi-second horizons where linear extrapolation of head motion
// breaks down.
//
// The predictor consults its peer traces at the target time; if a
// majority of them agree within AgreeDeg of their spherical centroid,
// it blends the centroid with the linear prediction, otherwise it
// falls back to pure linear regression.
type CrossUserPredictor struct {
	// Peers are other users' traces for the same video.
	Peers []*Trace
	// Fallback is the per-user linear predictor.
	Fallback *Predictor
	// AgreeDeg is the consensus radius (default 30°).
	AgreeDeg float64
	// Blend is the weight of the consensus centroid against the linear
	// prediction when consensus exists (default 0.7).
	Blend float64
}

// NewCrossUserPredictor returns a predictor over the given peer traces.
func NewCrossUserPredictor(peers []*Trace) *CrossUserPredictor {
	return &CrossUserPredictor{
		Peers:    peers,
		Fallback: NewPredictor(),
		AgreeDeg: 30,
		Blend:    0.7,
	}
}

// consensus returns the peers' centroid at media time t and whether a
// majority of peers fall within AgreeDeg of it. Fewer than three peers
// cannot form a meaningful consensus.
func (p *CrossUserPredictor) consensus(t float64) (geom.Angle, bool) {
	if len(p.Peers) < 3 {
		return geom.Angle{}, false
	}
	points := make([]geom.Angle, len(p.Peers))
	for i, tr := range p.Peers {
		points[i] = tr.At(t)
	}
	c := geom.Centroid(points)
	agree := 0
	for _, pt := range points {
		if geom.GreatCircleDeg(c, pt) <= p.AgreeDeg {
			agree++
		}
	}
	return c, agree*2 > len(points)
}

// Predict returns the predicted viewpoint at now+horizon for the user
// whose own history is tr.
func (p *CrossUserPredictor) Predict(tr *Trace, now, horizon float64) geom.Angle {
	linear := p.Fallback.Predict(tr, now, horizon)
	c, ok := p.consensus(now + horizon)
	if !ok {
		return linear
	}
	// Blend on the sphere: weighted centroid of the two directions.
	lv := linear.Vec()
	cv := c.Vec()
	w := p.Blend
	return geom.FromVec([3]float64{
		w*cv[0] + (1-w)*lv[0],
		w*cv[1] + (1-w)*lv[1],
		w*cv[2] + (1-w)*lv[2],
	})
}

// PredictError returns the great-circle error in degrees of the
// prediction made at now for now+horizon.
func (p *CrossUserPredictor) PredictError(tr *Trace, now, horizon float64) float64 {
	return geom.GreatCircleDeg(p.Predict(tr, now, horizon), tr.At(now+horizon))
}
