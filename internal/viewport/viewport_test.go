package viewport

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/scene"
)

func linearTrace(yawRate, pitch0 float64, n int) *Trace {
	tr := &Trace{YawDeg: make([]float64, n), PitchDeg: make([]float64, n)}
	for i := 0; i < n; i++ {
		tr.YawDeg[i] = yawRate * float64(i) * RefreshInterval
		tr.PitchDeg[i] = pitch0
	}
	return tr
}

func testVideo() *scene.Video {
	return scene.Generate(scene.Sports, 11, scene.Options{W: 120, H: 60, FPS: 10, DurationSec: 20})
}

func TestTraceAtInterpolates(t *testing.T) {
	tr := linearTrace(10, 5, 101) // 10 deg/s for 5 s
	a := tr.At(1.0)
	if math.Abs(a.Yaw-10) > 1e-9 || a.Pitch != 5 {
		t.Errorf("At(1) = %v", a)
	}
	mid := tr.At(1.025) // between samples
	if math.Abs(mid.Yaw-10.25) > 1e-9 {
		t.Errorf("interpolated yaw = %v, want 10.25", mid.Yaw)
	}
	// Clamped outside the span.
	if tr.At(-1) != tr.At(0) || tr.At(100) != tr.At(5) {
		t.Error("At should clamp outside the trace")
	}
}

func TestTraceAtNormalizesYaw(t *testing.T) {
	tr := linearTrace(100, 0, 201) // reaches 1000 degrees unwrapped
	a := tr.At(10)
	if a.Yaw < -180 || a.Yaw >= 180 {
		t.Errorf("yaw %v not normalized", a.Yaw)
	}
}

func TestSpeedAt(t *testing.T) {
	tr := linearTrace(20, 0, 101)
	if got := tr.SpeedAt(2); math.Abs(got-20) > 1e-6 {
		t.Errorf("speed = %v, want 20", got)
	}
	still := linearTrace(0, 0, 101)
	if got := still.SpeedAt(2); got != 0 {
		t.Errorf("static speed = %v, want 0", got)
	}
	empty := &Trace{}
	if empty.SpeedAt(0) != 0 {
		t.Error("empty trace speed should be 0")
	}
}

func TestMinSpeedIsLowerBound(t *testing.T) {
	// Figure 10: the min speed over the recent window is a conservative
	// (lower-bound) estimate of near-future speed for real-ish traces.
	v := testVideo()
	tr := Synthesize(v, 5, DefaultSynthesizeOpts())
	under := 0
	total := 0
	for now := 3.0; now < 16; now += 0.5 {
		bound := tr.MinSpeedIn(now-2, now)
		actual := tr.SpeedAt(now + 0.5)
		total++
		if bound <= actual+1.0 { // 1 deg/s slack for jitter
			under++
		}
	}
	if frac := float64(under) / float64(total); frac < 0.75 {
		t.Errorf("lower bound held only %.0f%% of the time", frac*100)
	}
}

func TestMinSpeedInReversedWindow(t *testing.T) {
	tr := linearTrace(10, 0, 101)
	if got := tr.MinSpeedIn(3, 1); math.Abs(got-10) > 1e-6 {
		t.Errorf("reversed window min speed = %v", got)
	}
}

func TestPredictorLinearMotionIsExact(t *testing.T) {
	tr := linearTrace(15, 0, 201)
	p := NewPredictor()
	pred := p.Predict(tr, 5, 1)
	truth := tr.At(6)
	if geom.GreatCircleDeg(pred, truth) > 0.5 {
		t.Errorf("prediction %v, truth %v", pred, truth)
	}
	if err := p.PredictError(tr, 5, 1); err > 0.5 {
		t.Errorf("predict error = %v, want ~0", err)
	}
}

func TestPredictorDegenerateTraces(t *testing.T) {
	p := NewPredictor()
	one := &Trace{YawDeg: []float64{3}, PitchDeg: []float64{4}}
	got := p.Predict(one, 0, 1)
	if math.Abs(got.Yaw-3) > 1e-9 || math.Abs(got.Pitch-4) > 1e-9 {
		t.Errorf("single-sample prediction = %v", got)
	}
}

func TestSynthesizeDeterministicAndCoversDuration(t *testing.T) {
	v := testVideo()
	a := Synthesize(v, 9, DefaultSynthesizeOpts())
	b := Synthesize(v, 9, DefaultSynthesizeOpts())
	if a.Len() != b.Len() {
		t.Fatal("length mismatch")
	}
	for i := range a.YawDeg {
		if a.YawDeg[i] != b.YawDeg[i] {
			t.Fatal("synthesis should be deterministic")
		}
	}
	if d := a.Duration(); math.Abs(d-float64(v.DurationSec)) > 0.1 {
		t.Errorf("duration = %v, want %d", d, v.DurationSec)
	}
	c := Synthesize(v, 10, DefaultSynthesizeOpts())
	if c.YawDeg[50] == a.YawDeg[50] && c.YawDeg[100] == a.YawDeg[100] {
		t.Error("different seeds should differ")
	}
}

func TestSynthesizeTracksObjects(t *testing.T) {
	// With TrackFraction 1, the viewpoint should stay near some object
	// most of the time.
	v := testVideo()
	opts := DefaultSynthesizeOpts()
	opts.TrackFraction = 1
	tr := Synthesize(v, 4, opts)
	near := 0
	total := 0
	for ti := 2.0; ti < 18; ti += 0.25 {
		vp := tr.At(ti)
		best := math.Inf(1)
		for _, o := range v.Objects {
			if d := geom.GreatCircleDeg(vp, o.PositionAt(ti)); d < best {
				best = d
			}
		}
		total++
		if best < 30 {
			near++
		}
	}
	if frac := float64(near) / float64(total); frac < 0.6 {
		t.Errorf("tracking fraction = %.2f, want most of the time", frac)
	}
}

func TestSynthesizedSpeedsPlausible(t *testing.T) {
	// Figure 3 left: real traces show speeds from near-0 up to tens of
	// deg/s. The synthesized distribution should span that range.
	v := testVideo()
	tr := Synthesize(v, 21, DefaultSynthesizeOpts())
	var speeds []float64
	for ti := 1.0; ti < 19; ti += 0.1 {
		speeds = append(speeds, tr.SpeedAt(ti))
	}
	cdf := mathx.NewCDF(speeds)
	if cdf.Quantile(0.9) < 10 {
		t.Errorf("p90 speed = %v, want ≥ 10 deg/s for sports", cdf.Quantile(0.9))
	}
	if cdf.Quantile(0.1) > 15 {
		t.Errorf("p10 speed = %v, want slow dwell periods", cdf.Quantile(0.1))
	}
}

func TestAddNoiseShiftsWithinBound(t *testing.T) {
	tr := linearTrace(5, 0, 101)
	rng := mathx.NewRNG(8)
	noisy := tr.AddNoise(30, rng)
	if noisy.Len() != tr.Len() {
		t.Fatal("noise changed length")
	}
	var moved bool
	for i := range tr.YawDeg {
		dy := noisy.YawDeg[i] - tr.YawDeg[i]
		dp := noisy.PitchDeg[i] - tr.PitchDeg[i]
		// Pitch clamping can shorten the shift but never lengthen it.
		if math.Hypot(dy, dp) > 30+1e-9 {
			t.Fatalf("sample %d shifted by %v > 30", i, math.Hypot(dy, dp))
		}
		if dy != 0 || dp != 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("noise should move samples")
	}
	// Zero noise level leaves the trace intact.
	same := tr.AddNoise(0, rng)
	for i := range tr.YawDeg {
		if same.YawDeg[i] != tr.YawDeg[i] {
			t.Fatal("zero noise should be identity")
		}
	}
}

func TestMaxLumaChange(t *testing.T) {
	tr := linearTrace(0, 0, 201)
	// Luminance ramps down over time at the fixed viewpoint.
	luma := func(_ geom.Angle, t float64) float64 { return 200 - 20*t }
	got := tr.MaxLumaChange(5, 5, luma)
	if math.Abs(got-100) > 1e-6 {
		t.Errorf("luma change = %v, want 100", got)
	}
	// Window clips at t=0.
	got = tr.MaxLumaChange(2, 5, luma)
	if math.Abs(got-40) > 1e-6 {
		t.Errorf("clipped luma change = %v, want 40", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	v := testVideo()
	tr := Synthesize(v, 13, DefaultSynthesizeOpts())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d vs %d", back.Len(), tr.Len())
	}
	for _, ti := range []float64{0, 3.3, 7.7, 15} {
		a, b := tr.At(ti), back.At(ti)
		if geom.GreatCircleDeg(a, b) > 0.01 {
			t.Errorf("t=%v: %v vs %v", ti, a, b)
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"t,yaw,pitch\n",
		"0.0,abc,1\n",
		"0.0,1\n",
		"0.0,1,xyz\n",
	}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestParseCSVUnwrapsSeam(t *testing.T) {
	// A steady 80 deg/s sweep through the ±180° seam.
	var b strings.Builder
	b.WriteString("t,yaw,pitch\n")
	for i := 0; i < 20; i++ {
		yaw := 150.0 + 4*float64(i) // crosses the seam at sample ~8
		fmt.Fprintf(&b, "%.2f,%.2f,0\n", float64(i)*RefreshInterval, normYawForTest(yaw))
	}
	tr, err := ParseCSV(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	// Unwrapped yaw should increase monotonically through the seam.
	for i := 1; i < tr.Len(); i++ {
		if tr.YawDeg[i] <= tr.YawDeg[i-1] {
			t.Fatalf("yaw not unwrapped: %v", tr.YawDeg)
		}
	}
	if got := tr.SpeedAt(0.45); math.Abs(got-80) > 2 {
		t.Errorf("speed through seam = %v, want ~80", got)
	}
}

func normYawForTest(y float64) float64 {
	for y >= 180 {
		y -= 360
	}
	for y < -180 {
		y += 360
	}
	return y
}
