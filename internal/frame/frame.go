// Package frame provides luma-plane (Y) frame buffers for the Pano
// pipeline. Perceptual quality in the paper (PSNR, PSPNR, JND) is
// computed on the luma plane, so frames here carry a single 8-bit channel
// laid out row-major, matching how the paper's client stitches per-tile
// YUV buffers with row-major memcpy (§7).
package frame

import (
	"errors"
	"fmt"
	"image"

	"pano/internal/geom"
)

// ErrBounds is returned when a region falls outside a frame.
var ErrBounds = errors.New("frame: region out of bounds")

// Frame is a single-channel 8-bit equirectangular image.
type Frame struct {
	W, H int
	Pix  []uint8 // len == W*H, row-major
}

// New allocates a zeroed frame of the given dimensions.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", w, h))
	}
	return &Frame{W: w, H: h, Pix: make([]uint8, w*h)}
}

// Geometry returns the frame's equirectangular geometry descriptor.
func (f *Frame) Geometry() geom.Frame { return geom.Frame{W: f.W, H: f.H} }

// At returns the pixel at (x, y). Out-of-range coordinates wrap in x
// (the equirectangular seam) and clamp in y.
func (f *Frame) At(x, y int) uint8 {
	x = wrap(x, f.W)
	y = clamp(y, 0, f.H-1)
	return f.Pix[y*f.W+x]
}

// Set writes the pixel at (x, y), wrapping x and clamping y like At.
func (f *Frame) Set(x, y int, v uint8) {
	x = wrap(x, f.W)
	y = clamp(y, 0, f.H-1)
	f.Pix[y*f.W+x] = v
}

// Fill sets every pixel to v.
func (f *Frame) Fill(v uint8) {
	for i := range f.Pix {
		f.Pix[i] = v
	}
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := New(f.W, f.H)
	copy(out.Pix, f.Pix)
	return out
}

// Region copies the rectangle r into a new frame of size r.W() x r.H().
// It returns ErrBounds if r exceeds the frame.
func (f *Frame) Region(r geom.Rect) (*Frame, error) {
	if r.X0 < 0 || r.Y0 < 0 || r.X1 > f.W || r.Y1 > f.H || r.Empty() {
		return nil, fmt.Errorf("%w: %v in %dx%d", ErrBounds, r, f.W, f.H)
	}
	out := New(r.W(), r.H())
	for y := r.Y0; y < r.Y1; y++ {
		copy(out.Pix[(y-r.Y0)*out.W:(y-r.Y0+1)*out.W], f.Pix[y*f.W+r.X0:y*f.W+r.X1])
	}
	return out, nil
}

// Blit copies src into the frame with its top-left corner at (x0, y0).
// This is the row-major stitch used by the client (§7). It returns
// ErrBounds if src does not fit.
func (f *Frame) Blit(src *Frame, x0, y0 int) error {
	if x0 < 0 || y0 < 0 || x0+src.W > f.W || y0+src.H > f.H {
		return fmt.Errorf("%w: blit %dx%d at (%d,%d) into %dx%d",
			ErrBounds, src.W, src.H, x0, y0, f.W, f.H)
	}
	for y := 0; y < src.H; y++ {
		copy(f.Pix[(y0+y)*f.W+x0:(y0+y)*f.W+x0+src.W], src.Pix[y*src.W:(y+1)*src.W])
	}
	return nil
}

// MeanLuma returns the average pixel value over rectangle r clipped to the
// frame. An empty clip yields 0.
func (f *Frame) MeanLuma(r geom.Rect) float64 {
	r = r.Intersect(geom.Rect{X1: f.W, Y1: f.H})
	if r.Empty() {
		return 0
	}
	var sum uint64
	for y := r.Y0; y < r.Y1; y++ {
		row := f.Pix[y*f.W+r.X0 : y*f.W+r.X1]
		for _, v := range row {
			sum += uint64(v)
		}
	}
	return float64(sum) / float64(r.Area())
}

// Variance returns the pixel-value variance over rectangle r clipped to
// the frame.
func (f *Frame) Variance(r geom.Rect) float64 {
	r = r.Intersect(geom.Rect{X1: f.W, Y1: f.H})
	if r.Empty() {
		return 0
	}
	mean := f.MeanLuma(r)
	var ss float64
	for y := r.Y0; y < r.Y1; y++ {
		row := f.Pix[y*f.W+r.X0 : y*f.W+r.X1]
		for _, v := range row {
			d := float64(v) - mean
			ss += d * d
		}
	}
	return ss / float64(r.Area())
}

// GradientEnergy returns the mean absolute horizontal+vertical gradient
// over rectangle r, a cheap proxy for texture complexity used by the
// content-dependent JND.
func (f *Frame) GradientEnergy(r geom.Rect) float64 {
	r = r.Intersect(geom.Rect{X1: f.W, Y1: f.H})
	if r.Empty() {
		return 0
	}
	var sum float64
	var n int
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			v := float64(f.At(x, y))
			gx := v - float64(f.At(x+1, y))
			gy := v - float64(f.At(x, y+1))
			sum += abs(gx) + abs(gy)
			n++
		}
	}
	return sum / float64(n)
}

// ToGray converts the frame to a standard image.Gray (shared backing
// is not used; the pixels are copied), for PNG export and inspection.
func (f *Frame) ToGray() *image.Gray {
	img := image.NewGray(image.Rect(0, 0, f.W, f.H))
	for y := 0; y < f.H; y++ {
		copy(img.Pix[y*img.Stride:y*img.Stride+f.W], f.Pix[y*f.W:(y+1)*f.W])
	}
	return img
}

// MSE returns the mean squared error between two frames of identical
// dimensions, or an error if they differ.
func MSE(a, b *Frame) (float64, error) {
	if a.W != b.W || a.H != b.H {
		return 0, fmt.Errorf("frame: MSE dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H)
	}
	var ss float64
	for i := range a.Pix {
		d := float64(a.Pix[i]) - float64(b.Pix[i])
		ss += d * d
	}
	return ss / float64(len(a.Pix)), nil
}

func wrap(x, w int) int {
	x %= w
	if x < 0 {
		x += w
	}
	return x
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
