package frame

import (
	"errors"
	"math"
	"testing"

	"pano/internal/geom"
)

func TestNewAndFill(t *testing.T) {
	f := New(16, 8)
	if len(f.Pix) != 128 {
		t.Fatalf("pix len = %d", len(f.Pix))
	}
	f.Fill(42)
	for _, v := range f.Pix {
		if v != 42 {
			t.Fatal("Fill did not set all pixels")
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 5) should panic")
		}
	}()
	New(0, 5)
}

func TestAtSetWrapAndClamp(t *testing.T) {
	f := New(10, 5)
	f.Set(0, 0, 7)
	if f.At(10, 0) != 7 { // x wraps
		t.Error("x should wrap at width")
	}
	if f.At(-10, 0) != 7 {
		t.Error("negative x should wrap")
	}
	f.Set(3, 4, 9)
	if f.At(3, 100) != 9 { // y clamps to bottom row
		t.Error("y should clamp")
	}
}

func TestRegionAndBlitRoundTrip(t *testing.T) {
	f := New(20, 10)
	for i := range f.Pix {
		f.Pix[i] = uint8(i % 251)
	}
	r := geom.Rect{X0: 3, Y0: 2, X1: 13, Y1: 8}
	sub, err := f.Region(r)
	if err != nil {
		t.Fatal(err)
	}
	if sub.W != 10 || sub.H != 6 {
		t.Fatalf("region dims %dx%d", sub.W, sub.H)
	}
	dst := New(20, 10)
	if err := dst.Blit(sub, r.X0, r.Y0); err != nil {
		t.Fatal(err)
	}
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			if dst.At(x, y) != f.At(x, y) {
				t.Fatalf("blit mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestRegionBounds(t *testing.T) {
	f := New(10, 10)
	if _, err := f.Region(geom.Rect{X0: 5, Y0: 5, X1: 15, Y1: 8}); !errors.Is(err, ErrBounds) {
		t.Errorf("out-of-bounds region err = %v, want ErrBounds", err)
	}
	if _, err := f.Region(geom.Rect{X0: 5, Y0: 5, X1: 5, Y1: 8}); err == nil {
		t.Error("empty region should error")
	}
}

func TestBlitBounds(t *testing.T) {
	f := New(10, 10)
	src := New(5, 5)
	if err := f.Blit(src, 8, 0); !errors.Is(err, ErrBounds) {
		t.Errorf("overflow blit err = %v, want ErrBounds", err)
	}
}

func TestMeanLumaAndVariance(t *testing.T) {
	f := New(10, 10)
	f.Fill(100)
	all := geom.Rect{X1: 10, Y1: 10}
	if got := f.MeanLuma(all); got != 100 {
		t.Errorf("mean = %v, want 100", got)
	}
	if got := f.Variance(all); got != 0 {
		t.Errorf("variance = %v, want 0", got)
	}
	// Half 0, half 200: mean 100, variance 10000.
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if x < 5 {
				f.Set(x, y, 0)
			} else {
				f.Set(x, y, 200)
			}
		}
	}
	if got := f.MeanLuma(all); got != 100 {
		t.Errorf("mean = %v, want 100", got)
	}
	if got := f.Variance(all); math.Abs(got-10000) > 1e-9 {
		t.Errorf("variance = %v, want 10000", got)
	}
	// Clipped region outside the frame yields 0.
	if got := f.MeanLuma(geom.Rect{X0: 100, Y0: 100, X1: 110, Y1: 110}); got != 0 {
		t.Errorf("out-of-frame mean = %v, want 0", got)
	}
}

func TestGradientEnergy(t *testing.T) {
	flat := New(10, 10)
	flat.Fill(128)
	if got := flat.GradientEnergy(geom.Rect{X1: 10, Y1: 10}); got != 0 {
		t.Errorf("flat gradient = %v, want 0", got)
	}
	stripes := New(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			if x%2 == 0 {
				stripes.Set(x, y, 0)
			} else {
				stripes.Set(x, y, 200)
			}
		}
	}
	if got := stripes.GradientEnergy(geom.Rect{X1: 10, Y1: 10}); got < 100 {
		t.Errorf("stripe gradient = %v, want large", got)
	}
}

func TestMSE(t *testing.T) {
	a := New(8, 8)
	b := New(8, 8)
	if got, err := MSE(a, b); err != nil || got != 0 {
		t.Errorf("identical MSE = %v, %v", got, err)
	}
	b.Fill(10)
	if got, _ := MSE(a, b); got != 100 {
		t.Errorf("MSE = %v, want 100", got)
	}
	c := New(4, 4)
	if _, err := MSE(a, c); err == nil {
		t.Error("dimension mismatch should error")
	}
}

func TestClone(t *testing.T) {
	a := New(4, 4)
	a.Fill(9)
	b := a.Clone()
	b.Set(0, 0, 1)
	if a.At(0, 0) != 9 {
		t.Error("Clone should deep-copy pixels")
	}
}
