package telemetry

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pano/internal/obs"
	"pano/internal/trace"
)

func metricsServer(t *testing.T, r *obs.Registry) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestParseScrapeTargets(t *testing.T) {
	ts, err := ParseScrapeTargets("edge0=http://127.0.0.1:8181, 127.0.0.1:8282/metrics ,origin=http://10.0.0.1:9090/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("parsed %d targets, want 3", len(ts))
	}
	if ts[0].Instance != "edge0" || ts[0].URL != "http://127.0.0.1:8181" {
		t.Errorf("target 0 = %+v", ts[0])
	}
	if ts[1].Instance != "127.0.0.1:8282" {
		t.Errorf("target 1 instance = %q, want host:port default", ts[1].Instance)
	}
	if ts[2].Instance != "origin" {
		t.Errorf("target 2 = %+v", ts[2])
	}
	for _, bad := range []string{"", " , ", "a=b=://", "x=http://h:1,x=http://h:2"} {
		if _, err := ParseScrapeTargets(bad); err == nil {
			t.Errorf("no error for %q", bad)
		}
	}
}

func TestScraperRollup(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	for _, rc := range []struct {
		r *obs.Registry
		n float64
	}{{regA, 10}, {regB, 32}} {
		rc.r.Counter("pano_x_tiles_total", "tiles", obs.L("kind", "hit")).Add(rc.n)
		rc.r.Gauge("pano_edge_hit_ratio", "ratio").Set(rc.n / 100)
		rc.r.Gauge("pano_slo_state", "state", obs.L("slo", "rebuffer")).Set(rc.n / 10)
		rc.r.Gauge("pano_x_cache_bytes", "bytes").Set(rc.n * 1000)
		h := rc.r.Histogram("pano_x_seconds", "lat", obs.DefBuckets)
		h.Observe(rc.n / 100)
		h.Observe(3)
	}
	srvA, srvB := metricsServer(t, regA), metricsServer(t, regB)
	sc, err := NewScraper(ScraperConfig{
		Targets: []ScrapeTarget{{Instance: "a", URL: srvA.URL}, {Instance: "b", URL: srvB.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	out := sc.Collect(now)

	byKey := map[string]obs.SnapshotSeries{}
	for _, ss := range out {
		byKey[ss.Name+"|"+ss.Key] = ss
	}
	if s := byKey["pano_x_tiles_total|"+obs.SeriesKey(obs.L("kind", "hit"))]; s.Value != 42 {
		t.Errorf("counter rollup = %v, want 42", s.Value)
	}
	// Expected average computed with the same runtime float ops the
	// scraper uses (constant folding would be exact and mismatch).
	va, vb := 10.0/100, 32.0/100
	wantAvg := va + vb
	wantAvg /= 2
	if s := byKey["pano_edge_hit_ratio|"]; s.Value != wantAvg {
		t.Errorf("avg gauge rollup = %v, want %v", s.Value, wantAvg)
	}
	if s := byKey["pano_slo_state|"+obs.SeriesKey(obs.L("slo", "rebuffer"))]; s.Value != 3.2 {
		t.Errorf("max gauge rollup = %v, want 3.2", s.Value)
	}
	if s := byKey["pano_x_cache_bytes|"]; s.Value != 42000 {
		t.Errorf("sum gauge rollup = %v, want 42000", s.Value)
	}
	hs := byKey["pano_x_seconds|"]
	if hs.Count != 4 || hs.Sum != 0.10+3+0.32+3 {
		t.Errorf("histogram rollup count=%d sum=%v, want 4 / 6.42", hs.Count, hs.Sum)
	}
	var totalBuckets uint64
	for _, c := range hs.Counts {
		totalBuckets += c
	}
	if totalBuckets != 4 {
		t.Errorf("histogram rollup bucket total = %d, want 4", totalBuckets)
	}
	// Meta series present.
	if s := byKey["pano_federation_target_up|"+obs.SeriesKey(obs.L("instance", "a"))]; s.Value != 1 {
		t.Errorf("target_up{a} = %v, want 1", s.Value)
	}
	if s := byKey["pano_federation_targets|"]; s.Value != 2 {
		t.Errorf("targets = %v, want 2", s.Value)
	}
	if s := byKey["pano_federation_stale_targets|"]; s.Value != 0 {
		t.Errorf("stale = %v, want 0", s.Value)
	}

	// Per-instance view: relabelled, both instances present.
	inst := sc.InstanceSeries()
	seenInst := map[string]bool{}
	for _, ss := range inst {
		for _, l := range ss.Labels {
			if l.Key == "instance" {
				seenInst[l.Value] = true
			}
		}
	}
	if !seenInst["a"] || !seenInst["b"] {
		t.Errorf("instance view missing instances: %v", seenInst)
	}
}

func TestScraperStaleTargetFreezesSeries(t *testing.T) {
	reg := obs.NewRegistry()
	ct := reg.Counter("pano_x_total", "x")
	ct.Add(7)
	srv := metricsServer(t, reg)
	sc, err := NewScraper(ScraperConfig{
		Targets: []ScrapeTarget{{Instance: "a", URL: srv.URL}},
		Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Unix(1700000000, 0)
	sc.Collect(now)

	srv.Close() // the instance dies
	out := sc.Collect(now.Add(time.Second))
	byName := map[string]obs.SnapshotSeries{}
	for _, ss := range out {
		byName[ss.Name] = ss
	}
	// Frozen, not zeroed: the rollup still carries the last-good value…
	if s := byName["pano_x_total"]; s.Value != 7 {
		t.Errorf("dead instance zeroed the rollup: pano_x_total = %v, want 7", s.Value)
	}
	// …and staleness is explicit.
	if s := byName["pano_federation_target_up"]; s.Value != 0 {
		t.Errorf("target_up = %v, want 0 after death", s.Value)
	}
	if s := byName["pano_federation_stale_targets"]; s.Value != 1 {
		t.Errorf("stale_targets = %v, want 1", s.Value)
	}
	if s := byName["pano_federation_scrape_errors_total"]; s.Value != 1 {
		t.Errorf("scrape_errors_total = %v, want 1", s.Value)
	}
	st := sc.Targets()
	if len(st) != 1 || st[0].Up || !st[0].EverUp || st[0].LastErr == "" {
		t.Errorf("target status = %+v", st)
	}
}

func TestScraperUnmergeableHistograms(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	regA.Histogram("pano_x_seconds", "lat", obs.LinearBuckets(0, 1, 3)).Observe(1)
	regB.Histogram("pano_x_seconds", "lat", obs.LinearBuckets(0, 2, 3)).Observe(1)
	regA.Counter("pano_ok_total", "fine").Add(1)
	regB.Counter("pano_ok_total", "fine").Add(2)
	srvA, srvB := metricsServer(t, regA), metricsServer(t, regB)
	sc, err := NewScraper(ScraperConfig{
		Targets: []ScrapeTarget{{Instance: "a", URL: srvA.URL}, {Instance: "b", URL: srvB.URL}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := sc.Collect(time.Unix(1700000000, 0))
	byName := map[string]obs.SnapshotSeries{}
	for _, ss := range out {
		byName[ss.Name] = ss
	}
	if _, ok := byName["pano_x_seconds"]; ok {
		t.Error("layout-conflicted histogram family leaked into the rollup")
	}
	if s := byName["pano_ok_total"]; s.Value != 3 {
		t.Errorf("unrelated counter = %v, want 3", s.Value)
	}
	if s := byName["pano_federation_unmergeable_families"]; s.Value != 1 {
		t.Errorf("unmergeable_families = %v, want 1", s.Value)
	}
	// The conflicted family is still visible per-instance.
	found := 0
	for _, ss := range sc.InstanceSeries() {
		if ss.Name == "pano_x_seconds" {
			found++
		}
	}
	if found != 2 {
		t.Errorf("per-instance view has %d pano_x_seconds series, want 2", found)
	}
}

// TestScraperFedSampler wires a Scraper as a Sampler Source and checks
// the store sees exactly the rollup (one series per family — the
// double-count hazard federation must avoid).
func TestScraperFedSampler(t *testing.T) {
	regA, regB := obs.NewRegistry(), obs.NewRegistry()
	ctA := regA.Counter("pano_client_rebuffer_seconds_total", "stall")
	ctB := regB.Counter("pano_client_rebuffer_seconds_total", "stall")
	srvA, srvB := metricsServer(t, regA), metricsServer(t, regB)
	sc, err := NewScraper(ScraperConfig{
		Targets:  []ScrapeTarget{{Instance: "a", URL: srvA.URL}, {Instance: "b", URL: srvB.URL}},
		Interval: time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	own := obs.NewRegistry()
	smp := New(Config{
		Obs:       own,
		Interval:  time.Second,
		SLOs:      []SLO{},
		NoRuntime: true,
		Source:    sc.Collect,
		DashExtra: sc.DashPanels,
	})
	now := time.Unix(1700000000, 0)
	for i := 0; i < 5; i++ {
		ctA.Add(1)
		ctB.Add(2)
		smp.Step(now)
		now = now.Add(time.Second)
	}
	fam := smp.Store().Family("pano_client_rebuffer_seconds_total")
	if len(fam) != 1 {
		t.Fatalf("store holds %d rebuffer series, want 1 (rollup only)", len(fam))
	}
	last, ok := fam[0].Last()
	if !ok || last.V != 15 {
		t.Errorf("rollup rebuffer = %v, want 15", last.V)
	}
	// Sampler's own registry stayed out of the SLO store.
	if own.CounterValue("pano_telemetry_scrapes_total") == 0 {
		t.Error("sampler self-metrics missing from its registry")
	}
	if got := smp.Store().Family("pano_telemetry_scrapes_total"); len(got) != 0 {
		t.Error("sampler self-metrics leaked into the federated store")
	}
	// The cluster dashboard shows both rollup and per-instance panels.
	snap := smp.dashSnapshot(now)
	var roll, perInst int
	for _, ds := range snap.Series {
		if ds.Name != "pano_client_rebuffer_seconds_total" {
			continue
		}
		if strings.Contains(ds.Labels, "instance=") {
			perInst++
		} else {
			roll++
		}
	}
	if roll != 1 || perInst != 2 {
		t.Errorf("dash panels: %d rollup + %d per-instance, want 1 + 2", roll, perInst)
	}
}

func TestScraperMetricsHandlerRoundTrip(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("pano_x_total", "x", obs.L("edge", "a")).Add(5)
	reg.Histogram("pano_x_seconds", "lat", obs.DefBuckets).Observe(0.2)
	srv := metricsServer(t, reg)
	self := obs.NewRegistry()
	self.Gauge("pano_build_info", "build", obs.L("commit", "abc"), obs.L("go_version", "go1.x")).Set(1)
	sc, err := NewScraper(ScraperConfig{
		Targets:      []ScrapeTarget{{Instance: "a", URL: srv.URL}},
		Self:         self,
		SelfInstance: "obsd",
	})
	if err != nil {
		t.Fatal(err)
	}
	sc.Collect(time.Unix(1700000000, 0))

	fed := httptest.NewServer(sc.MetricsHandler())
	defer fed.Close()
	resp, err := http.Get(fed.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	series, err := obs.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("federated exposition does not reparse: %v\n%s", err, body)
	}
	var rollup, instA, instSelf bool
	for _, ss := range series {
		key := ss.Key
		switch ss.Name {
		case "pano_x_total":
			if strings.Contains(key, "instance") {
				instA = true
			} else if ss.Value == 5 {
				rollup = true
			}
		case "pano_build_info":
			if strings.Contains(key, "obsd") {
				instSelf = true
			}
		}
	}
	if !rollup || !instA || !instSelf {
		t.Errorf("federated exposition missing views: rollup=%v instance=%v self=%v\n%s",
			rollup, instA, instSelf, body)
	}

	// HEAD carries headers, no body; POST is rejected.
	if resp, err := headReq(fed.URL); err != nil || resp.code != http.StatusOK || resp.body != 0 {
		t.Errorf("HEAD /metrics: %+v err=%v", resp, err)
	}
	if pr, err := http.Post(fed.URL, "text/plain", nil); err == nil {
		if pr.StatusCode != http.StatusMethodNotAllowed || pr.Header.Get("Allow") != "GET, HEAD" {
			t.Errorf("POST /metrics: %d Allow=%q", pr.StatusCode, pr.Header.Get("Allow"))
		}
		pr.Body.Close()
	}
}

type headResp struct {
	code int
	body int
}

func headReq(url string) (headResp, error) {
	resp, err := http.Head(url)
	if err != nil {
		return headResp{}, err
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return headResp{code: resp.StatusCode, body: len(b)}, nil
}

func TestScraperTraceAssembly(t *testing.T) {
	// Two processes share one trace via a traceparent hop.
	trA := trace.New(trace.Config{Seed: 0x100})
	trB := trace.New(trace.Config{Seed: 0x200})
	ctx, root := trA.Start(context.Background(), "stream", trace.A("component", "client"))
	_, child := trA.Start(ctx, "tile_fetch")
	_, remote := trB.StartRemote(context.Background(), "http_request", root.TraceID(), child.SpanID(),
		trace.A("component", "server"))
	remote.End()
	child.End()
	root.End()

	mk := func(tr *trace.Tracer) *httptest.Server {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.NewRegistry().Handler())
		mux.Handle("/debug/traces", tr.Handler())
		srv := httptest.NewServer(mux)
		t.Cleanup(srv.Close)
		return srv
	}
	srvA, srvB := mk(trA), mk(trB)
	// A third target without a tracer endpoint must be skipped quietly.
	srvC := metricsServer(t, obs.NewRegistry())
	sc, err := NewScraper(ScraperConfig{Targets: []ScrapeTarget{
		{Instance: "client", URL: srvA.URL},
		{Instance: "origin", URL: srvB.URL},
		{Instance: "bare", URL: srvC.URL},
	}})
	if err != nil {
		t.Fatal(err)
	}
	assembled := sc.AssembleTraces()
	if len(assembled) != 1 {
		t.Fatalf("assembled %d traces, want 1", len(assembled))
	}
	if ps := assembled[0].Processes(); len(ps) != 2 {
		t.Errorf("processes = %v, want client+origin", ps)
	}
	if len(assembled[0].Spans) != 3 {
		t.Errorf("spans = %d, want 3", len(assembled[0].Spans))
	}

	th := httptest.NewServer(sc.TraceHandler())
	defer th.Close()
	resp, err := http.Get(th.URL + "?trace=" + root.TraceID().String())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if n, err := trace.ValidateChromeTrace(body); err != nil || n != 3 {
		t.Errorf("assembled handler output: %d spans err=%v", n, err)
	}
	if resp, err := http.Get(th.URL + "?trace=00000000000000000000000000000001"); err == nil {
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown trace id: status %d, want 404", resp.StatusCode)
		}
		resp.Body.Close()
	}
}
