// Package telemetry is the repo's third observability pillar: where
// internal/obs answers "what is the value now" and internal/trace
// answers "what happened in this one session", telemetry answers "how
// has the fleet behaved over the last minutes, and should a human be
// paged". It periodically scrapes an obs.Registry into fixed-size
// ring-buffer windowed series (counter deltas/rates, gauge samples,
// histogram bucket deltas with interpolated quantile estimation),
// samples Go runtime health into the same store, and evaluates
// declarative QoE SLOs with multi-window burn-rate alerting
// (fast/slow windows, ok→warn→page with flap damping). State is
// served as JSON at /debug/slo and as a self-contained live SSE
// dashboard at /debug/dash.
//
// Like obs and trace, a nil *Sampler is a valid no-op: every method is
// nil-safe, and the serve-path wiring (server.WithTelemetry,
// edge.Config.Telemetry) mounts nothing when the sampler is nil, so
// disabled telemetry costs zero on the request path.
package telemetry

import (
	"encoding/json"
	"sync"
	"time"

	"pano/internal/obs"
	"pano/internal/trace"
)

// Config tunes a Sampler.
type Config struct {
	// Obs is the registry to scrape AND the sink for telemetry's own
	// signals (SLO state gauges, transition counters, self-metrics).
	// Required.
	Obs *obs.Registry
	// Interval is the scrape period (default 1s).
	Interval time.Duration
	// Window is how much history each series ring retains (default
	// 1h — enough to cover the default slow burn window). Capacity is
	// Window/Interval samples, capped at 7200.
	Window time.Duration
	// SLOs is the objective set to evaluate each tick (nil =
	// DefaultSLOs()). An explicitly empty non-nil slice evaluates none.
	SLOs []SLO
	// Log receives slo_transition events (and the sampler's lifecycle
	// events); nil disables. Its ring-buffer drop count is mirrored as
	// pano_events_dropped_total when ObserveDrops was wired.
	Log *obs.EventLog
	// Tracer, when set, has its bounded-store span drops mirrored each
	// tick as the pano_trace_store_dropped_spans gauge.
	Tracer *trace.Tracer
	// NoRuntime disables Go runtime health sampling (heap, GC pauses,
	// goroutines, scheduler latency).
	NoRuntime bool
	// Source, when set, replaces the Obs.Snapshot() scrape as the series
	// fed into the windowed store each tick — this is how pano-obsd
	// points the stock SLO engine at federated cluster rollups instead
	// of its own process registry. It is called outside the sampler's
	// lock (it may do network I/O, as the federation scraper does), once
	// per tick, with the tick's logical time. Obs is still required: it
	// remains the sink for telemetry's own signals.
	Source func(now time.Time) []obs.SnapshotSeries
	// DashExtra, when set, contributes additional dashboard panels each
	// frame (pano-obsd adds per-instance series alongside the rollup
	// panels the store provides). Called without the sampler lock held.
	DashExtra func(now time.Time) []DashSeries
}

// Sampler periodically scrapes a registry into the windowed store and
// evaluates SLO burn rates. Create with New, then either Start (wall
// clock) or drive Step directly (tests, simulations — logical time).
// All methods are nil-safe.
type Sampler struct {
	cfg   Config
	store *Store
	rt    *runtimeSampler

	mu    sync.Mutex
	evals []*sloEval
	lastT time.Time

	scrapes    *obs.Counter
	scrapeSec  *obs.Histogram
	seriesLen  *obs.Gauge
	transCt    func(slo, to string) // transition counter helper
	traceDrops *obs.Gauge

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}

	subMu sync.Mutex
	subs  map[chan []byte]struct{}
	// sseDropped counts snapshots not delivered to slow SSE clients.
	sseDropped *obs.Counter
}

// New returns a sampler over cfg.Obs. Returns nil (the no-op sampler)
// when cfg.Obs is nil.
func New(cfg Config) *Sampler {
	if cfg.Obs == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = time.Hour
	}
	if cfg.SLOs == nil {
		cfg.SLOs = DefaultSLOs()
	}
	capN := int(cfg.Window / cfg.Interval)
	if capN < 2 {
		capN = 2
	}
	if capN > 7200 {
		capN = 7200
	}
	reg := cfg.Obs
	s := &Sampler{
		cfg:   cfg,
		store: NewStore(capN),
		scrapes: reg.Counter("pano_telemetry_scrapes_total",
			"registry scrapes into the windowed telemetry store"),
		scrapeSec: reg.Histogram("pano_telemetry_scrape_seconds",
			"wall time of one scrape+evaluate tick", obs.ExponentialBuckets(1e-6, 4, 10)),
		seriesLen: reg.Gauge("pano_telemetry_series",
			"distinct series held by the windowed store"),
		traceDrops: nil,
		stop:       make(chan struct{}),
		done:       make(chan struct{}),
		subs:       make(map[chan []byte]struct{}),
		sseDropped: reg.Counter("pano_telemetry_sse_dropped_total",
			"dashboard snapshots dropped because an SSE client was slow"),
	}
	if cfg.Tracer != nil {
		s.traceDrops = reg.Gauge("pano_trace_store_dropped_spans",
			"spans the tracer's bounded store has rejected (mirror of Tracer.DroppedSpans)")
	}
	if !cfg.NoRuntime {
		s.rt = newRuntimeSampler(reg)
	}
	for _, slo := range cfg.SLOs {
		slo = slo.withDefaults()
		s.evals = append(s.evals, &sloEval{
			slo: slo,
			stateGauge: reg.Gauge("pano_slo_state",
				"current SLO alert state (0 ok, 1 warn, 2 page)", obs.L("slo", slo.Name)),
		})
	}
	s.transCt = func(slo, to string) {
		reg.Counter("pano_slo_transitions_total",
			"SLO alert-state transitions by objective and destination state",
			obs.L("slo", slo), obs.L("to", to)).Inc()
	}
	return s
}

// Interval returns the configured scrape period (0 on nil).
func (s *Sampler) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.cfg.Interval
}

// Store exposes the windowed series store (nil on the no-op sampler).
func (s *Sampler) Store() *Store {
	if s == nil {
		return nil
	}
	return s.store
}

// Step performs one scrape+evaluate tick at logical time now. Tests
// and deterministic simulations call this directly with synthetic
// time; Start drives it with wall time. Safe for concurrent use with
// readers, but ticks themselves are serialized.
func (s *Sampler) Step(now time.Time) {
	if s == nil {
		return
	}
	t0 := time.Now()
	var snap []obs.SnapshotSeries
	if s.cfg.Source != nil {
		// External source (federation): collect before taking the lock —
		// it may block on the network, and readers must stay responsive.
		snap = s.cfg.Source(now)
	}
	s.mu.Lock()
	if s.rt != nil {
		s.rt.sample()
	}
	if s.traceDrops != nil {
		s.traceDrops.Set(float64(s.cfg.Tracer.DroppedSpans()))
	}
	if s.cfg.Source == nil {
		snap = s.cfg.Obs.Snapshot()
	}
	s.store.Observe(now, snap)
	s.seriesLen.Set(float64(s.store.Len()))

	type transition struct {
		slo      SLO
		from, to SLOState
		status   SLOStatus
	}
	var trans []transition
	for _, e := range s.evals {
		if from, to, changed := e.evaluate(s.store, now); changed {
			trans = append(trans, transition{slo: e.slo, from: from, to: to, status: e.last})
		}
	}
	s.lastT = now
	s.mu.Unlock()

	for _, tr := range trans {
		s.transCt(tr.slo.Name, tr.to.String())
		s.cfg.Log.Logger().Warn("slo_transition",
			"slo", tr.slo.Name, "from", tr.from.String(), "to", tr.to.String(),
			"burn_fast", tr.status.BurnFast, "burn_slow", tr.status.BurnSlow,
			"value", tr.status.Value)
	}
	s.scrapes.Inc()
	s.scrapeSec.Observe(time.Since(t0).Seconds())
	s.publish(now)
}

// Start launches the wall-clock sampling loop. Idempotent; a nil
// sampler ignores it.
func (s *Sampler) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			tick := time.NewTicker(s.cfg.Interval)
			defer tick.Stop()
			s.Step(time.Now())
			for {
				select {
				case <-s.stop:
					return
				case t := <-tick.C:
					s.Step(t)
				}
			}
		}()
	})
}

// Stop halts the sampling loop and waits for it to exit. Safe to call
// multiple times, on a never-started sampler, and on nil. Implements
// graceful.Stopper, so pano binaries hand the sampler straight to
// graceful.Serve for shutdown.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: release waiters
	<-s.done
}

// States returns each SLO's latest evaluation, in configuration order.
func (s *Sampler) States() []SLOStatus {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SLOStatus, len(s.evals))
	for i, e := range s.evals {
		out[i] = e.last
		if out[i].Name == "" {
			// Never evaluated yet: report the configured shape at ok.
			slo := e.slo
			out[i] = SLOStatus{
				Name: slo.Name, Kind: slo.Kind.String(), State: StateOK.String(),
				Threshold: slo.Threshold, Budget: slo.Budget,
				WarnBurn: slo.WarnBurn, PageBurn: slo.PageBurn,
				FastSec: slo.FastWindow.Seconds(), SlowSec: slo.SlowWindow.Seconds(),
				Guards: slo.Guards, Metric: slo.Metric,
			}
		}
	}
	return out
}

// State returns one SLO's current alert state (StateOK when unknown).
func (s *Sampler) State(name string) SLOState {
	if s == nil {
		return StateOK
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range s.evals {
		if e.slo.Name == name {
			return e.state
		}
	}
	return StateOK
}

// subscribe registers an SSE client; the returned cancel must be
// called when the client disconnects.
func (s *Sampler) subscribe() (ch chan []byte, cancel func()) {
	ch = make(chan []byte, 4)
	s.subMu.Lock()
	s.subs[ch] = struct{}{}
	s.subMu.Unlock()
	return ch, func() {
		s.subMu.Lock()
		delete(s.subs, ch)
		s.subMu.Unlock()
	}
}

// publish fans the current dashboard snapshot out to SSE clients
// (non-blocking: a slow client drops snapshots, not the sampler).
func (s *Sampler) publish(now time.Time) {
	s.subMu.Lock()
	n := len(s.subs)
	s.subMu.Unlock()
	if n == 0 {
		return
	}
	payload, err := json.Marshal(s.dashSnapshot(now))
	if err != nil {
		return
	}
	s.subMu.Lock()
	for ch := range s.subs {
		select {
		case ch <- payload:
		default:
			s.sseDropped.Inc()
		}
	}
	s.subMu.Unlock()
}
