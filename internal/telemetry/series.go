package telemetry

import (
	"sort"
	"sync"
	"time"

	"pano/internal/obs"
)

// Point is one windowed sample of a series.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// ring is a fixed-capacity Point buffer.
type ring struct {
	pts  []Point
	next int
	full bool
}

func newRing(n int) *ring { return &ring{pts: make([]Point, n)} }

func (r *ring) add(p Point) {
	r.pts[r.next] = p
	r.next = (r.next + 1) % len(r.pts)
	if r.next == 0 {
		r.full = true
	}
}

// points returns the retained samples, oldest first.
func (r *ring) points() []Point {
	if !r.full {
		return append([]Point(nil), r.pts[:r.next]...)
	}
	out := make([]Point, 0, len(r.pts))
	out = append(out, r.pts[r.next:]...)
	out = append(out, r.pts[:r.next]...)
	return out
}

func (r *ring) latest() (Point, bool) {
	if r.next == 0 && !r.full {
		return Point{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.pts) - 1
	}
	return r.pts[i], true
}

func (r *ring) oldest() (Point, bool) {
	if r.full {
		return r.pts[r.next], true
	}
	if r.next == 0 {
		return Point{}, false
	}
	return r.pts[0], true
}

// atOrBefore returns the most recent point with T <= t; when every
// retained point is newer it falls back to the oldest (the window is
// clamped to available history, so a young process evaluates its slow
// window over whatever it has — standard burn-rate behaviour).
func (r *ring) atOrBefore(t time.Time) (Point, bool) {
	pts := r.points()
	if len(pts) == 0 {
		return Point{}, false
	}
	best := pts[0]
	for _, p := range pts {
		if p.T.After(t) {
			break
		}
		best = p
	}
	return best, true
}

// SeriesKind distinguishes how a windowed series is interpreted.
type SeriesKind int

const (
	// GaugeSeries samples are instantaneous values.
	GaugeSeries SeriesKind = iota
	// CounterSeries samples are the source counter's cumulative value;
	// rates and window deltas are derived between samples.
	CounterSeries
)

// Series is one counter or gauge metric's windowed history. Name,
// Labels, and Kind are immutable after creation; the ring is guarded by
// mu, shared with the owning Store's Observe, so holding a *Series
// across scrapes and reading it concurrently is safe.
type Series struct {
	Name   string
	Labels []obs.Label
	Kind   SeriesKind
	mu     sync.RWMutex
	ring   *ring
}

func (s *Series) add(p Point) {
	s.mu.Lock()
	s.ring.add(p)
	s.mu.Unlock()
}

// Points returns the retained samples, oldest first.
func (s *Series) Points() []Point {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.points()
}

// Last returns the most recent sample (false when empty).
func (s *Series) Last() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.latest()
}

// Oldest returns the oldest retained sample (false when empty).
func (s *Series) Oldest() (Point, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.ring.oldest()
}

// DeltaSince returns the counter increase over [t, latest]; gauges
// return the difference of endpoint samples. False when fewer than one
// sample is retained.
func (s *Series) DeltaSince(t time.Time) (float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.deltaLocked(t)
}

func (s *Series) deltaLocked(t time.Time) (float64, bool) {
	last, ok := s.ring.latest()
	if !ok {
		return 0, false
	}
	first, ok := s.ring.atOrBefore(t)
	if !ok {
		return 0, false
	}
	d := last.V - first.V
	if s.Kind == CounterSeries && d < 0 {
		// Source restarted (counter reset): count from zero.
		d = last.V
	}
	return d, true
}

// RateSince returns the per-second rate over [t, latest] (0 when the
// window has no extent yet).
func (s *Series) RateSince(t time.Time) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	last, ok := s.ring.latest()
	if !ok {
		return 0
	}
	first, _ := s.ring.atOrBefore(t)
	dt := last.T.Sub(first.T).Seconds()
	if dt <= 0 {
		return 0
	}
	d, _ := s.deltaLocked(t)
	return d / dt
}

// histSnap is one scrape of a histogram's cumulative state.
type histSnap struct {
	t      time.Time
	counts []uint64 // per-bucket incl +Inf last, cumulative since process start
	count  uint64
	sum    float64
}

// HistSeries is one histogram metric's windowed bucket history. Name,
// Labels, and Uppers are immutable after creation; the snapshot ring is
// guarded by mu, shared with the owning Store's Observe, so holding a
// *HistSeries across scrapes and reading it concurrently is safe.
type HistSeries struct {
	Name   string
	Labels []obs.Label
	Uppers []float64
	mu     sync.RWMutex
	snaps  []histSnap
	next   int
	full   bool
}

func (h *HistSeries) add(s histSnap) {
	h.mu.Lock()
	h.snaps[h.next] = s
	h.next = (h.next + 1) % len(h.snaps)
	if h.next == 0 {
		h.full = true
	}
	h.mu.Unlock()
}

func (h *HistSeries) ordered() []histSnap {
	if !h.full {
		return h.snaps[:h.next]
	}
	out := make([]histSnap, 0, len(h.snaps))
	out = append(out, h.snaps[h.next:]...)
	out = append(out, h.snaps[:h.next]...)
	return out
}

// deltaSince returns per-bucket count deltas (and total-count delta)
// over [t, latest], clamped to available history.
func (h *HistSeries) deltaSince(t time.Time) (counts []uint64, n uint64, ok bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	snaps := h.ordered()
	if len(snaps) == 0 {
		return nil, 0, false
	}
	last := snaps[len(snaps)-1]
	first := snaps[0]
	for _, s := range snaps {
		if s.t.After(t) {
			break
		}
		first = s
	}
	if last.count < first.count || len(last.counts) != len(first.counts) {
		// Reset: treat the latest cumulative state as the delta.
		return append([]uint64(nil), last.counts...), last.count, true
	}
	counts = make([]uint64, len(last.counts))
	for i := range counts {
		if last.counts[i] >= first.counts[i] {
			counts[i] = last.counts[i] - first.counts[i]
		}
	}
	return counts, last.count - first.count, true
}

// QuantileSince estimates the q-quantile of observations made during
// [t, latest] by interpolating the windowed bucket deltas.
func (h *HistSeries) QuantileSince(q float64, t time.Time) (float64, bool) {
	counts, n, ok := h.deltaSince(t)
	if !ok || n == 0 {
		return 0, false
	}
	return obs.HistogramQuantile(q, h.Uppers, counts), true
}

// CountSince returns how many observations landed in [t, latest].
func (h *HistSeries) CountSince(t time.Time) uint64 {
	_, n, _ := h.deltaSince(t)
	return n
}

// Store is the in-process time-series database: every registry series,
// sampled on a fixed interval into fixed-size rings. All methods are
// safe for concurrent use.
type Store struct {
	mu     sync.RWMutex
	capN   int
	series map[string]*Series     // key: name + "\xff" + labelKey
	hists  map[string]*HistSeries // same keying
	byName map[string][]string    // family name -> series keys, insertion order
}

// NewStore returns a store retaining capN samples per series.
func NewStore(capN int) *Store {
	if capN <= 0 {
		capN = 360
	}
	return &Store{
		capN:   capN,
		series: make(map[string]*Series),
		hists:  make(map[string]*HistSeries),
		byName: make(map[string][]string),
	}
}

// Observe records one registry snapshot taken at time t.
func (st *Store) Observe(t time.Time, snap []obs.SnapshotSeries) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, ss := range snap {
		key := ss.Name + "\xff" + ss.Key
		switch ss.Type {
		case "histogram":
			h := st.hists[key]
			if h == nil {
				h = &HistSeries{
					Name: ss.Name, Labels: ss.Labels, Uppers: ss.Uppers,
					snaps: make([]histSnap, st.capN),
				}
				st.hists[key] = h
				st.byName[ss.Name] = append(st.byName[ss.Name], key)
			}
			h.add(histSnap{
				t: t, counts: append([]uint64(nil), ss.Counts...),
				count: ss.Count, sum: ss.Sum,
			})
		default:
			s := st.series[key]
			if s == nil {
				kind := GaugeSeries
				if ss.Type == "counter" {
					kind = CounterSeries
				}
				s = &Series{Name: ss.Name, Labels: ss.Labels, Kind: kind, ring: newRing(st.capN)}
				st.series[key] = s
				st.byName[ss.Name] = append(st.byName[ss.Name], key)
			}
			s.add(Point{T: t, V: ss.Value})
		}
	}
}

// Family returns every counter/gauge series of one metric name.
func (st *Store) Family(name string) []*Series {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []*Series
	for _, k := range st.byName[name] {
		if s := st.series[k]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// HistFamily returns every histogram series of one metric name.
func (st *Store) HistFamily(name string) []*HistSeries {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out []*HistSeries
	for _, k := range st.byName[name] {
		if h := st.hists[k]; h != nil {
			out = append(out, h)
		}
	}
	return out
}

// Names returns every stored family name, sorted.
func (st *Store) Names() []string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make([]string, 0, len(st.byName))
	for n := range st.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len returns how many distinct series the store holds.
func (st *Store) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.series) + len(st.hists)
}

// EarliestSample returns the oldest retained sample time across every
// counter/gauge series of the named families (false when none has
// data). SLO burn rates use it to clamp wall-time denominators to the
// history a young process has actually lived through.
func (st *Store) EarliestSample(names []string) (time.Time, bool) {
	var earliest time.Time
	var ok bool
	for _, name := range names {
		for _, s := range st.Family(name) {
			if p, has := s.Oldest(); has && (!ok || p.T.Before(earliest)) {
				earliest, ok = p.T, true
			}
		}
	}
	return earliest, ok
}

// labelsMatch reports whether ls has key with one of the wanted values
// (an empty key matches everything).
func labelsMatch(ls []obs.Label, key string, vals []string) bool {
	if key == "" {
		return true
	}
	for _, l := range ls {
		if l.Key != key {
			continue
		}
		for _, v := range vals {
			if l.Value == v {
				return true
			}
		}
		return false
	}
	return false
}

// DeltaSum sums the window delta over every series of the named
// families whose labels match (key, vals); ok reports whether any
// matching series had data.
func (st *Store) DeltaSum(names []string, key string, vals []string, since time.Time) (sum float64, ok bool) {
	for _, name := range names {
		for _, s := range st.Family(name) {
			if !labelsMatch(s.Labels, key, vals) {
				continue
			}
			if d, has := s.DeltaSince(since); has {
				sum += d
				ok = true
			}
		}
	}
	return sum, ok
}

// ViolationFrac returns the fraction of retained samples in [since,
// now] that violate a threshold (below floor when above is false, above
// ceiling when true), pooled across the named gauge families.
func (st *Store) ViolationFrac(names []string, since time.Time, threshold float64, above bool) (frac float64, n int) {
	var bad int
	for _, name := range names {
		for _, s := range st.Family(name) {
			for _, p := range s.Points() {
				if p.T.Before(since) {
					continue
				}
				n++
				if (above && p.V > threshold) || (!above && p.V < threshold) {
					bad++
				}
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(bad) / float64(n), n
}

// QuantileMax estimates the windowed q-quantile of each named histogram
// family (bucket deltas merged across a family's series) and returns
// the worst (highest) across families — the conservative read when
// client- and server-side latency families coexist in one registry.
func (st *Store) QuantileMax(names []string, q float64, since time.Time) (v float64, ok bool) {
	for _, name := range names {
		hs := st.HistFamily(name)
		if len(hs) == 0 {
			continue
		}
		// Merge bucket deltas across the family's label sets (one bucket
		// layout per family by construction of obs.Registry).
		var merged []uint64
		var total uint64
		uppers := hs[0].Uppers
		for _, h := range hs {
			counts, n, has := h.deltaSince(since)
			if !has || len(counts) != len(uppers)+1 {
				continue
			}
			if merged == nil {
				merged = make([]uint64, len(counts))
			}
			for i, c := range counts {
				merged[i] += c
			}
			total += n
		}
		if total == 0 {
			continue
		}
		if fv := obs.HistogramQuantile(q, uppers, merged); !ok || fv > v {
			v, ok = fv, true
		}
	}
	return v, ok
}
