package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"pano/internal/obs"
)

// DashSeries is one sparkline on the dashboard: a family's recent
// samples rendered as plain values (gauges), per-interval deltas
// (counters), or windowed quantiles (histograms).
type DashSeries struct {
	Name   string    `json:"name"`
	Labels string    `json:"labels,omitempty"`
	Kind   string    `json:"kind"` // gauge | rate | p50 | p99
	Points []float64 `json:"points"`
	Last   float64   `json:"last"`
}

// DashSnapshot is one full dashboard frame, pushed over SSE each
// sampling tick and served once at page load.
type DashSnapshot struct {
	Now     time.Time          `json:"now"`
	SLOs    []SLOStatus        `json:"slos"`
	Runtime map[string]float64 `json:"runtime"`
	Series  []DashSeries       `json:"series"`
	Scrapes float64            `json:"scrapes"`
	NSeries int                `json:"n_series"`
}

const (
	dashPoints       = 120 // sparkline width in samples
	dashMaxPerFamily = 6   // label-set fan-out cap per family
)

// dashSnapshot builds the current dashboard frame from the store.
func (s *Sampler) dashSnapshot(now time.Time) DashSnapshot {
	snap := DashSnapshot{
		Now:     now,
		SLOs:    s.States(),
		Runtime: map[string]float64{},
		Scrapes: s.scrapes.Value(),
		NSeries: s.store.Len(),
	}
	for _, name := range s.store.Names() {
		switch name {
		case metricGoroutines, metricHeapBytes, metricGCPauseP99, metricSchedLatP99:
			for _, sr := range s.store.Family(name) {
				if p, ok := sr.Last(); ok {
					snap.Runtime[name] = p.V
				}
			}
		}
	}
	snap.Series = storePanels(s.store, now, s.cfg.Interval*dashPoints, func(name string) bool {
		return strings.HasPrefix(name, "pano_telemetry_") // self-metrics would dominate the board
	})
	if s.cfg.DashExtra != nil {
		snap.Series = append(snap.Series, s.cfg.DashExtra(now)...)
	}
	sort.SliceStable(snap.Series, func(i, j int) bool { return snap.Series[i].Name < snap.Series[j].Name })
	return snap
}

// storePanels renders a windowed store's families as dashboard panels:
// gauges as raw sparklines, counters as per-interval rate deltas,
// histograms as a p99 estimate over histWindow. Families for which skip
// returns true are omitted; per-family fan-out is capped at
// dashMaxPerFamily. Shared by the per-process dashboard (dashSnapshot)
// and pano-obsd's per-instance federation panels.
func storePanels(st *Store, now time.Time, histWindow time.Duration, skip func(name string) bool) []DashSeries {
	var out []DashSeries
	for _, name := range st.Names() {
		if skip != nil && skip(name) {
			continue
		}
		n := 0
		for _, sr := range st.Family(name) {
			if n >= dashMaxPerFamily {
				break
			}
			pts := sr.Points()
			if len(pts) == 0 {
				continue
			}
			ds := DashSeries{Name: name, Labels: labelString(sr), Kind: "gauge"}
			if sr.Kind == CounterSeries {
				ds.Kind = "rate"
			}
			start := 0
			if len(pts) > dashPoints+1 {
				start = len(pts) - dashPoints - 1
			}
			prev := pts[start]
			for _, p := range pts[start:] {
				v := p.V
				if sr.Kind == CounterSeries {
					v = p.V - prev.V
					if v < 0 {
						v = p.V // counter reset
					}
					prev = p
				}
				ds.Points = append(ds.Points, v)
			}
			if sr.Kind == CounterSeries && len(ds.Points) > 0 {
				ds.Points = ds.Points[1:] // first delta is always zero vs itself
			}
			if len(ds.Points) == 0 {
				continue
			}
			ds.Last = ds.Points[len(ds.Points)-1]
			out = append(out, ds)
			n++
		}
		for _, h := range st.HistFamily(name) {
			if n >= dashMaxPerFamily {
				break
			}
			if q, ok := h.QuantileSince(0.99, now.Add(-histWindow)); ok {
				out = append(out, DashSeries{
					Name: name, Labels: labelStringH(h), Kind: "p99",
					Points: []float64{q}, Last: q,
				})
				n++
			}
		}
	}
	return out
}

func labelString(s *Series) string {
	parts := make([]string, 0, len(s.Labels))
	for _, l := range s.Labels {
		parts = append(parts, l.Key+"="+l.Value)
	}
	return strings.Join(parts, ",")
}

func labelStringH(h *HistSeries) string {
	parts := make([]string, 0, len(h.Labels))
	for _, l := range h.Labels {
		parts = append(parts, l.Key+"="+l.Value)
	}
	return strings.Join(parts, ",")
}

// SLOHandler serves the SLO evaluation state as JSON (GET /debug/slo).
// Nil-safe: a nil sampler serves 404, matching an unmounted endpoint.
func (s *Sampler) SLOHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.NotFound(w, r)
			return
		}
		if !obs.AllowGetHead(w, r) {
			return
		}
		states := s.States()
		worst := StateOK
		for _, st := range states {
			switch st.State {
			case "page":
				worst = StatePage
			case "warn":
				if worst < StateWarn {
					worst = StateWarn
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			State string      `json:"state"`
			SLOs  []SLOStatus `json:"slos"`
		}{State: worst.String(), SLOs: states})
	})
}

// DashHandler serves the live dashboard (GET /debug/dash): a
// self-contained HTML page with canvas sparklines, SLO and runtime
// panels, updated by an SSE stream at the same path with ?stream=1.
func (s *Sampler) DashHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s == nil {
			http.NotFound(w, r)
			return
		}
		if !obs.AllowGetHead(w, r) {
			return
		}
		if r.Method == http.MethodHead {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			return
		}
		if r.URL.Query().Get("stream") == "1" {
			s.serveSSE(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashHTML)
	})
}

// serveSSE streams dashboard frames: one immediately, then one per
// sampling tick until the client disconnects.
func (s *Sampler) serveSSE(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("Connection", "keep-alive")

	ch, cancel := s.subscribe()
	defer cancel()

	s.mu.Lock()
	now := s.lastT
	s.mu.Unlock()
	if now.IsZero() {
		now = time.Now()
	}
	if first, err := json.Marshal(s.dashSnapshot(now)); err == nil {
		fmt.Fprintf(w, "data: %s\n\n", first)
		fl.Flush()
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case payload, open := <-ch:
			if !open {
				return
			}
			fmt.Fprintf(w, "data: %s\n\n", payload)
			fl.Flush()
		}
	}
}

const dashHTML = `<!doctype html>
<html><head><meta charset="utf-8"><title>pano telemetry</title>
<style>
body{background:#0b0e14;color:#cdd6f4;font:13px/1.5 ui-monospace,Menlo,monospace;margin:0;padding:16px}
h1{font-size:15px;margin:0 0 4px}
#meta{color:#6c7086;margin-bottom:12px}
.grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(300px,1fr));gap:8px}
.card{background:#11141d;border:1px solid #1e2230;border-radius:6px;padding:8px 10px}
.card .nm{color:#89b4fa;word-break:break-all}
.card .lb{color:#6c7086;font-size:11px}
.card .val{float:right;color:#a6e3a1}
canvas{width:100%;height:36px;display:block;margin-top:4px}
table{border-collapse:collapse;width:100%;margin-bottom:14px}
th,td{text-align:left;padding:3px 10px 3px 0;border-bottom:1px solid #1e2230;font-weight:normal}
th{color:#6c7086}
.ok{color:#a6e3a1}.warn{color:#f9e2af}.page{color:#f38ba8;font-weight:bold}
.rt{display:flex;gap:18px;flex-wrap:wrap;margin-bottom:14px}
.rt div b{color:#89b4fa;display:block;font-weight:normal;font-size:11px}
#state{padding:1px 8px;border-radius:4px;border:1px solid currentColor}
</style></head><body>
<h1>pano telemetry <span id="state" class="ok">ok</span></h1>
<div id="meta">connecting…</div>
<table id="slos"><thead><tr>
<th>slo</th><th>state</th><th>value</th><th>burn fast</th><th>burn slow</th><th>guards</th>
</tr></thead><tbody></tbody></table>
<div class="rt" id="rt"></div>
<div class="grid" id="grid"></div>
<script>
const hist = {};          // name|labels -> ring of recent values (client side)
const HN = 120;
function fmt(v){
  if (v === 0) return "0";
  const a = Math.abs(v);
  if (a >= 1e9) return (v/1e9).toFixed(1)+"G";
  if (a >= 1e6) return (v/1e6).toFixed(1)+"M";
  if (a >= 1e3) return (v/1e3).toFixed(1)+"k";
  if (a >= 1) return v.toFixed(2);
  if (a >= 1e-3) return (v*1e3).toFixed(2)+"m";
  return (v*1e6).toFixed(1)+"µ";
}
function spark(cv, pts){
  const ctx = cv.getContext("2d");
  const w = cv.width = cv.clientWidth, h = cv.height = cv.clientHeight;
  ctx.clearRect(0,0,w,h);
  if (pts.length < 2) return;
  let mn = Math.min(...pts), mx = Math.max(...pts);
  if (mx === mn) { mx += 1; mn -= 1; }
  ctx.beginPath();
  pts.forEach((v,i)=>{
    const x = i/(pts.length-1)*w, y = h-2-(v-mn)/(mx-mn)*(h-4);
    i ? ctx.lineTo(x,y) : ctx.moveTo(x,y);
  });
  ctx.strokeStyle = "#89b4fa"; ctx.lineWidth = 1.2; ctx.stroke();
}
function render(d){
  document.getElementById("meta").textContent =
    new Date(d.now).toLocaleTimeString()+" — "+d.n_series+" series, "+d.scrapes+" scrapes";
  let worst = "ok";
  const tb = document.querySelector("#slos tbody");
  tb.innerHTML = "";
  for (const s of d.slos){
    if (s.state === "page") worst = "page";
    else if (s.state === "warn" && worst !== "page") worst = "warn";
    const tr = document.createElement("tr");
    tr.innerHTML = "<td>"+s.name+"</td><td class='"+s.state+"'>"+s.state+"</td><td>"+
      (s.has_data?fmt(s.value):"–")+"</td><td>"+fmt(s.burn_fast)+"</td><td>"+
      fmt(s.burn_slow)+"</td><td style='color:#6c7086'>"+(s.guards||"")+"</td>";
    tb.appendChild(tr);
  }
  const st = document.getElementById("state");
  st.textContent = worst; st.className = worst;
  const rt = document.getElementById("rt");
  rt.innerHTML = "";
  for (const [k,v] of Object.entries(d.runtime||{})){
    const el = document.createElement("div");
    el.innerHTML = "<b>"+k.replace("pano_runtime_","")+"</b>"+fmt(v);
    rt.appendChild(el);
  }
  const grid = document.getElementById("grid");
  for (const s of d.series){
    const key = s.name+"|"+(s.labels||"");
    let card = document.getElementById("c_"+key);
    if (!card){
      card = document.createElement("div");
      card.className = "card"; card.id = "c_"+key;
      card.innerHTML = "<span class='nm'>"+s.name+"</span><span class='val'></span>"+
        "<div class='lb'>"+(s.labels||"")+" · "+s.kind+"</div><canvas></canvas>";
      grid.appendChild(card);
      hist[key] = [];
    }
    if (s.points.length > 1) hist[key] = s.points.slice(-HN);
    else { hist[key].push(s.last); if (hist[key].length > HN) hist[key].shift(); }
    card.querySelector(".val").textContent = fmt(s.last);
    spark(card.querySelector("canvas"), hist[key]);
  }
}
const es = new EventSource(location.pathname+"?stream=1");
es.onmessage = e => render(JSON.parse(e.data));
es.onerror = () => { document.getElementById("meta").textContent = "stream lost — reconnecting…"; };
</script></body></html>
`
