package telemetry

import (
	"strings"
	"time"

	"pano/internal/obs"
)

// SLOKind selects how an SLO's burn rate is computed from the store.
type SLOKind int

const (
	// SLORate watches a windowed bad/total ratio against a budget:
	// burn = (Δbad / Δtotal) / Budget. With no TotalMetric the
	// denominator is elapsed wall seconds, clamped to retained history
	// (so a seconds-denominated counter like rebuffer time reads
	// directly as a stall ratio, even on a young process).
	SLORate SLOKind = iota
	// SLOFloor watches a gauge that must stay at or above Threshold:
	// burn = (fraction of window samples below Threshold) / Budget.
	SLOFloor
	// SLOCeil watches a gauge that must stay at or below Threshold:
	// burn = (fraction of window samples above Threshold) / Budget.
	SLOCeil
	// SLOQuantile watches a histogram's windowed Quantile against
	// Threshold: burn = estimated quantile / Threshold.
	SLOQuantile
)

func (k SLOKind) String() string {
	switch k {
	case SLORate:
		return "rate"
	case SLOFloor:
		return "floor"
	case SLOCeil:
		return "ceil"
	default:
		return "quantile"
	}
}

// SLO is one declarative service-level objective over scraped metrics.
// Evaluation runs on two windows (fast catches, slow confirms): the
// state escalates to warn/page only when BOTH windows burn past the
// respective threshold, which also makes recovery fast — the fast
// window clears as soon as the condition does.
type SLO struct {
	// Name identifies the SLO in /debug/slo, metrics, and events.
	Name string
	Kind SLOKind
	// Metric names the source family; "|"-separated alternatives are
	// pooled (e.g. the client's and the simulator's rebuffer counters),
	// so one SLO set serves every binary and absent families cost
	// nothing.
	Metric string
	// MatchKey/MatchValues select which label sets of the family count
	// as "bad" (SLORate numerators, e.g. status=tile_error); empty
	// matches every series.
	MatchKey    string
	MatchValues []string
	// TotalMetric is the SLORate denominator family (every series; ""
	// uses elapsed window seconds).
	TotalMetric string
	// Threshold is the floor/ceiling/quantile bound (unused by SLORate).
	Threshold float64
	// Budget is the allowed bad fraction: the bad/total ratio budget for
	// SLORate, the violating-sample budget for floor/ceil (unused by
	// SLOQuantile, where Threshold itself is the budget).
	Budget float64
	// Quantile is the watched quantile for SLOQuantile (default 0.99).
	Quantile float64
	// FastWindow/SlowWindow are the burn evaluation windows (default
	// 5m / 1h). Both clamp to available history, so a young process
	// still evaluates.
	FastWindow, SlowWindow time.Duration
	// WarnBurn/PageBurn are the burn-rate thresholds for the warn and
	// page states.
	WarnBurn, PageBurn float64
	// ClearAfter is how many consecutive clean evaluations must pass
	// before the state steps back down (flap damping; default 3).
	ClearAfter int
	// Guards documents which Pano claim the SLO protects (shown in
	// /debug/slo and the dashboard).
	Guards string
}

func (s SLO) withDefaults() SLO {
	if s.FastWindow <= 0 {
		s.FastWindow = 5 * time.Minute
	}
	if s.SlowWindow <= 0 {
		s.SlowWindow = time.Hour
	}
	if s.Quantile <= 0 || s.Quantile >= 1 {
		s.Quantile = 0.99
	}
	if s.WarnBurn <= 0 {
		s.WarnBurn = 2
	}
	if s.PageBurn <= 0 {
		s.PageBurn = 6
	}
	if s.ClearAfter <= 0 {
		s.ClearAfter = 3
	}
	if s.Budget <= 0 {
		s.Budget = 0.1
	}
	return s
}

func (s SLO) metrics() []string { return strings.Split(s.Metric, "|") }

// SLOState is the three-level alert state.
type SLOState int

const (
	StateOK SLOState = iota
	StateWarn
	StatePage
)

func (s SLOState) String() string {
	switch s {
	case StateOK:
		return "ok"
	case StateWarn:
		return "warn"
	default:
		return "page"
	}
}

// SLOStatus is one SLO's current evaluation, as served by /debug/slo.
type SLOStatus struct {
	Name        string  `json:"name"`
	Kind        string  `json:"kind"`
	State       string  `json:"state"`
	BurnFast    float64 `json:"burn_fast"`
	BurnSlow    float64 `json:"burn_slow"`
	Value       float64 `json:"value"` // latest raw signal (ratio, gauge, quantile)
	HasData     bool    `json:"has_data"`
	Threshold   float64 `json:"threshold,omitempty"`
	Budget      float64 `json:"budget,omitempty"`
	Quantile    float64 `json:"quantile,omitempty"`
	WarnBurn    float64 `json:"warn_burn"`
	PageBurn    float64 `json:"page_burn"`
	FastSec     float64 `json:"fast_window_sec"`
	SlowSec     float64 `json:"slow_window_sec"`
	Transitions uint64  `json:"transitions"`
	Guards      string  `json:"guards,omitempty"`
	Metric      string  `json:"metric"`
}

// sloEval is one SLO's evaluation state inside the sampler.
type sloEval struct {
	slo         SLO
	state       SLOState
	clearStreak int
	transitions uint64
	last        SLOStatus
	stateGauge  *obs.Gauge
}

// burn computes the SLO's burn rate over one window ending at now,
// plus the window's raw signal value. hasData is false when no source
// series produced samples (an idle SLO holds at burn 0).
func (e *sloEval) burn(st *Store, now time.Time, window time.Duration) (burn, value float64, hasData bool) {
	s := e.slo
	since := now.Add(-window)
	switch s.Kind {
	case SLORate:
		bad, ok := st.DeltaSum(s.metrics(), s.MatchKey, s.MatchValues, since)
		if !ok {
			return 0, 0, false
		}
		var total float64
		if s.TotalMetric == "" {
			// Wall-time denominator, clamped to retained history: a process
			// younger than the window is judged over the seconds it actually
			// lived through, not diluted by window time it never saw.
			total = window.Seconds()
			if oldest, has := st.EarliestSample(s.metrics()); has {
				if avail := now.Sub(oldest).Seconds(); avail < total {
					total = avail
				}
			}
		} else {
			total, _ = st.DeltaSum(strings.Split(s.TotalMetric, "|"), "", nil, since)
		}
		if total <= 0 {
			return 0, 0, true
		}
		ratio := bad / total
		return ratio / s.Budget, ratio, true
	case SLOFloor, SLOCeil:
		frac, n := st.ViolationFrac(s.metrics(), since, s.Threshold, s.Kind == SLOCeil)
		if n == 0 {
			return 0, 0, false
		}
		var latest float64
		for _, fam := range s.metrics() {
			for _, sr := range st.Family(fam) {
				if p, ok := sr.Last(); ok {
					latest = p.V
				}
			}
		}
		return frac / s.Budget, latest, true
	default: // SLOQuantile
		q, ok := st.QuantileMax(s.metrics(), s.Quantile, since)
		if !ok {
			return 0, 0, false
		}
		if s.Threshold <= 0 {
			return 0, q, true
		}
		return q / s.Threshold, q, true
	}
}

// evaluate runs one burn-rate evaluation, returning the transition (if
// any) as (from, to, true).
func (e *sloEval) evaluate(st *Store, now time.Time) (from, to SLOState, changed bool) {
	s := e.slo
	burnFast, value, hasFast := e.burn(st, now, s.FastWindow)
	burnSlow, _, _ := e.burn(st, now, s.SlowWindow)

	cand := StateOK
	if burnFast >= s.WarnBurn && burnSlow >= s.WarnBurn {
		cand = StateWarn
	}
	if burnFast >= s.PageBurn && burnSlow >= s.PageBurn {
		cand = StatePage
	}

	prev := e.state
	switch {
	case cand > e.state:
		// Escalation is immediate.
		e.state = cand
		e.clearStreak = 0
	case cand < e.state:
		// De-escalation needs ClearAfter consecutive clean evaluations
		// (flap damping), then drops straight to the candidate.
		e.clearStreak++
		if e.clearStreak >= s.ClearAfter {
			e.state = cand
			e.clearStreak = 0
		}
	default:
		e.clearStreak = 0
	}

	e.last = SLOStatus{
		Name: s.Name, Kind: s.Kind.String(), State: e.state.String(),
		BurnFast: burnFast, BurnSlow: burnSlow, Value: value, HasData: hasFast,
		Threshold: s.Threshold, Budget: s.Budget,
		WarnBurn: s.WarnBurn, PageBurn: s.PageBurn,
		FastSec: s.FastWindow.Seconds(), SlowSec: s.SlowWindow.Seconds(),
		Guards: s.Guards, Metric: s.Metric,
	}
	if s.Kind == SLOQuantile {
		e.last.Quantile = s.Quantile
	}
	if e.state != prev {
		e.transitions++
	}
	e.last.Transitions = e.transitions
	e.stateGauge.Set(float64(e.state))
	return prev, e.state, e.state != prev
}
