package telemetry

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultSLOs returns the QoE objective set every pano binary ships
// with. Source families are "|"-pooled across the client, simulator,
// server, and edge so the same set is meaningful on each; a family
// that never appears simply holds its SLO at ok. The Guards strings
// map each SLO to the paper claim it protects (mirrored in
// internal/obs/doc.go).
func DefaultSLOs() []SLO {
	return []SLO{
		{
			Name: "rebuffer", Kind: SLORate,
			Metric: "pano_client_rebuffer_seconds_total|pano_sim_rebuffer_seconds_total",
			Budget: 0.05, WarnBurn: 2, PageBurn: 6,
			Guards: "buffering-ratio axis of Figures 12/17: stall time under 5% of wall time",
		},
		{
			Name: "pspnr_floor", Kind: SLOFloor,
			Metric:    "pano_client_session_pspnr_db|pano_sim_session_pspnr_db",
			Threshold: 30, Budget: 0.1, WarnBurn: 1, PageBurn: 3,
			Guards: "quality axis of Figures 13/15: session viewport PSPNR above the MOS-2 band",
		},
		{
			Name: "tile_p99", Kind: SLOQuantile,
			Metric:    "pano_client_tile_attempt_seconds|pano_http_request_seconds",
			Threshold: 0.5, Quantile: 0.99, WarnBurn: 1, PageBurn: 2,
			Guards: "§6.2/§8.4 serving overhead: tile fetch tail latency within half a chunk duration",
		},
		{
			Name: "edge_hit", Kind: SLOFloor,
			Metric:    "pano_edge_hit_ratio",
			Threshold: 0.5, Budget: 0.25, WarnBurn: 1, PageBurn: 2,
			Guards: "edge-tier offload claim (BENCH_edge): cache absorbs most tile demand",
		},
		{
			Name: "abort", Kind: SLORate,
			Metric:      "pano_client_sessions_total",
			MatchKey:    "status",
			MatchValues: []string{"manifest_error", "tile_error"},
			TotalMetric: "pano_client_sessions_total",
			Budget:      0.02, WarnBurn: 2, PageBurn: 5,
			Guards: "§7 resilience claim: sessions never abort on tile faults",
		},
		{
			Name: "failover_p99", Kind: SLOQuantile,
			Metric:    "pano_fleet_failover_seconds",
			Threshold: 1.0, Quantile: 0.99, WarnBurn: 1, PageBurn: 2,
			Guards: "origin-fleet resilience (BENCH_fleet): losing a shard re-answers within one chunk duration",
		},
		{
			Name: "breaker_open", Kind: SLOCeil,
			Metric:    "pano_fleet_origins_open",
			Threshold: 1, Budget: 0.25, WarnBurn: 1, PageBurn: 2,
			Guards: "origin-fleet resilience (BENCH_fleet): at most one shard's breaker open at a time",
		},
		{
			Name: "hedge_rate", Kind: SLORate,
			Metric:      "pano_client_hedge_issued_total",
			TotalMetric: "pano_fleet_requests_total",
			Budget:      0.2, WarnBurn: 2, PageBurn: 5,
			Guards: "origin-fleet efficiency (BENCH_fleet): hedged duplicates stay a small fraction of fleet traffic",
		},
	}
}

// ParseSLOs parses the compact -slo flag grammar into an SLO set.
//
//	""                      -> nil (telemetry disabled)
//	"default"               -> DefaultSLOs()
//	"rebuffer<=0.02"        -> defaults with the rebuffer budget tightened
//	"pspnr_floor>=40"       -> defaults with the PSPNR floor raised
//	"edge_hit=off;abort=off" -> defaults minus those SLOs
//
// Items are ';' or ',' separated. Each names a default SLO and
// adjusts its bound: "<=v" sets the budget (SLORate) or ceiling
// (SLOCeil/SLOQuantile), ">=v" sets the floor (SLOFloor), "=off"
// removes it. Two optional suffixes tune evaluation:
// "@fast/slow" sets the windows (Go durations, e.g. "@30s/5m") and
// "!warn/page" the burn thresholds (e.g. "!2/6"):
//
//	"rebuffer<=0.02@30s/5m!2/6"
func ParseSLOs(spec string) ([]SLO, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	slos := DefaultSLOs()
	if spec == "default" {
		return slos, nil
	}
	byName := make(map[string]int, len(slos))
	for i, s := range slos {
		byName[s.Name] = i
	}
	removed := make(map[string]bool)

	for _, item := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		item = strings.TrimSpace(item)
		if item == "" || item == "default" {
			continue
		}
		rest := item
		var fastSlow, burns string
		if i := strings.IndexByte(rest, '!'); i >= 0 {
			rest, burns = rest[:i], rest[i+1:]
		}
		if i := strings.IndexByte(rest, '@'); i >= 0 {
			rest, fastSlow = rest[:i], rest[i+1:]
		}
		name, op, val, err := splitSLOItem(rest)
		if err != nil {
			return nil, err
		}
		idx, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("telemetry: unknown SLO %q (known: %s)", name, strings.Join(sloNames(slos), ", "))
		}
		s := &slos[idx]
		switch {
		case op == "=" && val == "off":
			removed[name] = true
		case op == "=" || op == "<=" || op == ">=":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: SLO %s: bad bound %q", name, val)
			}
			switch s.Kind {
			case SLORate:
				s.Budget = v
			case SLOFloor:
				if op == "<=" {
					return nil, fmt.Errorf("telemetry: SLO %s is a floor; use >=", name)
				}
				s.Threshold = v
			default: // SLOCeil, SLOQuantile
				if op == ">=" {
					return nil, fmt.Errorf("telemetry: SLO %s is a ceiling; use <=", name)
				}
				s.Threshold = v
			}
		default:
			return nil, fmt.Errorf("telemetry: bad SLO item %q", item)
		}
		if fastSlow != "" {
			fast, slow, err := parseWindows(fastSlow)
			if err != nil {
				return nil, fmt.Errorf("telemetry: SLO %s: %w", name, err)
			}
			s.FastWindow, s.SlowWindow = fast, slow
		}
		if burns != "" {
			warn, page, err := parseBurns(burns)
			if err != nil {
				return nil, fmt.Errorf("telemetry: SLO %s: %w", name, err)
			}
			s.WarnBurn, s.PageBurn = warn, page
		}
	}

	out := slos[:0]
	for _, s := range slos {
		if !removed[s.Name] {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("telemetry: every SLO was turned off; use -slo \"\" to disable telemetry")
	}
	return out, nil
}

func splitSLOItem(item string) (name, op, val string, err error) {
	for _, cand := range []string{"<=", ">=", "="} {
		if i := strings.Index(item, cand); i > 0 {
			return strings.TrimSpace(item[:i]), cand, strings.TrimSpace(item[i+len(cand):]), nil
		}
	}
	return "", "", "", fmt.Errorf("telemetry: bad SLO item %q (want name<=v, name>=v, or name=off)", item)
}

func parseWindows(s string) (fast, slow time.Duration, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad windows %q (want fast/slow, e.g. 30s/5m)", s)
	}
	if fast, err = time.ParseDuration(a); err != nil {
		return 0, 0, fmt.Errorf("bad fast window %q", a)
	}
	if slow, err = time.ParseDuration(b); err != nil {
		return 0, 0, fmt.Errorf("bad slow window %q", b)
	}
	if fast <= 0 || slow < fast {
		return 0, 0, fmt.Errorf("want 0 < fast <= slow, got %v/%v", fast, slow)
	}
	return fast, slow, nil
}

func parseBurns(s string) (warn, page float64, err error) {
	a, b, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad burns %q (want warn/page, e.g. 2/6)", s)
	}
	if warn, err = strconv.ParseFloat(a, 64); err != nil || warn <= 0 {
		return 0, 0, fmt.Errorf("bad warn burn %q", a)
	}
	if page, err = strconv.ParseFloat(b, 64); err != nil || page < warn {
		return 0, 0, fmt.Errorf("bad page burn %q (want page >= warn)", b)
	}
	return warn, page, nil
}

func sloNames(slos []SLO) []string {
	out := make([]string, len(slos))
	for i, s := range slos {
		out[i] = s.Name
	}
	sort.Strings(out)
	return out
}
