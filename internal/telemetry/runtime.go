package telemetry

import (
	"runtime"
	rtm "runtime/metrics"

	"pano/internal/obs"
)

// Runtime health metric names written into the scraped registry (and
// therefore into the windowed store) each sampling tick.
const (
	metricGoroutines  = "pano_runtime_goroutines"
	metricHeapBytes   = "pano_runtime_heap_bytes"
	metricGCCycles    = "pano_runtime_gc_cycles_total"
	metricGCPauseP99  = "pano_runtime_gc_pause_p99_seconds"
	metricSchedLatP99 = "pano_runtime_sched_latency_p99_seconds"
)

// runtimeSampler reads Go runtime health (heap, GC, goroutines,
// scheduler latency) via runtime/metrics into plain obs gauges, so
// runtime signals flow through the same windowed store and dashboard
// as QoE signals.
type runtimeSampler struct {
	reg     *obs.Registry
	samples []rtm.Sample

	goroutines *obs.Gauge
	heapBytes  *obs.Gauge
	gcCycles   *obs.Counter
	gcPause    *obs.Gauge
	schedLat   *obs.Gauge

	lastGCCycles uint64
	lastGCPause  *rtm.Float64Histogram
	lastSched    *rtm.Float64Histogram
}

const (
	rmHeap    = "/memory/classes/heap/objects:bytes"
	rmGC      = "/gc/cycles/total:gc-cycles"
	rmGCPause = "/gc/pauses:seconds"
	rmSched   = "/sched/latencies:seconds"
)

func newRuntimeSampler(reg *obs.Registry) *runtimeSampler {
	rs := &runtimeSampler{
		reg: reg,
		samples: []rtm.Sample{
			{Name: rmHeap}, {Name: rmGC}, {Name: rmGCPause}, {Name: rmSched},
		},
		goroutines: reg.Gauge(metricGoroutines, "live goroutines"),
		heapBytes:  reg.Gauge(metricHeapBytes, "bytes of live heap objects"),
		gcCycles:   reg.Counter(metricGCCycles, "completed GC cycles"),
		gcPause:    reg.Gauge(metricGCPauseP99, "p99 GC stop-the-world pause over the last sampling interval"),
		schedLat:   reg.Gauge(metricSchedLatP99, "p99 goroutine scheduling latency over the last sampling interval"),
	}
	return rs
}

// sample reads the runtime once and updates the gauges. Histogram-typed
// runtime metrics are cumulative since process start, so p99s are
// computed over the delta since the previous sample — a true "last
// interval" tail, not a lifetime average.
func (rs *runtimeSampler) sample() {
	rs.goroutines.Set(float64(runtime.NumGoroutine()))
	rtm.Read(rs.samples)
	for i := range rs.samples {
		s := &rs.samples[i]
		switch s.Name {
		case rmHeap:
			if s.Value.Kind() == rtm.KindUint64 {
				rs.heapBytes.Set(float64(s.Value.Uint64()))
			}
		case rmGC:
			if s.Value.Kind() == rtm.KindUint64 {
				v := s.Value.Uint64()
				if v > rs.lastGCCycles {
					rs.gcCycles.Add(float64(v - rs.lastGCCycles))
				}
				rs.lastGCCycles = v
			}
		case rmGCPause:
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.gcPause.Set(histDeltaQuantile(0.99, h, rs.lastGCPause))
				rs.lastGCPause = cloneHist(h)
			}
		case rmSched:
			if s.Value.Kind() == rtm.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.schedLat.Set(histDeltaQuantile(0.99, h, rs.lastSched))
				rs.lastSched = cloneHist(h)
			}
		}
	}
}

func cloneHist(h *rtm.Float64Histogram) *rtm.Float64Histogram {
	return &rtm.Float64Histogram{
		Counts:  append([]uint64(nil), h.Counts...),
		Buckets: h.Buckets, // bucket layout is fixed for a metric
	}
}

// histDeltaQuantile estimates the q-quantile of cur-minus-prev on a
// runtime/metrics histogram (len(Buckets) == len(Counts)+1; the first
// and last boundaries may be ±Inf). An empty delta returns 0.
func histDeltaQuantile(q float64, cur, prev *rtm.Float64Histogram) float64 {
	counts := make([]uint64, len(cur.Counts))
	var total uint64
	for i, c := range cur.Counts {
		if prev != nil && len(prev.Counts) == len(cur.Counts) && prev.Counts[i] <= c {
			c -= prev.Counts[i]
		} else if prev != nil && len(prev.Counts) == len(cur.Counts) {
			c = 0
		}
		counts[i] = c
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		lo, hi := cur.Buckets[i], cur.Buckets[i+1]
		if lo < 0 || lo != lo { // -Inf or NaN lower edge
			lo = 0
		}
		if hi > lo && hi == hi && !isInf(hi) {
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		return lo
	}
	return 0
}

func isInf(v float64) bool { return v > 1e308 || v < -1e308 }
