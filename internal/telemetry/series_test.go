package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"pano/internal/obs"
)

var t0 = time.Unix(1700000000, 0)

func at(sec int) time.Time { return t0.Add(time.Duration(sec) * time.Second) }

// scrape advances the store by one synthetic tick.
func scrape(st *Store, reg *obs.Registry, sec int) { st.Observe(at(sec), reg.Snapshot()) }

func TestCounterSeriesWindowedDelta(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(64)
	c := reg.Counter("reqs_total", "requests")
	for i := 0; i < 10; i++ {
		c.Add(2) // +2 per second
		scrape(st, reg, i)
	}
	fam := st.Family("reqs_total")
	if len(fam) != 1 {
		t.Fatalf("family size = %d, want 1", len(fam))
	}
	s := fam[0]
	// Window covering the last 5 samples: 5 ticks of +2 (t=5..9 vs t=4).
	d, ok := s.DeltaSince(at(4))
	if !ok || d != 10 {
		t.Errorf("DeltaSince(t4) = %v,%v, want 10,true", d, ok)
	}
	// Window wider than history clamps to the oldest sample.
	d, ok = s.DeltaSince(at(-100))
	if !ok || d != 18 {
		t.Errorf("DeltaSince(clamped) = %v,%v, want 18,true", d, ok)
	}
	if r := s.RateSince(at(4)); math.Abs(r-2) > 1e-9 {
		t.Errorf("RateSince = %v, want 2/s", r)
	}
}

func TestCounterResetHandling(t *testing.T) {
	st := NewStore(8)
	key := "c\xff"
	_ = key
	sn := func(v float64, sec int) {
		st.Observe(at(sec), []obs.SnapshotSeries{{Name: "c", Type: "counter", Key: "", Value: v}})
	}
	sn(100, 0)
	sn(120, 1)
	sn(5, 2) // process restarted: cumulative dropped below the window start
	s := st.Family("c")[0]
	d, ok := s.DeltaSince(at(0))
	if !ok || d != 5 {
		t.Errorf("post-reset DeltaSince = %v,%v, want 5,true (count from zero)", d, ok)
	}
}

func TestGaugeSeriesAndViolationFrac(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(64)
	g := reg.Gauge("pspnr_db", "quality")
	vals := []float64{40, 38, 25, 22, 35, 41} // 2 of 6 below a floor of 30
	for i, v := range vals {
		g.Set(v)
		scrape(st, reg, i)
	}
	frac, n := st.ViolationFrac([]string{"pspnr_db"}, at(-1), 30, false)
	if n != 6 || math.Abs(frac-2.0/6) > 1e-9 {
		t.Errorf("floor ViolationFrac = %v over %d, want 1/3 over 6", frac, n)
	}
	// Ceiling direction: samples above 39.
	frac, n = st.ViolationFrac([]string{"pspnr_db"}, at(-1), 39, true)
	if n != 6 || math.Abs(frac-2.0/6) > 1e-9 {
		t.Errorf("ceil ViolationFrac = %v over %d, want 1/3 over 6", frac, n)
	}
	// Window restriction: only the last two samples.
	frac, n = st.ViolationFrac([]string{"pspnr_db"}, at(4), 30, false)
	if n != 2 || frac != 0 {
		t.Errorf("windowed ViolationFrac = %v over %d, want 0 over 2", frac, n)
	}
	// Missing family: no data.
	if _, n := st.ViolationFrac([]string{"absent"}, at(0), 1, false); n != 0 {
		t.Errorf("absent family n = %d, want 0", n)
	}
}

func TestRingWrapAround(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(4)
	g := reg.Gauge("g", "g")
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		scrape(st, reg, i)
	}
	pts := st.Family("g")[0].Points()
	if len(pts) != 4 {
		t.Fatalf("retained %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Errorf("pts[%d].V = %v, want %v (oldest-first after wrap)", i, p.V, want)
		}
	}
	last, ok := st.Family("g")[0].Last()
	if !ok || last.V != 9 {
		t.Errorf("Last = %v,%v, want 9,true", last.V, ok)
	}
}

func TestHistSeriesWindowedQuantile(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(64)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 0.2, 0.4, 0.8})

	// First epoch: all observations fast.
	for i := 0; i < 100; i++ {
		h.Observe(0.05)
	}
	scrape(st, reg, 0)
	// Second epoch: slow tail appears.
	for i := 0; i < 90; i++ {
		h.Observe(0.05)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.7)
	}
	scrape(st, reg, 10)

	hs := st.HistFamily("lat_seconds")[0]
	// Full-history window includes both epochs.
	if n := hs.CountSince(at(-1)); n != 100 {
		t.Errorf("CountSince(full) = %d, want 100 (delta vs first snapshot)", n)
	}
	// The windowed p99 sees the recent tail; the first epoch's 100 fast
	// observations are outside the delta and cannot dilute it.
	q, ok := hs.QuantileSince(0.99, at(5))
	if !ok {
		t.Fatal("QuantileSince: no data")
	}
	if q <= 0.4 || q > 0.8 {
		t.Errorf("windowed p99 = %v, want in (0.4, 0.8]", q)
	}
	// p50 of the window is still fast.
	if q, _ := hs.QuantileSince(0.5, at(5)); q > 0.1 {
		t.Errorf("windowed p50 = %v, want <= 0.1", q)
	}
}

func TestQuantileMaxAcrossFamilies(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(16)
	fast := reg.Histogram("client_seconds", "c", []float64{0.1, 1})
	slow := reg.Histogram("server_seconds", "s", []float64{0.1, 1}, obs.L("endpoint", "tile"))
	scrape(st, reg, 0)
	for i := 0; i < 100; i++ {
		fast.Observe(0.05)
		slow.Observe(0.9)
	}
	scrape(st, reg, 1)
	q, ok := st.QuantileMax([]string{"client_seconds", "server_seconds"}, 0.99, at(0))
	if !ok {
		t.Fatal("QuantileMax: no data")
	}
	if q <= 0.1 {
		t.Errorf("QuantileMax = %v, want the slower family's tail (> 0.1)", q)
	}
	if _, ok := st.QuantileMax([]string{"absent"}, 0.99, at(0)); ok {
		t.Errorf("absent family should report no data")
	}
}

func TestDeltaSumLabelMatching(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(16)
	okC := reg.Counter("sessions_total", "s", obs.L("status", "ok"))
	errC := reg.Counter("sessions_total", "s", obs.L("status", "tile_error"))
	scrape(st, reg, 0)
	okC.Add(98)
	errC.Add(2)
	scrape(st, reg, 1)

	bad, has := st.DeltaSum([]string{"sessions_total"}, "status", []string{"tile_error"}, at(0))
	if !has || bad != 2 {
		t.Errorf("bad DeltaSum = %v,%v, want 2,true", bad, has)
	}
	total, has := st.DeltaSum([]string{"sessions_total"}, "", nil, at(0))
	if !has || total != 100 {
		t.Errorf("total DeltaSum = %v,%v, want 100,true", total, has)
	}
	if v, has := st.DeltaSum([]string{"sessions_total"}, "status", []string{"nope"}, at(0)); has || v != 0 {
		t.Errorf("unmatched label DeltaSum = %v,%v, want 0,false", v, has)
	}
}

// TestStoreConcurrentScrapeAndRead hammers every read accessor while
// Observe keeps appending — the exact interleaving of a sampler tick
// racing an HTTP dashboard snapshot. The readers resolve their
// *Series/*HistSeries pointers ONCE and hold them across scrapes
// (as serveSSE and the SLO evaluator do), so nothing but the
// per-series locks orders the ring accesses; run under -race this
// locks that guarantee down.
func TestStoreConcurrentScrapeAndRead(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(32)
	c := reg.Counter("reqs_total", "r")
	g := reg.Gauge("depth", "d")
	h := reg.Histogram("lat_seconds", "l", []float64{0.1, 1})
	c.Add(1)
	g.Set(1)
	h.Observe(0.05)
	st.Observe(at(0), reg.Snapshot())

	counters := st.Family("reqs_total")
	gauges := st.Family("depth")
	hists := st.HistFamily("lat_seconds")
	if len(counters) == 0 || len(gauges) == 0 || len(hists) == 0 {
		t.Fatal("setup: series missing after first scrape")
	}

	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			c.Add(1)
			g.Set(float64(i))
			h.Observe(0.2)
			st.Observe(at(i), reg.Snapshot())
		}
	}()

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				for _, s := range counters {
					s.Points()
					s.Last()
					s.Oldest()
					s.DeltaSince(at(0))
					s.RateSince(at(0))
				}
				for _, s := range gauges {
					s.Points()
					s.Last()
				}
				for _, hs := range hists {
					hs.QuantileSince(0.99, at(0))
					hs.CountSince(at(0))
				}
				st.DeltaSum([]string{"reqs_total"}, "", nil, at(0))
				st.ViolationFrac([]string{"depth"}, at(0), 5, true)
				st.QuantileMax([]string{"lat_seconds"}, 0.99, at(0))
				st.EarliestSample([]string{"reqs_total", "depth"})
			}
		}()
	}
	readers.Wait()
	close(stop)
	writer.Wait()
}

func TestStoreEarliestSample(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(4)
	if _, ok := st.EarliestSample([]string{"g"}); ok {
		t.Error("empty store reported a sample")
	}
	g := reg.Gauge("g", "g")
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		scrape(st, reg, i)
	}
	// The 4-deep ring retains t6..t9: the earliest must track eviction.
	got, ok := st.EarliestSample([]string{"g"})
	if !ok || !got.Equal(at(6)) {
		t.Errorf("EarliestSample = %v,%v, want %v,true", got, ok, at(6))
	}
}

func TestStoreObserveNewSeriesMidStream(t *testing.T) {
	reg := obs.NewRegistry()
	st := NewStore(16)
	reg.Gauge("a", "a").Set(1)
	scrape(st, reg, 0)
	reg.Gauge("b", "b").Set(2) // appears only on the second scrape
	scrape(st, reg, 1)
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	if pts := st.Family("b")[0].Points(); len(pts) != 1 || pts[0].V != 2 {
		t.Errorf("late series points = %v", pts)
	}
	names := st.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
}
