package telemetry

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSLOHandlerJSON(t *testing.T) {
	s, reg, _ := newTestSampler(t, rateSLO())
	bad := reg.Counter("bad_seconds_total", "stall seconds")

	get := func() (int, string, map[string]any) {
		rec := httptest.NewRecorder()
		s.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
		var body map[string]any
		if rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
				t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
			}
		}
		return rec.Code, rec.Header().Get("Content-Type"), body
	}

	// Before any Step: configured shape at ok.
	code, ct, body := get()
	if code != http.StatusOK || ct != "application/json" {
		t.Fatalf("GET = %d %q, want 200 application/json", code, ct)
	}
	if body["state"] != "ok" {
		t.Errorf("initial state = %v, want ok", body["state"])
	}
	slos := body["slos"].([]any)
	if len(slos) != 1 {
		t.Fatalf("slos = %d entries, want 1", len(slos))
	}
	if nm := slos[0].(map[string]any)["name"]; nm != "stall" {
		t.Errorf("slo name = %v, want stall", nm)
	}

	// Drive the SLO to page: the rollup follows the worst state.
	for i := 0; i < 25; i++ {
		s.Step(at(i))
	}
	for i := 25; i < 40; i++ {
		bad.Add(1)
		s.Step(at(i))
	}
	if _, _, body = get(); body["state"] != "page" {
		t.Errorf("state under burn = %v, want page", body["state"])
	}
	st := body["slos"].([]any)[0].(map[string]any)
	if st["state"] != "page" || st["burn_fast"].(float64) < 6 {
		t.Errorf("slo status = %v, want paged with burn_fast >= 6", st)
	}

	// Method gating.
	rec := httptest.NewRecorder()
	s.SLOHandler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/slo", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST = %d, want 405", rec.Code)
	}

	// Nil sampler serves 404 from both handlers.
	var nilS *Sampler
	for _, h := range []http.Handler{nilS.SLOHandler(), nilS.DashHandler()} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
		if rec.Code != http.StatusNotFound {
			t.Errorf("nil sampler handler = %d, want 404", rec.Code)
		}
	}
}

func TestDashHandlerHTML(t *testing.T) {
	s, _, _ := newTestSampler(t, rateSLO())
	rec := httptest.NewRecorder()
	s.DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dash", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", ct)
	}
	page := rec.Body.String()
	// Self-contained: the page must carry its own SSE client, no assets.
	for _, want := range []string{"EventSource", "?stream=1", "<canvas>"} {
		if !strings.Contains(page, want) {
			t.Errorf("dashboard page missing %q", want)
		}
	}

	rec = httptest.NewRecorder()
	s.DashHandler().ServeHTTP(rec, httptest.NewRequest("DELETE", "/debug/dash", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE = %d, want 405", rec.Code)
	}
}

func TestDashSnapshotShaping(t *testing.T) {
	s, reg, _ := newTestSampler(t, rateSLO())
	c := reg.Counter("reqs_total", "r")
	g := reg.Gauge("buf_sec", "b")
	h := reg.Histogram("lat_seconds", "l", []float64{0.1, 1})
	for i := 0; i < 5; i++ {
		c.Add(3)
		g.Set(float64(i))
		h.Observe(0.05)
		s.Step(at(i))
	}
	snap := s.dashSnapshot(at(4))

	kinds := map[string]string{}
	for _, ds := range snap.Series {
		kinds[ds.Name] = ds.Kind
		if strings.HasPrefix(ds.Name, "pano_telemetry_") {
			t.Errorf("self-metric %s leaked onto the dashboard", ds.Name)
		}
	}
	if kinds["reqs_total"] != "rate" {
		t.Errorf("counter kind = %q, want rate", kinds["reqs_total"])
	}
	if kinds["buf_sec"] != "gauge" {
		t.Errorf("gauge kind = %q, want gauge", kinds["buf_sec"])
	}
	if kinds["lat_seconds"] != "p99" {
		t.Errorf("histogram kind = %q, want p99", kinds["lat_seconds"])
	}
	for _, ds := range snap.Series {
		if ds.Name == "reqs_total" {
			// Per-tick deltas: +3 each scrape after the first.
			for i, v := range ds.Points {
				if v != 3 {
					t.Errorf("rate point %d = %v, want 3", i, v)
				}
			}
		}
	}
	if len(snap.SLOs) != 1 || snap.NSeries == 0 || snap.Scrapes != 5 {
		t.Errorf("frame meta = %d slos, %d series, %v scrapes", len(snap.SLOs), snap.NSeries, snap.Scrapes)
	}
}

// sseFrames reads SSE "data:" payloads from a live stream into out until
// the context ends or n frames arrive.
func sseFrames(t *testing.T, body io.Reader, n int, out chan<- DashSnapshot) {
	t.Helper()
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	got := 0
	for sc.Scan() && got < n {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var snap DashSnapshot
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &snap); err != nil {
			t.Errorf("bad SSE frame: %v", err)
			return
		}
		out <- snap
		got++
	}
}

func TestSSEStreamDeliversFrames(t *testing.T) {
	s, reg, _ := newTestSampler(t, rateSLO())
	bad := reg.Counter("bad_seconds_total", "stall seconds")
	s.Step(at(0))

	srv := httptest.NewServer(s.DashHandler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"?stream=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	frames := make(chan DashSnapshot, 4)
	go sseFrames(t, resp.Body, 3, frames)

	// Frame 1 arrives immediately (the initial snapshot), before any
	// further Step.
	select {
	case f := <-frames:
		if f.NSeries == 0 {
			t.Errorf("initial frame has no series")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no initial SSE frame")
	}

	// Each Step publishes one more frame to the live subscriber.
	bad.Add(1)
	s.Step(at(1))
	bad.Add(1)
	s.Step(at(2))
	for i := 0; i < 2; i++ {
		select {
		case f := <-frames:
			if len(f.SLOs) != 1 {
				t.Errorf("frame %d: %d slos, want 1", i, len(f.SLOs))
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("SSE frame %d never arrived", i)
		}
	}

	// Client disconnect unregisters the subscriber: publishing again
	// must not leak or block, and the subscriber count returns to zero.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.subMu.Lock()
		n := len(s.subs)
		s.subMu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not unregistered after disconnect (%d left)", n)
		}
		time.Sleep(time.Millisecond)
		s.Step(at(3))
	}
}

func TestSSESlowClientDropsNotBlocks(t *testing.T) {
	s, reg, _ := newTestSampler(t, rateSLO())
	ch, cancel := s.subscribe()
	defer cancel()
	_ = ch // never read: the channel fills and publish must drop

	for i := 0; i < 20; i++ {
		s.Step(at(i)) // must not block on the stuck subscriber
	}
	if v := reg.CounterValue("pano_telemetry_sse_dropped_total"); v == 0 {
		t.Errorf("pano_telemetry_sse_dropped_total = %v, want > 0", v)
	}
}

// TestScrapeWhileServingStress hammers one sampler from every direction
// at once — metric writers, Step ticks, JSON probes, dashboard loads,
// and SSE subscribers — and relies on -race (see `make dash`) to flag
// unsynchronized access.
func TestScrapeWhileServingStress(t *testing.T) {
	s, reg, _ := newTestSampler(t, DefaultSLOs()...)
	srv := httptest.NewServer(s.DashHandler())
	defer srv.Close()

	const iters = 200
	var wg sync.WaitGroup
	start := make(chan struct{})

	// Writers: counters, gauges, histograms mutating mid-scrape.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		c := reg.Counter("pano_client_rebuffer_seconds_total", "w")
		g := reg.Gauge("pano_client_session_pspnr_db", "w")
		h := reg.Histogram("pano_client_tile_attempt_seconds", "w", []float64{0.1, 0.5, 1})
		for i := 0; i < iters; i++ {
			c.Add(0.01)
			g.Set(float64(30 + i%10))
			h.Observe(float64(i%7) / 10)
		}
	}()

	// The scraper: logical-time Steps as fast as they'll go.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < iters; i++ {
			s.Step(at(i))
		}
	}()

	// JSON probes and dashboard loads against the same state.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < iters/4; i++ {
				rec := httptest.NewRecorder()
				s.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("slo probe = %d", rec.Code)
					return
				}
				rec = httptest.NewRecorder()
				s.DashHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/dash", nil))
				if rec.Code != http.StatusOK {
					t.Errorf("dash probe = %d", rec.Code)
					return
				}
			}
		}()
	}

	// A live SSE subscriber churning connect/disconnect.
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < 5; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"?stream=1", nil)
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			cancel()
		}
	}()

	close(start)
	wg.Wait()

	// The sampler is still coherent after the storm.
	if got := len(s.States()); got != len(DefaultSLOs()) {
		t.Errorf("States() = %d entries after stress, want %d", got, len(DefaultSLOs()))
	}
}
