package telemetry

import (
	"strings"
	"testing"
	"time"

	"pano/internal/obs"
)

// rateSLO is the workhorse test objective: stall seconds against a 10%
// budget of wall time, tight windows, page at 6x burn.
func rateSLO() SLO {
	return SLO{
		Name: "stall", Kind: SLORate, Metric: "bad_seconds_total",
		Budget: 0.1, FastWindow: 10 * time.Second, SlowWindow: 20 * time.Second,
		WarnBurn: 2, PageBurn: 6, ClearAfter: 3,
	}
}

func newTestSampler(t *testing.T, slos ...SLO) (*Sampler, *obs.Registry, *obs.EventLog) {
	t.Helper()
	reg := obs.NewRegistry()
	evlog := obs.NewEventLog(nil, 0)
	s := New(Config{Obs: reg, SLOs: slos, Log: evlog, NoRuntime: true})
	if s == nil {
		t.Fatal("New returned nil for a valid config")
	}
	return s, reg, evlog
}

func TestBurnRateEscalationAndRecovery(t *testing.T) {
	s, reg, evlog := newTestSampler(t, rateSLO())
	bad := reg.Counter("bad_seconds_total", "stall seconds")

	sec := 0
	stepN := func(n int, badPerSec float64) {
		for i := 0; i < n; i++ {
			bad.Add(badPerSec)
			s.Step(at(sec))
			sec++
		}
	}

	// Clean warm-up: enough history for both windows, state stays ok.
	stepN(25, 0)
	if got := s.State("stall"); got != StateOK {
		t.Fatalf("after warm-up: state = %v, want ok", got)
	}

	// Full-rate stalling (ratio 1.0 = 10x budget): the fast window burns
	// past page quickly; the slow window follows as bad time accumulates.
	stepN(15, 1)
	if got := s.State("stall"); got != StatePage {
		t.Fatalf("under sustained burn: state = %v, want page", got)
	}
	st := s.States()[0]
	if st.BurnFast < 6 || st.BurnSlow < 6 {
		t.Errorf("paged with burns %.1f/%.1f, want both >= 6", st.BurnFast, st.BurnSlow)
	}

	// The transition surfaced as a counter, a gauge, and an event.
	if v := reg.GaugeValue("pano_slo_state", obs.L("slo", "stall")); v != float64(StatePage) {
		t.Errorf("pano_slo_state = %v, want %v", v, float64(StatePage))
	}
	if n := len(evlog.Find("slo_transition")); n == 0 {
		t.Errorf("no slo_transition events logged")
	}
	if v := reg.CounterValue("pano_slo_transitions_total", obs.L("slo", "stall"), obs.L("to", "page")); v < 1 {
		t.Errorf("pano_slo_transitions_total{to=page} = %v, want >= 1", v)
	}

	// Recovery: stall stops; the fast window drains first, then the state
	// steps down only after ClearAfter consecutive clean evaluations.
	stepN(40, 0)
	if got := s.State("stall"); got != StateOK {
		t.Fatalf("after recovery: state = %v, want ok", got)
	}
	if v := reg.GaugeValue("pano_slo_state", obs.L("slo", "stall")); v != 0 {
		t.Errorf("recovered pano_slo_state = %v, want 0", v)
	}
}

func TestYoungProcessBurnClampsToHistory(t *testing.T) {
	// A process a few seconds old that stalls 100% of the time must burn
	// at full rate: the wall-seconds denominator clamps to retained
	// history (min(window, uptime)), instead of diluting the ratio over
	// slow-window seconds the process never lived through.
	s, reg, _ := newTestSampler(t, rateSLO())
	bad := reg.Counter("bad_seconds_total", "stall seconds")
	for sec := 0; sec < 4; sec++ {
		bad.Add(1)
		s.Step(at(sec))
	}
	st := s.States()[0]
	// Ratio ~1.0 against a 0.1 budget = burn ~10 on BOTH windows, even
	// though only 3 of the slow window's 20 seconds exist yet.
	if st.BurnSlow < 6 || st.BurnFast < 6 {
		t.Errorf("young-process burns = %.2f/%.2f (fast/slow), want both >= 6", st.BurnFast, st.BurnSlow)
	}
	if got := s.State("stall"); got != StatePage {
		t.Errorf("young process under full stall: state = %v, want page", got)
	}
}

func TestFlapDampingHoldsStateThroughBlips(t *testing.T) {
	slo := rateSLO()
	slo.ClearAfter = 3
	s, reg, _ := newTestSampler(t, slo)
	bad := reg.Counter("bad_seconds_total", "stall seconds")

	sec := 0
	step := func(badPerSec float64) {
		bad.Add(badPerSec)
		s.Step(at(sec))
		sec++
	}
	for i := 0; i < 25; i++ {
		step(0)
	}
	for i := 0; i < 15; i++ {
		step(1)
	}
	if s.State("stall") != StatePage {
		t.Fatalf("setup: not paged")
	}
	before := s.States()[0].Transitions

	// A flapping source: one or two clean evaluations between dirty ones.
	// The clear streak never reaches ClearAfter, so the state must hold at
	// page with NO transitions, instead of oscillating page→ok→page.
	for i := 0; i < 12; i++ {
		if i%3 == 2 {
			step(2) // dirty again before the streak completes
		} else {
			step(0)
		}
		if got := s.State("stall"); got != StatePage {
			t.Fatalf("flap step %d: state = %v, want page held by hysteresis", i, got)
		}
	}
	if after := s.States()[0].Transitions; after != before {
		t.Errorf("transitions moved %d -> %d during flapping, want unchanged", before, after)
	}

	// A real recovery: the fast window holds the last blip for its full
	// 10s span (during which the state steps down only to warn), and once
	// it drains the remaining drop to ok needs ClearAfter clean evals.
	for i := 0; i < 16; i++ {
		step(0)
	}
	if got := s.State("stall"); got != StateOK {
		t.Errorf("after full drain + ClearAfter: state = %v, want ok", got)
	}
}

func TestQuantileSLO(t *testing.T) {
	slo := SLO{
		Name: "p99", Kind: SLOQuantile, Metric: "lat_seconds",
		Threshold: 0.5, Quantile: 0.99,
		FastWindow: 5 * time.Second, SlowWindow: 10 * time.Second,
		WarnBurn: 1, PageBurn: 2, ClearAfter: 2,
	}
	s, reg, _ := newTestSampler(t, slo)
	h := reg.Histogram("lat_seconds", "latency", []float64{0.1, 0.5, 1, 2})

	sec := 0
	step := func(fast, slow int) {
		for i := 0; i < fast; i++ {
			h.Observe(0.05)
		}
		for i := 0; i < slow; i++ {
			h.Observe(1.5)
		}
		s.Step(at(sec))
		sec++
	}
	for i := 0; i < 12; i++ {
		step(100, 0)
	}
	if got := s.State("p99"); got != StateOK {
		t.Fatalf("fast traffic: state = %v, want ok", got)
	}
	// Tail blowup: 5% of requests at 1.5s pushes p99 past 2x the 0.5s
	// ceiling in both windows.
	for i := 0; i < 12; i++ {
		step(95, 5)
	}
	if got := s.State("p99"); got != StatePage {
		st := s.States()[0]
		t.Fatalf("tail blowup: state = %v (burns %.2f/%.2f, value %.3f), want page",
			got, st.BurnFast, st.BurnSlow, st.Value)
	}
	if st := s.States()[0]; st.Value <= 0.5 {
		t.Errorf("status value = %v, want the estimated p99 > 0.5", st.Value)
	}
}

func TestFloorSLONoDataHoldsOK(t *testing.T) {
	slo := SLO{
		Name: "floor", Kind: SLOFloor, Metric: "pspnr_db",
		Threshold: 30, Budget: 0.1,
		FastWindow: 5 * time.Second, SlowWindow: 10 * time.Second,
		WarnBurn: 1, PageBurn: 2,
	}
	s, reg, _ := newTestSampler(t, slo)
	// The metric never appears: the SLO holds at ok and reports no data.
	for i := 0; i < 5; i++ {
		s.Step(at(i))
	}
	st := s.States()[0]
	if st.State != "ok" || st.HasData {
		t.Errorf("absent metric: status = %+v, want ok with has_data=false", st)
	}
	// Then it appears below the floor and the SLO reacts.
	g := reg.Gauge("pspnr_db", "quality")
	for i := 5; i < 20; i++ {
		g.Set(20)
		s.Step(at(i))
	}
	if got := s.State("floor"); got != StatePage {
		t.Errorf("sustained floor violation: state = %v, want page", got)
	}
}

func TestParseSLOs(t *testing.T) {
	if slos, err := ParseSLOs(""); err != nil || slos != nil {
		t.Errorf(`ParseSLOs("") = %v, %v; want nil, nil`, slos, err)
	}
	slos, err := ParseSLOs("default")
	if err != nil || len(slos) != len(DefaultSLOs()) {
		t.Fatalf(`ParseSLOs("default") = %d SLOs, %v`, len(slos), err)
	}

	slos, err = ParseSLOs("rebuffer<=0.02;edge_hit=off")
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]SLO{}
	for _, s := range slos {
		names[s.Name] = s
	}
	if _, ok := names["edge_hit"]; ok {
		t.Errorf("edge_hit=off left the SLO in the set")
	}
	if got := names["rebuffer"].Budget; got != 0.02 {
		t.Errorf("rebuffer budget = %v, want 0.02", got)
	}

	slos, err = ParseSLOs("pspnr_floor>=40, tile_p99<=0.3@30s/5m!2/6")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range slos {
		switch s.Name {
		case "pspnr_floor":
			if s.Threshold != 40 {
				t.Errorf("pspnr_floor threshold = %v, want 40", s.Threshold)
			}
		case "tile_p99":
			if s.Threshold != 0.3 || s.FastWindow != 30*time.Second ||
				s.SlowWindow != 5*time.Minute || s.WarnBurn != 2 || s.PageBurn != 6 {
				t.Errorf("tile_p99 = %+v, want 0.3 @30s/5m !2/6", s)
			}
		}
	}

	for _, bad := range []string{
		"bogus<=1",              // unknown SLO
		"pspnr_floor<=40",       // floors take >=
		"tile_p99>=0.3",         // ceilings take <=
		"rebuffer",              // no operator
		"rebuffer<=x",           // non-numeric bound
		"rebuffer<=0.05@5m/30s", // slow < fast
		"rebuffer<=0.05!6/2",    // page < warn
		"rebuffer=off;pspnr_floor=off;tile_p99=off;edge_hit=off;abort=off;failover_p99=off;breaker_open=off;hedge_rate=off", // nothing left
	} {
		if _, err := ParseSLOs(bad); err == nil {
			t.Errorf("ParseSLOs(%q) accepted, want error", bad)
		}
	}
}

func TestDefaultSLOsShape(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range DefaultSLOs() {
		if s.Name == "" || s.Metric == "" {
			t.Errorf("SLO missing name or metric: %+v", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate SLO name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Guards == "" {
			t.Errorf("SLO %s has no Guards annotation (paper-claim map)", s.Name)
		}
		for _, m := range s.metrics() {
			if !strings.HasPrefix(m, "pano_") {
				t.Errorf("SLO %s watches non-pano metric %q", s.Name, m)
			}
		}
	}
	if !seen["rebuffer"] || !seen["pspnr_floor"] || !seen["tile_p99"] || !seen["edge_hit"] || !seen["abort"] {
		t.Errorf("default set missing a required objective: %v", seen)
	}
}

func TestNilSamplerIsNoOp(t *testing.T) {
	var s *Sampler
	s.Start()
	s.Step(at(0))
	s.Stop()
	if s.States() != nil || s.Store() != nil || s.State("x") != StateOK || s.Interval() != 0 {
		t.Errorf("nil sampler leaked state")
	}
	if got := New(Config{}); got != nil {
		t.Errorf("New without a registry = %v, want nil", got)
	}
}

func TestStopIdempotentAndUnstarted(t *testing.T) {
	s, _, _ := newTestSampler(t, rateSLO())
	s.Stop() // never started: must not hang
	s.Stop() // and again

	s2, _, _ := newTestSampler(t, rateSLO())
	s2.Start()
	s2.Start() // idempotent
	s2.Stop()
	s2.Stop()
}
