package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"pano/internal/obs"
	"pano/internal/trace"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// GaugeAgg selects how a gauge family is merged across instances in
// the cluster rollup. Counters always sum and histograms always merge
// by bucket addition; gauges are the only type whose cluster meaning is
// ambiguous (capacity gauges sum, ratios average, alert states take
// the worst instance).
type GaugeAgg int

const (
	AggSum GaugeAgg = iota
	AggMax
	AggAvg
)

// defaultGaugeAgg carries the aggregation hints for the repo's own
// gauge families. Anything unlisted sums — the right default for
// capacity-like gauges (cache budgets, open origins, build_info
// instance counts).
func defaultGaugeAgg() map[string]GaugeAgg {
	return map[string]GaugeAgg{
		// Ratios and per-session quality levels: the fleet value is the
		// average instance, not the sum.
		"pano_edge_hit_ratio":          AggAvg,
		"pano_client_buffer_sec":       AggAvg,
		"pano_sim_buffer_sec":          AggAvg,
		"pano_client_session_mos":      AggAvg,
		"pano_sim_session_mos":         AggAvg,
		"pano_client_session_pspnr_db": AggAvg,
		"pano_sim_session_pspnr_db":    AggAvg,
		// Alert/health states: the fleet is as bad as its worst member.
		"pano_slo_state":                         AggMax,
		"pano_fleet_breaker_state":               AggMax,
		"pano_runtime_gc_pause_p99_seconds":      AggMax,
		"pano_runtime_sched_latency_p99_seconds": AggMax,
	}
}

// ScrapeTarget is one /metrics endpoint to federate.
type ScrapeTarget struct {
	// Instance labels every series scraped from this target.
	Instance string
	// URL is the target base ("http://host:port") or its /metrics URL.
	URL string
}

// ParseScrapeTargets parses the -scrape flag: a comma-separated list of
// "url" or "instance=url" entries. Without an explicit instance name
// the URL's host:port is used.
func ParseScrapeTargets(csv string) ([]ScrapeTarget, error) {
	var out []ScrapeTarget
	seen := map[string]bool{}
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		t := ScrapeTarget{URL: part}
		if eq := strings.Index(part, "="); eq > 0 && !strings.Contains(part[:eq], "/") && !strings.Contains(part[:eq], ":") {
			t.Instance, t.URL = part[:eq], part[eq+1:]
		}
		if !strings.Contains(t.URL, "://") {
			t.URL = "http://" + t.URL
		}
		u, err := url.Parse(t.URL)
		if err != nil || u.Host == "" {
			return nil, fmt.Errorf("telemetry: bad scrape target %q", part)
		}
		if t.Instance == "" {
			t.Instance = u.Host
		}
		if seen[t.Instance] {
			return nil, fmt.Errorf("telemetry: duplicate scrape instance %q", t.Instance)
		}
		seen[t.Instance] = true
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("telemetry: no scrape targets in %q", csv)
	}
	return out, nil
}

// ScraperConfig tunes a federation Scraper.
type ScraperConfig struct {
	// Targets are the endpoints to pull, in a fixed order (rollup
	// summation follows it, keeping merged floats deterministic).
	Targets []ScrapeTarget
	// Timeout bounds each target's scrape (default 2s).
	Timeout time.Duration
	// Interval is the expected scrape period; it only shapes the
	// dashboard's histogram quantile window (default 1s).
	Interval time.Duration
	// GaugeAgg overrides/extends the built-in per-family gauge hints.
	GaugeAgg map[string]GaugeAgg
	// HTTP is the client used for scrapes (default http.DefaultClient;
	// tests inject httptest clients here).
	HTTP *http.Client
	// Log receives scrape_failed events; nil disables.
	Log *obs.EventLog
	// Self, when set, is the scraping process's own registry: its series
	// join the per-instance view (labelled instance=SelfInstance) so the
	// federated /metrics also covers the federator. Self series never
	// enter the rollup — they are observer overhead, not cluster load.
	Self         *obs.Registry
	SelfInstance string
}

// targetState is one target's scrape bookkeeping. series always holds
// the last successful parse: a dead edge keeps reporting its final
// counter values (frozen, marked stale via pano_federation_target_up 0)
// instead of vanishing and zeroing cluster rates.
type targetState struct {
	target     ScrapeTarget
	metricsURL string
	tracesURL  string

	up       bool
	everUp   bool
	lastOK   time.Time
	lastErr  string
	scrapes  float64
	failures float64
	series   []obs.SnapshotSeries // last good, without instance label
}

// Scraper federates N /metrics endpoints: per-tick it pulls every
// target concurrently, relabels series with instance=, merges cluster
// rollups, and tracks staleness. Collect matches Config.Source, so a
// Sampler pointed at it evaluates the stock SLOs fleet-wide.
type Scraper struct {
	cfg    ScraperConfig
	client *http.Client
	agg    map[string]GaugeAgg

	mu      sync.Mutex
	targets []*targetState
	rollup  []obs.SnapshotSeries
	// unmergeable lists histogram families whose bucket layouts differ
	// across instances: they stay per-instance only.
	unmergeable map[string]bool
	collects    uint64

	// instStore keeps per-instance history for the cluster dashboard's
	// per-instance panels (the sampler's own store holds the rollup).
	instStore *Store
}

// NewScraper validates the target list and returns a Scraper.
func NewScraper(cfg ScraperConfig) (*Scraper, error) {
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("telemetry: scraper needs at least one target")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Self != nil && cfg.SelfInstance == "" {
		cfg.SelfInstance = "obsd"
	}
	agg := defaultGaugeAgg()
	for k, v := range cfg.GaugeAgg {
		agg[k] = v
	}
	client := cfg.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	s := &Scraper{
		cfg:         cfg,
		client:      client,
		agg:         agg,
		unmergeable: map[string]bool{},
		instStore:   NewStore(2 * dashPoints),
	}
	seen := map[string]bool{}
	for _, t := range cfg.Targets {
		if t.Instance == "" || t.URL == "" {
			return nil, fmt.Errorf("telemetry: scrape target needs instance and URL: %+v", t)
		}
		if seen[t.Instance] {
			return nil, fmt.Errorf("telemetry: duplicate scrape instance %q", t.Instance)
		}
		seen[t.Instance] = true
		base := strings.TrimSuffix(strings.TrimSuffix(t.URL, "/"), "/metrics")
		s.targets = append(s.targets, &targetState{
			target:     t,
			metricsURL: base + "/metrics",
			tracesURL:  base + "/debug/traces",
		})
	}
	return s, nil
}

// scrapeOne pulls and parses one target's /metrics.
func (s *Scraper) scrapeOne(ts *targetState) ([]obs.SnapshotSeries, error) {
	req, err := http.NewRequest(http.MethodGet, ts.metricsURL, nil)
	if err != nil {
		return nil, err
	}
	ctx, cancel := contextWithTimeout(s.cfg.Timeout)
	defer cancel()
	resp, err := s.client.Do(req.WithContext(ctx))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<10))
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return obs.ParsePrometheus(resp.Body)
}

// Collect performs one federation tick: scrape every target (concurrent,
// per-target timeout), refresh staleness, rebuild the rollup, and feed
// the per-instance view into the dashboard store. The returned series —
// cluster rollup plus pano_federation_* meta — match what Config.Source
// must produce, so the stock SLO engine sees exactly one series set per
// family and burn-rate math never double-counts an instance.
func (s *Scraper) Collect(now time.Time) []obs.SnapshotSeries {
	type result struct {
		series []obs.SnapshotSeries
		err    error
	}
	results := make([]result, len(s.targets))
	var wg sync.WaitGroup
	for i := range s.targets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			series, err := s.scrapeOne(s.targets[i])
			results[i] = result{series: series, err: err}
		}(i)
	}
	wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.collects++
	for i, ts := range s.targets {
		ts.scrapes++
		if results[i].err != nil {
			ts.failures++
			ts.up = false
			ts.lastErr = results[i].err.Error()
			if s.cfg.Log != nil {
				s.cfg.Log.Logger().Warn("scrape_failed",
					"instance", ts.target.Instance, "url", ts.metricsURL, "err", ts.lastErr)
			}
			continue
		}
		ts.up = true
		ts.everUp = true
		ts.lastOK = now
		ts.lastErr = ""
		ts.series = results[i].series
	}
	s.rollup = s.buildRollupLocked()
	meta := s.metaSeriesLocked()
	s.instStore.Observe(now, s.instanceSeriesLocked())
	out := make([]obs.SnapshotSeries, 0, len(s.rollup)+len(meta))
	out = append(out, s.rollup...)
	out = append(out, meta...)
	return out
}

// rollupKey identifies one merged series: family plus labels minus
// instance.
type rollupAccum struct {
	series obs.SnapshotSeries
	n      float64 // instances contributing (for AggAvg)
	bad    bool    // histogram layout conflict
}

// buildRollupLocked merges every target's last-good series. Iteration
// is strictly target-config order then series order, so float
// accumulation is reproducible and — for counters — exactly equals the
// left-to-right sum a verifier computes from the same per-process
// scrapes.
func (s *Scraper) buildRollupLocked() []obs.SnapshotSeries {
	accum := map[string]*rollupAccum{}
	var order []string
	badFams := map[string]bool{}
	for _, ts := range s.targets {
		for _, ss := range ts.series {
			key := ss.Name + "\xff" + ss.Key
			a := accum[key]
			if a == nil {
				cp := ss
				cp.Labels = append([]obs.Label(nil), ss.Labels...)
				cp.Uppers = append([]float64(nil), ss.Uppers...)
				cp.Counts = append([]uint64(nil), ss.Counts...)
				accum[key] = &rollupAccum{series: cp, n: 1}
				order = append(order, key)
				continue
			}
			a.n++
			switch ss.Type {
			case "histogram":
				if !sameUppers(a.series.Uppers, ss.Uppers) {
					badFams[ss.Name] = true
					a.bad = true
					continue
				}
				for i := range ss.Counts {
					a.series.Counts[i] += ss.Counts[i]
				}
				a.series.Count += ss.Count
				a.series.Sum += ss.Sum
			case "counter":
				a.series.Value += ss.Value
			default: // gauge
				switch s.agg[ss.Name] {
				case AggMax:
					if ss.Value > a.series.Value {
						a.series.Value = ss.Value
					}
				case AggAvg:
					a.series.Value += ss.Value // divided by n below
				default:
					a.series.Value += ss.Value
				}
			}
		}
	}
	s.unmergeable = badFams
	var out []obs.SnapshotSeries
	for _, key := range order {
		a := accum[key]
		if badFams[a.series.Name] {
			continue // layout conflict: family stays per-instance only
		}
		if a.series.Type != "histogram" && a.series.Type != "counter" &&
			s.agg[a.series.Name] == AggAvg && a.n > 0 {
			a.series.Value /= a.n
		}
		out = append(out, a.series)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// metaSeriesLocked builds the pano_federation_* series describing the
// federation itself.
func (s *Scraper) metaSeriesLocked() []obs.SnapshotSeries {
	mk := func(name, help, typ string, value float64, labels ...obs.Label) obs.SnapshotSeries {
		return obs.SnapshotSeries{
			Name: name, Help: help, Type: typ,
			Labels: labels, Key: obs.SeriesKey(labels...), Value: value,
		}
	}
	var out []obs.SnapshotSeries
	stale := 0
	for _, ts := range s.targets {
		up := 0.0
		if ts.up {
			up = 1
		} else {
			stale++
		}
		inst := obs.L("instance", ts.target.Instance)
		out = append(out,
			mk("pano_federation_target_up",
				"1 when the instance's last scrape succeeded; 0 marks its series stale (frozen at last-good values)",
				"gauge", up, inst),
			mk("pano_federation_scrapes_total",
				"scrape attempts per federated instance", "counter", ts.scrapes, inst),
			mk("pano_federation_scrape_errors_total",
				"failed scrapes per federated instance", "counter", ts.failures, inst),
		)
	}
	out = append(out,
		mk("pano_federation_targets", "configured federation targets", "gauge", float64(len(s.targets))),
		mk("pano_federation_stale_targets",
			"targets whose latest scrape failed (their series are frozen, not zeroed)",
			"gauge", float64(stale)),
		mk("pano_federation_unmergeable_families",
			"histogram families excluded from the rollup because instances disagree on bucket layout",
			"gauge", float64(len(s.unmergeable))),
	)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// instanceSeriesLocked returns every target's last-good series labelled
// with instance=, plus the Self registry's own series when configured.
func (s *Scraper) instanceSeriesLocked() []obs.SnapshotSeries {
	var out []obs.SnapshotSeries
	for _, ts := range s.targets {
		out = append(out, relabelInstance(ts.series, ts.target.Instance)...)
	}
	if s.cfg.Self != nil {
		out = append(out, relabelInstance(s.cfg.Self.Snapshot(), s.cfg.SelfInstance)...)
	}
	return out
}

// relabelInstance stamps instance= onto each series (replacing any
// existing instance label) and recomputes the series key.
func relabelInstance(series []obs.SnapshotSeries, instance string) []obs.SnapshotSeries {
	out := make([]obs.SnapshotSeries, 0, len(series))
	for _, ss := range series {
		labels := make([]obs.Label, 0, len(ss.Labels)+1)
		for _, l := range ss.Labels {
			if l.Key != "instance" {
				labels = append(labels, l)
			}
		}
		labels = append(labels, obs.L("instance", instance))
		ss.Labels = labels
		ss.Key = obs.SeriesKey(labels...)
		out = append(out, ss)
	}
	return out
}

func sameUppers(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RollupSeries returns the latest cluster rollup (after at least one
// Collect).
func (s *Scraper) RollupSeries() []obs.SnapshotSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]obs.SnapshotSeries(nil), s.rollup...)
}

// InstanceSeries returns the per-instance view: every target's
// last-good series labelled instance=, plus the federator's own.
func (s *Scraper) InstanceSeries() []obs.SnapshotSeries {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.instanceSeriesLocked()
}

// TargetStatus reports one target's federation state.
type TargetStatus struct {
	Instance string    `json:"instance"`
	URL      string    `json:"url"`
	Up       bool      `json:"up"`
	EverUp   bool      `json:"ever_up"`
	LastOK   time.Time `json:"last_ok"`
	LastErr  string    `json:"last_err,omitempty"`
	Scrapes  float64   `json:"scrapes"`
	Failures float64   `json:"failures"`
}

// Targets reports every target's current state, in config order.
func (s *Scraper) Targets() []TargetStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TargetStatus, len(s.targets))
	for i, ts := range s.targets {
		out[i] = TargetStatus{
			Instance: ts.target.Instance, URL: ts.metricsURL,
			Up: ts.up, EverUp: ts.everUp, LastOK: ts.lastOK, LastErr: ts.lastErr,
			Scrapes: ts.scrapes, Failures: ts.failures,
		}
	}
	return out
}

// MetricsHandler serves the federated exposition: the cluster rollup
// (no instance label, pano_federation_* meta included via the meta
// series) followed by every per-instance series. Mount at /metrics on
// pano-obsd.
func (s *Scraper) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !obs.AllowGetHead(w, r) {
			return
		}
		s.mu.Lock()
		series := make([]obs.SnapshotSeries, 0, 2*len(s.rollup))
		series = append(series, s.rollup...)
		series = append(series, s.metaSeriesLocked()...)
		series = append(series, s.instanceSeriesLocked()...)
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		_ = obs.WritePrometheusSeries(w, series)
	})
}

// DashPanels renders per-instance dashboard panels from the scraper's
// windowed store; pano-obsd wires it as Config.DashExtra so the
// cluster dashboard shows rollup and per-instance series side by side.
// Matches the per-process dashboard's self-metric suppression.
func (s *Scraper) DashPanels(now time.Time) []DashSeries {
	return storePanels(s.instStore, now, s.cfg.Interval*dashPoints, func(name string) bool {
		return strings.HasPrefix(name, "pano_telemetry_")
	})
}

// PullTraces fetches every live target's /debug/traces and parses the
// fragments for assembly. Targets without a tracer (404/503) or
// currently unreachable are skipped — trace assembly is best-effort by
// design, unlike metrics staleness.
func (s *Scraper) PullTraces() []trace.ProcessTraces {
	s.mu.Lock()
	targets := append([]*targetState(nil), s.targets...)
	s.mu.Unlock()
	var out []trace.ProcessTraces
	for _, ts := range targets {
		req, err := http.NewRequest(http.MethodGet, ts.tracesURL, nil)
		if err != nil {
			continue
		}
		ctx, cancel := contextWithTimeout(s.cfg.Timeout)
		resp, err := s.client.Do(req.WithContext(ctx))
		if err != nil {
			cancel()
			continue
		}
		body, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		cancel()
		if rerr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		tds, err := trace.ParseChromeTrace(body)
		if err != nil || len(tds) == 0 {
			continue
		}
		out = append(out, trace.ProcessTraces{Process: ts.target.Instance, Traces: tds})
	}
	return out
}

// AssembleTraces pulls every target's spans and joins them on trace ID
// into cross-process traces.
func (s *Scraper) AssembleTraces() []*trace.TraceData {
	return trace.AssembleTraces(s.PullTraces())
}

// TraceHandler serves assembled cross-process traces as Chrome
// trace-event JSON (mount at /debug/traces on pano-obsd). Assembly is
// on demand: each GET re-pulls every target, so the view is always
// current. ?trace=<32-hex id> selects one trace.
func (s *Scraper) TraceHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !obs.AllowGetHead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodHead {
			return
		}
		assembled := s.AssembleTraces()
		if q := r.URL.Query().Get("trace"); q != "" {
			var one []*trace.TraceData
			for _, td := range assembled {
				if td.ID.String() == q {
					one = append(one, td)
				}
			}
			if len(one) == 0 {
				http.NotFound(w, r)
				return
			}
			assembled = one
		}
		_ = trace.WriteAssembledChromeTrace(w, assembled...)
	})
}
