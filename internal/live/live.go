// Package live implements the just-in-time publishing pipeline for live
// 360° streaming: chunks are captured from an internal/scene feed,
// JND-tiled and encoded per chunk (provider.ChunkAt — the same kernels
// as VOD preprocessing, running on internal/parallel's bounded worker
// pool), and published to an internal/store directory under a per-chunk
// deadline. The paper's quality-perception model (PAPER.md §5–§7) is
// unchanged; what live adds is the regime where the manifest has a
// moving edge and the encoder cannot be late.
//
// The pipeline is three bounded stages connected by channels:
//
//	capture  — paces chunk arrival (CaptureInterval per chunk; the
//	           chunk's publish deadline starts here)
//	encode   — EncodeWorkers concurrent provider.ChunkAt calls; when
//	           the EWMA encode-time forecast says the standard config
//	           would miss the deadline, the chunk drops to the degraded
//	           rung (uniform grid, single sampled frame) instead of
//	           stalling the feed
//	publish  — single goroutine, strictly in chunk order: tile blobs
//	           first, then the manifest blob, then the catalog head, so
//	           no reader can ever observe a manifest naming unwritten
//	           bytes. Late chunks still publish (degraded or not) and
//	           count in pano_live_deadline_misses_total.
//
// Each publish appends a chunk to the manifest, bumps its Seq (rotating
// the manifest ETag, which is a content hash), and — when WindowChunks
// is set — retires the oldest chunk: FirstChunk advances, the retired
// tiles' refs drop, and store GC reclaims them past the retention
// horizon.
package live

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"pano/internal/client"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/store"
	"pano/internal/tiling"
	"pano/internal/trace"
	"pano/internal/viewport"
)

// Config tunes a Pipeline.
type Config struct {
	// Video is the scene feed chunks are captured from.
	Video *scene.Video
	// History supplies viewpoint traces for JND tiling (may be empty).
	History []*viewport.Trace
	// Encode is the standard per-chunk preprocessing config (zero value
	// = provider defaults).
	Encode provider.Config
	// Deadline is the per-chunk publish budget measured from capture;
	// 0 disables deadline tracking (nothing ever counts as late).
	Deadline time.Duration
	// Degraded overrides the fallback config used when the encode-time
	// forecast would miss Deadline. nil selects DegradedConfig(Encode).
	Degraded *provider.Config
	// CaptureInterval paces chunk capture. 0 means real time: one chunk
	// duration of wall clock per chunk. Benches compress it.
	CaptureInterval time.Duration
	// WindowChunks bounds the availability window (0 = unbounded: no
	// chunk is ever retired).
	WindowChunks int
	// MaxChunks stops the feed early (0 = the whole video).
	MaxChunks int
	// EncodeWorkers bounds concurrent chunk encodes (default 2; the
	// publish stage reorders, so >1 never reorders the feed).
	EncodeWorkers int
	// Store receives published blobs and the catalog head. Required.
	Store *store.Store
	// Retention is the GC horizon for retired blobs (default 30 s);
	// it must exceed the reading origins' catalog refresh lag.
	Retention time.Duration
	// Clock paces capture and measures deadlines (nil = wall clock).
	Clock client.Clock
	// Obs, Log, and Tracer attach metrics, structured events, and
	// spans; nil disables each at zero cost.
	Obs    *obs.Registry
	Log    *obs.EventLog
	Tracer *trace.Tracer
}

// DegradedConfig derives the cheap ladder rung from a standard encode
// config: a uniform grid (no per-chunk efficiency clustering) and a
// single sampled frame per chunk — the minimum work that still yields a
// valid, servable chunk.
func DegradedConfig(base provider.Config) provider.Config {
	d := base
	d.Mode = provider.ModeUniform
	d.Grid = tiling.Grid6x12
	d.FrameStride = 1 << 20 // one sample per chunk
	return d
}

// Report summarizes a finished feed.
type Report struct {
	// Chunks published (always equals the feed length on success: late
	// chunks publish too, they just count as misses).
	Chunks int
	// DeadlineMisses counts chunks published after their deadline.
	DeadlineMisses int
	// Degraded counts chunks encoded at the degraded rung.
	Degraded int
	// Expired counts chunks retired from the availability window.
	Expired int
	// MeanPublishLatency and MaxPublishLatency measure capture→publish.
	MeanPublishLatency time.Duration
	MaxPublishLatency  time.Duration
}

// OnTimeFrac returns the fraction of chunks published within deadline.
func (r *Report) OnTimeFrac() float64 {
	if r.Chunks == 0 {
		return 0
	}
	return float64(r.Chunks-r.DeadlineMisses) / float64(r.Chunks)
}

// Pipeline is one live feed. Create with New, drive with Run.
type Pipeline struct {
	cfg       Config
	clk       client.Clock
	numChunks int

	pub publisher
}

// New validates cfg and prepares a pipeline. The initial (empty, live)
// manifest is not published until Run starts.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Video == nil {
		return nil, fmt.Errorf("live: Video is required")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("live: Store is required")
	}
	if err := cfg.Video.Validate(); err != nil {
		return nil, fmt.Errorf("live: %w", err)
	}
	if cfg.EncodeWorkers <= 0 {
		cfg.EncodeWorkers = 2
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 30 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = client.RealClock{}
	}
	chunkSec := cfg.Encode.ChunkSec
	if chunkSec == 0 {
		chunkSec = provider.DefaultConfig().ChunkSec
	}
	if cfg.CaptureInterval <= 0 {
		cfg.CaptureInterval = time.Duration(chunkSec * float64(time.Second))
	}
	n := int(float64(cfg.Video.DurationSec) / chunkSec)
	if n == 0 {
		return nil, fmt.Errorf("live: video shorter than one chunk")
	}
	if cfg.MaxChunks > 0 && cfg.MaxChunks < n {
		n = cfg.MaxChunks
	}
	p := &Pipeline{cfg: cfg, clk: cfg.Clock, numChunks: n}
	p.pub.init(p, chunkSec)
	return p, nil
}

// Edge returns the published live edge (chunks visible to clients).
func (p *Pipeline) Edge() int { return p.pub.edge() }

// Seq returns the current publish sequence number.
func (p *Pipeline) Seq() int64 { return p.pub.seqNum() }

// Manifest returns a snapshot of the currently published manifest
// (decoded fresh from the published bytes; callers own the copy). nil
// before the first publish.
func (p *Pipeline) Manifest() *manifest.Video {
	body := p.pub.manifestJSON()
	if body == nil {
		return nil
	}
	m, err := manifest.Decode(bytes.NewReader(body))
	if err != nil {
		return nil
	}
	return m
}

// capturedChunk is one unit of work flowing capture → encode.
type capturedChunk struct {
	k          int
	capturedAt time.Time
}

// encodedChunk flows encode → publish.
type encodedChunk struct {
	k          int
	chunk      manifest.Chunk
	degraded   bool
	capturedAt time.Time
	encodeTime time.Duration
	err        error
}

// Run drives the feed to completion (or ctx cancellation): an initial
// empty live manifest is published immediately so origins and clients
// have a head to poll, then every chunk flows capture → encode →
// publish. The final chunk's publish clears manifest.Live — the
// end-of-stream signal.
func (p *Pipeline) Run(ctx context.Context) (*Report, error) {
	ctx, span := p.cfg.Tracer.Start(ctx, "live.feed",
		trace.A("component", "live"), trace.A("chunks", p.numChunks))
	defer span.End()
	if err := p.pub.publishHead(); err != nil {
		span.SetError("publish")
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	jobs := make(chan capturedChunk, p.cfg.EncodeWorkers)
	encoded := make(chan encodedChunk, p.cfg.EncodeWorkers)

	// Capture stage: the feed's metronome.
	go func() {
		defer close(jobs)
		start := p.clk.Now()
		for k := 0; k < p.numChunks; k++ {
			target := start.Add(time.Duration(k) * p.cfg.CaptureInterval)
			if d := target.Sub(p.clk.Now()); d > 0 {
				if p.clk.Sleep(ctx, d) != nil {
					return
				}
			}
			select {
			case jobs <- capturedChunk{k: k, capturedAt: p.clk.Now()}:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Encode stage.
	var ewma encodeEWMA
	done := make(chan struct{})
	for w := 0; w < p.cfg.EncodeWorkers; w++ {
		go func() {
			for job := range jobs {
				select {
				case encoded <- p.encode(ctx, job, &ewma):
				case <-ctx.Done():
				}
			}
			done <- struct{}{}
		}()
	}
	go func() {
		for w := 0; w < p.cfg.EncodeWorkers; w++ {
			<-done
		}
		close(encoded)
	}()

	// Publish stage: single goroutine, strict chunk order via a reorder
	// buffer (worker counts must never reorder the feed).
	pending := make(map[int]encodedChunk)
	next := 0
	for ec := range encoded {
		if ec.err != nil {
			cancel()
			span.SetError("encode")
			return nil, fmt.Errorf("live: chunk %d: %w", ec.k, ec.err)
		}
		pending[ec.k] = ec
		for {
			ready, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if err := p.pub.publish(ctx, ready, next == p.numChunks-1); err != nil {
				cancel()
				span.SetError("publish")
				return nil, err
			}
			next++
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if next != p.numChunks {
		return nil, fmt.Errorf("live: feed stopped at chunk %d of %d", next, p.numChunks)
	}
	rep := p.pub.report()
	span.Annotate("deadline_misses", rep.DeadlineMisses)
	span.Annotate("degraded", rep.Degraded)
	return rep, nil
}

// encodeEWMA is a concurrency-safe exponentially weighted moving
// average of full-rung encode times — the forecast behind the degrade
// decision. Degraded encodes don't feed it (they would drag the
// forecast down and flap the rung).
type encodeEWMA struct {
	mu  sync.Mutex
	avg time.Duration
}

func (e *encodeEWMA) observe(d time.Duration) {
	e.mu.Lock()
	if e.avg == 0 {
		e.avg = d
	} else {
		e.avg = (e.avg*7 + d*3) / 10
	}
	e.mu.Unlock()
}

func (e *encodeEWMA) get() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.avg
}

// encode runs one chunk through provider.ChunkAt, dropping to the
// degraded rung when the forecast says the standard config would miss
// the deadline (or the deadline has already passed at dequeue).
func (p *Pipeline) encode(ctx context.Context, job capturedChunk, ewma *encodeEWMA) encodedChunk {
	_, sp := p.cfg.Tracer.Start(ctx, "live.encode",
		trace.A("component", "live"), trace.A("chunk", job.k))
	defer sp.End()
	cfg := p.cfg.Encode
	degraded := false
	if p.cfg.Deadline > 0 {
		deadline := job.capturedAt.Add(p.cfg.Deadline)
		forecast := ewma.get()
		if !p.clk.Now().Add(forecast).Before(deadline) {
			degraded = true
			if p.cfg.Degraded != nil {
				cfg = *p.cfg.Degraded
			} else {
				cfg = DegradedConfig(cfg)
			}
		}
	}
	t0 := p.clk.Now()
	ch, err := provider.ChunkAt(p.cfg.Video, p.cfg.History, cfg, job.k)
	dur := p.clk.Since(t0)
	if err == nil && !degraded {
		ewma.observe(dur)
	}
	sp.Annotate("degraded", degraded)
	sp.Annotate("encode_sec", dur.Seconds())
	if err != nil {
		sp.SetError("encode")
	}
	return encodedChunk{
		k: job.k, chunk: ch, degraded: degraded,
		capturedAt: job.capturedAt, encodeTime: dur, err: err,
	}
}
