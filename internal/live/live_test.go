package live_test

import (
	"context"
	"testing"
	"time"

	"pano/internal/live"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/store"
	"pano/internal/viewport"
)

func tinyFeed(t *testing.T) (*scene.Video, []*viewport.Trace) {
	t.Helper()
	opts := scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 4}
	v := scene.Generate(scene.Sports, 7, opts)
	trs := []*viewport.Trace{viewport.Synthesize(v, 8, viewport.DefaultSynthesizeOpts())}
	return v, trs
}

func runFeed(t *testing.T, cfg live.Config) (*live.Pipeline, *live.Report) {
	t.Helper()
	p, err := live.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return p, rep
}

func TestPipelinePublishesWholeFeed(t *testing.T) {
	v, trs := tinyFeed(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, rep := runFeed(t, live.Config{
		Video: v, History: trs, Store: s,
		CaptureInterval: time.Millisecond, Deadline: time.Minute,
	})
	chunkSec := provider.DefaultConfig().ChunkSec
	wantChunks := int(float64(v.DurationSec) / chunkSec)
	if rep.Chunks != wantChunks {
		t.Fatalf("published %d chunks, want %d", rep.Chunks, wantChunks)
	}
	if rep.DeadlineMisses != 0 {
		t.Fatalf("deadline misses %d with a one-minute budget", rep.DeadlineMisses)
	}
	if got := rep.OnTimeFrac(); got != 1 {
		t.Fatalf("OnTimeFrac = %v, want 1", got)
	}
	m := p.Manifest()
	if m == nil {
		t.Fatal("no manifest published")
	}
	if m.Live {
		t.Fatal("final manifest still live; end-of-stream not signalled")
	}
	if m.NumChunks() != wantChunks {
		t.Fatalf("manifest has %d chunks, want %d", m.NumChunks(), wantChunks)
	}
	if err := m.Validate(); err != nil {
		t.Fatalf("published manifest invalid: %v", err)
	}
	// Head + one per chunk.
	if want := int64(wantChunks + 1); p.Seq() != want {
		t.Fatalf("Seq = %d, want %d", p.Seq(), want)
	}
	// Everything the manifest names resolves through a reader backend —
	// order and completeness of the publish protocol.
	b, err := store.NewBackend(s)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < m.NumChunks(); k++ {
		for ti := range m.Chunks[k].Tiles {
			if _, err := b.TileData(k, ti, 0); err != nil {
				t.Fatalf("chunk %d tile %d unresolvable: %v", k, ti, err)
			}
		}
	}
}

func TestPipelineEdgeIsMonotonic(t *testing.T) {
	v, trs := tinyFeed(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, err := live.New(live.Config{
		Video: v, History: trs, Store: s, CaptureInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := p.Run(context.Background())
		done <- err
	}()
	lastEdge, lastSeq := 0, int64(0)
	for {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if p.Edge() == 0 {
				t.Fatal("feed finished with empty edge")
			}
			return
		default:
		}
		e, q := p.Edge(), p.Seq()
		if e < lastEdge || q < lastSeq {
			t.Fatalf("edge/seq went backwards: %d<%d || %d<%d", e, lastEdge, q, lastSeq)
		}
		lastEdge, lastSeq = e, q
		time.Sleep(200 * time.Microsecond)
	}
}

// TestTightDeadlineDegrades: an impossible deadline forces every chunk
// onto the degraded rung and counts every publish as a miss — the feed
// still completes (late chunks publish, they never stall the edge).
func TestTightDeadlineDegrades(t *testing.T) {
	v, trs := tinyFeed(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, rep := runFeed(t, live.Config{
		Video: v, History: trs, Store: s,
		CaptureInterval: time.Millisecond, Deadline: time.Nanosecond,
	})
	if rep.Chunks == 0 {
		t.Fatal("no chunks published")
	}
	if rep.DeadlineMisses != rep.Chunks {
		t.Fatalf("misses %d, want every one of %d chunks", rep.DeadlineMisses, rep.Chunks)
	}
	if rep.Degraded != rep.Chunks {
		t.Fatalf("degraded %d, want every one of %d chunks", rep.Degraded, rep.Chunks)
	}
}

func TestWindowRetirementAndGone(t *testing.T) {
	v, trs := tinyFeed(t)
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	p, rep := runFeed(t, live.Config{
		Video: v, History: trs, Store: s,
		CaptureInterval: time.Millisecond, WindowChunks: 2,
	})
	m := p.Manifest()
	n := m.NumChunks()
	if want := n - 2; rep.Expired != want {
		t.Fatalf("expired %d chunks, want %d", rep.Expired, want)
	}
	if m.FirstChunk != n-2 {
		t.Fatalf("FirstChunk = %d, want %d", m.FirstChunk, n-2)
	}
	if m.ChunkAvailable(0) || !m.ChunkAvailable(n-1) {
		t.Fatal("availability window wrong")
	}
	b, err := store.NewBackend(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TileStat(0, 0, 0); err != server.ErrObjectGone {
		t.Fatalf("retired chunk = %v, want ErrObjectGone", err)
	}
	if _, err := b.TileData(n-1, 0, 0); err != nil {
		t.Fatalf("in-window chunk: %v", err)
	}
	// Retired blobs are reclaimable once the retention horizon passes.
	removed, _ := s.GC(0)
	if removed == 0 {
		t.Fatal("GC(0) reclaimed nothing after retirement")
	}
	// The window survivors are still fully intact after GC.
	for k := n - 2; k < n; k++ {
		if _, err := b.TileData(k, 0, 0); err != nil {
			t.Fatalf("GC broke in-window chunk %d: %v", k, err)
		}
	}
}

// TestDegradedConfigStillValid: the cheap rung produces chunks whose
// manifests validate (the degrade decision must never publish garbage).
func TestDegradedConfigStillValid(t *testing.T) {
	v, trs := tinyFeed(t)
	cfg := live.DegradedConfig(provider.DefaultConfig())
	ch, err := provider.ChunkAt(v, trs, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Tiles) == 0 {
		t.Fatal("degraded chunk has no tiles")
	}
}
