package live_test

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"pano/internal/client"
	"pano/internal/live"
	"pano/internal/server"
	"pano/internal/store"
)

// waitBackend retries NewBackend until the pipeline has published its
// head (the catalog appears asynchronously).
func waitBackend(t *testing.T, s *store.Store) *store.Backend {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		b, err := store.NewBackend(s)
		if err == nil {
			return b
		}
		if time.Now().After(deadline) {
			t.Fatalf("catalog never appeared: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveEndToEndHTTP runs the full path concurrently: a JIT pipeline
// publishing into a store, two stateless origins serving it over HTTP,
// and a real client streaming at the live edge against one of them. The
// session must follow the moving edge to the end with zero aborts, and
// the two origins must answer byte-identically afterwards.
func TestLiveEndToEndHTTP(t *testing.T) {
	v, trs := tinyFeed(t)
	dir := t.TempDir()
	pubStore, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := live.New(live.Config{
		Video: v, History: trs, Store: pubStore,
		CaptureInterval: 5 * time.Millisecond, Deadline: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedDone := make(chan error, 1)
	go func() {
		_, err := pipe.Run(context.Background())
		feedDone <- err
	}()

	origin := func() *httptest.Server {
		st, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv, err := server.NewBackend(waitBackend(t, st))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		return ts
	}
	ts1, ts2 := origin(), origin()

	c := client.New(ts1.URL)
	res, err := c.Stream(context.Background(), trs[0], client.StreamConfig{
		Live: client.LivePolicy{PollInterval: 2 * time.Millisecond, EdgeTimeout: 5 * time.Second},
	})
	if err != nil {
		t.Fatalf("live session aborted: %v", err)
	}
	if err := <-feedDone; err != nil {
		t.Fatalf("feed failed: %v", err)
	}
	final := pipe.Manifest()
	if len(res.Chunks) == 0 {
		t.Fatal("session streamed nothing")
	}
	if last := res.Chunks[len(res.Chunks)-1].Chunk; last != final.NumChunks()-1 {
		t.Fatalf("session ended at chunk %d, feed edge %d", last, final.NumChunks())
	}
	if res.Manifest.Live {
		t.Fatal("session never saw the end-of-stream manifest")
	}

	// Stateless origins: identical bytes and validators from both.
	get := func(ts *httptest.Server, path string) (string, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("ETag"), body
	}
	e1, b1 := get(ts1, "/manifest.json")
	e2, b2 := get(ts2, "/manifest.json")
	if e1 != e2 || !bytes.Equal(b1, b2) {
		t.Fatal("origins disagree on the manifest")
	}
	for k := 0; k < final.NumChunks(); k++ {
		path := server.TilePath(k, 0, 1)
		te1, tb1 := get(ts1, path)
		te2, tb2 := get(ts2, path)
		if te1 != te2 || !bytes.Equal(tb1, tb2) {
			t.Fatalf("origins disagree on %s", path)
		}
	}
}

// TestLiveHTTPSemantics pins the wire behaviour of a store origin
// mid-feed: 404 for unpublished, 410 for retired, 304 on revalidation,
// and a clamped manifest max-age while live.
func TestLiveHTTPSemantics(t *testing.T) {
	v, trs := tinyFeed(t)
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, rep := runFeed(t, live.Config{
		Video: v, History: trs, Store: s,
		CaptureInterval: time.Millisecond, WindowChunks: 2,
		// Long retention: retired chunks leave the catalog but their
		// blobs survive, which is exactly the 410 regime.
		Retention: time.Hour,
	})
	if rep.Expired == 0 {
		t.Fatal("test needs a slid window")
	}
	srv, err := server.NewBackend(waitBackend(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	status := func(path string, hdr http.Header) (int, http.Header) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		for k, vs := range hdr {
			req.Header[k] = vs
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header
	}

	final := 0
	{
		resp, err := http.Get(ts.URL + "/manifest.json")
		if err != nil {
			t.Fatal(err)
		}
		etag := resp.Header.Get("ETag")
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		// Post-feed the manifest is VOD again: full max-age.
		if cc := resp.Header.Get("Cache-Control"); cc != "max-age=60" {
			t.Fatalf("final manifest Cache-Control = %q, want max-age=60", cc)
		}
		if code, _ := status("/manifest.json", http.Header{"If-None-Match": {etag}}); code != http.StatusNotModified {
			t.Fatalf("manifest revalidation = %d, want 304", code)
		}
		m, err := client.New(ts.URL).FetchManifest(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		final = m.NumChunks()
	}

	if code, _ := status(server.TilePath(0, 0, 0), nil); code != http.StatusGone {
		t.Fatalf("retired tile = %d, want 410", code)
	}
	if code, _ := status(server.TilePath(final+3, 0, 0), nil); code != http.StatusNotFound {
		t.Fatalf("unpublished tile = %d, want 404", code)
	}
	inWindow := server.TilePath(final-1, 0, 0)
	code, hdr := status(inWindow, nil)
	if code != http.StatusOK {
		t.Fatalf("in-window tile = %d, want 200", code)
	}
	if code, _ := status(inWindow, http.Header{"If-None-Match": {hdr.Get("ETag")}}); code != http.StatusNotModified {
		t.Fatalf("tile revalidation = %d, want 304", code)
	}
}

// TestLiveManifestMaxAgeClamped: while the feed is live the manifest's
// freshness lifetime is clamped below the VOD default so edge caches
// keep up with the moving edge.
func TestLiveManifestMaxAgeClamped(t *testing.T) {
	v, trs := tinyFeed(t)
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := live.New(live.Config{
		Video: v, History: trs, Store: s, CaptureInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	feedDone := make(chan error, 1)
	go func() {
		_, err := pipe.Run(context.Background())
		feedDone <- err
	}()
	srv, err := server.NewBackend(waitBackend(t, s))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	// ChunkSec is 1s → live max-age is 500ms, rendered as max-age=0:
	// anything but the VOD 60 proves the clamp; 0 pins the exact value.
	if cc := resp.Header.Get("Cache-Control"); cc != "max-age=0" {
		t.Fatalf("live manifest Cache-Control = %q, want max-age=0", cc)
	}
	if err := <-feedDone; err != nil {
		t.Fatal(err)
	}
}
