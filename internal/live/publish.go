package live

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/server"
	"pano/internal/store"
	"pano/internal/trace"
)

// publisher owns the feed's published state: the growing manifest, the
// catalog's tile map, and the per-chunk blob lists needed to retire a
// chunk. All mutation happens on the pipeline's single publish
// goroutine; the mutex only guards the read-side accessors.
type publisher struct {
	p *Pipeline

	mu      sync.Mutex
	man     manifest.Video
	manJSON []byte
	rep     Report
	latSum  time.Duration

	manDigest string
	tiles     map[string]store.TileRef
	// chunkBlobs holds, per retired-able chunk index, the (path, digest)
	// pairs to drop when the availability window slides past it.
	chunkBlobs map[int][]blobRef
}

type blobRef struct {
	path   string
	digest string
}

func (pb *publisher) init(p *Pipeline, chunkSec float64) {
	pb.p = p
	v := p.cfg.Video
	pb.man = manifest.Video{
		Name:         v.Name,
		Genre:        v.Genre.String(),
		W:            v.W,
		H:            v.H,
		FPS:          v.FPS,
		ChunkSec:     chunkSec,
		Live:         true,
		WindowChunks: p.cfg.WindowChunks,
	}
	pb.tiles = make(map[string]store.TileRef)
	pb.chunkBlobs = make(map[int][]blobRef)
}

func (pb *publisher) edge() int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.man.LiveEdge()
}

func (pb *publisher) seqNum() int64 {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.man.Seq
}

func (pb *publisher) manifestJSON() []byte {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	return pb.manJSON
}

func (pb *publisher) report() *Report {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	r := pb.rep
	if r.Chunks > 0 {
		r.MeanPublishLatency = pb.latSum / time.Duration(r.Chunks)
	}
	return &r
}

// publishHead publishes the initial empty live manifest (Seq 1) so
// origins have a head to serve and clients a poll target before chunk 0
// lands.
func (pb *publisher) publishHead() error {
	pb.mu.Lock()
	pb.man.Seq++
	pb.mu.Unlock()
	return pb.writeHead()
}

// publish lands one encoded chunk: tile blobs, then the refreshed
// manifest blob, then the catalog head — strictly in that order, so a
// reader holding any catalog version only ever resolves named blobs.
func (pb *publisher) publish(ctx context.Context, ec encodedChunk, last bool) error {
	cfg := pb.p.cfg
	_, sp := cfg.Tracer.Start(ctx, "live.publish",
		trace.A("component", "live"), trace.A("chunk", ec.k))
	defer sp.End()

	var blobs []blobRef
	for ti := range ec.chunk.Tiles {
		t := &ec.chunk.Tiles[ti]
		for l := 0; l < codec.NumLevels; l++ {
			lv := codec.Level(l)
			size := server.TileSizeBytes(t, lv)
			digest, err := cfg.Store.Put(server.TilePayload(ec.k, ti, lv, size))
			if err != nil {
				sp.SetError("store")
				return fmt.Errorf("live: publish chunk %d: %w", ec.k, err)
			}
			cfg.Store.AddRef(digest)
			path := server.TilePath(ec.k, ti, lv)
			pb.tiles[path] = store.TileRef{Digest: digest, Size: size}
			blobs = append(blobs, blobRef{path: path, digest: digest})
		}
	}
	pb.chunkBlobs[ec.k] = blobs

	pb.mu.Lock()
	pb.man.Chunks = append(pb.man.Chunks, ec.chunk)
	pb.man.Seq++
	if last {
		// End of stream: the final manifest is a plain VOD manifest with
		// an availability window.
		pb.man.Live = false
	}
	expired := 0
	if cfg.WindowChunks > 0 {
		for pb.man.LiveEdge()-pb.man.FirstChunk > cfg.WindowChunks {
			pb.retireLocked(pb.man.FirstChunk)
			pb.man.FirstChunk++
			expired++
		}
	}
	pb.mu.Unlock()
	if err := pb.writeHead(); err != nil {
		sp.SetError("store")
		return err
	}
	if expired > 0 {
		cfg.Store.GC(cfg.Retention)
	}

	lat := pb.p.clk.Since(ec.capturedAt)
	late := cfg.Deadline > 0 && lat > cfg.Deadline
	pb.mu.Lock()
	pb.rep.Chunks++
	pb.latSum += lat
	if lat > pb.rep.MaxPublishLatency {
		pb.rep.MaxPublishLatency = lat
	}
	if late {
		pb.rep.DeadlineMisses++
	}
	if ec.degraded {
		pb.rep.Degraded++
	}
	pb.rep.Expired += expired
	edge, seq := pb.man.LiveEdge(), pb.man.Seq
	pb.mu.Unlock()

	cfg.Obs.Counter("pano_live_published_chunks_total", "chunks published to the store").Inc()
	if late {
		cfg.Obs.Counter("pano_live_deadline_misses_total",
			"chunks published after their deadline").Inc()
	}
	if ec.degraded {
		cfg.Obs.Counter("pano_live_degraded_publishes_total",
			"chunks encoded at the degraded ladder rung to protect the deadline").Inc()
	}
	if expired > 0 {
		cfg.Obs.Counter("pano_live_expired_chunks_total",
			"chunks retired from the availability window").Add(float64(expired))
	}
	cfg.Obs.Gauge("pano_live_edge_chunk", "published live edge (chunk count)").Set(float64(edge))
	cfg.Obs.Gauge("pano_live_seq", "manifest publish sequence number").Set(float64(seq))
	cfg.Obs.Histogram("pano_live_publish_latency_seconds",
		"capture-to-publish latency per chunk", nil).Observe(lat.Seconds())
	cfg.Obs.Histogram("pano_live_encode_seconds",
		"per-chunk encode time", nil).Observe(ec.encodeTime.Seconds())
	sp.Annotate("latency_sec", lat.Seconds())
	sp.Annotate("late", late)
	cfg.Log.Logger().Info("live_publish",
		"chunk", ec.k, "tiles", len(ec.chunk.Tiles), "edge", edge, "seq", seq,
		"latency_sec", lat.Seconds(), "late", late, "degraded", ec.degraded,
		"expired", expired)
	return nil
}

// retireLocked drops chunk k's blobs from the catalog map and releases
// their refs (pb.mu held; the refs start their GC retention clock).
func (pb *publisher) retireLocked(k int) {
	for _, b := range pb.chunkBlobs[k] {
		delete(pb.tiles, b.path)
		pb.p.cfg.Store.Release(b.digest)
	}
	delete(pb.chunkBlobs, k)
}

// writeHead encodes the manifest, stores it, and replaces the catalog.
func (pb *publisher) writeHead() error {
	cfg := pb.p.cfg
	pb.mu.Lock()
	var buf bytes.Buffer
	if err := pb.man.Encode(&buf); err != nil {
		pb.mu.Unlock()
		return fmt.Errorf("live: encode manifest: %w", err)
	}
	body := buf.Bytes()
	seq := pb.man.Seq
	first := pb.man.FirstChunk
	prevDigest := pb.manDigest
	pb.mu.Unlock()

	digest, err := cfg.Store.Put(body)
	if err != nil {
		return fmt.Errorf("live: store manifest: %w", err)
	}
	cfg.Store.AddRef(digest)
	if prevDigest != "" && prevDigest != digest {
		cfg.Store.Release(prevDigest)
	}
	if err := cfg.Store.WriteCatalog(&store.Catalog{
		Seq: seq, Manifest: digest, FirstChunk: first, Tiles: pb.tiles,
	}); err != nil {
		return err
	}
	pb.mu.Lock()
	pb.manJSON = body
	pb.manDigest = digest
	pb.mu.Unlock()
	return nil
}
