// Package provider implements the video provider's offline preprocessing
// pipeline (§5, §6.3, §7):
//
//  1. Chunk the video into 1 s chunks and compute per-unit-tile
//     efficiency scores (Equation 5) averaged over history viewpoint
//     traces.
//  2. Group unit tiles into N variable-size tiles (Pano), a uniform
//     grid (Flare-style baselines), bit-driven clusters (ClusTile), or
//     one whole-frame tile.
//  3. For every tile and quality level, estimate the encoded size and
//     the PSPNR-vs-action-ratio curve, compressed to the power-law
//     schema of Figure 12(c), and assemble the manifest.
//
// Feature extraction (object trajectories, luminance, depth) uses the
// scene's ground truth, standing in for the paper's Yolo+KCF tracking.
package provider

import (
	"fmt"
	"math"
	"sync"

	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/parallel"
	"pano/internal/quality"
	"pano/internal/scene"
	"pano/internal/tiling"
	"pano/internal/viewport"
)

// Mode selects the tiling strategy.
type Mode int

// Tiling strategies.
const (
	// ModePano groups unit tiles by PSPNR-efficiency similarity (§5).
	ModePano Mode = iota
	// ModeUniform uses a fixed uniform grid (viewport-driven baselines).
	ModeUniform
	// ModeClusTile groups unit tiles by encoded-size similarity,
	// approximating ClusTile's compression-efficiency clustering.
	ModeClusTile
	// ModeWhole streams the entire frame as a single tile.
	ModeWhole
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModePano:
		return "pano"
	case ModeUniform:
		return "uniform"
	case ModeClusTile:
		return "clustile"
	case ModeWhole:
		return "whole"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Config controls preprocessing.
type Config struct {
	Mode Mode
	// Grid is the uniform grid for ModeUniform (default 6×12, Flare's).
	Grid tiling.Grid
	// Tiles is N, the number of variable-size tiles (default 30).
	Tiles int
	// ChunkSec is the chunk duration (default 1 s).
	ChunkSec float64
	// FrameStride samples one frame in this many for quality estimation
	// (default 10, the §6.3 optimization; 1 = per-frame PSPNR).
	FrameStride int
	// Profile is the 360JND profile (default jnd.Default()).
	Profile *jnd.Profile
	// Encoder is the codec model (default codec.NewEncoder()).
	Encoder *codec.Encoder
	// LumaWindowSec is the luminance-change lookback (default 5 s).
	LumaWindowSec float64
}

// DefaultConfig returns Pano's defaults.
func DefaultConfig() Config {
	return Config{
		Mode:          ModePano,
		Grid:          tiling.Grid6x12,
		Tiles:         tiling.DefaultTiles,
		ChunkSec:      1,
		FrameStride:   10,
		Profile:       jnd.Default(),
		Encoder:       codec.NewEncoder(),
		LumaWindowSec: 5,
	}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Grid.Rows == 0 || c.Grid.Cols == 0 {
		c.Grid = d.Grid
	}
	if c.Tiles == 0 {
		c.Tiles = d.Tiles
	}
	if c.ChunkSec == 0 {
		c.ChunkSec = d.ChunkSec
	}
	if c.FrameStride == 0 {
		c.FrameStride = d.FrameStride
	}
	if c.Profile == nil {
		c.Profile = d.Profile
	}
	if c.Encoder == nil {
		c.Encoder = d.Encoder
	}
	if c.LumaWindowSec == 0 {
		c.LumaWindowSec = d.LumaWindowSec
	}
}

// Preprocess builds the manifest for a video given history viewpoint
// traces (may be empty: scores then assume a static viewpoint).
func Preprocess(v *scene.Video, history []*viewport.Trace, cfg Config) (*manifest.Video, error) {
	cfg.fillDefaults()
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if v.W%tiling.UnitCols != 0 || v.H%tiling.UnitRows != 0 {
		return nil, fmt.Errorf("provider: video %dx%d not divisible by unit grid %dx%d",
			v.W, v.H, tiling.UnitCols, tiling.UnitRows)
	}
	numChunks := int(float64(v.DurationSec) / cfg.ChunkSec)
	if numChunks == 0 {
		return nil, fmt.Errorf("provider: video shorter than one chunk")
	}
	out := &manifest.Video{
		Name:     v.Name,
		Genre:    v.Genre.String(),
		W:        v.W,
		H:        v.H,
		FPS:      v.FPS,
		ChunkSec: cfg.ChunkSec,
	}
	p := &preprocessor{cfg: cfg, video: v, history: history}

	// Chunks are independent; preprocess them in parallel (each worker
	// renders, distorts, and analyzes its own frames — there is no
	// shared mutable state). The per-chunk kernels fan out further
	// (frames, unit-tile scoring, per-(tile, level) table build), all
	// bounded by the same process-wide worker count.
	out.Chunks = make([]manifest.Chunk, numChunks)
	var (
		firstErr error
		errOnce  sync.Once
	)
	parallel.For(numChunks, func(k int) {
		ch, err := p.chunk(k)
		if err != nil {
			errOnce.Do(func() {
				firstErr = fmt.Errorf("provider: chunk %d: %w", k, err)
			})
			return
		}
		out.Chunks[k] = ch
	})
	if firstErr != nil {
		return nil, firstErr
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("provider: produced invalid manifest: %w", err)
	}
	return out, nil
}

// ChunkAt preprocesses a single chunk — the just-in-time entry point
// internal/live's encode stage uses, where whole-video Preprocess would
// blow the per-chunk publish deadline. It runs exactly the kernels
// Preprocess runs for chunk k, so a live-published chunk is
// bit-identical to its VOD counterpart under the same Config.
func ChunkAt(v *scene.Video, history []*viewport.Trace, cfg Config, k int) (manifest.Chunk, error) {
	cfg.fillDefaults()
	if err := v.Validate(); err != nil {
		return manifest.Chunk{}, err
	}
	if v.W%tiling.UnitCols != 0 || v.H%tiling.UnitRows != 0 {
		return manifest.Chunk{}, fmt.Errorf("provider: video %dx%d not divisible by unit grid %dx%d",
			v.W, v.H, tiling.UnitCols, tiling.UnitRows)
	}
	numChunks := int(float64(v.DurationSec) / cfg.ChunkSec)
	if k < 0 || k >= numChunks {
		return manifest.Chunk{}, fmt.Errorf("provider: chunk %d out of range [0,%d)", k, numChunks)
	}
	p := &preprocessor{cfg: cfg, video: v, history: history}
	ch, err := p.chunk(k)
	if err != nil {
		return manifest.Chunk{}, fmt.Errorf("provider: chunk %d: %w", k, err)
	}
	return ch, nil
}

type preprocessor struct {
	cfg     Config
	video   *scene.Video
	history []*viewport.Trace
}

// sampledFrame bundles one analyzed frame: the original, its content
// JND field, and the per-level distorted versions.
type sampledFrame struct {
	orig      *frame.Frame
	content   []float64 // full-frame content JND, row-major
	distorted [codec.NumLevels]*frame.Frame
}

func (p *preprocessor) analyzeFrame(idx int) (*sampledFrame, error) {
	orig := p.video.RenderFrame(idx)
	sf := &sampledFrame{
		orig:    orig,
		content: jnd.ContentField(orig, geom.Rect{X1: orig.W, Y1: orig.H}),
	}
	full := geom.Rect{X1: orig.W, Y1: orig.H}
	for l := 0; l < codec.NumLevels; l++ {
		d, err := p.cfg.Encoder.DistortRegion(orig, full, codec.Level(l).QP())
		if err != nil {
			return nil, err
		}
		sf.distorted[l] = d
	}
	return sf, nil
}

// pmseAtAnchors computes, for one rect of one sampled frame and level,
// the PMSE at each anchor action ratio in a single pass.
func pmseAtAnchors(sf *sampledFrame, level int, r geom.Rect, anchors []float64) []float64 {
	sums := make([]float64, len(anchors))
	w := sf.orig.W
	enc := sf.distorted[level]
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			d := math.Abs(float64(sf.orig.Pix[y*w+x]) - float64(enc.Pix[y*w+x]))
			if d == 0 {
				continue
			}
			c := sf.content[y*w+x]
			for ai, a := range anchors {
				th := c * a
				if d >= th {
					ex := d - th
					sums[ai] += ex * ex
				}
			}
		}
	}
	area := float64(r.Area())
	for ai := range sums {
		sums[ai] /= area
	}
	return sums
}

// chunkFactors estimates, per unit tile, the mean action ratio over the
// history traces at the chunk midpoint (used to weight the efficiency
// scores with realistic viewing behaviour, §5's "calculating efficiency
// scores offline").
func (p *preprocessor) chunkFactors(k int, rects []geom.Rect) []float64 {
	tMid := (float64(k) + 0.5) * p.cfg.ChunkSec
	out := make([]float64, len(rects))
	if len(p.history) == 0 {
		for i := range out {
			out[i] = 1
		}
		return out
	}
	parallel.For(len(rects), func(i int) {
		r := rects[i]
		objSpeed, tileDoF := p.tileMotionDepth(r, tMid)
		var sumA float64
		for _, tr := range p.history {
			vpSpeed := tr.SpeedAt(tMid)
			rel := math.Abs(vpSpeed - objSpeed)
			focusDoF := p.video.DepthAt(tr.At(tMid), tMid)
			dof := math.Abs(tileDoF - focusDoF)
			luma := tr.MaxLumaChange(tMid, p.cfg.LumaWindowSec, p.video.LumaAt)
			sumA += p.cfg.Profile.ActionRatio(jnd.Factors{
				SpeedDegS:  rel,
				DoFDiff:    dof,
				LumaChange: luma,
			})
		}
		out[i] = sumA / float64(len(p.history))
	})
	return out
}

// tileMotionDepth samples the tile's mean object speed (0 where only
// background is visible) and mean depth at time t.
func (p *preprocessor) tileMotionDepth(r geom.Rect, t float64) (objSpeed, depth float64) {
	g := p.video.Geometry()
	const grid = 4
	var sSum, dSum float64
	var n int
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			x := r.X0 + (2*gx+1)*r.W()/(2*grid)
			y := r.Y0 + (2*gy+1)*r.H()/(2*grid)
			a := g.ToAngle(x, y)
			if o := p.video.ObjectAt(a, t); o != nil {
				sSum += o.SpeedDegS()
				dSum += o.Depth
			} else {
				dSum += p.video.BgDepthAt(a)
			}
			n++
		}
	}
	return sSum / float64(n), dSum / float64(n)
}

func (p *preprocessor) chunk(k int) (manifest.Chunk, error) {
	framesPerChunk := int(p.cfg.ChunkSec * float64(p.video.FPS))
	first := k * framesPerChunk

	// Sampled frames for quality estimation (1 in FrameStride), analyzed
	// in parallel: rendering plus per-level distortion dominate.
	var sampleIdx []int
	for f := first; f < first+framesPerChunk; f += p.cfg.FrameStride {
		sampleIdx = append(sampleIdx, f)
	}
	samples := make([]*sampledFrame, len(sampleIdx))
	var (
		sampleErr  error
		sampleOnce sync.Once
	)
	parallel.For(len(sampleIdx), func(i int) {
		sf, err := p.analyzeFrame(sampleIdx[i])
		if err != nil {
			sampleOnce.Do(func() { sampleErr = err })
			return
		}
		samples[i] = sf
	})
	if sampleErr != nil {
		return manifest.Chunk{}, sampleErr
	}
	// A mid-chunk frame for temporal activity.
	next := p.video.RenderFrame(first + framesPerChunk/2)
	key := samples[0].orig

	// Steps 1-3: score the unit grid concurrently and choose the layout.
	// Scoring is lazy per mode: only the matrix the mode's clustering
	// consumes is computed.
	unitGrid := tiling.Grid12x24
	unitRects := unitGrid.Rects(p.video.W, p.video.H)
	var layout tiling.Layout
	var err error
	switch p.cfg.Mode {
	case ModePano:
		ratios := p.chunkFactors(k, unitRects)
		layout, err = tiling.Plan(tiling.UnitRows, tiling.UnitCols, p.cfg.Tiles,
			func(row, col int) float64 {
				// PSPNR at the highest and lowest levels averaged over
				// sampled frames, with JND scaled by the history-average
				// action ratio.
				i := row*tiling.UnitCols + col
				ur := unitRects[i]
				var hi, lo float64
				for _, sf := range samples {
					hi += pmseAtAnchors(sf, 0, ur, []float64{ratios[i]})[0]
					lo += pmseAtAnchors(sf, codec.NumLevels-1, ur, []float64{ratios[i]})[0]
				}
				n := float64(len(samples))
				pHi := quality.PSPNRFromPMSE(hi / n)
				pLo := quality.PSPNRFromPMSE(lo / n)
				return (pHi - pLo) / float64(codec.NumLevels-1) // Equation 5
			})
	case ModeUniform:
		layout, err = tiling.UniformLayout(p.cfg.Grid)
	case ModeClusTile:
		layout, err = tiling.Plan(tiling.UnitRows, tiling.UnitCols, p.cfg.Tiles,
			func(row, col int) float64 {
				ur := unitRects[row*tiling.UnitCols+col]
				return p.cfg.Encoder.FrameRegionBits(key, ur, codec.Level(2).QP())
			})
	case ModeWhole:
		layout = tiling.Layout{Rows: tiling.UnitRows, Cols: tiling.UnitCols,
			Tiles: []tiling.UnitRect{{R0: 0, C0: 0, R1: tiling.UnitRows, C1: tiling.UnitCols}}}
	default:
		err = fmt.Errorf("unknown mode %v", p.cfg.Mode)
	}
	if err != nil {
		return manifest.Chunk{}, err
	}

	// Step 4: per-tile metadata, sizes and PSPNR LUT. The raw per-level
	// quantities fan out per (tile, quality-level); the cross-level
	// monotonicity clamps and the LUT fit run in a serial pass per tile
	// afterwards, because level l reads the clamped level l-1.
	ch := manifest.Chunk{Index: k}
	tMid := (float64(k) + 0.5) * p.cfg.ChunkSec
	nTiles := len(layout.Tiles)
	tiles := make([]manifest.Tile, nTiles)
	parallel.For(nTiles, func(i int) {
		r := layout.Tiles[i].Pixels(p.video.W, p.video.H, layout.Rows, layout.Cols)
		t := manifest.Tile{Rect: r}
		t.AvgLuma = key.MeanLuma(r)
		t.ObjSpeedDeg, t.AvgDoF = p.tileMotionDepth(r, tMid)
		tiles[i] = t
	})
	type levelData struct {
		bits float64   // encoded tile-chunk size
		mse  float64   // plain MSE (A=0 anchor), mean over samples
		pmse []float64 // PMSE per anchor ratio, mean over samples
	}
	levels := make([]levelData, nTiles*codec.NumLevels)
	parallel.For(len(levels), func(j int) {
		i, l := j/codec.NumLevels, j%codec.NumLevels
		r := tiles[i].Rect
		ld := &levels[j]
		ld.bits = p.cfg.Encoder.TileChunkBits(key, next, r, codec.Level(l).QP(), framesPerChunk)
		// Plain MSE (the A=0 anchor degenerates to unfiltered error)
		// feeds the JND-agnostic PSNR used by the baselines.
		var mse float64
		acc := make([]float64, len(manifest.AnchorRatios))
		for _, sf := range samples {
			mse += pmseAtAnchors(sf, l, r, []float64{0})[0]
			for ai, v := range pmseAtAnchors(sf, l, r, manifest.AnchorRatios) {
				acc[ai] += v
			}
		}
		ld.mse = mse / float64(len(samples))
		for ai := range acc {
			acc[ai] /= float64(len(samples))
		}
		ld.pmse = acc
	})
	for i := range tiles {
		t := tiles[i]
		var pspnrs [codec.NumLevels][]float64
		for l := 0; l < codec.NumLevels; l++ {
			ld := levels[i*codec.NumLevels+l]
			t.Bits[l] = ld.bits
			t.PSNR[l] = quality.PSNR(ld.mse)
			if l > 0 && t.PSNR[l] > t.PSNR[l-1] {
				t.PSNR[l] = t.PSNR[l-1]
			}
			pspnrs[l] = make([]float64, len(ld.pmse))
			for ai, v := range ld.pmse {
				pspnrs[l][ai] = quality.PSPNRFromPMSE(v)
			}
			// Enforce monotonicity across levels: a coarser quantizer
			// occasionally rounds marginally better in a tile, but the
			// quality model (and the allocator's cost ordering) assume
			// PSPNR never improves as quality drops.
			if l > 0 {
				for ai := range pspnrs[l] {
					if pspnrs[l][ai] > pspnrs[l-1][ai] {
						pspnrs[l][ai] = pspnrs[l-1][ai]
					}
				}
			}
			t.RefPSPNR[l] = pspnrs[l][0] // anchor 0 is A=1
			t.LUT[l] = manifest.FitPowerLUT(t.RefPSPNR[l], manifest.AnchorRatios, pspnrs[l])
		}
		ch.Tiles = append(ch.Tiles, t)
	}

	// Object trajectory track: one sample per FrameStride frames (§7).
	for f := first; f < first+framesPerChunk; f += p.cfg.FrameStride {
		tt := float64(f) / float64(p.video.FPS)
		for _, o := range p.video.Objects {
			pos := o.PositionAt(tt)
			ch.Objects = append(ch.Objects, manifest.ObjectSample{
				T: tt - float64(k)*p.cfg.ChunkSec, Yaw: pos.Yaw, Pitch: pos.Pitch,
				SpeedDeg: o.SpeedDegS(), Depth: o.Depth,
			})
		}
	}
	return ch, nil
}
