package provider

import (
	"testing"

	"pano/internal/codec"
	"pano/internal/scene"
	"pano/internal/tiling"
	"pano/internal/viewport"
)

func testVideo(genre scene.Genre, seed uint64) *scene.Video {
	return scene.Generate(genre, seed, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 4})
}

func testHistory(v *scene.Video, n int) []*viewport.Trace {
	var out []*viewport.Trace
	for i := 0; i < n; i++ {
		out = append(out, viewport.Synthesize(v, uint64(i+1), viewport.DefaultSynthesizeOpts()))
	}
	return out
}

func TestPreprocessPano(t *testing.T) {
	v := testVideo(scene.Sports, 5)
	m, err := Preprocess(v, testHistory(v, 3), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.NumChunks() != 4 {
		t.Fatalf("chunks = %d, want 4", m.NumChunks())
	}
	for _, c := range m.Chunks {
		if len(c.Tiles) != tiling.DefaultTiles {
			t.Fatalf("chunk %d tiles = %d, want %d", c.Index, len(c.Tiles), tiling.DefaultTiles)
		}
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Manifest must carry object samples for the client's relative
	// speed estimation.
	if len(m.Chunks[0].Objects) == 0 {
		t.Error("no object trajectory samples")
	}
}

func TestPreprocessModes(t *testing.T) {
	v := testVideo(scene.Documentary, 6)
	hist := testHistory(v, 2)
	for _, mode := range []Mode{ModePano, ModeUniform, ModeClusTile, ModeWhole} {
		cfg := DefaultConfig()
		cfg.Mode = mode
		m, err := Preprocess(v, hist, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		switch mode {
		case ModeUniform:
			if len(m.Chunks[0].Tiles) != 72 {
				t.Errorf("%v: tiles = %d, want 72", mode, len(m.Chunks[0].Tiles))
			}
		case ModeWhole:
			if len(m.Chunks[0].Tiles) != 1 {
				t.Errorf("%v: tiles = %d, want 1", mode, len(m.Chunks[0].Tiles))
			}
		}
	}
}

func TestPreprocessQualitySizeTradeoffs(t *testing.T) {
	v := testVideo(scene.Adventure, 7)
	cfg := DefaultConfig()
	cfg.FrameStride = 5
	m, err := Preprocess(v, testHistory(v, 2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range m.Chunks {
		for ti, tile := range c.Tiles {
			for l := 1; l < codec.NumLevels; l++ {
				if tile.Bits[l] > tile.Bits[l-1] {
					t.Fatalf("chunk %d tile %d: bits grow with level", c.Index, ti)
				}
				if tile.RefPSPNR[l] > tile.RefPSPNR[l-1]+1e-9 {
					t.Fatalf("chunk %d tile %d: PSPNR grows as quality drops (%v -> %v)",
						c.Index, ti, tile.RefPSPNR[l-1], tile.RefPSPNR[l])
				}
			}
			// The LUT must predict non-decreasing PSPNR in A.
			for l := 0; l < codec.NumLevels; l++ {
				ref := tile.RefPSPNR[l]
				if tile.LUT[l].PSPNR(ref, 5) < tile.LUT[l].PSPNR(ref, 1)-1e-9 {
					t.Fatalf("chunk %d tile %d level %d: LUT not monotone in A", c.Index, ti, l)
				}
			}
		}
	}
}

func TestPreprocessRejectsBadInput(t *testing.T) {
	bad := testVideo(scene.Sports, 1)
	bad.W = 250 // not divisible by 24
	if _, err := Preprocess(bad, nil, DefaultConfig()); err == nil {
		t.Error("indivisible width should error")
	}
	short := scene.Generate(scene.Sports, 1, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 1})
	cfg := DefaultConfig()
	cfg.ChunkSec = 5
	if _, err := Preprocess(short, nil, cfg); err == nil {
		t.Error("video shorter than a chunk should error")
	}
	invalid := testVideo(scene.Sports, 1)
	invalid.FPS = 0
	if _, err := Preprocess(invalid, nil, DefaultConfig()); err == nil {
		t.Error("invalid video should error")
	}
}

func TestPreprocessNoHistoryDefaultsToStatic(t *testing.T) {
	v := testVideo(scene.Performance, 8)
	m, err := Preprocess(v, nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPanoTilesFewerThanUniformFine(t *testing.T) {
	// The whole point of §5: Pano gets adaptation granularity with ~30
	// tiles instead of 288, so its total encoded size at a given level
	// must be well below the 12×24 uniform encoding.
	v := testVideo(scene.Sports, 9)
	hist := testHistory(v, 2)
	pano, err := Preprocess(v, hist, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Mode = ModeUniform
	cfg.Grid = tiling.Grid12x24
	fine, err := Preprocess(v, hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pano.ChunkBits(0, 2) >= fine.ChunkBits(0, 2) {
		t.Errorf("pano chunk size %v should be below 12x24 uniform %v",
			pano.ChunkBits(0, 2), fine.ChunkBits(0, 2))
	}
}

func TestModeString(t *testing.T) {
	if ModePano.String() != "pano" || ModeWhole.String() != "whole" {
		t.Error("mode names wrong")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode format wrong")
	}
}
