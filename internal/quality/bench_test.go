package quality

import (
	"testing"

	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/parallel"
)

const benchW, benchH = 960, 480

func runTilePSPNRBench(b *testing.B, workers int) {
	rng := mathx.NewRNG(0xBE9C)
	orig := randFrame(rng, benchW, benchH)
	enc := perturb(rng, orig, 12)
	r := geom.Rect{X1: benchW, Y1: benchH}
	if workers > 0 {
		parallel.SetWorkers(workers)
		defer parallel.SetWorkers(0) // clear the override for later benchmarks
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TilePSPNR(jnd.Default(), orig, enc, r, jnd.Factors{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTilePSPNRSerial(b *testing.B)   { runTilePSPNRBench(b, 1) }
func BenchmarkTilePSPNRParallel(b *testing.B) { runTilePSPNRBench(b, 0) }

// BenchmarkTilePSPNRCached measures the steady-state cost with a warm
// per-chunk field cache: only PMSE and the JND scaling remain.
func BenchmarkTilePSPNRCached(b *testing.B) {
	rng := mathx.NewRNG(0xBE9C)
	orig := randFrame(rng, benchW, benchH)
	enc := perturb(rng, orig, 12)
	r := geom.Rect{X1: benchW, Y1: benchH}
	cache := jnd.NewFieldCache(4, nil)
	if _, err := TilePSPNRCached(jnd.Default(), cache, "k", orig, enc, r, jnd.Factors{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := TilePSPNRCached(jnd.Default(), cache, "k", orig, enc, r, jnd.Factors{}); err != nil {
			b.Fatal(err)
		}
	}
}
