package quality

import (
	"math"
	"os"
	"testing"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/mathx"
)

// The golden suite pins the numeric outputs of the JND/PSPNR pixel
// pipeline on a deterministic synthetic frame pair, so any rewrite of
// the kernels (the parallel one included) provably preserves numerics.
// The frames are generated in code from fixed seeds — a luminance ramp
// with a textured lower half plus bounded noise, and an "encoded" copy
// with bounded distortion — so the pair is committed without binary
// fixtures and is identical on every platform (splitmix64 and Go's
// libm are both deterministic).
//
// Regenerate the constants with:
//
//	PANO_GOLDEN_PRINT=1 go test ./internal/quality -run TestGolden -v

const goldenTol = 1e-9

func clamp8(v int) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// goldenFrames builds the committed frame pair: 64×48, ramp+texture
// original, ±8 grey distorted copy.
func goldenFrames() (orig, enc *frame.Frame) {
	const w, h = 64, 48
	orig = frame.New(w, h)
	rng := mathx.NewRNG(2019)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			base := 40 + 170*x/(w-1)
			tex := 0
			if y >= h/2 {
				tex = int(20 * math.Sin(float64(x)*0.7) * math.Cos(float64(y)*0.5))
			}
			noise := rng.Intn(7) - 3
			orig.Set(x, y, clamp8(base+tex+noise))
		}
	}
	enc = orig.Clone()
	rng = mathx.NewRNG(77)
	for i := range enc.Pix {
		enc.Pix[i] = clamp8(int(enc.Pix[i]) + rng.Intn(17) - 8)
	}
	return orig, enc
}

// Golden values produced by the serial reference kernels on the frame
// pair above (run the print mode to regenerate).
const (
	goldenFieldLen    = 3072
	goldenFieldSum    = 17117.79056377485
	goldenField0      = 9.477561938604461
	goldenFieldMid    = 9.334918122363387
	goldenFieldLast   = 7.6484375
	goldenMeanContent = 5.57219744914546
	goldenPMSEFull    = 2.2863449514322274
	goldenPSPNRFull   = 44.53938605849036
	goldenPSPNRMoving = 70.37739992993632
	goldenPSPNRNilPro = 44.53938605849036
	goldenPMSESub     = 2.804350401283713
	goldenPSPNRSub    = 43.652480834433476
	goldenAggregate   = 41.20656778986997
)

func TestGoldenPipeline(t *testing.T) {
	orig, encFull := goldenFrames()
	full := geom.Rect{X1: orig.W, Y1: orig.H}
	sub := geom.Rect{X0: 8, Y0: 8, X1: 40, Y1: 40}
	moving := jnd.Factors{SpeedDegS: 10, DoFDiff: 0.5, LumaChange: 100}

	field := jnd.ContentField(orig, full)
	var fieldSum float64
	for _, v := range field {
		fieldSum += v
	}
	pmseFull, err := PMSE(orig, encFull, field)
	if err != nil {
		t.Fatal(err)
	}
	pspnrFull, err := TilePSPNR(jnd.Default(), orig, encFull, full, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	pspnrMoving, err := TilePSPNR(jnd.Default(), orig, encFull, full, moving)
	if err != nil {
		t.Fatal(err)
	}
	pspnrNil, err := TilePSPNR(nil, orig, encFull, full, moving)
	if err != nil {
		t.Fatal(err)
	}
	encSub, err := encFull.Region(sub)
	if err != nil {
		t.Fatal(err)
	}
	pmseSub, err := TilePMSE(jnd.Default(), orig, encSub, sub, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	pspnrSub, err := TilePSPNR(jnd.Default(), orig, encSub, sub, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	aggregate := AggregatePSPNR(
		[]float64{pmseFull, pmseSub, 25},
		[]float64{float64(full.Area()), float64(sub.Area()), 512})

	if os.Getenv("PANO_GOLDEN_PRINT") != "" {
		t.Logf("goldenFieldLen    = %d", len(field))
		t.Logf("goldenFieldSum    = %v", fieldSum)
		t.Logf("goldenField0      = %v", field[0])
		t.Logf("goldenFieldMid    = %v", field[len(field)/2])
		t.Logf("goldenFieldLast   = %v", field[len(field)-1])
		t.Logf("goldenMeanContent = %v", jnd.MeanContentJND(orig, full))
		t.Logf("goldenPMSEFull    = %v", pmseFull)
		t.Logf("goldenPSPNRFull   = %v", pspnrFull)
		t.Logf("goldenPSPNRMoving = %v", pspnrMoving)
		t.Logf("goldenPSPNRNilPro = %v", pspnrNil)
		t.Logf("goldenPMSESub     = %v", pmseSub)
		t.Logf("goldenPSPNRSub    = %v", pspnrSub)
		t.Logf("goldenAggregate   = %v", aggregate)
		t.Fatal("print mode: golden values above, not asserting")
	}

	checks := []struct {
		name      string
		got, want float64
	}{
		{"field sum", fieldSum, goldenFieldSum},
		{"field[0]", field[0], goldenField0},
		{"field[mid]", field[len(field)/2], goldenFieldMid},
		{"field[last]", field[len(field)-1], goldenFieldLast},
		{"MeanContentJND", jnd.MeanContentJND(orig, full), goldenMeanContent},
		{"PMSE full", pmseFull, goldenPMSEFull},
		{"TilePSPNR static", pspnrFull, goldenPSPNRFull},
		{"TilePSPNR moving", pspnrMoving, goldenPSPNRMoving},
		{"TilePSPNR nil profile", pspnrNil, goldenPSPNRNilPro},
		{"TilePMSE sub", pmseSub, goldenPMSESub},
		{"TilePSPNR sub", pspnrSub, goldenPSPNRSub},
		{"AggregatePSPNR", aggregate, goldenAggregate},
	}
	if len(field) != goldenFieldLen {
		t.Errorf("field len = %d, want %d", len(field), goldenFieldLen)
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want) > goldenTol {
			t.Errorf("%s = %.17g, want %.17g (Δ %.3g)", c.name, c.got, c.want, c.got-c.want)
		}
	}

	// The moving-viewpoint JND must tolerate strictly more distortion.
	if pspnrMoving <= pspnrFull {
		t.Errorf("moving PSPNR %v not above static %v", pspnrMoving, pspnrFull)
	}
}

// TestGoldenStableAcrossWorkerCounts re-runs the golden pipeline at
// explicit worker counts; the constants must hold at every one.
func TestGoldenStableAcrossWorkerCounts(t *testing.T) {
	orig, enc := goldenFrames()
	full := geom.Rect{X1: orig.W, Y1: orig.H}
	for _, workers := range []int{1, 2, 8} {
		field := jnd.ContentFieldWorkers(orig, full, workers)
		var sum float64
		for _, v := range field {
			sum += v
		}
		if math.Abs(sum-goldenFieldSum) > goldenTol {
			t.Errorf("workers=%d: field sum %.17g, want %.17g", workers, sum, goldenFieldSum)
		}
		pmse, err := PMSEWorkers(orig, enc, field, workers)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pmse-goldenPMSEFull) > goldenTol {
			t.Errorf("workers=%d: PMSE %.17g, want %.17g", workers, pmse, goldenPMSEFull)
		}
	}
}
