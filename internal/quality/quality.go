// Package quality implements the perceptual quality metrics of §4:
// PSNR, and PSPNR with pluggable JND (traditional content-only JND or
// the 360JND that also weighs viewpoint movement), plus the PSPNR→MOS
// band mapping of Table 3.
package quality

import (
	"fmt"
	"math"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/parallel"
)

// PSPNRCap bounds reported PSPNR; with zero perceptible noise the metric
// is unbounded, and the paper's plots top out well below this.
const PSPNRCap = 100.0

// PSNR returns the peak signal-to-noise ratio in dB for a mean squared
// error, capped at PSPNRCap for near-zero error.
func PSNR(mse float64) float64 {
	if mse <= 0 {
		return PSPNRCap
	}
	p := 20 * math.Log10(255/math.Sqrt(mse))
	return math.Min(p, PSPNRCap)
}

// PSPNRFromPMSE converts a perceptible mean squared error M into PSPNR
// per Equation 1: P = 20·log10(255/sqrt(M)).
func PSPNRFromPMSE(pmse float64) float64 { return PSNR(pmse) }

// pmseBandRows is the fixed row-band granularity of the parallel PMSE
// reduction. Band boundaries depend only on the frame height, so the
// banded sum is bit-identical for every worker count (the partial sums
// are combined in band order).
const pmseBandRows = 32

// PMSE computes the perceptible mean squared error of Equations 2–3 over
// matching frames, given a per-pixel JND field (row-major, same size):
// only error beyond the JND counts, and it counts by its excess. Row
// bands reduce in parallel on the process-default worker count.
func PMSE(orig, enc *frame.Frame, jndField []float64) (float64, error) {
	return PMSEWorkers(orig, enc, jndField, parallel.Workers())
}

// PMSEWorkers is PMSE with an explicit worker count (<= 1 runs
// serially). Results are bit-identical across worker counts.
func PMSEWorkers(orig, enc *frame.Frame, jndField []float64, workers int) (float64, error) {
	if orig.W != enc.W || orig.H != enc.H {
		return 0, fmt.Errorf("quality: frame size mismatch %dx%d vs %dx%d", orig.W, orig.H, enc.W, enc.H)
	}
	if len(jndField) != len(orig.Pix) {
		return 0, fmt.Errorf("quality: jnd field len %d, want %d", len(jndField), len(orig.Pix))
	}
	if len(orig.Pix) == 0 {
		return 0, nil
	}
	w := orig.W
	sums := make([]float64, parallel.NumBands(orig.H, pmseBandRows))
	parallel.ForBands(workers, orig.H, pmseBandRows, func(b, y0, y1 int) {
		var s float64
		for i := y0 * w; i < y1*w; i++ {
			diff := math.Abs(float64(orig.Pix[i]) - float64(enc.Pix[i]))
			if diff >= jndField[i] && diff > 0 {
				ex := diff - jndField[i]
				s += ex * ex
			}
		}
		sums[b] = s
	})
	var sum float64
	for _, s := range sums {
		sum += s
	}
	return sum / float64(len(orig.Pix)), nil
}

// UniformJND returns a constant JND field of the given size.
func UniformJND(w, h int, v float64) []float64 {
	f := make([]float64, w*h)
	for i := range f {
		f[i] = v
	}
	return f
}

// ScaleField multiplies every entry of a JND field by k, returning a new
// slice. It implements the content/action decomposition of Equation 4:
// the content field is computed once and the action ratio applied per
// viewpoint state.
func ScaleField(field []float64, k float64) []float64 {
	out := make([]float64, len(field))
	for i, v := range field {
		out[i] = v * k
	}
	return out
}

// TilePSPNR computes the PSPNR of region r: orig vs enc (enc is the
// distorted rendering of the same region, sized r.W() x r.H()), with the
// content JND from orig scaled by the action ratio of factors f under
// profile p. Pass a nil profile for traditional (content-only) PSPNR.
func TilePSPNR(p *jnd.Profile, orig *frame.Frame, enc *frame.Frame, r geom.Rect, f jnd.Factors) (float64, error) {
	pmse, err := tilePMSE(p, nil, "", orig, enc, r, f)
	if err != nil {
		return 0, err
	}
	return PSPNRFromPMSE(pmse), nil
}

// TilePSPNRCached is TilePSPNR with the content-JND field served from
// cache under (chunkKey, r); chunkKey must identify the original
// pixels (e.g. video name + frame index). A nil cache computes fresh.
func TilePSPNRCached(p *jnd.Profile, cache *jnd.FieldCache, chunkKey string, orig *frame.Frame, enc *frame.Frame, r geom.Rect, f jnd.Factors) (float64, error) {
	pmse, err := tilePMSE(p, cache, chunkKey, orig, enc, r, f)
	if err != nil {
		return 0, err
	}
	return PSPNRFromPMSE(pmse), nil
}

// TilePMSE is TilePSPNR but returns the raw perceptible MSE, which the
// tile-level allocator aggregates area-weighted before converting to dB
// (§6.1).
func TilePMSE(p *jnd.Profile, orig *frame.Frame, enc *frame.Frame, r geom.Rect, f jnd.Factors) (float64, error) {
	return tilePMSE(p, nil, "", orig, enc, r, f)
}

// TilePMSECached is TilePMSE with the content-JND field served from
// cache under (chunkKey, r).
func TilePMSECached(p *jnd.Profile, cache *jnd.FieldCache, chunkKey string, orig *frame.Frame, enc *frame.Frame, r geom.Rect, f jnd.Factors) (float64, error) {
	return tilePMSE(p, cache, chunkKey, orig, enc, r, f)
}

func tilePMSE(p *jnd.Profile, cache *jnd.FieldCache, chunkKey string, orig *frame.Frame, enc *frame.Frame, r geom.Rect, f jnd.Factors) (float64, error) {
	content := cache.ContentField(chunkKey, orig, r)
	ratio := 1.0
	if p != nil {
		ratio = p.ActionRatio(f)
	}
	field := ScaleField(content, ratio)
	sub, err := orig.Region(r)
	if err != nil {
		return 0, err
	}
	return PMSE(sub, enc, field)
}

// AggregatePSPNR combines per-tile PMSEs into the chunk PSPNR of §6.1:
// P = 20·log10(255/sqrt(M)) with M the area-weighted mean of tile PMSEs.
func AggregatePSPNR(pmses, areas []float64) float64 {
	if len(pmses) == 0 || len(pmses) != len(areas) {
		return 0
	}
	var num, den float64
	for i := range pmses {
		num += pmses[i] * areas[i]
		den += areas[i]
	}
	if den == 0 {
		return 0
	}
	return PSPNRFromPMSE(num / den)
}

// MOS bands of Table 3: PSPNR ≤45 → 1, 46–53 → 2, 54–61 → 3,
// 62–69 → 4, ≥70 → 5.
var mosBands = [...]float64{45, 53, 61, 69}

// MOSFromPSPNR maps a 360JND-based PSPNR value to the mean opinion score
// band of Table 3.
func MOSFromPSPNR(p float64) int {
	for i, hi := range mosBands {
		if p <= hi {
			return i + 1
		}
	}
	return 5
}

// PSPNRForMOS returns the lower edge of the PSPNR band for a target MOS,
// e.g. PSPNRForMOS(5) == 70 (used by the iso-quality bandwidth
// experiments, Figure 18).
func PSPNRForMOS(mos int) float64 {
	switch {
	case mos <= 1:
		return 0
	case mos >= 5:
		return 70
	default:
		return mosBands[mos-2] + 1
	}
}

// PSPNRBuckets are histogram bounds for per-chunk PSPNR metrics,
// spanning the Table 3 MOS bands (≤45 dB is MOS 1, ≥70 dB is MOS 5)
// with headroom on both sides.
var PSPNRBuckets = []float64{30, 35, 40, 45, 50, 55, 60, 65, 70, 75, 80, 85}
