package quality

import (
	"math"
	"testing"

	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/scene"
)

func TestPSNR(t *testing.T) {
	if PSNR(0) != PSPNRCap {
		t.Error("zero MSE should cap")
	}
	// MSE 1 => 20log10(255) ≈ 48.13 dB.
	if got := PSNR(1); math.Abs(got-48.13) > 0.01 {
		t.Errorf("PSNR(1) = %v, want ≈48.13", got)
	}
	if PSNR(100) >= PSNR(1) {
		t.Error("PSNR should fall with MSE")
	}
}

func TestPMSEFiltersSubJNDNoise(t *testing.T) {
	orig := frame.New(16, 16)
	orig.Fill(100)
	enc := orig.Clone()
	for i := range enc.Pix {
		enc.Pix[i] += 4 // distortion of 4 grey levels everywhere
	}
	// JND 5: fully imperceptible.
	p, err := PMSE(orig, enc, UniformJND(16, 16, 5))
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("sub-JND PMSE = %v, want 0", p)
	}
	// JND 1: perceptible excess is 3 per pixel -> PMSE 9.
	p, err = PMSE(orig, enc, UniformJND(16, 16, 1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-9) > 1e-9 {
		t.Errorf("PMSE = %v, want 9", p)
	}
}

func TestPMSEErrors(t *testing.T) {
	a := frame.New(8, 8)
	b := frame.New(4, 4)
	if _, err := PMSE(a, b, UniformJND(8, 8, 1)); err == nil {
		t.Error("size mismatch should error")
	}
	if _, err := PMSE(a, a.Clone(), UniformJND(4, 4, 1)); err == nil {
		t.Error("field length mismatch should error")
	}
}

func TestScaleField(t *testing.T) {
	f := []float64{1, 2, 3}
	out := ScaleField(f, 2)
	if out[0] != 2 || out[2] != 6 {
		t.Error("ScaleField wrong")
	}
	if f[0] != 1 {
		t.Error("ScaleField must not mutate input")
	}
}

func TestHigherActionRatioRaisesPSPNR(t *testing.T) {
	// The same encoded tile looks better (higher PSPNR) when the
	// viewpoint moves fast — the core of the paper's bandwidth savings.
	v := scene.Generate(scene.Sports, 3, scene.Options{W: 160, H: 80, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	r := geom.Rect{X0: 0, Y0: 0, X1: 80, Y1: 80}
	enc, err := codec.NewEncoder().DistortRegion(f, r, 37)
	if err != nil {
		t.Fatal(err)
	}
	prof := jnd.Default()
	static, err := TilePSPNR(prof, f, enc, r, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	moving, err := TilePSPNR(prof, f, enc, r, jnd.Factors{SpeedDegS: 20})
	if err != nil {
		t.Fatal(err)
	}
	if moving <= static {
		t.Errorf("moving PSPNR %v should exceed static %v", moving, static)
	}
}

func TestPSPNRAboveTraditionalPSNRStyle(t *testing.T) {
	// PSPNR with any JND filtering is at least the plain PSNR of the
	// same pair, because perceptible error is a lower bound on error.
	v := scene.Generate(scene.Documentary, 4, scene.Options{W: 160, H: 80, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	r := geom.Rect{X0: 0, Y0: 0, X1: 160, Y1: 80}
	enc, err := codec.NewEncoder().DistortRegion(f, r, 42)
	if err != nil {
		t.Fatal(err)
	}
	sub, _ := f.Region(r)
	mse, _ := frame.MSE(sub, enc)
	pspnr, err := TilePSPNR(jnd.Default(), f, enc, r, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	if pspnr < PSNR(mse) {
		t.Errorf("PSPNR %v below PSNR %v", pspnr, PSNR(mse))
	}
}

func TestTilePSPNRMonotoneInQP(t *testing.T) {
	v := scene.Generate(scene.Adventure, 9, scene.Options{W: 160, H: 80, FPS: 10, DurationSec: 1})
	f := v.RenderFrame(0)
	r := geom.Rect{X0: 40, Y0: 20, X1: 120, Y1: 60}
	e := codec.NewEncoder()
	prev := math.Inf(1)
	for _, qp := range codec.QPLevels {
		enc, err := e.DistortRegion(f, r, qp)
		if err != nil {
			t.Fatal(err)
		}
		p, err := TilePSPNR(jnd.Default(), f, enc, r, jnd.Factors{})
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-9 {
			t.Errorf("PSPNR rose from %v to %v as QP worsened to %d", prev, p, qp)
		}
		prev = p
	}
}

func TestAggregatePSPNR(t *testing.T) {
	// Equal areas, PMSEs 4 and 16 -> mean 10.
	got := AggregatePSPNR([]float64{4, 16}, []float64{100, 100})
	want := PSPNRFromPMSE(10)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("aggregate = %v, want %v", got, want)
	}
	// Weighting matters.
	skew := AggregatePSPNR([]float64{4, 16}, []float64{300, 100})
	if skew <= got {
		t.Error("weighting toward the better tile should raise PSPNR")
	}
	// Degenerate inputs.
	if AggregatePSPNR(nil, nil) != 0 {
		t.Error("empty aggregate should be 0")
	}
	if AggregatePSPNR([]float64{1}, []float64{0}) != 0 {
		t.Error("zero total area should be 0")
	}
}

func TestMOSBands(t *testing.T) {
	cases := []struct {
		pspnr float64
		mos   int
	}{
		{30, 1}, {45, 1}, {46, 2}, {53, 2}, {54, 3}, {61, 3}, {62, 4}, {69, 4}, {70, 5}, {95, 5},
	}
	for _, c := range cases {
		if got := MOSFromPSPNR(c.pspnr); got != c.mos {
			t.Errorf("MOS(%v) = %d, want %d", c.pspnr, got, c.mos)
		}
	}
}

func TestPSPNRForMOSInverse(t *testing.T) {
	for mos := 2; mos <= 5; mos++ {
		edge := PSPNRForMOS(mos)
		if got := MOSFromPSPNR(edge); got != mos {
			t.Errorf("MOS at band edge %v = %d, want %d", edge, got, mos)
		}
		if got := MOSFromPSPNR(edge - 1.5); got != mos-1 {
			t.Errorf("MOS just below band edge = %d, want %d", got, mos-1)
		}
	}
	if PSPNRForMOS(1) != 0 || PSPNRForMOS(0) != 0 {
		t.Error("MOS 1 band starts at 0")
	}
	if PSPNRForMOS(5) != 70 || PSPNRForMOS(9) != 70 {
		t.Error("MOS 5 band starts at 70")
	}
}
