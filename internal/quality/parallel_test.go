package quality

import (
	"testing"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/mathx"
)

var workerCounts = []int{1, 2, 8}

func randFrame(rng *mathx.RNG, w, h int) *frame.Frame {
	f := frame.New(w, h)
	for i := range f.Pix {
		f.Pix[i] = uint8(rng.Intn(256))
	}
	return f
}

// perturb returns a copy of f with bounded random noise, the stand-in
// for encoder distortion in the randomized properties.
func perturb(rng *mathx.RNG, f *frame.Frame, amp int) *frame.Frame {
	out := f.Clone()
	for i := range out.Pix {
		d := rng.Intn(2*amp+1) - amp
		v := int(out.Pix[i]) + d
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i] = uint8(v)
	}
	return out
}

func TestPMSESerialEqualsParallel(t *testing.T) {
	rng := mathx.NewRNG(0xFACADE)
	for trial := 0; trial < 25; trial++ {
		// Heights straddle the band size, including 1-pixel frames.
		w := 1 + rng.Intn(130)
		h := 1 + rng.Intn(100)
		orig := randFrame(rng, w, h)
		enc := perturb(rng, orig, 20)
		field := make([]float64, w*h)
		for i := range field {
			field[i] = rng.Range(0, 12)
		}
		ref, err := PMSEWorkers(orig, enc, field, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range workerCounts[1:] {
			got, err := PMSEWorkers(orig, enc, field, workers)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("trial %d %dx%d workers %d: PMSE %v, want %v (bit-exact)",
					trial, w, h, workers, got, ref)
			}
		}
		def, err := PMSE(orig, enc, field)
		if err != nil {
			t.Fatal(err)
		}
		if def != ref {
			t.Fatalf("trial %d: PMSE default diverges from PMSEWorkers(1)", trial)
		}
	}
}

func TestTilePSPNRSerialParallelAndCachedAgree(t *testing.T) {
	rng := mathx.NewRNG(0xBEEF)
	prof := jnd.Default()
	for trial := 0; trial < 10; trial++ {
		w := 16 + rng.Intn(120)
		h := 16 + rng.Intn(80)
		orig := randFrame(rng, w, h)
		x0, y0 := rng.Intn(w-8), rng.Intn(h-8)
		r := geom.Rect{X0: x0, Y0: y0, X1: x0 + 8 + rng.Intn(w-x0-8), Y1: y0 + 8 + rng.Intn(h-y0-8)}
		sub, err := orig.Region(r)
		if err != nil {
			t.Fatal(err)
		}
		enc := perturb(rng, sub, 25)
		f := jnd.Factors{SpeedDegS: rng.Range(0, 20), LumaChange: rng.Range(0, 100)}

		ref, err := TilePSPNR(prof, orig, enc, r, f)
		if err != nil {
			t.Fatal(err)
		}
		cache := jnd.NewFieldCache(8, nil)
		for pass := 0; pass < 2; pass++ { // second pass is a cache hit
			got, err := TilePSPNRCached(prof, cache, "k", orig, enc, r, f)
			if err != nil {
				t.Fatal(err)
			}
			if got != ref {
				t.Fatalf("trial %d pass %d: cached PSPNR %v, want %v", trial, pass, got, ref)
			}
		}
		if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
			t.Fatalf("trial %d: cache stats (%v, %v), want (1, 1)", trial, hits, misses)
		}
		pmseRef, err := TilePMSE(prof, orig, enc, r, f)
		if err != nil {
			t.Fatal(err)
		}
		pmseCached, err := TilePMSECached(prof, cache, "k", orig, enc, r, f)
		if err != nil {
			t.Fatal(err)
		}
		if pmseCached != pmseRef {
			t.Fatalf("trial %d: cached PMSE %v, want %v", trial, pmseCached, pmseRef)
		}
	}
}

func TestTilePSPNRDegenerateRectsMatchSerial(t *testing.T) {
	rng := mathx.NewRNG(31)
	orig := randFrame(rng, 24, 24)
	onePix := geom.Rect{X0: 5, Y0: 5, X1: 6, Y1: 6}
	sub, err := orig.Region(onePix)
	if err != nil {
		t.Fatal(err)
	}
	enc := perturb(rng, sub, 30)
	want, err := TilePSPNR(nil, orig, enc, onePix, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := TilePSPNRCached(nil, jnd.NewFieldCache(2, nil), "k", orig, enc, onePix, jnd.Factors{})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("1-pixel tile: cached %v, want %v", got, want)
	}

	// Empty and out-of-bounds rects error identically, never panic.
	for _, r := range []geom.Rect{{}, {X0: 3, Y0: 3, X1: 3, Y1: 9}, {X0: -2, Y0: 0, X1: 4, Y1: 4}} {
		_, err1 := TilePSPNR(nil, orig, enc, r, jnd.Factors{})
		_, err2 := TilePSPNRCached(nil, jnd.NewFieldCache(2, nil), "k", orig, enc, r, jnd.Factors{})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("rect %v: serial err %v vs cached err %v", r, err1, err2)
		}
		if err1 == nil {
			t.Fatalf("rect %v: expected error", r)
		}
	}
}
