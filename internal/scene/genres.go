package scene

import (
	"fmt"

	"pano/internal/geom"
	"pano/internal/mathx"
)

// Options controls generated video geometry. The paper's dataset is
// 2880x1440 @30fps; the default here is a scaled-down resolution that
// preserves aspect ratio and pixels-per-degree structure while keeping
// simulation tractable.
type Options struct {
	W, H        int
	FPS         int
	DurationSec int
}

// DefaultOptions returns the evaluation default: 480x240 @30fps, 30 s.
func DefaultOptions() Options {
	return Options{W: 480, H: 240, FPS: 30, DurationSec: 30}
}

// genreProfile captures how a genre parameterizes the scene model.
type genreProfile struct {
	numObjects     [2]int     // min, max
	objSpeed       [2]float64 // deg/s
	objSize        [2]float64 // deg
	objDepth       [2]float64 // dioptre
	objTexture     [2]float64
	oscAmp         [2]float64
	bgBase         float64
	bgBandAmp      float64
	bgBandCycles   float64
	bgFlickerAmp   float64
	bgFlickerHz    float64
	bgTexture      float64
	bgNearDepth    float64
	lumaRangeLo    float64
	lumaRangeHi    float64
	depthDiversity bool // objects spread across depth planes
}

var genreProfiles = map[Genre]genreProfile{
	// Fast-moving objects the viewpoint tracks (skiers, cars, balls).
	Sports: {
		numObjects: [2]int{2, 4}, objSpeed: [2]float64{8, 20},
		objSize: [2]float64{10, 18}, objDepth: [2]float64{0.5, 1.5},
		objTexture: [2]float64{15, 35}, oscAmp: [2]float64{1, 4},
		bgBase: 140, bgBandAmp: 25, bgBandCycles: 3, bgTexture: 18,
		bgNearDepth: 1.0, lumaRangeLo: 60, lumaRangeHi: 220,
	},
	// Stage performances: slow motion, strong stage lighting contrast.
	Performance: {
		numObjects: [2]int{2, 5}, objSpeed: [2]float64{0.5, 4},
		objSize: [2]float64{8, 14}, objDepth: [2]float64{0.8, 2.0},
		objTexture: [2]float64{10, 25}, oscAmp: [2]float64{0, 1},
		bgBase: 115, bgBandAmp: 40, bgBandCycles: 2,
		bgFlickerAmp: 105, bgFlickerHz: 0.3, bgTexture: 10,
		bgNearDepth: 0.8, lumaRangeLo: 140, lumaRangeHi: 250,
	},
	// Documentaries: slow pans, medium texture.
	Documentary: {
		numObjects: [2]int{1, 3}, objSpeed: [2]float64{1.5, 6},
		objSize: [2]float64{10, 20}, objDepth: [2]float64{0.3, 1.2},
		objTexture: [2]float64{12, 28}, oscAmp: [2]float64{0, 1},
		bgBase: 130, bgBandAmp: 30, bgBandCycles: 2, bgTexture: 22,
		bgNearDepth: 0.9, lumaRangeLo: 90, lumaRangeHi: 190,
	},
	// Outdoor sightseeing: large DoF spread (foreground vs vistas).
	Tourism: {
		numObjects: [2]int{2, 4}, objSpeed: [2]float64{2, 8},
		objSize: [2]float64{8, 16}, objDepth: [2]float64{1.2, 3.0},
		objTexture: [2]float64{12, 30}, oscAmp: [2]float64{0, 2},
		bgBase: 150, bgBandAmp: 35, bgBandCycles: 2.5, bgTexture: 20,
		bgNearDepth: 1.4, lumaRangeLo: 100, lumaRangeHi: 230,
		depthDiversity: true,
	},
	// Adventure (drone/action cam): fast everything, dynamic light.
	Adventure: {
		numObjects: [2]int{2, 5}, objSpeed: [2]float64{6, 16},
		objSize: [2]float64{8, 16}, objDepth: [2]float64{0.5, 2.5},
		objTexture: [2]float64{15, 35}, oscAmp: [2]float64{2, 6},
		bgBase: 120, bgBandAmp: 45, bgBandCycles: 4,
		bgFlickerAmp: 30, bgFlickerHz: 0.1, bgTexture: 25,
		bgNearDepth: 1.2, lumaRangeLo: 60, lumaRangeHi: 220,
		depthDiversity: true,
	},
	// Science/educational: studio-like, low dynamics.
	Science: {
		numObjects: [2]int{1, 3}, objSpeed: [2]float64{0.5, 3},
		objSize: [2]float64{10, 18}, objDepth: [2]float64{0.8, 1.6},
		objTexture: [2]float64{8, 20}, oscAmp: [2]float64{0, 1},
		bgBase: 160, bgBandAmp: 15, bgBandCycles: 1.5, bgTexture: 12,
		bgNearDepth: 0.6, lumaRangeLo: 120, lumaRangeHi: 200,
	},
	// Gaming captures: synthetic high-contrast, fast objects.
	Gaming: {
		numObjects: [2]int{3, 6}, objSpeed: [2]float64{5, 14},
		objSize: [2]float64{6, 12}, objDepth: [2]float64{0.4, 2.0},
		objTexture: [2]float64{20, 40}, oscAmp: [2]float64{0, 3},
		bgBase: 110, bgBandAmp: 50, bgBandCycles: 5,
		bgFlickerAmp: 90, bgFlickerHz: 0.35, bgTexture: 30,
		bgNearDepth: 1.0, lumaRangeLo: 40, lumaRangeHi: 250,
	},
}

// Generate creates a deterministic synthetic video of the given genre.
// The same (genre, seed, opts) always yields the same video.
func Generate(genre Genre, seed uint64, opts Options) *Video {
	prof, ok := genreProfiles[genre]
	if !ok {
		prof = genreProfiles[Documentary]
	}
	rng := mathx.NewRNG(seed ^ uint64(genre)<<32 ^ 0x5bd1e995)
	v := &Video{
		Name:        fmt.Sprintf("%s-%04x", genre, seed&0xffff),
		Genre:       genre,
		W:           opts.W,
		H:           opts.H,
		FPS:         opts.FPS,
		DurationSec: opts.DurationSec,
		Seed:        seed,
		Bg: Background{
			BaseLuma:   prof.bgBase,
			BandAmp:    prof.bgBandAmp,
			BandCycles: prof.bgBandCycles,
			FlickerAmp: prof.bgFlickerAmp,
			FlickerHz:  prof.bgFlickerHz,
			Texture:    prof.bgTexture,
			NearDepth:  prof.bgNearDepth,
		},
	}
	n := prof.numObjects[0]
	if d := prof.numObjects[1] - prof.numObjects[0]; d > 0 {
		n += rng.Intn(d + 1)
	}
	for i := 0; i < n; i++ {
		speed := rng.Range(prof.objSpeed[0], prof.objSpeed[1])
		// Predominantly horizontal motion, as in real head-tracked
		// content; a fraction of the speed may go vertical.
		vy := speed * rng.Range(-0.2, 0.2)
		vx := speed
		if rng.Float64() < 0.5 {
			vx = -vx
		}
		depth := rng.Range(prof.objDepth[0], prof.objDepth[1])
		if prof.depthDiversity && i%2 == 1 {
			// Alternate near/far planes so DoF differences within a
			// viewport are large (Figure 2c / Figure 3 right).
			depth = rng.Range(0.05, 0.3)
		}
		v.Objects = append(v.Objects, Object{
			ID:       i + 1,
			Start:    geom.Angle{Yaw: rng.Range(-180, 180), Pitch: rng.Range(-35, 35)},
			VelYaw:   vx,
			VelPitch: vy,
			OscAmp:   rng.Range(prof.oscAmp[0], prof.oscAmp[1]),
			OscHz:    rng.Range(0.2, 0.8),
			SizeDeg:  rng.Range(prof.objSize[0], prof.objSize[1]),
			Depth:    depth,
			Luma:     uint8(rng.Range(prof.lumaRangeLo, prof.lumaRangeHi)),
			Texture:  rng.Range(prof.objTexture[0], prof.objTexture[1]),
		})
	}
	return v
}
