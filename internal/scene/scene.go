// Package scene generates synthetic 360° videos with known ground truth.
//
// The paper's dataset is 50 real equirectangular videos (Table 2) from
// which Pano extracts object trajectories (Yolo + KCF tracking), region
// luminance, and depth-of-field. This package substitutes a parametric
// scene model: moving textured objects over a structured background with
// controllable luminance dynamics and a depth field. Because the model is
// analytic, the "feature extraction" the paper performs with a neural
// detector is exact here, while the rendered pixels still exercise the
// full encoder/PSPNR path.
package scene

import (
	"fmt"
	"math"

	"pano/internal/frame"
	"pano/internal/geom"
)

// Genre labels match the paper's Table 2 / Figure 13 categories.
type Genre int

// Genres used across the evaluation.
const (
	Sports Genre = iota
	Performance
	Documentary
	Tourism
	Adventure
	Science
	Gaming
)

var genreNames = [...]string{
	"Sports", "Performance", "Documentary", "Tourism", "Adventure", "Science", "Gaming",
}

// String implements fmt.Stringer.
func (g Genre) String() string {
	if int(g) < 0 || int(g) >= len(genreNames) {
		return fmt.Sprintf("Genre(%d)", int(g))
	}
	return genreNames[g]
}

// AllGenres lists every genre in declaration order.
func AllGenres() []Genre {
	return []Genre{Sports, Performance, Documentary, Tourism, Adventure, Science, Gaming}
}

// Object is a moving foreground element. Its position is parametric in
// time: linear yaw/pitch motion plus an optional vertical oscillation
// (a bobbing skier, a bouncing ball).
type Object struct {
	ID       int
	Start    geom.Angle
	VelYaw   float64 // deg/s
	VelPitch float64 // deg/s
	OscAmp   float64 // deg, vertical oscillation amplitude
	OscHz    float64 // oscillation frequency
	SizeDeg  float64 // angular width/height of the (square) object
	Depth    float64 // dioptre; larger = nearer
	Luma     uint8   // base luminance
	Texture  float64 // texture amplitude added on top of Luma
}

// PositionAt returns the object's center direction at time t seconds.
func (o Object) PositionAt(t float64) geom.Angle {
	return geom.Angle{
		Yaw:   geom.NormYaw(o.Start.Yaw + o.VelYaw*t),
		Pitch: geom.ClampPitch(o.Start.Pitch + o.VelPitch*t + o.OscAmp*math.Sin(2*math.Pi*o.OscHz*t)),
	}
}

// SpeedDegS returns the object's angular speed in deg/s (ignoring the
// oscillation term, which averages to zero).
func (o Object) SpeedDegS() float64 {
	return math.Hypot(o.VelYaw, o.VelPitch)
}

// Background describes the static-plus-flicker backdrop.
type Background struct {
	BaseLuma   float64 // mean luminance
	BandAmp    float64 // spatial luminance banding amplitude (over yaw)
	BandCycles float64 // number of bands around the sphere
	FlickerAmp float64 // temporal luminance swing (urban night scenes)
	FlickerHz  float64 // flicker frequency
	Texture    float64 // background texture amplitude
	NearDepth  float64 // dioptre of the nearest background (bottom of view)
}

// Video is a synthetic 360° video: geometry, frame rate, objects, and
// background. All pixel content is a pure function of (x, y, frame),
// seeded deterministically, so two renders of the same video are
// identical.
type Video struct {
	Name        string
	Genre       Genre
	W, H        int
	FPS         int
	DurationSec int
	Seed        uint64
	Objects     []Object
	Bg          Background
}

// Frames returns the total number of frames.
func (v *Video) Frames() int { return v.FPS * v.DurationSec }

// Geometry returns the equirectangular geometry descriptor.
func (v *Video) Geometry() geom.Frame { return geom.Frame{W: v.W, H: v.H} }

// noise is a deterministic per-pixel hash noise in [-1, 1].
func (v *Video) noise(x, y int) float64 {
	h := uint64(x)*0x9e3779b97f4a7c15 ^ uint64(y)*0xc2b2ae3d27d4eb4f ^ v.Seed
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	return float64(h>>11)/(1<<52) - 1
}

// bgLuma returns the analytic background luminance at an angle and time.
func (v *Video) bgLuma(a geom.Angle, t float64) float64 {
	l := v.Bg.BaseLuma
	l += v.Bg.BandAmp * math.Sin(a.Yaw*math.Pi/180*v.Bg.BandCycles)
	if v.Bg.FlickerAmp > 0 {
		// Flicker phase varies across the sphere so different view
		// directions see different brightness at the same instant —
		// the urban night scenario of Figure 2(b).
		phase := a.Yaw * math.Pi / 90
		l += v.Bg.FlickerAmp * math.Sin(2*math.Pi*v.Bg.FlickerHz*t+phase)
	}
	// Sky is brighter than ground.
	l += 20 * math.Sin(a.Pitch*math.Pi/180)
	return l
}

// BgDepthAt returns the background depth (dioptre) at an angle: the sky
// is at optical infinity (0 dioptre) and the ground plane nears the
// viewer toward the nadir.
func (v *Video) BgDepthAt(a geom.Angle) float64 {
	if a.Pitch >= 0 {
		return 0
	}
	return v.Bg.NearDepth * (-a.Pitch / 90)
}

// ObjectAt returns the topmost object covering angle a at time t, or nil.
func (v *Video) ObjectAt(a geom.Angle, t float64) *Object {
	for i := len(v.Objects) - 1; i >= 0; i-- {
		o := &v.Objects[i]
		p := o.PositionAt(t)
		if math.Abs(geom.YawDelta(p.Yaw, a.Yaw)) <= o.SizeDeg/2 &&
			math.Abs(a.Pitch-p.Pitch) <= o.SizeDeg/2 {
			return o
		}
	}
	return nil
}

// LumaAt returns the analytic luminance (before texture noise) at an
// angle and time — the value the video provider stores per tile in the
// manifest.
func (v *Video) LumaAt(a geom.Angle, t float64) float64 {
	if o := v.ObjectAt(a, t); o != nil {
		return float64(o.Luma)
	}
	return clampLuma(v.bgLuma(a, t))
}

// DepthAt returns the depth-of-field (dioptre) at an angle and time.
func (v *Video) DepthAt(a geom.Angle, t float64) float64 {
	if o := v.ObjectAt(a, t); o != nil {
		return o.Depth
	}
	return v.BgDepthAt(a)
}

// RenderFrame renders frame index idx. Frames are rendered on demand and
// never cached here; callers that need repeated access should memoize.
func (v *Video) RenderFrame(idx int) *frame.Frame {
	t := float64(idx) / float64(v.FPS)
	f := frame.New(v.W, v.H)
	g := v.Geometry()

	// Background pass.
	for y := 0; y < v.H; y++ {
		for x := 0; x < v.W; x++ {
			a := g.ToAngle(x, y)
			l := v.bgLuma(a, t) + v.Bg.Texture*v.noise(x, y)
			f.Pix[y*v.W+x] = uint8(clampLuma(l))
		}
	}

	// Object pass (later objects draw on top).
	for oi := range v.Objects {
		o := &v.Objects[oi]
		p := o.PositionAt(t)
		halfW := int(o.SizeDeg / 2 * g.PPDYaw())
		halfH := int(o.SizeDeg / 2 * g.PPDPitch())
		cx, cy := g.ToPixel(p)
		for dy := -halfH; dy <= halfH; dy++ {
			y := cy + dy
			if y < 0 || y >= v.H {
				continue
			}
			for dx := -halfW; dx <= halfW; dx++ {
				x := cx + dx
				// Object texture is anchored to the object so it moves
				// with it (texture coordinates are object-relative).
				l := float64(o.Luma) + o.Texture*v.noise(dx+4096*o.ID, dy)
				f.Set(x, y, uint8(clampLuma(l)))
			}
		}
	}
	return f
}

// MaxObjectSpeed returns the fastest object's angular speed in deg/s,
// or 0 for an empty scene.
func (v *Video) MaxObjectSpeed() float64 {
	var m float64
	for _, o := range v.Objects {
		if s := o.SpeedDegS(); s > m {
			m = s
		}
	}
	return m
}

// Validate performs basic sanity checks on the video description.
func (v *Video) Validate() error {
	switch {
	case v.W <= 0 || v.H <= 0:
		return fmt.Errorf("scene: invalid dimensions %dx%d", v.W, v.H)
	case v.FPS <= 0:
		return fmt.Errorf("scene: invalid fps %d", v.FPS)
	case v.DurationSec <= 0:
		return fmt.Errorf("scene: invalid duration %ds", v.DurationSec)
	}
	for _, o := range v.Objects {
		if o.SizeDeg <= 0 {
			return fmt.Errorf("scene: object %d has non-positive size", o.ID)
		}
		if o.Depth < 0 {
			return fmt.Errorf("scene: object %d has negative depth", o.ID)
		}
	}
	return nil
}

func clampLuma(l float64) float64 {
	if l < 0 {
		return 0
	}
	if l > 255 {
		return 255
	}
	return l
}
