package scene

import (
	"math"
	"testing"

	"pano/internal/geom"
)

func testOpts() Options {
	return Options{W: 120, H: 60, FPS: 10, DurationSec: 4}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Sports, 99, testOpts())
	b := Generate(Sports, 99, testOpts())
	fa := a.RenderFrame(7)
	fb := b.RenderFrame(7)
	for i := range fa.Pix {
		if fa.Pix[i] != fb.Pix[i] {
			t.Fatal("same seed should render identical frames")
		}
	}
	c := Generate(Sports, 100, testOpts())
	fc := c.RenderFrame(7)
	same := true
	for i := range fa.Pix {
		if fa.Pix[i] != fc.Pix[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should render different frames")
	}
}

func TestGenerateAllGenresValid(t *testing.T) {
	for _, g := range AllGenres() {
		v := Generate(g, 1, testOpts())
		if err := v.Validate(); err != nil {
			t.Errorf("%v: %v", g, err)
		}
		if len(v.Objects) == 0 {
			t.Errorf("%v: no objects", g)
		}
		if v.Frames() != 40 {
			t.Errorf("%v: frames = %d, want 40", g, v.Frames())
		}
	}
}

func TestGenreSpeedOrdering(t *testing.T) {
	// Sports/Adventure must be markedly faster than Performance/Science,
	// since the genre split drives Figure 15's per-genre gains.
	fast := 0.0
	slow := 0.0
	for seed := uint64(0); seed < 10; seed++ {
		fast += Generate(Sports, seed, testOpts()).MaxObjectSpeed()
		slow += Generate(Performance, seed, testOpts()).MaxObjectSpeed()
	}
	if fast <= 1.5*slow {
		t.Errorf("sports speed %v should well exceed performance %v", fast/10, slow/10)
	}
}

func TestObjectMotion(t *testing.T) {
	o := Object{Start: geom.Angle{Yaw: 0, Pitch: 0}, VelYaw: 10, VelPitch: 0, SizeDeg: 5}
	p := o.PositionAt(2)
	if math.Abs(p.Yaw-20) > 1e-9 {
		t.Errorf("yaw at t=2: %v, want 20", p.Yaw)
	}
	// Wraps the seam.
	o.Start.Yaw = 170
	p = o.PositionAt(2)
	if math.Abs(p.Yaw-(-170)) > 1e-9 {
		t.Errorf("wrapped yaw: %v, want -170", p.Yaw)
	}
	if got := o.SpeedDegS(); math.Abs(got-10) > 1e-9 {
		t.Errorf("speed = %v, want 10", got)
	}
}

func TestObjectRenderedAtPosition(t *testing.T) {
	v := &Video{
		Name: "t", W: 360, H: 180, FPS: 10, DurationSec: 2, Seed: 5,
		Objects: []Object{{
			ID: 1, Start: geom.Angle{Yaw: 0, Pitch: 0},
			VelYaw: 0, SizeDeg: 20, Luma: 250, Depth: 1,
		}},
		Bg: Background{BaseLuma: 30, NearDepth: 1},
	}
	f := v.RenderFrame(0)
	g := v.Geometry()
	cx, cy := g.ToPixel(geom.Angle{Yaw: 0, Pitch: 0})
	if f.At(cx, cy) < 200 {
		t.Errorf("object center luma = %d, want bright", f.At(cx, cy))
	}
	bx, by := g.ToPixel(geom.Angle{Yaw: 180, Pitch: 0})
	if f.At(bx, by) > 100 {
		t.Errorf("background luma = %d, want dark", f.At(bx, by))
	}
}

func TestLumaAndDepthGroundTruth(t *testing.T) {
	v := &Video{
		Name: "t", W: 360, H: 180, FPS: 10, DurationSec: 2, Seed: 5,
		Objects: []Object{{
			ID: 1, Start: geom.Angle{Yaw: 90, Pitch: 0},
			SizeDeg: 10, Luma: 200, Depth: 2.5,
		}},
		Bg: Background{BaseLuma: 50, NearDepth: 2},
	}
	on := geom.Angle{Yaw: 90, Pitch: 0}
	off := geom.Angle{Yaw: -90, Pitch: 0}
	if got := v.LumaAt(on, 0); got != 200 {
		t.Errorf("LumaAt(object) = %v, want 200", got)
	}
	if got := v.DepthAt(on, 0); got != 2.5 {
		t.Errorf("DepthAt(object) = %v, want 2.5", got)
	}
	if got := v.DepthAt(geom.Angle{Yaw: 0, Pitch: 45}, 0); got != 0 {
		t.Errorf("sky depth = %v, want 0 dioptre", got)
	}
	if got := v.DepthAt(geom.Angle{Yaw: 0, Pitch: -90}, 0); math.Abs(got-2) > 1e-9 {
		t.Errorf("nadir depth = %v, want 2", got)
	}
	if got := v.LumaAt(off, 0); got == 200 {
		t.Error("off-object luma should come from background")
	}
}

func TestObjectAtTopmost(t *testing.T) {
	v := &Video{
		Name: "t", W: 360, H: 180, FPS: 10, DurationSec: 1, Seed: 1,
		Objects: []Object{
			{ID: 1, Start: geom.Angle{}, SizeDeg: 20, Luma: 100, Depth: 1},
			{ID: 2, Start: geom.Angle{}, SizeDeg: 10, Luma: 200, Depth: 2},
		},
		Bg: Background{BaseLuma: 50},
	}
	o := v.ObjectAt(geom.Angle{}, 0)
	if o == nil || o.ID != 2 {
		t.Errorf("topmost object = %v, want ID 2", o)
	}
}

func TestFlickerChangesLuminanceOverTime(t *testing.T) {
	v := Generate(Performance, 3, testOpts())
	if v.Bg.FlickerAmp == 0 {
		t.Skip("profile without flicker")
	}
	a := geom.Angle{Yaw: 45, Pitch: 0}
	l0 := v.bgLuma(a, 0)
	var maxDiff float64
	for ti := 1; ti <= 40; ti++ {
		d := math.Abs(v.bgLuma(a, float64(ti)*0.1) - l0)
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 20 {
		t.Errorf("flicker swing = %v, want ≥ 20 grey levels", maxDiff)
	}
}

func TestValidateRejectsBadVideos(t *testing.T) {
	bad := []*Video{
		{W: 0, H: 10, FPS: 30, DurationSec: 1},
		{W: 10, H: 10, FPS: 0, DurationSec: 1},
		{W: 10, H: 10, FPS: 30, DurationSec: 0},
		{W: 10, H: 10, FPS: 30, DurationSec: 1, Objects: []Object{{SizeDeg: 0}}},
		{W: 10, H: 10, FPS: 30, DurationSec: 1, Objects: []Object{{SizeDeg: 5, Depth: -1}}},
	}
	for i, v := range bad {
		if err := v.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestGenreString(t *testing.T) {
	if Sports.String() != "Sports" || Gaming.String() != "Gaming" {
		t.Error("genre names wrong")
	}
	if Genre(99).String() != "Genre(99)" {
		t.Error("unknown genre format wrong")
	}
}
