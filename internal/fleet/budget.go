package fleet

import "sync"

// Budget is the token bucket guarding hedges and failover retries.
// Every primary request earns `ratio` tokens (capped at `burst`); every
// hedge or failover spends one. With the default ratio 0.1 the fleet
// adds at most ~10% extra origin load no matter how badly a shard
// misbehaves — the property that turns failover into a bounded cost
// instead of a retry storm.
type Budget struct {
	ratio, burst float64

	mu     sync.Mutex
	tokens float64
}

// NewBudget returns a full bucket (a cold start may fail over
// immediately). Non-positive arguments select ratio 0.1 and burst 8.
func NewBudget(ratio, burst float64) *Budget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 8
	}
	return &Budget{ratio: ratio, burst: burst, tokens: burst}
}

// Earn credits one primary request.
func (b *Budget) Earn() {
	b.mu.Lock()
	if b.tokens += b.ratio; b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Spend takes one token; it reports false (and takes nothing) when the
// bucket holds less than a full token.
func (b *Budget) Spend() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Tokens reads the current balance.
func (b *Budget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
