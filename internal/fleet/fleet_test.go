package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pano/internal/client"
	"pano/internal/obs"
	"pano/internal/trace"
)

func TestRingDeterministicAndStable(t *testing.T) {
	origins := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r1 := NewRing(origins, 64)
	r2 := NewRing(origins, 64)
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/video/%d/%d/1.bin", i/12, i%12)
		k := r1.Key(path)
		o1, o2 := r1.Order(k), r2.Order(k)
		if len(o1) != len(origins) {
			t.Fatalf("Order covers %d origins, want %d", len(o1), len(origins))
		}
		seen := map[int]bool{}
		for j := range o1 {
			if o1[j] != o2[j] {
				t.Fatalf("ring order not deterministic for %s: %v vs %v", path, o1, o2)
			}
			if seen[o1[j]] {
				t.Fatalf("duplicate origin in order %v", o1)
			}
			seen[o1[j]] = true
		}
		if r1.Owner(k) != o1[0] {
			t.Fatalf("Owner != Order[0]")
		}
	}
	// Placement hashes origin names, so reordering the list moves no keys.
	rev := NewRing([]string{"http://d:1", "http://c:1", "http://b:1", "http://a:1"}, 64)
	for i := 0; i < 200; i++ {
		k := r1.Key(fmt.Sprintf("/video/%d/0/0.bin", i))
		if origins[r1.Owner(k)] != rev.Origins()[rev.Owner(k)] {
			t.Fatalf("owner moved under origin-list reordering (key %d)", k)
		}
	}
}

func TestRingBalance(t *testing.T) {
	origins := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	r := NewRing(origins, 0)
	counts := make([]int, len(origins))
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Owner(r.Key(fmt.Sprintf("/video/%d/%d/2.bin", i/16, i%16)))]++
	}
	for i, c := range counts {
		if c < n/len(origins)/3 || c > n*2/len(origins) {
			t.Errorf("origin %d owns %d/%d keys; ring badly unbalanced %v", i, c, n, counts)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 2 * time.Second}, 7)
	for i := 0; i < 2; i++ {
		if ok, _ := b.Allow(now); !ok {
			t.Fatal("closed breaker must allow")
		}
		b.Failure(now)
	}
	b.Success(now)
	if b.State(now) != Closed {
		t.Fatal("success must reset the failure streak")
	}
	for i := 0; i < 3; i++ {
		b.Failure(now)
	}
	if b.State(now) != Open {
		t.Fatalf("state after %d consecutive failures = %v, want open", 3, b.State(now))
	}
	if ok, _ := b.Allow(now); ok {
		t.Fatal("open breaker must reject")
	}
	if b.Available(now) {
		t.Fatal("open breaker must be unavailable")
	}
	// After the (jittered: at most 1.25*OpenFor) interval a single probe
	// is admitted; concurrent requests keep being rejected.
	later := now.Add(3 * time.Second)
	if !b.Available(later) {
		t.Fatal("due breaker must be available")
	}
	ok, probe := b.Allow(later)
	if !ok || !probe {
		t.Fatalf("due breaker Allow = (%v, %v), want one probe", ok, probe)
	}
	if ok, _ := b.Allow(later); ok {
		t.Fatal("second concurrent probe admitted")
	}
	// Probe failure reopens; probe success closes.
	b.Failure(later)
	if b.State(later) != Open {
		t.Fatal("failed probe must reopen")
	}
	later = later.Add(3 * time.Second)
	if ok, probe := b.Allow(later); !ok || !probe {
		t.Fatal("reopened breaker must admit a probe after its interval")
	}
	b.Success(later)
	if b.State(later) != Closed {
		t.Fatal("successful probe must close")
	}
	// A cancelled probe releases its slot without deciding health.
	for i := 0; i < 3; i++ {
		b.Failure(later)
	}
	later = later.Add(3 * time.Second)
	if ok, probe := b.Allow(later); !ok || !probe {
		t.Fatal("probe not admitted")
	}
	b.ReleaseProbe()
	if ok, probe := b.Allow(later); !ok || !probe {
		t.Fatal("released probe slot must admit the next probe")
	}
}

func TestBudgetBounds(t *testing.T) {
	b := NewBudget(0.5, 2)
	// Starts full: two spends succeed, the third fails.
	if !b.Spend() || !b.Spend() {
		t.Fatal("fresh bucket must hold its burst")
	}
	if b.Spend() {
		t.Fatal("empty bucket must reject")
	}
	b.Earn()
	if b.Spend() {
		t.Fatal("half a token must not spend")
	}
	b.Earn()
	if !b.Spend() {
		t.Fatal("a full token must spend")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 2 {
		t.Fatalf("bucket exceeded burst: %v", got)
	}
}

// tileBody is the canonical test object.
const tileBody = "tile-bytes"

// newOriginServer serves every path with a counter; fail flips it to
// connection-abort mode (a hard outage).
func newOriginServer(t *testing.T) (*httptest.Server, *atomic.Int64, *atomic.Bool) {
	t.Helper()
	var hits atomic.Int64
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if down.Load() {
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("ETag", `"v1"`)
		w.Write([]byte(tileBody))
	}))
	t.Cleanup(ts.Close)
	return ts, &hits, &down
}

func testConfig(t *testing.T, urls []string) Config {
	return Config{
		Origins: urls,
		Seed:    7,
		Fetch: client.FetchPolicy{
			MaxAttempts:       2,
			BaseBackoff:       time.Millisecond,
			MaxBackoff:        4 * time.Millisecond,
			AttemptTimeout:    2 * time.Second,
			MinAttemptTimeout: 10 * time.Millisecond,
			HedgeDelay:        -1, // most tests exercise failover, not hedging
		},
		Breaker: BreakerConfig{FailureThreshold: 3, OpenFor: 100 * time.Millisecond},
		Obs:     obs.NewRegistry(),
	}
}

func TestNewValidatesOrigins(t *testing.T) {
	for _, bad := range [][]string{
		nil,
		{"not-a-url"},
		{"ftp://host:1"},
		{"http://"},
		{"http://ok:1", "::::"},
	} {
		if _, err := New(Config{Origins: bad}); err == nil {
			t.Errorf("New(%v) accepted", bad)
		}
	}
	f, err := New(Config{Origins: []string{"http://a:1", "https://b"}})
	if err != nil {
		t.Fatalf("valid origins rejected: %v", err)
	}
	f.Close()
}

func TestFetchRoutesAcrossShards(t *testing.T) {
	var urls []string
	var hits []*atomic.Int64
	for i := 0; i < 3; i++ {
		ts, h, _ := newOriginServer(t)
		urls = append(urls, ts.URL)
		hits = append(hits, h)
	}
	f, err := New(testConfig(t, urls))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 60; i++ {
		res, err := f.Fetch(context.Background(), fmt.Sprintf("/video/%d/%d/1.bin", i/12, i%12), "")
		if err != nil || res.Status != 200 || string(res.Body) != tileBody {
			t.Fatalf("fetch %d: %+v err %v", i, res, err)
		}
	}
	for i, h := range hits {
		if h.Load() == 0 {
			t.Errorf("origin %d never hit: consistent hashing is not spreading keys", i)
		}
	}
	// Conditional GET passes the validator through.
	res, err := f.Fetch(context.Background(), "/video/0/0/1.bin", `"v1"`)
	if err != nil || res.ETag != `"v1"` {
		t.Fatalf("etag fetch: %+v err %v", res, err)
	}
}

func TestFailoverOnShardLoss(t *testing.T) {
	var urls []string
	var downs []*atomic.Bool
	for i := 0; i < 3; i++ {
		ts, _, d := newOriginServer(t)
		urls = append(urls, ts.URL)
		downs = append(downs, d)
	}
	cfg := testConfig(t, urls)
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	downs[0].Store(true) // kill shard 0
	for i := 0; i < 40; i++ {
		res, err := f.Fetch(context.Background(), fmt.Sprintf("/video/%d/%d/1.bin", i/12, i%12), "")
		if err != nil || res.Status != 200 {
			t.Fatalf("fetch %d with one dead shard: %+v err %v", i, res, err)
		}
	}
	if got := cfg.Obs.CounterValue("pano_fleet_failovers_total"); got == 0 {
		t.Error("no failovers recorded with a dead shard")
	}
	if got := cfg.Obs.GaugeValue("pano_fleet_origins_open"); got < 1 {
		t.Errorf("origins_open = %v, want >= 1 after sustained failures", got)
	}
	st := f.Snapshot()
	if st[0].Breaker == Closed {
		t.Errorf("dead origin breaker still closed: %+v", st)
	}
	// Recovery: the shard comes back, the half-open probe closes the
	// breaker through regular traffic.
	downs[0].Store(false)
	deadline := time.Now().Add(5 * time.Second)
	for f.Snapshot()[0].Breaker != Closed && time.Now().Before(deadline) {
		for i := 0; i < 12; i++ {
			f.Fetch(context.Background(), fmt.Sprintf("/video/9/%d/1.bin", i), "")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st := f.Snapshot(); st[0].Breaker != Closed {
		t.Errorf("recovered origin breaker never closed: %+v", st)
	}
}

func TestBreakerBoundsDeadOriginTraffic(t *testing.T) {
	var urls []string
	var hits []*atomic.Int64
	var downs []*atomic.Bool
	for i := 0; i < 2; i++ {
		ts, h, d := newOriginServer(t)
		urls = append(urls, ts.URL)
		hits = append(hits, h)
		downs = append(downs, d)
	}
	cfg := testConfig(t, urls)
	cfg.Breaker = BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	downs[0].Store(true)
	for i := 0; i < 200; i++ {
		if _, err := f.Fetch(context.Background(), fmt.Sprintf("/video/%d/%d/1.bin", i/12, i%12), ""); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	// With the breaker latched open for a minute, the dead origin sees
	// only the initial failure streaks, not 1 request per fetch.
	if got := hits[0].Load(); got > 40 {
		t.Errorf("dead origin absorbed %d requests; breaker is not bounding retries", got)
	}
}

func TestHedgedFetchWinsOnSlowPrimary(t *testing.T) {
	var slow atomic.Bool
	var hits0 atomic.Int64
	ts0 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits0.Add(1)
		if slow.Load() && r.URL.Path != "/healthz" {
			time.Sleep(300 * time.Millisecond)
		}
		w.Write([]byte(tileBody))
	}))
	defer ts0.Close()
	ts1, _, _ := newOriginServer(t)

	cfg := testConfig(t, []string{ts0.URL, ts1.URL})
	cfg.Fetch.HedgeDelay = 20 * time.Millisecond
	cfg.Fetch.HedgeBudgetRatio = 1
	cfg.Fetch.HedgeBudgetBurst = 100
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Find a path owned by the slow origin.
	var path string
	for i := 0; ; i++ {
		p := fmt.Sprintf("/video/%d/3/1.bin", i)
		if f.Ring().Owner(f.Ring().Key(p)) == 0 {
			path = p
			break
		}
	}
	slow.Store(true)
	tctx, root := trace.New(trace.Config{Seed: 5}).Start(context.Background(), "test")
	defer root.End()
	t0 := time.Now()
	res, err := f.Fetch(tctx, path, "")
	if err != nil || res.Status != 200 {
		t.Fatalf("hedged fetch: %+v err %v", res, err)
	}
	if d := time.Since(t0); d >= 300*time.Millisecond {
		t.Errorf("hedged fetch took %v; the backup should have won well before the 300ms primary", d)
	}
	if got := cfg.Obs.CounterValue("pano_client_hedge_issued_total"); got != 1 {
		t.Errorf("hedge_issued = %v, want 1", got)
	}
	if got := cfg.Obs.CounterValue("pano_client_hedge_wins_total"); got != 1 {
		t.Errorf("hedge_wins = %v, want 1", got)
	}
	if _, ok := cfg.Obs.CounterExemplar("pano_client_hedge_issued_total"); !ok {
		t.Error("hedge_issued carries no exemplar")
	}
	// The cancelled primary eventually unwinds and is counted.
	deadline := time.Now().Add(2 * time.Second)
	for cfg.Obs.CounterValue("pano_client_hedge_cancelled_total")+
		cfg.Obs.CounterSum("pano_fleet_failures_total") == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBudgetExhaustionStopsRetryStorm(t *testing.T) {
	var urls []string
	var hits []*atomic.Int64
	var downs []*atomic.Bool
	for i := 0; i < 2; i++ {
		ts, h, d := newOriginServer(t)
		urls = append(urls, ts.URL)
		hits = append(hits, h)
		downs = append(downs, d)
		d.Store(true)
	}
	cfg := testConfig(t, urls)
	cfg.Fetch.HedgeBudgetRatio = 0.1
	cfg.Fetch.HedgeBudgetBurst = 3
	cfg.Breaker = BreakerConfig{FailureThreshold: 1000, OpenFor: time.Minute} // isolate the budget
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tctx, root := trace.New(trace.Config{Seed: 5}).Start(context.Background(), "test")
	defer root.End()
	for i := 0; i < 50; i++ {
		if _, err := f.Fetch(tctx, fmt.Sprintf("/video/%d/0/1.bin", i), ""); err == nil {
			t.Fatal("fetch succeeded with every origin down")
		}
	}
	if got := cfg.Obs.CounterValue("pano_fleet_budget_exhausted_total"); got == 0 {
		t.Error("budget never reported exhaustion with every origin down")
	}
	if _, ok := cfg.Obs.CounterExemplar("pano_fleet_budget_exhausted_total"); !ok {
		t.Error("budget_exhausted carries no exemplar")
	}
	// 50 fetches, burst 3, earn 0.1/fetch: ~50 primaries + <=10 budgeted
	// extras per origin pair. Well under a retry storm's 50*2*2.
	total := hits[0].Load() + hits[1].Load()
	if total > 80 {
		t.Errorf("%d origin requests for 50 failed fetches; budget is not bounding retries", total)
	}
}

func TestActiveProbesRecoverIdleFleet(t *testing.T) {
	ts0, _, down := newOriginServer(t)
	ts1, _, _ := newOriginServer(t)
	cfg := testConfig(t, []string{ts0.URL, ts1.URL})
	cfg.ProbeInterval = 30 * time.Millisecond
	cfg.Breaker = BreakerConfig{FailureThreshold: 2, OpenFor: 50 * time.Millisecond}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Probes alone must open the breaker of a dead origin...
	down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for f.Snapshot()[0].Breaker == Closed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := f.Snapshot(); st[0].Breaker == Closed {
		t.Fatalf("probes never opened the dead origin's breaker: %+v", st)
	}
	// ...and close it again after recovery, with zero request traffic.
	down.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for f.Snapshot()[0].Breaker != Closed && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if st := f.Snapshot(); st[0].Breaker != Closed {
		t.Fatalf("probes never closed the recovered origin's breaker: %+v", st)
	}
	if got := cfg.Obs.CounterValue("pano_fleet_probes_total",
		obs.L("origin", "0"), obs.L("result", "up")); got == 0 {
		t.Error("no successful probes recorded")
	}
}

func TestPickAvoidsOpenBreakers(t *testing.T) {
	ts0, _, down := newOriginServer(t)
	ts1, _, _ := newOriginServer(t)
	cfg := testConfig(t, []string{ts0.URL, ts1.URL})
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var path string
	for i := 0; ; i++ {
		p := "/video/" + strconv.Itoa(i) + "/0/0.bin"
		if f.Ring().Owner(f.Ring().Key(p)) == 0 {
			path = p
			break
		}
	}
	if got := f.Pick(path); got != ts0.URL {
		t.Fatalf("Pick = %s, want owner %s", got, ts0.URL)
	}
	down.Store(true)
	f.Fetch(context.Background(), path, "") // trips breaker 0 (threshold 1)
	if got := f.Pick(path); got != ts1.URL {
		t.Errorf("Pick = %s after owner breaker opened, want successor %s", got, ts1.URL)
	}
}

// TestBudgetExhaustionReleasesProbe: when a ladder rung lands on a
// half-open breaker (Allow consumes the single probe slot) and the
// retry budget is dry, Fetch must hand the slot back. In passive-only
// mode (ProbeInterval 0) nothing else ever resets probing, so a leaked
// slot would exclude the origin from Pick/Fetch permanently.
func TestBudgetExhaustionReleasesProbe(t *testing.T) {
	ts0, _, down0 := newOriginServer(t)
	ts1, _, _ := newOriginServer(t)
	cfg := testConfig(t, []string{ts0.URL, ts1.URL})
	cfg.Fetch.HedgeBudgetRatio = 0.001
	cfg.Fetch.HedgeBudgetBurst = 1
	cfg.Breaker = BreakerConfig{FailureThreshold: 1, OpenFor: time.Millisecond}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// A path owned by origin 0, so the ladder reaches origin 1 with
	// tried > 0 (the rung that consults the budget).
	var path string
	for i := 0; ; i++ {
		path = fmt.Sprintf("/video/%d/0/1.bin", i)
		if f.ring.Order(f.ring.Key(path))[0] == 0 {
			break
		}
	}
	down0.Store(true)             // first rung fails, spending no budget
	f.ors[1].brk.Failure(f.now()) // threshold 1: origin 1 opens
	for f.budget.Spend() {        // drain the bucket
	}
	time.Sleep(5 * time.Millisecond) // past the (jittered <= 1.25x) OpenFor

	if _, err := f.Fetch(context.Background(), path, ""); err == nil {
		t.Fatal("fetch succeeded with origin 0 down and a dry budget")
	}
	if got := cfg.Obs.CounterValue("pano_fleet_budget_exhausted_total"); got == 0 {
		t.Fatal("budget never reported exhaustion — scenario did not reach the denied rung")
	}
	if !f.ors[1].brk.Available(f.now()) {
		t.Fatal("budget-exhausted ladder leaked origin 1's half-open probe slot")
	}
}
