package fleet

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pano/internal/client"
	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/trace"
)

// Config assembles a Fleet. Origins is the only required field.
type Config struct {
	// Origins are the origin base URLs (e.g. "http://10.0.0.1:8080").
	Origins []string
	// Vnodes is the virtual-node count per origin on the ring (<= 0
	// selects the default 64).
	Vnodes int
	// Fetch tunes per-attempt deadlines, failover backoff, and hedging
	// (zero value = client.DefaultFetchPolicy).
	Fetch client.FetchPolicy
	// Breaker tunes the per-origin circuit breakers.
	Breaker BreakerConfig
	// ProbeInterval enables active health checking: each origin's
	// /healthz is probed at this (jittered) period. 0 disables active
	// probes; breakers then recover through half-open request traffic.
	ProbeInterval time.Duration
	// Seed drives breaker jitter, probe jitter, and failover backoff
	// jitter.
	Seed uint64
	// HTTP is the shared transport for origin requests and probes
	// (default: one persistent-connection client per origin).
	HTTP *http.Client
	// Obs receives pano_fleet_* and pano_client_hedge_* metrics; Log
	// structured failover/breaker events. Both nil-safe.
	Obs *obs.Registry
	Log *obs.EventLog
	// Now is the wall clock (tests may override).
	Now func() time.Time
}

// origin is one shard: its base URL, raw-fetch client, and breaker.
type origin struct {
	url string
	cli *client.Client
	brk *Breaker
}

// Fleet routes object fetches across a set of origins. See the package
// comment for the full model.
type Fleet struct {
	cfg    Config
	pol    client.FetchPolicy
	ring   *Ring
	ors    []*origin
	budget *Budget
	lat    *latTracker
	now    func() time.Time
	seq    atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// instruments (all nil-safe)
	failovers       *obs.Counter
	failoverSec     *obs.Histogram
	hedgeIssued     *obs.Counter
	hedgeWins       *obs.Counter
	hedgeCancelled  *obs.Counter
	budgetExhausted *obs.Counter
	originsOpen     *obs.Gauge
}

// New validates the origin URLs, builds the ring and breakers, and —
// when cfg.ProbeInterval > 0 — starts the health probers. Close stops
// them.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Origins) == 0 {
		return nil, fmt.Errorf("fleet: no origins configured")
	}
	for _, o := range cfg.Origins {
		u, err := url.Parse(o)
		if err != nil {
			return nil, fmt.Errorf("fleet: bad origin %q: %v", o, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fleet: bad origin %q (want http[s]://host[:port])", o)
		}
	}
	f := &Fleet{
		cfg:  cfg,
		pol:  cfg.Fetch.WithDefaults(),
		ring: NewRing(cfg.Origins, cfg.Vnodes),
		now:  cfg.Now,
		stop: make(chan struct{}),
		lat:  newLatTracker(),
	}
	if f.now == nil {
		f.now = time.Now
	}
	f.budget = NewBudget(f.pol.HedgeBudgetRatio, f.pol.HedgeBudgetBurst)
	for i, u := range cfg.Origins {
		cli := client.New(u)
		if cfg.HTTP != nil {
			cli.HTTP = cfg.HTTP
		}
		f.ors = append(f.ors, &origin{
			url: u,
			cli: cli,
			brk: NewBreaker(cfg.Breaker, cfg.Seed^0xb4ea^uint64(i)*0x9e3779b97f4a7c15),
		})
	}
	reg := cfg.Obs
	f.failovers = reg.Counter("pano_fleet_failovers_total",
		"fetches answered by an origin other than the sole first attempt")
	f.failoverSec = reg.Histogram("pano_fleet_failover_seconds",
		"time from first attempt to a definitive answer, for fetches that needed more than one attempt", nil)
	f.hedgeIssued = reg.Counter("pano_client_hedge_issued_total",
		"hedged backup requests launched after the hedge delay")
	f.hedgeWins = reg.Counter("pano_client_hedge_wins_total",
		"hedged backup requests that answered before the primary")
	f.hedgeCancelled = reg.Counter("pano_client_hedge_cancelled_total",
		"hedged backup requests cancelled because the primary answered first")
	f.budgetExhausted = reg.Counter("pano_fleet_budget_exhausted_total",
		"hedges or failovers suppressed by an empty retry budget")
	f.originsOpen = reg.Gauge("pano_fleet_origins_open",
		"origins whose circuit breaker is currently open")
	if cfg.ProbeInterval > 0 {
		f.startProbes()
	}
	return f, nil
}

// Origins returns the configured origin URLs (index = origin id).
func (f *Fleet) Origins() []string { return f.cfg.Origins }

// Ring exposes the placement ring (read-only).
func (f *Fleet) Ring() *Ring { return f.ring }

// Close stops the health probers and waits for them.
func (f *Fleet) Close() {
	f.stopOnce.Do(func() { close(f.stop) })
	f.wg.Wait()
}

// Pick returns the base URL of the first available origin in path's
// ring order — the routing decision without a request attached (the
// edge's passthrough proxy uses it). With every breaker open it falls
// back to the key's owner.
func (f *Fleet) Pick(path string) string {
	order := f.ring.Order(f.ring.Key(path))
	now := f.now()
	for _, idx := range order {
		if f.ors[idx].brk.Available(now) {
			return f.ors[idx].url
		}
	}
	return f.ors[order[0]].url
}

// OriginState is one origin's health snapshot.
type OriginState struct {
	URL     string       `json:"url"`
	Breaker BreakerState `json:"-"`
	State   string       `json:"state"`
	Tokens  float64      `json:"-"`
}

// Snapshot reports every origin's breaker state (for /debug surfaces
// and tests).
func (f *Fleet) Snapshot() []OriginState {
	now := f.now()
	out := make([]OriginState, len(f.ors))
	for i, o := range f.ors {
		st := o.brk.State(now)
		out[i] = OriginState{URL: o.url, Breaker: st, State: st.String(), Tokens: f.budget.Tokens()}
	}
	return out
}

// refreshGauges republishes the open-breaker count after a state-moving
// event.
func (f *Fleet) refreshGauges() {
	if f.cfg.Obs == nil {
		return
	}
	now := f.now()
	open := 0
	for i, o := range f.ors {
		st := o.brk.State(now)
		if st == Open {
			open++
		}
		f.cfg.Obs.Gauge("pano_fleet_breaker_state",
			"per-origin breaker position (0 closed, 1 half-open, 2 open)",
			obs.L("origin", strconv.Itoa(i))).Set(float64(st))
	}
	f.originsOpen.Set(float64(open))
}

// hedgeDelay resolves the backup-request delay: a fixed positive
// HedgeDelay, or the adaptive p95 of recent fetch latencies clamped to
// [HedgeMinDelay, HedgeMaxDelay].
func (f *Fleet) hedgeDelay() time.Duration {
	if f.pol.HedgeDelay > 0 {
		return f.pol.HedgeDelay
	}
	d := f.lat.p95()
	if d < f.pol.HedgeMinDelay {
		d = f.pol.HedgeMinDelay
	}
	if d > f.pol.HedgeMaxDelay {
		d = f.pol.HedgeMaxDelay
	}
	return d
}

// attemptResult is one origin request's outcome.
type attemptResult struct {
	res   client.RawResult
	err   error
	hedge bool
	idx   int
}

// Fetch routes one conditional GET through the fleet: the key's ring
// order is the failover ladder, each failed origin advances to the
// next (spending budget), full rounds back off like the client's retry
// ladder, and while a primary request is in flight a hedged backup may
// race it. It returns the first definitive origin answer; like
// client.FetchRaw, ctx cancellation and exhaustion (of attempts or
// budget) are the only error paths.
func (f *Fleet) Fetch(ctx context.Context, path, etag string) (client.RawResult, error) {
	ctx, span := trace.StartSpan(ctx, "fleet.route", trace.A("path", path))
	defer span.End()
	key := f.ring.Key(path)
	order := f.ring.Order(key)
	span.Annotate("owner", order[0])

	f.budget.Earn()
	rng := mathx.NewRNG(f.cfg.Seed ^ key ^ f.seq.Add(1)*0x9e3779b97f4a7c15)
	start := f.now()
	var lastErr error
	tried := 0
	for round := 0; round < f.pol.MaxAttempts; round++ {
		for oi, idx := range order {
			o := f.ors[idx]
			allowed, probe := o.brk.Allow(f.now())
			if !allowed {
				continue
			}
			// Every request beyond the first spends failover budget; a
			// dry bucket ends the ladder instead of piling load onto a
			// struggling fleet.
			if tried > 0 && !f.budget.Spend() {
				if probe {
					// The half-open probe slot was consumed by Allow but
					// no request will resolve it; give it back or the
					// breaker stays wedged half-open (permanently so in
					// passive-only mode, where no active prober runs).
					o.brk.ReleaseProbe()
				}
				f.budgetExhausted.IncExemplar(span.TraceHex())
				span.SetError("budget_exhausted")
				return client.RawResult{}, fmt.Errorf("fleet: %s: retry budget exhausted after %d attempts: %w", path, tried, lastErr)
			}
			tried++
			var backup *origin
			var backupIdx int
			if !probe {
				backup, backupIdx = f.nextAvailable(order, oi)
			}
			res, err := f.attempt(ctx, span, path, etag, o, idx, backup, backupIdx, probe)
			if err == nil {
				span.Annotate("origin", res.idx)
				span.Annotate("attempts", tried)
				if tried > 1 || res.idx != idx || res.hedge {
					f.failovers.Inc()
				}
				if tried > 1 {
					f.failoverSec.ObserveExemplar(f.now().Sub(start).Seconds(), span.TraceHex())
				}
				return res.res, nil
			}
			lastErr = err
			if ctx.Err() != nil {
				return client.RawResult{}, ctx.Err()
			}
			f.cfg.Log.Logger().Warn("fleet_failover",
				"path", path, "origin", idx, "class", client.ErrorClass(err))
		}
		if round < f.pol.MaxAttempts-1 {
			if err := sleepCtx(ctx, f.pol.Backoff(round, rng)); err != nil {
				return client.RawResult{}, err
			}
		}
	}
	span.SetError(client.ErrorClass(lastErr))
	if lastErr == nil {
		lastErr = fmt.Errorf("all origin breakers open")
	}
	return client.RawResult{}, fmt.Errorf("fleet: %s: all origins failed: %w", path, lastErr)
}

// nextAvailable finds the hedge target: the first origin after position
// oi in ring order whose breaker would accept a request.
func (f *Fleet) nextAvailable(order []int, oi int) (*origin, int) {
	now := f.now()
	for i := oi + 1; i < len(order); i++ {
		if o := f.ors[order[i]]; o.brk.Available(now) {
			return o, order[i]
		}
	}
	return nil, -1
}

// attempt issues one primary request to o and, if it is still in
// flight after the hedge delay, races one budget-guarded backup request
// against the next replica; first definitive answer wins and the loser
// is cancelled.
func (f *Fleet) attempt(ctx context.Context, span *trace.Span, path, etag string,
	o *origin, idx int, backup *origin, backupIdx int, probe bool) (attemptResult, error) {

	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan attemptResult, 2)
	launch := func(o *origin, idx int, hedge, probe bool) {
		name := "fleet.fetch"
		if hedge {
			name = "fleet.hedge"
		}
		rctx, sp := trace.StartSpan(actx, name, trace.A("origin", idx))
		t0 := f.now()
		res, err := f.fetchOnce(rctx, o, path, etag)
		d := f.now().Sub(t0)
		now := f.now()
		switch {
		case err == nil:
			o.brk.Success(now)
			f.lat.observe(d)
		case actx.Err() != nil:
			// Cancelled from outside (the race was decided, or the
			// caller gave up): not an origin health signal.
			if probe {
				o.brk.ReleaseProbe()
			}
			if hedge {
				f.hedgeCancelled.IncExemplar(sp.TraceHex())
			}
			sp.SetError("cancelled")
		default:
			o.brk.Failure(now)
			f.originFailure(idx, err)
			sp.SetError(client.ErrorClass(err))
		}
		f.refreshGauges()
		sp.End()
		ch <- attemptResult{res: res, err: err, hedge: hedge, idx: idx}
	}

	f.countRequest(idx)
	go launch(o, idx, false, probe)
	pending := 1

	var hedgeC <-chan time.Time
	if backup != nil && f.pol.HedgingEnabled() && !probe {
		t := time.NewTimer(f.hedgeDelay())
		defer t.Stop()
		hedgeC = t.C
	}
	var firstErr error
	for {
		select {
		case <-hedgeC:
			hedgeC = nil
			ballowed, bprobe := backup.brk.Allow(f.now())
			if !ballowed {
				continue
			}
			if !f.budget.Spend() {
				if bprobe {
					backup.brk.ReleaseProbe()
				}
				f.budgetExhausted.IncExemplar(span.TraceHex())
				continue
			}
			f.hedgeIssued.IncExemplar(span.TraceHex())
			f.countRequest(backupIdx)
			go launch(backup, backupIdx, true, bprobe)
			pending++
		case r := <-ch:
			pending--
			if r.err == nil {
				cancel() // first definitive answer wins; the loser unwinds as cancelled
				if r.hedge {
					f.hedgeWins.IncExemplar(span.TraceHex())
					f.cfg.Log.Logger().Info("fleet_hedge_win", "path", path, "origin", r.idx)
				}
				return r, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if pending == 0 {
				return attemptResult{}, firstErr
			}
		case <-ctx.Done():
			return attemptResult{}, ctx.Err()
		}
	}
}

// fetchOnce is a single-attempt FetchRaw against one origin: retries
// across attempts and origins belong to the fleet ladder, not the
// per-origin client.
func (f *Fleet) fetchOnce(ctx context.Context, o *origin, path, etag string) (client.RawResult, error) {
	pol := f.pol
	pol.MaxAttempts = 1
	return o.cli.FetchRaw(ctx, path, etag, pol, nil)
}

func (f *Fleet) countRequest(idx int) {
	f.cfg.Obs.Counter("pano_fleet_requests_total",
		"origin requests issued by the fleet (primaries, failovers, and hedges)",
		obs.L("origin", strconv.Itoa(idx))).Inc()
}

func (f *Fleet) originFailure(idx int, err error) {
	f.cfg.Obs.Counter("pano_fleet_failures_total",
		"origin requests that failed, by origin and error class",
		obs.L("origin", strconv.Itoa(idx)), obs.L("class", client.ErrorClass(err))).Inc()
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// latTracker keeps a small reservoir of recent successful fetch
// latencies and reports their p95 for the adaptive hedge delay.
type latTracker struct {
	mu   sync.Mutex
	buf  [128]time.Duration
	n    int // filled entries
	next int // ring write position
}

func newLatTracker() *latTracker { return &latTracker{} }

func (l *latTracker) observe(d time.Duration) {
	l.mu.Lock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
	l.mu.Unlock()
}

// p95 returns the 95th percentile of the reservoir (0 when empty — the
// caller clamps to HedgeMinDelay).
func (l *latTracker) p95() time.Duration {
	l.mu.Lock()
	n := l.n
	scratch := make([]time.Duration, n)
	copy(scratch, l.buf[:n])
	l.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	i := n * 95 / 100
	if i >= n {
		i = n - 1
	}
	return scratch[i]
}
