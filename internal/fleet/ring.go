// Package fleet is the multi-origin delivery layer: a consistent-hash
// ring shards (video, chunk, tile) object keys across N origins, active
// health probes and passive error signals drive a per-origin circuit
// breaker, and fetches fail over along the ring's successor order —
// optionally racing a hedged backup request — under a token-bucket
// retry/hedge budget so shard loss never becomes a retry storm.
//
// The edge proxy routes its cache fills through a Fleet instead of a
// single origin URL; the swarm simulator reuses the ring, breaker, and
// budget with virtual time to replay whole-origin outages
// deterministically at 100k+ sessions.
package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultVnodes is the virtual-node count per origin. 64 vnodes keep
// the key share per origin within a few percent of uniform for small
// fleets while the ring stays tiny (N*64 entries).
const defaultVnodes = 64

// Ring is a consistent-hash ring over origin names with virtual nodes.
// It is immutable after construction.
type Ring struct {
	origins []string
	vn      []vnode
}

type vnode struct {
	h uint64
	o int32
}

// NewRing builds a ring with the given virtual-node count per origin
// (<= 0 selects the default). Origins hash by name, so the mapping of
// keys to origins is stable under reordering of the origin list.
func NewRing(origins []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	r := &Ring{origins: append([]string(nil), origins...)}
	for i, org := range r.origins {
		for v := 0; v < vnodes; v++ {
			r.vn = append(r.vn, vnode{h: hashKey(org + "#" + strconv.Itoa(v)), o: int32(i)})
		}
	}
	sort.Slice(r.vn, func(i, j int) bool {
		if r.vn[i].h != r.vn[j].h {
			return r.vn[i].h < r.vn[j].h
		}
		return r.vn[i].o < r.vn[j].o
	})
	return r
}

// Origins returns the configured origin names (index = origin id).
func (r *Ring) Origins() []string { return r.origins }

// Key hashes an object path into a ring key.
func (r *Ring) Key(path string) uint64 { return hashKey(path) }

// hashKey is fnv-64a finished with a splitmix64 avalanche: fnv alone
// clusters similar short strings ("origin#0".."origin#63") badly enough
// to skew vnode placement by 3x, and the finalizer restores a uniform
// spread.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner returns the origin id owning key: the origin of the first
// virtual node at or clockwise after the key.
func (r *Ring) Owner(key uint64) int { return r.Order(key)[0] }

// Order returns every origin id in deterministic ring order starting at
// the key's owner — the failover ladder for that key. Successive keys
// spread both their owners and their fallback targets across the fleet,
// so losing one shard redistributes its load instead of dogpiling a
// single neighbour.
func (r *Ring) Order(key uint64) []int {
	n := len(r.origins)
	out := make([]int, 0, n)
	if n == 0 {
		return out
	}
	seen := make([]bool, n)
	start := sort.Search(len(r.vn), func(i int) bool { return r.vn[i].h >= key })
	for i := 0; i < len(r.vn) && len(out) < n; i++ {
		v := r.vn[(start+i)%len(r.vn)]
		if !seen[v.o] {
			seen[v.o] = true
			out = append(out, int(v.o))
		}
	}
	return out
}
