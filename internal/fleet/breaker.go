package fleet

import (
	"sync"
	"time"

	"pano/internal/mathx"
)

// BreakerState is a circuit breaker's position.
type BreakerState int32

const (
	// Closed passes traffic and counts consecutive failures.
	Closed BreakerState = iota
	// HalfOpen admits exactly one probe request; its outcome decides
	// between Closed and Open.
	HalfOpen
	// Open rejects traffic until the (jittered) open interval elapses.
	Open
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case HalfOpen:
		return "half_open"
	default:
		return "open"
	}
}

// BreakerConfig tunes one origin's circuit breaker. The zero value
// selects the defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens a
	// closed breaker (default 5).
	FailureThreshold int
	// OpenFor is the base interval an open breaker rejects traffic
	// before admitting a half-open probe (default 2s).
	OpenFor time.Duration
	// JitterFrac spreads each open interval uniformly within
	// ±JitterFrac/2 of OpenFor (default 0.5), so a fleet of breakers
	// opened by the same outage doesn't probe in lockstep. The jitter
	// is drawn from a seeded RNG, which keeps swarm runs deterministic.
	JitterFrac float64
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 2 * time.Second
	}
	if c.JitterFrac <= 0 {
		c.JitterFrac = 0.5
	}
	return c
}

// Breaker is a closed → open → half-open circuit breaker. It never
// reads a clock itself — callers pass `now` in — so the same type
// serves the HTTP fleet under wall time and the swarm under virtual
// time.
type Breaker struct {
	cfg BreakerConfig

	mu      sync.Mutex
	rng     *mathx.RNG
	state   BreakerState
	fails   int
	until   time.Time // Open: when the next half-open probe is due
	probing bool      // HalfOpen: the single probe slot is taken
}

// NewBreaker returns a closed breaker; seed drives the open-interval
// jitter.
func NewBreaker(cfg BreakerConfig, seed uint64) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), rng: mathx.NewRNG(seed)}
}

// Allow reports whether a request may go to this origin now. When the
// breaker transitions open → half-open, ok comes with probe=true and
// the single probe slot is consumed: the caller MUST resolve it with
// Success or Failure, and concurrent requests are rejected until it
// does.
func (b *Breaker) Allow(now time.Time) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true, false
	case Open:
		if now.Before(b.until) {
			return false, false
		}
		b.state = HalfOpen
		b.probing = true
		return true, true
	default: // HalfOpen
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// Available reports whether the origin would currently accept a request
// without consuming the half-open probe slot — the read-only form of
// Allow for routing decisions that don't issue a request themselves.
func (b *Breaker) Available(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Open:
		return !now.Before(b.until)
	case HalfOpen:
		return !b.probing
	default:
		return true
	}
}

// ReleaseProbe returns an unresolved half-open probe slot — the probe
// request was cancelled before the origin answered, which is neither a
// success nor a health failure.
func (b *Breaker) ReleaseProbe() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Success records a request that reached the origin and got a
// definitive answer. It closes a half-open breaker and resets the
// failure streak.
func (b *Breaker) Success(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.fails = 0
	b.probing = false
}

// Failure records a request the origin failed to answer. A half-open
// probe failure reopens immediately; a closed breaker opens once the
// consecutive-failure streak reaches the threshold.
func (b *Breaker) Failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.fails++
	if b.state == HalfOpen || b.fails >= b.cfg.FailureThreshold {
		b.state = Open
		b.fails = 0
		b.until = now.Add(b.openFor())
	}
}

// openFor draws the jittered open interval.
func (b *Breaker) openFor() time.Duration {
	j := b.cfg.JitterFrac
	return time.Duration(float64(b.cfg.OpenFor) * (1 - j/2 + j*b.rng.Float64()))
}

// State returns the breaker's position, resolving a due open → half-open
// transition so observers see "half_open" once the probe window starts.
func (b *Breaker) State(now time.Time) BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && !now.Before(b.until) {
		return HalfOpen
	}
	return b.state
}
