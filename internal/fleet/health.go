package fleet

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"pano/internal/mathx"
	"pano/internal/obs"
)

// startProbes launches one health prober per origin. Each prober GETs
// the origin's /healthz at a jittered ProbeInterval and feeds the
// outcome to the breaker — so an open breaker recovers (and a quiet
// fleet notices an outage) without waiting for request traffic. The
// jitter is seeded, so two fleets with the same seed probe on the same
// schedule.
func (f *Fleet) startProbes() {
	for i := range f.ors {
		f.wg.Add(1)
		go func(i int, o *origin) {
			defer f.wg.Done()
			rng := mathx.NewRNG(f.cfg.Seed ^ 0x9ab5 ^ uint64(i)*0x9e3779b97f4a7c15)
			for {
				iv := time.Duration(float64(f.cfg.ProbeInterval) * (0.75 + 0.5*rng.Float64()))
				t := time.NewTimer(iv)
				select {
				case <-f.stop:
					t.Stop()
					return
				case <-t.C:
				}
				f.probe(i, o)
			}
		}(i, f.ors[i])
	}
}

// probe issues one /healthz GET with a deadline of half the probe
// interval, clamped to [1s, 2s] — the floor keeps a short probe period
// from doubling as an aggressive latency SLO that marks merely-loaded
// origins dead. The probe loop waits for each probe to finish, so a
// timeout longer than the interval stretches the period instead of
// piling up probes.
func (f *Fleet) probe(i int, o *origin) {
	timeout := f.cfg.ProbeInterval / 2
	if timeout < time.Second {
		timeout = time.Second
	}
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.url+"/healthz", nil)
	if err != nil {
		return
	}
	hc := f.cfg.HTTP
	if hc == nil {
		hc = o.cli.HTTP
	}
	ok := false
	if resp, err := hc.Do(req); err == nil {
		ok = resp.StatusCode == http.StatusOK
		resp.Body.Close()
	}
	now := f.now()
	was := o.brk.State(now)
	result := "down"
	if ok {
		o.brk.Success(now)
		result = "up"
	} else {
		o.brk.Failure(now)
	}
	if is := o.brk.State(now); is != was {
		f.cfg.Log.Logger().Warn("fleet_breaker",
			"origin", i, "url", o.url, "from", was.String(), "to", is.String(), "probe", result)
	}
	f.cfg.Obs.Counter("pano_fleet_probes_total",
		"active health probes by origin and result",
		obs.L("origin", strconv.Itoa(i)), obs.L("result", result)).Inc()
	f.refreshGauges()
}
