package player

import (
	"pano/internal/abr"
	"pano/internal/manifest"
	"pano/internal/obs"
)

// instrumentedPlanner wraps a Planner with per-call timing and
// counting, keyed by planner name.
type instrumentedPlanner struct {
	Planner
	lat   *obs.Histogram
	plans *obs.Counter
}

// Instrument wraps p so each Plan call is timed into
// pano_planner_plan_seconds{planner=...} and counted into
// pano_planner_plans_total{planner=...}. With a nil registry it
// returns p unchanged, so it is always safe to call.
func Instrument(p Planner, reg *obs.Registry) Planner {
	if reg == nil || p == nil {
		return p
	}
	lbl := obs.L("planner", p.Name())
	return &instrumentedPlanner{
		Planner: p,
		lat: reg.Histogram("pano_planner_plan_seconds",
			"tile-level allocation latency by planner", nil, lbl),
		plans: reg.Counter("pano_planner_plans_total",
			"tile-level allocation calls by planner", lbl),
	}
}

func (ip *instrumentedPlanner) Plan(m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	t := obs.NewTimer(ip.lat)
	a := ip.Planner.Plan(m, k, view, budget)
	t.ObserveDuration()
	ip.plans.Inc()
	return a
}
