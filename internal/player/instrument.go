package player

import (
	"context"

	"pano/internal/abr"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/trace"
)

// instrumentedPlanner wraps a Planner with per-call timing and
// counting, keyed by planner name.
type instrumentedPlanner struct {
	Planner
	lat   *obs.Histogram
	plans *obs.Counter
}

// Instrument wraps p so each Plan call is timed into
// pano_planner_plan_seconds{planner=...} and counted into
// pano_planner_plans_total{planner=...}. With a nil registry it
// returns p unchanged, so it is always safe to call.
func Instrument(p Planner, reg *obs.Registry) Planner {
	if reg == nil || p == nil {
		return p
	}
	lbl := obs.L("planner", p.Name())
	return &instrumentedPlanner{
		Planner: p,
		lat: reg.Histogram("pano_planner_plan_seconds",
			"tile-level allocation latency by planner", nil, lbl),
		plans: reg.Counter("pano_planner_plans_total",
			"tile-level allocation calls by planner", lbl),
	}
}

func (ip *instrumentedPlanner) Plan(m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	t := obs.NewTimer(ip.lat)
	a := ip.Planner.Plan(m, k, view, budget)
	t.ObserveDuration()
	ip.plans.Inc()
	return a
}

// PlanCtx is Plan under a context: the per-tile quality assignment runs
// inside a child "assign" span of the context's chunk span (§6.1's
// PSPNR assignment step), and the latency observation carries the trace
// id as an exemplar so a slow assignment bucket links to its trace.
func (ip *instrumentedPlanner) PlanCtx(ctx context.Context, m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	_, sp := trace.StartSpan(ctx, "assign",
		trace.A("planner", ip.Planner.Name()), trace.A("budget_bits", budget))
	t := obs.NewTimer(nil)
	a := ip.Planner.Plan(m, k, view, budget)
	d := t.ObserveDuration()
	sp.Annotate("tiles", len(a))
	sp.End()
	ip.lat.ObserveExemplar(d.Seconds(), sp.TraceHex())
	ip.plans.Inc()
	return a
}

// ctxPlanner is the optional context-carrying planner surface.
type ctxPlanner interface {
	PlanCtx(ctx context.Context, m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation
}

// PlanWithContext routes a Plan call through the planner's PlanCtx when
// it has one (the instrumented wrapper does), so the allocation is
// traced and exemplar-linked; otherwise it wraps the plain Plan in an
// "assign" span itself. Behaviour is identical either way.
func PlanWithContext(ctx context.Context, p Planner, m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	if cp, ok := p.(ctxPlanner); ok {
		return cp.PlanCtx(ctx, m, k, view, budget)
	}
	_, sp := trace.StartSpan(ctx, "assign", trace.A("planner", p.Name()), trace.A("budget_bits", budget))
	a := p.Plan(m, k, view, budget)
	sp.Annotate("tiles", len(a))
	sp.End()
	return a
}
