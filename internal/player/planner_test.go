package player

import (
	"testing"

	"pano/internal/codec"
	"pano/internal/jnd"
)

func TestPlannerNames(t *testing.T) {
	if NewPanoPlanner().Name() != "pano" {
		t.Error("pano planner name")
	}
	trad := NewPanoPlanner()
	trad.Traditional = true
	if trad.Name() != "pano-traditional-jnd" {
		t.Error("traditional planner name")
	}
	if NewViewportPlanner("flare").Name() != "flare" {
		t.Error("viewport planner name")
	}
	if (WholePlanner{}).Name() != "whole-video" {
		t.Error("whole planner name")
	}
}

func TestTraditionalAblationIgnoresMotion(t *testing.T) {
	// With Traditional set, the plan must be identical whether the
	// viewpoint is static or fast-moving (same center), because the
	// action ratio is forced to 1.
	m, tr := fixture(t)
	est := NewEstimator()
	slow := est.View(m, tr, 1, 0.5)
	slow.SpeedLB = 0
	fast := slow
	fast.SpeedLB = 25

	trad := NewPanoPlanner()
	trad.Traditional = true
	budget := m.ChunkBits(1, codec.Level(2))
	a := trad.Plan(m, 1, slow, budget)
	b := trad.Plan(m, 1, fast, budget)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("traditional planner should ignore viewpoint speed")
		}
	}
	// The full planner must react to the speed change.
	full := NewPanoPlanner()
	c := full.Plan(m, 1, slow, budget)
	d := full.Plan(m, 1, fast, budget)
	same := true
	for i := range c {
		if c[i] != d[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("full planner should react to viewpoint speed")
	}
}

func TestPanoPlannerNilProfileDefaults(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	view := est.View(m, tr, 0, 0)
	pl := &PanoPlanner{} // nil Profile, zero Hedge: defaults apply
	alloc := pl.Plan(m, 0, view, m.ChunkBits(0, codec.Level(2)))
	if len(alloc) != len(m.Chunks[0].Tiles) {
		t.Fatal("nil-profile planner should still allocate")
	}
}

func TestViewportPSPNRNilProfileIsTraditional(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	actual := est.ActualView(m, tr, 1)
	actual.SpeedLB = 20 // strong motion
	n := len(m.Chunks[1].Tiles)
	alloc := make([]codec.Level, n)
	for i := range alloc {
		alloc[i] = codec.Level(codec.NumLevels - 1)
	}
	with := ViewportPSPNR(m, 1, alloc, actual, jnd.Default())
	without := ViewportPSPNR(m, 1, alloc, actual, nil)
	if with < without {
		t.Errorf("360JND PSPNR %v should be >= traditional %v under motion", with, without)
	}
}

func TestViewportPSNRRange(t *testing.T) {
	m, tr := fixture(t)
	actual := NewEstimator().ActualView(m, tr, 1)
	n := len(m.Chunks[1].Tiles)
	best := make([]codec.Level, n)
	worst := make([]codec.Level, n)
	for i := range worst {
		worst[i] = codec.Level(codec.NumLevels - 1)
	}
	pb := ViewportPSNR(m, 1, best, actual.Center)
	pw := ViewportPSNR(m, 1, worst, actual.Center)
	if pb <= pw {
		t.Errorf("PSNR best %v should exceed worst %v", pb, pw)
	}
	if pw <= 0 || pb > 100 {
		t.Errorf("PSNR out of range: %v %v", pw, pb)
	}
}

func TestFramePSPNRProperties(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	actual := est.ActualView(m, tr, 1)
	n := len(m.Chunks[1].Tiles)
	best := make([]codec.Level, n)
	worst := make([]codec.Level, n)
	for i := range worst {
		worst[i] = codec.Level(codec.NumLevels - 1)
	}
	prof := jnd.Default()
	pb := FramePSPNR(m, 1, best, actual, prof)
	pw := FramePSPNR(m, 1, worst, actual, prof)
	if pb <= pw {
		t.Errorf("best-levels frame PSPNR %v should exceed worst %v", pb, pw)
	}
	// 360JND never scores below the traditional content-only PSPNR.
	actual.SpeedLB = 15
	with := FramePSPNR(m, 1, worst, actual, prof)
	without := FramePSPNR(m, 1, worst, actual, nil)
	if with < without {
		t.Errorf("360JND frame PSPNR %v below traditional %v", with, without)
	}
	// PSNR ordering too.
	if FramePSNR(m, 1, best) <= FramePSNR(m, 1, worst) {
		t.Error("frame PSNR should improve with better levels")
	}
}

func TestBestGuessViewUsesCurrentSpeed(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	now := 2.0
	guess := est.BestGuessView(m, tr, 3, now)
	if got, want := guess.SpeedLB, tr.SpeedAt(now); got != want {
		t.Errorf("best guess speed = %v, want current %v", got, want)
	}
	// The conservative view never exceeds the best guess.
	view := est.View(m, tr, 3, now)
	if view.SpeedLB > guess.SpeedLB+1e-9 {
		t.Errorf("lower bound %v exceeds best guess %v", view.SpeedLB, guess.SpeedLB)
	}
}
