// Package player implements the client-side adaptation logic of §6–7:
// viewpoint-driven factor estimation from the manifest, the PSPNR
// estimator backed by the compressed lookup table, and the per-tile
// quality planners for Pano and the baselines (Flare-style
// viewport-driven, ClusTile, whole-video).
//
// Everything here is pure computation over the manifest and the
// client's own viewpoint history — no pixels and no network — which is
// exactly the information a DASH client legitimately has (§6.2).
package player

import (
	"math"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/quality"
)

// ChunkView captures what the client believes about the viewpoint for
// an upcoming chunk: the predicted center and the conservative factor
// estimates of §6.1.
type ChunkView struct {
	// Center is the predicted viewpoint at the chunk's midpoint.
	Center geom.Angle
	// SpeedLB is the conservative lower bound of viewpoint speed
	// (deg/s): the minimum observed over the recent window.
	SpeedLB float64
	// LumaChange is the luminance change of the viewport over the last
	// ~5 s (grey levels), a lower-bound style estimate.
	LumaChange float64
	// FocusDoF is the depth-of-field at the predicted viewpoint
	// (dioptre), from the tile the viewpoint lands in.
	FocusDoF float64
}

// TileAt returns the index of the chunk's tile containing angle a, or 0
// if no tile matches (which cannot happen on a valid manifest).
func TileAt(m *manifest.Video, k int, a geom.Angle) int {
	g := geom.Frame{W: m.W, H: m.H}
	x, y := g.ToPixel(a)
	for i, t := range m.Chunks[k].Tiles {
		if t.Rect.Contains(x, y) {
			return i
		}
	}
	return 0
}

// FactorsFor derives the 360JND factors for one tile of chunk k under a
// predicted view, using only manifest information:
//
//   - relative speed: the viewpoint's lower-bound speed against the
//     tile's mean object speed. The bound keeps the estimate
//     conservative — an underestimated ratio yields a higher-than-
//     necessary quality, never a visible degradation (§6.1).
//   - DoF difference: |tile DoF − focused DoF|.
//   - luminance change: the viewport's recent luminance swing.
func FactorsFor(t *manifest.Tile, view ChunkView) jnd.Factors {
	rel := view.SpeedLB - t.ObjSpeedDeg
	if rel < 0 {
		// The object may be moving with the viewpoint: the
		// conservative relative speed is zero.
		rel = 0
	}
	return jnd.Factors{
		SpeedDegS:  rel,
		DoFDiff:    math.Abs(t.AvgDoF - view.FocusDoF),
		LumaChange: view.LumaChange,
	}
}

// EstimatePSPNR returns the client's PSPNR estimate for a tile at a
// level given an action ratio, via the manifest's compressed lookup
// table (§6.2): the online half of Figure 11.
func EstimatePSPNR(t *manifest.Tile, l codec.Level, actionRatio float64) float64 {
	return t.LUT[l].PSPNR(t.RefPSPNR[l], actionRatio)
}

// PMSEFromPSPNR inverts Equation 1 so estimates can be aggregated
// area-weighted.
func PMSEFromPSPNR(p float64) float64 {
	if p >= quality.PSPNRCap {
		return 0
	}
	// 255² · 10^(-p/10), via Exp: this sits in the innermost loop of
	// every planner (tiles × levels × chunks × sessions) and Exp is
	// ~3x cheaper than Pow at the same double precision.
	return 65025 * math.Exp(-p*(math.Ln10/10))
}

// Visibility returns the fraction of the tile covered by the viewport
// footprint around center, expanded by padDeg on each side to absorb
// prediction error, blended with a smooth angular-distance falloff so
// tiles just beyond the pad keep a graded weight (viewpoint prediction
// can be tens of degrees off; a hard cutoff makes misses catastrophic).
// The result is floored at floor so even antipodal tiles retain a
// baseline quality.
func Visibility(m *manifest.Video, t *manifest.Tile, center geom.Angle, padDeg, floor float64) float64 {
	vp := geom.Viewport{
		Center:    center,
		WidthDeg:  110 + 2*padDeg,
		HeightDeg: 90 + 2*padDeg,
	}
	g := geom.Frame{W: m.W, H: m.H}
	overlap := 0
	for _, r := range vp.Footprint(g) {
		overlap += t.Rect.OverlapArea(r)
	}
	v := float64(overlap) / float64(t.Rect.Area())

	// Distance tail: half weight at the padded edge declining to the
	// floor ~75° further out.
	tcx, tcy := (t.Rect.X0+t.Rect.X1)/2, (t.Rect.Y0+t.Rect.Y1)/2
	d := geom.GreatCircleDeg(center, g.ToAngle(tcx, tcy))
	edge := 55 + padDeg
	if d > edge {
		tail := floor + (0.5-floor)*math.Max(0, 1-(d-edge)/75)
		if tail > v {
			v = tail
		}
	}
	if v < floor {
		return floor
	}
	return v
}

// Planner decides per-tile quality levels for one chunk under a bit
// budget. Implementations are the systems compared in §8.
type Planner interface {
	// Name identifies the system in results.
	Name() string
	// Plan returns one level per tile of chunk k.
	Plan(m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation
}

// PanoPlanner is Pano's tile-level allocator (§6.1): minimize the
// area-weighted sum of perceptible distortion Σ Sₜ·Mₜ(qₜ) over all
// tiles, with PSPNR estimated via 360JND and the manifest lookup table.
// The viewpoint influences the plan only through the per-tile factors —
// exactly the paper's formulation, with no viewport-distance term.
type PanoPlanner struct {
	// Profile supplies the multipliers for factor→ratio conversion.
	Profile *jnd.Profile
	// Traditional disables the action ratio (A = 1 always), yielding
	// the "Pano (traditional PSPNR)" ablation of Figure 18a.
	Traditional bool
	// Hedge shrinks the planned action ratio toward 1:
	// A' = 1 + Hedge·(A−1). Even with lower-bound factor estimates the
	// viewpoint can slow down between the decision and playback; a
	// hedge below 1 keeps those misses cheap (§6.1's conservatism).
	Hedge float64
	// Greedy swaps the pruned DP for the greedy marginal-utility
	// allocator: same cost model, no frontier search, two orders of
	// magnitude faster per chunk at a fraction-of-a-dB quality cost —
	// the knob internal/swarm's million-session populations turn.
	Greedy bool
}

// NewPanoPlanner returns the default Pano planner.
func NewPanoPlanner() *PanoPlanner {
	return &PanoPlanner{Profile: jnd.Default(), Hedge: 1.0}
}

// Name implements Planner.
func (p *PanoPlanner) Name() string {
	if p.Traditional {
		return "pano-traditional-jnd"
	}
	if p.Greedy {
		return "pano-greedy"
	}
	return "pano"
}

// Plan implements Planner.
func (p *PanoPlanner) Plan(m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	prof := p.Profile
	if prof == nil {
		prof = jnd.Default()
	}
	hedge := p.Hedge
	if hedge == 0 {
		hedge = 1
	}
	tiles := make([]abr.TileChoice, len(m.Chunks[k].Tiles))
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		ratio := 1.0
		if !p.Traditional {
			ratio = 1 + hedge*(prof.ActionRatio(FactorsFor(t, view))-1)
		}
		area := float64(t.Rect.Area())
		for l := 0; l < codec.NumLevels; l++ {
			tiles[i].Bits[l] = t.Bits[l]
			est := EstimatePSPNR(t, codec.Level(l), ratio)
			tiles[i].Cost[l] = area * PMSEFromPSPNR(est)
		}
	}
	if p.Greedy {
		return abr.AllocateGreedy(tiles, budget)
	}
	return abr.AllocatePruned(tiles, budget, 0)
}

// MeanRefPSPNR returns the area-weighted mean reference PSPNR of chunk
// k at level l — the chunk-level quality axis the MPC horizon uses
// (sim.Run and the SimModel client loop normalize it to MOS-like
// units).
func MeanRefPSPNR(m *manifest.Video, k int, l codec.Level) float64 {
	var num, den float64
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		a := float64(t.Rect.Area())
		num += a * t.RefPSPNR[l]
		den += a
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ViewportPlanner is the viewport-driven baseline (Flare/ClusTile
// allocation): it minimizes visibility-weighted plain MSE — quality is
// a function of the distance to the viewpoint only, with no perceptual
// model (§8.1's baselines).
type ViewportPlanner struct {
	// SystemName distinguishes "flare" (uniform tiling manifest) from
	// "clustile" (clustered tiling manifest); the allocation logic is
	// shared.
	SystemName string
	// PadDeg and VisibilityFloor mirror PanoPlanner's weighting.
	PadDeg          float64
	VisibilityFloor float64
}

// NewViewportPlanner returns the Flare-style baseline planner.
func NewViewportPlanner(name string) *ViewportPlanner {
	return &ViewportPlanner{SystemName: name, PadDeg: 25, VisibilityFloor: 0.08}
}

// Name implements Planner.
func (p *ViewportPlanner) Name() string { return p.SystemName }

// Plan implements Planner. Unlike Pano, the baseline uses the simple
// greedy utility allocator — viewport-driven systems assign quality by
// distance class rather than solving the PSPNR program.
func (p *ViewportPlanner) Plan(m *manifest.Video, k int, view ChunkView, budget float64) abr.Allocation {
	tiles := make([]abr.TileChoice, len(m.Chunks[k].Tiles))
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		vis := Visibility(m, t, view.Center, p.PadDeg, p.VisibilityFloor)
		area := float64(t.Rect.Area())
		for l := 0; l < codec.NumLevels; l++ {
			tiles[i].Bits[l] = t.Bits[l]
			tiles[i].Cost[l] = vis * area * PMSEFromPSPNR(t.PSNR[l])
		}
	}
	return abr.AllocateGreedy(tiles, budget)
}

// WholePlanner streams the entire panorama at one uniform level — the
// "whole video" reference point of Figures 1 and 15.
type WholePlanner struct{}

// Name implements Planner.
func (WholePlanner) Name() string { return "whole-video" }

// Plan implements Planner.
func (WholePlanner) Plan(m *manifest.Video, k int, _ ChunkView, budget float64) abr.Allocation {
	n := len(m.Chunks[k].Tiles)
	a := make(abr.Allocation, n)
	// Highest uniform level that fits.
	for l := 0; l < codec.NumLevels; l++ {
		if m.ChunkBits(k, codec.Level(l)) <= budget || l == codec.NumLevels-1 {
			for i := range a {
				a[i] = codec.Level(l)
			}
			break
		}
	}
	return a
}
