package player

import (
	"math"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/quality"
	"pano/internal/viewport"
)

// Estimator turns the client's viewpoint history and the manifest into
// the ChunkView a Planner consumes. It implements §6.1's robustness
// strategy: ranges and lower bounds instead of exact predictions.
type Estimator struct {
	// Pred extrapolates the viewpoint center.
	Pred *viewport.Predictor
	// SpeedWindowSec is the lookback for the lower-bound speed
	// estimate (the paper uses the last 2 s).
	SpeedWindowSec float64
	// LumaWindowSec is the luminance-change lookback (~5 s).
	LumaWindowSec float64
}

// NewEstimator returns an estimator with the paper's windows.
func NewEstimator() *Estimator {
	return &Estimator{
		Pred:           viewport.NewPredictor(),
		SpeedWindowSec: 2,
		LumaWindowSec:  5,
	}
}

// lumaAlongTrace returns the manifest luminance under the viewpoint at
// media time u: the AvgLuma of the tile the viewpoint is in.
func lumaAlongTrace(m *manifest.Video, tr *viewport.Trace, u float64) float64 {
	k := int(u / m.ChunkSec)
	if k < 0 {
		k = 0
	}
	if k >= m.NumChunks() {
		k = m.NumChunks() - 1
	}
	a := tr.At(u)
	ti := TileAt(m, k, a)
	return m.Chunks[k].Tiles[ti].AvgLuma
}

// View builds the predicted ChunkView for chunk k, deciding at media
// time now (the playhead when the download is scheduled) for playback
// at the chunk's midpoint.
func (e *Estimator) View(m *manifest.Video, tr *viewport.Trace, k int, now float64) ChunkView {
	tMid := (float64(k) + 0.5) * m.ChunkSec
	horizon := tMid - now
	if horizon < 0 {
		horizon = 0
	}
	center := e.Pred.Predict(tr, now, horizon)
	speedLB := tr.MinSpeedIn(math.Max(0, now-e.SpeedWindowSec), now)

	// Luminance swing of the viewport over the recent window, read off
	// the manifest tiles the viewpoint visited.
	ref := lumaAlongTrace(m, tr, now)
	var swing float64
	for u := math.Max(0, now-e.LumaWindowSec); u <= now+1e-9; u += 5 * viewport.RefreshInterval {
		if d := math.Abs(lumaAlongTrace(m, tr, u) - ref); d > swing {
			swing = d
		}
	}

	focusTile := TileAt(m, clampChunk(m, k), center)
	return ChunkView{
		Center:     center,
		SpeedLB:    speedLB,
		LumaChange: swing,
		FocusDoF:   m.Chunks[clampChunk(m, k)].Tiles[focusTile].AvgDoF,
	}
}

// BestGuessView is View with the speed *estimate* (the current speed)
// instead of the conservative lower bound. Quality selection uses the
// bound (§6.1); the client's PSPNR *prediction* — whose accuracy
// Figure 16(a) measures — uses the best guess.
func (e *Estimator) BestGuessView(m *manifest.Video, tr *viewport.Trace, k int, now float64) ChunkView {
	v := e.View(m, tr, k, now)
	v.SpeedLB = tr.SpeedAt(now)
	return v
}

// ActualView builds the ground-truth view of chunk k at its playback
// midpoint: exact speed instead of the lower bound, actual center. The
// simulator uses it to score delivered quality, and the gap between
// View and ActualView is exactly the estimation error of Figure 16(a).
func (e *Estimator) ActualView(m *manifest.Video, tr *viewport.Trace, k int) ChunkView {
	tMid := (float64(k) + 0.5) * m.ChunkSec
	center := tr.At(tMid)
	ref := lumaAlongTrace(m, tr, tMid)
	var swing float64
	for u := math.Max(0, tMid-e.LumaWindowSec); u <= tMid+1e-9; u += 5 * viewport.RefreshInterval {
		if d := math.Abs(lumaAlongTrace(m, tr, u) - ref); d > swing {
			swing = d
		}
	}
	kc := clampChunk(m, k)
	focusTile := TileAt(m, kc, center)
	return ChunkView{
		Center:     center,
		SpeedLB:    tr.SpeedAt(tMid),
		LumaChange: swing,
		FocusDoF:   m.Chunks[kc].Tiles[focusTile].AvgDoF,
	}
}

// ViewportPSNR is ViewportPSPNR's JND-agnostic sibling: the
// area-weighted plain PSNR of the tiles under the true viewport. It is
// the "PSNR" reference predictor of Figure 8.
func ViewportPSNR(m *manifest.Video, k int, alloc abr.Allocation, center geom.Angle) float64 {
	g := geom.Frame{W: m.W, H: m.H}
	foot := geom.DefaultViewport(center).Footprint(g)
	var num, den float64
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		overlap := 0
		for _, r := range foot {
			overlap += t.Rect.OverlapArea(r)
		}
		if overlap == 0 {
			continue
		}
		num += float64(overlap) * PMSEFromPSPNR(t.PSNR[alloc[i]])
		den += float64(overlap)
	}
	if den == 0 {
		return 0
	}
	return quality.PSPNRFromPMSE(num / den)
}

func clampChunk(m *manifest.Video, k int) int {
	if k < 0 {
		return 0
	}
	if k >= m.NumChunks() {
		return m.NumChunks() - 1
	}
	return k
}

// FramePSPNR is the client's whole-panorama PSPNR estimate for chunk k
// under a given view: the §6.1 objective evaluated from the manifest's
// lookup table. The viewpoint enters only through the per-tile factors
// (Equation 4), never as a visibility mask. A nil profile forces the
// action ratio to 1 (traditional content-JND PSPNR).
func FramePSPNR(m *manifest.Video, k int, alloc abr.Allocation, view ChunkView, prof *jnd.Profile) float64 {
	return FramePSPNRDegraded(m, k, alloc, nil, view, prof)
}

// StalePMSEFactor inflates the perceptible distortion of a skipped
// tile. A skipped tile is stitched at the previous chunk's content
// (§7), which at best looks like the lowest encoding level with extra
// temporal mismatch; doubling the lowest level's PMSE is a conservative
// stand-in for that mismatch in the table-driven quality model.
const StalePMSEFactor = 2.0

// FramePSPNRDegraded is FramePSPNR with a per-tile staleness mask:
// tiles whose fetch was abandoned by the degradation ladder (stale[i]
// true) are scored at the lowest level with StalePMSEFactor extra
// distortion instead of their allocated level. A nil mask scores every
// tile as delivered.
func FramePSPNRDegraded(m *manifest.Video, k int, alloc abr.Allocation, stale []bool, view ChunkView, prof *jnd.Profile) float64 {
	var num, den float64
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		ratio := 1.0
		if prof != nil {
			ratio = prof.ActionRatio(FactorsFor(t, view))
		}
		lv, pmseFactor := alloc[i], 1.0
		if stale != nil && i < len(stale) && stale[i] {
			lv = codec.Level(codec.NumLevels - 1)
			pmseFactor = StalePMSEFactor
		}
		p := EstimatePSPNR(t, lv, ratio)
		area := float64(t.Rect.Area())
		num += area * pmseFactor * PMSEFromPSPNR(p)
		den += area
	}
	if den == 0 {
		return 0
	}
	return quality.PSPNRFromPMSE(num / den)
}

// FramePSNR is the JND-agnostic whole-panorama PSNR of a delivered
// chunk — the "PSNR" reference predictor of Figure 8.
func FramePSNR(m *manifest.Video, k int, alloc abr.Allocation) float64 {
	var num, den float64
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		area := float64(t.Rect.Area())
		num += area * PMSEFromPSPNR(t.PSNR[alloc[i]])
		den += area
	}
	if den == 0 {
		return 0
	}
	return quality.PSPNRFromPMSE(num / den)
}

// ViewportPSPNR scores the quality the user actually perceives for
// chunk k: the area-weighted perceptible distortion of the tiles
// covered by the true viewport, under the true factors, aggregated to
// dB (the evaluation metric of §8.1). A nil profile disables the
// action-dependent ratio (A=1), yielding the traditional
// content-JND-only PSPNR.
func ViewportPSPNR(m *manifest.Video, k int, alloc abr.Allocation, actual ChunkView, prof *jnd.Profile) float64 {
	g := geom.Frame{W: m.W, H: m.H}
	vp := geom.DefaultViewport(actual.Center)
	foot := vp.Footprint(g)
	var num, den float64
	for i := range m.Chunks[k].Tiles {
		t := &m.Chunks[k].Tiles[i]
		overlap := 0
		for _, r := range foot {
			overlap += t.Rect.OverlapArea(r)
		}
		if overlap == 0 {
			continue
		}
		ratio := 1.0
		if prof != nil {
			ratio = prof.ActionRatio(FactorsFor(t, actual))
		}
		p := EstimatePSPNR(t, alloc[i], ratio)
		num += float64(overlap) * PMSEFromPSPNR(p)
		den += float64(overlap)
	}
	if den == 0 {
		return 0
	}
	return quality.PSPNRFromPMSE(num / den)
}
