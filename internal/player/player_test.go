package player

import (
	"math"
	"sync"
	"testing"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/viewport"
)

var (
	fixtureOnce sync.Once
	fixtureMan  *manifest.Video
	fixtureTr   *viewport.Trace
)

func fixture(t *testing.T) (*manifest.Video, *viewport.Trace) {
	t.Helper()
	fixtureOnce.Do(func() {
		v := scene.Generate(scene.Sports, 17, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 5})
		tr := viewport.Synthesize(v, 3, viewport.DefaultSynthesizeOpts())
		m, err := provider.Preprocess(v, []*viewport.Trace{tr}, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixtureMan = m
		fixtureTr = tr
	})
	return fixtureMan, fixtureTr
}

func TestTileAtFindsContainingTile(t *testing.T) {
	m, _ := fixture(t)
	g := geom.Frame{W: m.W, H: m.H}
	for _, a := range []geom.Angle{{Yaw: 0, Pitch: 0}, {Yaw: -170, Pitch: 80}, {Yaw: 120, Pitch: -45}} {
		i := TileAt(m, 0, a)
		x, y := g.ToPixel(a)
		if !m.Chunks[0].Tiles[i].Rect.Contains(x, y) {
			t.Errorf("TileAt(%v) = %d does not contain the pixel", a, i)
		}
	}
}

func TestFactorsForConservativeSpeed(t *testing.T) {
	tile := &manifest.Tile{ObjSpeedDeg: 8}
	// Viewpoint bound slower than the object: conservative relative
	// speed clamps to zero (the user may be tracking it).
	f := FactorsFor(tile, ChunkView{SpeedLB: 5})
	if f.SpeedDegS != 0 {
		t.Errorf("rel speed = %v, want 0", f.SpeedDegS)
	}
	// Faster bound: the excess is the guaranteed relative motion.
	f = FactorsFor(tile, ChunkView{SpeedLB: 20})
	if f.SpeedDegS != 12 {
		t.Errorf("rel speed = %v, want 12", f.SpeedDegS)
	}
	// DoF difference is absolute.
	f = FactorsFor(&manifest.Tile{AvgDoF: 0.2}, ChunkView{FocusDoF: 1.0})
	if math.Abs(f.DoFDiff-0.8) > 1e-12 {
		t.Errorf("dof diff = %v, want 0.8", f.DoFDiff)
	}
}

func TestEstimatePSPNRUsesLUT(t *testing.T) {
	tile := &manifest.Tile{}
	tile.RefPSPNR[2] = 60
	tile.LUT[2] = manifest.PowerLUT{ACoeff: 1, BExp: 0.2}
	if got := EstimatePSPNR(tile, 2, 1); math.Abs(got-60) > 1e-9 {
		t.Errorf("A=1 estimate = %v, want ref", got)
	}
	if EstimatePSPNR(tile, 2, 4) <= 60 {
		t.Error("larger action ratio should raise the estimate")
	}
}

func TestPMSEFromPSPNRInverse(t *testing.T) {
	for _, p := range []float64{40, 55, 70, 85} {
		m := PMSEFromPSPNR(p)
		back := 20 * math.Log10(255/math.Sqrt(m))
		if math.Abs(back-p) > 1e-9 {
			t.Errorf("inverse broken at %v: %v", p, back)
		}
	}
	if PMSEFromPSPNR(100) != 0 {
		t.Error("capped PSPNR should invert to zero PMSE")
	}
}

func TestVisibility(t *testing.T) {
	m, _ := fixture(t)
	tile := &m.Chunks[0].Tiles[0]
	center := geom.Frame{W: m.W, H: m.H}.ToAngle(
		(tile.Rect.X0+tile.Rect.X1)/2, (tile.Rect.Y0+tile.Rect.Y1)/2)
	if v := Visibility(m, tile, center, 0, 0.05); v != 1 {
		t.Errorf("tile under viewport center visibility = %v, want 1", v)
	}
	anti := geom.Angle{Yaw: center.Yaw + 180, Pitch: -center.Pitch}.Norm()
	if v := Visibility(m, tile, anti, 0, 0.05); v != 0.05 {
		t.Errorf("antipodal visibility = %v, want floor", v)
	}
}

func TestPlannersRespectBudget(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	view := est.View(m, tr, 1, 0.5)
	for _, pl := range []Planner{NewPanoPlanner(), NewViewportPlanner("flare"), WholePlanner{}} {
		for _, mult := range []float64{1.2, 2.5, 6} {
			budget := m.ChunkBits(1, codec.Level(codec.NumLevels-1)) * mult
			alloc := pl.Plan(m, 1, view, budget)
			if len(alloc) != len(m.Chunks[1].Tiles) {
				t.Fatalf("%s: allocation length %d", pl.Name(), len(alloc))
			}
			var bits float64
			for i, l := range alloc {
				if !l.Valid() {
					t.Fatalf("%s: invalid level %v", pl.Name(), l)
				}
				bits += m.Chunks[1].Tiles[i].Bits[l]
			}
			if bits > budget+1e-6 {
				t.Errorf("%s at x%v: bits %v over budget %v", pl.Name(), mult, bits, budget)
			}
		}
	}
}

func TestPanoPlannerFavorsSensitiveTiles(t *testing.T) {
	// §6.1: at a constrained budget, tiles where the user is sensitive
	// (low action ratio) should receive better (lower) levels than
	// tiles whose distortion is masked by viewpoint motion.
	m, tr := fixture(t)
	est := NewEstimator()
	view := est.View(m, tr, 1, 0.5)
	view.SpeedLB = 15 // ensure a meaningful sensitivity spread
	budget := m.ChunkBits(1, codec.Level(2))
	pl := NewPanoPlanner()
	alloc := pl.Plan(m, 1, view, budget)

	prof := pl.Profile
	var sensitive, forgiving []float64
	for i, l := range alloc {
		tile := &m.Chunks[1].Tiles[i]
		a := prof.ActionRatio(FactorsFor(tile, view))
		if a < 2 {
			sensitive = append(sensitive, float64(l))
		} else if a > 4 {
			forgiving = append(forgiving, float64(l))
		}
	}
	if len(sensitive) == 0 || len(forgiving) == 0 {
		t.Skip("degenerate sensitivity split")
	}
	if mean(sensitive) >= mean(forgiving) {
		t.Errorf("sensitive tiles mean level %v should be better (lower) than forgiving %v",
			mean(sensitive), mean(forgiving))
	}
}

func TestWholePlannerUniform(t *testing.T) {
	m, tr := fixture(t)
	view := NewEstimator().View(m, tr, 0, 0)
	alloc := WholePlanner{}.Plan(m, 0, view, m.ChunkBits(0, 1))
	for _, l := range alloc[1:] {
		if l != alloc[0] {
			t.Fatal("whole-video planner must assign one uniform level")
		}
	}
	// Unaffordable budget falls back to the lowest level.
	starved := WholePlanner{}.Plan(m, 0, view, 1)
	if starved[0] != codec.Level(codec.NumLevels-1) {
		t.Errorf("starved level = %v, want lowest", starved[0])
	}
}

func TestEstimatorViews(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	view := est.View(m, tr, 2, 1.5)
	if view.SpeedLB < 0 {
		t.Error("speed bound negative")
	}
	if view.LumaChange < 0 {
		t.Error("luma change negative")
	}
	actual := est.ActualView(m, tr, 2)
	if actual.SpeedLB < 0 {
		t.Error("actual speed negative")
	}
	// The lower bound must not exceed the actual speed by much on a
	// smooth trace (it is designed to be conservative).
	if view.SpeedLB > actual.SpeedLB+25 {
		t.Errorf("speed LB %v far above actual %v", view.SpeedLB, actual.SpeedLB)
	}
}

func TestViewportPSPNRHigherForBetterLevels(t *testing.T) {
	m, tr := fixture(t)
	est := NewEstimator()
	actual := est.ActualView(m, tr, 1)
	n := len(m.Chunks[1].Tiles)
	best := make(abr.Allocation, n)  // all level 0
	worst := make(abr.Allocation, n) // all lowest
	for i := range worst {
		worst[i] = codec.Level(codec.NumLevels - 1)
	}
	prof := jnd.Default()
	pb := ViewportPSPNR(m, 1, best, actual, prof)
	pw := ViewportPSPNR(m, 1, worst, actual, prof)
	if pb <= pw {
		t.Errorf("best-levels PSPNR %v should exceed worst %v", pb, pw)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
