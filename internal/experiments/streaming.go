package experiments

import (
	"fmt"

	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/sim"
	"pano/internal/userstudy"
	"pano/internal/viewport"
)

// System identifies one of the compared streaming systems (§8.1's
// baselines plus the ablations of Figure 18a).
type System int

// The systems under comparison.
const (
	// SysPano is full Pano: variable tiling + 360JND allocation.
	SysPano System = iota
	// SysFlare is the Flare baseline: uniform 6×12 tiles,
	// viewport-distance quality allocation.
	SysFlare
	// SysClusTile is the ClusTile baseline: size-clustered variable
	// tiles, viewport-distance allocation.
	SysClusTile
	// SysWhole streams the whole panorama at one uniform level.
	SysWhole
	// SysPanoTradJND is the Figure 18a ablation: uniform tiles with a
	// PSPNR allocator using only the traditional content JND.
	SysPanoTradJND
	// SysPano360Uniform is the Figure 18a ablation: uniform tiles with
	// the full 360JND allocator (variable tiling disabled).
	SysPano360Uniform
)

var systemNames = map[System]string{
	SysPano:           "pano",
	SysFlare:          "viewport-driven",
	SysClusTile:       "clustile",
	SysWhole:          "whole-video",
	SysPanoTradJND:    "pano-traditional-pspnr",
	SysPano360Uniform: "pano-360jnd-uniform-tiles",
}

// String implements fmt.Stringer.
func (s System) String() string {
	if n, ok := systemNames[s]; ok {
		return n
	}
	return fmt.Sprintf("System(%d)", int(s))
}

// AllSystems lists the four headline systems of Figures 1 and 15.
func AllSystems() []System {
	return []System{SysPano, SysFlare, SysClusTile, SysWhole}
}

// components returns the manifest mode and planner for a system.
func (s System) components() (provider.Mode, player.Planner) {
	switch s {
	case SysPano:
		return provider.ModePano, player.NewPanoPlanner()
	case SysFlare:
		return provider.ModeUniform, player.NewViewportPlanner("flare")
	case SysClusTile:
		return provider.ModeClusTile, player.NewViewportPlanner("clustile")
	case SysWhole:
		// The whole-video baseline streams the same tiled encoding at
		// one uniform level: no viewport or perception adaptation.
		// (A literal single-tile encoding would hand it an encoding-
		// overhead advantage that vanishes at the paper's resolution;
		// see EXPERIMENTS.md.)
		return provider.ModePano, player.WholePlanner{}
	case SysPanoTradJND:
		p := player.NewPanoPlanner()
		p.Traditional = true
		return provider.ModeUniform, p
	case SysPano360Uniform:
		return provider.ModeUniform, player.NewPanoPlanner()
	}
	return provider.ModePano, player.NewPanoPlanner()
}

// RunSystem simulates one session: video vi watched along trace tr by
// the given system, over a link at linkFrac of the pano-manifest top
// rate (so every system sees the identical link).
func (d *Dataset) RunSystem(vi int, tr *viewport.Trace, s System, linkFrac float64, cfg sim.Config) (*sim.Result, error) {
	mode, planner := s.components()
	m, err := d.Manifest(vi, mode)
	if err != nil {
		return nil, err
	}
	ref, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		return nil, err
	}
	link := sim.ScaledLink(ref, linkFrac, d.Scale.Seed+uint64(vi))
	// Score every system on the same ground-truth perceptual field.
	cfg.Scene = d.Video(vi)
	return sim.Run(m, tr, link, planner, cfg)
}

// sessionMean aggregates sessions of one system over videos and users.
type sessionMean struct {
	pspnr, buffering, bandwidth mathx.Stats
}

func (d *Dataset) aggregate(videoIdx []int, s System, linkFrac float64, cfg sim.Config, maxUsers int) (sessionMean, error) {
	var agg sessionMean
	for _, vi := range videoIdx {
		trs := d.Traces(vi)
		if maxUsers > 0 && len(trs) > maxUsers {
			trs = trs[:maxUsers]
		}
		for _, tr := range trs {
			res, err := d.RunSystem(vi, tr, s, linkFrac, cfg)
			if err != nil {
				return agg, err
			}
			agg.pspnr.Add(res.MeanPSPNR)
			agg.buffering.Add(res.BufferingRatio)
			agg.bandwidth.Add(res.BandwidthMbps)
		}
	}
	return agg, nil
}

// Fig1Row is one point of Figure 1's PSPNR-vs-buffering scatter.
type Fig1Row struct {
	System         System
	PSPNR          float64
	BufferingRatio float64
}

// Fig1 reproduces Figure 1: user-perceived quality (PSPNR) against
// buffering ratio for Pano, the viewport-driven baseline, and whole
// video, across the traced videos over the emulated cellular link.
func Fig1(d *Dataset) ([]Fig1Row, *Table, error) {
	systems := []System{SysPano, SysFlare, SysWhole}
	var rows []Fig1Row
	t := &Table{
		Title:  "Figure 1: PSPNR vs buffering ratio (traced videos, cellular trace #1)",
		Header: []string{"system", "pspnr_dB", "buffering_%"},
	}
	for _, s := range systems {
		agg, err := d.aggregate(d.TracedIndices(), s, sim.Trace1Frac, sim.DefaultConfig(), 0)
		if err != nil {
			return nil, nil, err
		}
		r := Fig1Row{System: s, PSPNR: agg.pspnr.Mean(), BufferingRatio: agg.buffering.Mean()}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{s.String(), f1(r.PSPNR), f2(r.BufferingRatio)})
	}
	return rows, t, nil
}

// Fig15Row is one ellipse center of Figure 15.
type Fig15Row struct {
	Genre           scene.Genre
	TraceID         int // 1 or 2
	System          System
	BufferTargetSec float64
	PSPNR           float64
	PSPNRStd        float64
	BufferingRatio  float64
}

// Fig15 reproduces Figure 15: trace-driven comparison of the four
// systems across genres and the two cellular traces, for buffer
// targets {1,2,3} s.
func Fig15(d *Dataset) ([]Fig15Row, *Table, error) {
	genres := []scene.Genre{scene.Sports, scene.Tourism, scene.Documentary, scene.Performance}
	fracs := map[int]float64{1: sim.Trace1Frac, 2: sim.Trace2Frac}
	var rows []Fig15Row
	t := &Table{
		Title:  "Figure 15: PSPNR vs buffering, 4 genres x 2 traces x 4 systems",
		Header: []string{"genre", "trace", "system", "buf_target_s", "pspnr_dB", "pspnr_std", "buffering_%"},
	}
	maxUsers := 3
	if d.Scale.Users < maxUsers {
		maxUsers = d.Scale.Users
	}
	for _, g := range genres {
		vids := d.videosOfGenre(g, 2)
		if len(vids) == 0 {
			continue
		}
		for traceID, frac := range fracs {
			for _, s := range AllSystems() {
				for _, target := range []float64{1, 2, 3} {
					cfg := sim.DefaultConfig()
					cfg.BufferTargetSec = target
					var pspnr, buf mathx.Stats
					for _, vi := range vids {
						trs := d.Traces(vi)
						if len(trs) > maxUsers {
							trs = trs[:maxUsers]
						}
						for _, tr := range trs {
							res, err := d.RunSystem(vi, tr, s, frac, cfg)
							if err != nil {
								return nil, nil, err
							}
							pspnr.Add(res.MeanPSPNR)
							buf.Add(res.BufferingRatio)
						}
					}
					r := Fig15Row{
						Genre: g, TraceID: traceID, System: s, BufferTargetSec: target,
						PSPNR: pspnr.Mean(), PSPNRStd: pspnr.Std(), BufferingRatio: buf.Mean(),
					}
					rows = append(rows, r)
					t.Rows = append(t.Rows, []string{
						g.String(), fmt.Sprintf("#%d", traceID), s.String(),
						f0(target), f1(r.PSPNR), f1(r.PSPNRStd), f2(r.BufferingRatio),
					})
				}
			}
		}
	}
	return rows, t, nil
}

// videosOfGenre returns up to max corpus indices of the given genre.
func (d *Dataset) videosOfGenre(g scene.Genre, max int) []int {
	var out []int
	for i, v := range d.videos {
		if v.Genre == g {
			out = append(out, i)
			if len(out) == max {
				break
			}
		}
	}
	return out
}

// Fig13Row is one bar of Figure 13.
type Fig13Row struct {
	Genre     scene.Genre
	Bandwidth string // "trace1" (0.71 Mbps-equivalent) or "trace2"
	System    System
	MOS       float64
	MOSStdErr float64
}

// Fig13 reproduces Figure 13: the survey MOS of Pano vs the
// viewport-driven baseline across the seven genres at the two
// bandwidths, rated by the simulated participant panel.
func Fig13(d *Dataset) ([]Fig13Row, *Table, error) {
	panel := userstudy.NewPanel(d.Scale.PanelSize, d.Scale.Seed)
	fracs := map[string]float64{"trace1": sim.Trace1Frac, "trace2": sim.Trace2Frac}
	var rows []Fig13Row
	t := &Table{
		Title:  "Figure 13: MOS by genre, Pano vs viewport-driven, 2 bandwidths",
		Header: []string{"bandwidth", "genre", "system", "MOS", "stderr"},
	}
	for _, bwName := range []string{"trace1", "trace2"} {
		frac := fracs[bwName]
		for _, g := range scene.AllGenres() {
			vids := d.videosOfGenre(g, 2)
			if len(vids) == 0 {
				continue
			}
			for _, s := range []System{SysFlare, SysPano} {
				var ratings mathx.Stats
				for _, vi := range vids {
					trs := d.Traces(vi)
					if len(trs) > 4 {
						trs = trs[:4]
					}
					for _, tr := range trs {
						res, err := d.RunSystem(vi, tr, s, frac, sim.DefaultConfig())
						if err != nil {
							return nil, nil, err
						}
						for _, r := range panel.Ratings(res.MeanPSPNR) {
							ratings.Add(float64(r))
						}
					}
				}
				r := Fig13Row{Genre: g, Bandwidth: bwName, System: s,
					MOS: ratings.Mean(), MOSStdErr: ratings.StdErr()}
				rows = append(rows, r)
				t.Rows = append(t.Rows, []string{bwName, g.String(), s.String(), f2(r.MOS), f2(r.MOSStdErr)})
			}
		}
	}
	return rows, t, nil
}

// manifestOrDie is a test helper used by benches; it panics on error.
func (d *Dataset) manifestOrDie(i int, mode provider.Mode) *manifest.Video {
	m, err := d.Manifest(i, mode)
	if err != nil {
		panic(err)
	}
	return m
}
