package experiments

import (
	"fmt"
	"time"

	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/jnd"
	"pano/internal/parallel"
	"pano/internal/quality"
	"pano/internal/scene"
	"pano/internal/tiling"
)

// ParallelBenchResult summarizes the serial-vs-parallel speedup of the
// pixel kernels and the content-JND field cache's effectiveness; it
// lands in BENCH_parallel.json so the trajectory is tracked across
// commits (and across machines with different core counts).
type ParallelBenchResult struct {
	Workers              int
	ContentFieldSerialMS float64
	ContentFieldParMS    float64
	ContentFieldSpeedup  float64
	PlanSerialMS         float64
	PlanParMS            float64
	PlanSpeedup          float64
	CacheColdMS          float64
	CacheWarmMS          float64
	CacheHits            float64
	CacheMisses          float64
	CacheHitRate         float64
}

// benchFrameW/H size the synthetic frame the kernel measurements run
// on — deliberately larger than QuickScale videos so per-call work
// dominates goroutine overhead, small enough to keep the experiment
// around a second.
const (
	benchFrameW = 960
	benchFrameH = 480
)

// minDuration returns the fastest of reps runs of fn, in milliseconds.
func minDuration(reps int, fn func()) float64 {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		fn()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best) / float64(time.Millisecond)
}

// ParallelBench measures the hot offline kernels serial vs parallel —
// ContentField over a full frame and Plan's concurrent unit-grid
// scoring — plus a cold/warm TilePSPNR pass through the field cache.
// Speedup tracks the core count: expect ~1x on a single-core runner
// and ≥ 2x at 4+ cores.
func ParallelBench(d *Dataset) (ParallelBenchResult, *Table, error) {
	workers := parallel.Workers()
	v := scene.Generate(scene.Sports, d.Scale.Seed+0xbe9c,
		scene.Options{W: benchFrameW, H: benchFrameH, FPS: 10, DurationSec: 1})
	orig := v.RenderFrame(0)
	full := geom.Rect{X1: orig.W, Y1: orig.H}

	res := ParallelBenchResult{Workers: workers}
	const reps = 3

	// Kernel 1: content-JND field over the whole frame.
	res.ContentFieldSerialMS = minDuration(reps, func() {
		jnd.ContentFieldWorkers(orig, full, 1)
	})
	res.ContentFieldParMS = minDuration(reps, func() {
		jnd.ContentFieldWorkers(orig, full, workers)
	})
	res.ContentFieldSpeedup = safeRatio(res.ContentFieldSerialMS, res.ContentFieldParMS)

	// Kernel 2: Plan scoring the 12x24 unit grid, each unit scored by
	// its mean content JND (the shape of the provider's Equation 5
	// scoring: per-unit pixel work dominates).
	unitRects := tiling.Grid12x24.Rects(orig.W, orig.H)
	score := func(r, c int) float64 {
		return jnd.MeanContentJND(orig, unitRects[r*tiling.UnitCols+c])
	}
	planWith := func(w int) {
		if _, err := tiling.PlanWorkers(tiling.UnitRows, tiling.UnitCols, tiling.DefaultTiles, score, w); err != nil {
			panic(err) // inputs are constants; cannot fail
		}
	}
	res.PlanSerialMS = minDuration(reps, func() { planWith(1) })
	res.PlanParMS = minDuration(reps, func() { planWith(workers) })
	res.PlanSpeedup = safeRatio(res.PlanSerialMS, res.PlanParMS)

	// Cache: two TilePSPNR adaptation passes over every unit tile of
	// the frame; the second pass should be all hits.
	enc, err := codec.NewEncoder().DistortRegion(orig, full, codec.Level(2).QP())
	if err != nil {
		return res, nil, err
	}
	cache := jnd.NewFieldCache(2*len(unitRects), nil)
	prof := jnd.Default()
	pass := func() error {
		for _, r := range unitRects {
			encTile, err := enc.Region(r)
			if err != nil {
				return err
			}
			if _, err := quality.TilePSPNRCached(prof, cache, "bench/f0", orig, encTile, r, jnd.Factors{SpeedDegS: 10}); err != nil {
				return err
			}
		}
		return nil
	}
	coldStart := time.Now()
	if err := pass(); err != nil {
		return res, nil, err
	}
	res.CacheColdMS = float64(time.Since(coldStart)) / float64(time.Millisecond)
	warmStart := time.Now()
	if err := pass(); err != nil {
		return res, nil, err
	}
	res.CacheWarmMS = float64(time.Since(warmStart)) / float64(time.Millisecond)
	res.CacheHits, res.CacheMisses = cache.Stats()
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.CacheHitRate = res.CacheHits / total
	}

	t := &Table{
		Title:  fmt.Sprintf("Parallel kernels & field cache (%d workers, %dx%d frame)", workers, benchFrameW, benchFrameH),
		Header: []string{"item", "baseline_ms", "optimized_ms", "speedup_x", "detail"},
		Rows: [][]string{
			{"ContentField", f2(res.ContentFieldSerialMS), f2(res.ContentFieldParMS),
				f2(res.ContentFieldSpeedup), fmt.Sprintf("workers=%d", workers)},
			{"Plan(12x24)", f2(res.PlanSerialMS), f2(res.PlanParMS),
				f2(res.PlanSpeedup), fmt.Sprintf("workers=%d", workers)},
			{"TilePSPNR+cache", f2(res.CacheColdMS), f2(res.CacheWarmMS),
				f2(safeRatio(res.CacheColdMS, res.CacheWarmMS)),
				fmt.Sprintf("hit_rate=%.1f%% (%0.f hits/%0.f misses)",
					100*res.CacheHitRate, res.CacheHits, res.CacheMisses)},
		},
	}
	return res, t, nil
}

func safeRatio(a, b float64) float64 {
	if b <= 0 {
		return 0
	}
	return a / b
}
