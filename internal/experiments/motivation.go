package experiments

import (
	"fmt"
	"math"

	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/mathx"
	"pano/internal/scene"
	"pano/internal/tiling"
)

// Fig3Result holds the three factor distributions of Figure 3 and the
// §2.3 threshold-exceedance fractions.
type Fig3Result struct {
	Speed      *mathx.CDF // deg/s
	LumaChange *mathx.CDF // grey levels over 5 s windows
	DoFDiff    *mathx.CDF // dioptre, max diff within a viewport

	// Fraction of time each factor exceeds its 1.5x-JND threshold
	// (10 deg/s, 200 grey, 0.7 dioptre).
	SpeedExceed, LumaExceed, DoFExceed float64
}

// Fig3 reproduces Figure 3: the distributions of viewpoint-moving
// speed, 5-second luminance change, and within-viewport DoF difference
// across all traced videos and users.
func Fig3(d *Dataset) (*Fig3Result, *Table, error) {
	var speeds, lumas, dofs []float64
	for _, vi := range d.TracedIndices() {
		v := d.Video(vi)
		for _, tr := range d.Traces(vi) {
			end := tr.Duration()
			for ts := 0.5; ts < end; ts += 0.25 {
				speeds = append(speeds, tr.SpeedAt(ts))
				lumas = append(lumas, tr.MaxLumaChange(ts, 5, v.LumaAt))
				dofs = append(dofs, viewportDoFSpread(v, tr.At(ts), ts))
			}
		}
	}
	res := &Fig3Result{
		Speed:      mathx.NewCDF(speeds),
		LumaChange: mathx.NewCDF(lumas),
		DoFDiff:    mathx.NewCDF(dofs),
	}
	res.SpeedExceed = 1 - res.Speed.At(10)
	res.LumaExceed = 1 - res.LumaChange.At(200)
	res.DoFExceed = 1 - res.DoFDiff.At(0.7)

	t := &Table{
		Title:  "Figure 3: factor distributions (quantiles) and threshold exceedance",
		Header: []string{"quantile", "speed_deg_s", "luma_change", "dof_diff"},
	}
	for _, q := range []float64{0.25, 0.5, 0.75, 0.9, 0.99} {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("p%.0f", q*100),
			f1(res.Speed.Quantile(q)), f1(res.LumaChange.Quantile(q)), f2(res.DoFDiff.Quantile(q)),
		})
	}
	t.Rows = append(t.Rows, []string{"exceed_threshold",
		fmt.Sprintf("%.0f%%>10", res.SpeedExceed*100),
		fmt.Sprintf("%.0f%%>200", res.LumaExceed*100),
		fmt.Sprintf("%.0f%%>0.7", res.DoFExceed*100),
	})
	return res, t, nil
}

// viewportDoFSpread returns the max-min depth within the viewport at
// center — the "DoF diff between objects in viewport" of Figure 3.
func viewportDoFSpread(v *scene.Video, center geom.Angle, t float64) float64 {
	vp := geom.DefaultViewport(center)
	minD, maxD := math.Inf(1), math.Inf(-1)
	const grid = 6
	for gy := 0; gy < grid; gy++ {
		for gx := 0; gx < grid; gx++ {
			a := geom.Angle{
				Yaw:   center.Yaw + vp.WidthDeg*(float64(gx)/(grid-1)-0.5),
				Pitch: center.Pitch + vp.HeightDeg*(float64(gy)/(grid-1)-0.5),
			}.Norm()
			dep := v.DepthAt(a, t)
			if dep < minD {
				minD = dep
			}
			if dep > maxD {
				maxD = dep
			}
		}
	}
	return maxD - minD
}

// Fig4Row is one bar of Figure 4.
type Fig4Row struct {
	Grid      tiling.Grid
	MeanRatio float64 // total tile size / unsplit encoding size
	StdRatio  float64
}

// Fig4 reproduces Figure 4: the encoded-size inflation of uniform
// tiling granularities relative to the unsplit video, averaged across
// the corpus.
func Fig4(d *Dataset) ([]Fig4Row, *Table, error) {
	enc := codec.NewEncoder()
	grids := []tiling.Grid{tiling.Grid3x6, tiling.Grid6x12, tiling.Grid12x24}
	stats := make([]mathx.Stats, len(grids))
	n := len(d.Videos())
	if n > 6 {
		n = 6
	}
	for vi := 0; vi < n; vi++ {
		v := d.Video(vi)
		f := v.RenderFrame(v.FPS / 2)
		whole := enc.HeaderBits + enc.FrameRegionBits(f, geom.Rect{X1: f.W, Y1: f.H}, 32)
		for gi, g := range grids {
			var total float64
			for _, r := range g.Rects(f.W, f.H) {
				total += enc.HeaderBits + enc.FrameRegionBits(f, r, 32)
			}
			stats[gi].Add(total / whole)
		}
	}
	var rows []Fig4Row
	t := &Table{
		Title:  "Figure 4: total tile size / original video size",
		Header: []string{"grid", "mean_ratio", "std"},
	}
	for gi, g := range grids {
		r := Fig4Row{Grid: g, MeanRatio: stats[gi].Mean(), StdRatio: stats[gi].Std()}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{g.String(), f2(r.MeanRatio), f2(r.StdRatio)})
	}
	return rows, t, nil
}

// Table2 reproduces the dataset summary.
func Table2(d *Dataset) *Table {
	genreCount := map[scene.Genre]int{}
	for _, v := range d.Videos() {
		genreCount[v.Genre]++
	}
	t := &Table{
		Title:  "Table 2: dataset summary",
		Header: []string{"property", "value"},
	}
	t.Rows = append(t.Rows,
		[]string{"total videos", fmt.Sprintf("%d (%d with viewpoint traces of %d users)",
			d.Scale.TotalVideos, d.Scale.TracedVideos, d.Scale.Users)},
		[]string{"total length (s)", fmt.Sprintf("%d", d.Scale.TotalVideos*d.Scale.DurationSec)},
		[]string{"resolution", fmt.Sprintf("%d x %d", d.Scale.W, d.Scale.H)},
		[]string{"frame rate", fmt.Sprintf("%d", d.Scale.FPS)},
	)
	for _, g := range scene.AllGenres() {
		if c := genreCount[g]; c > 0 {
			t.Rows = append(t.Rows, []string{"genre " + g.String(),
				fmt.Sprintf("%d (%.0f%%)", c, 100*float64(c)/float64(len(d.Videos())))})
		}
	}
	return t
}

// Table3 renders the PSPNR→MOS band map.
func Table3() *Table {
	return &Table{
		Title:  "Table 3: map between MOS and 360JND-based PSPNR",
		Header: []string{"PSPNR", "<=45", "46-53", "54-61", "62-69", ">=70"},
		Rows:   [][]string{{"MOS", "1", "2", "3", "4", "5"}},
	}
}
