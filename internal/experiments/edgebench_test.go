package experiments

import "testing"

func TestEdgeBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("edge bench streams 40 HTTP sessions")
	}
	d := testDataset(t)
	res, table, err := EdgeBench(d)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 2 {
		t.Fatalf("table rows = %v, want direct + edge", table)
	}
	if res.Direct.Aborts != 0 || res.Edge.Aborts != 0 {
		t.Fatalf("aborted sessions: direct %d, edge %d — both arms must complete",
			res.Direct.Aborts, res.Edge.Aborts)
	}
	// The acceptance bar: 20 concurrent overlapping sessions, at least
	// half the origin tile fetches absorbed by the edge.
	if res.Sessions != edgeBenchSessions {
		t.Fatalf("sessions %d, want %d", res.Sessions, edgeBenchSessions)
	}
	if res.OffloadFrac < 0.5 {
		t.Errorf("origin offload %.1f%%, want >= 50%%", 100*res.OffloadFrac)
	}
	// Both arms issue the same client-side workload (same traces, same
	// policy); only the origin-side counts should differ.
	if res.Edge.ClientTileReqs == 0 || res.Direct.ClientTileReqs == 0 {
		t.Fatal("an arm issued no tile requests")
	}
	if res.Edge.OriginTileReqs >= res.Direct.OriginTileReqs {
		t.Errorf("edge did not reduce origin traffic: %d vs %d",
			res.Edge.OriginTileReqs, res.Direct.OriginTileReqs)
	}
	if res.Edge.HitRatio <= 0 {
		t.Errorf("edge hit ratio %v, want > 0", res.Edge.HitRatio)
	}
	if res.Edge.CacheBytesUsed <= 0 {
		t.Error("edge cache is empty after 20 sessions")
	}
	if res.Direct.TileP50Ms <= 0 || res.Edge.TileP50Ms <= 0 {
		t.Error("latency percentiles not measured")
	}
}
