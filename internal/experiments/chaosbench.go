package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/server"
)

// ChaosProfileResult summarizes streaming under one fault profile.
type ChaosProfileResult struct {
	Profile  string
	Sessions int
	// Aborts counts sessions that returned an error — the robustness
	// contract is that this stays 0 for every server-side fault profile.
	Aborts int
	// RetriesBounded is false if any chunk exceeded the ladder's attempt
	// budget (tiles x 2 rungs x MaxAttempts failed attempts).
	RetriesBounded  bool
	TotalRetries    int
	DegradedFrac    float64
	SkippedFrac     float64
	MeanRebufferSec float64
	MeanEstPSPNR    float64
	InjectedErrors  float64
	InjectedLatency float64
}

// ChaosBenchResult is the BENCH_chaos.json payload.
type ChaosBenchResult struct {
	MaxAttempts int
	Profiles    []ChaosProfileResult
}

// chaosProfiles are the scripted fault schedules the bench streams
// under. Latencies are tiny (loopback-scaled) so the experiment stays
// fast; the *ratios* — error rate, flaky duty cycle — match deployment
// shapes.
func chaosProfiles() []struct {
	name string
	p    chaos.Profile
} {
	return []struct {
		name string
		p    chaos.Profile
	}{
		{"off", chaos.Profile{}},
		// The acceptance profile: 10% tile errors plus injected latency.
		{"tile-error-10pct", chaos.Profile{
			Seed: 2019,
			Tile: chaos.Rule{ErrorRate: 0.10, Latency: 200 * time.Microsecond, Jitter: 200 * time.Microsecond},
		}},
		{"flaky-window", chaos.Profile{
			Seed:   2019,
			Tile:   chaos.Rule{ErrorRate: 0.5, Latency: 200 * time.Microsecond},
			Window: chaos.Window{Period: 10, Flaky: 3},
		}},
	}
}

// ChaosBench streams many real HTTP sessions against a chaos-wrapped
// server, one batch per fault profile, and verifies the robustness
// contract: zero aborted sessions, retries within the ladder's bound,
// and quality that degrades gracefully instead of failing. The "off"
// profile is the healthy baseline.
func ChaosBench(d *Dataset) (ChaosBenchResult, *Table, error) {
	m, err := d.Manifest(d.TracedIndices()[0], provider.ModePano)
	if err != nil {
		return ChaosBenchResult{}, nil, err
	}
	s, err := server.New(m)
	if err != nil {
		return ChaosBenchResult{}, nil, err
	}

	// Backoffs are loopback-scaled (the bench's point is counts and
	// fractions, not wall-clock realism); the bound semantics are
	// identical at any time scale.
	pol := client.FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Microsecond,
		MaxBackoff:        2 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 20 * time.Millisecond,
	}
	sessions := 10 + 10*d.Scale.Users
	if sessions > 50 {
		sessions = 50
	}
	// The controller's bandwidth input is capped so decisions don't
	// depend on loopback throughput noise and profiles stay comparable.
	rateCap := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec

	res := ChaosBenchResult{MaxAttempts: pol.MaxAttempts}
	tilesPerChunk := len(m.Chunks[0].Tiles)
	for _, cp := range chaosProfiles() {
		reg := obs.NewRegistry()
		in := chaos.New(cp.p, chaos.WithObs(reg))
		ts := httptest.NewServer(in.Wrap(s.Handler()))

		n := sessions
		if !cp.p.Enabled() {
			n = min(sessions, 5) // healthy baseline needs fewer samples
		}
		pr := ChaosProfileResult{Profile: cp.name, Sessions: n, RetriesBounded: true}
		var tiles, degraded, skipped int
		var pspnrSum, rebufSum float64
		for u := 0; u < n; u++ {
			p := pol
			p.Seed = uint64(u + 1)
			tr := d.Traces(d.TracedIndices()[0])[u%d.Scale.Users]
			out, serr := client.New(ts.URL).Stream(context.Background(), tr, client.StreamConfig{
				MaxRateBps: rateCap,
				Fetch:      p,
				Obs:        reg,
			})
			if serr != nil {
				pr.Aborts++
				continue
			}
			for _, ch := range out.Chunks {
				if ch.Retries > len(ch.Levels)*2*pol.MaxAttempts {
					pr.RetriesBounded = false
				}
			}
			tiles += len(out.Chunks) * tilesPerChunk
			degraded += out.DegradedTiles
			skipped += out.SkippedTiles
			pr.TotalRetries += out.TotalRetries
			pspnrSum += out.MeanEstPSPNR
			rebufSum += out.RebufferSec
		}
		ts.Close()
		if done := n - pr.Aborts; done > 0 {
			pr.MeanEstPSPNR = pspnrSum / float64(done)
			pr.MeanRebufferSec = rebufSum / float64(done)
		}
		if tiles > 0 {
			pr.DegradedFrac = float64(degraded) / float64(tiles)
			pr.SkippedFrac = float64(skipped) / float64(tiles)
		}
		pr.InjectedErrors = reg.CounterValue("pano_chaos_injections_total",
			obs.L("endpoint", "tile"), obs.L("kind", "error"))
		pr.InjectedLatency = reg.CounterValue("pano_chaos_injections_total",
			obs.L("endpoint", "tile"), obs.L("kind", "latency"))
		res.Profiles = append(res.Profiles, pr)
	}

	t := &Table{
		Title: fmt.Sprintf("Streaming under chaos (%d sessions/profile, ladder %d attempts/rung)",
			sessions, pol.MaxAttempts),
		Header: []string{"profile", "sessions", "aborts", "retries", "bounded",
			"degraded_pct", "skipped_pct", "rebuffer_sec", "mean_est_pspnr_db", "injected_errors"},
	}
	for _, pr := range res.Profiles {
		t.Rows = append(t.Rows, []string{
			pr.Profile,
			fmt.Sprintf("%d", pr.Sessions),
			fmt.Sprintf("%d", pr.Aborts),
			fmt.Sprintf("%d", pr.TotalRetries),
			fmt.Sprintf("%v", pr.RetriesBounded),
			f2(100 * pr.DegradedFrac),
			f2(100 * pr.SkippedFrac),
			f2(pr.MeanRebufferSec),
			f1(pr.MeanEstPSPNR),
			f0(pr.InjectedErrors),
		})
	}
	return res, t, nil
}
