package experiments

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/edge"
	"pano/internal/fleet"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/server"
	"pano/internal/swarm"
)

// FleetScenarioResult is one row of the fleet bench: a session
// population streamed against a 4-shard origin fleet, healthy or with
// one shard hard-down mid-run.
type FleetScenarioResult struct {
	Scenario string
	Live     bool // httptest edges+origins (wall time) vs swarm (virtual time)
	Sessions int
	Aborted  int
	// Deterministic swarm figures (zero-valued on live rows).
	MeanPSPNR      float64
	P10PSPNR       float64
	RebufferPct    float64
	SkippedTiles   int64
	Failovers      int64
	Hedges         int64
	BudgetDenied   int64
	OriginRequests int64
	// ShardLoad is per-shard request counts (swarm: virtual origin
	// requests; live: /video/ requests reaching each shard origin).
	ShardLoad     []int64
	MaxShardShare float64
	// Live-only figures.
	MeanEstPSPNR  float64 // client-side estimate, mean over sessions
	LiveTileReqs  int64   // /video/ requests across all shard origins
	BreakerOpenMs float64 // kill -> first edge breaker leaving Closed
	WallSec       float64
}

// FleetBenchResult is the BENCH_fleet.json payload: the resilience
// ledger for the sharded origin fleet. The swarm rows are deterministic
// (virtual time, seeded) and carry the gateable QoE delta; the live
// rows drive real edges over HTTP and prove zero aborts plus prompt
// breaker reaction when a shard dies under load.
type FleetBenchResult struct {
	Origins      int
	Rows         []FleetScenarioResult
	PSPNRDeltaDB float64 // swarm healthy mean PSPNR - outage mean PSPNR
}

// FleetSwarmSessions sizes the deterministic swarm rows. A variable
// (like SwarmPopulations) so the test suite can shrink it.
var FleetSwarmSessions = 50_000

const (
	fleetOriginCount  = 4
	fleetEdgeCount    = 3
	fleetLiveSessions = 24
	// fleetKillAfter is when the live outage scenario hard-kills shard 0,
	// measured from session launch: late enough that every session is
	// mid-stream, early enough that plenty of fetches remain.
	fleetKillAfter = 600 * time.Millisecond
	// fleetProbeInterval paces the edges' active /healthz probes; the
	// acceptance bound is that a dead shard's breaker opens within a few
	// of these.
	fleetProbeInterval = 150 * time.Millisecond
)

// zipfAssign deterministically spreads n sessions over k choices with a
// Zipf(s=1.2) popularity profile (largest-remainder allocation, no RNG):
// choice 0 is the head, the tail shares the rest. Session u's choice is
// out[u].
func zipfAssign(n, k int) []int {
	w := make([]float64, k)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), 1.2)
		sum += w[i]
	}
	out := make([]int, 0, n)
	cum := 0.0
	for i := range w {
		cum += w[i] / sum
		for len(out) < int(math.Round(cum*float64(n))) && len(out) < n {
			out = append(out, i)
		}
	}
	for len(out) < n {
		out = append(out, 0)
	}
	return out
}

// downSwitch hard-kills a shard: once down, every request panics with
// http.ErrAbortHandler, which resets the connection mid-response — the
// bluntest failure mode a real origin exhibits.
type downSwitch struct {
	h    http.Handler
	down atomic.Bool
}

func (d *downSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if d.down.Load() {
		panic(http.ErrAbortHandler)
	}
	d.h.ServeHTTP(w, r)
}

func maxShare(load []int64) float64 {
	var sum, max int64
	for _, n := range load {
		sum += n
		if n > max {
			max = n
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) / float64(sum)
}

// fleetSwarmScenario runs one deterministic swarm row: the shared swarm
// workload resharded over 4 virtual origins, with modelled hedging and,
// optionally, shard 0 hard-down for a window in the thick of the run.
func fleetSwarmScenario(base swarm.Config, scenario string, outage bool) (FleetScenarioResult, error) {
	cfg := base
	cfg.Sessions = FleetSwarmSessions
	cfg.ScoreEvery = swarmScoreEvery(FleetSwarmSessions)
	cfg.Fetch.HedgeDelay = 150 * time.Millisecond
	cfg.Fleet = &swarm.FleetConfig{
		Origins: fleetOriginCount,
		Breaker: fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 2 * time.Second},
	}
	if outage {
		cfg.Fleet.Outages = []chaos.Down{{After: 20 * time.Second, For: 40 * time.Second}}
	}
	t0 := time.Now()
	rep, err := swarm.Run(context.Background(), cfg)
	if err != nil {
		return FleetScenarioResult{}, err
	}
	s := rep.Summary
	return FleetScenarioResult{
		Scenario:       scenario,
		Sessions:       s.Sessions,
		Aborted:        s.Errored,
		MeanPSPNR:      s.MeanPSPNR,
		P10PSPNR:       s.P10PSPNR,
		RebufferPct:    s.RebufferRatioPct,
		SkippedTiles:   s.SkippedTiles,
		Failovers:      s.FleetFailovers,
		Hedges:         s.FleetHedges,
		BudgetDenied:   s.FleetBudgetDenied,
		OriginRequests: s.OriginRequests,
		ShardLoad:      s.FleetShardLoad,
		MaxShardShare:  maxShare(s.FleetShardLoad),
		WallSec:        time.Since(t0).Seconds(),
	}, nil
}

// FleetBench is the origin-fleet resilience bench. Two deterministic
// swarm rows reshard the swarm workload over 4 virtual origins —
// healthy, then with one shard down for a 40 s window mid-run — and
// carry the acceptance gate: zero aborts and a mean-PSPNR delta within
// 2 dB. Two live rows then stand up the real stack (4 shard origins
// behind 3 caching edges, Zipf-popular viewpoints, hedged fleet
// fetches) and hard-kill a shard mid-run: sessions must ride through on
// ring failover with zero aborts while the edges' breakers open within
// a few probe intervals.
func FleetBench(d *Dataset) (FleetBenchResult, *Table, error) {
	res := FleetBenchResult{Origins: fleetOriginCount}

	base, err := d.swarmConfig()
	if err != nil {
		return res, nil, err
	}
	for _, sc := range []struct {
		name   string
		outage bool
	}{{"swarm_healthy", false}, {"swarm_outage", true}} {
		row, err := fleetSwarmScenario(base, sc.name, sc.outage)
		if err != nil {
			return res, nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	res.PSPNRDeltaDB = res.Rows[0].MeanPSPNR - res.Rows[1].MeanPSPNR

	idx := d.TracedIndices()[0]
	m, err := d.Manifest(idx, provider.ModePano)
	if err != nil {
		return res, nil, err
	}
	srv, err := server.New(m)
	if err != nil {
		return res, nil, err
	}
	traces := d.Traces(idx)
	pick := zipfAssign(fleetLiveSessions, len(traces))

	// Loopback-scaled policy as in EdgeBench, plus a fixed hedge delay:
	// adaptive hedging tracks wall-clock p95 and would burn the shared
	// hedge/failover budget on scheduler noise under load.
	pol := client.FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Microsecond,
		MaxBackoff:        2 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 20 * time.Millisecond,
		HedgeDelay:        150 * time.Millisecond,
	}
	rateCap := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec
	originLatency := chaos.Profile{
		Seed: d.Scale.Seed,
		Tile: chaos.Rule{Latency: 5 * time.Millisecond, Jitter: time.Millisecond},
	}

	runLive := func(scenario string, kill bool) (FleetScenarioResult, error) {
		t0 := time.Now()
		r := FleetScenarioResult{Scenario: scenario, Live: true, Sessions: fleetLiveSessions}

		shards := make([]*tileCounter, fleetOriginCount)
		urls := make([]string, fleetOriginCount)
		var sw *downSwitch
		var closers []func()
		defer func() {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
		}()
		for i := range shards {
			shards[i] = &tileCounter{h: chaos.New(originLatency).Wrap(srv.Handler())}
			var h http.Handler = shards[i]
			if i == 0 {
				sw = &downSwitch{h: h}
				h = sw
			}
			ts := httptest.NewServer(h)
			closers = append(closers, ts.Close)
			urls[i] = ts.URL
		}

		edges := make([]*edge.Edge, fleetEdgeCount)
		fronts := make([]*httptest.Server, fleetEdgeCount)
		for i := range edges {
			e, err := edge.New(edge.Config{
				Origins:       urls,
				ProbeInterval: fleetProbeInterval,
				Breaker:       fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 500 * time.Millisecond},
				CacheBytes:    32 << 20,
				TTL:           5 * time.Minute,
				Fetch:         pol,
				Obs:           obs.NewRegistry(),
				HTTP:          &http.Client{Transport: pooledTransport()},
			})
			if err != nil {
				return r, err
			}
			edges[i] = e
			closers = append(closers, e.Close)
			fronts[i] = httptest.NewServer(e.Handler())
			closers = append(closers, fronts[i].Close)
		}

		// The kill watcher fires mid-run, then clocks how long the fleet
		// takes to notice: first Snapshot on any edge showing shard 0's
		// breaker out of Closed.
		var watch sync.WaitGroup
		if kill {
			watch.Add(1)
			go func() {
				defer watch.Done()
				time.Sleep(fleetKillAfter)
				sw.down.Store(true)
				killed := time.Now()
				deadline := killed.Add(5 * time.Second)
				for time.Now().Before(deadline) {
					for _, e := range edges {
						if e.Fleet().Snapshot()[0].Breaker != fleet.Closed {
							r.BreakerOpenMs = float64(time.Since(killed).Microseconds()) / 1000
							return
						}
					}
					time.Sleep(2 * time.Millisecond)
				}
			}()
		}

		httpc := &http.Client{Transport: pooledTransport()}
		clientReg := obs.NewRegistry()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var pspnrSum float64
		for u := 0; u < fleetLiveSessions; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				time.Sleep(time.Duration(u) * 15 * time.Millisecond)
				p := pol
				p.Seed = uint64(u + 1)
				c := client.New(fronts[u%fleetEdgeCount].URL)
				c.HTTP = httpc
				out, serr := c.Stream(context.Background(), traces[pick[u]], client.StreamConfig{
					MaxRateBps: rateCap,
					Fetch:      p,
					Obs:        clientReg,
				})
				mu.Lock()
				defer mu.Unlock()
				if serr != nil {
					r.Aborted++
					return
				}
				r.SkippedTiles += int64(out.SkippedTiles)
				pspnrSum += out.MeanEstPSPNR
			}(u)
		}
		wg.Wait()
		watch.Wait()

		if done := r.Sessions - r.Aborted; done > 0 {
			r.MeanEstPSPNR = pspnrSum / float64(done)
		}
		r.ShardLoad = make([]int64, fleetOriginCount)
		for i, tc := range shards {
			r.ShardLoad[i] = tc.n.Load()
			r.LiveTileReqs += r.ShardLoad[i]
		}
		r.MaxShardShare = maxShare(r.ShardLoad)
		r.WallSec = time.Since(t0).Seconds()
		return r, nil
	}

	for _, sc := range []struct {
		name string
		kill bool
	}{{"live_healthy", false}, {"live_outage", true}} {
		row, err := runLive(sc.name, sc.kill)
		if err != nil {
			return res, nil, err
		}
		res.Rows = append(res.Rows, row)
	}

	// Gated columns hold only deterministic values: the swarm rows carry
	// the QoE/failover figures, the live rows contribute sessions /
	// aborted / skipped (all exact) and blank the rest. live_reqs,
	// breaker_open_ms, and wall_sec measure the machine and are excluded
	// via benchdiff -ignore.
	t := &Table{
		Title: fmt.Sprintf("Origin fleet: %d shards, 1 killed mid-run — swarm PSPNR delta %.2f dB, live aborts %d",
			res.Origins, res.PSPNRDeltaDB, res.Rows[2].Aborted+res.Rows[3].Aborted),
		Header: []string{"scenario", "sessions", "aborted", "mean_pspnr_db", "p10_pspnr_db",
			"rebuffer_pct", "skipped_tiles", "failovers", "hedges", "budget_denied",
			"max_shard_share", "origin_requests", "live_reqs", "breaker_open_ms", "wall_sec"},
	}
	for _, r := range res.Rows {
		pspnr, p10, rebuf, fo, hg, bd, share, oreq := "-", "-", "-", "-", "-", "-", "-", "-"
		liveReqs, brk := "-", "-"
		if r.Live {
			liveReqs = fmt.Sprintf("%d", r.LiveTileReqs)
			if r.BreakerOpenMs > 0 {
				brk = f1(r.BreakerOpenMs)
			}
		} else {
			pspnr, p10, rebuf = f1(r.MeanPSPNR), f1(r.P10PSPNR), f2(r.RebufferPct)
			fo = fmt.Sprintf("%d", r.Failovers)
			hg = fmt.Sprintf("%d", r.Hedges)
			bd = fmt.Sprintf("%d", r.BudgetDenied)
			share = f2(r.MaxShardShare)
			oreq = fmt.Sprintf("%d", r.OriginRequests)
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario,
			fmt.Sprintf("%d", r.Sessions),
			fmt.Sprintf("%d", r.Aborted),
			pspnr, p10, rebuf,
			fmt.Sprintf("%d", r.SkippedTiles),
			fo, hg, bd, share, oreq, liveReqs, brk,
			f1(r.WallSec),
		})
	}
	return res, t, nil
}
