package experiments

import (
	"os"
	"strings"
	"sync"
	"testing"

	"pano/internal/mathx"
	"pano/internal/scene"
)

// The shared dataset is expensive to preprocess; build it once. Tests
// use an even smaller scale than QuickScale to stay fast.
var (
	dsOnce sync.Once
	ds     *Dataset
)

func testDataset(t *testing.T) *Dataset {
	t.Helper()
	dsOnce.Do(func() {
		s := QuickScale()
		s.TracedVideos = 3
		s.TotalVideos = 7 // one per genre after mixing
		s.Users = 2
		s.DurationSec = 8
		ds = NewDataset(s)
	})
	return ds
}

func TestDatasetGenreMixAndDeterminism(t *testing.T) {
	s := QuickScale()
	s.TotalVideos = 50
	a := NewDataset(s)
	b := NewDataset(s)
	counts := map[scene.Genre]int{}
	for i, v := range a.Videos() {
		counts[v.Genre]++
		if v.Name != b.Videos()[i].Name {
			t.Fatal("dataset should be deterministic")
		}
	}
	// Table 2 mix: Sports ≈ 22%, Performance ≈ 20%, Documentary ≈ 14%.
	if c := counts[scene.Sports]; c < 9 || c > 13 {
		t.Errorf("sports count = %d, want ≈11", c)
	}
	if c := counts[scene.Performance]; c < 8 || c > 12 {
		t.Errorf("performance count = %d, want ≈10", c)
	}
	if c := counts[scene.Documentary]; c < 5 || c > 9 {
		t.Errorf("documentary count = %d, want ≈7", c)
	}
}

func TestDatasetCachesManifests(t *testing.T) {
	d := testDataset(t)
	m1, err := d.Manifest(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := d.Manifest(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Error("manifest should be cached (same pointer)")
	}
	if len(d.Traces(0)) != d.Scale.Users {
		t.Errorf("traces = %d, want %d", len(d.Traces(0)), d.Scale.Users)
	}
}

func TestFig1Shape(t *testing.T) {
	d := testDataset(t)
	rows, table, err := Fig1(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byName := map[System]Fig1Row{}
	for _, r := range rows {
		byName[r.System] = r
	}
	// Headline shape: Pano's quality is at least the baselines'.
	if byName[SysPano].PSPNR < byName[SysFlare].PSPNR {
		t.Errorf("pano %.1f below viewport-driven %.1f", byName[SysPano].PSPNR, byName[SysFlare].PSPNR)
	}
	if !strings.Contains(table.String(), "pano") {
		t.Error("table should render system names")
	}
}

func TestFig3Shape(t *testing.T) {
	d := testDataset(t)
	res, _, err := Fig3(d)
	if err != nil {
		t.Fatal(err)
	}
	// §2.3: speed and DoF exceed their thresholds for some but not all
	// of the time (the paper reports 5-40%).
	for name, frac := range map[string]float64{
		"speed": res.SpeedExceed, "dof": res.DoFExceed,
	} {
		if frac < 0.002 || frac > 0.9 {
			t.Errorf("%s exceedance = %.3f, want a nontrivial fraction", name, frac)
		}
	}
	// The 200-grey luminance tail needs minutes of viewing to populate
	// (5 s windows must straddle a full light cycle); at this test
	// scale assert nontrivial luminance dynamics instead.
	if res.LumaChange.Quantile(0.9) < 40 {
		t.Errorf("p90 luma change = %v, want ≥ 40 grey", res.LumaChange.Quantile(0.9))
	}
	if res.Speed.Quantile(0.5) <= 0 {
		t.Error("median speed should be positive")
	}
}

func TestFig4Shape(t *testing.T) {
	d := testDataset(t)
	rows, _, err := Fig4(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !(rows[0].MeanRatio < rows[1].MeanRatio && rows[1].MeanRatio < rows[2].MeanRatio) {
		t.Errorf("ratios not increasing: %v %v %v", rows[0].MeanRatio, rows[1].MeanRatio, rows[2].MeanRatio)
	}
	// Figure 4: 12x24 inflates to ~2-3x.
	if rows[2].MeanRatio < 1.5 || rows[2].MeanRatio > 4.5 {
		t.Errorf("12x24 ratio = %v, want ~2-3x", rows[2].MeanRatio)
	}
}

func TestFig6Shape(t *testing.T) {
	d := testDataset(t)
	rows, _, err := Fig6(d)
	if err != nil {
		t.Fatal(err)
	}
	// Measured JND rises monotonically within each factor and tracks
	// the model within 35%.
	last := map[string]float64{}
	for _, r := range rows {
		if prev, ok := last[r.Factor]; ok && r.MeasuredJND < prev-1.0 {
			t.Errorf("%s: measured JND fell from %v to %v", r.Factor, prev, r.MeasuredJND)
		}
		last[r.Factor] = r.MeasuredJND
		if r.ModelJND > 0 {
			dev := (r.MeasuredJND - r.ModelJND) / r.ModelJND
			if dev > 0.5 || dev < -0.5 {
				t.Errorf("%s@%v: measured %v vs model %v", r.Factor, r.Value, r.MeasuredJND, r.ModelJND)
			}
		}
	}
}

func TestFig7IndependenceHolds(t *testing.T) {
	d := testDataset(t)
	rows, _, err := Fig7(d)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for _, r := range rows {
		if r.RelDeviation > worst {
			worst = r.RelDeviation
		}
	}
	if worst > 0.30 {
		t.Errorf("independence deviation %.0f%%, want ≤ 30%%", worst*100)
	}
}

func TestFig8Ordering(t *testing.T) {
	d := testDataset(t)
	res, _, err := Fig8(d)
	if err != nil {
		t.Fatal(err)
	}
	m360 := mathx.NewCDF(res.Err360PSPNR).Quantile(0.5)
	mTrad := mathx.NewCDF(res.ErrTradPSPNR).Quantile(0.5)
	mPSNR := mathx.NewCDF(res.ErrPSNR).Quantile(0.5)
	// Figure 8's ordering: 360JND best; PSNR worst or equal.
	if m360 > mTrad+1e-9 {
		t.Errorf("360JND median error %v above traditional %v", m360, mTrad)
	}
	if m360 > mPSNR+1e-9 {
		t.Errorf("360JND median error %v above PSNR %v", m360, mPSNR)
	}
}

func TestFig10BoundHolds(t *testing.T) {
	d := testDataset(t)
	rows, _, err := Fig10(d)
	if err != nil {
		t.Fatal(err)
	}
	held := 0
	for _, r := range rows {
		if r.PredictedBound <= r.RealSpeed+1.0 {
			held++
		}
	}
	if frac := float64(held) / float64(len(rows)); frac < 0.7 {
		t.Errorf("bound held %.0f%% of time, want ≥ 70%%", frac*100)
	}
}

func TestRegistryRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("full registry is slow")
	}
	d := testDataset(t)
	old := Fig14OutDir
	Fig14OutDir = t.TempDir()
	defer func() { Fig14OutDir = old }()
	oldPops := SwarmPopulations
	SwarmPopulations = []int{200, 400} // the full ladder lives in `make swarm`
	defer func() { SwarmPopulations = oldPops }()
	for _, id := range IDs() {
		table, err := Run(d, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if table == nil || len(table.Rows) == 0 {
			t.Fatalf("%s: empty table", id)
		}
		if table.String() == "" {
			t.Fatalf("%s: empty render", id)
		}
	}
}

func TestFig14WritesSnapshots(t *testing.T) {
	d := testDataset(t)
	dir := t.TempDir()
	rows, _, err := Fig14(d, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		st, err := os.Stat(r.PNGPath)
		if err != nil {
			t.Fatalf("%s: %v", r.System, err)
		}
		if st.Size() == 0 {
			t.Errorf("%s: empty PNG", r.System)
		}
		if r.MeanLevel < 0 || r.MeanLevel > 4 {
			t.Errorf("%s: mean level %v", r.System, r.MeanLevel)
		}
	}
	if _, err := os.Stat(dir + "/fig14-original.png"); err != nil {
		t.Error("original snapshot missing")
	}
	// Pano spends more of its budget on the moving objects than on the
	// background, relative to the baseline (the Figure 14 story).
	pano, flare := rows[0], rows[1]
	panoSplit := pano.BackgroundLevel - pano.FocusLevel
	flareSplit := flare.BackgroundLevel - flare.FocusLevel
	if panoSplit < flareSplit-1.5 {
		t.Errorf("pano object-vs-background split %.2f much below baseline %.2f",
			panoSplit, flareSplit)
	}
}

func TestJoint3Independence(t *testing.T) {
	// The §9 extension: with all three factors non-zero, the measured
	// joint JND still matches the product of marginals within the
	// panel's noise.
	d := testDataset(t)
	rows, _, err := Joint3(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 27 {
		t.Fatalf("rows = %d, want 27", len(rows))
	}
	var worst float64
	for _, r := range rows {
		if r.RelDeviation > worst {
			worst = r.RelDeviation
		}
		if r.JointJND <= 0 || r.ProductJND <= 0 {
			t.Fatalf("non-positive JND in row %+v", r)
		}
	}
	if worst > 0.35 {
		t.Errorf("three-factor independence deviation %.0f%%, want ≤ 35%%", worst*100)
	}
}

func TestCrossUserPredictionImproves(t *testing.T) {
	d := testDataset(t)
	rows, _, err := CrossUserPrediction(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// At the longest horizon the cross-user prior should help (our
	// traces share salient objects).
	last := rows[len(rows)-1]
	if last.CrossUserErrDeg > last.LinearErrDeg+2 {
		t.Errorf("cross-user error %.1f° much worse than linear %.1f° at %gs",
			last.CrossUserErrDeg, last.LinearErrDeg, last.HorizonSec)
	}
}

func TestRunUnknownID(t *testing.T) {
	d := testDataset(t)
	if _, err := Run(d, "fig99"); err == nil {
		t.Error("unknown id should error")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}, Rows: [][]string{{"1", "2"}}}
	s := tab.String()
	if !strings.Contains(s, "== T ==") || !strings.Contains(s, "bb") {
		t.Errorf("render: %q", s)
	}
}
