package experiments

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/edge"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/server"
)

// EdgeArmResult summarizes one arm (direct-to-origin or via edge) of
// the edge-cache bench.
type EdgeArmResult struct {
	Arm             string
	Sessions        int
	Aborts          int
	OriginTileReqs  int64
	ClientTileReqs  int64
	TileP50Ms       float64
	TileP99Ms       float64
	HitRatio        float64 // edge arm only
	CoalescedTile   float64 // edge arm only
	PrefetchWarmed  float64 // edge arm only
	CacheBytesUsed  int64   // edge arm only
	Evictions       float64 // edge arm only
	MeanEstPSPNR    float64
	MeanRebufferSec float64
}

// EdgeBenchResult is the BENCH_edge.json payload: the same concurrent
// session population streamed twice — straight at the origin, then
// through the caching edge — and the origin-offload that buys.
type EdgeBenchResult struct {
	Sessions    int
	Direct      EdgeArmResult
	Edge        EdgeArmResult
	OffloadFrac float64 // 1 - edge-origin-tile-reqs / direct-origin-tile-reqs
}

// edgeBenchSessions is fixed (not scale-derived): the acceptance target
// is origin offload for 20 concurrent overlapping viewers.
const edgeBenchSessions = 20

// latencyTransport records time-to-first-byte for tile requests; both
// arms are measured identically so the comparison is fair even though
// body-read time is excluded.
type latencyTransport struct {
	base http.RoundTripper
	mu   sync.Mutex
	ms   []float64
	n    atomic.Int64
}

func (lt *latencyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !strings.HasPrefix(req.URL.Path, "/video/") {
		return lt.base.RoundTrip(req)
	}
	lt.n.Add(1)
	t0 := time.Now()
	resp, err := lt.base.RoundTrip(req)
	dt := float64(time.Since(t0).Microseconds()) / 1000
	lt.mu.Lock()
	lt.ms = append(lt.ms, dt)
	lt.mu.Unlock()
	return resp, err
}

func (lt *latencyTransport) percentile(p float64) float64 {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	if len(lt.ms) == 0 {
		return 0
	}
	s := append([]float64(nil), lt.ms...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}

// pooledTransport returns a transport with enough idle connections for
// 20 concurrent sessions against one host — the default of 2 would
// measure connection churn, not cache behaviour.
func pooledTransport() *http.Transport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 4 * edgeBenchSessions
	return tr
}

// tileCounter counts /video/ requests reaching the origin.
type tileCounter struct {
	h http.Handler
	n atomic.Int64
}

func (tc *tileCounter) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.URL.Path, "/video/") {
		tc.n.Add(1)
	}
	tc.h.ServeHTTP(w, r)
}

// EdgeBench streams 20 concurrent overlapping sessions twice — direct
// against a latency-injected origin, then through an internal/edge
// cache with cross-user prefetch — and reports origin offload (the
// fraction of tile fetches the edge absorbs) plus client-observed tile
// latency percentiles for both arms.
//
// The origin carries a small injected per-tile latency (chaos injector,
// loopback-scaled like ChaosBench) standing in for the client↔origin
// WAN hop an edge deployment shortcuts; ratios, not absolute
// milliseconds, are the result. On few-core machines the p99 column is
// dominated by run-queue scheduling (40 goroutine sessions plus both
// servers share the cores), so p50 is the robust latency comparison;
// offload and hit ratio are unaffected.
func EdgeBench(d *Dataset) (EdgeBenchResult, *Table, error) {
	idx := d.TracedIndices()[0]
	m, err := d.Manifest(idx, provider.ModePano)
	if err != nil {
		return EdgeBenchResult{}, nil, err
	}
	s, err := server.New(m)
	if err != nil {
		return EdgeBenchResult{}, nil, err
	}
	traces := d.Traces(idx)

	// Loopback-scaled policy and rate cap, as in ChaosBench: decisions
	// must not depend on local throughput noise.
	pol := client.FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Microsecond,
		MaxBackoff:        2 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 20 * time.Millisecond,
	}
	rateCap := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec
	// A few milliseconds of injected per-tile latency stands in for the
	// client↔origin WAN hop an edge deployment shortcuts — large against
	// loopback noise, small enough to keep the bench fast.
	originLatency := chaos.Profile{
		Seed: d.Scale.Seed,
		Tile: chaos.Rule{Latency: 5 * time.Millisecond, Jitter: time.Millisecond},
	}

	runArm := func(name string, mkHandler func(origin *tileCounter) (http.Handler, *edge.Edge, *obs.Registry, func(), error)) (EdgeArmResult, error) {
		origin := &tileCounter{h: chaos.New(originLatency).Wrap(s.Handler())}
		front, e, reg, cleanup, err := mkHandler(origin)
		if err != nil {
			return EdgeArmResult{}, err
		}
		if cleanup != nil {
			defer cleanup()
		}
		ts := httptest.NewServer(front)
		defer ts.Close()
		if e != nil {
			defer e.Close()
		}

		lt := &latencyTransport{base: pooledTransport()}
		httpc := &http.Client{Transport: lt}
		clientReg := obs.NewRegistry() // enables the client's PSPNR estimate
		ar := EdgeArmResult{Arm: name, Sessions: edgeBenchSessions}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var pspnrSum, rebufSum float64
		for u := 0; u < edgeBenchSessions; u++ {
			wg.Add(1)
			go func(u int) {
				defer wg.Done()
				// Overlapping, not lock-step: viewers join a live moment a
				// beat apart, so early sessions populate the cache the rest
				// hit.
				time.Sleep(time.Duration(u) * 15 * time.Millisecond)
				p := pol
				p.Seed = uint64(u + 1)
				c := client.New(ts.URL)
				c.HTTP = httpc
				out, serr := c.Stream(context.Background(), traces[u%len(traces)], client.StreamConfig{
					MaxRateBps: rateCap,
					Fetch:      p,
					Obs:        clientReg,
				})
				mu.Lock()
				defer mu.Unlock()
				if serr != nil {
					ar.Aborts++
					return
				}
				pspnrSum += out.MeanEstPSPNR
				rebufSum += out.RebufferSec
			}(u)
		}
		wg.Wait()
		if e != nil {
			e.DrainPrefetch()
		}
		if done := ar.Sessions - ar.Aborts; done > 0 {
			ar.MeanEstPSPNR = pspnrSum / float64(done)
			ar.MeanRebufferSec = rebufSum / float64(done)
		}
		ar.OriginTileReqs = origin.n.Load()
		ar.ClientTileReqs = lt.n.Load()
		ar.TileP50Ms = lt.percentile(0.50)
		ar.TileP99Ms = lt.percentile(0.99)
		if reg != nil {
			ar.HitRatio = reg.GaugeValue("pano_edge_hit_ratio")
			ar.CoalescedTile = reg.CounterValue("pano_edge_coalesced_total", obs.L("endpoint", "tile"))
			ar.PrefetchWarmed = reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed"))
			ar.Evictions = reg.CounterValue("pano_edge_evictions_total")
		}
		if e != nil {
			ar.CacheBytesUsed = e.CacheBytes()
		}
		return ar, nil
	}

	res := EdgeBenchResult{Sessions: edgeBenchSessions}
	res.Direct, err = runArm("direct", func(origin *tileCounter) (http.Handler, *edge.Edge, *obs.Registry, func(), error) {
		return origin, nil, nil, nil, nil
	})
	if err != nil {
		return res, nil, err
	}
	res.Edge, err = runArm("edge", func(origin *tileCounter) (http.Handler, *edge.Edge, *obs.Registry, func(), error) {
		ots := httptest.NewServer(origin)
		reg := obs.NewRegistry()
		e, err := edge.New(edge.Config{
			Origin:         ots.URL,
			CacheBytes:     64 << 20,
			TTL:            5 * time.Minute,
			Fetch:          pol,
			PrefetchBudget: 32,
			Peers:          traces[:min(len(traces), 4)],
			Obs:            reg,
			HTTP:           &http.Client{Transport: pooledTransport()},
		})
		if err != nil {
			ots.Close()
			return nil, nil, nil, nil, err
		}
		return e.Handler(), e, reg, ots.Close, nil
	})
	if err != nil {
		return res, nil, err
	}
	if res.Direct.OriginTileReqs > 0 {
		res.OffloadFrac = 1 - float64(res.Edge.OriginTileReqs)/float64(res.Direct.OriginTileReqs)
	}

	t := &Table{
		Title: fmt.Sprintf("Edge cache tier: %d concurrent overlapping sessions, origin offload %.1f%%",
			res.Sessions, 100*res.OffloadFrac),
		Header: []string{"arm", "sessions", "aborts", "origin_tile_reqs", "client_tile_reqs",
			"tile_p50_ms", "tile_p99_ms", "hit_ratio", "coalesced", "prefetch_warmed", "mean_est_pspnr_db"},
	}
	for _, ar := range []EdgeArmResult{res.Direct, res.Edge} {
		hit, co, warm := "-", "-", "-"
		if ar.Arm == "edge" {
			hit, co, warm = f2(ar.HitRatio), f0(ar.CoalescedTile), f0(ar.PrefetchWarmed)
		}
		t.Rows = append(t.Rows, []string{
			ar.Arm,
			fmt.Sprintf("%d", ar.Sessions),
			fmt.Sprintf("%d", ar.Aborts),
			fmt.Sprintf("%d", ar.OriginTileReqs),
			fmt.Sprintf("%d", ar.ClientTileReqs),
			f2(ar.TileP50Ms),
			f2(ar.TileP99Ms),
			hit, co, warm,
			f1(ar.MeanEstPSPNR),
		})
	}
	return res, t, nil
}
