package experiments

import (
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"pano/internal/client"
	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/player"
)

// Fig14OutDir is where Fig14 writes its snapshot PNGs when run through
// the registry (cmd/pano-bench). Tests override it.
var Fig14OutDir = "fig14-out"

// Fig14Row summarizes one system's snapshot.
type Fig14Row struct {
	System    System
	PNGPath   string
	MeanLevel float64
	// FocusLevel is the mean level of tiles containing moving objects
	// (the skier of Figure 14); BackgroundLevel the rest.
	FocusLevel, BackgroundLevel float64
}

// Fig14 reproduces Figure 14: a snapshot of the same chunk streamed by
// Pano and by the viewport-driven baseline at the same budget. Each
// system's delivered frame is reconstructed for real — every tile
// re-quantized at its allocated level and stitched with the client's
// row-major copy — and written as a PNG next to the original. Pano
// gives the tracked objects (static to the eye) high quality and lets
// the fast-sweeping background degrade; the baseline spreads quality by
// viewport distance only.
func Fig14(d *Dataset, outDir string) ([]Fig14Row, *Table, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return nil, nil, err
	}
	vi := d.TracedIndices()[0]
	v := d.Video(vi)
	tr := d.Traces(vi)[0]
	enc := codec.NewEncoder()
	est := player.NewEstimator()
	k := d.Scale.DurationSec / 2 // mid-session chunk
	key := v.RenderFrame(k * v.FPS)

	if err := writePNG(filepath.Join(outDir, "fig14-original.png"), key); err != nil {
		return nil, nil, err
	}

	var rows []Fig14Row
	t := &Table{
		Title:  "Figure 14: delivered-frame snapshot, Pano vs viewport-driven",
		Header: []string{"system", "png", "mean_level", "object_tiles", "background_tiles"},
	}
	for _, s := range []System{SysPano, SysFlare} {
		mode, planner := s.components()
		m, err := d.Manifest(vi, mode)
		if err != nil {
			return nil, nil, err
		}
		view := est.View(m, tr, k, float64(k)*m.ChunkSec-1)
		budget := m.ChunkBits(k, codec.Level(2))
		alloc := planner.Plan(m, k, view, budget)

		// Reconstruct the delivered frame tile by tile.
		tiles := map[int]*frame.Frame{}
		var meanL, focusL, bgL float64
		var nFocus, nBg int
		for ti, l := range alloc {
			rect := m.Chunks[k].Tiles[ti].Rect
			df, err := enc.DistortRegion(key, rect, l.QP())
			if err != nil {
				return nil, nil, err
			}
			tiles[ti] = df
			meanL += float64(l)
			if m.Chunks[k].Tiles[ti].ObjSpeedDeg > 0.5 {
				focusL += float64(l)
				nFocus++
			} else {
				bgL += float64(l)
				nBg++
			}
		}
		dst := frame.New(m.W, m.H)
		if err := client.Stitch(m, k, tiles, dst); err != nil {
			return nil, nil, err
		}
		path := filepath.Join(outDir, fmt.Sprintf("fig14-%s.png", s))
		if err := writePNG(path, dst); err != nil {
			return nil, nil, err
		}
		r := Fig14Row{System: s, PNGPath: path, MeanLevel: meanL / float64(len(alloc))}
		if nFocus > 0 {
			r.FocusLevel = focusL / float64(nFocus)
		}
		if nBg > 0 {
			r.BackgroundLevel = bgL / float64(nBg)
		}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{s.String(), path,
			f2(r.MeanLevel), f2(r.FocusLevel), f2(r.BackgroundLevel)})
	}
	return rows, t, nil
}

func writePNG(path string, f *frame.Frame) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := png.Encode(file, f.ToGray()); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// init registers fig14 with the default output directory.
func init() {
	registry["fig14"] = func(d *Dataset) (*Table, error) {
		_, t, err := Fig14(d, Fig14OutDir)
		return t, err
	}
}
