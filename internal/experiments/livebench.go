package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"pano/internal/client"
	"pano/internal/codec"
	"pano/internal/edge"
	"pano/internal/fleet"
	"pano/internal/live"
	"pano/internal/obs"
	"pano/internal/server"
	"pano/internal/store"
)

// LiveScenarioResult is one row of the live bench.
type LiveScenarioResult struct {
	Scenario string
	// Pipeline figures (publisher rows).
	Chunks         int
	DeadlineMisses int
	Degraded       int
	OnTimeFrac     float64
	// Session figures (HTTP rows).
	Sessions      int
	Aborted       int
	LostChunks    int // published chunks a session neither played nor skipped
	SkippedChunks int
	// Stateless-origin proof figures.
	TilesCompared int
	Mismatches    int
	// Wall-clock figures (excluded from the benchdiff gate).
	LiveLatencyMeanSec float64
	LiveLatencyMaxSec  float64
	MeanPublishMs      float64
	WallSec            float64
}

// LiveBenchResult is the BENCH_live.json payload: the just-in-time
// pipeline's publish ledger, the stateless-origin byte/ETag proof, and
// a live failover run where one of two store-backed origins is killed
// mid-feed while real clients ride the edge.
type LiveBenchResult struct {
	Rows []LiveScenarioResult
	// OnTimeFrac is the headline jit_pipeline publish punctuality.
	OnTimeFrac float64
}

const (
	// liveCaptureInterval compresses the feed clock: one chunk of the
	// 1 s-chunk video is captured per tick instead of per second.
	liveCaptureInterval = 10 * time.Millisecond
	liveFailoverClients = 4
)

// liveRunFeed captures, encodes, and publishes the whole feed into a
// fresh store directory, returning the pipeline, its report, and the
// directory (caller removes it).
func liveRunFeed(d *Dataset, deadline time.Duration) (*live.Pipeline, *live.Report, string, error) {
	idx := d.TracedIndices()[0]
	dir, err := os.MkdirTemp("", "pano-live-")
	if err != nil {
		return nil, nil, "", err
	}
	s, err := store.Open(dir)
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	p, err := live.New(live.Config{
		Video:           d.Video(idx),
		History:         d.Traces(idx),
		Store:           s,
		CaptureInterval: liveCaptureInterval,
		Deadline:        deadline,
	})
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	rep, err := p.Run(context.Background())
	if err != nil {
		os.RemoveAll(dir)
		return nil, nil, "", err
	}
	return p, rep, dir, nil
}

func livePipelineRow(scenario string, rep *live.Report) LiveScenarioResult {
	return LiveScenarioResult{
		Scenario:       scenario,
		Chunks:         rep.Chunks,
		DeadlineMisses: rep.DeadlineMisses,
		Degraded:       rep.Degraded,
		OnTimeFrac:     rep.OnTimeFrac(),
		MeanPublishMs:  float64(rep.MeanPublishLatency.Microseconds()) / 1000,
	}
}

// liveCompareOrigins opens two independent Store+Backend pairs over one
// published directory and compares every object both ways: manifest
// bytes + ETag, then every tile at every level. Returns (compared,
// mismatches).
func liveCompareOrigins(dir string) (int, int, error) {
	open := func() (*store.Backend, error) {
		s, err := store.Open(dir)
		if err != nil {
			return nil, err
		}
		return store.NewBackend(s)
	}
	b1, err := open()
	if err != nil {
		return 0, 0, err
	}
	b2, err := open()
	if err != nil {
		return 0, 0, err
	}
	compared, mismatches := 0, 0
	m, body1, etag1, err := b1.Manifest()
	if err != nil {
		return 0, 0, err
	}
	_, body2, etag2, err := b2.Manifest()
	if err != nil {
		return 0, 0, err
	}
	compared++
	if etag1 != etag2 || !bytes.Equal(body1, body2) {
		mismatches++
	}
	for k := 0; k < m.NumChunks(); k++ {
		for ti := range m.Chunks[k].Tiles {
			for l := 0; l < codec.NumLevels; l++ {
				lv := codec.Level(l)
				d1, err1 := b1.TileData(k, ti, lv)
				d2, err2 := b2.TileData(k, ti, lv)
				s1, _ := b1.TileStat(k, ti, lv)
				s2, _ := b2.TileStat(k, ti, lv)
				compared++
				if err1 != nil || err2 != nil || !bytes.Equal(d1, d2) || s1.ETag != s2.ETag {
					mismatches++
				}
			}
		}
	}
	return compared, mismatches, nil
}

// liveFailoverRow runs the full live stack and kills an origin in the
// thick of it: a JIT pipeline on an impossible deadline (every chunk
// publishes late and degraded), two stateless store origins over the
// shared directory, one caching edge fronting both with ring failover,
// and live client sessions following the edge. Origin 0 dies once half
// the feed is out; no session may abort and every published chunk must
// be played or deliberately skipped — never lost.
func liveFailoverRow(d *Dataset) (LiveScenarioResult, error) {
	r := LiveScenarioResult{Scenario: "live_failover", Sessions: liveFailoverClients}
	t0 := time.Now()
	idx := d.TracedIndices()[0]
	dir, err := os.MkdirTemp("", "pano-live-")
	if err != nil {
		return r, err
	}
	defer os.RemoveAll(dir)
	pubStore, err := store.Open(dir)
	if err != nil {
		return r, err
	}
	pipe, err := live.New(live.Config{
		Video:           d.Video(idx),
		History:         d.Traces(idx),
		Store:           pubStore,
		CaptureInterval: 2 * liveCaptureInterval,
		Deadline:        time.Nanosecond, // every publish is "late": prove that never aborts a client
	})
	if err != nil {
		return r, err
	}
	feedDone := make(chan *live.Report, 1)
	feedErr := make(chan error, 1)
	go func() {
		rep, err := pipe.Run(context.Background())
		feedDone <- rep
		feedErr <- err
	}()

	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()
	origin := func() (*downSwitch, string, error) {
		s, err := store.Open(dir)
		if err != nil {
			return nil, "", err
		}
		var b *store.Backend
		deadline := time.Now().Add(10 * time.Second)
		for {
			b, err = store.NewBackend(s)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return nil, "", fmt.Errorf("livebench: catalog never appeared: %w", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
		srv, err := server.NewBackend(b)
		if err != nil {
			return nil, "", err
		}
		sw := &downSwitch{h: srv.Handler()}
		ts := httptest.NewServer(sw)
		closers = append(closers, ts.Close)
		return sw, ts.URL, nil
	}
	sw0, u0, err := origin()
	if err != nil {
		return r, err
	}
	_, u1, err := origin()
	if err != nil {
		return r, err
	}

	// A short base TTL keeps the cached live manifest close to the
	// compressed feed clock (the chunkSec/2 clamp assumes real time).
	e, err := edge.New(edge.Config{
		Origins:       []string{u0, u1},
		ProbeInterval: 25 * time.Millisecond,
		Breaker:       fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 100 * time.Millisecond},
		CacheBytes:    32 << 20,
		TTL:           25 * time.Millisecond,
		Obs:           obs.NewRegistry(),
		Fetch: client.FetchPolicy{
			MaxAttempts:       3,
			BaseBackoff:       500 * time.Microsecond,
			MaxBackoff:        5 * time.Millisecond,
			AttemptTimeout:    2 * time.Second,
			MinAttemptTimeout: 20 * time.Millisecond,
		},
		HTTP: &http.Client{Transport: pooledTransport()},
	})
	if err != nil {
		return r, err
	}
	closers = append(closers, e.Close)
	front := httptest.NewServer(e.Handler())
	closers = append(closers, front.Close)

	// Kill origin 0 once half the feed is published.
	killDone := make(chan struct{})
	go func() {
		defer close(killDone)
		half := d.Scale.DurationSec / 2
		deadline := time.Now().Add(10 * time.Second)
		for pipe.Edge() < half && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		sw0.down.Store(true)
	}()

	traces := d.Traces(idx)
	httpc := &http.Client{Transport: pooledTransport()}
	var wg sync.WaitGroup
	var mu sync.Mutex
	results := make([]*client.StreamResult, 0, liveFailoverClients)
	for u := 0; u < liveFailoverClients; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			p := client.FetchPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond,
				MaxBackoff: 10 * time.Millisecond, AttemptTimeout: 2 * time.Second,
				MinAttemptTimeout: 20 * time.Millisecond, Seed: uint64(u + 1)}
			c := client.New(front.URL)
			c.HTTP = httpc
			out, serr := c.Stream(context.Background(), traces[u%len(traces)], client.StreamConfig{
				Fetch: p,
				Live: client.LivePolicy{
					PollInterval: 2 * time.Millisecond,
					// Sessions must never fall behind by policy in this row:
					// a skip would be indistinguishable from a lost chunk.
					MaxLatencyChunks: 1 << 10,
					EdgeTimeout:      10 * time.Second,
				},
			})
			mu.Lock()
			defer mu.Unlock()
			if serr != nil {
				r.Aborted++
				return
			}
			results = append(results, out)
		}(u)
	}
	wg.Wait()
	<-killDone
	rep := <-feedDone
	if err := <-feedErr; err != nil {
		return r, err
	}

	final := pipe.Manifest()
	r.Chunks = rep.Chunks
	r.DeadlineMisses = rep.DeadlineMisses
	r.Degraded = rep.Degraded
	r.OnTimeFrac = rep.OnTimeFrac()
	r.MeanPublishMs = float64(rep.MeanPublishLatency.Microseconds()) / 1000
	var latSum float64
	for _, out := range results {
		r.SkippedChunks += out.LiveSkippedChunks
		if lost := final.NumChunks() - (len(out.Chunks) + out.LiveSkippedChunks); lost > 0 {
			r.LostChunks += lost
		}
		latSum += out.LiveLatencyMeanSec
		if out.LiveLatencyMaxSec > r.LiveLatencyMaxSec {
			r.LiveLatencyMaxSec = out.LiveLatencyMaxSec
		}
	}
	if len(results) > 0 {
		r.LiveLatencyMeanSec = latSum / float64(len(results))
	}
	r.WallSec = time.Since(t0).Seconds()
	return r, nil
}

// LiveBench is the live-streaming bench. Row 1 (jit_pipeline) runs the
// just-in-time pipeline on a generous 1 s publish budget — the
// acceptance gate is ≥95% on-time publishes. Row 2 (jit_tight_deadline)
// makes the deadline impossible and proves the failure mode is graceful
// and total: every chunk publishes anyway, late and on the degraded
// rung. Row 3 (stateless_origins) opens two independent origins over
// row 1's directory and compares every object byte-for-byte and
// ETag-for-ETag. Row 4 (live_failover) runs the full HTTP stack — two
// store origins behind a failover edge, live clients at the moving
// edge — and kills an origin mid-feed: zero aborts, zero lost chunks.
func LiveBench(d *Dataset) (LiveBenchResult, *Table, error) {
	res := LiveBenchResult{}

	t0 := time.Now()
	_, rep, dir, err := liveRunFeed(d, time.Second)
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)
	row := livePipelineRow("jit_pipeline", rep)
	row.WallSec = time.Since(t0).Seconds()
	res.Rows = append(res.Rows, row)
	res.OnTimeFrac = row.OnTimeFrac

	t0 = time.Now()
	_, rep2, dir2, err := liveRunFeed(d, time.Nanosecond)
	if err != nil {
		return res, nil, err
	}
	os.RemoveAll(dir2)
	row = livePipelineRow("jit_tight_deadline", rep2)
	row.WallSec = time.Since(t0).Seconds()
	res.Rows = append(res.Rows, row)

	t0 = time.Now()
	compared, mismatches, err := liveCompareOrigins(dir)
	if err != nil {
		return res, nil, err
	}
	res.Rows = append(res.Rows, LiveScenarioResult{
		Scenario: "stateless_origins", TilesCompared: compared,
		Mismatches: mismatches, WallSec: time.Since(t0).Seconds(),
	})

	frow, err := liveFailoverRow(d)
	if err != nil {
		return res, nil, err
	}
	res.Rows = append(res.Rows, frow)

	// lat_*, pub_ms, and wall_sec measure the machine (compressed feed
	// clock included), not the system — benchdiff -ignore's them.
	t := &Table{
		Title: fmt.Sprintf("Live streaming: JIT pipeline %.0f%% on time, %d/%d origin objects byte-identical, failover aborts %d, lost chunks %d",
			100*res.OnTimeFrac, compared-mismatches, compared, frow.Aborted, frow.LostChunks),
		Header: []string{"scenario", "chunks", "on_time", "misses", "degraded",
			"sessions", "aborted", "lost_chunks", "skipped",
			"tiles_cmp", "mismatch", "lat_mean_s", "lat_max_s", "pub_ms", "wall_sec"},
	}
	for _, r := range res.Rows {
		chunks, onTime, misses, degraded := "-", "-", "-", "-"
		sessions, aborted, lost, skipped := "-", "-", "-", "-"
		cmp, mism, latMean, latMax, pub := "-", "-", "-", "-", "-"
		if r.Chunks > 0 {
			chunks = fmt.Sprintf("%d", r.Chunks)
			onTime = f2(r.OnTimeFrac)
			misses = fmt.Sprintf("%d", r.DeadlineMisses)
			degraded = fmt.Sprintf("%d", r.Degraded)
			pub = f2(r.MeanPublishMs)
		}
		if r.Sessions > 0 {
			sessions = fmt.Sprintf("%d", r.Sessions)
			aborted = fmt.Sprintf("%d", r.Aborted)
			lost = fmt.Sprintf("%d", r.LostChunks)
			skipped = fmt.Sprintf("%d", r.SkippedChunks)
			latMean = f2(r.LiveLatencyMeanSec)
			latMax = f2(r.LiveLatencyMaxSec)
		}
		if r.TilesCompared > 0 {
			cmp = fmt.Sprintf("%d", r.TilesCompared)
			mism = fmt.Sprintf("%d", r.Mismatches)
		}
		t.Rows = append(t.Rows, []string{
			r.Scenario, chunks, onTime, misses, degraded,
			sessions, aborted, lost, skipped,
			cmp, mism, latMean, latMax, pub, f1(r.WallSec),
		})
	}
	return res, t, nil
}
