package experiments

import "testing"

// TestClusterBenchContract is the acceptance bar of the cluster bench:
// the obsd plane federates five live processes, the rollup equals the
// per-process sums exactly, the fleet-wide SLOs page during the origin
// kill and recover after revival, and one session's spans assemble
// across at least three processes into a valid Chrome trace.
func TestClusterBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster bench drives five live HTTP processes plus an obsd plane")
	}
	d := testDataset(t)
	res, table, err := ClusterBench(d)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) == 0 {
		t.Fatalf("no table rows")
	}
	if res.Targets != 5 || res.FinalUp != 5 {
		t.Errorf("targets %d, final up %d, want 5/5", res.Targets, res.FinalUp)
	}
	if res.Aborted != 0 {
		t.Errorf("%d live sessions aborted through the outage", res.Aborted)
	}
	if res.CounterSeries == 0 || res.CounterMismatch != 0 {
		t.Errorf("counter federation not exact: %d mismatches over %d series",
			res.CounterMismatch, res.CounterSeries)
	}
	if res.HistSeries == 0 || res.HistMismatch != 0 {
		t.Errorf("histogram federation not exact: %d mismatches over %d series",
			res.HistMismatch, res.HistSeries)
	}
	if res.Unmergeable != 0 {
		t.Errorf("%d unmergeable histogram families in a single-build fleet", res.Unmergeable)
	}
	if !res.Origin0StaleSeen {
		t.Errorf("killed origin never reported stale")
	}
	if res.RebufferPageStep < 0 || !res.RebufferRecovered {
		t.Errorf("rebuffer SLO page/recover = %d/%v", res.RebufferPageStep, res.RebufferRecovered)
	}
	if res.BreakerPageStep < 0 || !res.BreakerRecovered {
		t.Errorf("breaker_open SLO page/recover = %d/%v", res.BreakerPageStep, res.BreakerRecovered)
	}
	// The healthy phase must page nothing: both pages belong to the
	// outage ticks, which begin at step clusterHealthySteps.
	if res.RebufferPageStep >= 0 && res.RebufferPageStep < clusterHealthySteps {
		t.Errorf("rebuffer paged at step %d, inside the healthy phase", res.RebufferPageStep)
	}
	if res.BreakerPageStep >= 0 && res.BreakerPageStep < clusterHealthySteps {
		t.Errorf("breaker_open paged at step %d, inside the healthy phase", res.BreakerPageStep)
	}
	if res.TraceProcesses < 3 {
		t.Errorf("assembled trace spans %d processes, want >= 3", res.TraceProcesses)
	}
	if res.TraceSpans < res.TraceProcesses {
		t.Errorf("assembled trace has %d spans across %d processes", res.TraceSpans, res.TraceProcesses)
	}
	if res.PerfettoEvents <= 0 {
		t.Errorf("cluster.perfetto.json validated %d events", res.PerfettoEvents)
	}
	if res.BuildVersions != 1 {
		t.Errorf("%d distinct build commits, want 1", res.BuildVersions)
	}
}
