package experiments

import (
	"fmt"
	"math"

	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/userstudy"
	"pano/internal/viewport"
)

// Joint3Row is one cell of the three-factor joint study.
type Joint3Row struct {
	Speed, DoF, Luma float64
	JointJND         float64
	ProductJND       float64
	RelDeviation     float64
}

// Joint3 extends Figure 7 to the case the paper explicitly leaves open
// (§9: "We have not tested 360JND under all three factors at non-zero
// values"): it runs the study protocol over a (speed × DoF × luminance)
// grid with every factor non-zero and checks the multiplicative
// independence assumption of Equation 4 end to end.
func Joint3(d *Dataset) ([]Joint3Row, *Table, error) {
	panel := userstudy.NewPanel(d.Scale.PanelSize*2, d.Scale.Seed+3)
	base := panel.MeasureJND(jnd.Factors{})
	var rows []Joint3Row
	for _, v := range []float64{5, 10, 20} {
		for _, dd := range []float64{0.35, 0.7, 1.33} {
			for _, l := range []float64{70, 140, 200} {
				f := jnd.Factors{SpeedDegS: v, DoFDiff: dd, LumaChange: l}
				joint := panel.MeasureJND(f)
				product := base *
					panel.Multiplier(jnd.Factors{SpeedDegS: v}) *
					panel.Multiplier(jnd.Factors{DoFDiff: dd}) *
					panel.Multiplier(jnd.Factors{LumaChange: l})
				dev := 0.0
				if product > 0 {
					dev = math.Abs(joint-product) / product
				}
				rows = append(rows, Joint3Row{
					Speed: v, DoF: dd, Luma: l,
					JointJND: joint, ProductJND: product, RelDeviation: dev,
				})
			}
		}
	}
	t := &Table{
		Title:  "Extension: three-factor joint JND vs product of marginals (§9 gap)",
		Header: []string{"speed", "dof", "luma", "joint_JND", "product_JND", "rel_dev"},
	}
	var worst float64
	for _, r := range rows {
		if r.RelDeviation > worst {
			worst = r.RelDeviation
		}
		t.Rows = append(t.Rows, []string{
			f1(r.Speed), f2(r.DoF), f0(r.Luma),
			f1(r.JointJND), f1(r.ProductJND), fmt.Sprintf("%.0f%%", r.RelDeviation*100),
		})
	}
	t.Rows = append(t.Rows, []string{"max_deviation", "", "", "", "", fmt.Sprintf("%.0f%%", worst*100)})
	return rows, t, nil
}

// PredictorRow compares viewpoint predictors at one horizon.
type PredictorRow struct {
	HorizonSec      float64
	LinearErrDeg    float64
	CrossUserErrDeg float64
	ImprovementFrac float64
}

// CrossUserPrediction compares the paper's linear-regression viewpoint
// predictor with the cross-user predictor (the CLS/CUB360 direction the
// related-work section points to): peers' trajectories as a prior for
// long-horizon prediction.
func CrossUserPrediction(d *Dataset) ([]PredictorRow, *Table, error) {
	var rows []PredictorRow
	t := &Table{
		Title:  "Extension: linear vs cross-user viewpoint prediction error",
		Header: []string{"horizon_s", "linear_deg", "cross_user_deg", "improvement_%"},
	}
	for _, horizon := range []float64{1, 2, 3} {
		var lin, cross mathx.Stats
		for _, vi := range d.TracedIndices() {
			trs := d.Traces(vi)
			if len(trs) < 2 {
				continue
			}
			for ui, user := range trs {
				peers := make([]*viewport.Trace, 0, len(trs)-1)
				for pi, p := range trs {
					if pi != ui {
						peers = append(peers, p)
					}
				}
				lp := viewport.NewPredictor()
				cp := viewport.NewCrossUserPredictor(peers)
				end := user.Duration() - horizon
				for now := 1.0; now < end; now += 0.5 {
					lin.Add(lp.PredictError(user, now, horizon))
					cross.Add(cp.PredictError(user, now, horizon))
				}
			}
		}
		r := PredictorRow{
			HorizonSec:      horizon,
			LinearErrDeg:    lin.Mean(),
			CrossUserErrDeg: cross.Mean(),
		}
		if r.LinearErrDeg > 0 {
			r.ImprovementFrac = (r.LinearErrDeg - r.CrossUserErrDeg) / r.LinearErrDeg
		}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{
			f0(horizon), f1(r.LinearErrDeg), f1(r.CrossUserErrDeg),
			f1(r.ImprovementFrac * 100),
		})
	}
	return rows, t, nil
}
