package experiments

import (
	"fmt"

	"pano/internal/abr"
	"pano/internal/codec"
	"pano/internal/mathx"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/sim"
)

// isoQualityBandwidth finds, by bisection on the link's operating
// fraction, the mean bandwidth (Mbps) a system consumes to deliver at
// least targetPSPNR averaged over the given sessions. It returns the
// consumed bandwidth at the cheapest passing fraction.
func (d *Dataset) isoQualityBandwidth(videoIdx []int, s System, targetPSPNR float64, maxUsers int) (float64, error) {
	lo, hi := 0.02, 3.0
	var best float64 = -1
	eval := func(frac float64) (float64, float64, error) {
		agg, err := d.aggregate(videoIdx, s, frac, sim.DefaultConfig(), maxUsers)
		if err != nil {
			return 0, 0, err
		}
		return agg.pspnr.Mean(), agg.bandwidth.Mean(), nil
	}
	// Verify the target is reachable at all.
	p, bw, err := eval(hi)
	if err != nil {
		return 0, err
	}
	if p < targetPSPNR {
		return bw, nil // best effort: report consumption at max rate
	}
	best = bw
	for i := 0; i < 9; i++ {
		mid := (lo + hi) / 2
		p, bw, err := eval(mid)
		if err != nil {
			return 0, err
		}
		if p >= targetPSPNR {
			hi = mid
			best = bw
		} else {
			lo = mid
		}
	}
	return best, nil
}

// Fig18aRow is one step of the component-wise analysis.
type Fig18aRow struct {
	System        System
	BandwidthMbps float64
	// SavingVsPrev is the incremental saving over the previous row.
	SavingVsPrev float64
	// SavingVsBase is the cumulative saving over the baseline.
	SavingVsBase float64
}

// Fig18a reproduces Figure 18(a): the bandwidth needed to hold
// PSPNR=72 (≈MOS 5) as Pano's components are added to the
// viewport-driven baseline one at a time: +content-JND awareness,
// +360JND factors, +variable-size tiling.
func Fig18a(d *Dataset) ([]Fig18aRow, *Table, error) {
	const target = 72
	order := []System{SysFlare, SysPanoTradJND, SysPano360Uniform, SysPano}
	vis := d.TracedIndices()
	if len(vis) > 2 {
		vis = vis[:2]
	}
	var rows []Fig18aRow
	var prev, base float64
	for i, s := range order {
		bw, err := d.isoQualityBandwidth(vis, s, target, 2)
		if err != nil {
			return nil, nil, err
		}
		r := Fig18aRow{System: s, BandwidthMbps: bw}
		if i == 0 {
			base = bw
		} else {
			if prev > 0 {
				r.SavingVsPrev = (prev - bw) / prev
			}
			if base > 0 {
				r.SavingVsBase = (base - bw) / base
			}
		}
		prev = bw
		rows = append(rows, r)
	}
	t := &Table{
		Title:  "Figure 18a: component-wise bandwidth at PSPNR=72 (MOS 5)",
		Header: []string{"system", "bandwidth_Mbps", "saving_vs_prev_%", "saving_vs_baseline_%"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.System.String(), fmt.Sprintf("%.3f", r.BandwidthMbps),
			f1(r.SavingVsPrev * 100), f1(r.SavingVsBase * 100)})
	}
	return rows, t, nil
}

// Fig18bRow is one genre's iso-quality bandwidth comparison.
type Fig18bRow struct {
	Genre      scene.Genre
	PanoMbps   float64
	FlareMbps  float64
	SavingFrac float64
}

// Fig18b reproduces Figure 18(b): bandwidth consumption at MOS 5
// (PSPNR≥70) for Pano vs the viewport-driven baseline by genre.
func Fig18b(d *Dataset) ([]Fig18bRow, *Table, error) {
	target := 70.0
	var rows []Fig18bRow
	t := &Table{
		Title:  "Figure 18b: bandwidth at MOS 5, Pano vs viewport-driven",
		Header: []string{"genre", "pano_Mbps", "viewport_driven_Mbps", "saving_%"},
	}
	for _, g := range []scene.Genre{scene.Documentary, scene.Sports, scene.Adventure} {
		vids := d.videosOfGenre(g, 1)
		if len(vids) == 0 {
			continue
		}
		pano, err := d.isoQualityBandwidth(vids, SysPano, target, 2)
		if err != nil {
			return nil, nil, err
		}
		flare, err := d.isoQualityBandwidth(vids, SysFlare, target, 2)
		if err != nil {
			return nil, nil, err
		}
		r := Fig18bRow{Genre: g, PanoMbps: pano, FlareMbps: flare}
		if flare > 0 {
			r.SavingFrac = (flare - pano) / flare
		}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{g.String(), fmt.Sprintf("%.3f", pano),
			fmt.Sprintf("%.3f", flare), f1(r.SavingFrac * 100)})
	}
	return rows, t, nil
}

// PruneRow compares tile allocators on real manifest instances.
type PruneRow struct {
	Allocator string
	// CostRatio is the achieved distortion relative to the pruned
	// (exact) allocator, averaged over instances.
	CostRatio float64
	// States is the mean number of explored states (pruned) or
	// evaluated combinations (exhaustive bound), for scale.
	States float64
}

// AllocationPruning reproduces the §6.1 claim that dominance-pruned
// enumeration makes optimal tile allocation tractable: it compares the
// pruned allocator, the greedy allocator, and (on truncated instances)
// exhaustive search.
func AllocationPruning(d *Dataset) ([]PruneRow, *Table, error) {
	m, err := d.Manifest(d.TracedIndices()[0], provider.ModePano)
	if err != nil {
		return nil, nil, err
	}
	est := player.NewEstimator()
	tr := d.Traces(d.TracedIndices()[0])[0]

	var greedyRatio, exhRatio mathx.Stats
	chunks := m.NumChunks()
	if chunks > 4 {
		chunks = 4
	}
	for k := 0; k < chunks; k++ {
		view := est.View(m, tr, k, float64(k)*m.ChunkSec)
		tiles := make([]abr.TileChoice, len(m.Chunks[k].Tiles))
		prof := player.NewPanoPlanner().Profile
		for i := range m.Chunks[k].Tiles {
			tl := &m.Chunks[k].Tiles[i]
			ratio := prof.ActionRatio(player.FactorsFor(tl, view))
			for l := 0; l < codec.NumLevels; l++ {
				tiles[i].Bits[l] = tl.Bits[l]
				tiles[i].Cost[l] = float64(tl.Rect.Area()) *
					player.PMSEFromPSPNR(player.EstimatePSPNR(tl, codec.Level(l), ratio))
			}
		}
		budget := m.ChunkBits(k, codec.Level(2))
		pruned := abr.AllocatePruned(tiles, budget, 0)
		greedy := abr.AllocateGreedy(tiles, budget)
		pc := abr.TotalCost(tiles, pruned)
		if pc > 0 {
			greedyRatio.Add(abr.TotalCost(tiles, greedy) / pc)
		}
		// Exhaustive on the first 8 tiles with a proportional budget.
		sub := tiles[:8]
		subBudget := budget * 8 / float64(len(tiles))
		exh, err := abr.AllocateExhaustive(sub, subBudget)
		if err != nil {
			return nil, nil, err
		}
		subPruned := abr.AllocatePruned(sub, subBudget, 0)
		if c := abr.TotalCost(sub, exh); c > 0 {
			exhRatio.Add(abr.TotalCost(sub, subPruned) / c)
		}
	}
	rows := []PruneRow{
		{Allocator: "pruned (Pano §6.1)", CostRatio: 1.0, States: float64(len(m.Chunks[0].Tiles) * codec.NumLevels)},
		{Allocator: "greedy", CostRatio: greedyRatio.Mean()},
		{Allocator: "pruned vs exhaustive (8 tiles)", CostRatio: exhRatio.Mean(),
			States: fpow(codec.NumLevels, 8)},
	}
	t := &Table{
		Title:  "§6.1: tile allocation — pruned enumeration vs alternatives",
		Header: []string{"allocator", "cost_ratio", "search_space"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Allocator, fmt.Sprintf("%.4f", r.CostRatio), f0(r.States)})
	}
	return rows, t, nil
}

func fpow(b, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= float64(b)
	}
	return out
}
