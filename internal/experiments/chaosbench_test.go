package experiments

import "testing"

func TestChaosBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos bench streams many HTTP sessions")
	}
	d := testDataset(t)
	res, table, err := ChaosBench(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Profiles) != len(chaosProfiles()) {
		t.Fatalf("%d profiles, want %d", len(res.Profiles), len(chaosProfiles()))
	}
	var off, faulty *ChaosProfileResult
	for i := range res.Profiles {
		pr := &res.Profiles[i]
		// The robustness contract: no server-side fault profile may abort
		// a session, and retries stay within the ladder's budget.
		if pr.Aborts != 0 {
			t.Errorf("%s: %d aborted sessions", pr.Profile, pr.Aborts)
		}
		if !pr.RetriesBounded {
			t.Errorf("%s: retries exceeded the ladder bound", pr.Profile)
		}
		switch pr.Profile {
		case "off":
			off = pr
		case "tile-error-10pct":
			faulty = pr
		}
	}
	if off == nil || faulty == nil {
		t.Fatal("expected profiles missing from the result")
	}
	if off.TotalRetries != 0 || off.DegradedFrac != 0 || off.SkippedFrac != 0 || off.InjectedErrors != 0 {
		t.Errorf("healthy profile recorded failures: %+v", off)
	}
	if faulty.InjectedErrors == 0 {
		t.Error("10%% error profile injected nothing")
	}
	if faulty.TotalRetries == 0 {
		t.Error("10%% error profile caused no retries")
	}
	if faulty.MeanEstPSPNR <= 0 {
		t.Errorf("faulty profile mean PSPNR = %v", faulty.MeanEstPSPNR)
	}
	if len(table.Rows) != len(res.Profiles) {
		t.Errorf("table rows %d, profiles %d", len(table.Rows), len(res.Profiles))
	}
}
