package experiments

import (
	"context"
	"fmt"
	"time"

	"pano/internal/chaos"
	"pano/internal/nettrace"
	"pano/internal/provider"
	"pano/internal/swarm"
)

// SwarmRow is one population point of the swarm scaling bench.
type SwarmRow struct {
	Population int
	Report     swarm.Report
}

// SwarmBenchResult is the BENCH_swarm.json payload: the same workload
// (one Pano manifest, a shared viewport pool, a mixed LTE bandwidth
// pool, a mild fault profile) simulated at growing population sizes.
type SwarmBenchResult struct {
	Rows []SwarmRow
}

// SwarmPopulations is the scaling ladder. The top rung is the
// tentpole's headline: one process, one goroutine pool, a million
// sessions in virtual time. It is a variable (like Fig14OutDir) so the
// test suite can shrink it — a million sessions belong in `make swarm`
// and `make bench`, not in every `go test ./...`.
var SwarmPopulations = []int{1_000, 10_000, 100_000, 1_000_000}

// swarmScoreEvery keeps the ground-truth scoring sample near ~10k
// sessions per rung instead of scaling the (planner-sized) scoring cost
// linearly with population.
func swarmScoreEvery(pop int) int {
	se := pop / 10_000
	if se < 1 {
		se = 1
	}
	return se
}

// swarmConfig assembles the shared workload: every rung differs only in
// Sessions and ScoreEvery, so the QoE columns should stay flat while
// origin load and wall time scale with the population.
func (d *Dataset) swarmConfig() (swarm.Config, error) {
	vi := d.TracedIndices()[0]
	m, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		return swarm.Config{}, err
	}
	top := m.ChunkBits(0, 0) / m.ChunkSec / 1e6
	var bw []*nettrace.Trace
	for i, frac := range []float64{0.2, 0.35, 0.55, 0.8} {
		bw = append(bw, nettrace.SynthesizeLTE(d.Scale.Seed+uint64(i)*17, 120, frac*top))
	}
	return swarm.Config{
		Manifest:         m,
		Seed:             d.Scale.Seed,
		ArrivalWindowSec: 30,
		Viewports:        d.Traces(vi),
		Bandwidth:        bw,
		Fault: chaos.Rule{
			ErrorRate:    0.02,
			TruncateRate: 0.01,
			Latency:      20 * time.Millisecond,
			Jitter:       10 * time.Millisecond,
		},
	}, nil
}

// SwarmBench runs the discrete-event swarm at each population rung and
// reports QoE, origin load, and the wall seconds it took to simulate —
// the 1M-session row is the "wall-seconds-to-simulate-1M" headline.
// wall_sec and sessions_per_wall_sec measure the machine, not the
// system: the benchdiff gate excludes them via -ignore.
func SwarmBench(d *Dataset) (SwarmBenchResult, *Table, error) {
	var res SwarmBenchResult
	base, err := d.swarmConfig()
	if err != nil {
		return res, nil, err
	}
	for _, pop := range SwarmPopulations {
		cfg := base
		cfg.Sessions = pop
		cfg.ScoreEvery = swarmScoreEvery(pop)
		rep, err := swarm.Run(context.Background(), cfg)
		if err != nil {
			return res, nil, err
		}
		res.Rows = append(res.Rows, SwarmRow{Population: pop, Report: *rep})
	}

	t := &Table{
		Title: fmt.Sprintf("Swarm scaling: virtual-time sessions on a %d-worker pool (top rung: %d sessions in %.1fs wall)",
			res.Rows[0].Report.Workers,
			res.Rows[len(res.Rows)-1].Population,
			res.Rows[len(res.Rows)-1].Report.WallSec),
		Header: []string{"population", "mean_pspnr_db", "p10_pspnr_db", "rebuffer_pct",
			"mean_startup_sec", "retries", "skipped_tiles", "peak_concurrency",
			"origin_peak_rps", "origin_mean_rps", "virtual_sec",
			"wall_sec", "sessions_per_wall_sec"},
	}
	for _, r := range res.Rows {
		s := r.Report.Summary
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Population),
			f1(s.MeanPSPNR),
			f1(s.P10PSPNR),
			f2(s.RebufferRatioPct),
			f2(s.MeanStartupSec),
			fmt.Sprintf("%d", s.Retries),
			fmt.Sprintf("%d", s.SkippedTiles),
			fmt.Sprintf("%d", s.PeakConcurrency),
			fmt.Sprintf("%d", s.OriginPeakRPS),
			f0(s.OriginMeanRPS),
			f1(s.VirtualSec),
			f1(r.Report.WallSec),
			f0(r.Report.SessionsPerWallSec),
		})
	}
	return res, t, nil
}
