package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/server"
	"pano/internal/sim"
	"pano/internal/trace"
)

// tracePhases are the per-chunk pipeline phases in execution order —
// the span names the client and simulator both emit under each "chunk"
// span, so a session decomposes into where the time actually goes.
var tracePhases = []string{"estimate", "mpc", "assign", "fetch", "stitch"}

// PhaseStat is the latency breakdown of one pipeline phase.
type PhaseStat struct {
	Phase    string
	Spans    int
	TotalSec float64
	MeanSec  float64
	MaxSec   float64
	// Share is this phase's fraction of the summed phase time.
	Share float64
}

// TraceBenchResult is the BENCH_trace.json payload.
type TraceBenchResult struct {
	// SimTraceID is the traced simulator session.
	SimTraceID string
	Phases     []PhaseStat
	// HTTPTraceID is a real chaos-wrapped HTTP session whose client and
	// server spans share one trace (the W3C traceparent hop).
	HTTPTraceID string
	// ServerSpans counts the server-side handler spans stitched into the
	// HTTP session's trace; ChaosFaults counts those carrying a chaos.*
	// fault annotation.
	ServerSpans int
	ChaosFaults int
	// PerfettoEvents is the validated event count of trace.perfetto.json.
	PerfettoEvents int
	PerfettoPath   string
}

// TraceBench records one seeded simulator session and one chaos-wrapped
// HTTP session as span trees, breaks the simulator session down by
// pipeline phase, exports everything as Chrome trace-event JSON
// (trace.perfetto.json, loadable in Perfetto), and validates the
// export's shape. It fails when the HTTP trace does not stitch —
// i.e. when no server-side handler span joined the client's trace.
func TraceBench(d *Dataset) (TraceBenchResult, *Table, error) {
	vi := d.TracedIndices()[0]
	m, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		return TraceBenchResult{}, nil, err
	}
	tr := d.Traces(vi)[0]

	// One tracer for everything: the simulator session, the HTTP client
	// session, and the HTTP server's handler spans, so the store holds
	// complete stitched traces.
	tracer := trace.New(trace.Config{Seed: 7})

	// Session 1: the seeded simulator run (the per-phase breakdown).
	link := sim.ScaledLink(m, 0.5, d.Scale.Seed+uint64(vi))
	simRes, err := sim.Run(m, tr, link, player.NewPanoPlanner(), sim.Config{
		Seed:  7,
		Trace: tracer,
	})
	if err != nil {
		return TraceBenchResult{}, nil, err
	}

	// Session 2: a real HTTP session through the acceptance chaos profile
	// ("seed=7,tile-error=0.1"), traced end to end. The trace middleware
	// wraps OUTSIDE the injector so chaos faults annotate handler spans.
	prof, err := chaos.Parse("seed=7,tile-error=0.1")
	if err != nil {
		return TraceBenchResult{}, nil, err
	}
	srv, err := server.New(m, server.WithTracer(tracer))
	if err != nil {
		return TraceBenchResult{}, nil, err
	}
	ts := httptest.NewServer(trace.Middleware(tracer, chaos.New(prof).Wrap(srv.Handler())))
	pol := client.FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Microsecond,
		MaxBackoff:        2 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 20 * time.Millisecond,
		Seed:              7,
	}
	httpRes, err := client.New(ts.URL).Stream(context.Background(), tr, client.StreamConfig{
		MaxRateBps: 0.35 * m.ChunkBits(0, 0) / m.ChunkSec,
		Fetch:      pol,
		Trace:      tracer,
	})
	ts.Close()
	if err != nil {
		return TraceBenchResult{}, nil, err
	}

	res := TraceBenchResult{
		SimTraceID:   simRes.TraceID,
		HTTPTraceID:  httpRes.TraceID,
		PerfettoPath: "trace.perfetto.json",
	}

	traces := tracer.Traces()
	var simTrace, httpTrace *trace.TraceData
	for _, t := range traces {
		switch t.ID.String() {
		case simRes.TraceID:
			simTrace = t
		case httpRes.TraceID:
			httpTrace = t
		}
	}
	if simTrace == nil || httpTrace == nil {
		return res, nil, fmt.Errorf("tracebench: finished traces missing (sim=%v http=%v)",
			simTrace != nil, httpTrace != nil)
	}
	for _, sd := range httpTrace.Spans {
		if sd.Name == "http_request" {
			res.ServerSpans++
			for _, a := range sd.Attrs {
				if len(a.Key) > 6 && a.Key[:6] == "chaos." {
					res.ChaosFaults++
					break
				}
			}
		}
	}
	if res.ServerSpans == 0 {
		return res, nil, fmt.Errorf("tracebench: no server spans stitched into client trace %s", res.HTTPTraceID)
	}

	// Per-phase breakdown of the simulator session.
	var phaseTotal float64
	for _, ph := range tracePhases {
		spans := simTrace.Find(ph)
		st := PhaseStat{Phase: ph, Spans: len(spans)}
		for _, sd := range spans {
			s := sd.Dur.Seconds()
			st.TotalSec += s
			if s > st.MaxSec {
				st.MaxSec = s
			}
		}
		if st.Spans > 0 {
			st.MeanSec = st.TotalSec / float64(st.Spans)
		}
		phaseTotal += st.TotalSec
		res.Phases = append(res.Phases, st)
	}
	if phaseTotal > 0 {
		for i := range res.Phases {
			res.Phases[i].Share = res.Phases[i].TotalSec / phaseTotal
		}
	}

	// Export both traces and validate the export's shape.
	f, err := os.Create(res.PerfettoPath)
	if err != nil {
		return res, nil, err
	}
	if err := trace.WriteChromeTrace(f, simTrace, httpTrace); err != nil {
		f.Close()
		return res, nil, err
	}
	if err := f.Close(); err != nil {
		return res, nil, err
	}
	data, err := os.ReadFile(res.PerfettoPath)
	if err != nil {
		return res, nil, err
	}
	res.PerfettoEvents, err = trace.ValidateChromeTrace(data)
	if err != nil {
		return res, nil, fmt.Errorf("tracebench: invalid Chrome trace export: %w", err)
	}

	t := &Table{
		Title: fmt.Sprintf(
			"Per-phase session timeline (sim trace %s; http trace %s: %d server spans, %d chaos faults; %s: %d events)",
			res.SimTraceID, res.HTTPTraceID, res.ServerSpans, res.ChaosFaults,
			res.PerfettoPath, res.PerfettoEvents),
		Header: []string{"phase", "spans", "total_ms", "mean_us", "max_us", "share_pct"},
	}
	for _, st := range res.Phases {
		t.Rows = append(t.Rows, []string{
			st.Phase,
			fmt.Sprintf("%d", st.Spans),
			f2(st.TotalSec * 1e3),
			f1(st.MeanSec * 1e6),
			f1(st.MaxSec * 1e6),
			f1(100 * st.Share),
		})
	}
	return res, t, nil
}
