package experiments

import "testing"

func TestTelemetryBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("telemetry bench runs simulator sessions and a Step benchmark")
	}
	d := testDataset(t)
	res, table, err := TelemetryBench(d)
	if err != nil {
		t.Fatal(err)
	}
	// The chaos phase must page the rebuffer SLO, and the recovery phase
	// must drain it back to ok — both observed through /debug/slo, the
	// same bytes an operator's curl would see.
	if res.PageAtStep < telHealthySteps {
		t.Errorf("paged at step %d, want during chaos (>= %d)", res.PageAtStep, telHealthySteps)
	}
	if res.RecoverAtStep <= res.PageAtStep {
		t.Errorf("recovered at step %d, not after paging at %d", res.RecoverAtStep, res.PageAtStep)
	}
	if res.EndpointStateChaos == "ok" || res.EndpointStateFinal != "ok" {
		t.Errorf("endpoint states chaos=%q final=%q, want non-ok then ok",
			res.EndpointStateChaos, res.EndpointStateFinal)
	}
	// Escalation and the eventual recovery are the minimum transition set.
	if res.Transitions < 2 {
		t.Errorf("transitions = %d, want >= 2 (escalate + recover)", res.Transitions)
	}
	if res.PeakBurnFast < 3 { // the configured page burn
		t.Errorf("peak fast burn = %.2f, want past the page threshold 3", res.PeakBurnFast)
	}
	// The sessions populated a real store and the Step benchmark ran.
	if res.Series < 10 {
		t.Errorf("store holds %d series, want a populated registry", res.Series)
	}
	if res.ScrapeNsOp <= 0 || res.ScrapeAllocsOp <= 0 {
		t.Errorf("scrape cost %d ns / %d allocs, want measured", res.ScrapeNsOp, res.ScrapeAllocsOp)
	}
	if table == nil || len(table.Rows) != 10 {
		t.Fatalf("table = %+v, want 10 rows", table)
	}
}
