package experiments

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/sim"
	"pano/internal/telemetry"
)

// TelemetryBenchResult is the BENCH_telemetry.json payload: the rebuffer
// SLO's burn-rate trajectory through a healthy → chaos → recovery
// session schedule driven in logical time, plus the sampler's per-tick
// overhead.
type TelemetryBenchResult struct {
	// Series is the windowed store's series count at the end of the run.
	Series int
	// WarnAtStep/PageAtStep/RecoverAtStep are the 0-based logical steps
	// where the rebuffer SLO first warned, first paged, and finally
	// returned to ok (-1 = never happened).
	WarnAtStep, PageAtStep, RecoverAtStep int
	// PeakBurnFast is the highest fast-window burn observed.
	PeakBurnFast float64
	// Transitions counts rebuffer SLO state changes over the whole run.
	Transitions uint64
	// EndpointStateChaos is /debug/slo's overall state probed at the
	// chaos peak; EndpointStateFinal is the same probe after recovery.
	EndpointStateChaos, EndpointStateFinal string
	// ScrapeNsOp and ScrapeAllocsOp measure one Step (scrape + evaluate)
	// on the populated registry.
	ScrapeNsOp     int64
	ScrapeAllocsOp int64
}

// telemetry bench schedule (logical steps, one per simulated second).
const (
	telHealthySteps = 12
	telChaosSteps   = 8
	telRecoverSteps = 70
)

// TelemetryBench drives the full telemetry pipeline deterministically:
// simulator sessions populate a registry; the sampler is stepped in
// logical time (no wall clock, no sleeps); a starved, lossy link phase
// pushes the rebuffer SLO's burn rate past warn and page; a long clean
// phase drains the windows and the state recovers through flap damping.
// The /debug/slo endpoint is probed in both the chaos peak and the
// recovered state, and Step overhead is measured with testing.Benchmark.
func TelemetryBench(d *Dataset) (TelemetryBenchResult, *Table, error) {
	res := TelemetryBenchResult{WarnAtStep: -1, PageAtStep: -1, RecoverAtStep: -1}
	vi := d.TracedIndices()[0]
	m, err := d.Manifest(vi, provider.ModePano)
	if err != nil {
		return res, nil, err
	}
	tr := d.Traces(vi)[0]

	reg := obs.NewRegistry()
	evlog := obs.NewEventLog(nil, 0)
	evlog.ObserveDrops(reg)

	// Short windows sized to the logical schedule; everything but the
	// rebuffer SLO is off so the trajectory below is single-cause. Going
	// through ParseSLOs exercises the -slo flag grammar end to end.
	slos, err := telemetry.ParseSLOs(
		"rebuffer<=0.05@10s/40s!1.5/3;pspnr_floor=off;tile_p99=off;edge_hit=off;abort=off")
	if err != nil {
		return res, nil, err
	}
	smp := telemetry.New(telemetry.Config{
		Obs: reg, SLOs: slos, Log: evlog, Interval: time.Second, Window: 3 * time.Minute,
	})

	now := time.Unix(1700000000, 0) // fixed logical epoch: the run is reproducible
	step := 0
	session := func(linkScale, loss float64, seed uint64) error {
		link := sim.ScaledLink(m, linkScale, seed)
		_, err := sim.Run(m, tr, link, player.NewPanoPlanner(), sim.Config{
			Seed: seed, Obs: reg, TileLossRate: loss,
		})
		return err
	}
	tick := func() {
		smp.Step(now)
		st := smp.States()[0]
		if st.BurnFast > res.PeakBurnFast {
			res.PeakBurnFast = st.BurnFast
		}
		switch smp.State("rebuffer") {
		case telemetry.StateWarn:
			if res.WarnAtStep < 0 {
				res.WarnAtStep = step
			}
		case telemetry.StatePage:
			if res.PageAtStep < 0 {
				res.PageAtStep = step
			}
		case telemetry.StateOK:
			if res.PageAtStep >= 0 && res.RecoverAtStep < 0 {
				res.RecoverAtStep = step
			}
		}
		now = now.Add(time.Second)
		step++
	}

	// Phase 1 — healthy: a well-provisioned session, then idle ticks.
	if err := session(1.5, 0, d.Scale.Seed+1); err != nil {
		return res, nil, err
	}
	for i := 0; i < telHealthySteps; i++ {
		tick()
	}
	if smp.State("rebuffer") != telemetry.StateOK {
		return res, nil, fmt.Errorf("telemetry: rebuffer SLO not ok after healthy phase (got %v)", smp.State("rebuffer"))
	}

	// Phase 2 — chaos: starved link plus tile loss, one session per tick.
	// The link must be starved past what the ABR can absorb by dropping
	// quality (~0.08× here) before stall seconds pour into the windows.
	for i := 0; i < telChaosSteps; i++ {
		if err := session(0.05, 0.1, d.Scale.Seed+100+uint64(i)); err != nil {
			return res, nil, err
		}
		tick()
	}
	res.EndpointStateChaos = probeSLOState(smp)

	// Phase 3 — recovery: no new sessions; the windows drain and flap
	// damping steps the state back down.
	for i := 0; i < telRecoverSteps; i++ {
		tick()
	}
	res.EndpointStateFinal = probeSLOState(smp)
	res.Series = smp.Store().Len()
	res.Transitions = smp.States()[0].Transitions

	if res.PageAtStep < 0 {
		return res, nil, fmt.Errorf("telemetry: rebuffer SLO never paged under chaos (peak burn %.2f)", res.PeakBurnFast)
	}
	if res.RecoverAtStep < 0 {
		return res, nil, fmt.Errorf("telemetry: rebuffer SLO never recovered (final %s)", res.EndpointStateFinal)
	}
	if res.EndpointStateChaos == "ok" {
		return res, nil, fmt.Errorf("telemetry: /debug/slo reported ok at the chaos peak")
	}
	if res.EndpointStateFinal != "ok" {
		return res, nil, fmt.Errorf("telemetry: /debug/slo reported %s after recovery", res.EndpointStateFinal)
	}

	// Overhead: one Step on the now fully-populated registry.
	bt := now
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			smp.Step(bt)
			bt = bt.Add(time.Second)
		}
	})
	res.ScrapeNsOp = br.NsPerOp()
	res.ScrapeAllocsOp = br.AllocsPerOp()

	t := &Table{
		Title:  "Continuous QoE telemetry: rebuffer SLO burn-rate under injected chaos",
		Header: []string{"metric", "value"},
		Rows: [][]string{
			{"store series", f0(float64(res.Series))},
			{"peak burn (fast)", f2(res.PeakBurnFast)},
			{"warn at step", f0(float64(res.WarnAtStep))},
			{"page at step", f0(float64(res.PageAtStep))},
			{"recover at step", f0(float64(res.RecoverAtStep))},
			{"state transitions", f0(float64(res.Transitions))},
			{"slo endpoint (chaos)", res.EndpointStateChaos},
			{"slo endpoint (final)", res.EndpointStateFinal},
			{"scrape ns/op", f0(float64(res.ScrapeNsOp))},
			{"scrape allocs/op", f0(float64(res.ScrapeAllocsOp))},
		},
	}
	return res, t, nil
}

// probeSLOState GETs the sampler's /debug/slo handler and returns the
// overall state field — the same bytes an operator's curl would see.
func probeSLOState(smp *telemetry.Sampler) string {
	rec := httptest.NewRecorder()
	smp.SLOHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slo", nil))
	var body struct {
		State string `json:"state"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		return "unparseable"
	}
	return body.State
}
