package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and renders its table.
type Runner func(d *Dataset) (*Table, error)

func tableOnly3[T any](f func(*Dataset) (T, *Table, error)) Runner {
	return func(d *Dataset) (*Table, error) {
		_, t, err := f(d)
		return t, err
	}
}

// registry maps experiment ids (DESIGN.md §3) to runners.
var registry = map[string]Runner{
	"fig1":   tableOnly3(Fig1),
	"fig3":   tableOnly3(Fig3),
	"fig4":   tableOnly3(Fig4),
	"fig6":   tableOnly3(Fig6),
	"fig7":   tableOnly3(Fig7),
	"fig8":   tableOnly3(Fig8),
	"fig10":  tableOnly3(Fig10),
	"fig13":  tableOnly3(Fig13),
	"fig15":  tableOnly3(Fig15),
	"fig16a": tableOnly3(Fig16a),
	"fig16b": tableOnly3(Fig16b),
	"fig16c": tableOnly3(Fig16c),
	"fig16d": tableOnly3(Fig16d),
	"fig17a": tableOnly3(Fig17a),
	"fig17b": tableOnly3(Fig17b),
	"fig17c": tableOnly3(Fig17c),
	"fig18a": tableOnly3(Fig18a),
	"fig18b": tableOnly3(Fig18b),
	"lut":    tableOnly3(LookupTableCompression),
	"prune":  tableOnly3(AllocationPruning),
	// Extensions beyond the paper (see EXPERIMENTS.md).
	"joint3":    tableOnly3(Joint3),
	"crossuser": tableOnly3(CrossUserPrediction),
	"parallel":  tableOnly3(ParallelBench),
	"chaos":     tableOnly3(ChaosBench),
	"trace":     tableOnly3(TraceBench),
	"edge":      tableOnly3(EdgeBench),
	"swarm":     tableOnly3(SwarmBench),
	"fleet":     tableOnly3(FleetBench),
	"telemetry": tableOnly3(TelemetryBench),
	"cluster":   tableOnly3(ClusterBench),
	"live":      tableOnly3(LiveBench),
	"tab2": func(d *Dataset) (*Table, error) {
		return Table2(d), nil
	},
	"tab3": func(d *Dataset) (*Table, error) {
		return Table3(), nil
	},
}

// IDs returns the experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes the experiment with the given id.
func Run(d *Dataset, id string) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	return r(d)
}
