// Package experiments reproduces every table and figure of the paper's
// evaluation (§2.3, §4–§8). Each experiment is a function from a shared
// Dataset to a typed result plus a printable Table; cmd/pano-bench and
// bench_test.go are thin wrappers over these functions. DESIGN.md §3
// maps experiment ids to paper artifacts.
package experiments

import (
	"fmt"
	"strings"
	"sync"

	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/tiling"
	"pano/internal/viewport"
)

// Scale sizes the dataset. The paper's numbers (Table 2: 50 videos at
// 2880×1440@30, 18 of them with 48 user traces, 20 study participants)
// are CPU-days of preprocessing for a simulator; QuickScale preserves
// every ratio that the result shapes depend on at a tractable size.
type Scale struct {
	W, H, FPS   int
	DurationSec int
	// TracedVideos have synthesized user traces (paper: 18).
	TracedVideos int
	// TotalVideos is the full corpus size (paper: 50).
	TotalVideos int
	// Users is the number of viewpoint traces per traced video
	// (paper: 48).
	Users int
	// PanelSize is the number of study participants (paper: 20).
	PanelSize int
	// Seed drives all generation.
	Seed uint64
}

// QuickScale is the default: small enough for the test suite, large
// enough that every result shape holds.
func QuickScale() Scale {
	return Scale{
		W: 240, H: 120, FPS: 10, DurationSec: 8,
		TracedVideos: 4, TotalVideos: 8, Users: 4, PanelSize: 20,
		Seed: 2019,
	}
}

// PaperScale approaches the paper's Table 2 (still below the original
// pixel count; see DESIGN.md's substitution table).
func PaperScale() Scale {
	return Scale{
		W: 480, H: 240, FPS: 30, DurationSec: 30,
		TracedVideos: 18, TotalVideos: 50, Users: 48, PanelSize: 20,
		Seed: 2019,
	}
}

// genreMix mirrors Table 2: Sports 22%, Performance 20%, Documentary
// 14%, other 44% split across the remaining genres.
func genreMix(n int, rng *mathx.RNG) []scene.Genre {
	out := make([]scene.Genre, 0, n)
	counted := []struct {
		g scene.Genre
		c int
	}{
		{scene.Sports, (n*22 + 50) / 100},
		{scene.Performance, (n*20 + 50) / 100},
		{scene.Documentary, (n*14 + 50) / 100},
	}
	others := []scene.Genre{scene.Tourism, scene.Adventure, scene.Science, scene.Gaming}
	for _, gc := range counted {
		for i := 0; i < gc.c; i++ {
			out = append(out, gc.g)
		}
	}
	for len(out) < n {
		out = append(out, others[len(out)%len(others)])
	}
	out = out[:n]
	// Shuffle deterministically so traced videos span genres.
	for i := len(out) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		out[i], out[j] = out[j], out[i]
	}
	return out
}

type manifestKey struct {
	video int
	mode  provider.Mode
}

// Dataset lazily builds and caches videos, traces, and manifests.
type Dataset struct {
	Scale  Scale
	videos []*scene.Video

	mu        sync.Mutex
	traces    map[int][]*viewport.Trace
	manifests map[manifestKey]*manifest.Video
}

// NewDataset creates the corpus (videos only; traces and manifests are
// built on demand and cached).
func NewDataset(s Scale) *Dataset {
	rng := mathx.NewRNG(s.Seed)
	genres := genreMix(s.TotalVideos, rng)
	d := &Dataset{
		Scale:     s,
		traces:    make(map[int][]*viewport.Trace),
		manifests: make(map[manifestKey]*manifest.Video),
	}
	opts := scene.Options{W: s.W, H: s.H, FPS: s.FPS, DurationSec: s.DurationSec}
	for i, g := range genres {
		d.videos = append(d.videos, scene.Generate(g, s.Seed+uint64(i)*131, opts))
	}
	return d
}

// Videos returns the full corpus.
func (d *Dataset) Videos() []*scene.Video { return d.videos }

// Video returns one video by index.
func (d *Dataset) Video(i int) *scene.Video { return d.videos[i] }

// TracedIndices returns the indices of videos that have user traces.
func (d *Dataset) TracedIndices() []int {
	out := make([]int, 0, d.Scale.TracedVideos)
	for i := 0; i < d.Scale.TracedVideos && i < len(d.videos); i++ {
		out = append(out, i)
	}
	return out
}

// Traces returns (building if needed) the user traces for video i. For
// videos beyond the traced set, traces are synthesized the same way —
// matching §8.5, where the 32 extra videos get synthetic trajectories.
func (d *Dataset) Traces(i int) []*viewport.Trace {
	d.mu.Lock()
	defer d.mu.Unlock()
	if trs, ok := d.traces[i]; ok {
		return trs
	}
	trs := make([]*viewport.Trace, d.Scale.Users)
	for u := range trs {
		trs[u] = viewport.Synthesize(d.videos[i], d.Scale.Seed+uint64(i)*977+uint64(u)*13,
			viewport.DefaultSynthesizeOpts())
	}
	d.traces[i] = trs
	return trs
}

// Manifest returns (building if needed) the manifest of video i under
// the given tiling mode, using the video's own traces as history.
func (d *Dataset) Manifest(i int, mode provider.Mode) (*manifest.Video, error) {
	d.mu.Lock()
	if m, ok := d.manifests[manifestKey{i, mode}]; ok {
		d.mu.Unlock()
		return m, nil
	}
	d.mu.Unlock()

	// History: a subset of the video's traces (avoid holding the lock
	// through preprocessing).
	trs := d.Traces(i)
	if len(trs) > 4 {
		trs = trs[:4]
	}
	cfg := provider.DefaultConfig()
	cfg.Mode = mode
	if mode == provider.ModeUniform {
		cfg.Grid = tiling.Grid6x12
	}
	m, err := provider.Preprocess(d.videos[i], trs, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: video %d mode %v: %w", i, mode, err)
	}
	d.mu.Lock()
	d.manifests[manifestKey{i, mode}] = m
	d.mu.Unlock()
	return m, nil
}

// Table is a printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// String renders an aligned text table.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
