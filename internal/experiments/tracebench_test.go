package experiments

import (
	"os"
	"testing"
)

func TestTraceBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("trace bench streams a full HTTP session")
	}
	d := testDataset(t)
	res, table, err := TraceBench(d)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Remove(res.PerfettoPath) })

	if res.SimTraceID == "" || res.HTTPTraceID == "" || res.SimTraceID == res.HTTPTraceID {
		t.Fatalf("trace ids: sim=%q http=%q", res.SimTraceID, res.HTTPTraceID)
	}
	// The stitching contract: the chaos-wrapped HTTP session's trace
	// holds server handler spans, some carrying injected-fault marks.
	if res.ServerSpans == 0 {
		t.Error("no server spans stitched into the client trace")
	}
	if res.ChaosFaults == 0 {
		t.Error("10% tile-error profile annotated no handler span")
	}
	if res.ChaosFaults > res.ServerSpans {
		t.Errorf("chaos faults %d > server spans %d", res.ChaosFaults, res.ServerSpans)
	}
	// The export validated and is non-trivial.
	if res.PerfettoEvents <= res.ServerSpans {
		t.Errorf("perfetto events = %d, want more than the %d server spans alone",
			res.PerfettoEvents, res.ServerSpans)
	}
	// Every pipeline phase appears, with spans and a defined share.
	if len(res.Phases) != len(tracePhases) {
		t.Fatalf("phases = %d, want %d", len(res.Phases), len(tracePhases))
	}
	var share float64
	for _, ph := range res.Phases {
		if ph.Spans == 0 {
			t.Errorf("phase %s recorded no spans", ph.Phase)
		}
		if ph.MeanSec < 0 || ph.MaxSec < ph.MeanSec {
			t.Errorf("phase %s stats inconsistent: %+v", ph.Phase, ph)
		}
		share += ph.Share
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("phase shares sum to %v, want 1", share)
	}
	if len(table.Rows) != len(res.Phases) {
		t.Errorf("table rows %d, phases %d", len(table.Rows), len(res.Phases))
	}
}
