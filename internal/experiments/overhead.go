package experiments

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"pano/internal/client"
	"pano/internal/codec"
	"pano/internal/frame"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/server"
)

// Fig17aRow is one stage of the client-side CPU breakdown.
type Fig17aRow struct {
	System     System
	Stage      string
	MsPerChunk float64
}

// Fig17a reproduces Figure 17(a): per-chunk client CPU time split into
// quality adaptation, downloading, decoding, and rendering, for Pano
// vs the viewport-driven baseline. Decoding is proxied by the codec's
// per-pixel reconstruction over the downloaded tiles; rendering by the
// row-major tile stitch of §7.
func Fig17a(d *Dataset) ([]Fig17aRow, *Table, error) {
	var rows []Fig17aRow
	t := &Table{
		Title:  "Figure 17a: client-side CPU per chunk (ms)",
		Header: []string{"system", "adaptation", "download", "decode", "render"},
	}
	vi := d.TracedIndices()[0]
	v := d.Video(vi)
	tr := d.Traces(vi)[0]
	enc := codec.NewEncoder()

	for _, s := range []System{SysFlare, SysPano} {
		mode, planner := s.components()
		m, err := d.Manifest(vi, mode)
		if err != nil {
			return nil, nil, err
		}
		srv, err := server.New(m)
		if err != nil {
			return nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		cl := client.New(ts.URL)
		est := player.NewEstimator()

		var adaptMs, dlMs, decodeMs, renderMs float64
		chunks := m.NumChunks()
		if chunks > 3 {
			chunks = 3
		}
		for k := 0; k < chunks; k++ {
			view := est.View(m, tr, k, float64(k)*m.ChunkSec)
			budget := m.ChunkBits(k, codec.Level(1))

			t0 := time.Now()
			alloc := planner.Plan(m, k, view, budget)
			adaptMs += time.Since(t0).Seconds() * 1e3

			t0 = time.Now()
			for ti, l := range alloc {
				if _, err := cl.FetchTile(context.Background(), k, ti, l); err != nil {
					ts.Close()
					return nil, nil, err
				}
			}
			dlMs += time.Since(t0).Seconds() * 1e3

			// Decode proxy: reconstruct every tile's pixels at its level.
			key := v.RenderFrame(k * v.FPS)
			tiles := map[int]*frame.Frame{}
			t0 = time.Now()
			for ti, l := range alloc {
				r := m.Chunks[k].Tiles[ti].Rect
				df, err := enc.DistortRegion(key, r, l.QP())
				if err != nil {
					ts.Close()
					return nil, nil, err
				}
				tiles[ti] = df
			}
			decodeMs += time.Since(t0).Seconds() * 1e3

			t0 = time.Now()
			dst := frame.New(m.W, m.H)
			if err := client.Stitch(m, k, tiles, dst); err != nil {
				ts.Close()
				return nil, nil, err
			}
			renderMs += time.Since(t0).Seconds() * 1e3
		}
		ts.Close()
		n := float64(chunks)
		for _, st := range []struct {
			name string
			ms   float64
		}{
			{"adaptation", adaptMs / n}, {"download", dlMs / n},
			{"decode", decodeMs / n}, {"render", renderMs / n},
		} {
			rows = append(rows, Fig17aRow{System: s, Stage: st.name, MsPerChunk: st.ms})
		}
		t.Rows = append(t.Rows, []string{s.String(),
			f2(adaptMs / n), f2(dlMs / n), f2(decodeMs / n), f2(renderMs / n)})
	}
	return rows, t, nil
}

// Fig17bRow is the start-up delay breakdown for one system.
type Fig17bRow struct {
	System        System
	ManifestBytes int
	ManifestMs    float64
	FirstChunkMs  float64
}

// Fig17b reproduces Figure 17(b): video start-up delay split into
// manifest download (Pano's is larger: it embeds the PSPNR lookup
// table) and first-chunk download (Pano's is smaller at equal quality).
func Fig17b(d *Dataset) ([]Fig17bRow, *Table, error) {
	var rows []Fig17bRow
	t := &Table{
		Title:  "Figure 17b: start-up delay breakdown",
		Header: []string{"system", "manifest_KB", "manifest_ms", "first_chunk_ms"},
	}
	vi := d.TracedIndices()[0]
	tr := d.Traces(vi)[0]
	for _, s := range []System{SysFlare, SysPano} {
		mode, planner := s.components()
		m, err := d.Manifest(vi, mode)
		if err != nil {
			return nil, nil, err
		}
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			return nil, nil, err
		}
		srv, err := server.New(m)
		if err != nil {
			return nil, nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		cl := client.New(ts.URL)

		t0 := time.Now()
		if _, err := cl.FetchManifest(context.Background()); err != nil {
			ts.Close()
			return nil, nil, err
		}
		manifestMs := time.Since(t0).Seconds() * 1e3

		res, err := cl.Stream(context.Background(), tr, client.StreamConfig{
			Planner: planner, MaxChunks: 1,
		})
		ts.Close()
		if err != nil {
			return nil, nil, err
		}
		r := Fig17bRow{System: s, ManifestBytes: buf.Len(), ManifestMs: manifestMs,
			FirstChunkMs: res.Chunks[0].Download.Seconds() * 1e3}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{s.String(),
			f1(float64(r.ManifestBytes) / 1024), f2(r.ManifestMs), f2(r.FirstChunkMs)})
	}
	return rows, t, nil
}

// Fig17cRow is the preprocessing time for one system.
type Fig17cRow struct {
	System       System
	SecPerMinute float64
}

// Fig17c reproduces Figure 17(c): provider-side preprocessing time per
// minute of video (encoding analysis, tiling, lookup-table formation).
func Fig17c(d *Dataset) ([]Fig17cRow, *Table, error) {
	var rows []Fig17cRow
	t := &Table{
		Title:  "Figure 17c: preprocessing time per minute of video",
		Header: []string{"system", "sec_per_min"},
	}
	vi := d.TracedIndices()[0]
	v := d.Video(vi)
	trs := d.Traces(vi)
	if len(trs) > 2 {
		trs = trs[:2]
	}
	for _, s := range []System{SysFlare, SysPano} {
		mode, _ := s.components()
		cfg := provider.DefaultConfig()
		cfg.Mode = mode
		t0 := time.Now()
		if _, err := provider.Preprocess(v, trs, cfg); err != nil {
			return nil, nil, err
		}
		el := time.Since(t0).Seconds()
		perMin := el * 60 / float64(v.DurationSec)
		rows = append(rows, Fig17cRow{System: s, SecPerMinute: perMin})
		t.Rows = append(t.Rows, []string{s.String(), f2(perMin)})
	}
	return rows, t, nil
}

// LUTRow summarizes the §6.3 lookup-table compression.
type LUTRow struct {
	Schema string
	Bytes  int
}

// LookupTableCompression reproduces §6.3: the PSPNR lookup table's size
// under the three schemas of Figure 12, plus the actual serialized
// manifest size, on a 5-minute-equivalent video.
func LookupTableCompression(d *Dataset) ([]LUTRow, *Table, error) {
	m, err := d.Manifest(d.TracedIndices()[0], provider.ModePano)
	if err != nil {
		return nil, nil, err
	}
	// Scale the chunk count to a 5-minute video for the headline
	// numbers (the schema sizes are linear in chunks).
	scale := 300 / float64(m.NumChunks())
	full := int(float64(m.FullTableSize(8)) * scale)
	reduced := int(float64(m.ReducedTableSize()) * scale)
	power := int(float64(m.PowerTableSize()) * scale)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return nil, nil, err
	}
	rows := []LUTRow{
		{Schema: "full (Fig 12a, n=8 per factor)", Bytes: full},
		{Schema: "ratio-indexed (Fig 12b)", Bytes: reduced},
		{Schema: "power-regression (Fig 12c)", Bytes: power},
		{Schema: "serialized manifest (actual, this video)", Bytes: buf.Len()},
	}
	t := &Table{
		Title:  "§6.3: PSPNR lookup table compression (5-minute video)",
		Header: []string{"schema", "size"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Schema, byteSize(r.Bytes)})
	}
	t.Rows = append(t.Rows, []string{"compression full→power",
		fmt.Sprintf("%.0fx", float64(full)/float64(power))})
	return rows, t, nil
}

func byteSize(b int) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
