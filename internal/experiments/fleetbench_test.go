package experiments

import (
	"math"
	"testing"
)

func TestZipfAssign(t *testing.T) {
	out := zipfAssign(24, 4)
	if len(out) != 24 {
		t.Fatalf("assigned %d sessions, want 24", len(out))
	}
	counts := make([]int, 4)
	for _, c := range out {
		if c < 0 || c >= 4 {
			t.Fatalf("choice %d out of range", c)
		}
		counts[c]++
	}
	for i := 1; i < 4; i++ {
		if counts[i] > counts[i-1] {
			t.Fatalf("popularity not monotone: %v", counts)
		}
	}
	if counts[0] <= counts[3] {
		t.Fatalf("no Zipf head: %v", counts)
	}
}

// TestFleetBenchContract is the acceptance bar of the fleet bench: kill
// 1 of 4 shards mid-run and sessions ride through with zero aborts, the
// mean PSPNR stays within 2 dB of the healthy run, a breaker opens
// within a few probe intervals, and the dead shard's request share
// stays bounded.
func TestFleetBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet bench runs swarm populations and 48 HTTP sessions")
	}
	old := FleetSwarmSessions
	FleetSwarmSessions = 3000
	defer func() { FleetSwarmSessions = old }()

	d := testDataset(t)
	res, table, err := FleetBench(d)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 4 || len(res.Rows) != 4 {
		t.Fatalf("want 4 scenario rows, got table %v, res %+v", table, res.Rows)
	}
	healthy, outage := res.Rows[0], res.Rows[1]
	liveHealthy, liveOutage := res.Rows[2], res.Rows[3]

	for _, r := range res.Rows {
		if r.Aborted != 0 {
			t.Errorf("%s aborted %d sessions", r.Scenario, r.Aborted)
		}
	}
	// The live stack must not shed a single tile; the bandwidth-starved
	// swarm workload legitimately skips a handful (the single-origin
	// baseline does too), so only a per-session bound applies there.
	if liveHealthy.SkippedTiles != 0 || liveOutage.SkippedTiles != 0 {
		t.Errorf("live rows skipped tiles: healthy %d, outage %d",
			liveHealthy.SkippedTiles, liveOutage.SkippedTiles)
	}
	for _, r := range []FleetScenarioResult{healthy, outage} {
		if float64(r.SkippedTiles) > 0.01*float64(r.Sessions) {
			t.Errorf("%s skipped %d tiles over %d sessions", r.Scenario, r.SkippedTiles, r.Sessions)
		}
	}

	// Swarm rows: deterministic QoE gate.
	if outage.Failovers <= healthy.Failovers {
		t.Errorf("outage failovers %d, healthy %d — outage must fail over more",
			outage.Failovers, healthy.Failovers)
	}
	if delta := math.Abs(res.PSPNRDeltaDB); delta > 2 {
		t.Errorf("shard outage moved mean PSPNR by %.2f dB (healthy %.2f, outage %.2f), want <= 2",
			delta, healthy.MeanPSPNR, outage.MeanPSPNR)
	}
	for _, r := range []FleetScenarioResult{healthy, outage} {
		if len(r.ShardLoad) != fleetOriginCount {
			t.Fatalf("%s shard load %v", r.Scenario, r.ShardLoad)
		}
		var sum int64
		for o, n := range r.ShardLoad {
			if n == 0 {
				t.Errorf("%s: shard %d saw no requests", r.Scenario, o)
			}
			sum += n
		}
		if sum != r.OriginRequests {
			t.Errorf("%s: shard loads sum %d != origin requests %d", r.Scenario, sum, r.OriginRequests)
		}
		// Bounded per-origin load: no shard absorbs more than half of a
		// 4-way consistent-hash split.
		if r.MaxShardShare > 0.5 {
			t.Errorf("%s: max shard share %.2f, want <= 0.5", r.Scenario, r.MaxShardShare)
		}
	}

	// Live rows: breaker reaction and dead-shard boundedness.
	if liveOutage.BreakerOpenMs <= 0 {
		t.Error("live outage: no edge breaker opened after the shard kill")
	} else if liveOutage.BreakerOpenMs > 10*float64(fleetProbeInterval.Milliseconds()) {
		t.Errorf("breaker took %.0f ms to open, want within ~10 probe intervals (%d ms)",
			liveOutage.BreakerOpenMs, 10*fleetProbeInterval.Milliseconds())
	}
	if liveHealthy.LiveTileReqs == 0 || liveOutage.LiveTileReqs == 0 {
		t.Fatal("live rows issued no origin tile requests")
	}
	// After the kill the dead shard serves nothing, so its share of the
	// run must fall below a healthy shard's ~1/4.
	deadShare := float64(liveOutage.ShardLoad[0]) / float64(liveOutage.LiveTileReqs)
	if deadShare > 0.5 {
		t.Errorf("dead shard took %.2f of live requests — failover not bounding it", deadShare)
	}
	if liveOutage.MeanEstPSPNR <= 0 || liveHealthy.MeanEstPSPNR <= 0 {
		t.Error("live rows carry no PSPNR estimate")
	}
}
