package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/edge"
	"pano/internal/fleet"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/server"
	"pano/internal/sim"
	"pano/internal/telemetry"
	"pano/internal/trace"
)

// ClusterBenchResult is the BENCH_cluster.json payload: the federation
// contract for the cluster observability plane. A five-process fleet
// (2 shard origins, 2 caching edges, one client/simulator process) is
// scraped by the obsd plane; an origin is hard-killed mid-run and the
// fleet-wide SLOs must page on the merged series and recover after
// revival; at quiescence the federated counter rollup must equal the
// arithmetic per-process sums exactly, and the cross-process trace of
// one session must assemble into a single validated timeline.
type ClusterBenchResult struct {
	Processes int // scraped registries (origins + edges + client)
	Targets   int // federation scrape targets
	FinalUp   int // targets up at the final collect

	Sessions    int // live HTTP sessions (healthy + outage)
	SimSessions int // starved simulator sessions during the outage
	Aborted     int

	// Exact-federation ledger: every rollup counter/histogram series is
	// recomputed from the per-target /metrics text in target order and
	// compared with ==.
	CounterSeries   int
	CounterMismatch int
	HistSeries      int
	HistMismatch    int
	Unmergeable     int // histogram families dropped for layout skew

	Origin0StaleSeen bool // target_up{origin0}=0 observed while killed

	RebufferPageStep  int // 0-based tick of the first rebuffer page (-1 = never)
	RebufferRecovered bool
	BreakerPageStep   int
	BreakerRecovered  bool
	TraceProcesses    int // distinct processes in the assembled session trace
	TraceSpans        int
	PerfettoEvents    int // validated X events of cluster.perfetto.json
	BuildVersions     int // distinct pano_build_info commits across the fleet
	WallSec           float64
}

// Cluster bench topology and logical-time schedule (one tick per
// simulated second, exactly like the telemetry bench).
const (
	clusterOriginCount     = 2
	clusterEdgeCount       = 2
	clusterHealthySessions = 6
	clusterOutageSessions  = 2
	clusterHealthySteps    = 12
	clusterOutageSteps     = 20
	clusterRecoverSteps    = 45
	// clusterProbeInterval paces the edges' active origin probes (wall
	// clock); a killed origin's breaker opens within a few of these.
	clusterProbeInterval = 50 * time.Millisecond
)

// clusterSLOSpec keeps the two fleet-meaningful objectives with windows
// sized to the logical schedule and turns the rest off so the
// trajectory is two-cause. breaker_open is the federation showcase: one
// open breaker per edge never pages a single process (each is at the
// <=1 ceiling), but the cluster rollup sums the gauges to 2 and pages —
// the outage is only visible fleet-wide.
const clusterSLOSpec = "rebuffer<=0.05@8s/24s!1.5/3;breaker_open<=1@8s/24s!1/2;" +
	"pspnr_floor=off;tile_p99=off;edge_hit=off;abort=off;failover_p99=off;hedge_rate=off"

// clusterProcess is one in-process "machine": its own registry and
// tracer, scraped as one federation target.
type clusterProcess struct {
	name string
	reg  *obs.Registry
	tr   *trace.Tracer
	url  string
}

// ClusterBench runs the cluster observability-plane experiment; the
// acceptance contract lives in the assertions (any failure errors the
// experiment out) and the table carries only deterministic values —
// wall-clock detail rides in the info column, which the benchdiff gate
// ignores.
func ClusterBench(d *Dataset) (ClusterBenchResult, *Table, error) {
	t0 := time.Now()
	res := ClusterBenchResult{
		Processes:        clusterOriginCount + clusterEdgeCount + 1,
		Targets:          clusterOriginCount + clusterEdgeCount + 1,
		Sessions:         clusterHealthySessions + clusterOutageSessions,
		RebufferPageStep: -1, BreakerPageStep: -1,
	}
	fail := func(format string, args ...any) (ClusterBenchResult, *Table, error) {
		return res, nil, fmt.Errorf("cluster: "+format, args...)
	}

	idx := d.TracedIndices()[0]
	m, err := d.Manifest(idx, provider.ModePano)
	if err != nil {
		return res, nil, err
	}
	traces := d.Traces(idx)

	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}()

	// newProcess allocates a registry+tracer pair. Tracer seeds are
	// high-bit separated: newTraceID mixes seed^counter, so adjacent
	// small seeds would collide across tracers at small counters.
	procSeq := 0
	newProcess := func(name string) *clusterProcess {
		procSeq++
		reg := obs.NewRegistry()
		obs.ExportBuildInfo(reg)
		return &clusterProcess{
			name: name,
			reg:  reg,
			tr:   trace.New(trace.Config{Obs: reg, Seed: uint64(procSeq) << 16}),
		}
	}

	// Shard origins: real pano-servers with their own observability,
	// some tile latency, and a hard-kill switch on origin 0.
	originLatency := chaos.Profile{
		Seed: d.Scale.Seed,
		Tile: chaos.Rule{Latency: 2 * time.Millisecond, Jitter: time.Millisecond},
	}
	origins := make([]*clusterProcess, clusterOriginCount)
	originCounters := make([]*tileCounter, clusterOriginCount)
	originURLs := make([]string, clusterOriginCount)
	var kill *downSwitch
	for i := range origins {
		p := newProcess(fmt.Sprintf("origin%d", i))
		srv, err := server.New(m, server.WithObs(p.reg), server.WithTracer(p.tr))
		if err != nil {
			return res, nil, err
		}
		originCounters[i] = &tileCounter{h: chaos.New(originLatency).Wrap(srv.Handler())}
		// Middleware outermost so a traced client's traceparent reaches
		// the origin's span store; the kill switch outermost of all, so a
		// dead origin resets even its /metrics scrapes (that is what
		// federation staleness must absorb).
		var h http.Handler = trace.Middleware(p.tr, originCounters[i])
		if i == 0 {
			kill = &downSwitch{h: h}
			h = kill
		}
		ts := httptest.NewServer(h)
		closers = append(closers, ts.Close)
		p.url = ts.URL
		origins[i], originURLs[i] = p, ts.URL
	}

	// Caching edges in fleet mode over both origins: probes + breakers
	// give the cluster its pano_fleet_origins_open signal.
	pol := client.FetchPolicy{
		MaxAttempts:       3,
		BaseBackoff:       500 * time.Microsecond,
		MaxBackoff:        2 * time.Millisecond,
		JitterFrac:        0.5,
		AttemptTimeout:    2 * time.Second,
		MinAttemptTimeout: 20 * time.Millisecond,
		HedgeDelay:        150 * time.Millisecond,
	}
	edges := make([]*clusterProcess, clusterEdgeCount)
	edgeProxies := make([]*edge.Edge, clusterEdgeCount)
	fronts := make([]*httptest.Server, clusterEdgeCount)
	for i := range edges {
		p := newProcess(fmt.Sprintf("edge%d", i))
		e, err := edge.New(edge.Config{
			Origins:       originURLs,
			ProbeInterval: clusterProbeInterval,
			Breaker:       fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 400 * time.Millisecond},
			CacheBytes:    32 << 20,
			TTL:           5 * time.Minute,
			Fetch:         pol,
			Obs:           p.reg,
			Tracer:        p.tr,
			HTTP:          &http.Client{Transport: pooledTransport()},
		})
		if err != nil {
			return res, nil, err
		}
		edgeProxies[i] = e
		fronts[i] = httptest.NewServer(trace.Middleware(p.tr, e.Handler()))
		closers = append(closers, fronts[i].Close)
		p.url = fronts[i].URL
		edges[i] = p
	}

	// The client/simulator "process": live sessions and starved sim
	// sessions share one registry, exposed like pano-player's
	// -telemetry-addr endpoint.
	cproc := newProcess("client")
	cmux := http.NewServeMux()
	cmux.Handle("/metrics", cproc.reg.Handler())
	cmux.Handle("/debug/traces", cproc.tr.Handler())
	cts := httptest.NewServer(cmux)
	closers = append(closers, cts.Close)
	cproc.url = cts.URL

	// The obsd plane, built exactly like cmd/pano-obsd: scrape-target
	// CSV through the flag parser, scraper as the sampler's Source.
	targetCSV := fmt.Sprintf("client=%s,edge0=%s,edge1=%s,origin0=%s,origin1=%s",
		cproc.url, edges[0].url, edges[1].url, origins[0].url, origins[1].url)
	targets, err := telemetry.ParseScrapeTargets(targetCSV)
	if err != nil {
		return res, nil, err
	}
	regD := obs.NewRegistry()
	obs.ExportBuildInfo(regD)
	sc, err := telemetry.NewScraper(telemetry.ScraperConfig{
		Targets:      targets,
		Timeout:      2 * time.Second,
		Interval:     time.Second,
		Self:         regD,
		SelfInstance: "obsd",
	})
	if err != nil {
		return res, nil, err
	}
	slos, err := telemetry.ParseSLOs(clusterSLOSpec)
	if err != nil {
		return res, nil, err
	}
	smp := telemetry.New(telemetry.Config{
		Obs: regD, SLOs: slos, Interval: time.Second, Window: 3 * time.Minute,
		Source:    sc.Collect,
		DashExtra: sc.DashPanels,
	})

	// Logical clock: every tick scrapes the whole fleet and evaluates
	// the SLOs one simulated second later.
	now := time.Unix(1700000000, 0)
	step := 0
	tick := func() {
		smp.Step(now)
		if smp.State("rebuffer") == telemetry.StatePage && res.RebufferPageStep < 0 {
			res.RebufferPageStep = step
		}
		if smp.State("breaker_open") == telemetry.StatePage && res.BreakerPageStep < 0 {
			res.BreakerPageStep = step
		}
		now = now.Add(time.Second)
		step++
	}

	liveSession := func(u int, tr *trace.Tracer) (string, error) {
		p := pol
		p.Seed = uint64(u + 1)
		c := client.New(fronts[u%clusterEdgeCount].URL)
		c.HTTP = &http.Client{Transport: pooledTransport()}
		out, err := c.Stream(context.Background(), traces[u%len(traces)], client.StreamConfig{
			Fetch: p,
			Obs:   cproc.reg,
			Trace: tr,
		})
		if err != nil {
			return "", err
		}
		return out.TraceID, nil
	}

	// Phase 1 — healthy. Session 0 runs alone and traced, so its cold
	// cache misses fill from its own request context and the origin
	// spans join its trace; the rest run concurrently, untraced.
	sessionTraceID, err := liveSession(0, cproc.tr)
	if err != nil {
		return fail("traced healthy session: %v", err)
	}
	if sessionTraceID == "" {
		return fail("traced session returned no trace id")
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for u := 1; u < clusterHealthySessions; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if _, err := liveSession(u, nil); err != nil {
				mu.Lock()
				res.Aborted++
				mu.Unlock()
			}
		}(u)
	}
	wg.Wait()
	for i := 0; i < clusterHealthySteps; i++ {
		tick()
	}
	if st := smp.State("rebuffer"); st != telemetry.StateOK {
		return fail("rebuffer SLO %v after healthy phase", st)
	}
	if st := smp.State("breaker_open"); st != telemetry.StateOK {
		return fail("breaker_open SLO %v after healthy phase", st)
	}

	// Cross-process trace assembly, probed through the obsd endpoint the
	// way an operator would: one trace id, spans from client, edge, and
	// origin processes on one timeline.
	rec := httptest.NewRecorder()
	sc.TraceHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?trace="+sessionTraceID, nil))
	if rec.Code != http.StatusOK {
		return fail("obsd trace endpoint: %d %s", rec.Code, rec.Body.String())
	}
	if _, err := trace.ValidateChromeTrace(rec.Body.Bytes()); err != nil {
		return fail("assembled trace invalid: %v", err)
	}
	parsed, err := trace.ParseChromeTrace(rec.Body.Bytes())
	if err != nil {
		return fail("assembled trace unparseable: %v", err)
	}
	for _, td := range parsed {
		if td.ID.String() == sessionTraceID {
			res.TraceProcesses = len(td.Processes())
			res.TraceSpans = len(td.Spans)
		}
	}
	if res.TraceProcesses < 3 {
		return fail("assembled session trace spans %d processes, want >= 3 (client, edge, origin)", res.TraceProcesses)
	}

	// Export the full assembled cluster view for Perfetto and validate
	// the export's shape, like the trace bench does for one process.
	assembled := sc.AssembleTraces()
	pf, err := os.Create("cluster.perfetto.json")
	if err != nil {
		return res, nil, err
	}
	if err := trace.WriteAssembledChromeTrace(pf, assembled...); err != nil {
		pf.Close()
		return res, nil, err
	}
	if err := pf.Close(); err != nil {
		return res, nil, err
	}
	pfData, err := os.ReadFile("cluster.perfetto.json")
	if err != nil {
		return res, nil, err
	}
	if res.PerfettoEvents, err = trace.ValidateChromeTrace(pfData); err != nil {
		return fail("cluster.perfetto.json invalid: %v", err)
	}

	// Phase 2 — kill origin 0 and wait (wall clock) for both edges'
	// breakers to leave Closed, so the outage ticks below scrape a fleet
	// that has already noticed.
	kill.down.Store(true)
	deadline := time.Now().Add(5 * time.Second)
	for {
		open := 0
		for _, e := range edgeProxies {
			if e.Fleet().Snapshot()[0].Breaker != fleet.Closed {
				open++
			}
		}
		if open == clusterEdgeCount {
			break
		}
		if time.Now().After(deadline) {
			return fail("breakers never opened after origin0 kill (%d/%d)", open, clusterEdgeCount)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Outage ticks: starved, lossy simulator sessions pour rebuffer
	// seconds into the client process while the dead origin's scrapes
	// fail (staleness) and both edges report an open breaker (the
	// cluster-only breaker_open page). Two live sessions ride through
	// the outage on failover and must not abort.
	outageLive := 0
	for i := 0; i < clusterOutageSteps; i++ {
		if i < clusterOutageSteps/2 {
			link := sim.ScaledLink(m, 0.05, d.Scale.Seed+100+uint64(i))
			if _, err := sim.Run(m, traces[0], link, player.NewPanoPlanner(), sim.Config{
				Seed: d.Scale.Seed + 100 + uint64(i), Obs: cproc.reg, TileLossRate: 0.1,
			}); err != nil {
				return res, nil, err
			}
			res.SimSessions++
		}
		if i == 3 || i == 11 {
			if _, err := liveSession(clusterHealthySessions+outageLive, nil); err != nil {
				res.Aborted++
			}
			outageLive++
		}
		tick()
		for _, ts := range sc.Targets() {
			if ts.Instance == "origin0" && !ts.Up {
				res.Origin0StaleSeen = true
			}
		}
	}
	if !res.Origin0StaleSeen {
		return fail("origin0 never reported stale during the kill window")
	}
	if res.RebufferPageStep < 0 {
		return fail("rebuffer SLO never paged during the outage (state %v)", smp.State("rebuffer"))
	}
	if res.BreakerPageStep < 0 {
		return fail("breaker_open SLO never paged during the outage (state %v)", smp.State("breaker_open"))
	}

	// Phase 3 — revive and recover. Wall-clock wait for the breakers to
	// close again (half-open probes succeed), then clean logical ticks
	// drain the burn windows and flap damping steps both SLOs down.
	kill.down.Store(false)
	deadline = time.Now().Add(5 * time.Second)
	for {
		closed := 0
		for _, e := range edgeProxies {
			if e.Fleet().Snapshot()[0].Breaker == fleet.Closed {
				closed++
			}
		}
		if closed == clusterEdgeCount {
			break
		}
		if time.Now().After(deadline) {
			return fail("breakers never re-closed after origin0 revival (%d/%d)", closed, clusterEdgeCount)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < clusterRecoverSteps; i++ {
		tick()
	}
	res.RebufferRecovered = smp.State("rebuffer") == telemetry.StateOK
	res.BreakerRecovered = smp.State("breaker_open") == telemetry.StateOK
	if !res.RebufferRecovered || !res.BreakerRecovered {
		return fail("SLOs did not recover (rebuffer %v, breaker_open %v)",
			smp.State("rebuffer"), smp.State("breaker_open"))
	}
	if res.Aborted != 0 {
		return fail("%d live sessions aborted", res.Aborted)
	}

	// Quiescence: stop the edges' active probes (the only background
	// registry writers), then run one final collect and freeze. From
	// here every registry is immutable, so the per-target /metrics text
	// re-fetched below describes exactly the bytes the rollup was
	// computed from.
	for _, e := range edgeProxies {
		e.Close()
	}
	now = now.Add(time.Second)
	final := sc.Collect(now)
	for _, s := range final {
		if s.Name == "pano_federation_unmergeable_families" {
			res.Unmergeable = int(s.Value)
		}
	}
	for _, ts := range sc.Targets() {
		if ts.Up {
			res.FinalUp++
		}
	}
	if res.FinalUp != res.Targets {
		return fail("%d/%d targets up at the final collect", res.FinalUp, res.Targets)
	}

	// The exactness contract: re-fetch every target's exposition text in
	// target-config order, re-accumulate counters and histograms with
	// the same left-to-right float order the scraper uses, and demand
	// bit-exact equality with the rollup.
	type hsum struct {
		count  uint64
		sum    float64
		counts []uint64
	}
	counterSums := map[string]float64{}
	histSums := map[string]*hsum{}
	for _, ts := range sc.Targets() {
		resp, err := http.Get(ts.URL)
		if err != nil {
			return fail("verification fetch %s: %v", ts.Instance, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return fail("verification read %s: %v", ts.Instance, err)
		}
		series, err := obs.ParsePrometheus(bytes.NewReader(body))
		if err != nil {
			return fail("verification parse %s: %v", ts.Instance, err)
		}
		for _, s := range series {
			key := s.Name + "\xff" + s.Key
			switch s.Type {
			case "counter":
				counterSums[key] += s.Value
			case "histogram":
				h := histSums[key]
				if h == nil {
					h = &hsum{counts: make([]uint64, len(s.Counts))}
					histSums[key] = h
				}
				if len(h.counts) == len(s.Counts) {
					for i, c := range s.Counts {
						h.counts[i] += c
					}
				}
				h.count += s.Count
				h.sum += s.Sum
			}
		}
	}
	for _, s := range sc.RollupSeries() {
		key := s.Name + "\xff" + s.Key
		switch s.Type {
		case "counter":
			res.CounterSeries++
			want, ok := counterSums[key]
			if !ok || want != s.Value {
				res.CounterMismatch++
			}
		case "histogram":
			res.HistSeries++
			h := histSums[key]
			if h == nil || h.count != s.Count || h.sum != s.Sum || len(h.counts) != len(s.Counts) {
				res.HistMismatch++
				continue
			}
			for i, c := range s.Counts {
				if h.counts[i] != c {
					res.HistMismatch++
					break
				}
			}
		}
	}
	if res.CounterSeries == 0 || res.HistSeries == 0 {
		return fail("rollup held no counters/histograms to verify (%d/%d)", res.CounterSeries, res.HistSeries)
	}
	if res.CounterMismatch != 0 || res.HistMismatch != 0 {
		return fail("federation not exact: %d/%d counter and %d/%d histogram series mismatched",
			res.CounterMismatch, res.CounterSeries, res.HistMismatch, res.HistSeries)
	}

	// One build across the whole fleet: every process (and obsd itself)
	// must export the same pano_build_info commit.
	commits := map[string]bool{}
	for _, s := range sc.InstanceSeries() {
		if s.Name == "pano_build_info" {
			for _, l := range s.Labels {
				if l.Key == "commit" {
					commits[l.Value] = true
				}
			}
		}
	}
	res.BuildVersions = len(commits)
	if res.BuildVersions != 1 {
		return fail("fleet reports %d distinct build commits, want 1", res.BuildVersions)
	}

	res.WallSec = time.Since(t0).Seconds()
	boolCell := func(b bool) string {
		if b {
			return "1"
		}
		return "0"
	}
	t := &Table{
		Title:  "Cluster observability plane: federated /metrics, fleet-wide SLOs, cross-process traces",
		Header: []string{"metric", "value", "info"},
		Rows: [][]string{
			{"processes", f0(float64(res.Processes)), "2 origins + 2 edges + client"},
			{"scrape_targets", f0(float64(res.Targets)), "federated by obsd plane"},
			{"targets_up_final", f0(float64(res.FinalUp)), "after origin0 revival"},
			{"live_sessions", f0(float64(res.Sessions)), fmt.Sprintf("%d healthy + %d through the outage", clusterHealthySessions, clusterOutageSessions)},
			{"sim_sessions", f0(float64(res.SimSessions)), "starved link + tile loss, outage phase"},
			{"aborted", f0(float64(res.Aborted)), "failover kept every session alive"},
			{"counter_mismatches", f0(float64(res.CounterMismatch)), fmt.Sprintf("%d rollup counter series == per-process sums", res.CounterSeries)},
			{"histogram_mismatches", f0(float64(res.HistMismatch)), fmt.Sprintf("%d rollup histogram series bucket-exact", res.HistSeries)},
			{"unmergeable_families", f0(float64(res.Unmergeable)), "histogram layout skew across the fleet"},
			{"origin0_stale_seen", boolCell(res.Origin0StaleSeen), "target_up{origin0}=0 while killed; series frozen"},
			{"rebuffer_paged", boolCell(res.RebufferPageStep >= 0), fmt.Sprintf("page at step %d", res.RebufferPageStep)},
			{"rebuffer_recovered", boolCell(res.RebufferRecovered), "burn windows drained after revival"},
			{"breaker_paged", boolCell(res.BreakerPageStep >= 0), fmt.Sprintf("page at step %d; cluster-only signal (each edge sits at the <=1 ceiling)", res.BreakerPageStep)},
			{"breaker_recovered", boolCell(res.BreakerRecovered), "breakers re-closed, gauge sum back to 0"},
			{"trace_assembled", boolCell(res.TraceProcesses >= 3), fmt.Sprintf("%d processes, %d spans on one timeline; cluster.perfetto.json: %d events", res.TraceProcesses, res.TraceSpans, res.PerfettoEvents)},
			{"build_versions", f0(float64(res.BuildVersions)), "pano_build_info commit agrees fleet-wide"},
		},
	}
	return res, t, nil
}
