package experiments

import (
	"fmt"
	"math"

	"pano/internal/jnd"
	"pano/internal/mathx"
	"pano/internal/player"
	"pano/internal/provider"
	"pano/internal/sim"
	"pano/internal/userstudy"
)

// Fig6Row is one measured point of Figure 6.
type Fig6Row struct {
	Factor      string // "speed" | "luma" | "dof"
	Value       float64
	MeasuredJND float64
	ModelJND    float64
}

// Fig6 reproduces Figure 6: the panel's measured JND as each factor
// varies with the others held at zero, against the fitted model.
func Fig6(d *Dataset) ([]Fig6Row, *Table, error) {
	panel := userstudy.NewPanel(d.Scale.PanelSize, d.Scale.Seed)
	prof := jnd.Default()
	base := userstudy.StimulusBaseJND
	var rows []Fig6Row
	add := func(factor string, value float64, f jnd.Factors, model float64) {
		rows = append(rows, Fig6Row{
			Factor: factor, Value: value,
			MeasuredJND: panel.MeasureJND(f),
			ModelJND:    model,
		})
	}
	for _, v := range []float64{0, 5, 10, 15, 20} {
		add("speed", v, jnd.Factors{SpeedDegS: v}, base*prof.Fv(v))
	}
	for _, l := range []float64{0, 70, 140, 200, 240} {
		add("luma", l, jnd.Factors{LumaChange: l}, base*prof.Fl(l))
	}
	for _, dd := range []float64{0, 0.67, 1.33, 2} {
		add("dof", dd, jnd.Factors{DoFDiff: dd}, base*prof.Fd(dd))
	}
	t := &Table{
		Title:  "Figure 6: JND vs individual factors (user study vs model)",
		Header: []string{"factor", "value", "measured_JND", "model_JND"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Factor, f2(r.Value), f1(r.MeasuredJND), f1(r.ModelJND)})
	}
	return rows, t, nil
}

// Fig7Row is one cell of Figure 7's joint-impact surfaces.
type Fig7Row struct {
	Pair         string // "speed+dof" | "speed+luma"
	X1, X2       float64
	JointJND     float64
	ProductJND   float64 // C * F(x1) * F(x2): the independence model
	RelDeviation float64
}

// Fig7 reproduces Figure 7: joint JND under two non-zero factors vs
// the product of marginal multipliers (the independence assumption of
// Equation 4).
func Fig7(d *Dataset) ([]Fig7Row, *Table, error) {
	panel := userstudy.NewPanel(d.Scale.PanelSize, d.Scale.Seed+1)
	var rows []Fig7Row
	measure := func(pair string, f jnd.Factors, x1, x2 float64) {
		joint := panel.MeasureJND(f)
		m1 := panel.Multiplier(jnd.Factors{SpeedDegS: f.SpeedDegS})
		var m2 float64
		if pair == "speed+dof" {
			m2 = panel.Multiplier(jnd.Factors{DoFDiff: f.DoFDiff})
		} else {
			m2 = panel.Multiplier(jnd.Factors{LumaChange: f.LumaChange})
		}
		product := panel.MeasureJND(jnd.Factors{}) * m1 * m2
		dev := 0.0
		if product > 0 {
			dev = math.Abs(joint-product) / product
		}
		rows = append(rows, Fig7Row{Pair: pair, X1: x1, X2: x2,
			JointJND: joint, ProductJND: product, RelDeviation: dev})
	}
	for _, v := range []float64{0, 10, 20} {
		for _, dd := range []float64{0, 1, 2} {
			measure("speed+dof", jnd.Factors{SpeedDegS: v, DoFDiff: dd}, v, dd)
		}
	}
	for _, v := range []float64{0, 10, 20} {
		for _, l := range []float64{0, 100, 200} {
			measure("speed+luma", jnd.Factors{SpeedDegS: v, LumaChange: l}, v, l)
		}
	}
	t := &Table{
		Title:  "Figure 7: joint JND vs product of marginals (independence check)",
		Header: []string{"pair", "x1", "x2", "joint_JND", "product_JND", "rel_dev"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Pair, f1(r.X1), f1(r.X2),
			f1(r.JointJND), f1(r.ProductJND), fmt.Sprintf("%.0f%%", r.RelDeviation*100)})
	}
	return rows, t, nil
}

// Fig8Result holds per-predictor relative MOS-estimation errors.
type Fig8Result struct {
	Err360PSPNR  []float64
	ErrTradPSPNR []float64
	ErrPSNR      []float64
}

// Fig8 reproduces Figure 8: how accurately three quality metrics —
// 360JND-based PSPNR, traditional (content-JND) PSPNR, and plain PSNR —
// predict the panel's MOS across videos. Each video's metrics are
// measured on the same delivered session.
func Fig8(d *Dataset) (*Fig8Result, *Table, error) {
	panel := userstudy.NewPanel(d.Scale.PanelSize, d.Scale.Seed+2)
	prof := jnd.Default()
	est := player.NewEstimator()

	var v360, vTrad, vPSNR []float64
	// Each (video, operating point) pair is one rated session; the
	// spread of genres × bandwidths mirrors the paper's 21 rated
	// videos spanning the quality range.
	fracs := []float64{0.2, 0.45, 0.7}
	n := len(d.Videos())
	for vi := 0; vi < n; vi++ {
		m, err := d.Manifest(vi, provider.ModePano)
		if err != nil {
			return nil, nil, err
		}
		tr := d.Traces(vi)[0]
		for _, frac := range fracs {
			res, err := d.RunSystem(vi, tr, SysPano, frac, sim.DefaultConfig())
			if err != nil {
				return nil, nil, err
			}
			var s360, sTrad, sPSNR mathx.Stats
			for k, alloc := range res.PerChunkAlloc {
				actual := est.ActualView(m, tr, k)
				s360.Add(player.FramePSPNR(m, k, alloc, actual, prof))
				// Traditional PSPNR: content JND only (nil ⇒ A=1).
				sTrad.Add(player.FramePSPNR(m, k, alloc, actual, nil))
				sPSNR.Add(player.FramePSNR(m, k, alloc))
			}
			v360 = append(v360, s360.Mean())
			vTrad = append(vTrad, sTrad.Mean())
			vPSNR = append(vPSNR, sPSNR.Mean())
		}
	}
	// Each video is rated once; every metric is then judged against
	// the same ratings.
	mosReal := make([]float64, len(v360))
	for i, q := range v360 {
		mosReal[i] = panel.MOS(q)
	}
	res := &Fig8Result{
		Err360PSPNR:  userstudy.PredictorErrors(v360, mosReal),
		ErrTradPSPNR: userstudy.PredictorErrors(vTrad, mosReal),
		ErrPSNR:      userstudy.PredictorErrors(vPSNR, mosReal),
	}
	t := &Table{
		Title:  "Figure 8: MOS estimation error by quality metric",
		Header: []string{"metric", "median_err_%", "p90_err_%"},
	}
	for _, row := range []struct {
		name string
		errs []float64
	}{
		{"PSPNR w/ 360JND", res.Err360PSPNR},
		{"PSPNR w/ traditional JND", res.ErrTradPSPNR},
		{"PSNR", res.ErrPSNR},
	} {
		c := mathx.NewCDF(row.errs)
		t.Rows = append(t.Rows, []string{row.name,
			f1(c.Quantile(0.5) * 100), f1(c.Quantile(0.9) * 100)})
	}
	return res, t, nil
}
