package experiments

import "testing"

// TestLiveBenchContract is the acceptance bar of the live bench: the
// JIT pipeline publishes ≥95% of chunks on time under a sane budget, an
// impossible budget degrades every chunk but still publishes the whole
// feed, two stateless origins over one store answer byte- and
// ETag-identically for every object, and killing one of two origins
// mid-feed aborts no session and loses no published chunk.
func TestLiveBenchContract(t *testing.T) {
	if testing.Short() {
		t.Skip("live bench runs three full feeds plus HTTP sessions")
	}
	d := testDataset(t)
	res, table, err := LiveBench(d)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) != 4 || len(res.Rows) != 4 {
		t.Fatalf("want 4 scenario rows, got table %v, res %+v", table, res.Rows)
	}
	jit, tight, origins, failover := res.Rows[0], res.Rows[1], res.Rows[2], res.Rows[3]

	if jit.Chunks == 0 {
		t.Fatal("jit_pipeline published nothing")
	}
	if jit.OnTimeFrac < 0.95 {
		t.Errorf("on-time fraction %.2f, want >= 0.95", jit.OnTimeFrac)
	}
	if jit.Degraded != 0 {
		t.Errorf("jit_pipeline degraded %d chunks under a 1 s budget", jit.Degraded)
	}

	if tight.DeadlineMisses != tight.Chunks || tight.Degraded != tight.Chunks {
		t.Errorf("tight deadline: misses %d degraded %d, want all %d chunks",
			tight.DeadlineMisses, tight.Degraded, tight.Chunks)
	}
	if tight.Chunks != jit.Chunks {
		t.Errorf("tight deadline published %d chunks, sane budget %d — late chunks must publish too",
			tight.Chunks, jit.Chunks)
	}

	if origins.TilesCompared == 0 {
		t.Fatal("stateless_origins compared nothing")
	}
	if origins.Mismatches != 0 {
		t.Errorf("%d/%d objects differ between two origins over one store",
			origins.Mismatches, origins.TilesCompared)
	}

	if failover.Aborted != 0 {
		t.Errorf("live failover aborted %d/%d sessions", failover.Aborted, failover.Sessions)
	}
	if failover.LostChunks != 0 {
		t.Errorf("live failover lost %d published chunks", failover.LostChunks)
	}
	if failover.DeadlineMisses != failover.Chunks {
		t.Errorf("failover feed missed %d/%d deadlines — the row must exercise late publishes",
			failover.DeadlineMisses, failover.Chunks)
	}
	if failover.LiveLatencyMaxSec <= 0 {
		t.Error("failover sessions sampled no live latency")
	}
}
