package experiments

import (
	"fmt"
	"math"

	"pano/internal/mathx"
	"pano/internal/sim"
)

// Fig10Row is one time point of Figure 10.
type Fig10Row struct {
	T              float64
	RealSpeed      float64
	PredictedBound float64
}

// Fig10 reproduces Figure 10: the conservative lower-bound speed
// estimate (min speed over the last 2 s) against the real speed over
// one dynamic trace, plus the fraction of points where the bound holds.
func Fig10(d *Dataset) ([]Fig10Row, *Table, error) {
	vi := d.TracedIndices()[0]
	tr := d.Traces(vi)[0]
	var rows []Fig10Row
	held, total := 0, 0
	for ts := 2.0; ts < tr.Duration()-0.5; ts += 0.5 {
		bound := tr.MinSpeedIn(ts-2, ts)
		real := tr.SpeedAt(ts + 0.5)
		rows = append(rows, Fig10Row{T: ts, RealSpeed: real, PredictedBound: bound})
		total++
		if bound <= real+1.0 {
			held++
		}
	}
	t := &Table{
		Title:  "Figure 10: lower-bound speed prediction vs real speed",
		Header: []string{"t_s", "real_deg_s", "bound_deg_s"},
	}
	step := len(rows) / 12
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(rows); i += step {
		r := rows[i]
		t.Rows = append(t.Rows, []string{f1(r.T), f1(r.RealSpeed), f1(r.PredictedBound)})
	}
	t.Rows = append(t.Rows, []string{"bound_holds",
		fmt.Sprintf("%.0f%%", 100*float64(held)/float64(total)), ""})
	return rows, t, nil
}

// Fig16aRow summarizes the PSPNR estimation-error CDF at one noise
// level.
type Fig16aRow struct {
	NoiseDeg            float64
	MedianErrDB, P90Err float64
}

// Fig16a reproduces Figure 16(a): the client's PSPNR estimation error
// under increasing viewpoint noise.
func Fig16a(d *Dataset) ([]Fig16aRow, *Table, error) {
	var rows []Fig16aRow
	t := &Table{
		Title:  "Figure 16a: PSPNR estimation error under viewpoint noise",
		Header: []string{"noise_deg", "median_err_dB", "p90_err_dB"},
	}
	for _, noise := range []float64{5, 40, 80} {
		var errs []float64
		for _, vi := range d.TracedIndices() {
			trs := d.Traces(vi)
			if len(trs) > 2 {
				trs = trs[:2]
			}
			for _, tr := range trs {
				cfg := sim.DefaultConfig()
				cfg.ViewNoiseDeg = noise
				cfg.Seed = uint64(noise) + 11
				res, err := d.RunSystem(vi, tr, SysPano, sim.Trace1Frac, cfg)
				if err != nil {
					return nil, nil, err
				}
				for k := range res.PerChunkPSPNR {
					errs = append(errs, math.Abs(res.PerChunkPSPNR[k]-res.PerChunkEstPSPNR[k]))
				}
			}
		}
		c := mathx.NewCDF(errs)
		r := Fig16aRow{NoiseDeg: noise, MedianErrDB: c.Quantile(0.5), P90Err: c.Quantile(0.9)}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{f0(noise), f1(r.MedianErrDB), f1(r.P90Err)})
	}
	return rows, t, nil
}

// Fig16bRow summarizes the cross-user quality distribution at one
// noise level.
type Fig16bRow struct {
	NoiseDeg             float64
	MeanPSPNR, P10, P90  float64
	CrossUserSpreadRatio float64 // (p90-p10)/mean
}

// Fig16b reproduces Figure 16(b): the distribution of per-user PSPNR
// under viewpoint noise — quality drops with noise but stays tight
// across users.
func Fig16b(d *Dataset) ([]Fig16bRow, *Table, error) {
	var rows []Fig16bRow
	t := &Table{
		Title:  "Figure 16b: per-user PSPNR distribution under noise",
		Header: []string{"noise_deg", "mean_dB", "p10", "p90", "spread"},
	}
	for _, noise := range []float64{5, 40, 80} {
		var per []float64
		for _, vi := range d.TracedIndices() {
			for _, tr := range d.Traces(vi) {
				cfg := sim.DefaultConfig()
				cfg.ViewNoiseDeg = noise
				cfg.Seed = uint64(noise) + 17
				res, err := d.RunSystem(vi, tr, SysPano, sim.Trace1Frac, cfg)
				if err != nil {
					return nil, nil, err
				}
				per = append(per, res.MeanPSPNR)
			}
		}
		c := mathx.NewCDF(per)
		r := Fig16bRow{NoiseDeg: noise, MeanPSPNR: c.Mean(),
			P10: c.Quantile(0.1), P90: c.Quantile(0.9)}
		if r.MeanPSPNR > 0 {
			r.CrossUserSpreadRatio = (r.P90 - r.P10) / r.MeanPSPNR
		}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{f0(noise), f1(r.MeanPSPNR), f1(r.P10), f1(r.P90), f2(r.CrossUserSpreadRatio)})
	}
	return rows, t, nil
}

// Fig16cRow is one point of the noise sweep.
type Fig16cRow struct {
	NoiseDeg              float64
	PanoPSPNR, FlarePSPNR float64
}

// Fig16c reproduces Figure 16(c): Pano vs the viewport-driven baseline
// as viewpoint noise grows — Pano stays ahead with diminishing gains.
func Fig16c(d *Dataset) ([]Fig16cRow, *Table, error) {
	var rows []Fig16cRow
	t := &Table{
		Title:  "Figure 16c: quality vs viewpoint noise level",
		Header: []string{"noise_deg", "pano_dB", "viewport_driven_dB"},
	}
	vis := d.TracedIndices()
	if len(vis) > 2 {
		vis = vis[:2]
	}
	for _, noise := range []float64{0, 50, 100, 150} {
		cfg := sim.DefaultConfig()
		cfg.ViewNoiseDeg = noise
		cfg.Seed = uint64(noise) + 29
		pa, err := d.aggregate(vis, SysPano, sim.Trace1Frac, cfg, 2)
		if err != nil {
			return nil, nil, err
		}
		fl, err := d.aggregate(vis, SysFlare, sim.Trace1Frac, cfg, 2)
		if err != nil {
			return nil, nil, err
		}
		r := Fig16cRow{NoiseDeg: noise, PanoPSPNR: pa.pspnr.Mean(), FlarePSPNR: fl.pspnr.Mean()}
		rows = append(rows, r)
		t.Rows = append(t.Rows, []string{f0(noise), f1(r.PanoPSPNR), f1(r.FlarePSPNR)})
	}
	return rows, t, nil
}

// Fig16dRow is one point of the bandwidth-error study.
type Fig16dRow struct {
	System         System
	ErrFrac        float64
	PSPNR          float64
	BufferingRatio float64
}

// Fig16d reproduces Figure 16(d): the bandwidth-quality tradeoff under
// throughput prediction errors of 0/10/30% for Pano and the baseline.
func Fig16d(d *Dataset) ([]Fig16dRow, *Table, error) {
	var rows []Fig16dRow
	t := &Table{
		Title:  "Figure 16d: impact of bandwidth prediction error",
		Header: []string{"system", "err_%", "pspnr_dB", "buffering_%"},
	}
	vis := d.TracedIndices()
	if len(vis) > 2 {
		vis = vis[:2]
	}
	for _, s := range []System{SysPano, SysFlare} {
		for _, e := range []float64{0, 0.1, 0.3} {
			cfg := sim.DefaultConfig()
			cfg.BWErrorFrac = e
			agg, err := d.aggregate(vis, s, sim.Trace1Frac, cfg, 2)
			if err != nil {
				return nil, nil, err
			}
			r := Fig16dRow{System: s, ErrFrac: e,
				PSPNR: agg.pspnr.Mean(), BufferingRatio: agg.buffering.Mean()}
			rows = append(rows, r)
			t.Rows = append(t.Rows, []string{s.String(), f0(e * 100), f1(r.PSPNR), f2(r.BufferingRatio)})
		}
	}
	return rows, t, nil
}
