// Package nettrace provides network throughput traces and an emulated
// download link.
//
// The paper evaluates over two 4G/LTE throughput traces from a public
// dataset, with means 0.71 and 1.05 Mbps (§8.1). This package generates
// LTE-like synthetic traces — a three-state Markov channel (good /
// degraded / outage) with AR(1) rate evolution within a state — scaled
// to a target mean, and parses external "t,mbps" CSV traces. The Link
// type integrates a trace to answer "when does a download of B bits
// started at time t finish?", which is all the streaming simulator
// needs.
package nettrace

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pano/internal/mathx"
)

// SampleInterval is the trace sampling period in seconds.
const SampleInterval = 1.0

// Trace is a bandwidth time series in Mbps sampled every SampleInterval
// seconds. Playback beyond the end wraps around, so short traces can
// drive long sessions.
type Trace struct {
	Mbps []float64
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Mbps) }

// Mean returns the average throughput in Mbps.
func (t *Trace) Mean() float64 {
	if len(t.Mbps) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.Mbps {
		s += v
	}
	return s / float64(len(t.Mbps))
}

// BandwidthAt returns the throughput in bits/second at time tm (>= 0),
// wrapping past the end of the trace.
func (t *Trace) BandwidthAt(tm float64) float64 {
	if len(t.Mbps) == 0 {
		return 0
	}
	i := int(tm/SampleInterval) % len(t.Mbps)
	if i < 0 {
		i += len(t.Mbps)
	}
	return t.Mbps[i] * 1e6
}

// Scale returns a copy of the trace scaled so its mean equals target
// Mbps. A zero-mean trace is returned unchanged.
func (t *Trace) Scale(targetMbps float64) *Trace {
	m := t.Mean()
	out := &Trace{Mbps: make([]float64, len(t.Mbps))}
	if m == 0 {
		copy(out.Mbps, t.Mbps)
		return out
	}
	k := targetMbps / m
	for i, v := range t.Mbps {
		out.Mbps[i] = v * k
	}
	return out
}

// SynthesizeLTE generates an LTE-like trace of the given duration whose
// mean is scaled to targetMbps. The channel alternates between a good
// state, a degraded state, and brief outages, with AR(1) smoothing
// within states — the burstiness profile of the paper's cellular traces.
func SynthesizeLTE(seed uint64, durationSec int, targetMbps float64) *Trace {
	rng := mathx.NewRNG(seed ^ 0x17e17e17e)
	type state int
	const (
		good state = iota
		degraded
		outage
	)
	// Mean rate per state, before scaling.
	means := map[state]float64{good: 1.6, degraded: 0.6, outage: 0.05}
	// Transition probabilities per second.
	next := func(s state) state {
		r := rng.Float64()
		switch s {
		case good:
			if r < 0.06 {
				return degraded
			}
			if r < 0.07 {
				return outage
			}
		case degraded:
			if r < 0.10 {
				return good
			}
			if r < 0.13 {
				return outage
			}
		case outage:
			if r < 0.5 {
				return degraded
			}
		}
		return s
	}
	tr := &Trace{Mbps: make([]float64, durationSec)}
	s := good
	rate := means[good]
	for i := 0; i < durationSec; i++ {
		s = next(s)
		target := means[s] * (1 + 0.25*rng.Norm())
		if target < 0.01 {
			target = 0.01
		}
		rate = 0.7*rate + 0.3*target // AR(1) smoothing
		tr.Mbps[i] = rate
	}
	return tr.Scale(targetMbps)
}

// Link emulates a download pipe driven by a trace, with a fixed
// round-trip time charged per object.
type Link struct {
	Trace  *Trace
	RTTSec float64
}

// NewLink returns a link over the trace with a 50 ms RTT.
func NewLink(t *Trace) *Link { return &Link{Trace: t, RTTSec: 0.05} }

// DownloadTime returns how long a transfer of bits started at time
// start takes, by integrating the trace's bandwidth (plus one RTT).
func (l *Link) DownloadTime(start, bits float64) float64 {
	if bits <= 0 {
		return l.RTTSec
	}
	t := start
	remaining := bits
	// Integrate in sub-interval steps aligned to the trace grid.
	for i := 0; i < 1<<20; i++ { // hard cap guards against zero traces
		bw := l.Trace.BandwidthAt(t)
		if bw <= 0 {
			bw = 1e3 // floor: 1 kbps keeps the integral finite
		}
		// Time to the next trace boundary.
		boundary := math.Floor(t/SampleInterval)*SampleInterval + SampleInterval
		dt := boundary - t
		if dt <= 0 {
			dt = SampleInterval
		}
		can := bw * dt
		if can >= remaining {
			return t + remaining/bw - start + l.RTTSec
		}
		remaining -= can
		t = boundary
	}
	return t - start + l.RTTSec
}

// MeanThroughput returns the link's average throughput in bits/second.
func (l *Link) MeanThroughput() float64 { return l.Trace.Mean() * 1e6 }

// WriteCSV serializes the trace as "t,mbps" rows.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "t,mbps"); err != nil {
		return err
	}
	for i, v := range t.Mbps {
		if _, err := fmt.Fprintf(bw, "%d,%.4f\n", i, v); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseCSV reads a "t,mbps" CSV trace (header and comment lines are
// skipped).
func ParseCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	tr := &Trace{}
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "t,") || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			return nil, fmt.Errorf("nettrace: line %d: want 2 fields", line)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("nettrace: line %d: bad mbps: %v", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("nettrace: line %d: negative bandwidth", line)
		}
		tr.Mbps = append(tr.Mbps, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if tr.Len() == 0 {
		return nil, fmt.Errorf("nettrace: empty trace")
	}
	return tr, nil
}
