package nettrace

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestSynthesizeLTEMeanAndShape(t *testing.T) {
	for _, target := range []float64{0.71, 1.05} {
		tr := SynthesizeLTE(1, 600, target)
		if tr.Len() != 600 {
			t.Fatalf("len = %d", tr.Len())
		}
		if m := tr.Mean(); math.Abs(m-target) > 1e-9 {
			t.Errorf("mean = %v, want %v", m, target)
		}
		// Real LTE traces fluctuate: coefficient of variation well
		// above zero.
		var s, s2 float64
		for _, v := range tr.Mbps {
			s += v
			s2 += v * v
		}
		mean := s / float64(tr.Len())
		std := math.Sqrt(s2/float64(tr.Len()) - mean*mean)
		if std/mean < 0.15 {
			t.Errorf("CoV = %v, want bursty trace", std/mean)
		}
		for i, v := range tr.Mbps {
			if v <= 0 {
				t.Fatalf("non-positive bandwidth at %d", i)
			}
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	a := SynthesizeLTE(7, 100, 1)
	b := SynthesizeLTE(7, 100, 1)
	for i := range a.Mbps {
		if a.Mbps[i] != b.Mbps[i] {
			t.Fatal("same seed should match")
		}
	}
	c := SynthesizeLTE(8, 100, 1)
	same := true
	for i := range a.Mbps {
		if a.Mbps[i] != c.Mbps[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestBandwidthAtWraps(t *testing.T) {
	tr := &Trace{Mbps: []float64{1, 2, 3}}
	if tr.BandwidthAt(0) != 1e6 || tr.BandwidthAt(1.5) != 2e6 {
		t.Error("lookup wrong")
	}
	if tr.BandwidthAt(3) != 1e6 || tr.BandwidthAt(4) != 2e6 {
		t.Error("should wrap past the end")
	}
	empty := &Trace{}
	if empty.BandwidthAt(1) != 0 {
		t.Error("empty trace bandwidth should be 0")
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{Mbps: []float64{1, 3}}
	s := tr.Scale(4)
	if m := s.Mean(); math.Abs(m-4) > 1e-12 {
		t.Errorf("scaled mean = %v", m)
	}
	if tr.Mbps[0] != 1 {
		t.Error("Scale must not mutate the original")
	}
	z := (&Trace{Mbps: []float64{0, 0}}).Scale(5)
	if z.Mean() != 0 {
		t.Error("zero trace scales to itself")
	}
}

func TestDownloadTimeConstantRate(t *testing.T) {
	tr := &Trace{Mbps: []float64{2, 2, 2, 2}} // 2 Mbps constant
	l := NewLink(tr)
	// 1 Mbit at 2 Mbps = 0.5 s + RTT.
	got := l.DownloadTime(0, 1e6)
	if math.Abs(got-(0.5+l.RTTSec)) > 1e-9 {
		t.Errorf("download time = %v, want %v", got, 0.5+l.RTTSec)
	}
	// Zero bits costs one RTT.
	if l.DownloadTime(0, 0) != l.RTTSec {
		t.Error("empty download should cost one RTT")
	}
}

func TestDownloadTimeVariableRate(t *testing.T) {
	// 1 Mbps for 1 s, then 4 Mbps: 3 Mbit takes 1 s + 0.5 s.
	tr := &Trace{Mbps: []float64{1, 4, 4, 4}}
	l := NewLink(tr)
	l.RTTSec = 0
	got := l.DownloadTime(0, 3e6)
	if math.Abs(got-1.5) > 1e-9 {
		t.Errorf("download time = %v, want 1.5", got)
	}
	// Mid-interval start.
	got = l.DownloadTime(0.5, 0.5e6) // finishes exactly at t=1.0
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("mid-start download = %v, want 0.5", got)
	}
}

func TestDownloadTimeSurvivesZeroBandwidth(t *testing.T) {
	tr := &Trace{Mbps: []float64{0}}
	l := NewLink(tr)
	got := l.DownloadTime(0, 1e3)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("download time = %v", got)
	}
	if got <= 0 {
		t.Fatal("download should take positive time")
	}
}

func TestMeanThroughput(t *testing.T) {
	l := NewLink(&Trace{Mbps: []float64{1, 3}})
	if l.MeanThroughput() != 2e6 {
		t.Errorf("mean throughput = %v", l.MeanThroughput())
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := SynthesizeLTE(3, 50, 1.05)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip length %d vs %d", back.Len(), tr.Len())
	}
	for i := range tr.Mbps {
		if math.Abs(back.Mbps[i]-tr.Mbps[i]) > 1e-3 {
			t.Fatalf("sample %d: %v vs %v", i, back.Mbps[i], tr.Mbps[i])
		}
	}
}

func TestParseCSVErrors(t *testing.T) {
	cases := []string{"", "t,mbps\n", "0,abc\n", "0\n", "0,-1\n"}
	for i, c := range cases {
		if _, err := ParseCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
