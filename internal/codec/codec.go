// Package codec simulates a tile-based 360° video encoder.
//
// The paper encodes tiles with x264 at five QP levels {22,27,32,37,42}
// (§8.1). This package substitutes a block-transform quantization model
// that preserves the two encoder properties Pano's design depends on:
//
//  1. Rate–distortion: bits fall and distortion grows as QP rises, with
//     busier (high-variance, fast-moving) content costing more bits and
//     distorting more at a given QP. Distorted pixels are actually
//     produced, so PSNR/PSPNR downstream are measured, not assumed.
//  2. Tiling overhead: each tile pays a fixed header and loses spatial
//     prediction at its boundary blocks, so fine grids inflate the total
//     size (Figure 4).
//
// The model is intra-frame per block plus a temporal-activity scaling
// across a chunk's frames, standing in for inter prediction.
package codec

import (
	"fmt"
	"math"

	"pano/internal/frame"
	"pano/internal/geom"
)

// QPLevels are the five quantization-parameter operating points used
// throughout the evaluation, ordered from highest quality to lowest.
var QPLevels = [...]int{22, 27, 32, 37, 42}

// NumLevels is the number of quality levels per tile.
const NumLevels = len(QPLevels)

// Level indexes a quality level: 0 is the highest quality (QP 22),
// NumLevels-1 the lowest (QP 42).
type Level int

// QP returns the quantization parameter for the level.
func (l Level) QP() int {
	if l < 0 {
		l = 0
	}
	if int(l) >= NumLevels {
		l = Level(NumLevels - 1)
	}
	return QPLevels[l]
}

// Valid reports whether the level is within range.
func (l Level) Valid() bool { return l >= 0 && int(l) < NumLevels }

// String implements fmt.Stringer.
func (l Level) String() string { return fmt.Sprintf("L%d(QP%d)", int(l), l.QP()) }

// QStep returns the quantization step size for a QP, following the
// H.264 relationship Δ ≈ 2^((QP-4)/6).
func QStep(qp int) float64 {
	return math.Pow(2, float64(qp-4)/6)
}

// Encoder models the tile encoder. The zero value is not usable; call
// NewEncoder.
type Encoder struct {
	// BlockSize is the transform block size in pixels.
	BlockSize int
	// HeaderBits is the fixed per-tile per-chunk overhead (headers,
	// parameter sets, segment addressing).
	HeaderBits float64
	// BoundaryPenalty multiplies the bit cost of blocks on a tile
	// boundary, which lose cross-block prediction.
	BoundaryPenalty float64
	// TemporalFloor and TemporalCeil bound the per-frame cost of
	// non-key frames relative to the key frame, as a function of how
	// much of the tile changes between frames.
	TemporalFloor float64
	TemporalCeil  float64
}

// NewEncoder returns an encoder with the calibration used across the
// repository (see DESIGN.md §4).
func NewEncoder() *Encoder {
	return &Encoder{
		BlockSize:       4,
		HeaderBits:      120,
		BoundaryPenalty: 1.55,
		TemporalFloor:   0.05,
		TemporalCeil:    0.5,
	}
}

// DistortRegion returns a copy of region r of f with the quantization
// distortion of the given QP applied. The region must lie within f.
func (e *Encoder) DistortRegion(f *frame.Frame, r geom.Rect, qp int) (*frame.Frame, error) {
	sub, err := f.Region(r)
	if err != nil {
		return nil, err
	}
	e.distortInPlace(sub, qp)
	return sub, nil
}

// distortInPlace applies block quantization to an owned frame.
func (e *Encoder) distortInPlace(f *frame.Frame, qp int) {
	step := QStep(qp)
	dcStep := step / 2
	b := e.BlockSize
	for by := 0; by < f.H; by += b {
		for bx := 0; bx < f.W; bx += b {
			r := geom.Rect{X0: bx, Y0: by, X1: minInt(bx+b, f.W), Y1: minInt(by+b, f.H)}
			mean := f.MeanLuma(r)
			qMean := math.Round(mean/dcStep) * dcStep
			for y := r.Y0; y < r.Y1; y++ {
				for x := r.X0; x < r.X1; x++ {
					p := float64(f.At(x, y))
					res := p - mean
					qRes := math.Round(res/step) * step
					f.Set(x, y, clampPix(qMean+qRes))
				}
			}
		}
	}
}

// blockBits estimates the bit cost of one block at the given step, from
// its residual levels: ~2*log2(|level|+1)+1 bits per nonzero coefficient
// plus a small DC cost. boundary marks blocks on the tile edge.
func (e *Encoder) blockBits(f *frame.Frame, r geom.Rect, step float64, boundary bool) float64 {
	mean := f.MeanLuma(r)
	bits := 4.0 // quantized DC / mode signalling
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			level := math.Round((float64(f.At(x, y)) - mean) / step)
			if level != 0 {
				bits += 2*math.Log2(math.Abs(level)+1) + 1
			}
		}
	}
	if boundary {
		bits *= e.BoundaryPenalty
	}
	return bits
}

// FrameRegionBits estimates the intra bit cost of encoding region r of
// frame f at the given QP, treating r as one tile (boundary blocks pay
// the prediction-loss penalty). The per-tile header is not included.
func (e *Encoder) FrameRegionBits(f *frame.Frame, r geom.Rect, qp int) float64 {
	step := QStep(qp)
	b := e.BlockSize
	var bits float64
	for by := r.Y0; by < r.Y1; by += b {
		for bx := r.X0; bx < r.X1; bx += b {
			blk := geom.Rect{X0: bx, Y0: by, X1: minInt(bx+b, r.X1), Y1: minInt(by+b, r.Y1)}
			boundary := bx == r.X0 || by == r.Y0 || bx+b >= r.X1 || by+b >= r.Y1
			bits += e.blockBits(f, blk, step, boundary)
		}
	}
	return bits
}

// TemporalActivity returns the fraction of pixels in region r that
// change by more than a small threshold between two frames, clamped to
// the encoder's temporal bounds. It scales the non-key-frame cost.
func (e *Encoder) TemporalActivity(a, b *frame.Frame, r geom.Rect) float64 {
	const thresh = 6
	changed, total := 0, 0
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			d := int(a.At(x, y)) - int(b.At(x, y))
			if d < 0 {
				d = -d
			}
			if d > thresh {
				changed++
			}
			total++
		}
	}
	if total == 0 {
		return e.TemporalFloor
	}
	act := float64(changed) / float64(total)
	if act < e.TemporalFloor {
		act = e.TemporalFloor
	}
	if act > e.TemporalCeil {
		act = e.TemporalCeil
	}
	return act
}

// TileChunkBits estimates the total bit cost of one tile over one chunk:
// header + key-frame cost + (frames-1) inter frames scaled by temporal
// activity. key is the chunk's first frame; next is a later frame used
// to estimate activity (pass key again for a static estimate).
func (e *Encoder) TileChunkBits(key, next *frame.Frame, r geom.Rect, qp int, framesPerChunk int) float64 {
	intra := e.FrameRegionBits(key, r, qp)
	act := e.TemporalActivity(key, next, r)
	inter := intra * act * float64(framesPerChunk-1)
	return e.HeaderBits + intra + inter
}

func clampPix(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(math.Round(v))
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
