package codec

import (
	"math"
	"testing"

	"pano/internal/frame"
	"pano/internal/geom"
	"pano/internal/scene"
)

func testVideo() *scene.Video {
	return scene.Generate(scene.Sports, 7, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 2})
}

func TestLevelQP(t *testing.T) {
	want := []int{22, 27, 32, 37, 42}
	for i, qp := range want {
		if Level(i).QP() != qp {
			t.Errorf("Level(%d).QP() = %d, want %d", i, Level(i).QP(), qp)
		}
	}
	if Level(-1).QP() != 22 || Level(99).QP() != 42 {
		t.Error("out-of-range levels should clamp")
	}
	if Level(0).Valid() != true || Level(5).Valid() != false {
		t.Error("Valid misbehaves")
	}
}

func TestQStepMonotone(t *testing.T) {
	prev := 0.0
	for qp := 0; qp <= 51; qp++ {
		s := QStep(qp)
		if s <= prev {
			t.Fatalf("QStep not increasing at qp=%d", qp)
		}
		prev = s
	}
	// Doubles every 6 QP.
	if math.Abs(QStep(28)/QStep(22)-2) > 1e-9 {
		t.Error("QStep should double per 6 QP")
	}
}

func TestDistortionGrowsWithQP(t *testing.T) {
	v := testVideo()
	f := v.RenderFrame(0)
	r := geom.Rect{X1: f.W, Y1: f.H}
	e := NewEncoder()
	var prev float64 = -1
	for _, qp := range QPLevels {
		enc, err := e.DistortRegion(f, r, qp)
		if err != nil {
			t.Fatal(err)
		}
		sub, _ := f.Region(r)
		mse, err := frame.MSE(sub, enc)
		if err != nil {
			t.Fatal(err)
		}
		if mse <= prev {
			t.Errorf("MSE at QP%d = %v not greater than previous %v", qp, mse, prev)
		}
		prev = mse
	}
}

func TestBitsFallWithQP(t *testing.T) {
	v := testVideo()
	f := v.RenderFrame(0)
	r := geom.Rect{X1: f.W, Y1: f.H}
	e := NewEncoder()
	prev := math.Inf(1)
	for _, qp := range QPLevels {
		bits := e.FrameRegionBits(f, r, qp)
		if bits >= prev {
			t.Errorf("bits at QP%d = %v, not less than %v", qp, bits, prev)
		}
		if bits <= 0 {
			t.Errorf("bits at QP%d = %v, want positive", qp, bits)
		}
		prev = bits
	}
}

func TestTexturedContentCostsMore(t *testing.T) {
	flat := frame.New(64, 64)
	flat.Fill(128)
	busy := frame.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			busy.Set(x, y, uint8((x*37+y*91)%256))
		}
	}
	e := NewEncoder()
	r := geom.Rect{X1: 64, Y1: 64}
	if e.FrameRegionBits(busy, r, 27) <= e.FrameRegionBits(flat, r, 27) {
		t.Error("busy content should cost more bits than flat")
	}
}

func TestDistortionPreservesFlatRegions(t *testing.T) {
	flat := frame.New(32, 32)
	flat.Fill(100)
	e := NewEncoder()
	enc, err := e.DistortRegion(flat, geom.Rect{X1: 32, Y1: 32}, 42)
	if err != nil {
		t.Fatal(err)
	}
	mse, _ := frame.MSE(flat, enc)
	// Flat blocks only suffer DC quantization, which is small relative
	// to residual quantization.
	if mse > 400 {
		t.Errorf("flat MSE at QP42 = %v, want modest", mse)
	}
}

func TestTilingInflation(t *testing.T) {
	// Figure 4: splitting into finer grids inflates the total encoded
	// size: 12x24 should cost ~2-3x a 3x6 encoding.
	v := testVideo()
	f := v.RenderFrame(0)
	e := NewEncoder()
	grids := []struct{ rows, cols int }{{3, 6}, {6, 12}, {12, 24}}
	sizes := make([]float64, len(grids))
	for gi, g := range grids {
		var total float64
		tw, th := f.W/g.cols, f.H/g.rows
		for ty := 0; ty < g.rows; ty++ {
			for tx := 0; tx < g.cols; tx++ {
				r := geom.Rect{X0: tx * tw, Y0: ty * th, X1: (tx + 1) * tw, Y1: (ty + 1) * th}
				total += e.HeaderBits + e.FrameRegionBits(f, r, 32)
			}
		}
		sizes[gi] = total
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("sizes not increasing with granularity: %v", sizes)
	}
	ratio := sizes[2] / sizes[0]
	if ratio < 1.5 || ratio > 4.5 {
		t.Errorf("12x24 / 3x6 size ratio = %v, want ~2-3x", ratio)
	}
}

func TestTemporalActivity(t *testing.T) {
	v := testVideo()
	e := NewEncoder()
	a := v.RenderFrame(0)
	b := v.RenderFrame(5)
	r := geom.Rect{X1: a.W, Y1: a.H}
	act := e.TemporalActivity(a, b, r)
	if act < e.TemporalFloor || act > e.TemporalCeil {
		t.Errorf("activity %v outside [%v,%v]", act, e.TemporalFloor, e.TemporalCeil)
	}
	// Identical frames clamp to the floor.
	if got := e.TemporalActivity(a, a, r); got != e.TemporalFloor {
		t.Errorf("static activity = %v, want floor %v", got, e.TemporalFloor)
	}
	// Empty region clamps to the floor rather than dividing by zero.
	if got := e.TemporalActivity(a, b, geom.Rect{}); got != e.TemporalFloor {
		t.Errorf("empty-region activity = %v, want floor", got)
	}
}

func TestTileChunkBits(t *testing.T) {
	v := testVideo()
	e := NewEncoder()
	key := v.RenderFrame(0)
	next := v.RenderFrame(3)
	r := geom.Rect{X0: 0, Y0: 0, X1: 80, Y1: 60}
	static := e.TileChunkBits(key, key, r, 32, 30)
	moving := e.TileChunkBits(key, next, r, 32, 30)
	if moving < static {
		t.Error("moving content should cost at least as much as static")
	}
	if static <= e.HeaderBits {
		t.Error("chunk bits should exceed the header alone")
	}
	// More frames cost more.
	if e.TileChunkBits(key, next, r, 32, 60) <= moving {
		t.Error("longer chunks should cost more")
	}
}

func TestDistortRegionBounds(t *testing.T) {
	f := frame.New(16, 16)
	e := NewEncoder()
	if _, err := e.DistortRegion(f, geom.Rect{X0: 8, Y0: 8, X1: 24, Y1: 24}, 32); err == nil {
		t.Error("out-of-bounds region should error")
	}
}
