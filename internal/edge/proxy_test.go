package edge

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pano/internal/client"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/viewport"
)

var (
	fixOnce sync.Once
	fixMan  *manifest.Video
	fixVid  *scene.Video
)

func fixture(t *testing.T) (*manifest.Video, *scene.Video) {
	t.Helper()
	fixOnce.Do(func() {
		v := scene.Generate(scene.Sports, 7, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 3})
		m, err := provider.Preprocess(v, nil, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixMan, fixVid = m, v
	})
	return fixMan, fixVid
}

// countingOrigin wraps the origin handler counting requests by
// endpoint, with an optional per-request hook.
type countingOrigin struct {
	h         http.Handler
	tiles     atomic.Int64
	manifests atomic.Int64
	fail      atomic.Bool // when set, answer 500 without consulting h
	gate      chan struct{}
	arrived   chan struct{}
}

func (c *countingOrigin) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.URL.Path == "/manifest.json":
		c.manifests.Add(1)
	case len(r.URL.Path) > 7 && r.URL.Path[:7] == "/video/":
		c.tiles.Add(1)
	}
	if c.arrived != nil {
		select {
		case c.arrived <- struct{}{}:
		default:
		}
	}
	if c.gate != nil {
		<-c.gate
	}
	if c.fail.Load() {
		http.Error(w, "origin down", http.StatusInternalServerError)
		return
	}
	c.h.ServeHTTP(w, r)
}

func newOrigin(t *testing.T) *countingOrigin {
	t.Helper()
	m, _ := fixture(t)
	s, err := server.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return &countingOrigin{h: s.Handler()}
}

// fastPolicy keeps origin retries loopback-scaled.
func fastPolicy() client.FetchPolicy {
	return client.FetchPolicy{
		MaxAttempts:    2,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     2 * time.Millisecond,
		JitterFrac:     0.5,
		AttemptTimeout: 2 * time.Second,
	}
}

func newEdge(t *testing.T, origin string, mut func(*Config)) (*Edge, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := Config{
		Origin:     origin,
		CacheBytes: 32 << 20,
		TTL:        time.Minute,
		NegTTL:     time.Minute,
		StaleFor:   time.Minute,
		Fetch:      fastPolicy(),
		Obs:        reg,
	}
	if mut != nil {
		mut(&cfg)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(e.Handler())
	t.Cleanup(func() { ts.Close(); e.Close() })
	return e, ts, reg
}

func get(t *testing.T, url string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header
}

// TestEdgeCoalescing: N concurrent misses for the same tile produce
// exactly one origin fetch; everyone gets identical bytes. Run under
// -race to exercise the flight group.
func TestEdgeCoalescing(t *testing.T) {
	origin := newOrigin(t)
	origin.gate = make(chan struct{})
	origin.arrived = make(chan struct{}, 1)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, nil)

	const n = 32
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, b, _ := get(t, ets.URL+"/video/0/0/1.bin")
			bodies[i] = b
		}(i)
	}
	<-origin.arrived // leader reached the origin
	time.Sleep(50 * time.Millisecond)
	close(origin.gate) // release it; waiters coalesce onto its flight
	wg.Wait()

	if got := origin.tiles.Load(); got != 1 {
		t.Fatalf("origin saw %d tile fetches for %d concurrent clients, want exactly 1", got, n)
	}
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	co := reg.CounterValue("pano_edge_coalesced_total", obs.L("endpoint", "tile"))
	hits := reg.CounterValue("pano_edge_hits_total", obs.L("endpoint", "tile"))
	if co+hits != n-1 {
		t.Errorf("coalesced(%v) + hits(%v) = %v, want %d", co, hits, co+hits, n-1)
	}
}

// TestEdgeRevalidation304: a stale entry revalidates with a conditional
// fetch; the origin answers 304 and the cached body is served again.
func TestEdgeRevalidation304(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, func(c *Config) { c.TTL = 50 * time.Millisecond })

	_, b1, h1 := get(t, ets.URL+"/video/0/0/0.bin")
	if h1.Get("X-Cache") != "miss" {
		t.Fatalf("first fetch X-Cache %q, want miss", h1.Get("X-Cache"))
	}
	time.Sleep(80 * time.Millisecond) // expire

	_, b2, h2 := get(t, ets.URL+"/video/0/0/0.bin")
	if h2.Get("X-Cache") != "revalidated" {
		t.Fatalf("stale fetch X-Cache %q, want revalidated", h2.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatal("revalidated body differs")
	}
	if got := reg.CounterValue("pano_edge_revalidations_total", obs.L("result", "304")); got != 1 {
		t.Errorf("revalidations{304} = %v, want 1", got)
	}
	if got := origin.tiles.Load(); got != 2 {
		t.Errorf("origin saw %d tile requests, want 2 (one full, one conditional)", got)
	}
	// Freshly revalidated: the next fetch is a pure hit.
	_, _, h3 := get(t, ets.URL+"/video/0/0/0.bin")
	if h3.Get("X-Cache") != "hit" {
		t.Errorf("post-revalidation X-Cache %q, want hit", h3.Get("X-Cache"))
	}
}

// TestEdgeServeStaleOnOriginFault: when the origin turns into a 500
// machine, stale entries keep serving within the retention window and
// requests only fail after it closes.
func TestEdgeServeStaleOnOriginFault(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, func(c *Config) {
		c.TTL = 50 * time.Millisecond
		c.StaleFor = 10 * time.Minute
	})

	_, b1, _ := get(t, ets.URL+"/video/0/1/0.bin")
	origin.fail.Store(true)
	time.Sleep(80 * time.Millisecond) // entry is now stale

	code, b2, h := get(t, ets.URL+"/video/0/1/0.bin")
	if code != http.StatusOK || h.Get("X-Cache") != "stale" {
		t.Fatalf("faulty origin: code %d X-Cache %q, want 200/stale", code, h.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatal("stale body differs from original")
	}
	if got := reg.CounterValue("pano_edge_stale_serves_total"); got != 1 {
		t.Errorf("stale_serves = %v, want 1", got)
	}
	// A never-cached object has no stale fallback: bad gateway.
	code, _, _ = get(t, ets.URL+"/video/0/2/0.bin")
	if code != http.StatusBadGateway {
		t.Errorf("uncached object with faulty origin: code %d, want 502", code)
	}
}

// TestEdgeNegativeCaching: a 404 is cached and replayed without
// touching the origin again within NegTTL.
func TestEdgeNegativeCaching(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, nil)

	code1, _, _ := get(t, ets.URL+"/video/999/0/0.bin")
	code2, _, h2 := get(t, ets.URL+"/video/999/0/0.bin")
	if code1 != http.StatusNotFound || code2 != http.StatusNotFound {
		t.Fatalf("codes %d/%d, want 404/404", code1, code2)
	}
	if h2.Get("X-Cache") != "hit" {
		t.Errorf("second 404 X-Cache %q, want hit", h2.Get("X-Cache"))
	}
	if got := origin.tiles.Load(); got != 1 {
		t.Errorf("origin saw %d requests for a cached negative, want 1", got)
	}
}

// TestEdgeDownstreamConditional: the edge honors a client's
// If-None-Match against a fresh entry with a 304 and zero origin
// traffic.
func TestEdgeDownstreamConditional(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, nil)

	_, _, h := get(t, ets.URL+"/video/0/0/0.bin")
	etag := h.Get("ETag")
	if etag == "" {
		t.Fatal("edge response lost the origin ETag")
	}
	before := origin.tiles.Load()
	req, _ := http.NewRequest(http.MethodGet, ets.URL+"/video/0/0/0.bin", nil)
	req.Header.Set("If-None-Match", etag)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status %d, want 304", resp.StatusCode)
	}
	if origin.tiles.Load() != before {
		t.Error("downstream revalidation hit the origin")
	}
}

// TestEdgePassthroughByteIdentical: with the cache disabled the edge is
// a transparent proxy — status, body, and validator headers match the
// origin byte for byte, for positive, negative, and conditional
// answers.
func TestEdgePassthroughByteIdentical(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, func(c *Config) { c.CacheBytes = 0 })

	paths := []string{"/manifest.json", "/manifest.mpd", "/video/0/0/0.bin", "/video/0/0/1.bin", "/video/999/0/0.bin"}
	for _, p := range paths {
		dCode, dBody, dH := get(t, ots.URL+p)
		eCode, eBody, eH := get(t, ets.URL+p)
		if dCode != eCode {
			t.Errorf("%s: status %d via edge, %d direct", p, eCode, dCode)
		}
		if string(dBody) != string(eBody) {
			t.Errorf("%s: body differs via edge (%d vs %d bytes)", p, len(eBody), len(dBody))
		}
		for _, hk := range []string{"Content-Type", "ETag", "Cache-Control", "Content-Length"} {
			if dH.Get(hk) != eH.Get(hk) {
				t.Errorf("%s: header %s = %q via edge, %q direct", p, hk, eH.Get(hk), dH.Get(hk))
			}
		}
	}
	// Conditional requests pass through to the origin's 304 logic.
	_, _, h := get(t, ots.URL+"/video/0/0/0.bin")
	req, _ := http.NewRequest(http.MethodGet, ets.URL+"/video/0/0/0.bin", nil)
	req.Header.Set("If-None-Match", h.Get("ETag"))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Errorf("pass-through conditional: status %d, want 304", resp.StatusCode)
	}
}

// TestEdgeStreamSessions: a real streaming client works unmodified
// against the edge, and a second session is served mostly from cache.
func TestEdgeStreamSessions(t *testing.T) {
	m, v := fixture(t)
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, nil)

	tr := viewport.Synthesize(v, 11, viewport.DefaultSynthesizeOpts())
	rate := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec
	for i := 0; i < 2; i++ {
		res, err := client.New(ets.URL).Stream(context.Background(), tr, client.StreamConfig{
			MaxRateBps: rate,
			Fetch:      fastPolicy(),
		})
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
		if len(res.Chunks) != m.NumChunks() {
			t.Fatalf("session %d streamed %d chunks, want %d", i, len(res.Chunks), m.NumChunks())
		}
		if res.SkippedTiles > 0 {
			t.Errorf("session %d skipped %d tiles", i, res.SkippedTiles)
		}
	}
	originTiles := origin.tiles.Load()
	hits := reg.CounterValue("pano_edge_hits_total", obs.L("endpoint", "tile"))
	if hits == 0 {
		t.Error("second identical session produced no cache hits")
	}
	total := int64(0)
	for _, ch := range []string{"hits", "misses", "coalesced"} {
		total += int64(reg.CounterValue("pano_edge_"+ch+"_total", obs.L("endpoint", "tile")))
	}
	if originTiles >= total {
		t.Errorf("origin tile fetches (%d) not reduced vs edge tile requests (%d)", originTiles, total)
	}
	if ratio := reg.GaugeValue("pano_edge_hit_ratio"); ratio <= 0 {
		t.Errorf("hit ratio gauge %v, want > 0", ratio)
	}
}

// TestEdgeConcurrentSessionsRace: several concurrent sessions through
// one edge, for the race detector.
func TestEdgeConcurrentSessionsRace(t *testing.T) {
	m, v := fixture(t)
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, func(c *Config) {
		c.PrefetchBudget = 64
		c.Peers = []*viewport.Trace{
			viewport.Synthesize(v, 21, viewport.DefaultSynthesizeOpts()),
			viewport.Synthesize(v, 22, viewport.DefaultSynthesizeOpts()),
			viewport.Synthesize(v, 23, viewport.DefaultSynthesizeOpts()),
		}
	})

	rate := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := viewport.Synthesize(v, uint64(30+i%2), viewport.DefaultSynthesizeOpts())
			_, errs[i] = client.New(ets.URL).Stream(context.Background(), tr, client.StreamConfig{
				MaxRateBps: rate,
				MaxChunks:  2,
				Fetch:      fastPolicy(),
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
}

// TestEdgeRejectsBadConfig: Origin is required; unknown paths 404;
// non-GET 405.
func TestEdgeRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing Origin accepted")
	}
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, nil)

	code, _, _ := get(t, ets.URL+"/nope")
	if code != http.StatusNotFound {
		t.Errorf("unknown path: %d, want 404", code)
	}
	resp, err := http.Post(ets.URL+"/manifest.json", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST: %d, want 405", resp.StatusCode)
	}
}

func BenchmarkEdgeHit(b *testing.B) {
	fixOnce.Do(func() {
		v := scene.Generate(scene.Sports, 7, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 3})
		m, err := provider.Preprocess(v, nil, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		fixMan, fixVid = m, v
	})
	s, err := server.New(fixMan)
	if err != nil {
		b.Fatal(err)
	}
	ots := httptest.NewServer(s.Handler())
	defer ots.Close()
	e, err := New(Config{Origin: ots.URL, CacheBytes: 32 << 20, TTL: time.Hour})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ets := httptest.NewServer(e.Handler())
	defer ets.Close()
	url := ets.URL + "/video/0/0/0.bin"
	if resp, err := http.Get(url); err == nil {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			resp, err := http.Get(url)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	})
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
