package edge

import "sync"

// flightGroup coalesces concurrent calls for the same key into one
// in-flight execution — the stampede protection of the cache tier: when
// N clients miss on the same tile simultaneously, one origin fetch runs
// and the other N−1 wait for its result. A minimal re-implementation of
// the classic singleflight pattern (the x/sync module is not vendored
// here; the stdlib-only rule of this repo applies).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	res *fillResult
}

// Do executes fn under key, returning its result to every concurrent
// caller. leader is true for the caller that actually ran fn — the
// others were coalesced onto its flight.
func (g *flightGroup) Do(key string, fn func() *fillResult) (res *fillResult, leader bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.res, false
	}
	c := &flightCall{}
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.res = fn()
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	c.wg.Done()
	return c.res, true
}
