package edge

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pano/internal/client"
	"pano/internal/fleet"
	"pano/internal/obs"
	"pano/internal/server"
	"pano/internal/viewport"
)

// dumpFleetMetrics logs the fleet/hedge/outage slice of the registry —
// failure diagnostics for the timing-sensitive assertions below.
func dumpFleetMetrics(t *testing.T, reg *obs.Registry) {
	t.Helper()
	var b strings.Builder
	_ = reg.WritePrometheus(&b)
	for _, ln := range strings.Split(b.String(), "\n") {
		if strings.Contains(ln, "fleet") || strings.Contains(ln, "hedge") || strings.Contains(ln, "outage") {
			t.Log(ln)
		}
	}
}

// killSwitch turns an origin into a hard outage (connection aborts on
// every path, health probes included) when tripped.
type killSwitch struct {
	h    http.Handler
	down atomic.Bool
}

func (k *killSwitch) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.down.Load() {
		panic(http.ErrAbortHandler)
	}
	k.h.ServeHTTP(w, r)
}

// newShardFleet spins up n independent origin servers over the shared
// fixture, each behind its own kill switch.
func newShardFleet(t *testing.T, n int) ([]string, []*countingOrigin, []*killSwitch) {
	t.Helper()
	var urls []string
	var origins []*countingOrigin
	var kills []*killSwitch
	for i := 0; i < n; i++ {
		o := newOrigin(t)
		k := &killSwitch{h: o}
		ts := httptest.NewServer(k)
		t.Cleanup(ts.Close)
		urls = append(urls, ts.URL)
		origins = append(origins, o)
		kills = append(kills, k)
	}
	return urls, origins, kills
}

// TestEdgeTotalOutageLadder: with every shard dead, the edge runs the
// full degradation ladder — cached objects serve stale within StaleFor,
// uncached objects get one fleet attempt and then a negative-cached 502
// that stops hammering the dead fleet.
func TestEdgeTotalOutageLadder(t *testing.T) {
	urls, origins, kills := newShardFleet(t, 2)
	_, ets, reg := newEdge(t, urls[0], func(c *Config) {
		c.Origins = urls
		c.TTL = 50 * time.Millisecond
		c.StaleFor = 10 * time.Minute
		c.NegTTL = 10 * time.Minute
		c.Breaker = fleet.BreakerConfig{FailureThreshold: 2, OpenFor: time.Minute}
	})

	_, b1, _ := get(t, ets.URL+"/video/0/1/0.bin")
	for _, k := range kills {
		k.down.Store(true)
	}
	time.Sleep(80 * time.Millisecond) // entry is now stale

	// Rung 1: the stale copy absorbs the outage for cached objects.
	code, b2, h := get(t, ets.URL+"/video/0/1/0.bin")
	if code != http.StatusOK || h.Get("X-Cache") != "stale" {
		t.Fatalf("total outage, cached object: code %d X-Cache %q, want 200/stale", code, h.Get("X-Cache"))
	}
	if string(b1) != string(b2) {
		t.Fatal("stale body differs from original")
	}

	// Rung 2: an uncached object fails over the whole (dead) ring once,
	// answers 502, and the failure is negative-cached.
	code, _, _ = get(t, ets.URL+"/video/0/2/0.bin")
	if code != http.StatusBadGateway {
		t.Fatalf("total outage, uncached object: code %d, want 502", code)
	}
	if got := reg.CounterValue("pano_edge_outage_negatives_total"); got != 1 {
		t.Errorf("outage_negatives = %v, want 1", got)
	}

	// Rung 3: the negative entry replays from cache — zero origin
	// traffic for repeated requests to a dead object.
	before := origins[0].tiles.Load() + origins[1].tiles.Load()
	code, _, h = get(t, ets.URL+"/video/0/2/0.bin")
	if code != http.StatusBadGateway || h.Get("X-Cache") != "hit" {
		t.Errorf("negative-cached outage answer: code %d X-Cache %q, want 502/hit", code, h.Get("X-Cache"))
	}
	if after := origins[0].tiles.Load() + origins[1].tiles.Load(); after != before {
		t.Errorf("cached 502 still produced %d origin requests", after-before)
	}
}

// TestEdgeFleetFailoverZeroAborts: 4 shards, one hard-killed mid-run
// (then recovering); concurrent streaming sessions ride through the
// outage with zero aborts and zero skipped tiles while the breaker
// opens and traffic fails over along the ring. The kill is
// progress-gated (after the origins have served part of the workload)
// rather than wall-clock-gated, so the test holds on any machine speed.
// Run under -race.
func TestEdgeFleetFailoverZeroAborts(t *testing.T) {
	m, v := fixture(t)
	urls, origins, kills := newShardFleet(t, 4)
	e, ets, reg := newEdge(t, urls[0], func(c *Config) {
		c.Origins = urls
		c.ProbeInterval = 100 * time.Millisecond
		c.Breaker = fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 300 * time.Millisecond}
		// Hedging stays enabled but with a fixed delay far above local
		// fetch latency: connection aborts from the dead shard fail over
		// sequentially without hedges draining the failover budget.
		c.Fetch.HedgeDelay = 150 * time.Millisecond
	})

	rate := 0.35 * m.ChunkBits(0, 0) / m.ChunkSec
	var wg sync.WaitGroup
	errs := make([]error, 3)
	skipped := make([]int, len(errs))
	sawOpen := make(chan struct{})
	done := make(chan struct{})
	defer close(done)
	totalTiles := func() int64 {
		var n int64
		for _, o := range origins {
			n += o.tiles.Load()
		}
		return n
	}
	stopping := func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
	go func() {
		// Kill shard 0 once the fleet has demonstrably served part of the
		// run (the full run takes ~90 origin fills), wait for a breaker to
		// notice — in-band failures or, if the sessions already drained,
		// the active probes — then restore the shard so probes close the
		// breaker again.
		for totalTiles() < 20 && !stopping() {
			time.Sleep(time.Millisecond)
		}
		kills[0].down.Store(true)
		for !stopping() {
			open := false
			for _, st := range e.Fleet().Snapshot() {
				if st.Breaker != fleet.Closed {
					open = true
				}
			}
			if open {
				close(sawOpen)
				kills[0].down.Store(false)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := viewport.Synthesize(v, uint64(40+i), viewport.DefaultSynthesizeOpts())
			res, err := client.New(ets.URL).Stream(context.Background(), tr, client.StreamConfig{
				MaxRateBps: rate,
				Fetch:      fastPolicy(),
			})
			errs[i] = err
			if err == nil {
				skipped[i] = res.SkippedTiles
				if len(res.Chunks) != m.NumChunks() {
					errs[i] = fmt.Errorf("streamed %d chunks, want %d", len(res.Chunks), m.NumChunks())
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d aborted: %v", i, err)
		}
		if skipped[i] > 0 {
			t.Errorf("session %d skipped %d tiles during failover", i, skipped[i])
		}
	}
	select {
	case <-sawOpen:
	case <-time.After(5 * time.Second):
		t.Error("shard 0's breaker never left closed during its outage")
	}
	if got := reg.CounterValue("pano_fleet_failovers_total"); got == 0 {
		t.Error("no fleet failovers recorded with a dead shard")
		dumpFleetMetrics(t, reg)
	}
	// Every live shard carried traffic: the ring redistributes the dead
	// shard's keys instead of dogpiling one successor.
	for i := 1; i < 4; i++ {
		if got := reg.CounterValue("pano_fleet_requests_total", obs.L("origin", fmt.Sprintf("%d", i))); got == 0 {
			t.Errorf("origin %d saw no requests", i)
		}
	}
	// Recovery: once the down window passes, probes close the breaker.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if e.Fleet().Snapshot()[0].Breaker == fleet.Closed {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Errorf("shard 0's breaker never closed after recovery: %+v", e.Fleet().Snapshot())
}

// TestCancelledFillDoesNotPoisonCache: the singleflight leader's client
// going away mid-fill is routine in tile streaming (abandoned
// prefetches, seeks), not an origin-outage signal — it must not
// negative-cache a 502 that every later client would then be served for
// NegTTL.
func TestCancelledFillDoesNotPoisonCache(t *testing.T) {
	m, _ := fixture(t)
	srv, err := server.New(m)
	if err != nil {
		t.Fatal(err)
	}
	// While hold is set, the origin pins the in-flight request until the
	// edge aborts it — guaranteeing the fill observes the cancellation
	// rather than racing it against a successful response.
	var hold atomic.Bool
	arrived := make(chan struct{}, 1)
	ots := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hold.Load() {
			select {
			case arrived <- struct{}{}:
			default:
			}
			<-r.Context().Done()
			panic(http.ErrAbortHandler)
		}
		srv.Handler().ServeHTTP(w, r)
	}))
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, nil)
	const path = "/video/0/1/0.bin"
	hold.Store(true)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ets.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	<-arrived // the fill is in flight at the origin...
	cancel()  // ...and its only client disconnects
	if err := <-done; err == nil {
		t.Fatal("cancelled request unexpectedly completed")
	}
	// The leader's handler answers 502 only after the negative-cache
	// decision has been made; wait for it so the assertion below can't
	// run before the fill settles.
	deadline := time.Now().Add(5 * time.Second)
	for reg.CounterValue("pano_edge_requests_total",
		obs.L("endpoint", "tile"), obs.L("code", "502")) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	hold.Store(false) // the origin was healthy all along

	// The next client must get the real object — if the cancelled fill
	// negative-cached, the 502 would stick for the full NegTTL (1m).
	code, _, _ := get(t, ets.URL+path)
	if code != http.StatusOK {
		t.Fatalf("path answers %d after a cancelled fill: cache poisoned", code)
	}
	if got := reg.CounterValue("pano_edge_outage_negatives_total"); got != 0 {
		t.Errorf("outage_negatives = %v, want 0 for a client-cancelled fill", got)
	}
}
