package edge

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Entry is one cached origin response. Entries are immutable after
// insertion (the body slice is shared by every reader) except for their
// expiry, which Refresh advances under the cache lock after a 304
// revalidation.
type Entry struct {
	// Key is the request path ("/video/3/7/1.bin", "/manifest.json").
	Key string
	// Status is the origin status this entry replays: 200 for positive
	// entries, 404 (or any other definitive non-5xx answer) for negative
	// ones.
	Status int
	// Body is the exact origin body; nil only for bodyless answers.
	Body []byte
	// ETag is the origin's validator, sent back as If-None-Match when
	// the entry turns stale.
	ETag string
	// ContentType echoes the origin header.
	ContentType string
	// expiresNs is the freshness horizon and fetchedNs the last
	// fill/revalidation instant, both unix nanos. Atomic because Refresh
	// advances them while concurrent readers serve the entry.
	expiresNs atomic.Int64
	fetchedNs atomic.Int64
}

func (e *Entry) setTimes(now time.Time, ttl time.Duration) {
	e.fetchedNs.Store(now.UnixNano())
	e.expiresNs.Store(now.Add(ttl).UnixNano())
}

func (e *Entry) expires() time.Time { return time.Unix(0, e.expiresNs.Load()) }

// Age returns how long ago the entry was filled or last revalidated.
func (e *Entry) Age(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, e.fetchedNs.Load()))
}

// State classifies a cache lookup.
type State int

const (
	// Miss: no usable entry (never cached, evicted, or beyond the
	// serve-stale retention window).
	Miss State = iota
	// Fresh: within TTL; serve without touching the origin.
	Fresh
	// Stale: past TTL but within the retention window; revalidate
	// against the origin, or serve as-is if the origin is faulty.
	Stale
)

func (s State) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	default:
		return "miss"
	}
}

// Cache is a byte-budgeted, concurrency-safe LRU over origin responses.
// Accounting charges body bytes plus a fixed per-entry overhead so a
// flood of tiny negative entries cannot evade the budget. Entries past
// expiry are retained (and reported Stale) for staleFor, then dropped.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	staleFor time.Duration
	used     int64
	ll       *list.List // front = most recently used; values are *Entry
	byKey    map[string]*list.Element
	// evictions counts budget-pressure removals (not TTL drops).
	evictions uint64
}

// entryOverhead approximates the per-entry bookkeeping cost charged
// against the byte budget on top of the body.
const entryOverhead = 256

// NewCache returns a cache holding at most maxBytes of accounted data.
// staleFor is the post-expiry retention window during which entries are
// still usable for revalidation and serve-stale (0 disables retention:
// expired entries read as misses).
func NewCache(maxBytes int64, staleFor time.Duration) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		staleFor: staleFor,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
	}
}

func (c *Cache) cost(e *Entry) int64 { return int64(len(e.Body)) + entryOverhead }

// Get returns the entry for key and its freshness at time now, touching
// it as most-recently-used. Entries beyond the stale retention window
// are removed and reported as a Miss.
func (c *Cache) Get(key string, now time.Time) (*Entry, State) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, Miss
	}
	e := el.Value.(*Entry)
	exp := e.expires()
	if now.After(exp.Add(c.staleFor)) {
		c.removeLocked(el)
		return nil, Miss
	}
	c.ll.MoveToFront(el)
	if now.After(exp) {
		return e, Stale
	}
	return e, Fresh
}

// Put inserts (or replaces) an entry whose freshness runs until
// now+ttl, evicting least-recently-used entries until the budget holds.
// Entries larger than the whole budget are not cached. It returns how
// many entries were evicted by the insert.
func (c *Cache) Put(e *Entry, now time.Time, ttl time.Duration) int {
	e.setTimes(now, ttl)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cost(e) > c.maxBytes {
		return 0
	}
	if el, ok := c.byKey[e.Key]; ok {
		c.removeLocked(el)
	}
	c.byKey[e.Key] = c.ll.PushFront(e)
	c.used += c.cost(e)
	evicted := 0
	for c.used > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
		evicted++
	}
	return evicted
}

// Refresh extends key's freshness to now+ttl after a successful 304
// revalidation and reports whether the entry was still present.
func (c *Cache) Refresh(key string, now time.Time, ttl time.Duration) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return false
	}
	e := el.Value.(*Entry)
	e.setTimes(now, ttl)
	c.ll.MoveToFront(el)
	return true
}

// Remove drops key if present.
func (c *Cache) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.removeLocked(el)
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*Entry)
	c.ll.Remove(el)
	delete(c.byKey, e.Key)
	c.used -= c.cost(e)
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the accounted size of the cache.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Evictions returns how many entries budget pressure has removed.
func (c *Cache) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}
