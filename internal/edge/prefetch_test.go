package edge

import (
	"net/http/httptest"
	"testing"
	"time"

	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/server"
	"pano/internal/viewport"
)

// waitFor polls cond — prefetch runs behind the demand response, so
// warm-state assertions are eventually consistent.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func testPeers(t *testing.T, n int) []*viewport.Trace {
	t.Helper()
	_, v := fixture(t)
	peers := make([]*viewport.Trace, n)
	for i := range peers {
		peers[i] = viewport.Synthesize(v, uint64(40+i), viewport.DefaultSynthesizeOpts())
	}
	return peers
}

// TestPredictTiles: the consensus warm set is non-empty, deterministic,
// and every member really clears the visibility threshold at the
// peers' consensus viewpoint.
func TestPredictTiles(t *testing.T) {
	m, _ := fixture(t)
	peers := testPeers(t, 3)
	tiles := PredictTiles(m, peers, 1)
	if len(tiles) == 0 {
		t.Fatal("consensus prediction selected no tiles")
	}
	if len(tiles) == len(m.Chunks[1].Tiles) {
		t.Error("consensus prediction selected every tile — threshold not discriminating")
	}
	again := PredictTiles(m, peers, 1)
	if len(again) != len(tiles) {
		t.Fatal("prediction not deterministic")
	}
	seen := make(map[int]bool, len(tiles))
	for _, ti := range tiles {
		seen[ti] = true
	}
	// Recompute visibility independently and cross-check membership.
	tmid := 1.5 * m.ChunkSec
	pts := make([]geom.Angle, len(peers))
	for i, tr := range peers {
		pts[i] = tr.At(tmid)
	}
	center := geom.Centroid(pts)
	for ti := range m.Chunks[1].Tiles {
		vis := player.Visibility(m, &m.Chunks[1].Tiles[ti], center, 15, 0)
		if (vis >= prefetchVisibility) != seen[ti] {
			t.Errorf("tile %d: visibility %.3f, in warm set: %v", ti, vis, seen[ti])
		}
	}
	if PredictTiles(m, nil, 1) != nil {
		t.Error("no peers must predict nothing")
	}
	if PredictTiles(m, peers, m.NumChunks()) != nil {
		t.Error("out-of-range chunk must predict nothing")
	}
}

// TestTileAtCenter: the popularity fallback's position mapping finds,
// for every tile of chunk 0, the chunk-1 tile covering its center.
func TestTileAtCenter(t *testing.T) {
	m, _ := fixture(t)
	for ti := range m.Chunks[0].Tiles {
		nti, ok := tileAtCenter(m, 1, 0, ti)
		if !ok {
			t.Fatalf("tile %d: no chunk-1 tile covers its center", ti)
		}
		r := m.Chunks[0].Tiles[ti].Rect
		nr := m.Chunks[1].Tiles[nti].Rect
		cx, cy := (r.X0+r.X1)/2, (r.Y0+r.Y1)/2
		if cx < nr.X0 || cx >= nr.X1 || cy < nr.Y0 || cy >= nr.Y1 {
			t.Errorf("tile %d mapped to %d, whose rect misses the center", ti, nti)
		}
	}
	if _, ok := tileAtCenter(m, m.NumChunks(), 0, 0); ok {
		t.Error("out-of-range next chunk accepted")
	}
	if _, ok := tileAtCenter(m, 1, 0, len(m.Chunks[0].Tiles)); ok {
		t.Error("out-of-range tile index accepted")
	}
}

// TestPrefetchConsensusWarm: with peer traces, one demand request for a
// chunk-0 tile warms exactly the consensus tiles of chunk 1, at the
// demanded level, each with its own origin fetch.
func TestPrefetchConsensusWarm(t *testing.T) {
	m, _ := fixture(t)
	peers := testPeers(t, 3)
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, ets, reg := newEdge(t, ots.URL, func(c *Config) {
		c.PrefetchBudget = 64
		c.Peers = peers
	})

	get(t, ets.URL+"/manifest.json")
	if e.Manifest() == nil {
		t.Fatal("edge did not learn the manifest from its own traffic")
	}
	get(t, ets.URL+"/video/0/0/1.bin")

	predicted := PredictTiles(m, peers, 1)
	for _, ti := range predicted {
		path := server.TilePath(1, ti, codec.Level(1))
		waitFor(t, "warm "+path, func() bool {
			_, st := e.cache.Get(path, time.Now())
			return st == Fresh
		})
	}
	e.DrainPrefetch()
	if got, want := origin.tiles.Load(), int64(1+len(predicted)); got != want {
		t.Errorf("origin tile fetches %d, want %d (1 demand + %d warms)", got, want, len(predicted))
	}
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")); got != float64(len(predicted)) {
		t.Errorf("warmed counter %v, want %d", got, len(predicted))
	}
	// A demand fetch for a warmed tile is now a pure hit.
	_, _, h := get(t, ets.URL+server.TilePath(1, predicted[0], codec.Level(1)))
	if h.Get("X-Cache") != "hit" {
		t.Errorf("warmed tile served with X-Cache %q, want hit", h.Get("X-Cache"))
	}
}

// TestPrefetchPopularityFallback: without peers, demand for a tile
// warms the tile covering the same panorama position one chunk later.
func TestPrefetchPopularityFallback(t *testing.T) {
	m, _ := fixture(t)
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, ets, reg := newEdge(t, ots.URL, func(c *Config) { c.PrefetchBudget = 8 })

	get(t, ets.URL+"/manifest.json")
	get(t, ets.URL+"/video/0/0/0.bin")

	nti, ok := tileAtCenter(m, 1, 0, 0)
	if !ok {
		t.Fatal("fixture has no position-stable successor tile")
	}
	path := server.TilePath(1, nti, codec.Level(0))
	waitFor(t, "warm "+path, func() bool {
		_, st := e.cache.Get(path, time.Now())
		return st == Fresh
	})
	e.DrainPrefetch()
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")); got < 1 {
		t.Errorf("warmed counter %v, want >= 1", got)
	}
}

// TestPrefetchTokenBudget: a budget of 1 lets exactly one warm through;
// the rest of the consensus set is throttled, so prefetch can never
// outrun demand.
func TestPrefetchTokenBudget(t *testing.T) {
	m, _ := fixture(t)
	peers := testPeers(t, 3)
	predicted := PredictTiles(m, peers, 1)
	if len(predicted) < 2 {
		t.Skipf("fixture consensus set too small (%d tiles) to exercise throttling", len(predicted))
	}
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, reg := newEdge(t, ots.URL, func(c *Config) {
		c.PrefetchBudget = 1
		c.Peers = peers
	})

	get(t, ets.URL+"/manifest.json")
	get(t, ets.URL+"/video/0/0/0.bin")

	waitFor(t, "token accounting", func() bool {
		warmed := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed"))
		throttled := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "throttled"))
		return warmed+throttled >= float64(len(predicted))
	})
	warmed := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed"))
	throttled := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "throttled"))
	if warmed != 1 {
		t.Errorf("warmed %v tiles on a 1-token budget, want exactly 1", warmed)
	}
	if throttled != float64(len(predicted)-1) {
		t.Errorf("throttled %v, want %d", throttled, len(predicted)-1)
	}
}

// TestPrefetchNeedsManifest: before a manifest has passed through, tile
// demand triggers no prefetch at all.
func TestPrefetchNeedsManifest(t *testing.T) {
	origin := newOrigin(t)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, ets, reg := newEdge(t, ots.URL, func(c *Config) { c.PrefetchBudget = 8 })

	get(t, ets.URL+"/video/0/0/0.bin")
	time.Sleep(50 * time.Millisecond)
	e.DrainPrefetch()
	if got := origin.tiles.Load(); got != 1 {
		t.Errorf("origin saw %d tile fetches before any manifest, want just the demand one", got)
	}
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")); got != 0 {
		t.Errorf("warmed %v tiles without tile geometry", got)
	}
	if e.Manifest() != nil {
		t.Error("manifest learned from tile traffic?")
	}
}
