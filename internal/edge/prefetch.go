package edge

import (
	"context"
	"sync"
	"time"

	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/player"
	"pano/internal/server"
	"pano/internal/trace"
	"pano/internal/viewport"
)

// prefetchVisibility is the minimum predicted-viewport coverage a tile
// needs before it is worth a prefetch token (player.Visibility units:
// fraction of the tile inside the padded viewport footprint).
const prefetchVisibility = 0.2

// prefetcher warms likely next-chunk tiles. When a demand request for a
// tile of chunk k arrives, it predicts which tiles of chunk k+1 the
// session population will want:
//
//   - with peer traces, the cross-user consensus viewpoint (spherical
//     centroid of the peers at the next chunk's media time — the
//     CLS/CUB360-style prior of internal/viewport) selects the tiles
//     under the predicted viewport;
//   - without peers, the edge mirrors its own observed cross-user
//     demand: a tile watched now maps to the tile covering the same
//     panorama position one chunk later (Pano's variable tiling means
//     indices do not line up across chunks, positions do).
//
// Warming is bounded by a token bucket: each prefetched tile costs one
// token and each demand request refills one, so prefetch throughput can
// never exceed demand throughput and the origin never sees a prefetch
// stampede.
type prefetcher struct {
	e     *Edge
	peers []*viewport.Trace

	mu      sync.Mutex
	tokens  float64
	budget  float64
	demand  map[int]*chunkDemand // per-chunk observed demand
	planned map[int]map[int]bool // next-chunk tiles already enqueued
	closed  bool

	jobs     chan prefetchJob
	jobWG    sync.WaitGroup // outstanding jobs, for drain
	planWG   sync.WaitGroup // in-flight consensus planning goroutines
	workerWG sync.WaitGroup
}

type chunkDemand struct {
	levels    [codec.NumLevels]int
	consensus bool // consensus prefetch for k+1 already planned
}

type prefetchJob struct {
	k, ti int
	l     codec.Level
}

func newPrefetcher(e *Edge, cfg Config) *prefetcher {
	p := &prefetcher{
		e:       e,
		peers:   cfg.Peers,
		tokens:  float64(cfg.PrefetchBudget),
		budget:  float64(cfg.PrefetchBudget),
		demand:  make(map[int]*chunkDemand),
		planned: make(map[int]map[int]bool),
		jobs:    make(chan prefetchJob, 4*cfg.PrefetchBudget),
	}
	for i := 0; i < cfg.PrefetchWorkers; i++ {
		p.workerWG.Add(1)
		go p.worker()
	}
	return p
}

func (p *prefetcher) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.jobs)
	p.mu.Unlock()
	p.planWG.Wait()
	p.workerWG.Wait()
}

func (p *prefetcher) drain() {
	p.planWG.Wait()
	p.jobWG.Wait()
}

// observe is called for every demand tile request the edge serves.
func (p *prefetcher) observe(path string) {
	k, ti, l, err := server.ParseTilePath(path)
	if err != nil {
		return
	}
	m := p.e.man.Load()
	if m == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	// Demand refills the bucket: prefetch rate is capped by demand rate.
	if p.tokens < p.budget {
		p.tokens++
	}
	d := p.demand[k]
	if d == nil {
		d = &chunkDemand{}
		p.demand[k] = d
	}
	if l >= 0 && int(l) < codec.NumLevels {
		d.levels[l]++
	}
	next := k + 1
	if next >= m.NumChunks() {
		// Never warm past the learned manifest's last chunk. For a live
		// manifest that boundary is the moving edge: k+1 is simply not
		// published yet, and prefetching it would 404 at the origin and
		// poison the cache with a negative entry for NegTTL.
		if m.Live {
			p.e.prefetchCount("live_edge")
		}
		return
	}
	if next < m.FirstChunk {
		// Below the availability window: the origin would answer 410.
		return
	}
	lv := d.majorityLevel(l)
	if len(p.peers) > 0 {
		if !d.consensus {
			d.consensus = true
			// The visibility sweep is milliseconds of math; off the lock
			// and off the demand-response path (the lock would convoy
			// every in-flight tile request behind it).
			p.planWG.Add(1)
			go p.planConsensus(m, next, lv)
		}
		return
	}
	// Popularity fallback: warm the tile covering this tile's center one
	// chunk later.
	if nti, ok := tileAtCenter(m, next, k, ti); ok {
		p.enqueueLocked(next, nti, lv)
	}
}

// planConsensus computes the cross-user warm set for chunk k and
// enqueues it.
func (p *prefetcher) planConsensus(m *manifest.Video, k int, lv codec.Level) {
	defer p.planWG.Done()
	tiles := PredictTiles(m, p.peers, k)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	for _, ti := range tiles {
		p.enqueueLocked(k, ti, lv)
	}
}

// majorityLevel picks the most-demanded level of the chunk (ties to the
// higher-quality level), defaulting to the current request's level.
func (d *chunkDemand) majorityLevel(fallback codec.Level) codec.Level {
	best, n := fallback, 0
	for l, c := range d.levels {
		if c > n {
			best, n = codec.Level(l), c
		}
	}
	return best
}

// tileAtCenter maps tile ti of chunk k to the tile of chunk next whose
// rect contains ti's center — position-stable across Pano's per-chunk
// variable tilings.
func tileAtCenter(m *manifest.Video, next, k, ti int) (int, bool) {
	if k < 0 || k >= m.NumChunks() || next < 0 || next >= m.NumChunks() {
		return 0, false
	}
	tiles := m.Chunks[k].Tiles
	if ti < 0 || ti >= len(tiles) {
		return 0, false
	}
	r := tiles[ti].Rect
	cx, cy := (r.X0+r.X1)/2, (r.Y0+r.Y1)/2
	for nti, nt := range m.Chunks[next].Tiles {
		nr := nt.Rect
		if cx >= nr.X0 && cx < nr.X1 && cy >= nr.Y0 && cy < nr.Y1 {
			return nti, true
		}
	}
	return 0, false
}

// PredictTiles returns the tiles of chunk k under the peers' consensus
// viewpoint at that chunk's media midpoint — the cross-user prediction
// the prefetcher warms. Exported so tests and benchmarks can compute
// the expected warm set independently.
func PredictTiles(m *manifest.Video, peers []*viewport.Trace, k int) []int {
	if len(peers) == 0 || k < 0 || k >= m.NumChunks() {
		return nil
	}
	t := (float64(k) + 0.5) * m.ChunkSec
	pts := make([]geom.Angle, len(peers))
	for i, tr := range peers {
		pts[i] = tr.At(t)
	}
	center := geom.Centroid(pts)
	var out []int
	for ti := range m.Chunks[k].Tiles {
		if player.Visibility(m, &m.Chunks[k].Tiles[ti], center, 15, 0) >= prefetchVisibility {
			out = append(out, ti)
		}
	}
	return out
}

// enqueueLocked spends a token to schedule one warm fill (p.mu held).
func (p *prefetcher) enqueueLocked(k, ti int, l codec.Level) {
	set := p.planned[k]
	if set == nil {
		set = make(map[int]bool)
		p.planned[k] = set
	}
	if set[ti] {
		return
	}
	if p.tokens < 1 {
		p.e.prefetchCount("throttled")
		return
	}
	select {
	case p.jobs <- prefetchJob{k: k, ti: ti, l: l}:
		p.tokens--
		set[ti] = true
		p.jobWG.Add(1)
	default:
		p.e.prefetchCount("queue_full")
	}
}

func (p *prefetcher) worker() {
	defer p.workerWG.Done()
	for job := range p.jobs {
		p.run(job)
		p.jobWG.Done()
	}
}

// run executes one warm fill through the same cache + singleflight path
// demand fetches use, so a concurrent demand miss coalesces with it.
func (p *prefetcher) run(job prefetchJob) {
	e := p.e
	path := server.TilePath(job.k, job.ti, job.l)
	ctx, sp := e.tracer.Start(context.Background(), "edge.prefetch",
		trace.A("component", "edge"), trace.A("path", path),
		trace.A("chunk", job.k), trace.A("tile", job.ti))
	defer sp.End()
	now := time.Now()
	ent, state := e.cache.Get(path, now)
	if state == Fresh {
		sp.Annotate("outcome", "already_cached")
		e.prefetchCount("dup")
		return
	}
	fr, _ := e.fill(ctx, path, "prefetch", ent, state)
	switch {
	case fr.err != nil:
		sp.SetError("origin")
		e.prefetchCount("error")
	default:
		sp.Annotate("outcome", "warmed")
		sp.Annotate("bytes", len(fr.entry.Body))
		e.prefetchCount("warmed")
		e.log.Logger().Debug("edge_prefetch",
			"chunk", job.k, "tile", job.ti, "level", int(job.l), "bytes", len(fr.entry.Body))
	}
}

func (e *Edge) prefetchCount(result string) {
	e.reg.Counter("pano_edge_prefetch_total",
		"prediction-driven prefetch outcomes (warmed, dup, throttled, queue_full, error)",
		obs.L("result", result)).Inc()
}
