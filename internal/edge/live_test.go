package edge

import (
	"bytes"
	"net/http/httptest"
	"testing"
	"time"

	"pano/internal/manifest"
	"pano/internal/obs"
	"pano/internal/server"
)

// liveFixture returns the fixture manifest truncated to n chunks and
// marked live.
func liveFixture(t *testing.T, n int, seq int64) *manifest.Video {
	t.Helper()
	m, _ := fixture(t)
	c := *m
	c.Chunks = m.Chunks[:n]
	c.Live = true
	c.Seq = seq
	return &c
}

func newLiveOrigin(t *testing.T, m *manifest.Video) *countingOrigin {
	t.Helper()
	s, err := server.New(m)
	if err != nil {
		t.Fatal(err)
	}
	return &countingOrigin{h: s.Handler()}
}

// TestPrefetchStopsAtLiveEdge: demand for a tile of the newest published
// chunk must NOT warm k+1 — it does not exist yet, and prefetching it
// would negative-cache a 404 for NegTTL right where the session is about
// to play. The refusal is observable as the live_edge counter.
func TestPrefetchStopsAtLiveEdge(t *testing.T) {
	lm := liveFixture(t, 2, 1)
	origin := newLiveOrigin(t, lm)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, ets, reg := newEdge(t, ots.URL, func(c *Config) { c.PrefetchBudget = 8 })

	get(t, ets.URL+"/manifest.json")
	if e.Manifest() == nil || !e.Manifest().Live {
		t.Fatal("edge did not learn the live manifest")
	}
	// Demand at the edge (last published chunk).
	get(t, ets.URL+server.TilePath(lm.NumChunks()-1, 0, 0))
	time.Sleep(20 * time.Millisecond)
	e.DrainPrefetch()
	if got := origin.tiles.Load(); got != 1 {
		t.Errorf("origin saw %d tile fetches, want just the demand one", got)
	}
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "live_edge")); got != 1 {
		t.Errorf("live_edge counter %v, want 1", got)
	}
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")); got != 0 {
		t.Errorf("warmed %v tiles past the live edge", got)
	}
	// One chunk back from the edge prefetch works normally again (level 1
	// so the warm target cannot collide with the edge demand fetch above).
	get(t, ets.URL+server.TilePath(0, 0, 1))
	waitFor(t, "behind-edge warm", func() bool {
		return reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")) >= 1
	})
}

// TestPrefetchSkipsRetiredWindow: demand for a retired chunk never warms
// its (equally retired) successor.
func TestPrefetchSkipsRetiredWindow(t *testing.T) {
	lm := liveFixture(t, 3, 2)
	lm.FirstChunk = 2
	origin := newLiveOrigin(t, lm)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, ets, reg := newEdge(t, ots.URL, func(c *Config) { c.PrefetchBudget = 8 })

	get(t, ets.URL+"/manifest.json")
	get(t, ets.URL+server.TilePath(0, 0, 0)) // k+1 = 1 < FirstChunk = 2
	time.Sleep(20 * time.Millisecond)
	e.DrainPrefetch()
	if got := reg.CounterValue("pano_edge_prefetch_total", obs.L("result", "warmed")); got != 0 {
		t.Errorf("warmed %v tiles below the availability window", got)
	}
}

// TestLiveManifestTTLClamped: a live manifest expires from the edge
// cache within half a chunk, so the next client poll reaches the origin
// and sees the moved edge; tiles keep the full TTL.
func TestLiveManifestTTLClamped(t *testing.T) {
	lm := liveFixture(t, 2, 1)
	origin := newLiveOrigin(t, lm)
	ots := httptest.NewServer(origin)
	defer ots.Close()
	_, ets, _ := newEdge(t, ots.URL, nil)

	get(t, ets.URL+"/manifest.json")
	_, _, h := get(t, ets.URL+"/manifest.json")
	if h.Get("X-Cache") != "hit" {
		t.Fatalf("immediate refetch X-Cache %q, want hit", h.Get("X-Cache"))
	}
	if got := origin.manifests.Load(); got != 1 {
		t.Fatalf("origin manifest fetches %d, want 1", got)
	}
	// ChunkSec 1s → live TTL 500ms. Past it, the edge revalidates.
	time.Sleep(600 * time.Millisecond)
	get(t, ets.URL+"/manifest.json")
	if got := origin.manifests.Load(); got != 2 {
		t.Errorf("origin manifest fetches %d after live TTL, want 2", got)
	}
}

// TestLearnManifestMonotonic: the edge never adopts a manifest whose
// edge or sequence went backwards (racing fills through two origins).
func TestLearnManifestMonotonic(t *testing.T) {
	origin := newLiveOrigin(t, liveFixture(t, 1, 1))
	ots := httptest.NewServer(origin)
	defer ots.Close()
	e, _, _ := newEdge(t, ots.URL, nil)

	newer := liveFixture(t, 3, 3)
	older := liveFixture(t, 2, 2)
	enc := func(m *manifest.Video) []byte {
		var buf bytes.Buffer
		if err := m.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if got := e.learnManifest(enc(newer)); got == nil {
		t.Fatal("fresh manifest rejected")
	}
	if got := e.learnManifest(enc(older)); got != nil {
		t.Fatal("stale manifest adopted")
	}
	if m := e.Manifest(); m.NumChunks() != 3 || m.Seq != 3 {
		t.Fatalf("edge regressed to %d chunks seq %d", m.NumChunks(), m.Seq)
	}
}
