// Package edge implements a caching reverse proxy that sits between
// Pano clients and the origin tile server — the cache tier the paper's
// deployment story (§7) is designed for: because Pano's manifest and
// per-tile media objects are ordinary HTTP objects addressed by
// (chunk, tile, level), any DASH-compatible cache can hold them, and a
// session population watching the same video requests heavily
// overlapping tile sets (cross-user viewpoint similarity, §5 and the
// CLS/CUB360 line of work the paper cites).
//
// The tier is built from four pieces:
//
//   - a byte-budgeted, concurrency-safe LRU cache with per-entry TTL
//     and negative-result caching (Cache);
//   - singleflight request coalescing, so N concurrent misses for the
//     same object produce exactly one origin fetch (stampede
//     protection);
//   - conditional revalidation against the origin via ETag /
//     If-None-Match with a 304 fast path, degrading to serve-stale
//     within a bounded window when the origin is faulty;
//   - a prefetcher that uses internal/viewport cross-user prediction
//     (peer-trace consensus, falling back to the edge's own observed
//     cross-user demand) to warm likely next-chunk tiles, bounded by a
//     token budget so prefetch never starves demand fetches.
//
// Origin fetches reuse the client's FetchPolicy retry ladder, so a
// chaos-wrapped origin degrades the same way it does for a direct
// client. Everything is observable: pano_edge_* metrics, edge.lookup /
// edge.fill / edge.prefetch spans stitched into the requesting client's
// trace, and structured events. cmd/pano-edge is the runnable binary;
// the "edge" experiment measures origin offload and latency against
// direct-to-origin streaming.
package edge
