package edge

import (
	"fmt"
	"testing"
	"time"
)

func ent(key string, n int) *Entry {
	return &Entry{Key: key, Status: 200, Body: make([]byte, n), ETag: `"` + key + `"`}
}

// TestCacheLRUEviction: inserts beyond the byte budget evict the least
// recently used entries, and a Get refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	// Budget for ~3 entries of 1 KiB + overhead.
	c := NewCache(3*(1024+entryOverhead), time.Minute)
	now := time.Now()
	for i := 0; i < 3; i++ {
		c.Put(ent(fmt.Sprintf("k%d", i), 1024), now, time.Minute)
	}
	if c.Len() != 3 {
		t.Fatalf("len %d, want 3", c.Len())
	}
	// Touch k0 so k1 is the LRU victim.
	if _, st := c.Get("k0", now); st != Fresh {
		t.Fatalf("k0 state %v", st)
	}
	if n := c.Put(ent("k3", 1024), now, time.Minute); n != 1 {
		t.Fatalf("evicted %d entries, want 1", n)
	}
	if _, st := c.Get("k1", now); st != Miss {
		t.Error("k1 should have been the LRU victim")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, st := c.Get(k, now); st != Fresh {
			t.Errorf("%s evicted unexpectedly (state %v)", k, st)
		}
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions %d, want 1", c.Evictions())
	}
	if c.Bytes() > 3*(1024+entryOverhead) {
		t.Errorf("cache over budget: %d bytes", c.Bytes())
	}
}

// TestCacheByteBudgetPressure: a large insert may evict several small
// entries, and an entry bigger than the whole budget is not cached.
func TestCacheByteBudgetPressure(t *testing.T) {
	c := NewCache(8<<10, time.Minute)
	now := time.Now()
	for i := 0; i < 8; i++ {
		c.Put(ent(fmt.Sprintf("s%d", i), 512), now, time.Minute)
	}
	before := c.Len()
	c.Put(ent("big", 6<<10), now, time.Minute)
	if c.Bytes() > 8<<10 {
		t.Errorf("over budget after large insert: %d", c.Bytes())
	}
	if c.Len() >= before+1 {
		t.Errorf("large insert evicted nothing (len %d -> %d)", before, c.Len())
	}
	c.Put(ent("huge", 16<<10), now, time.Minute)
	if _, st := c.Get("huge", now); st != Miss {
		t.Error("entry larger than the budget must not be cached")
	}
}

// TestCacheTTLExpiry: entries go fresh → stale → gone as time passes.
func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(1<<20, 500*time.Millisecond) // staleFor
	t0 := time.Now()
	c.Put(ent("k", 64), t0, 100*time.Millisecond)

	if _, st := c.Get("k", t0.Add(50*time.Millisecond)); st != Fresh {
		t.Fatalf("within TTL: state %v, want Fresh", st)
	}
	e, st := c.Get("k", t0.Add(200*time.Millisecond))
	if st != Stale || e == nil {
		t.Fatalf("past TTL within staleFor: state %v, want Stale", st)
	}
	if _, st := c.Get("k", t0.Add(time.Second)); st != Miss {
		t.Fatalf("past staleFor: state %v, want Miss", st)
	}
	if c.Len() != 0 {
		t.Error("fully expired entry should be dropped on Get")
	}
}

// TestCacheRefresh: a 304 revalidation extends freshness without
// reinserting the body.
func TestCacheRefresh(t *testing.T) {
	c := NewCache(1<<20, time.Minute)
	t0 := time.Now()
	c.Put(ent("k", 64), t0, 100*time.Millisecond)
	t1 := t0.Add(200 * time.Millisecond)
	if _, st := c.Get("k", t1); st != Stale {
		t.Fatalf("state %v, want Stale", st)
	}
	if !c.Refresh("k", t1, time.Minute) {
		t.Fatal("Refresh lost the entry")
	}
	if _, st := c.Get("k", t1.Add(30*time.Second)); st != Fresh {
		t.Errorf("after refresh: state %v, want Fresh", st)
	}
	if c.Refresh("gone", t1, time.Minute) {
		t.Error("Refresh of a missing key reported true")
	}
}

// TestCacheNegativeEntry: non-200 entries cache like any other (the
// proxy gives them a shorter TTL).
func TestCacheNegativeEntry(t *testing.T) {
	c := NewCache(1<<20, time.Minute)
	now := time.Now()
	neg := &Entry{Key: "/video/999/0/0.bin", Status: 404, Body: []byte("404 page not found\n")}
	c.Put(neg, now, 5*time.Second)
	e, st := c.Get(neg.Key, now.Add(time.Second))
	if st != Fresh || e.Status != 404 {
		t.Fatalf("negative entry: state %v status %d", st, e.Status)
	}
}

// TestCacheReplace: re-putting a key replaces the old body in the
// accounting.
func TestCacheReplace(t *testing.T) {
	c := NewCache(1<<20, time.Minute)
	now := time.Now()
	c.Put(ent("k", 1000), now, time.Minute)
	c.Put(ent("k", 10), now, time.Minute)
	if c.Len() != 1 {
		t.Fatalf("len %d, want 1", c.Len())
	}
	if got := c.Bytes(); got != 10+entryOverhead {
		t.Errorf("bytes %d, want %d", got, 10+entryOverhead)
	}
}
