package edge

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"pano/internal/client"
	"pano/internal/fleet"
	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/telemetry"
	"pano/internal/trace"
	"pano/internal/viewport"
)

// Config tunes an Edge.
type Config struct {
	// Origin is the origin server's base URL, e.g. "http://origin:8360".
	Origin string
	// Origins, when non-empty, replaces Origin with a sharded origin
	// fleet: cache fills route through internal/fleet (consistent-hash
	// placement, circuit breakers, hedged fetches, ring failover)
	// instead of a single origin URL.
	Origins []string
	// ProbeInterval enables the fleet's active health probes (fleet
	// mode only; 0 = passive signals alone).
	ProbeInterval time.Duration
	// Breaker tunes the fleet's per-origin circuit breakers (fleet mode
	// only; zero value = fleet defaults).
	Breaker fleet.BreakerConfig
	// CacheBytes is the cache budget. 0 disables caching entirely: the
	// edge becomes a transparent pass-through proxy whose responses are
	// byte-identical to talking to the origin directly.
	CacheBytes int64
	// TTL is the freshness lifetime of positive entries (default 60s).
	TTL time.Duration
	// NegTTL is the lifetime of negative (non-200) entries (default 5s):
	// long enough to absorb a stampede of bad requests, short enough
	// that a fixed origin recovers quickly.
	NegTTL time.Duration
	// StaleFor is how long past expiry an entry may still be served when
	// the origin is faulty — revalidation degradations serve stale
	// within this window instead of erroring (default 5m).
	StaleFor time.Duration
	// Fetch tunes the origin retry ladder (attempts, backoff, attempt
	// timeout); the zero value selects client.DefaultFetchPolicy. This
	// is the same policy type the streaming client uses, so a
	// chaos-wrapped origin degrades identically for both.
	Fetch client.FetchPolicy
	// PrefetchBudget enables prediction-driven prefetch when > 0: the
	// token budget bounding how many tiles may be warmed; tokens refill
	// one per demand request, so prefetch can never outrun (and thus
	// starve) demand.
	PrefetchBudget int
	// PrefetchWorkers bounds concurrent prefetch fills (default 2).
	PrefetchWorkers int
	// Peers are other users' viewpoint traces for the served video; with
	// peers the prefetcher warms the tiles under their consensus
	// viewpoint (cross-user prediction), without it falls back to the
	// cross-user demand the edge itself has observed.
	Peers []*viewport.Trace
	// Obs, Log, and Tracer attach metrics, structured events, and spans;
	// nil disables each at zero cost.
	Obs    *obs.Registry
	Log    *obs.EventLog
	Tracer *trace.Tracer
	// Telemetry, when set, mounts /debug/slo and /debug/dash on Handler
	// (the caller owns its Start/Stop lifecycle); nil mounts nothing.
	Telemetry *telemetry.Sampler
	// HTTP overrides the origin transport (tests).
	HTTP *http.Client
}

func (c Config) withDefaults() Config {
	if c.TTL <= 0 {
		c.TTL = 60 * time.Second
	}
	if c.NegTTL <= 0 {
		c.NegTTL = 5 * time.Second
	}
	if c.StaleFor <= 0 {
		c.StaleFor = 5 * time.Minute
	}
	if c.PrefetchWorkers <= 0 {
		c.PrefetchWorkers = 2
	}
	return c
}

// Edge is the caching reverse proxy. Create with New, mount Handler,
// Close when done (stops prefetch workers).
type Edge struct {
	cfg    Config
	origin *client.Client
	fl     *fleet.Fleet // nil = single-origin mode
	cache  *Cache       // nil = pass-through mode
	flight flightGroup
	pf     *prefetcher

	reg    *obs.Registry
	log    *obs.EventLog
	tracer *trace.Tracer

	man     atomic.Pointer[manifest.Video]
	seq     atomic.Uint64 // per-fill RNG stream for backoff jitter
	hitN    atomic.Uint64 // cache-absorbed requests (fresh/304/coalesced/stale)
	missN   atomic.Uint64 // full origin body fetches
	evictCt *obs.Counter
}

// New validates cfg and returns an Edge.
func New(cfg Config) (*Edge, error) {
	if cfg.Origin == "" && len(cfg.Origins) == 0 {
		return nil, fmt.Errorf("edge: Origin or Origins is required")
	}
	cfg = cfg.withDefaults()
	e := &Edge{
		cfg:    cfg,
		reg:    cfg.Obs,
		log:    cfg.Log,
		tracer: cfg.Tracer,
	}
	if len(cfg.Origins) > 0 {
		fl, err := fleet.New(fleet.Config{
			Origins:       cfg.Origins,
			Fetch:         cfg.Fetch,
			Breaker:       cfg.Breaker,
			ProbeInterval: cfg.ProbeInterval,
			Seed:          cfg.Fetch.Seed,
			HTTP:          cfg.HTTP,
			Obs:           cfg.Obs,
			Log:           cfg.Log,
		})
		if err != nil {
			return nil, fmt.Errorf("edge: %v", err)
		}
		e.fl = fl
		cfg.Origin = cfg.Origins[0]
		e.cfg.Origin = cfg.Origins[0]
	}
	e.origin = client.New(cfg.Origin)
	if cfg.HTTP != nil {
		e.origin.HTTP = cfg.HTTP
	}
	if cfg.CacheBytes > 0 {
		e.cache = NewCache(cfg.CacheBytes, cfg.StaleFor)
		e.reg.Gauge("pano_edge_cache_budget_bytes", "configured cache byte budget").
			Set(float64(cfg.CacheBytes))
	}
	e.evictCt = e.reg.Counter("pano_edge_evictions_total",
		"cache entries removed by byte-budget pressure")
	if cfg.PrefetchBudget > 0 && e.cache != nil {
		e.pf = newPrefetcher(e, cfg)
	}
	return e, nil
}

// Close stops the prefetch workers and the fleet's health probers.
func (e *Edge) Close() {
	if e.pf != nil {
		e.pf.close()
	}
	if e.fl != nil {
		e.fl.Close()
	}
}

// Fleet returns the origin fleet (nil in single-origin mode).
func (e *Edge) Fleet() *fleet.Fleet { return e.fl }

// DrainPrefetch blocks until every enqueued prefetch job has finished —
// deterministic warm-state for tests and benchmarks.
func (e *Edge) DrainPrefetch() {
	if e.pf != nil {
		e.pf.drain()
	}
}

// Manifest returns the origin manifest the edge has learned from
// traffic (nil until a manifest response passes through).
func (e *Edge) Manifest() *manifest.Video { return e.man.Load() }

// CacheBytes reports the bytes currently held by the cache (0 in
// pass-through mode).
func (e *Edge) CacheBytes() int64 {
	if e.cache == nil {
		return 0
	}
	return e.cache.Bytes()
}

// Handler returns the HTTP handler:
//
//	GET /manifest.json, /manifest.mpd, /video/{chunk}/{tile}/{level}.bin
//	    — proxied (and, unless CacheBytes is 0, cached) from the origin
//	GET /healthz        — liveness probe (fleet health checks target it)
//	GET /metrics        — Prometheus exposition (only with Obs)
//	GET /debug/events   — event-log ring buffer (only with Log)
//	GET /debug/traces   — finished traces (only with Tracer)
//	GET /debug/slo      — SLO burn-rate state (only with Telemetry)
//	GET /debug/dash     — live telemetry dashboard (only with Telemetry)
//
// Callers that want edge spans stitched into client traces should wrap
// the handler in trace.Middleware (outermost), exactly like the origin
// server.
func (e *Edge) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/manifest.json", func(w http.ResponseWriter, r *http.Request) {
		e.proxy("manifest", w, r)
	})
	mux.HandleFunc("/manifest.mpd", func(w http.ResponseWriter, r *http.Request) {
		e.proxy("mpd", w, r)
	})
	mux.HandleFunc("/video/", func(w http.ResponseWriter, r *http.Request) {
		e.proxy("tile", w, r)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !obs.AllowGetHead(w, r) {
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if r.Method == http.MethodHead {
			return
		}
		io.WriteString(w, "ok\n")
	})
	if e.reg != nil {
		mux.Handle("/metrics", e.reg.Handler())
	}
	if e.log != nil {
		mux.HandleFunc("/debug/events", e.handleEvents)
	}
	if e.tracer != nil {
		mux.Handle("/debug/traces", e.tracer.Handler())
	}
	if e.cfg.Telemetry != nil {
		mux.Handle("/debug/slo", e.cfg.Telemetry.SLOHandler())
		mux.Handle("/debug/dash", e.cfg.Telemetry.DashHandler())
	}
	return mux
}

func (e *Edge) handleEvents(w http.ResponseWriter, r *http.Request) {
	// Same JSON shape as the origin's /debug/events; small enough to
	// inline rather than export from internal/server.
	if !obs.AllowGetHead(w, r) {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if r.Method == http.MethodHead {
		return
	}
	evs := e.log.Events()
	var b strings.Builder
	b.WriteString("[")
	for i, ev := range evs {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "{\"time\":%q,\"level\":%q,\"msg\":%q}",
			ev.Time.Format(time.RFC3339Nano), ev.Level.String(), ev.Msg)
	}
	b.WriteString("]\n")
	io.WriteString(w, b.String())
}

// etagMatch mirrors the origin's If-None-Match comparison (RFC 9110
// weak comparison over a comma-separated candidate list).
func etagMatch(header, etag string) bool {
	if header == "" || etag == "" {
		return false
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

// proxy serves one cacheable origin object.
func (e *Edge) proxy(endpoint string, w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		w.Header().Set("Allow", "GET, HEAD")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if e.cache == nil {
		e.passthrough(endpoint, w, r)
		return
	}
	path := r.URL.Path
	ctx, lsp := trace.StartSpan(r.Context(), "edge.lookup",
		trace.A("component", "edge"), trace.A("endpoint", endpoint), trace.A("path", path))
	defer lsp.End()
	now := time.Now()
	ent, state := e.cache.Get(path, now)
	lsp.Annotate("state", state.String())

	src := "hit"
	switch state {
	case Fresh:
		e.count(endpoint, "hits")
		e.hitN.Add(1)
	default: // Stale or Miss: fill (coalesced with concurrent fillers).
		fr, leader := e.fill(ctx, path, endpoint, ent, state)
		switch {
		case fr.err != nil && ent != nil:
			// Origin faulty but a stale copy is at hand: serve it. The
			// retention window already bounded how stale it may be.
			src = "stale"
			e.hitN.Add(1)
			e.reg.Counter("pano_edge_stale_serves_total",
				"stale entries served because the origin was unreachable").Inc()
			e.log.Logger().Warn("edge_stale_serve",
				"path", path, "age_sec", ent.Age(now).Seconds(), "error", fr.err.Error())
			lsp.Annotate("served", "stale")
		case fr.err != nil:
			e.reg.Counter("pano_edge_origin_errors_total",
				"requests failed: origin unreachable and nothing cached").Inc()
			lsp.SetError("origin_unreachable")
			e.requestDone(endpoint, http.StatusBadGateway, 0)
			http.Error(w, "edge: origin unreachable: "+fr.err.Error(), http.StatusBadGateway)
			return
		case !leader:
			src = "coalesced"
			ent = fr.entry
			e.hitN.Add(1)
			e.count(endpoint, "coalesced")
		case fr.revalidated:
			src = "revalidated"
			ent = fr.entry
			e.hitN.Add(1)
			e.count(endpoint, "hits")
		default:
			src = "miss"
			ent = fr.entry
			e.missN.Add(1)
			e.count(endpoint, "misses")
		}
	}
	e.updateHitRatio()
	lsp.Annotate("src", src)
	e.serve(endpoint, w, r, ent, src, now)
	if endpoint == "tile" && e.pf != nil {
		e.pf.observe(path)
	}
}

// count bumps one of the pano_edge_{hits,misses,coalesced}_total
// counters for an endpoint.
func (e *Edge) count(endpoint, which string) {
	help := map[string]string{
		"hits":      "requests served from cache (fresh or revalidated)",
		"misses":    "requests that required a full origin fetch",
		"coalesced": "requests coalesced onto another caller's origin fetch",
	}[which]
	e.reg.Counter("pano_edge_"+which+"_total", help, obs.L("endpoint", endpoint)).Inc()
}

func (e *Edge) updateHitRatio() {
	h, m := e.hitN.Load(), e.missN.Load()
	if h+m == 0 {
		return
	}
	e.reg.Gauge("pano_edge_hit_ratio",
		"fraction of requests absorbed without a full origin fetch").
		Set(float64(h) / float64(h+m))
}

// requestDone records the per-request counters shared by every exit
// path.
func (e *Edge) requestDone(endpoint string, code, bytes int) {
	e.reg.Counter("pano_edge_requests_total", "edge requests by endpoint and status",
		obs.L("endpoint", endpoint), obs.L("code", strconv.Itoa(code))).Inc()
}

// serve replays a cache entry to the client, honoring its own
// If-None-Match (a fresh entry revalidates downstream caches without
// any origin traffic at all).
func (e *Edge) serve(endpoint string, w http.ResponseWriter, r *http.Request, ent *Entry, src string, now time.Time) {
	h := w.Header()
	if ent.ContentType != "" {
		h.Set("Content-Type", ent.ContentType)
	}
	if ent.ETag != "" {
		h.Set("ETag", ent.ETag)
	}
	h.Set("X-Cache", src)
	h.Set("Age", strconv.Itoa(int(ent.Age(now).Seconds())))
	if ent.Status == http.StatusOK && etagMatch(r.Header.Get("If-None-Match"), ent.ETag) {
		w.WriteHeader(http.StatusNotModified)
		e.requestDone(endpoint, http.StatusNotModified, 0)
		return
	}
	h.Set("Content-Length", strconv.Itoa(len(ent.Body)))
	w.WriteHeader(ent.Status)
	n := 0
	if r.Method != http.MethodHead && len(ent.Body) > 0 {
		n, _ = w.Write(ent.Body)
	}
	e.reg.Counter("pano_edge_bytes_total", "body bytes served by the edge, by source",
		obs.L("source", src)).Add(float64(n))
	e.requestDone(endpoint, ent.Status, n)
}

// fillResult is what one coalesced origin fetch resolves to.
type fillResult struct {
	entry       *Entry
	revalidated bool
	err         error
}

// fill fetches path from the origin exactly once across all concurrent
// callers (singleflight). A stale entry's ETag rides along as
// If-None-Match so an unchanged object costs a 304, not a body.
func (e *Edge) fill(ctx context.Context, path, endpoint string, stale *Entry, state State) (*fillResult, bool) {
	return e.flight.Do(path, func() *fillResult {
		fctx, sp := trace.StartSpan(ctx, "edge.fill",
			trace.A("path", path), trace.A("stale", state == Stale))
		defer sp.End()
		etag := ""
		if stale != nil {
			etag = stale.ETag
		}
		rng := mathx.NewRNG(e.cfg.Fetch.Seed ^ 0xed6e ^ e.seq.Add(1))
		e.reg.Counter("pano_edge_origin_fetches_total",
			"origin round-trips issued by the edge (conditional and full), by endpoint",
			obs.L("endpoint", endpoint)).Inc()
		t0 := time.Now()
		var res client.RawResult
		var err error
		if e.fl != nil {
			// Fleet mode: placement, failover, and hedging live in the
			// fleet; the ring decides which origin answers this path.
			res, err = e.fl.Fetch(fctx, path, etag)
		} else {
			res, err = e.origin.FetchRaw(fctx, path, etag, e.cfg.Fetch, rng)
		}
		if err != nil {
			sp.SetError("origin")
			if state == Stale {
				e.reg.Counter("pano_edge_revalidations_total",
					"stale-entry revalidations against the origin by outcome",
					obs.L("result", "error")).Inc()
			}
			if stale == nil && fctx.Err() == nil {
				// Total-outage ladder, last rung: with nothing to serve
				// stale, negative-cache the failure for NegTTL so a dead
				// fleet answers from cache instead of absorbing a fetch
				// per request. A cancelled fill (the singleflight leader's
				// client went away mid-fetch) is not an origin-outage
				// signal, so it must not poison the path for NegTTL.
				e.cache.Put(&Entry{
					Key: path, Status: http.StatusBadGateway,
					Body:        []byte("edge: origin unreachable\n"),
					ContentType: "text/plain; charset=utf-8",
				}, time.Now(), e.cfg.NegTTL)
				e.reg.Counter("pano_edge_outage_negatives_total",
					"origin-unreachable answers negative-cached for NegTTL").Inc()
			}
			return &fillResult{err: err}
		}
		now := time.Now()
		if res.NotModified {
			// 304 fast path: the stale body is still current.
			e.cache.Refresh(path, now, e.cfg.TTL)
			e.reg.Counter("pano_edge_revalidations_total",
				"stale-entry revalidations against the origin by outcome",
				obs.L("result", "304")).Inc()
			sp.Annotate("revalidated", true)
			return &fillResult{entry: stale, revalidated: true}
		}
		if state == Stale {
			e.reg.Counter("pano_edge_revalidations_total",
				"stale-entry revalidations against the origin by outcome",
				obs.L("result", "refetch")).Inc()
		}
		ent := &Entry{
			Key: path, Status: res.Status, Body: res.Body,
			ETag: res.ETag, ContentType: res.ContentType,
		}
		ttl := e.cfg.TTL
		if res.Status != http.StatusOK {
			ttl = e.cfg.NegTTL // negative caching
		}
		if path == "/manifest.json" && res.Status == http.StatusOK {
			// Learn before inserting so the TTL decision can see a live
			// manifest: a live head cached for the full positive TTL would
			// freeze the edge for every client behind this cache. Clamp it
			// to half a chunk, the origin's own live refresh cadence.
			if m := e.learnManifest(res.Body); m != nil && m.Live {
				if lt := time.Duration(m.ChunkSec / 2 * float64(time.Second)); lt > 0 && lt < ttl {
					ttl = lt
				}
			}
		}
		evicted := e.cache.Put(ent, now, ttl)
		if evicted > 0 {
			e.evictCt.Add(float64(evicted))
		}
		e.reg.Counter("pano_edge_bytes_total", "body bytes served by the edge, by source",
			obs.L("source", "origin")).Add(float64(len(res.Body)))
		sp.Annotate("status", res.Status)
		sp.Annotate("bytes", len(res.Body))
		e.log.Logger().Debug("edge_fill",
			"path", path, "status", res.Status, "bytes", len(res.Body),
			"seconds", time.Since(t0).Seconds())
		return &fillResult{entry: ent}
	})
}

// learnManifest decodes a manifest passing through the cache so the
// prefetcher knows the video's chunk/tile geometry (and, for a live
// feed, where the edge currently is). Returns the adopted manifest, or
// nil when the body didn't validate or was older than what is held
// (live refreshes may race through concurrent fills; chunk count and
// Seq never go backwards).
func (e *Edge) learnManifest(body []byte) *manifest.Video {
	m, err := manifest.Decode(bytes.NewReader(body))
	if err != nil || m.Validate() != nil {
		return nil
	}
	if old := e.man.Load(); old != nil && (m.NumChunks() < old.NumChunks() || m.Seq < old.Seq) {
		return nil
	}
	e.man.Store(m)
	e.reg.Gauge("pano_edge_manifest_chunks", "chunks in the learned origin manifest").
		Set(float64(m.NumChunks()))
	return m
}

// passthrough forwards one request verbatim and replays the origin's
// answer byte-for-byte — the cache-disabled mode whose wire behaviour
// is indistinguishable from talking to the origin directly.
func (e *Edge) passthrough(endpoint string, w http.ResponseWriter, r *http.Request) {
	base := e.cfg.Origin
	if e.fl != nil {
		// Fleet mode keeps ring placement even without a cache: the
		// path's first healthy replica serves it.
		base = e.fl.Pick(r.URL.Path)
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+r.URL.RequestURI(), nil)
	if err != nil {
		http.Error(w, "edge: "+err.Error(), http.StatusBadGateway)
		return
	}
	for k, vs := range r.Header {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	resp, err := e.origin.HTTP.Do(req)
	if err != nil {
		e.requestDone(endpoint, http.StatusBadGateway, 0)
		http.Error(w, "edge: origin unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	h := w.Header()
	for k, vs := range resp.Header {
		for _, v := range vs {
			h.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	n, _ := io.Copy(w, resp.Body)
	e.reg.Counter("pano_edge_bytes_total", "body bytes served by the edge, by source",
		obs.L("source", "passthrough")).Add(float64(n))
	e.requestDone(endpoint, resp.StatusCode, int(n))
}
