package manifest

import (
	"bytes"

	"strings"
	"testing"

	"pano/internal/codec"
)

func TestMPDStructure(t *testing.T) {
	v := sampleVideo()
	m := v.MPD()
	if len(m.Periods) != 1 {
		t.Fatalf("periods = %d, want 1", len(m.Periods))
	}
	p := m.Periods[0]
	if len(p.AdaptationSets) != 2 {
		t.Fatalf("adaptation sets = %d, want 2 tiles", len(p.AdaptationSets))
	}
	as := p.AdaptationSets[0]
	if len(as.Representations) != codec.NumLevels {
		t.Fatalf("representations = %d, want %d", len(as.Representations), codec.NumLevels)
	}
	// SRD property encodes the tile rect within the panorama.
	srd := as.Supplementals[0]
	if srd.SchemeIDURI != SRDScheme {
		t.Errorf("scheme = %q", srd.SchemeIDURI)
	}
	if srd.Value != "0,0,0,50,50,100,50" {
		t.Errorf("srd value = %q", srd.Value)
	}
	// Bandwidth is bits per second of chunk.
	if as.Representations[0].Bandwidth != int(v.Chunks[0].Tiles[0].Bits[0]) {
		t.Errorf("bandwidth = %d", as.Representations[0].Bandwidth)
	}
	// The LUT rides on each representation.
	lut := as.Representations[0].Supplementals[0]
	if lut.SchemeIDURI != LUTScheme || !strings.Contains(lut.Value, ",") {
		t.Errorf("lut property = %+v", lut)
	}
	// BaseURL matches the server's tile path layout.
	if as.Representations[2].BaseURL != "video/0/0/2.bin" {
		t.Errorf("base url = %q", as.Representations[2].BaseURL)
	}
}

func TestMPDXMLRoundTrip(t *testing.T) {
	v := sampleVideo()
	var buf bytes.Buffer
	if err := v.MPD().Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		xmlHeaderFrag, "urn:mpeg:dash:schema:mpd:2011", "SupplementalProperty",
		"urn:mpeg:dash:srd:2014", "urn:pano:pspnr-lut:2019",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("serialized MPD missing %q", want)
		}
	}
	back, err := DecodeMPD(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Periods) != 1 || len(back.Periods[0].AdaptationSets) != 2 {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Periods[0].AdaptationSets[0].Supplementals[0].Value !=
		v.MPD().Periods[0].AdaptationSets[0].Supplementals[0].Value {
		t.Error("SRD value changed in round trip")
	}
}

const xmlHeaderFrag = "<?xml"

func TestMPDDurations(t *testing.T) {
	v := sampleVideo()
	m := v.MPD()
	if m.MediaPresentationDur != "PT1.000S" {
		t.Errorf("duration = %q", m.MediaPresentationDur)
	}
	if m.Periods[0].Start != "PT0.000S" {
		t.Errorf("period start = %q", m.Periods[0].Start)
	}
}

func TestDecodeMPDGarbage(t *testing.T) {
	if _, err := DecodeMPD(strings.NewReader("<not-xml")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestMPDMultiPeriod(t *testing.T) {
	v := sampleVideo()
	// Clone the chunk as a second period with shifted index.
	c2 := v.Chunks[0]
	c2.Index = 1
	v.Chunks = append(v.Chunks, c2)
	m := v.MPD()
	if len(m.Periods) != 2 {
		t.Fatalf("periods = %d", len(m.Periods))
	}
	if m.Periods[1].Start != "PT1.000S" {
		t.Errorf("second period start = %q", m.Periods[1].Start)
	}
	if m.Periods[1].AdaptationSets[0].Representations[0].BaseURL != "video/1/0/0.bin" {
		t.Errorf("second period url = %q",
			m.Periods[1].AdaptationSets[0].Representations[0].BaseURL)
	}
}
