package manifest

import (
	"bytes"
	"math"
	"testing"

	"pano/internal/codec"
	"pano/internal/geom"
)

func sampleVideo() *Video {
	v := &Video{Name: "test", Genre: "Sports", W: 100, H: 50, FPS: 30, ChunkSec: 1}
	mk := func(r geom.Rect) Tile {
		t := Tile{Rect: r, AvgLuma: 120, AvgDoF: 0.5}
		for l := 0; l < codec.NumLevels; l++ {
			t.Bits[l] = 1e5 / math.Pow(1.7, float64(l))
			t.RefPSPNR[l] = 90 - 8*float64(l)
			t.LUT[l] = PowerLUT{ACoeff: 1, BExp: 0.1}
		}
		return t
	}
	v.Chunks = []Chunk{{
		Index: 0,
		Tiles: []Tile{
			mk(geom.Rect{X0: 0, Y0: 0, X1: 50, Y1: 50}),
			mk(geom.Rect{X0: 50, Y0: 0, X1: 100, Y1: 50}),
		},
	}}
	return v
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := sampleVideo().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	v := sampleVideo()
	v.Chunks[0].Tiles[0].Rect.X1 = 40 // gap
	if err := v.Validate(); err == nil {
		t.Error("gap should fail")
	}

	v = sampleVideo()
	v.Chunks[0].Tiles[0].Bits[1] = v.Chunks[0].Tiles[0].Bits[0] * 2 // size grows with worse quality
	if err := v.Validate(); err == nil {
		t.Error("non-monotone sizes should fail")
	}

	v = sampleVideo()
	v.Chunks[0].Tiles[0].Bits[2] = 0
	if err := v.Validate(); err == nil {
		t.Error("zero size should fail")
	}

	v = sampleVideo()
	v.Chunks[0].Tiles[0].RefPSPNR[0] = 150
	if err := v.Validate(); err == nil {
		t.Error("out-of-range PSPNR should fail")
	}

	v = sampleVideo()
	v.W = 0
	if err := v.Validate(); err == nil {
		t.Error("bad header should fail")
	}

	v = sampleVideo()
	v.Chunks[0].Tiles[0].Rect = geom.Rect{X0: -5, Y0: 0, X1: 50, Y1: 50}
	if err := v.Validate(); err == nil {
		t.Error("negative rect should fail")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	v := sampleVideo()
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != v.Name || back.NumChunks() != 1 || len(back.Chunks[0].Tiles) != 2 {
		t.Fatalf("round trip lost data: %+v", back)
	}
	if back.Chunks[0].Tiles[0].Bits != v.Chunks[0].Tiles[0].Bits {
		t.Error("bits changed in round trip")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("{not json"))); err == nil {
		t.Error("garbage should fail to decode")
	}
}

func TestChunkBits(t *testing.T) {
	v := sampleVideo()
	want := 2 * v.Chunks[0].Tiles[0].Bits[0]
	if got := v.ChunkBits(0, 0); math.Abs(got-want) > 1e-9 {
		t.Errorf("ChunkBits = %v, want %v", got, want)
	}
	if v.ChunkBits(5, 0) != 0 || v.ChunkBits(-1, 0) != 0 {
		t.Error("out-of-range chunk should be 0")
	}
	if v.DurationSec() != 1 {
		t.Errorf("duration = %v", v.DurationSec())
	}
}

func TestPowerLUTEval(t *testing.T) {
	l := PowerLUT{ACoeff: 1, BExp: 0.2}
	if got := l.PSPNR(60, 1); math.Abs(got-60) > 1e-9 {
		t.Errorf("PSPNR at A=1 = %v, want ref", got)
	}
	if l.PSPNR(60, 5) <= 60 {
		t.Error("PSPNR should rise with A for positive exponent")
	}
	// Sub-1 ratios clamp to 1.
	if l.PSPNR(60, 0.1) != 60 {
		t.Error("A < 1 should clamp")
	}
	// Cap.
	if got := l.PSPNR(99, 100); got > 100 {
		t.Errorf("PSPNR should cap at 100, got %v", got)
	}
}

func TestFitPowerLUT(t *testing.T) {
	// PSPNR(A) = 50 * 1.05 * A^0.3.
	ratios := AnchorRatios
	pspnrs := make([]float64, len(ratios))
	for i, r := range ratios {
		pspnrs[i] = 50 * 1.05 * math.Pow(r, 0.3)
	}
	lut := FitPowerLUT(50, ratios, pspnrs)
	if math.Abs(lut.ACoeff-1.05) > 1e-6 || math.Abs(lut.BExp-0.3) > 1e-6 {
		t.Errorf("fit = %+v, want a=1.05 b=0.3", lut)
	}
	// Degenerate ref falls back to identity.
	flat := FitPowerLUT(0, ratios, pspnrs)
	if flat.ACoeff != 1 || flat.BExp != 0 {
		t.Errorf("degenerate fit = %+v", flat)
	}
}

func TestTableSizesCompressionRatio(t *testing.T) {
	// Build a 5-minute-scale manifest: 300 chunks x 30 tiles.
	v := &Video{Name: "big", W: 480, H: 240, FPS: 30, ChunkSec: 1}
	for k := 0; k < 300; k++ {
		c := Chunk{Index: k}
		for i := 0; i < 30; i++ {
			c.Tiles = append(c.Tiles, Tile{})
		}
		v.Chunks = append(v.Chunks, c)
	}
	full := v.FullTableSize(8)
	reduced := v.ReducedTableSize()
	power := v.PowerTableSize()
	if !(power < reduced && reduced < full) {
		t.Fatalf("sizes not ordered: full=%d reduced=%d power=%d", full, reduced, power)
	}
	// §6.3: ~10 MB down to ~50 KB: expect ≥ 100x compression and a
	// full table in the multi-MB range.
	if ratio := float64(full) / float64(power); ratio < 100 {
		t.Errorf("compression ratio = %v, want ≥ 100x", ratio)
	}
	if full < 5<<20 {
		t.Errorf("full table = %d bytes, expected multi-MB", full)
	}
	if power > 2<<20 {
		t.Errorf("power table = %d bytes, expected ≪ full", power)
	}
}

func TestLiveFieldsRoundTrip(t *testing.T) {
	v := sampleVideo()
	v.Live = true
	v.Seq = 42
	v.FirstChunk = 1
	v.WindowChunks = 8
	v.Chunks = append(v.Chunks, v.Chunks[0])
	v.Chunks[1].Index = 1
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Live || back.Seq != 42 || back.FirstChunk != 1 || back.WindowChunks != 8 {
		t.Fatalf("live fields lost in round trip: %+v", back)
	}
	if back.LiveEdge() != 2 {
		t.Fatalf("LiveEdge = %d, want 2", back.LiveEdge())
	}
	if back.ChunkAvailable(0) || !back.ChunkAvailable(1) || back.ChunkAvailable(2) {
		t.Fatal("ChunkAvailable window wrong")
	}
}

// TestVODEncodingUnchangedByLiveFields: a VOD manifest's JSON must be
// byte-identical to the pre-live schema — every live field is omitempty,
// so ETags (content hashes of these bytes) are stable across the
// upgrade.
func TestVODEncodingUnchangedByLiveFields(t *testing.T) {
	v := sampleVideo()
	var buf bytes.Buffer
	if err := v.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"live", "seq", "firstChunk", "windowChunks"} {
		if bytes.Contains(buf.Bytes(), []byte(`"`+field+`"`)) {
			t.Errorf("VOD encoding leaks live field %q", field)
		}
	}
}

func TestValidateRejectsBadLiveFields(t *testing.T) {
	v := sampleVideo()
	v.FirstChunk = 5 // past the edge
	if err := v.Validate(); err == nil {
		t.Error("window start past edge should fail")
	}
	v = sampleVideo()
	v.Seq = -1
	if err := v.Validate(); err == nil {
		t.Error("negative seq should fail")
	}
	v = sampleVideo()
	v.WindowChunks = -2
	if err := v.Validate(); err == nil {
		t.Error("negative window should fail")
	}
}
