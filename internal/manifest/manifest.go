// Package manifest defines the DASH-style manifest Pano ships to the
// client, including the PSPNR lookup table of §6.2–6.3.
//
// Pano's quality adaptation needs PSPNR, which depends on both
// server-side information (pixels) and client-side information
// (viewpoint movement). To stay DASH-compatible, the provider
// pre-computes per-tile quality estimates offline and embeds them in the
// manifest; the client combines them with its live viewpoint prediction.
//
// Three lookup-table schemas mirror Figure 12:
//
//	(a) Full:    PSPNR for every (speed, DoF, luminance) combination.
//	(b) Reduced: PSPNR indexed by the scalar action-dependent ratio A.
//	(c) Power:   per-tile power-regression coefficients, PSPNR(A) ≈
//	             Ref · a · A^b — two floats per tile and level.
//
// The manifest always carries schema (c); the other schemas exist so the
// compression experiment (§6.3) can be reproduced byte-for-byte.
package manifest

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"pano/internal/codec"
	"pano/internal/geom"
	"pano/internal/mathx"
)

// ObjectSample is one entry of a tile's object-trajectory track: the
// paper stores one sample per 10 frames (§7).
type ObjectSample struct {
	T        float64 `json:"t"`     // seconds from chunk start
	Yaw      float64 `json:"yaw"`   // object center
	Pitch    float64 `json:"pitch"` //
	SpeedDeg float64 `json:"speed"` // object angular speed, deg/s
	Depth    float64 `json:"depth"` // dioptre
}

// Tile describes one variable-size tile of one chunk (§7's per-tile
// manifest fields).
type Tile struct {
	// Rect is the tile's pixel rectangle; the top-left coordinate is
	// required because Pano's tiles are not aligned across chunks.
	Rect geom.Rect `json:"rect"`
	// AvgLuma is the tile's average luminance (grey level).
	AvgLuma float64 `json:"avgLuma"`
	// AvgDoF is the tile's average depth-of-field (dioptre).
	AvgDoF float64 `json:"avgDof"`
	// ObjSpeedDeg is the mean angular speed of objects in the tile
	// (0 for pure background): the client subtracts it from its own
	// viewpoint speed to get the relative speed factor.
	ObjSpeedDeg float64 `json:"objSpeed"`
	// Bits is the encoded size of the tile at each quality level.
	Bits [codec.NumLevels]float64 `json:"bits"`
	// PSNR is the plain (JND-agnostic) PSNR at each level, used by the
	// viewport-driven baselines whose quality model ignores perception.
	PSNR [codec.NumLevels]float64 `json:"psnr"`
	// RefPSPNR is the PSPNR at each level under static viewing (A=1).
	RefPSPNR [codec.NumLevels]float64 `json:"refPspnr"`
	// LUT holds the compressed PSPNR-vs-A model per level.
	LUT [codec.NumLevels]PowerLUT `json:"lut"`
}

// PowerLUT is schema (c): PSPNR(A) ≈ Ref * A_coeff * A^B_exp, fitted
// over the anchor ratios of the reduced table.
type PowerLUT struct {
	ACoeff float64 `json:"a"`
	BExp   float64 `json:"b"`
}

// PSPNR evaluates the compressed model for action ratio A against a
// reference PSPNR, clamping to the metric's cap.
func (p PowerLUT) PSPNR(ref, a float64) float64 {
	if a < 1 {
		a = 1
	}
	v := ref * p.ACoeff * math.Pow(a, p.BExp)
	if v > 100 {
		v = 100
	}
	return v
}

// Chunk is one second (ChunkSec) of video split into tiles.
type Chunk struct {
	Index   int            `json:"index"`
	Tiles   []Tile         `json:"tiles"`
	Objects []ObjectSample `json:"objects,omitempty"`
}

// Video is the complete manifest.
type Video struct {
	Name     string  `json:"name"`
	Genre    string  `json:"genre"`
	W        int     `json:"w"`
	H        int     `json:"h"`
	FPS      int     `json:"fps"`
	ChunkSec float64 `json:"chunkSec"`
	Chunks   []Chunk `json:"chunks"`

	// Live marks a manifest still being produced: Chunks holds every
	// chunk published so far (the live edge is NumChunks()) and clients
	// must refresh to see more. The final publish of a feed clears Live,
	// which is the end-of-stream signal. All live fields are omitempty so
	// a VOD manifest's JSON encoding is unchanged byte for byte.
	Live bool `json:"live,omitempty"`
	// Seq increments on every live publish; together with the content
	// ETag it orders manifest refreshes (a client never adopts a refresh
	// whose Seq went backwards, e.g. from a lagging origin).
	Seq int64 `json:"seq,omitempty"`
	// FirstChunk is the availability-window start: chunks below it have
	// been retired from storage and requests for their tiles answer
	// 410 Gone. Chunk metadata is retained so indices stay absolute.
	FirstChunk int `json:"firstChunk,omitempty"`
	// WindowChunks is the configured availability window in chunks
	// (0 = unbounded; FirstChunk then never advances).
	WindowChunks int `json:"windowChunks,omitempty"`
}

// NumChunks returns the number of chunks.
func (v *Video) NumChunks() int { return len(v.Chunks) }

// LiveEdge returns the index of the first not-yet-published chunk. For
// a VOD manifest this is simply the chunk count.
func (v *Video) LiveEdge() int { return len(v.Chunks) }

// ChunkAvailable reports whether chunk k is published and still inside
// the availability window (below-window chunks answer 410 Gone, at-or-
// past-edge chunks 404 until published).
func (v *Video) ChunkAvailable(k int) bool {
	return k >= v.FirstChunk && k < len(v.Chunks)
}

// DurationSec returns the video duration in seconds.
func (v *Video) DurationSec() float64 { return float64(len(v.Chunks)) * v.ChunkSec }

// ChunkBits returns the total size in bits of chunk k with every tile at
// level l.
func (v *Video) ChunkBits(k int, l codec.Level) float64 {
	if k < 0 || k >= len(v.Chunks) {
		return 0
	}
	var s float64
	for _, t := range v.Chunks[k].Tiles {
		s += t.Bits[l]
	}
	return s
}

// Validate checks structural invariants: tiles partition the frame,
// sizes grow with quality, PSPNR values are sane.
func (v *Video) Validate() error {
	if v.W <= 0 || v.H <= 0 || v.FPS <= 0 || v.ChunkSec <= 0 {
		return fmt.Errorf("manifest: bad video header %dx%d@%d/%vs", v.W, v.H, v.FPS, v.ChunkSec)
	}
	if v.FirstChunk < 0 || v.FirstChunk > len(v.Chunks) {
		return fmt.Errorf("manifest: availability window start %d outside [0,%d]", v.FirstChunk, len(v.Chunks))
	}
	if v.Seq < 0 || v.WindowChunks < 0 {
		return fmt.Errorf("manifest: negative live field (seq %d, window %d)", v.Seq, v.WindowChunks)
	}
	for _, c := range v.Chunks {
		area := 0
		for ti, t := range c.Tiles {
			if t.Rect.Empty() || t.Rect.X0 < 0 || t.Rect.Y0 < 0 || t.Rect.X1 > v.W || t.Rect.Y1 > v.H {
				return fmt.Errorf("manifest: chunk %d tile %d rect %v out of %dx%d", c.Index, ti, t.Rect, v.W, v.H)
			}
			area += t.Rect.Area()
			// Level 0 is highest quality: sizes must not grow as
			// quality drops.
			for l := 1; l < codec.NumLevels; l++ {
				if t.Bits[l] > t.Bits[l-1]+1e-9 {
					return fmt.Errorf("manifest: chunk %d tile %d size grows from level %d to %d", c.Index, ti, l-1, l)
				}
			}
			for l := 0; l < codec.NumLevels; l++ {
				if t.Bits[l] <= 0 {
					return fmt.Errorf("manifest: chunk %d tile %d level %d non-positive size", c.Index, ti, l)
				}
				if t.RefPSPNR[l] < 0 || t.RefPSPNR[l] > 100 {
					return fmt.Errorf("manifest: chunk %d tile %d level %d pspnr %v out of range", c.Index, ti, l, t.RefPSPNR[l])
				}
			}
		}
		if area != v.W*v.H {
			return fmt.Errorf("manifest: chunk %d tiles cover %d px, want %d", c.Index, area, v.W*v.H)
		}
	}
	return nil
}

// Encode writes the manifest as JSON.
func (v *Video) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(v)
}

// Decode reads a manifest written by Encode.
func Decode(r io.Reader) (*Video, error) {
	var v Video
	if err := json.NewDecoder(r).Decode(&v); err != nil {
		return nil, fmt.Errorf("manifest: decode: %w", err)
	}
	return &v, nil
}

// --- Lookup-table schema variants for the §6.3 compression study ---

// AnchorRatios are the action-ratio anchors at which the provider
// evaluates PSPNR offline; the power fit is regressed over them.
var AnchorRatios = []float64{1, 1.5, 2, 3, 5, 8, 12, 20}

// FullTableEntry is one row of schema (a): an explicit factor
// combination and its PSPNR per level.
type FullTableEntry struct {
	ChunkIdx, TileIdx int
	Speed, DoF, Luma  float64
	PSPNR             [codec.NumLevels]float64
}

// ReducedTableEntry is one row of schema (b): indexed by the scalar
// action ratio.
type ReducedTableEntry struct {
	ChunkIdx, TileIdx int
	Ratio             float64
	PSPNR             [codec.NumLevels]float64
}

// FullTableSize returns the serialized size in bytes of schema (a) for
// this manifest with n representative values per factor: one row per
// tile per n³ combination, 8 bytes per float (3 factors + 5 levels) plus
// 8 bytes of row addressing.
func (v *Video) FullTableSize(nPerFactor int) int {
	rows := 0
	for _, c := range v.Chunks {
		rows += len(c.Tiles)
	}
	combos := nPerFactor * nPerFactor * nPerFactor
	const rowBytes = 8 + 8*3 + 8*codec.NumLevels
	return rows * combos * rowBytes
}

// ReducedTableSize returns the serialized size in bytes of schema (b)
// with the standard anchor set.
func (v *Video) ReducedTableSize() int {
	rows := 0
	for _, c := range v.Chunks {
		rows += len(c.Tiles)
	}
	const rowBytes = 8 + 8 + 8*codec.NumLevels
	return rows * len(AnchorRatios) * rowBytes
}

// PowerTableSize returns the serialized size in bytes of schema (c):
// two floats per tile-level plus the reference PSPNR.
func (v *Video) PowerTableSize() int {
	rows := 0
	for _, c := range v.Chunks {
		rows += len(c.Tiles)
	}
	const rowBytes = 8 + codec.NumLevels*(8*3)
	return rows * rowBytes
}

// FitPowerLUT fits schema (c) coefficients from (ratio, pspnr) anchor
// observations with pspnr normalized by ref. Anchors with non-positive
// values are skipped; a flat fallback (a=1, b=0) is returned if the fit
// is degenerate.
func FitPowerLUT(ref float64, ratios, pspnrs []float64) PowerLUT {
	if ref <= 0 {
		return PowerLUT{ACoeff: 1, BExp: 0}
	}
	norm := make([]float64, len(pspnrs))
	for i, p := range pspnrs {
		norm[i] = p / ref
	}
	fit, err := mathx.FitPower(ratios, norm)
	if err != nil || math.IsNaN(fit.A) || math.IsNaN(fit.B) {
		return PowerLUT{ACoeff: 1, BExp: 0}
	}
	return PowerLUT{ACoeff: fit.A, BExp: fit.B}
}
