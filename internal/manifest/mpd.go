package manifest

import (
	"encoding/xml"
	"fmt"
	"io"

	"pano/internal/codec"
)

// This file projects the Pano manifest onto a standard DASH Media
// Presentation Description (MPD), so off-the-shelf tooling can inspect
// the stream layout. Tiles are expressed with the MPEG-DASH Spatial
// Relationship Description (SRD, ISO/IEC 23009-1 Amd. 2): each tile is
// an AdaptationSet carrying a SupplementalProperty
// "urn:mpeg:dash:srd:2014" whose value encodes the tile rectangle
// within the full panorama. Because Pano's tiles may differ between
// chunks (§7: tile coordinates are per-chunk), every chunk maps to its
// own Period.
//
// Pano-specific data — the per-level reference PSPNR and the
// power-regression lookup table (§6.3) — ride on each Representation as
// a SupplementalProperty with scheme "urn:pano:pspnr-lut:2019" and
// value "ref,a,b", so a Pano-aware client can run its quality
// estimation from a pure-DASH manifest while any other client simply
// ignores the property.

// MPD is the root element.
type MPD struct {
	XMLName              xml.Name    `xml:"MPD"`
	XMLNS                string      `xml:"xmlns,attr"`
	Profiles             string      `xml:"profiles,attr"`
	Type                 string      `xml:"type,attr"`
	MediaPresentationDur string      `xml:"mediaPresentationDuration,attr"`
	MinBufferTime        string      `xml:"minBufferTime,attr"`
	Periods              []MPDPeriod `xml:"Period"`
}

// MPDPeriod is one chunk.
type MPDPeriod struct {
	ID             string             `xml:"id,attr"`
	Start          string             `xml:"start,attr"`
	Duration       string             `xml:"duration,attr"`
	AdaptationSets []MPDAdaptationSet `xml:"AdaptationSet"`
}

// MPDProperty is a DASH descriptor (SRD, Pano LUT, ...).
type MPDProperty struct {
	SchemeIDURI string `xml:"schemeIdUri,attr"`
	Value       string `xml:"value,attr"`
}

// MPDAdaptationSet is one tile of one chunk.
type MPDAdaptationSet struct {
	ID              int                 `xml:"id,attr"`
	ContentType     string              `xml:"contentType,attr"`
	Supplementals   []MPDProperty       `xml:"SupplementalProperty"`
	Representations []MPDRepresentation `xml:"Representation"`
}

// MPDRepresentation is one quality level of one tile.
type MPDRepresentation struct {
	ID            string        `xml:"id,attr"`
	Bandwidth     int           `xml:"bandwidth,attr"`
	Width         int           `xml:"width,attr"`
	Height        int           `xml:"height,attr"`
	BaseURL       string        `xml:"BaseURL"`
	Supplementals []MPDProperty `xml:"SupplementalProperty"`
}

// SRDScheme is the MPEG-DASH spatial relationship scheme id.
const SRDScheme = "urn:mpeg:dash:srd:2014"

// LUTScheme is the Pano quality-lookup property scheme id.
const LUTScheme = "urn:pano:pspnr-lut:2019"

// MPD converts the manifest into a multi-period DASH MPD.
func (v *Video) MPD() *MPD {
	out := &MPD{
		XMLNS:                "urn:mpeg:dash:schema:mpd:2011",
		Profiles:             "urn:mpeg:dash:profile:isoff-main:2011",
		Type:                 "static",
		MediaPresentationDur: xsDuration(v.DurationSec()),
		MinBufferTime:        xsDuration(v.ChunkSec),
	}
	for _, c := range v.Chunks {
		p := MPDPeriod{
			ID:       fmt.Sprintf("chunk-%d", c.Index),
			Start:    xsDuration(float64(c.Index) * v.ChunkSec),
			Duration: xsDuration(v.ChunkSec),
		}
		for ti := range c.Tiles {
			t := &c.Tiles[ti]
			as := MPDAdaptationSet{
				ID:          ti,
				ContentType: "video",
				Supplementals: []MPDProperty{{
					SchemeIDURI: SRDScheme,
					// source_id, object x, y, w, h, total W, H
					Value: fmt.Sprintf("0,%d,%d,%d,%d,%d,%d",
						t.Rect.X0, t.Rect.Y0, t.Rect.W(), t.Rect.H(), v.W, v.H),
				}},
			}
			for l := 0; l < codec.NumLevels; l++ {
				as.Representations = append(as.Representations, MPDRepresentation{
					ID:        fmt.Sprintf("t%d-l%d", ti, l),
					Bandwidth: int(t.Bits[l] / v.ChunkSec),
					Width:     t.Rect.W(),
					Height:    t.Rect.H(),
					BaseURL:   fmt.Sprintf("video/%d/%d/%d.bin", c.Index, ti, l),
					Supplementals: []MPDProperty{{
						SchemeIDURI: LUTScheme,
						Value: fmt.Sprintf("%.4f,%.6f,%.6f",
							t.RefPSPNR[l], t.LUT[l].ACoeff, t.LUT[l].BExp),
					}},
				})
			}
			p.AdaptationSets = append(p.AdaptationSets, as)
		}
		out.Periods = append(out.Periods, p)
	}
	return out
}

// EncodeMPD writes the MPD as indented XML with the standard header.
func (m *MPD) Encode(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(m); err != nil {
		return fmt.Errorf("manifest: mpd encode: %w", err)
	}
	return enc.Flush()
}

// DecodeMPD parses an MPD written by Encode.
func DecodeMPD(r io.Reader) (*MPD, error) {
	var m MPD
	if err := xml.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("manifest: mpd decode: %w", err)
	}
	return &m, nil
}

// xsDuration renders seconds as an xs:duration ("PT12.5S").
func xsDuration(sec float64) string {
	return fmt.Sprintf("PT%.3fS", sec)
}
