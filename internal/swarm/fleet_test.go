package swarm

import (
	"context"
	"testing"
	"time"

	"pano/internal/chaos"
	"pano/internal/codec"
	"pano/internal/fleet"
	"pano/internal/nettrace"
	"pano/internal/obs"
)

func fleetConfig(f *fixtureT) Config {
	cfg := baseConfig(f)
	cfg.Fleet = &FleetConfig{
		Origins: 4,
		Breaker: fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 2 * time.Second},
	}
	return cfg
}

func TestPlacementCoversAllShards(t *testing.T) {
	f := fixture(t)
	fc := &FleetConfig{Origins: 4}
	p := newPlacement(f.pano, fc)
	if len(p.manifest) != 4 {
		t.Fatalf("manifest order %v", p.manifest)
	}
	owned := make([]int, 4)
	for k := range f.pano.Chunks {
		for ti := range f.pano.Chunks[k].Tiles {
			for l := 0; l < codec.NumLevels; l++ {
				order := p.tileOrder(k, ti, codec.Level(l))
				if len(order) != 4 {
					t.Fatalf("tile (%d,%d,%d) order %v", k, ti, l, order)
				}
				seen := map[int]bool{}
				for _, o := range order {
					if o < 0 || o >= 4 || seen[o] {
						t.Fatalf("tile (%d,%d,%d) bad order %v", k, ti, l, order)
					}
					seen[o] = true
				}
				owned[order[0]]++
			}
		}
	}
	total := 0
	for _, n := range owned {
		total += n
	}
	for o, n := range owned {
		if n < total/12 {
			t.Errorf("shard %d owns %d/%d objects — ring badly skewed: %v", o, n, total, owned)
		}
	}
}

// TestFleetShardOutageZeroAborts is the population-scale analogue of
// the edge failover test: one of four shards goes hard-down mid-run and
// every session rides through on ring failover — zero aborts, zero
// skipped tiles, load redistributed across the surviving shards.
func TestFleetShardOutageZeroAborts(t *testing.T) {
	f := fixture(t)
	cfg := fleetConfig(f)
	cfg.Fleet.Outages = []chaos.Down{{After: 5 * time.Second, For: 15 * time.Second}}
	cfg.Obs = obs.NewRegistry()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Completed != s.Sessions || s.Errored != 0 {
		t.Fatalf("shard outage aborted sessions: %+v", s)
	}
	if s.SkippedTiles != 0 {
		t.Errorf("shard outage skipped %d tiles", s.SkippedTiles)
	}
	if s.FleetFailovers == 0 {
		t.Error("no failovers recorded across a 15s shard outage")
	}
	if s.FleetOrigins != 4 || len(s.FleetShardLoad) != 4 {
		t.Fatalf("fleet rollup shape: %+v", s)
	}
	var shardSum int64
	for o, n := range s.FleetShardLoad {
		if n == 0 {
			t.Errorf("shard %d saw no requests", o)
		}
		shardSum += n
	}
	if shardSum != s.OriginRequests {
		t.Errorf("shard loads sum to %d, origin requests %d", shardSum, s.OriginRequests)
	}
	if got := cfg.Obs.CounterValue("pano_swarm_fleet_failovers_total"); got != float64(s.FleetFailovers) {
		t.Errorf("metrics failovers %v != summary %d", got, s.FleetFailovers)
	}

	// The same population without the outage fails over strictly less.
	clean, err := Run(context.Background(), fleetConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Summary.FleetFailovers >= s.FleetFailovers {
		t.Errorf("healthy fleet failed over %d times, outage run %d",
			clean.Summary.FleetFailovers, s.FleetFailovers)
	}
	if clean.Summary.Errored != 0 {
		t.Errorf("healthy fleet errored %d sessions", clean.Summary.Errored)
	}
}

// TestFleetHedgesModelled: with a fixed hedge delay below typical
// transfer times, sessions model hedged backups and some of them win.
func TestFleetHedgesModelled(t *testing.T) {
	f := fixture(t)
	cfg := fleetConfig(f)
	cfg.Fetch.HedgeDelay = 50 * time.Millisecond
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.FleetHedges == 0 {
		t.Fatalf("no hedges modelled with a 50ms fixed delay: %+v", s)
	}
	if s.FleetHedgeWins > s.FleetHedges {
		t.Errorf("hedge wins %d > issued %d", s.FleetHedgeWins, s.FleetHedges)
	}
	// Hedging never hurts virtual-time QoE and costs extra requests.
	plain, err := Run(context.Background(), fleetConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if s.OriginRequests <= plain.Summary.OriginRequests {
		t.Errorf("hedged run issued %d requests, plain %d",
			s.OriginRequests, plain.Summary.OriginRequests)
	}
}

func TestFleetConfigValidation(t *testing.T) {
	f := fixture(t)
	for i, mod := range []func(*Config){
		func(c *Config) { c.Fleet = &FleetConfig{Origins: 0} },
		func(c *Config) { c.Fleet = &FleetConfig{Origins: 1, Outages: make([]chaos.Down, 2)} },
		func(c *Config) {
			// A flapping period <= the window degenerates to a permanent
			// outage; reject it like the spec parser would.
			c.Fleet = &FleetConfig{Origins: 2,
				Outages: []chaos.Down{{For: 10 * time.Second, Every: 5 * time.Second}}}
		},
	} {
		cfg := baseConfig(f)
		mod(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

// TestFleetBudgetDryReleasesProbe: a dry retry budget ends the ladder
// on a shard whose half-open probe slot Allow just consumed; the slot
// must be handed back. Per-session swarm breakers have no active
// prober, so a leaked slot would silently remove the shard for the
// rest of the session and skew failover/QoE results.
func TestFleetBudgetDryReleasesProbe(t *testing.T) {
	f := fixture(t)
	m := f.pano
	fc := &FleetConfig{
		Origins: 2,
		Breaker: fleet.BreakerConfig{FailureThreshold: 1, OpenFor: time.Second},
	}
	place := newPlacement(m, fc)
	order := place.tileOrder(0, 0, 0)
	// The object's owner shard is hard-down: the first rung fails
	// without consuming budget, so the ladder consults the budget at
	// the successor.
	outages := make([]chaos.Down, fc.Origins)
	outages[order[0]] = chaos.Down{Always: true}
	fc.Outages = outages

	flat := &nettrace.Trace{Mbps: make([]float64, 60)}
	for i := range flat.Mbps {
		flat.Mbps[i] = 10
	}
	clk := NewVirtualClock(0)
	s := newNetem(m, clk, &nettrace.Link{Trace: flat}, chaos.Rule{}, 1, 1e4, map[int32]int64{})
	s.fleet = newFleetSim(fc, place, 1, 0.001, 1)

	s.fleet.brks[order[1]].Failure(clk.Now()) // threshold 1: successor opens
	for s.fleet.budget.Spend() {              // drain the bucket
	}
	clk.AdvanceSec(2) // past the jittered OpenFor: the next Allow is the probe

	if _, err := s.fleetTile(context.Background(), 0, 0, 0, m.Chunks[0].Tiles[0].Bits[0]); err == nil {
		t.Fatal("fleetTile succeeded with its owner shard down and a dry budget")
	}
	if s.fleet.budgetDenied == 0 {
		t.Fatal("budget never reported dry — scenario did not reach the denied rung")
	}
	if !s.fleet.brks[order[1]].Available(clk.Now()) {
		t.Fatal("budget-denied ladder leaked the shard's half-open probe slot")
	}
}
