package swarm

import "container/heap"

// event is one timed occurrence in the discrete-event schedule: a
// session arrival (delta +1) or departure (delta -1).
type event struct {
	at    float64
	id    int
	delta int
}

// eventQueue is a min-heap of events ordered by (time, departures
// before arrivals, session id) — a total order, so every pop sequence
// is deterministic regardless of push order.
type eventQueue []event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].delta != q[j].delta {
		return q[i].delta < q[j].delta
	}
	return q[i].id < q[j].id
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// pop removes and returns the earliest event.
func (q *eventQueue) pop() event { return heap.Pop(q).(event) }
