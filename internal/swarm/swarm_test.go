package swarm

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"pano/internal/chaos"
	"pano/internal/manifest"
	"pano/internal/nettrace"
	"pano/internal/obs"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/viewport"
)

type fixtureT struct {
	pano   *manifest.Video
	traces []*viewport.Trace
	bw     []*nettrace.Trace
}

var (
	fxOnce sync.Once
	fx     fixtureT
)

// fixture builds a small Pano-tiled video, a pool of synthetic head
// traces, and a pool of LTE-like bandwidth traces scaled to fractions
// of the top encoding rate.
func fixture(t *testing.T) *fixtureT {
	t.Helper()
	fxOnce.Do(func() {
		v := scene.Generate(scene.Sports, 23, scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 8})
		var trs []*viewport.Trace
		for i := 0; i < 4; i++ {
			trs = append(trs, viewport.Synthesize(v, uint64(i+1), viewport.DefaultSynthesizeOpts()))
		}
		pano, err := provider.Preprocess(v, trs, provider.DefaultConfig())
		if err != nil {
			panic(err)
		}
		top := pano.ChunkBits(0, 0) / pano.ChunkSec / 1e6
		var bw []*nettrace.Trace
		for i, frac := range []float64{0.25, 0.4, 0.6} {
			bw = append(bw, nettrace.SynthesizeLTE(uint64(100+i), 120, frac*top))
		}
		fx = fixtureT{pano: pano, traces: trs, bw: bw}
	})
	return &fx
}

func baseConfig(f *fixtureT) Config {
	return Config{
		Manifest:         f.pano,
		Sessions:         64,
		Seed:             7,
		ArrivalWindowSec: 20,
		Viewports:        f.traces,
		Bandwidth:        f.bw,
	}
}

func TestRunProducesSaneSummary(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Sessions != 64 || s.Completed != 64 || s.Errored != 0 {
		t.Fatalf("population counts: %+v", s)
	}
	wantChunks := int64(64 * f.pano.NumChunks())
	if s.Chunks != wantChunks {
		t.Errorf("chunks = %d, want %d", s.Chunks, wantChunks)
	}
	if s.Bytes <= 0 {
		t.Errorf("bytes = %d", s.Bytes)
	}
	if s.ScoredSessions != 64 {
		t.Errorf("scored = %d", s.ScoredSessions)
	}
	if s.MeanPSPNR <= 0 || s.MeanPSPNR > 100 {
		t.Errorf("mean PSPNR = %v", s.MeanPSPNR)
	}
	if s.P10PSPNR > s.P50PSPNR || s.P50PSPNR > s.P90PSPNR {
		t.Errorf("quantiles out of order: %v %v %v", s.P10PSPNR, s.P50PSPNR, s.P90PSPNR)
	}
	if s.PeakConcurrency < 1 || s.PeakConcurrency > 64 {
		t.Errorf("peak concurrency = %d", s.PeakConcurrency)
	}
	if s.MeanConcurrency <= 0 || s.MeanConcurrency > float64(s.PeakConcurrency) {
		t.Errorf("mean concurrency = %v (peak %d)", s.MeanConcurrency, s.PeakConcurrency)
	}
	if s.VirtualSec <= cfg.ArrivalWindowSec {
		t.Errorf("virtual_sec = %v, want > arrival window", s.VirtualSec)
	}
	// Every session fetches the manifest plus at least one object per
	// chunk.
	if s.OriginRequests < wantChunks+64 {
		t.Errorf("origin requests = %d", s.OriginRequests)
	}
	if s.OriginPeakRPS <= 0 || s.OriginMeanRPS <= 0 {
		t.Errorf("origin rps: peak %d mean %v", s.OriginPeakRPS, s.OriginMeanRPS)
	}
	if rep.WallSec <= 0 || rep.SessionsPerWallSec <= 0 {
		t.Errorf("wall accounting: %v %v", rep.WallSec, rep.SessionsPerWallSec)
	}
	if rep.Results != nil {
		t.Errorf("Results retained without RetainResults")
	}
}

func TestRetainResults(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	cfg.Sessions = 8
	cfg.RetainResults = true
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 8 {
		t.Fatalf("retained %d results", len(rep.Results))
	}
	for i, r := range rep.Results {
		if r == nil || len(r.Chunks) != f.pano.NumChunks() {
			t.Fatalf("session %d result missing or short: %+v", i, r)
		}
	}
}

func TestScoreEverySamples(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	cfg.ScoreEvery = 4
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.ScoredSessions != 16 {
		t.Errorf("scored = %d, want 16", rep.Summary.ScoredSessions)
	}
	if rep.Summary.MeanPSPNR <= 0 {
		t.Errorf("sampled mean PSPNR = %v", rep.Summary.MeanPSPNR)
	}
}

func TestFaultsSurfaceInSummary(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	cfg.Fault = chaos.Rule{ErrorRate: 0.3, AbortRate: 0.1}
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Retries == 0 {
		t.Errorf("30%% 500s + 10%% aborts produced zero retries")
	}
	clean, err := Run(context.Background(), baseConfig(f))
	if err != nil {
		t.Fatal(err)
	}
	if clean.Summary.Retries != 0 {
		t.Errorf("fault-free run recorded %d retries", clean.Summary.Retries)
	}
}

func TestObsAggregation(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	cfg.Sessions = 16
	cfg.Obs = obs.NewRegistry()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := cfg.Obs.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`pano_swarm_sessions_total{status="ok"} 16`,
		"pano_swarm_chunks_total",
		"pano_swarm_session_pspnr_db_bucket",
		"pano_swarm_peak_concurrency",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	_ = rep
}

func TestCanceledContext(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Completed != 0 {
		t.Errorf("canceled run completed %d sessions", rep.Summary.Completed)
	}
}

func TestConfigValidation(t *testing.T) {
	f := fixture(t)
	cases := []func(*Config){
		func(c *Config) { c.Manifest = nil },
		func(c *Config) { c.Sessions = 0 },
		func(c *Config) { c.Viewports = nil },
		func(c *Config) { c.Bandwidth = nil },
	}
	for i, mod := range cases {
		cfg := baseConfig(f)
		mod(&cfg)
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("case %d: no error", i)
		}
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(10)
	if got := c.NowSec(); got != 10 {
		t.Fatalf("start = %v", got)
	}
	c.Advance(2 * time.Second)
	c.Advance(-5 * time.Second) // ignored
	if got := c.NowSec(); got != 12 {
		t.Fatalf("after advance = %v", got)
	}
	c.AdvanceTo(epoch.Add(5 * time.Second)) // backward: ignored
	if got := c.NowSec(); got != 12 {
		t.Fatalf("after backward AdvanceTo = %v", got)
	}
	if err := c.Sleep(context.Background(), 3*time.Second); err != nil || c.NowSec() != 15 {
		t.Fatalf("sleep: %v at %v", err, c.NowSec())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.Sleep(ctx, time.Second); err == nil {
		t.Fatal("sleep on canceled ctx succeeded")
	}
	// WithTimeout keeps the earliest deadline.
	ctx2, _ := c.WithTimeout(context.Background(), time.Minute)
	ctx3, _ := c.WithTimeout(ctx2, time.Hour)
	dl, ok := virtualDeadline(ctx3)
	if !ok || dl.Sub(c.Now()) != time.Minute {
		t.Fatalf("nested deadline = %v ok=%v", dl.Sub(c.Now()), ok)
	}
}
