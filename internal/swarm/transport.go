package swarm

import (
	"context"
	"fmt"
	"io"
	"syscall"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/nettrace"
)

// errConnReset is the virtual transport's connection-abort error; it
// wraps syscall.ECONNRESET so the client's errorClass buckets it like
// a real killed connection.
var errConnReset = fmt.Errorf("swarm: connection reset: %w", syscall.ECONNRESET)

// netem is one session's logical network: a nettrace link integrated
// in virtual time plus chaos fault draws, implementing
// client.Transport. Every failure mode maps onto the same error the
// HTTP transport would surface (StatusError, unexpected EOF, reset,
// DeadlineExceeded), so the client's retry ladder runs unchanged.
type netem struct {
	m            *manifest.Video
	clock        *VirtualClock
	link         *nettrace.Link
	fault        chaos.Rule
	seed         uint64
	manifestBits float64

	seq        map[uint64]uint64 // per-object request count (fault draw index)
	originReqs int64
	// load buckets origin requests per virtual second. It is owned by
	// the calling worker and shared across its sessions (integer adds
	// commute, so the merged histogram is deterministic regardless of
	// which worker ran which session) — one map per worker instead of
	// one per session keeps a million-session run off the GC's back.
	load map[int32]int64
}

func newNetem(m *manifest.Video, clk *VirtualClock, link *nettrace.Link, fault chaos.Rule, seed uint64, manifestBits float64, load map[int32]int64) *netem {
	return &netem{
		m: m, clock: clk, link: link, fault: fault, seed: seed,
		manifestBits: manifestBits,
		seq:          make(map[uint64]uint64),
		load:         load,
	}
}

// Target implements client.Transport.
func (s *netem) Target() string { return "swarm://netem" }

// hit records one origin request at the current virtual second.
func (s *netem) hit() {
	s.originReqs++
	s.load[int32(s.clock.NowSec())]++
}

// Manifest implements client.Transport: one logical GET over the link.
// Manifest faults are not modelled — swarm sessions always start.
func (s *netem) Manifest(ctx context.Context) (*manifest.Video, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.hit()
	s.clock.AdvanceSec(s.link.DownloadTime(s.clock.NowSec(), s.manifestBits))
	return s.m, nil
}

// tileKey packs a tile identity into the fault draw key (high bit set
// so tile and manifest streams never collide).
func tileKey(k, ti int, l codec.Level) uint64 {
	return 1<<63 | uint64(k)<<24 | uint64(ti)<<4 | uint64(l)
}

// Tile implements client.Transport: resolve the chunk's fault plan for
// this attempt, integrate the link for the transfer time, honour the
// attempt's virtual deadline, and return the delivered bits (exactly
// the manifest's, floats untouched) or the mapped failure.
func (s *netem) Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	key := tileKey(k, ti, l)
	n := s.seq[key]
	s.seq[key] = n + 1
	s.hit()
	o := s.fault.Draw(s.seed, key, n)
	bits := s.m.Chunks[k].Tiles[ti].Bits[l]

	now := s.clock.NowSec()
	cost := o.Latency.Seconds()
	var ferr error
	switch {
	case o.Abort:
		cost += s.link.DownloadTime(now+cost, 0) // header round-trip, then reset
		ferr = errConnReset
	case o.Error500:
		cost += s.link.DownloadTime(now+cost, 0)
		ferr = &client.StatusError{Code: 500}
	default:
		dl := s.link.DownloadTime(now+cost, bits)
		if s.fault.ThrottleBps > 0 {
			if paced := bits/s.fault.ThrottleBps + s.link.RTTSec; paced > dl {
				dl = paced
			}
		}
		if o.Truncate {
			dl *= 0.5 // half the body arrives, then the connection dies
			ferr = io.ErrUnexpectedEOF
		}
		if o.Stall {
			sf := s.fault.StallFor
			if sf <= 0 {
				sf = 250 * time.Millisecond
			}
			dl += sf.Seconds()
		}
		cost += dl
	}

	done := s.clock.Now().Add(time.Duration(cost * float64(time.Second)))
	if dl, ok := virtualDeadline(ctx); ok && done.After(dl) {
		// The attempt deadline expires mid-transfer: the session
		// observes the timeout at the deadline, not at completion.
		s.clock.AdvanceTo(dl)
		return 0, context.DeadlineExceeded
	}
	s.clock.AdvanceTo(done)
	if ferr != nil {
		return 0, ferr
	}
	return bits, nil
}
