package swarm

import (
	"context"
	"fmt"
	"io"
	"syscall"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/nettrace"
)

// errConnReset is the virtual transport's connection-abort error; it
// wraps syscall.ECONNRESET so the client's errorClass buckets it like
// a real killed connection.
var errConnReset = fmt.Errorf("swarm: connection reset: %w", syscall.ECONNRESET)

// netem is one session's logical network: a nettrace link integrated
// in virtual time plus chaos fault draws, implementing
// client.Transport. Every failure mode maps onto the same error the
// HTTP transport would surface (StatusError, unexpected EOF, reset,
// DeadlineExceeded), so the client's retry ladder runs unchanged.
type netem struct {
	m            *manifest.Video
	clock        *VirtualClock
	link         *nettrace.Link
	fault        chaos.Rule
	seed         uint64
	manifestBits float64

	seq        map[uint64]uint64 // per-object request count (fault draw index)
	originReqs int64
	// fleet, when set, shards objects across virtual origins with
	// per-session breakers and ring failover; hedgeDelaySec > 0
	// additionally models fixed-delay hedged transfers (the adaptive p95
	// delay is a wall-clock construct and is not modelled here).
	fleet         *fleetSim
	hedgeDelaySec float64
	// load buckets origin requests per virtual second. It is owned by
	// the calling worker and shared across its sessions (integer adds
	// commute, so the merged histogram is deterministic regardless of
	// which worker ran which session) — one map per worker instead of
	// one per session keeps a million-session run off the GC's back.
	load map[int32]int64
}

func newNetem(m *manifest.Video, clk *VirtualClock, link *nettrace.Link, fault chaos.Rule, seed uint64, manifestBits float64, load map[int32]int64) *netem {
	return &netem{
		m: m, clock: clk, link: link, fault: fault, seed: seed,
		manifestBits: manifestBits,
		seq:          make(map[uint64]uint64),
		load:         load,
	}
}

// Target implements client.Transport.
func (s *netem) Target() string { return "swarm://netem" }

// hit records one origin request at the current virtual second.
func (s *netem) hit() {
	s.originReqs++
	s.load[int32(s.clock.NowSec())]++
}

// Manifest implements client.Transport: one logical GET over the link.
// Manifest faults are not modelled — swarm sessions always start. In
// fleet mode the request lands on the manifest's first live shard in
// ring order (falling back to its owner: manifests survive whole-fleet
// outages through the edge cache, so startup is never blocked).
func (s *netem) Manifest(ctx context.Context) (*manifest.Video, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.fleet != nil {
		shard := s.fleet.place.manifest[0]
		for _, o := range s.fleet.place.manifest {
			if !s.fleet.down(o, s.clock.NowSec()) {
				shard = o
				break
			}
		}
		s.fleet.reqs[shard]++
	}
	s.hit()
	s.clock.AdvanceSec(s.link.DownloadTime(s.clock.NowSec(), s.manifestBits))
	return s.m, nil
}

// tileKey packs a tile identity into the fault draw key (high bit set
// so tile and manifest streams never collide).
func tileKey(k, ti int, l codec.Level) uint64 {
	return 1<<63 | uint64(k)<<24 | uint64(ti)<<4 | uint64(l)
}

// Tile implements client.Transport: resolve the chunk's fault plan for
// this attempt, integrate the link for the transfer time, honour the
// attempt's virtual deadline, and return the delivered bits (exactly
// the manifest's, floats untouched) or the mapped failure. In fleet
// mode the attempt walks the object's ring order instead (fleetTile).
func (s *netem) Tile(ctx context.Context, k, ti int, l codec.Level) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	bits := s.m.Chunks[k].Tiles[ti].Bits[l]
	if s.fleet != nil {
		return s.fleetTile(ctx, k, ti, l, bits)
	}
	s.hit()
	cost, ferr := s.plan(s.draw(k, ti, l), bits)
	if err := s.advanceCost(ctx, cost); err != nil {
		return 0, err
	}
	if ferr != nil {
		return 0, ferr
	}
	return bits, nil
}

// draw consumes the object's next fault-draw index. The counter is
// per-session and advances once per origin attempt, so outcomes are
// deterministic regardless of which shard serves which attempt.
func (s *netem) draw(k, ti int, l codec.Level) chaos.Outcome {
	key := tileKey(k, ti, l)
	n := s.seq[key]
	s.seq[key] = n + 1
	return s.fault.Draw(s.seed, key, n)
}

// plan maps one attempt's fault outcome to its virtual-time cost and
// terminal error, without moving the clock.
func (s *netem) plan(o chaos.Outcome, bits float64) (float64, error) {
	now := s.clock.NowSec()
	cost := o.Latency.Seconds()
	var ferr error
	switch {
	case o.Abort:
		cost += s.link.DownloadTime(now+cost, 0) // header round-trip, then reset
		ferr = errConnReset
	case o.Error500:
		cost += s.link.DownloadTime(now+cost, 0)
		ferr = &client.StatusError{Code: 500}
	default:
		dl := s.link.DownloadTime(now+cost, bits)
		if s.fault.ThrottleBps > 0 {
			if paced := bits/s.fault.ThrottleBps + s.link.RTTSec; paced > dl {
				dl = paced
			}
		}
		if o.Truncate {
			dl *= 0.5 // half the body arrives, then the connection dies
			ferr = io.ErrUnexpectedEOF
		}
		if o.Stall {
			sf := s.fault.StallFor
			if sf <= 0 {
				sf = 250 * time.Millisecond
			}
			dl += sf.Seconds()
		}
		cost += dl
	}
	return cost, ferr
}

// advanceCost moves the clock by cost seconds, honouring the attempt's
// virtual deadline: an over-deadline transfer is observed as a timeout
// at the deadline, not at completion.
func (s *netem) advanceCost(ctx context.Context, cost float64) error {
	done := s.clock.Now().Add(time.Duration(cost * float64(time.Second)))
	if dl, ok := virtualDeadline(ctx); ok && done.After(dl) {
		s.clock.AdvanceTo(dl)
		return context.DeadlineExceeded
	}
	s.clock.AdvanceTo(done)
	return nil
}

// fleetTile walks the object's ring order: breaker-denied shards are
// skipped, a down shard costs a header round-trip and fails over, a
// fault on a live shard fails over too (the fleet ladder, not the
// client's, owns intra-fetch retries), and every step beyond the first
// spends retry budget. A transfer slower than the fixed hedge delay is
// raced against a modelled backup on the next live shard.
func (s *netem) fleetTile(ctx context.Context, k, ti int, l codec.Level, bits float64) (float64, error) {
	fs := s.fleet
	order := fs.place.tileOrder(k, ti, l)
	fs.budget.Earn()
	tried := 0
	var lastErr error
	for oi, shard := range order {
		allowed, probe := fs.brks[shard].Allow(s.clock.Now())
		if !allowed {
			continue
		}
		if tried > 0 && !fs.budget.Spend() {
			if probe {
				// No request will resolve the half-open slot Allow just
				// consumed; swarm breakers have no active prober, so a
				// leaked slot would wedge the shard out for the session.
				fs.brks[shard].ReleaseProbe()
			}
			fs.budgetDenied++
			break
		}
		tried++
		fs.reqs[shard]++
		s.hit()
		if fs.down(shard, s.clock.NowSec()) {
			// Hard outage: the reset costs a header round-trip.
			cost := s.link.DownloadTime(s.clock.NowSec(), 0)
			if err := s.advanceCost(ctx, cost); err != nil {
				fs.brks[shard].Failure(s.clock.Now())
				return 0, err
			}
			fs.brks[shard].Failure(s.clock.Now())
			lastErr = errConnReset
			continue
		}
		cost, ferr := s.plan(s.draw(k, ti, l), bits)
		if ferr == nil {
			cost = s.maybeHedge(order, oi, cost, bits)
		}
		if err := s.advanceCost(ctx, cost); err != nil {
			fs.brks[shard].Failure(s.clock.Now())
			return 0, err
		}
		if ferr != nil {
			fs.brks[shard].Failure(s.clock.Now())
			lastErr = ferr
			continue
		}
		fs.brks[shard].Success(s.clock.Now())
		if tried > 1 {
			fs.failovers++
		}
		return bits, nil
	}
	if lastErr == nil {
		// Every breaker was open (or the budget dried up before any
		// attempt landed): surface as a reset for the client ladder.
		lastErr = errConnReset
	}
	return 0, lastErr
}

// maybeHedge models a fixed-delay hedged transfer analytically: when
// the primary's planned transfer outlasts the hedge delay and a live
// backup shard plus budget exist, the backup's transfer (starting at
// now+delay over the same access link) races it and the faster time
// wins. The loser is cancelled, so it leaves no breaker signal.
func (s *netem) maybeHedge(order []int, oi int, cost, bits float64) float64 {
	fs := s.fleet
	if s.hedgeDelaySec <= 0 || cost <= s.hedgeDelaySec {
		return cost
	}
	backup := -1
	now := s.clock.Now()
	for i := oi + 1; i < len(order); i++ {
		if fs.brks[order[i]].Available(now) && !fs.down(order[i], s.clock.NowSec()) {
			backup = order[i]
			break
		}
	}
	if backup < 0 {
		return cost
	}
	if !fs.budget.Spend() {
		fs.budgetDenied++
		return cost
	}
	fs.hedges++
	fs.reqs[backup]++
	s.hit()
	if hcost := s.hedgeDelaySec + s.link.DownloadTime(s.clock.NowSec()+s.hedgeDelaySec, bits); hcost < cost {
		fs.hedgeWins++
		fs.brks[backup].Success(now)
		return hcost
	}
	return cost
}
