package swarm

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"pano/internal/chaos"
	"pano/internal/fleet"
)

// summaryJSON runs the swarm and marshals the Summary — the part of the
// Report that must be a pure function of Config (wall-clock figures
// live outside it).
func summaryJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep.Summary)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestDeterminismAcrossRunsAndWorkers is the lockdown: the same seed
// must produce byte-identical summaries run-to-run and at every worker
// count, and a different seed must not. The suite runs under -race in
// `make swarm`, so any cross-session sharing that would break
// determinism also trips the race detector here.
func TestDeterminismAcrossRunsAndWorkers(t *testing.T) {
	f := fixture(t)
	base := baseConfig(f)
	base.Sessions = 96
	// Exercise the full machinery: faults, backoff jitter, sampled
	// scoring.
	base.Fault = chaos.Rule{ErrorRate: 0.05, TruncateRate: 0.02, Latency: 20 * time.Millisecond, Jitter: 10 * time.Millisecond}
	base.ScoreEvery = 3

	// Fleet mode layers ring failover, per-session breakers, a mid-run
	// shard outage, and modelled hedging on top — all of which must stay
	// just as deterministic.
	fleetCfg := base
	fleetCfg.Fleet = &FleetConfig{
		Origins: 4,
		Outages: []chaos.Down{{After: 5 * time.Second, For: 15 * time.Second, Every: 30 * time.Second}},
		Breaker: fleet.BreakerConfig{FailureThreshold: 2, OpenFor: 2 * time.Second},
	}
	fleetCfg.Fetch.HedgeDelay = 100 * time.Millisecond

	for name, cfg := range map[string]Config{"single-origin": base, "fleet": fleetCfg} {
		t.Run(name, func(t *testing.T) {
			workers := []int{1, 4, runtime.GOMAXPROCS(0)}
			var ref []byte
			for _, w := range workers {
				c := cfg
				c.Workers = w
				first := summaryJSON(t, c)
				second := summaryJSON(t, c)
				if !bytes.Equal(first, second) {
					t.Fatalf("workers=%d: two identical runs differ:\n%s\n%s", w, first, second)
				}
				if ref == nil {
					ref = first
				} else if !bytes.Equal(ref, first) {
					t.Fatalf("workers=%d differs from workers=%d:\n%s\n%s", w, workers[0], first, ref)
				}
			}

			diff := cfg
			diff.Seed = cfg.Seed + 1
			if bytes.Equal(ref, summaryJSON(t, diff)) {
				t.Fatal("different seeds produced identical summaries")
			}
		})
	}
}

// TestSessionParamsPure guards the root of determinism: per-session
// parameters depend only on (Seed, id), never on execution order.
func TestSessionParamsPure(t *testing.T) {
	f := fixture(t)
	cfg := baseConfig(f)
	if err := cfg.fillDefaults(); err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 100; id++ {
		a, b := sessionParams(&cfg, id), sessionParams(&cfg, id)
		if a != b {
			t.Fatalf("id %d: %+v != %+v", id, a, b)
		}
		if a.arrival < 0 || a.arrival >= cfg.ArrivalWindowSec {
			t.Fatalf("id %d: arrival %v outside [0,%v)", id, a.arrival, cfg.ArrivalWindowSec)
		}
	}
	// Neighbouring ids draw decorrelated streams.
	if sessionParams(&cfg, 1) == sessionParams(&cfg, 2) {
		t.Fatal("adjacent sessions drew identical params")
	}
}
