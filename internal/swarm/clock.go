package swarm

import (
	"context"
	"time"
)

// epoch anchors virtual time. It is a constant (not time.Now) so every
// run of the same configuration produces byte-identical timelines.
var epoch = time.Unix(0, 0).UTC()

// VirtualClock implements client.Clock in discrete-event time: Sleep
// advances instead of blocking, WithTimeout installs a logical
// deadline the virtual transport honours, and Now derives from a fixed
// epoch plus the session's accumulated offset. Each running session
// owns exactly one goroutine, so the clock is deliberately unlocked —
// sharing one VirtualClock across goroutines is a bug.
type VirtualClock struct {
	off time.Duration // virtual time since epoch
}

// NewVirtualClock returns a clock positioned startSec virtual seconds
// past the global epoch (the session's arrival time).
func NewVirtualClock(startSec float64) *VirtualClock {
	return &VirtualClock{off: time.Duration(startSec * float64(time.Second))}
}

// Now implements client.Clock.
func (c *VirtualClock) Now() time.Time { return epoch.Add(c.off) }

// Since implements client.Clock.
func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// NowSec returns the current virtual time in seconds past the epoch —
// the time axis shared by bandwidth traces and origin-load buckets.
func (c *VirtualClock) NowSec() float64 { return c.off.Seconds() }

// Advance moves the clock forward by d (negative d is ignored).
func (c *VirtualClock) Advance(d time.Duration) {
	if d > 0 {
		c.off += d
	}
}

// AdvanceSec moves the clock forward by s seconds.
func (c *VirtualClock) AdvanceSec(s float64) {
	c.Advance(time.Duration(s * float64(time.Second)))
}

// AdvanceTo moves the clock forward to t (never backward).
func (c *VirtualClock) AdvanceTo(t time.Time) {
	if d := t.Sub(epoch); d > c.off {
		c.off = d
	}
}

// Sleep implements client.Clock: it advances virtual time instantly.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.Advance(d)
	return nil
}

// deadlineKey carries the earliest virtual deadline through a context.
type deadlineKey struct{}

// WithTimeout implements client.Clock: the returned context carries a
// virtual deadline (the earliest of d from now and any deadline
// already installed) that the virtual transport checks before
// advancing past it. The cancel func is a no-op — virtual deadlines
// hold no resources.
func (c *VirtualClock) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	dl := c.Now().Add(d)
	if cur, ok := virtualDeadline(ctx); ok && cur.Before(dl) {
		dl = cur
	}
	return context.WithValue(ctx, deadlineKey{}, dl), func() {}
}

// virtualDeadline returns the context's virtual deadline, if any.
func virtualDeadline(ctx context.Context) (time.Time, bool) {
	dl, ok := ctx.Value(deadlineKey{}).(time.Time)
	return dl, ok
}
