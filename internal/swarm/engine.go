// Package swarm is a discrete-event population simulator: it drives
// the real client session loop (client.RunSession — estimate → MPC →
// assign → fetch → stitch → QoE) for 100k–1M concurrent viewers in one
// process, in virtual time. Each session gets a VirtualClock, a netem
// transport (an internal/nettrace link integrated in virtual time plus
// internal/chaos fault draws), an internal/viewport head-motion trace,
// and a splitmix64-seeded RNG derived purely from (Seed, session id) —
// so results are byte-identical across runs and worker counts, which
// is what makes deep testing of the loop tractable (and what the
// determinism suite locks down).
//
// The scheduler is a single goroutine pool fed from a priority queue
// of timed arrival events; sessions are causally independent (virtual
// time is per-session), so each runs to completion on one worker and
// the per-session results are folded in session-id order into a
// deterministic Summary, per-second origin-load series, and concurrency
// curve.
package swarm

import (
	"container/heap"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"pano/internal/chaos"
	"pano/internal/client"
	"pano/internal/jnd"
	"pano/internal/manifest"
	"pano/internal/mathx"
	"pano/internal/nettrace"
	"pano/internal/obs"
	"pano/internal/parallel"
	"pano/internal/player"
	"pano/internal/quality"
	"pano/internal/viewport"
)

// Config describes one swarm run.
type Config struct {
	// Manifest is the encoded video every session streams.
	Manifest *manifest.Video
	// Sessions is the population size.
	Sessions int
	// Workers sizes the goroutine pool (default: parallel.Workers()).
	// Results are identical at every worker count.
	Workers int
	// Seed drives everything: per-session arrival, trace picks, fault
	// draws, and fetch jitter are pure functions of (Seed, session id).
	Seed uint64
	// ArrivalWindowSec spreads session arrivals uniformly over [0, w)
	// virtual seconds (0 = everyone arrives at t=0).
	ArrivalWindowSec float64
	// Viewports is the pool of head-motion traces sessions draw from.
	Viewports []*viewport.Trace
	// Bandwidth is the pool of throughput traces sessions draw from.
	Bandwidth []*nettrace.Trace
	// RTTSec is the per-object round-trip time (0 selects the link
	// default of 50 ms; negative disables the RTT entirely).
	RTTSec float64
	// Fault injects transport faults per tile request, with the same
	// seeded draw streams as the chaos HTTP middleware.
	Fault chaos.Rule
	// Fleet, when set, shards objects across virtual origins with
	// per-session breakers, ring failover, and whole-shard outage
	// schedules (see FleetConfig). nil keeps the single-origin model.
	Fleet *FleetConfig
	// Fetch tunes the client's retry ladder (zero = defaults).
	Fetch client.FetchPolicy
	// Planner decides per-tile levels (default: the greedy Pano
	// planner — the pruned DP is ~100x slower per chunk, which matters
	// at a million sessions).
	Planner player.Planner
	// MaxChunks bounds each session's length (0 = whole video).
	MaxChunks int
	// BufferTargetSec is the MPC target (default 2); MaxBufferSec caps
	// prefetch (default target+1, sim parity).
	BufferTargetSec float64
	MaxBufferSec    float64
	// MaxRateBps caps the bandwidth estimate fed to the controller
	// (0 = no cap).
	MaxRateBps float64
	// ScoreEvery samples ground-truth PSPNR scoring: sessions with
	// id % ScoreEvery == 0 are scored (default 1 = all). Scoring costs
	// about as much CPU as the session itself, so large populations
	// sample it.
	ScoreEvery int
	// RetainResults keeps every session's full StreamResult on the
	// Report — for tests and small populations only (memory scales
	// with Sessions).
	RetainResults bool
	// Obs, when set, receives the aggregated population QoE after the
	// run (pano_swarm_* counters, gauges, and the session-PSPNR
	// histogram); nil disables it.
	Obs *obs.Registry
}

func (c *Config) fillDefaults() error {
	if c.Manifest == nil {
		return fmt.Errorf("swarm: Config.Manifest is required")
	}
	if c.Sessions <= 0 {
		return fmt.Errorf("swarm: Config.Sessions must be positive")
	}
	if len(c.Viewports) == 0 {
		return fmt.Errorf("swarm: Config.Viewports must not be empty")
	}
	if len(c.Bandwidth) == 0 {
		return fmt.Errorf("swarm: Config.Bandwidth must not be empty")
	}
	if c.Workers <= 0 {
		c.Workers = parallel.Workers()
	}
	if c.BufferTargetSec == 0 {
		c.BufferTargetSec = 2
	}
	if c.MaxBufferSec == 0 {
		c.MaxBufferSec = c.BufferTargetSec + 1
	}
	switch {
	case c.RTTSec == 0:
		c.RTTSec = 0.05
	case c.RTTSec < 0:
		c.RTTSec = 0
	}
	if c.ScoreEvery <= 0 {
		c.ScoreEvery = 1
	}
	if c.Planner == nil {
		p := player.NewPanoPlanner()
		p.Greedy = true
		c.Planner = p
	}
	if c.Fleet != nil {
		if c.Fleet.Origins <= 0 {
			return fmt.Errorf("swarm: Config.Fleet.Origins must be positive")
		}
		if len(c.Fleet.Outages) > c.Fleet.Origins {
			return fmt.Errorf("swarm: Config.Fleet.Outages has %d entries for %d origins",
				len(c.Fleet.Outages), c.Fleet.Origins)
		}
		for i, d := range c.Fleet.Outages {
			if err := d.Validate(); err != nil {
				return fmt.Errorf("swarm: Config.Fleet.Outages[%d]: %w", i, err)
			}
		}
	}
	return nil
}

// Summary is the deterministic population rollup: it contains only
// virtual-time and logical quantities, so the same Config yields
// byte-identical JSON at any worker count on any machine. Wall-clock
// figures live on Report.
type Summary struct {
	Sessions  int   `json:"sessions"`
	Completed int   `json:"completed"`
	Errored   int   `json:"errored"`
	Chunks    int64 `json:"chunks"`
	Bytes     int64 `json:"bytes"`
	// ScoredSessions sessions were scored against ground truth
	// (Config.ScoreEvery); the PSPNR stats below are over them.
	ScoredSessions int     `json:"scored_sessions"`
	MeanPSPNR      float64 `json:"mean_pspnr_db"`
	P10PSPNR       float64 `json:"p10_pspnr_db"`
	P50PSPNR       float64 `json:"p50_pspnr_db"`
	P90PSPNR       float64 `json:"p90_pspnr_db"`
	// MeanStartupSec and the rebuffer figures are over completed
	// sessions; RebufferRatioPct is total stall over total watch+stall.
	MeanStartupSec   float64 `json:"mean_startup_sec"`
	MeanRebufferSec  float64 `json:"mean_rebuffer_sec"`
	RebufferRatioPct float64 `json:"rebuffer_ratio_pct"`
	Retries          int64   `json:"retries"`
	DegradedTiles    int64   `json:"degraded_tiles"`
	SkippedTiles     int64   `json:"skipped_tiles"`
	// PeakConcurrency and MeanConcurrency describe the population's
	// overlap in virtual time; VirtualSec is the timeline's extent.
	PeakConcurrency int     `json:"peak_concurrency"`
	MeanConcurrency float64 `json:"mean_concurrency"`
	VirtualSec      float64 `json:"virtual_sec"`
	// Origin load: every tile/manifest request of every session,
	// bucketed per virtual second.
	OriginRequests int64   `json:"origin_requests"`
	OriginPeakRPS  int64   `json:"origin_peak_rps"`
	OriginMeanRPS  float64 `json:"origin_mean_rps"`
	// Fleet-mode rollups (Config.Fleet); all omitted in single-origin
	// runs so their JSON — and the committed swarm baselines — is
	// unchanged.
	FleetOrigins      int     `json:"fleet_origins,omitempty"`
	FleetFailovers    int64   `json:"fleet_failovers,omitempty"`
	FleetHedges       int64   `json:"fleet_hedges,omitempty"`
	FleetHedgeWins    int64   `json:"fleet_hedge_wins,omitempty"`
	FleetBudgetDenied int64   `json:"fleet_budget_denied,omitempty"`
	FleetShardLoad    []int64 `json:"fleet_shard_requests,omitempty"`
}

// Report is one swarm run's full outcome: the deterministic Summary
// plus the machine-dependent wall-clock figures.
type Report struct {
	Summary Summary `json:"summary"`
	Workers int     `json:"workers"`
	WallSec float64 `json:"wall_sec"`
	// SessionsPerWallSec is the simulation rate.
	SessionsPerWallSec float64 `json:"sessions_per_wall_sec"`
	// Results holds each session's StreamResult (session id order)
	// when Config.RetainResults was set; nil otherwise.
	Results []*client.StreamResult `json:"-"`
}

// params are one session's derived parameters — a pure function of
// (Config.Seed, id), so execution order never matters.
type params struct {
	arrival   float64
	vp, bw    int
	faultSeed uint64
	fetchSeed uint64
}

func sessionParams(cfg *Config, id int) params {
	rng := mathx.NewRNG(cfg.Seed + uint64(id)*0x9e3779b97f4a7c15 + 0xa11ce)
	var p params
	u := rng.Float64() // always drawn, so the stream is stable
	if cfg.ArrivalWindowSec > 0 {
		p.arrival = u * cfg.ArrivalWindowSec
	}
	p.vp = rng.Intn(len(cfg.Viewports))
	p.bw = rng.Intn(len(cfg.Bandwidth))
	p.faultSeed = rng.Uint64()
	p.fetchSeed = rng.Uint64()
	return p
}

// sessionStats is one session's contribution to the fold.
type sessionStats struct {
	ok          bool
	scored      bool
	chunks      int
	bytes       int64
	rebufferSec float64
	startupSec  float64
	meanPSPNR   float64
	retries     int
	degraded    int
	skipped     int
	arrival     float64
	endSec      float64
	originReqs  int64
	result      *client.StreamResult
	// fleet-mode contributions (nil/zero in single-origin runs)
	fleetReqs    []int64
	failovers    int64
	hedges       int64
	hedgeWins    int64
	budgetDenied int64
}

// Run simulates the population and returns its Report. Sessions are
// dispatched in arrival order from the event queue to Workers
// goroutines; per-session outcomes land in indexed slots and are
// folded in session-id order, so the Summary is identical for any
// worker count. ctx cancellation stops the run (canceled sessions
// count as errored).
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	wallStart := time.Now()

	manifestBits := float64(0)
	if raw, err := json.Marshal(cfg.Manifest); err == nil {
		manifestBits = float64(len(raw) * 8)
	}
	prof := jnd.Default()
	var place *placement
	if cfg.Fleet != nil {
		// One immutable shard map shared by every session.
		place = newPlacement(cfg.Manifest, cfg.Fleet)
	}

	// Arrival schedule: the priority queue orders the dispatch feed.
	q := make(eventQueue, 0, cfg.Sessions)
	for id := 0; id < cfg.Sessions; id++ {
		q = append(q, event{at: sessionParams(&cfg, id).arrival, id: id, delta: +1})
	}
	heap.Init(&q)
	feed := make(chan int, 4*cfg.Workers)
	go func() {
		defer close(feed)
		for q.Len() > 0 {
			select {
			case feed <- q.pop().id:
			case <-ctx.Done():
				return
			}
		}
	}()

	slots := make([]sessionStats, cfg.Sessions)
	loads := make([]map[int32]int64, cfg.Workers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		loads[w] = make(map[int32]int64)
		go func(load map[int32]int64) {
			defer wg.Done()
			for id := range feed {
				slots[id] = runSession(ctx, &cfg, id, manifestBits, prof, load, place)
			}
		}(loads[w])
	}
	wg.Wait()

	rep := fold(&cfg, slots, loads)
	rep.Workers = cfg.Workers
	rep.WallSec = time.Since(wallStart).Seconds()
	if rep.WallSec > 0 {
		rep.SessionsPerWallSec = float64(cfg.Sessions) / rep.WallSec
	}
	aggregate(cfg.Obs, &rep.Summary, slots)
	return rep, nil
}

// runSession drives one full virtual session and, when sampled, scores
// the delivered frames against the ground-truth viewpoint trace.
func runSession(ctx context.Context, cfg *Config, id int, manifestBits float64, prof *jnd.Profile, load map[int32]int64, place *placement) sessionStats {
	p := sessionParams(cfg, id)
	vp := cfg.Viewports[p.vp]
	clk := NewVirtualClock(p.arrival)
	link := &nettrace.Link{Trace: cfg.Bandwidth[p.bw], RTTSec: cfg.RTTSec}
	tp := newNetem(cfg.Manifest, clk, link, cfg.Fault, p.faultSeed, manifestBits, load)
	pol := cfg.Fetch
	pol.Seed = p.fetchSeed
	if cfg.Fleet != nil {
		def := pol.WithDefaults()
		tp.fleet = newFleetSim(cfg.Fleet, place, p.faultSeed,
			def.HedgeBudgetRatio, def.HedgeBudgetBurst)
		tp.hedgeDelaySec = def.HedgeDelay.Seconds() // <= 0: hedging not modelled
	}

	res, err := client.RunSession(ctx, tp, vp, client.StreamConfig{
		BufferTargetSec: cfg.BufferTargetSec,
		MaxBufferSec:    cfg.MaxBufferSec,
		SimModel:        true,
		Planner:         cfg.Planner,
		MaxChunks:       cfg.MaxChunks,
		MaxRateBps:      cfg.MaxRateBps,
		Fetch:           pol,
		Clock:           clk,
	})

	st := sessionStats{
		arrival:    p.arrival,
		endSec:     clk.NowSec(),
		originReqs: tp.originReqs,
	}
	if tp.fleet != nil {
		st.fleetReqs = tp.fleet.reqs
		st.failovers = tp.fleet.failovers
		st.hedges = tp.fleet.hedges
		st.hedgeWins = tp.fleet.hedgeWins
		st.budgetDenied = tp.fleet.budgetDenied
	}
	if err != nil {
		return st
	}
	st.ok = true
	st.chunks = len(res.Chunks)
	st.bytes = int64(res.TotalBytes)
	st.rebufferSec = res.RebufferSec
	st.startupSec = res.StartupDelay.Seconds()
	st.retries = res.TotalRetries
	st.degraded = res.DegradedTiles
	st.skipped = res.SkippedTiles
	if cfg.RetainResults {
		st.result = res
	}
	if id%cfg.ScoreEvery == 0 && len(res.Chunks) > 0 {
		// Ground-truth QoE: re-score what was actually delivered
		// (degraded levels, stale tiles) against the real head
		// trajectory — the population analogue of sim.Run's scoring.
		est := player.NewEstimator()
		var sum float64
		for _, cr := range res.Chunks {
			actual := est.ActualView(cfg.Manifest, vp, cr.Chunk)
			sum += player.FramePSPNRDegraded(cfg.Manifest, cr.Chunk, cr.Levels, cr.Stale, actual, prof)
		}
		st.meanPSPNR = sum / float64(len(res.Chunks))
		st.scored = true
	}
	return st
}

// fold reduces the per-session slots — in session-id order, so float
// accumulation is deterministic — into the Report.
func fold(cfg *Config, slots []sessionStats, loads []map[int32]int64) *Report {
	s := Summary{Sessions: len(slots)}
	if cfg.Fleet != nil {
		s.FleetOrigins = cfg.Fleet.Origins
		s.FleetShardLoad = make([]int64, cfg.Fleet.Origins)
	}
	var stallSum, watchSum, startupSum float64
	var pspnr []float64
	load := make(map[int32]int64)
	for _, wl := range loads {
		for sec, n := range wl {
			load[sec] += n
		}
	}
	merge := make(eventQueue, 0, 2*len(slots))
	var retained []*client.StreamResult
	if cfg.RetainResults {
		retained = make([]*client.StreamResult, len(slots))
	}
	for id := range slots {
		st := &slots[id]
		if st.ok {
			s.Completed++
		} else {
			s.Errored++
		}
		s.Chunks += int64(st.chunks)
		s.Bytes += st.bytes
		s.Retries += int64(st.retries)
		s.DegradedTiles += int64(st.degraded)
		s.SkippedTiles += int64(st.skipped)
		s.OriginRequests += st.originReqs
		s.FleetFailovers += st.failovers
		s.FleetHedges += st.hedges
		s.FleetHedgeWins += st.hedgeWins
		s.FleetBudgetDenied += st.budgetDenied
		for o, n := range st.fleetReqs {
			s.FleetShardLoad[o] += n
		}
		stallSum += st.rebufferSec
		watchSum += float64(st.chunks) * cfg.Manifest.ChunkSec
		startupSum += st.startupSec
		if st.scored {
			pspnr = append(pspnr, st.meanPSPNR)
		}
		if st.endSec > s.VirtualSec {
			s.VirtualSec = st.endSec
		}
		merge = append(merge, event{at: st.arrival, id: id, delta: +1},
			event{at: st.endSec, id: id, delta: -1})
		if retained != nil {
			retained[id] = st.result
		}
	}

	s.ScoredSessions = len(pspnr)
	if len(pspnr) > 0 {
		var sum float64
		for _, v := range pspnr {
			sum += v
		}
		s.MeanPSPNR = sum / float64(len(pspnr))
		sorted := append([]float64(nil), pspnr...)
		sort.Float64s(sorted)
		s.P10PSPNR = quantile(sorted, 0.10)
		s.P50PSPNR = quantile(sorted, 0.50)
		s.P90PSPNR = quantile(sorted, 0.90)
	}
	if s.Completed > 0 {
		s.MeanStartupSec = startupSum / float64(s.Completed)
		s.MeanRebufferSec = stallSum / float64(s.Completed)
	}
	if watchSum+stallSum > 0 {
		s.RebufferRatioPct = 100 * stallSum / (watchSum + stallSum)
	}

	// Concurrency curve from the event heap: +1 at arrival, -1 at end.
	heap.Init(&merge)
	var cur int
	var area, last float64
	for merge.Len() > 0 {
		e := merge.pop()
		area += float64(cur) * (e.at - last)
		last = e.at
		cur += e.delta
		if cur > s.PeakConcurrency {
			s.PeakConcurrency = cur
		}
	}
	if s.VirtualSec > 0 {
		s.MeanConcurrency = area / s.VirtualSec
		s.OriginMeanRPS = float64(s.OriginRequests) / s.VirtualSec
	}
	for _, n := range load {
		if n > s.OriginPeakRPS {
			s.OriginPeakRPS = n
		}
	}
	return &Report{Summary: s, Results: retained}
}

// quantile reads a sorted slice at q in [0, 1] (nearest rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Round(q * float64(len(sorted)-1)))
	return sorted[i]
}

// aggregate publishes the population rollup into an obs registry (the
// same registry family the HTTP stack feeds), so telemetry samplers
// and dashboards read swarm populations like any other source.
func aggregate(reg *obs.Registry, s *Summary, slots []sessionStats) {
	if reg == nil {
		return
	}
	reg.Counter("pano_swarm_sessions_total", "swarm sessions by terminal status",
		obs.L("status", "ok")).Add(float64(s.Completed))
	reg.Counter("pano_swarm_sessions_total", "swarm sessions by terminal status",
		obs.L("status", "error")).Add(float64(s.Errored))
	reg.Counter("pano_swarm_chunks_total", "chunks streamed by the swarm").Add(float64(s.Chunks))
	reg.Counter("pano_swarm_bytes_total", "media bytes downloaded by the swarm").Add(float64(s.Bytes))
	reg.Counter("pano_swarm_rebuffer_seconds_total", "total stall seconds across the swarm").
		Add(s.MeanRebufferSec * float64(s.Completed))
	reg.Counter("pano_swarm_retries_total", "failed fetch attempts across the swarm").Add(float64(s.Retries))
	reg.Counter("pano_swarm_tiles_skipped_total", "tiles lost after the full ladder").Add(float64(s.SkippedTiles))
	h := reg.Histogram("pano_swarm_session_pspnr_db",
		"per-session ground-truth viewport PSPNR", quality.PSPNRBuckets)
	for i := range slots {
		if slots[i].scored {
			h.Observe(slots[i].meanPSPNR)
		}
	}
	if s.FleetOrigins > 0 {
		reg.Counter("pano_swarm_fleet_failovers_total",
			"objects answered by a shard beyond the first attempt").Add(float64(s.FleetFailovers))
		reg.Counter("pano_swarm_fleet_hedges_total",
			"hedged backup transfers modelled across the swarm").Add(float64(s.FleetHedges))
		reg.Counter("pano_swarm_fleet_hedge_wins_total",
			"modelled hedges that beat the primary transfer").Add(float64(s.FleetHedgeWins))
		reg.Counter("pano_swarm_fleet_budget_denied_total",
			"fleet ladder steps suppressed by a dry retry budget").Add(float64(s.FleetBudgetDenied))
		for o, n := range s.FleetShardLoad {
			reg.Counter("pano_swarm_fleet_requests_total",
				"swarm origin requests by fleet shard",
				obs.L("origin", fmt.Sprintf("%d", o))).Add(float64(n))
		}
	}
	reg.Gauge("pano_swarm_peak_concurrency", "peak concurrent sessions in virtual time").
		Set(float64(s.PeakConcurrency))
	reg.Gauge("pano_swarm_origin_peak_rps", "peak origin requests per virtual second").
		Set(float64(s.OriginPeakRPS))
	reg.Gauge("pano_swarm_virtual_sec", "virtual timeline extent of the last run").Set(s.VirtualSec)
}
