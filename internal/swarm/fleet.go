package swarm

import (
	"strconv"
	"time"

	"pano/internal/chaos"
	"pano/internal/codec"
	"pano/internal/fleet"
	"pano/internal/manifest"
	"pano/internal/server"
)

// FleetConfig turns the swarm's single logical origin into a sharded
// fleet: objects place onto Origins virtual shards via the same
// consistent-hash ring the edge uses (internal/fleet), per-shard
// chaos.Down schedules take shards out in virtual time, and every
// session runs its own per-shard circuit breakers, ring failover, and
// token-bucket retry budget — the client-side view of the fault-tolerant
// delivery layer, replayed deterministically at population scale.
type FleetConfig struct {
	// Origins is the shard count (>= 1; failover needs >= 2).
	Origins int
	// Vnodes is the ring's virtual-node count per shard (0 = the fleet
	// default).
	Vnodes int
	// Outages schedules whole-shard outages: Outages[i] is shard i's
	// chaos.Down window, evaluated against the session's virtual clock
	// (virtual t=0 is the swarm epoch, shared by all sessions). Shorter
	// than Origins is fine — missing entries never go down.
	Outages []chaos.Down
	// Breaker tunes the per-session per-shard breakers (zero = fleet
	// defaults).
	Breaker fleet.BreakerConfig
}

// placement is the run-wide, immutable shard map: the ring order of
// every (chunk, tile, level) object and of the manifest, precomputed
// once so the per-request hot path is a slice lookup, not a hash.
type placement struct {
	n        int
	manifest []int
	tiles    [][]int // flat (k, ti, l) index -> ring order
	tilesPer int     // tiles per chunk (uniform grid)
}

func newPlacement(m *manifest.Video, fc *FleetConfig) *placement {
	names := make([]string, fc.Origins)
	for i := range names {
		names[i] = shardName(i)
	}
	ring := fleet.NewRing(names, fc.Vnodes)
	p := &placement{n: fc.Origins}
	p.manifest = ring.Order(ring.Key("/manifest.json"))
	if m.NumChunks() > 0 {
		p.tilesPer = len(m.Chunks[0].Tiles)
	}
	p.tiles = make([][]int, m.NumChunks()*p.tilesPer*codec.NumLevels)
	for k := range m.Chunks {
		for ti := range m.Chunks[k].Tiles {
			for l := 0; l < codec.NumLevels; l++ {
				key := ring.Key(server.TilePath(k, ti, codec.Level(l)))
				p.tiles[p.index(k, ti, codec.Level(l))] = ring.Order(key)
			}
		}
	}
	return p
}

func shardName(i int) string { return "shard-" + strconv.Itoa(i) }

func (p *placement) index(k, ti int, l codec.Level) int {
	return (k*p.tilesPer+ti)*codec.NumLevels + int(l)
}

func (p *placement) tileOrder(k, ti int, l codec.Level) []int {
	return p.tiles[p.index(k, ti, l)]
}

// fleetSim is one session's client-side fleet state: breakers, budget,
// and the counters that fold into the Summary. All of it is
// per-session, so sessions stay causally independent and the swarm's
// worker-count determinism holds.
type fleetSim struct {
	cfg    *FleetConfig
	place  *placement
	brks   []*fleet.Breaker
	budget *fleet.Budget

	reqs         []int64 // per-shard requests issued
	failovers    int64   // objects answered by a shard beyond the first attempt
	hedges       int64   // hedged backup transfers modelled
	hedgeWins    int64   // hedges that beat the primary
	budgetDenied int64   // ladder steps suppressed by a dry budget
}

func newFleetSim(fc *FleetConfig, place *placement, seed uint64, ratio, burst float64) *fleetSim {
	fs := &fleetSim{
		cfg:    fc,
		place:  place,
		budget: fleet.NewBudget(ratio, burst),
		reqs:   make([]int64, fc.Origins),
	}
	for i := 0; i < fc.Origins; i++ {
		fs.brks = append(fs.brks, fleet.NewBreaker(fc.Breaker, seed^0xf1ee7^uint64(i)*0x9e3779b97f4a7c15))
	}
	return fs
}

// down reports whether shard o is inside its outage window at virtual
// time t (seconds since the swarm epoch).
func (fs *fleetSim) down(o int, tSec float64) bool {
	if o >= len(fs.cfg.Outages) {
		return false
	}
	return fs.cfg.Outages[o].At(time.Duration(tSec * float64(time.Second)))
}
