package swarm

import (
	"context"
	"math"
	"testing"
	"time"

	"pano/internal/client"
	"pano/internal/jnd"
	"pano/internal/nettrace"
	"pano/internal/player"
	"pano/internal/sim"
)

// TestOneSessionMatchesSim is the equivalence property: a 1-session
// swarm over a flat-bandwidth trace must reproduce sim.Run's per-chunk
// level decisions exactly and its per-chunk PSPNR within 1e-9. This
// pins the extracted client loop (SimModel decisions + virtual clock +
// netem link) to the simulator's analytical model: the only remaining
// divergence is nanosecond quantization of durations, which a flat
// trace keeps far below the tolerance.
func TestOneSessionMatchesSim(t *testing.T) {
	f := fixture(t)
	m := f.pano
	tr := f.traces[0]

	// Flat link at 40% of the top encoding rate, zero RTT: download
	// time is then linear in bits, so the client's per-tile transfers
	// sum to exactly the simulator's one-shot per-chunk transfer.
	flat := &nettrace.Trace{Mbps: make([]float64, 60)}
	for i := range flat.Mbps {
		flat.Mbps[i] = 0.4 * m.ChunkBits(0, 0) / m.ChunkSec / 1e6
	}
	link := &nettrace.Link{Trace: flat, RTTSec: 0}

	simRes, err := sim.Run(m, tr, link, player.NewPanoPlanner(), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}

	swarmCfg := Config{
		Manifest:      m,
		Sessions:      1,
		Workers:       1,
		Seed:          42,
		Viewports:     f.traces[:1],
		Bandwidth:     []*nettrace.Trace{flat},
		RTTSec:        -1, // zero RTT, matching the sim link
		Planner:       player.NewPanoPlanner(),
		RetainResults: true,
		Fetch: client.FetchPolicy{
			// Attempt deadlines don't exist in sim.Run's model; push
			// them out of reach so the ladder never intervenes.
			AttemptTimeout:    time.Hour,
			MinAttemptTimeout: time.Hour,
		},
	}
	rep, err := Run(context.Background(), swarmCfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Completed != 1 || len(rep.Results) != 1 {
		t.Fatalf("swarm session failed: %+v", rep.Summary)
	}
	res := rep.Results[0]
	if len(res.Chunks) != len(simRes.PerChunkAlloc) {
		t.Fatalf("chunk counts: swarm %d, sim %d", len(res.Chunks), len(simRes.PerChunkAlloc))
	}

	prof := jnd.Default()
	est := player.NewEstimator()
	for k, cr := range res.Chunks {
		want := simRes.PerChunkAlloc[k]
		if len(cr.Levels) != len(want) {
			t.Fatalf("chunk %d: tile counts %d vs %d", k, len(cr.Levels), len(want))
		}
		for ti := range want {
			if cr.Levels[ti] != want[ti] {
				t.Fatalf("chunk %d tile %d: swarm level %d, sim level %d",
					k, ti, cr.Levels[ti], want[ti])
			}
		}
		actual := est.ActualView(m, tr, k)
		got := player.FramePSPNRDegraded(m, k, cr.Levels, cr.Stale, actual, prof)
		if diff := math.Abs(got - simRes.PerChunkPSPNR[k]); diff > 1e-9 {
			t.Fatalf("chunk %d: PSPNR %v vs sim %v (diff %g)", k, got, simRes.PerChunkPSPNR[k], diff)
		}
	}
}
