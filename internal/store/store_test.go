package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestPutGetRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("hello, tiles")
	digest, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(payload)
	if want := hex.EncodeToString(sum[:]); digest != want {
		t.Fatalf("digest %q, want %q", digest, want)
	}
	got, err := s.Get(digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get returned %q, want %q", got, payload)
	}
	rc, err := s.Open(digest)
	if err != nil {
		t.Fatal(err)
	}
	rc.Close()
	if !s.Has(digest) {
		t.Fatal("Has(digest) = false after Put")
	}
}

func TestPutDedup(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d1, err := s.Put([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.Put([]byte("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("dedup digests differ: %q vs %q", d1, d2)
	}
	if st := s.Stats(); st.Blobs != 1 {
		t.Fatalf("Stats.Blobs = %d after dedup put, want 1", st.Blobs)
	}
}

func TestGetMissing(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256([]byte("never stored"))
	if _, err := s.Get(hex.EncodeToString(sum[:])); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(missing) = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("xx"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(malformed) = %v, want ErrNotFound", err)
	}
}

// TestCrashRecovery simulates a process killed mid-Put: tmp debris and a
// torn blob (a file under its digest name whose bytes do not hash to
// that name) must both disappear on reopen, while intact blobs survive.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Put([]byte("intact blob"))
	if err != nil {
		t.Fatal(err)
	}

	// Crash artifact 1: a tmp file that never got renamed. Backdated
	// past the grace window — by the time anyone reopens after a crash,
	// the debris is old.
	tmp := filepath.Join(dir, "tmp", "put-999-1")
	if err := os.WriteFile(tmp, []byte("half-written"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := time.Now().Add(-2 * tmpGrace)
	if err := os.Chtimes(tmp, stale, stale); err != nil {
		t.Fatal(err)
	}
	// A fresh tmp file is a live writer's in-flight Put (a reader origin
	// opening the shared directory mid-feed must not delete it).
	fresh := filepath.Join(dir, "tmp", "put-999-2")
	if err := os.WriteFile(fresh, []byte("in flight"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Crash artifact 2: a torn blob — digest name, wrong content.
	sum := sha256.Sum256([]byte("the full payload"))
	torn := hex.EncodeToString(sum[:])
	tornPath := filepath.Join(dir, "blobs", torn[:2], torn[2:])
	if err := os.MkdirAll(filepath.Dir(tornPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, []byte("the full pay"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatal("tmp debris survived reopen")
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatal("in-flight tmp file deleted by a concurrent reopen")
	}
	if _, err := os.Stat(tornPath); !os.IsNotExist(err) {
		t.Fatal("torn blob survived reopen")
	}
	if s2.Has(torn) {
		t.Fatal("torn blob was indexed")
	}
	got, err := s2.Get(good)
	if err != nil || !bytes.Equal(got, []byte("intact blob")) {
		t.Fatalf("intact blob lost on reopen: %v", err)
	}
	if st := s2.Stats(); st.Blobs != 1 {
		t.Fatalf("Stats.Blobs = %d after recovery, want 1", st.Blobs)
	}
}

func TestRefsProtectFromGC(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pinned, _ := s.Put([]byte("pinned"))
	loose, _ := s.Put([]byte("loose"))
	if err := s.AddRef(pinned); err != nil {
		t.Fatal(err)
	}
	removed, reclaimed := s.GC(0)
	if removed != 1 || reclaimed != int64(len("loose")) {
		t.Fatalf("GC removed %d (%d bytes), want 1 (%d)", removed, reclaimed, len("loose"))
	}
	if !s.Has(pinned) || s.Has(loose) {
		t.Fatalf("GC kept wrong blobs: pinned=%v loose=%v", s.Has(pinned), s.Has(loose))
	}
	if err := s.Release(pinned); err != nil {
		t.Fatal(err)
	}
	if removed, _ := s.GC(0); removed != 1 {
		t.Fatalf("GC after Release removed %d, want 1", removed)
	}
}

func TestGCRetentionHorizon(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	d, _ := s.Put([]byte("recently freed"))
	if removed, _ := s.GC(time.Hour); removed != 0 {
		t.Fatalf("GC inside retention removed %d, want 0", removed)
	}
	if !s.Has(d) {
		t.Fatal("blob inside retention horizon was collected")
	}
}

func TestConcurrentPuts(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, distinct = 8, 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*distinct)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < distinct; i++ {
				payload := []byte(fmt.Sprintf("payload-%d", i)) // same set from every worker
				d, err := s.Put(payload)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.Get(d)
				if err != nil || !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("readback %d: %v", i, err)
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Blobs != distinct {
		t.Fatalf("Stats.Blobs = %d, want %d", st.Blobs, distinct)
	}
}

func TestCatalogRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadCatalog(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadCatalog(empty store) = %v, want ErrNotFound", err)
	}
	cat := &Catalog{
		Seq: 7, Manifest: "abc123", FirstChunk: 2,
		Tiles: map[string]TileRef{"/video/2/0/1.bin": {Digest: "def", Size: 99}},
	}
	if err := s.WriteCatalog(cat); err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Manifest != "abc123" || got.FirstChunk != 2 {
		t.Fatalf("catalog head mismatch: %+v", got)
	}
	if ref := got.Tiles["/video/2/0/1.bin"]; ref.Digest != "def" || ref.Size != 99 {
		t.Fatalf("tile ref mismatch: %+v", ref)
	}
	// Replacement is atomic whole-document: a second write fully wins.
	if err := s.WriteCatalog(&Catalog{Seq: 8, Manifest: "zzz"}); err != nil {
		t.Fatal(err)
	}
	got, err = s.ReadCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 8 || len(got.Tiles) != 0 {
		t.Fatalf("replaced catalog = %+v", got)
	}
}
