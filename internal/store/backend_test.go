package store_test

import (
	"bytes"
	"errors"
	"testing"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/provider"
	"pano/internal/scene"
	"pano/internal/server"
	"pano/internal/store"
	"pano/internal/viewport"
)

// tinyManifest preprocesses a small synthetic video — the cheapest valid
// manifest the provider can make.
func tinyManifest(t *testing.T) *manifest.Video {
	t.Helper()
	opts := scene.Options{W: 240, H: 120, FPS: 10, DurationSec: 4}
	v := scene.Generate(scene.Sports, 42, opts)
	trs := []*viewport.Trace{viewport.Synthesize(v, 43, viewport.DefaultSynthesizeOpts())}
	m, err := provider.Preprocess(v, trs, provider.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// publishAll writes every tile of m plus the manifest blob into s and
// installs the catalog head — what internal/live does incrementally,
// done in one shot for tests.
func publishAll(t *testing.T, s *store.Store, m *manifest.Video) {
	t.Helper()
	tiles := make(map[string]store.TileRef)
	for k := range m.Chunks {
		for ti := range m.Chunks[k].Tiles {
			for l := 0; l < codec.NumLevels; l++ {
				lv := codec.Level(l)
				size := server.TileSizeBytes(&m.Chunks[k].Tiles[ti], lv)
				d, err := s.Put(server.TilePayload(k, ti, lv, size))
				if err != nil {
					t.Fatal(err)
				}
				tiles[server.TilePath(k, ti, lv)] = store.TileRef{Digest: d, Size: size}
			}
		}
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	md, err := s.Put(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCatalog(&store.Catalog{
		Seq: m.Seq + 1, Manifest: md, FirstChunk: m.FirstChunk, Tiles: tiles,
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBackendServesCatalog(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyManifest(t)
	publishAll(t, s, m)

	b, err := store.NewBackend(s)
	if err != nil {
		t.Fatal(err)
	}
	got, body, etag, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks() != m.NumChunks() {
		t.Fatalf("backend manifest has %d chunks, want %d", got.NumChunks(), m.NumChunks())
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, buf.Bytes()) {
		t.Fatal("backend manifest bytes differ from published encoding")
	}
	if len(etag) != 18 || etag[0] != '"' { // 16 hex chars + quotes
		t.Fatalf("manifest ETag %q not a quoted 16-char content hash", etag)
	}

	st, err := b.TileStat(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if want := server.TileETag(0, 0, 0, st.Size); st.ETag != want {
		t.Fatalf("tile ETag %q, want pure-function tag %q", st.ETag, want)
	}
	data, err := b.TileData(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := server.TilePayload(0, 0, 0, server.TileSizeBytes(&m.Chunks[0].Tiles[0], 0))
	if !bytes.Equal(data, want) {
		t.Fatal("tile payload differs from deterministic encoding")
	}
	// Never-published object → 404-style, not 410.
	if _, err := b.TileStat(m.NumChunks(), 0, 0); !errors.Is(err, server.ErrObjectNotFound) {
		t.Fatalf("past-edge tile = %v, want ErrObjectNotFound", err)
	}
}

// TestStatelessOriginPair is the stateless-origin proof at the package
// level: two independent Store+Backend instances over one directory
// answer byte-identically with identical ETags.
func TestStatelessOriginPair(t *testing.T) {
	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyManifest(t)
	publishAll(t, s1, m)
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := store.NewBackend(s1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := store.NewBackend(s2)
	if err != nil {
		t.Fatal(err)
	}

	_, body1, etag1, err := b1.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	_, body2, etag2, err := b2.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body1, body2) || etag1 != etag2 {
		t.Fatal("origins disagree on manifest bytes or ETag")
	}
	for k := 0; k < m.NumChunks(); k++ {
		for l := 0; l < codec.NumLevels; l++ {
			lv := codec.Level(l)
			d1, err := b1.TileData(k, 0, lv)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := b2.TileData(k, 0, lv)
			if err != nil {
				t.Fatal(err)
			}
			st1, _ := b1.TileStat(k, 0, lv)
			st2, _ := b2.TileStat(k, 0, lv)
			if !bytes.Equal(d1, d2) || st1.ETag != st2.ETag {
				t.Fatalf("origins disagree on tile %d/0/%d", k, l)
			}
		}
	}
}

// TestBackendWindowGone: a catalog whose window has slid answers 410 for
// retired chunks and keeps 404 for never-published ones.
func TestBackendWindowGone(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyManifest(t)
	m.Live = true
	m.FirstChunk = 1
	m.Seq = 3
	// Publish with chunk 0's tiles retired from the catalog.
	tiles := make(map[string]store.TileRef)
	for k := 1; k < m.NumChunks(); k++ {
		for ti := range m.Chunks[k].Tiles {
			for l := 0; l < codec.NumLevels; l++ {
				lv := codec.Level(l)
				size := server.TileSizeBytes(&m.Chunks[k].Tiles[ti], lv)
				d, err := s.Put(server.TilePayload(k, ti, lv, size))
				if err != nil {
					t.Fatal(err)
				}
				tiles[server.TilePath(k, ti, lv)] = store.TileRef{Digest: d, Size: size}
			}
		}
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	md, err := s.Put(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WriteCatalog(&store.Catalog{Seq: 3, Manifest: md, FirstChunk: 1, Tiles: tiles}); err != nil {
		t.Fatal(err)
	}
	b, err := store.NewBackend(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.TileStat(0, 0, 0); !errors.Is(err, server.ErrObjectGone) {
		t.Fatalf("retired chunk = %v, want ErrObjectGone", err)
	}
	if _, err := b.TileStat(1, 0, 0); err != nil {
		t.Fatalf("in-window chunk = %v, want nil", err)
	}
	if _, err := b.TileStat(m.NumChunks()+5, 0, 0); !errors.Is(err, server.ErrObjectNotFound) {
		t.Fatalf("unpublished chunk = %v, want ErrObjectNotFound", err)
	}
}

// TestBackendAdoptsNewerCatalog: a reader sees a publisher's new head on
// the next request (stat-poll) and never steps backwards.
func TestBackendAdoptsNewerCatalog(t *testing.T) {
	dir := t.TempDir()
	pub, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := tinyManifest(t)
	m.Live = true
	full := m.Chunks
	m.Chunks = full[:1]
	m.Seq = 1
	publishAll(t, pub, m)

	rd, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := store.NewBackend(rd)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks() != 1 {
		t.Fatalf("initial head has %d chunks, want 1", got.NumChunks())
	}

	// Publisher appends a chunk and bumps the head.
	m.Chunks = full[:2]
	m.Seq = 2
	publishAll(t, pub, m)
	got, _, etag2, err := b.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if got.NumChunks() != 2 {
		t.Fatalf("refreshed head has %d chunks, want 2", got.NumChunks())
	}
	// A tile of the new chunk resolves without reopening anything.
	if _, err := b.TileData(1, 0, 0); err != nil {
		t.Fatalf("new chunk tile after refresh: %v", err)
	}
	if len(etag2) != 18 {
		t.Fatalf("rotated ETag %q malformed", etag2)
	}
}
