package store

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"time"

	"pano/internal/codec"
	"pano/internal/manifest"
	"pano/internal/server"
)

// Backend adapts a Store to internal/server's dynamic Backend
// interface: any number of origin processes can open the same store
// directory and serve identical bytes with identical ETags, because
// everything they answer — manifest body, tile payloads, tags — is a
// pure function of store content. The catalog head is stat-polled and
// reloaded on change, so a live publisher's appends become visible
// within one request.
type Backend struct {
	s *Store

	mu      sync.Mutex
	cat     *Catalog
	man     *manifest.Video
	manJSON []byte
	manETag string
	stamp   catalogStamp
}

// catalogStamp identifies a loaded catalog version by its file
// metadata; rename-replacement always changes it.
type catalogStamp struct {
	mod  time.Time
	size int64
}

var _ server.Backend = (*Backend)(nil)

// NewBackend opens a serving view over the store. It fails if nothing
// has been published yet (no catalog head).
func NewBackend(s *Store) (*Backend, error) {
	b := &Backend{s: s}
	if err := b.reload(); err != nil {
		return nil, err
	}
	return b, nil
}

// reload reads the catalog head and the manifest blob it names.
// Caller must not hold b.mu.
func (b *Backend) reload() error {
	info, err := os.Stat(b.s.CatalogPath())
	if err != nil {
		return fmt.Errorf("store: backend: %w", err)
	}
	cat, err := b.s.ReadCatalog()
	if err != nil {
		return err
	}
	manJSON, err := b.s.Get(cat.Manifest)
	if err != nil {
		return fmt.Errorf("store: backend: manifest blob: %w", err)
	}
	man, err := manifest.Decode(bytes.NewReader(manJSON))
	if err != nil {
		return fmt.Errorf("store: backend: %w", err)
	}
	b.mu.Lock()
	// Never adopt an older head than the one already loaded (a racing
	// stat could observe the file mid-replacement sequence).
	if b.cat == nil || cat.Seq >= b.cat.Seq {
		b.cat, b.man, b.manJSON = cat, man, manJSON
		// The manifest ETag is the same function of the wire bytes the
		// static server uses (sha256[:8]): the blob digest IS that hash,
		// so the tag falls out of the address.
		b.manETag = `"` + cat.Manifest[:16] + `"`
		b.stamp = catalogStamp{mod: info.ModTime(), size: info.Size()}
	}
	b.mu.Unlock()
	return nil
}

// refresh reloads the catalog iff its file stamp changed (or force).
func (b *Backend) refresh(force bool) error {
	if !force {
		info, err := os.Stat(b.s.CatalogPath())
		if err != nil {
			return fmt.Errorf("store: backend: %w", err)
		}
		b.mu.Lock()
		unchanged := b.cat != nil && b.stamp.mod.Equal(info.ModTime()) && b.stamp.size == info.Size()
		b.mu.Unlock()
		if unchanged {
			return nil
		}
	}
	return b.reload()
}

// Manifest implements server.Backend.
func (b *Backend) Manifest() (*manifest.Video, []byte, string, error) {
	if err := b.refresh(false); err != nil {
		return nil, nil, "", err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.man, b.manJSON, b.manETag, nil
}

// TileStat implements server.Backend. The ETag is the same pure
// function of (chunk, tile, level, size) the static server derives, so
// a client moving between a static origin and a store origin — or
// between two store origins — revalidates with a single 304.
func (b *Backend) TileStat(k, ti int, l codec.Level) (server.TileStat, error) {
	ref, err := b.lookup(k, ti, l)
	if err != nil {
		return server.TileStat{}, err
	}
	return server.TileStat{Size: ref.Size, ETag: server.TileETag(k, ti, l, ref.Size)}, nil
}

// TileData implements server.Backend.
func (b *Backend) TileData(k, ti int, l codec.Level) ([]byte, error) {
	ref, err := b.lookup(k, ti, l)
	if err != nil {
		return nil, err
	}
	data, err := b.s.Get(ref.Digest)
	if err != nil {
		// Catalog references a GC'd blob: the retention horizon was
		// shorter than this origin's refresh lag. Resolve as retired.
		return nil, server.ErrObjectGone
	}
	return data, nil
}

// lookup resolves a tile path against the catalog, force-reloading once
// before answering 404 so an origin with a stale head never 404s a tile
// that a fresher catalog already names (the edge would negative-cache
// that miss for NegTTL).
func (b *Backend) lookup(k, ti int, l codec.Level) (TileRef, error) {
	if err := b.refresh(false); err != nil {
		return TileRef{}, err
	}
	path := server.TilePath(k, ti, l)
	b.mu.Lock()
	ref, ok := b.cat.Tiles[path]
	first := b.cat.FirstChunk
	b.mu.Unlock()
	if ok {
		return ref, nil
	}
	if k < first {
		return TileRef{}, server.ErrObjectGone
	}
	if err := b.refresh(true); err != nil {
		return TileRef{}, err
	}
	b.mu.Lock()
	ref, ok = b.cat.Tiles[path]
	first = b.cat.FirstChunk
	b.mu.Unlock()
	switch {
	case ok:
		return ref, nil
	case k < first:
		return TileRef{}, server.ErrObjectGone
	default:
		return TileRef{}, server.ErrObjectNotFound
	}
}
