// Package store implements a content-addressed on-disk blob store for
// tile and manifest objects. Every blob is named by the sha256 of its
// bytes, written atomically (tmp file + rename), and never mutated —
// the only mutable state on disk is the small catalog document
// (catalog.go) naming the current publication. That shape is what makes
// origins stateless: N internal/server processes can open the same
// directory read-only and serve byte-identical objects with identical
// ETags, while a single internal/live publisher appends.
//
// Blobs are ref-counted in memory by the publishing process; GC removes
// blobs that have been unreferenced for longer than a retention
// horizon, which protects reading origins that loaded a slightly older
// catalog. On Open the index is rebuilt from disk: leftover tmp files
// (a crash mid-Put) are deleted and every blob's digest is re-verified,
// so a torn write can never become visible.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"pano/internal/obs"
)

// ErrNotFound is returned by Get/Open for a digest the store does not
// hold.
var ErrNotFound = fmt.Errorf("store: blob not found")

// tmpGrace is how old a tmp file must be before Open's recovery treats
// it as crash debris. An in-flight Put lives for milliseconds; anything
// past this window belongs to a process that died mid-write.
const tmpGrace = time.Minute

// Store is one content-addressed blob directory. Safe for concurrent
// use.
type Store struct {
	dir string
	reg *obs.Registry
	log *obs.EventLog

	mu    sync.Mutex
	blobs map[string]*blobState
	bytes int64
	seq   uint64 // tmp-file name counter
}

// blobState is the in-memory index entry for one blob.
type blobState struct {
	size int64
	refs int
	// free is when the blob was last seen unreferenced (file mtime at
	// Open, the moment of the last Release otherwise): GC's retention
	// horizon counts from here.
	free time.Time
}

// Option configures a Store.
type Option func(*Store)

// WithObs attaches pano_store_* metrics (puts, gets, dedup hits, bytes
// and blob gauges, GC counters). nil is the no-op default.
func WithObs(reg *obs.Registry) Option {
	return func(s *Store) { s.reg = reg }
}

// WithEventLog attaches structured events (corrupt-blob drops, GC
// sweeps). nil is the no-op default.
func WithEventLog(l *obs.EventLog) Option {
	return func(s *Store) { s.log = l }
}

// Open opens (creating if needed) the store rooted at dir and rebuilds
// the index from disk. Recovery is part of opening: tmp files from a
// crashed Put are removed, and each blob's content is re-hashed so a
// torn or corrupted file is deleted instead of indexed — the cost is
// one read of the store, paid once per process start.
func Open(dir string, opts ...Option) (*Store, error) {
	s := &Store{dir: dir, blobs: make(map[string]*blobState)}
	for _, o := range opts {
		o(s)
	}
	for _, sub := range []string{s.blobRoot(), s.tmpRoot()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	// A crash between tmp write and rename leaves debris here; nothing
	// references a tmp file, so recovery is deletion. Only stale files
	// qualify: a reader origin opening the directory mid-feed must not
	// delete the live publisher's in-flight Put (which writes and
	// renames within milliseconds, far inside the grace window).
	tmps, err := os.ReadDir(s.tmpRoot())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range tmps {
		if info, err := e.Info(); err == nil && time.Since(info.ModTime()) < tmpGrace {
			continue
		}
		os.Remove(filepath.Join(s.tmpRoot(), e.Name()))
		s.count("pano_store_recovered_tmp_total", "leftover tmp files removed on open")
	}
	corrupt := 0
	err = filepath.WalkDir(s.blobRoot(), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		// Reassemble the digest from the shard directory + file name.
		digest := filepath.Base(filepath.Dir(path)) + d.Name()
		data, rerr := os.ReadFile(path)
		sum := sha256.Sum256(data)
		if rerr != nil || hex.EncodeToString(sum[:]) != digest {
			// Torn blob (e.g. a crash mid-write outside the tmp protocol,
			// or bit rot): drop it rather than serve bad bytes.
			os.Remove(path)
			corrupt++
			s.count("pano_store_corrupt_blobs_total", "blobs failing digest verification on open, deleted")
			s.log.Logger().Warn("store_corrupt_blob", "digest", digest)
			return nil
		}
		info, ierr := d.Info()
		free := time.Now()
		if ierr == nil {
			free = info.ModTime()
		}
		s.blobs[digest] = &blobState{size: int64(len(data)), free: free}
		s.bytes += int64(len(data))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if corrupt > 0 {
		s.log.Logger().Warn("store_recovery", "corrupt_blobs_dropped", corrupt)
	}
	s.gauges()
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) blobRoot() string { return filepath.Join(s.dir, "blobs") }
func (s *Store) tmpRoot() string  { return filepath.Join(s.dir, "tmp") }

// blobPath shards blobs by the digest's first byte to keep directory
// fan-out bounded.
func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.blobRoot(), digest[:2], digest[2:])
}

// Put stores payload and returns its sha256 digest (hex). Writing is
// atomic: the bytes land in a tmp file first and are renamed into place,
// so a reader either sees the complete blob or nothing. Storing bytes
// already present is a no-op (dedup).
func (s *Store) Put(payload []byte) (string, error) {
	sum := sha256.Sum256(payload)
	digest := hex.EncodeToString(sum[:])
	s.mu.Lock()
	if _, ok := s.blobs[digest]; ok {
		s.mu.Unlock()
		s.count("pano_store_dedup_total", "puts deduplicated against an existing blob")
		return digest, nil
	}
	s.seq++
	tmp := filepath.Join(s.tmpRoot(), fmt.Sprintf("put-%d-%d", os.Getpid(), s.seq))
	s.mu.Unlock()

	if err := os.WriteFile(tmp, payload, 0o644); err != nil {
		return "", fmt.Errorf("store: put: %w", err)
	}
	final := s.blobPath(digest)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: put: %w", err)
	}
	// Rename is atomic within the filesystem; a concurrent Put of the
	// same content renames identical bytes over identical bytes.
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	if _, ok := s.blobs[digest]; !ok {
		s.blobs[digest] = &blobState{size: int64(len(payload)), free: time.Now()}
		s.bytes += int64(len(payload))
	}
	s.mu.Unlock()
	s.count("pano_store_puts_total", "blobs written")
	s.reg.Counter("pano_store_put_bytes_total", "payload bytes written").Add(float64(len(payload)))
	s.gauges()
	return digest, nil
}

// Get returns the blob's bytes.
func (s *Store) Get(digest string) ([]byte, error) {
	data, err := os.ReadFile(s.lookupPath(digest))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
		}
		return nil, fmt.Errorf("store: get: %w", err)
	}
	s.count("pano_store_gets_total", "blob reads")
	return data, nil
}

// Open returns a reader over the blob (large-object path; Get is the
// convenience form).
func (s *Store) Open(digest string) (io.ReadCloser, error) {
	f, err := os.Open(s.lookupPath(digest))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
		}
		return nil, fmt.Errorf("store: open: %w", err)
	}
	s.count("pano_store_gets_total", "blob reads")
	return f, nil
}

// lookupPath returns the on-disk path for a digest, or an impossible
// path for malformed digests (so the read fails cleanly).
func (s *Store) lookupPath(digest string) string {
	if len(digest) < 3 {
		return filepath.Join(s.tmpRoot(), "invalid-digest")
	}
	return s.blobPath(digest)
}

// AddRef pins a blob against GC. Refs are process-local publisher
// state, not persisted: reading origins never take refs, they are
// protected by the GC retention horizon instead.
func (s *Store) AddRef(digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	b.refs++
	return nil
}

// Release drops one reference; at zero the retention clock starts.
func (s *Store) Release(digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if b.refs > 0 {
		b.refs--
	}
	if b.refs == 0 {
		b.free = time.Now()
	}
	return nil
}

// GC deletes blobs that have been unreferenced for at least retention.
// The horizon exists for the stateless-origin topology: an origin that
// loaded the catalog just before a chunk was retired may still serve
// its tiles; retention must exceed the origins' catalog refresh lag.
func (s *Store) GC(retention time.Duration) (removed int, reclaimed int64) {
	now := time.Now()
	s.mu.Lock()
	var victims []string
	for digest, b := range s.blobs {
		if b.refs == 0 && now.Sub(b.free) >= retention {
			victims = append(victims, digest)
		}
	}
	for _, digest := range victims {
		reclaimed += s.blobs[digest].size
		delete(s.blobs, digest)
	}
	s.bytes -= reclaimed
	s.mu.Unlock()
	for _, digest := range victims {
		os.Remove(s.blobPath(digest))
	}
	removed = len(victims)
	s.count("pano_store_gc_runs_total", "GC sweeps")
	if removed > 0 {
		s.reg.Counter("pano_store_gc_removed_total", "blobs deleted by GC").Add(float64(removed))
		s.reg.Counter("pano_store_gc_reclaimed_bytes_total", "bytes reclaimed by GC").Add(float64(reclaimed))
		s.log.Logger().Debug("store_gc", "removed", removed, "reclaimed_bytes", reclaimed)
	}
	s.gauges()
	return removed, reclaimed
}

// Stats summarizes the store.
type Stats struct {
	Blobs int
	Bytes int64
}

// Stats returns current blob and byte totals.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Blobs: len(s.blobs), Bytes: s.bytes}
}

// Has reports whether the store holds digest.
func (s *Store) Has(digest string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[digest]
	return ok
}

func (s *Store) count(name, help string) {
	s.reg.Counter(name, help).Inc()
}

func (s *Store) gauges() {
	if s.reg == nil {
		return
	}
	s.mu.Lock()
	blobs, bytes := len(s.blobs), s.bytes
	s.mu.Unlock()
	s.reg.Gauge("pano_store_blobs", "blobs indexed").Set(float64(blobs))
	s.reg.Gauge("pano_store_bytes", "bytes held by indexed blobs").Set(float64(bytes))
}
