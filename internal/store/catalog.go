package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Catalog is the mutable head of the otherwise immutable store: one
// small JSON document naming the manifest blob and the blob of every
// servable tile. The publisher rewrites it atomically after each chunk
// publish (tiles first, catalog last, so the catalog never references
// an unwritten blob); origins poll its stat and reload on change.
type Catalog struct {
	// Seq mirrors the manifest's publish sequence number.
	Seq int64 `json:"seq"`
	// Manifest is the digest of the current manifest JSON blob.
	Manifest string `json:"manifest"`
	// FirstChunk mirrors the manifest's availability-window start:
	// tiles of chunks below it answer 410 Gone.
	FirstChunk int `json:"firstChunk"`
	// Tiles maps a tile's URL path (server.TilePath) to its blob.
	Tiles map[string]TileRef `json:"tiles"`
}

// TileRef locates one tile object in the store.
type TileRef struct {
	Digest string `json:"digest"`
	Size   int    `json:"size"`
}

// catalogName is the catalog's filename under the store root.
const catalogName = "catalog.json"

// CatalogPath returns the catalog's on-disk path.
func (s *Store) CatalogPath() string { return filepath.Join(s.dir, catalogName) }

// WriteCatalog atomically replaces the catalog (tmp + rename, like a
// blob): a reading origin sees either the old or the new head, never a
// torn one.
func (s *Store) WriteCatalog(c *Catalog) error {
	data, err := json.Marshal(c)
	if err != nil {
		return fmt.Errorf("store: catalog: %w", err)
	}
	s.mu.Lock()
	s.seq++
	tmp := filepath.Join(s.tmpRoot(), fmt.Sprintf("cat-%d-%d", os.Getpid(), s.seq))
	s.mu.Unlock()
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("store: catalog: %w", err)
	}
	if err := os.Rename(tmp, s.CatalogPath()); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: catalog: %w", err)
	}
	s.count("pano_store_catalog_writes_total", "catalog head replacements")
	return nil
}

// ReadCatalog loads the current catalog head. ErrNotFound means no
// publication has happened yet.
func (s *Store) ReadCatalog() (*Catalog, error) {
	data, err := os.ReadFile(s.CatalogPath())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: catalog", ErrNotFound)
		}
		return nil, fmt.Errorf("store: catalog: %w", err)
	}
	var c Catalog
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("store: catalog: %w", err)
	}
	if c.Tiles == nil {
		c.Tiles = make(map[string]TileRef)
	}
	return &c, nil
}
