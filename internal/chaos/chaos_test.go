package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"pano/internal/obs"
)

// backend is a minimal origin: /manifest.json and /video/... answer 200
// with a fixed body and declared Content-Length, everything else 404.
func backend(bodyLen int) http.Handler {
	mux := http.NewServeMux()
	serve := func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, bodyLen)
		for i := range body {
			body[i] = byte(i)
		}
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		w.Write(body)
	}
	mux.HandleFunc("/manifest.json", serve)
	mux.HandleFunc("/video/", serve)
	return mux
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, rerr := io.ReadAll(resp.Body)
	if rerr != nil {
		return resp, body, rerr
	}
	return resp, body, nil
}

func TestDisabledProfilePassthroughIdentity(t *testing.T) {
	h := backend(64)
	in := New(Profile{})
	if got := in.Wrap(h); got != http.Handler(h) {
		t.Error("disabled profile must return the handler unchanged")
	}
	if (Profile{}).Enabled() {
		t.Error("zero profile reports enabled")
	}
}

func TestDecideDeterminism(t *testing.T) {
	r := Rule{ErrorRate: 0.3, AbortRate: 0.1, TruncateRate: 0.2, StallRate: 0.2, Jitter: time.Millisecond}
	for n := uint64(0); n < 50; n++ {
		a := decide(7, "/video/0/1/2.bin", n, r)
		b := decide(7, "/video/0/1/2.bin", n, r)
		if a != b {
			t.Fatalf("attempt %d: decisions differ: %+v vs %+v", n, a, b)
		}
	}
	// Different paths draw independently.
	same := 0
	for n := uint64(0); n < 50; n++ {
		if decide(7, "/video/0/1/2.bin", n, r) == decide(7, "/video/0/2/2.bin", n, r) {
			same++
		}
	}
	if same == 50 {
		t.Error("all decisions identical across paths; draws are not path-keyed")
	}
}

func TestErrorInjectionRate(t *testing.T) {
	in := New(Profile{Seed: 3, Tile: Rule{ErrorRate: 1}})
	ts := httptest.NewServer(in.Wrap(backend(64)))
	defer ts.Close()

	resp, _, err := get(t, ts.URL+"/video/0/0/0.bin")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	// Non-classified endpoints pass through untouched.
	resp, _, err = get(t, ts.URL+"/manifest.json")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Errorf("manifest hit by tile rule: status %v err %v", resp.StatusCode, err)
	}
}

func TestPartialErrorRateApproximate(t *testing.T) {
	in := New(Profile{Seed: 11, Tile: Rule{ErrorRate: 0.3}})
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	fails := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		resp, _, err := get(t, ts.URL+"/video/0/0/0.bin")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusInternalServerError {
			fails++
		}
	}
	if fails < trials/6 || fails > trials/2 {
		t.Errorf("%d/%d injected errors for rate 0.3", fails, trials)
	}
	// The same seed and path replays the exact same fault sequence.
	in2 := New(Profile{Seed: 11, Tile: Rule{ErrorRate: 0.3}})
	ts2 := httptest.NewServer(in2.Wrap(backend(32)))
	defer ts2.Close()
	fails2 := 0
	for i := 0; i < trials; i++ {
		resp, _, _ := get(t, ts2.URL+"/video/0/0/0.bin")
		if resp.StatusCode == http.StatusInternalServerError {
			fails2++
		}
	}
	if fails != fails2 {
		t.Errorf("replay diverged: %d vs %d failures", fails, fails2)
	}
}

func TestAbortInjection(t *testing.T) {
	in := New(Profile{Seed: 3, Tile: Rule{AbortRate: 1}})
	ts := httptest.NewServer(in.Wrap(backend(64)))
	defer ts.Close()

	_, _, err := get(t, ts.URL+"/video/0/0/0.bin")
	if err == nil {
		t.Fatal("aborted connection should surface as a transport error")
	}
}

func TestTruncateInjection(t *testing.T) {
	in := New(Profile{Seed: 3, Tile: Rule{TruncateRate: 1}})
	ts := httptest.NewServer(in.Wrap(backend(4096)))
	defer ts.Close()

	resp, body, err := get(t, ts.URL+"/video/0/0/0.bin")
	if err == nil {
		t.Fatalf("truncated body should be a short read, got %d clean bytes", len(body))
	}
	if resp != nil && resp.StatusCode != http.StatusOK {
		t.Errorf("truncation should happen after a 200, got %d", resp.StatusCode)
	}
	if len(body) >= 4096 {
		t.Errorf("body not truncated: %d bytes", len(body))
	}
}

func TestStallInjection(t *testing.T) {
	in := New(Profile{Seed: 3, Tile: Rule{StallRate: 1, StallFor: 60 * time.Millisecond}})
	ts := httptest.NewServer(in.Wrap(backend(4096)))
	defer ts.Close()

	t0 := time.Now()
	resp, body, err := get(t, ts.URL+"/video/0/0/0.bin")
	if err != nil || resp.StatusCode != http.StatusOK || len(body) != 4096 {
		t.Fatalf("stalled response should still complete: status %v len %d err %v",
			resp.StatusCode, len(body), err)
	}
	if d := time.Since(t0); d < 60*time.Millisecond {
		t.Errorf("response in %v, expected a >=60ms mid-body stall", d)
	}
}

func TestLatencyInjection(t *testing.T) {
	in := New(Profile{Seed: 3, Tile: Rule{Latency: 50 * time.Millisecond}})
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	t0 := time.Now()
	if _, _, err := get(t, ts.URL+"/video/0/0/0.bin"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(t0); d < 50*time.Millisecond {
		t.Errorf("response in %v, expected >=50ms injected latency", d)
	}
}

func TestThrottleInjection(t *testing.T) {
	// 64 KiB at 4 Mbit/s should take >= ~130ms.
	in := New(Profile{Seed: 3, Tile: Rule{ThrottleBps: 4e6}})
	ts := httptest.NewServer(in.Wrap(backend(64 << 10)))
	defer ts.Close()

	t0 := time.Now()
	resp, body, err := get(t, ts.URL+"/video/0/0/0.bin")
	if err != nil || resp.StatusCode != http.StatusOK || len(body) != 64<<10 {
		t.Fatalf("throttled response broken: status %v len %d err %v", resp.StatusCode, len(body), err)
	}
	if d := time.Since(t0); d < 100*time.Millisecond {
		t.Errorf("64KiB at 4Mbps served in %v, throttle not pacing", d)
	}
}

func TestFlakyWindowSchedule(t *testing.T) {
	// Of every 10 requests the first 3 are flaky; with ErrorRate 1 that
	// is exactly 3 failures per period, deterministically.
	in := New(Profile{Seed: 3, Tile: Rule{ErrorRate: 1}, Window: Window{Period: 10, Flaky: 3}})
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	fails := 0
	for i := 0; i < 30; i++ {
		resp, _, err := get(t, ts.URL+"/video/0/0/0.bin")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusInternalServerError {
			fails++
		}
	}
	if fails != 9 {
		t.Errorf("%d failures over 3 periods, want exactly 9", fails)
	}
}

func TestMetricsAndEvents(t *testing.T) {
	reg := obs.NewRegistry()
	el := obs.NewEventLog(nil, 64)
	in := New(Profile{Seed: 3, Tile: Rule{ErrorRate: 1}}, WithObs(reg), WithEventLog(el))
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	for i := 0; i < 4; i++ {
		if _, _, err := get(t, ts.URL+"/video/0/0/0.bin"); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.CounterValue("pano_chaos_requests_total", obs.L("endpoint", "tile")); got != 4 {
		t.Errorf("requests counter = %v, want 4", got)
	}
	if got := reg.CounterValue("pano_chaos_injections_total",
		obs.L("endpoint", "tile"), obs.L("kind", "error")); got != 4 {
		t.Errorf("error injection counter = %v, want 4", got)
	}
	if e, ok := el.Last("chaos_injected"); !ok || e.Str("kind") != "error" {
		t.Errorf("no chaos_injected event logged: %v %v", e, ok)
	}
}

func TestDownSchedule(t *testing.T) {
	cases := []struct {
		d    Down
		t    time.Duration
		want bool
	}{
		{Down{Always: true}, 0, true},
		{Down{Always: true}, time.Hour, true},
		{Down{}, 0, false},
		{Down{After: time.Second, For: 2 * time.Second}, 500 * time.Millisecond, false},
		{Down{After: time.Second, For: 2 * time.Second}, time.Second, true},
		{Down{After: time.Second, For: 2 * time.Second}, 2900 * time.Millisecond, true},
		{Down{After: time.Second, For: 2 * time.Second}, 3 * time.Second, false},
		// Flapping: 1s down out of every 4s, starting at 2s.
		{Down{After: 2 * time.Second, For: time.Second, Every: 4 * time.Second}, time.Second, false},
		{Down{After: 2 * time.Second, For: time.Second, Every: 4 * time.Second}, 2500 * time.Millisecond, true},
		{Down{After: 2 * time.Second, For: time.Second, Every: 4 * time.Second}, 4 * time.Second, false},
		{Down{After: 2 * time.Second, For: time.Second, Every: 4 * time.Second}, 6500 * time.Millisecond, true},
		{Down{After: 2 * time.Second, For: time.Second, Every: 4 * time.Second}, 7500 * time.Millisecond, false},
	}
	for _, c := range cases {
		if got := c.d.At(c.t); got != c.want {
			t.Errorf("%+v.At(%v) = %v, want %v", c.d, c.t, got, c.want)
		}
	}
}

func TestDownOutageAbortsEveryPath(t *testing.T) {
	in := New(Profile{Down: Down{Always: true}})
	if !in.Profile().Enabled() {
		t.Fatal("down-only profile must report enabled")
	}
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	// Down takes out every path, not just the classified endpoints.
	for _, path := range []string{"/manifest.json", "/video/0/0/0.bin", "/healthz"} {
		if _, _, err := get(t, ts.URL+path); err == nil {
			t.Errorf("GET %s succeeded during a hard outage", path)
		}
	}
}

func TestDownWindowRecovers(t *testing.T) {
	// A fake clock drives the outage window: up at t=0, down during
	// [1s, 3s), up again after. Atomic because server goroutines read
	// it through WithNow while the test advances it between requests.
	var now atomic.Int64
	now.Store(time.Unix(100, 0).UnixNano())
	in := New(Profile{Down: Down{After: time.Second, For: 2 * time.Second}},
		WithNow(func() time.Time { return time.Unix(0, now.Load()) }))
	ts := httptest.NewServer(in.Wrap(backend(32)))
	defer ts.Close()

	if resp, _, err := get(t, ts.URL+"/video/0/0/0.bin"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-outage request failed: status %v err %v", resp, err)
	}
	now.Add(int64(2 * time.Second))
	if _, _, err := get(t, ts.URL+"/video/0/0/0.bin"); err == nil {
		t.Fatal("request succeeded inside the outage window")
	}
	now.Add(int64(2 * time.Second))
	if resp, _, err := get(t, ts.URL+"/video/0/0/0.bin"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-outage request failed: status %v err %v", resp, err)
	}
}

func TestDownSpecRoundTrip(t *testing.T) {
	for _, spec := range []string{
		"down=always",
		"down=1s+2s",
		"down=1s+2s/10s",
		"seed=7,down=500ms+1s,tile-error=0.1",
	} {
		p, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !p.Down.active() {
			t.Errorf("Parse(%q): down schedule inactive: %+v", spec, p.Down)
		}
		p2, err := Parse(p.String())
		if err != nil || p2 != p {
			t.Errorf("round trip of %q changed profile: %+v vs %+v (err %v)", spec, p, p2, err)
		}
	}
	for _, bad := range []string{
		"down=", "down=1s", "down=x+1s", "down=1s+0s", "down=1s+2s/1s", "down=1s+2s/x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=7,window=20:5,manifest-error=0.05,tile-error=0.1,tile-abort=0.02," +
		"tile-truncate=0.03,tile-stall=0.04,tile-stall-for=250ms,tile-latency=2ms," +
		"tile-jitter=1ms,tile-throttle-bps=4e+06"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Window != (Window{Period: 20, Flaky: 5}) {
		t.Errorf("seed/window parsed wrong: %+v", p)
	}
	if p.Tile.ErrorRate != 0.1 || p.Tile.ThrottleBps != 4e6 || p.Tile.StallFor != 250*time.Millisecond {
		t.Errorf("tile rule parsed wrong: %+v", p.Tile)
	}
	p2, err := Parse(p.String())
	if err != nil {
		t.Fatalf("canonical spec %q does not re-parse: %v", p.String(), err)
	}
	if p2 != p {
		t.Errorf("round trip changed profile:\n  %+v\n  %+v", p, p2)
	}
	if got, _ := Parse(""); got.Enabled() {
		t.Error("empty spec should be disabled")
	}
	if (Profile{}).String() != "off" {
		t.Errorf("disabled profile renders %q", Profile{}.String())
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"tile-error", "tile-error=2", "tile-error=-0.1", "nope=1",
		"window=5", "tile-latency=fast", "seed=x",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestDownValidate(t *testing.T) {
	cases := []struct {
		d  Down
		ok bool
	}{
		{Down{}, true},
		{Down{Always: true}, true},
		{Down{For: 10 * time.Second}, true}, // one-shot
		{Down{For: 10 * time.Second, Every: 30 * time.Second}, true}, // flapping
		{Down{For: 10 * time.Second, Every: 10 * time.Second}, false},
		{Down{For: 10 * time.Second, Every: 5 * time.Second}, false}, // degenerates to permanent
	}
	for i, c := range cases {
		if err := c.d.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate(%+v) = %v, want ok=%v", i, c.d, err, c.ok)
		}
	}
}
