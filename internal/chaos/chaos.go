// Package chaos is a deterministic fault-injection HTTP middleware for
// exercising the streaming pipeline's failure paths. It wraps the
// server handler (or any http.Handler) and injects, per endpoint class:
//
//   - 500 responses and connection aborts,
//   - added latency with uniform jitter,
//   - bandwidth throttling of response bodies,
//   - truncated bodies (partial write, then connection abort),
//   - mid-body stalls,
//
// optionally gated by a "flaky window" schedule over the request
// sequence. Every decision is derived from a seed, the request path,
// and that path's per-path request count — so a retried request sees an
// independent (but reproducible) draw, and a whole scripted session is
// replayable regardless of wall-clock timing.
//
// A zero Profile disables injection entirely: Wrap returns the handler
// untouched, so the chaos layer is byte-identical to no chaos layer.
package chaos

import (
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"pano/internal/mathx"
	"pano/internal/obs"
	"pano/internal/trace"
)

// Rule is the fault mix applied to one endpoint class. Rates are
// probabilities in [0, 1]; a zero Rule injects nothing.
type Rule struct {
	// ErrorRate is the probability of answering 500 without reaching
	// the wrapped handler.
	ErrorRate float64
	// AbortRate is the probability of killing the connection before any
	// response byte (the client sees a transport error).
	AbortRate float64
	// TruncateRate is the probability of serving roughly half the body
	// and then killing the connection (a short read against the
	// declared Content-Length).
	TruncateRate float64
	// StallRate is the probability of pausing StallFor mid-body before
	// finishing the response (exercises client deadline expiry).
	StallRate float64
	// StallFor is the mid-body pause duration (default 250ms when a
	// stall fires with no duration configured).
	StallFor time.Duration
	// Latency is added before the wrapped handler runs; Jitter adds a
	// uniform extra delay in [0, Jitter).
	Latency time.Duration
	Jitter  time.Duration
	// ThrottleBps caps the response-body bandwidth in bits/second
	// (0 = unthrottled).
	ThrottleBps float64
}

// active reports whether the rule can inject anything.
func (r Rule) active() bool {
	return r.ErrorRate > 0 || r.AbortRate > 0 || r.TruncateRate > 0 ||
		r.StallRate > 0 || r.Latency > 0 || r.Jitter > 0 || r.ThrottleBps > 0
}

// Window is a request-sequence flaky schedule: of every Period wrapped
// requests, the first Flaky see the rules and the rest pass through
// clean. A zero (or non-positive Period) Window applies the rules to
// every request. Counting requests instead of wall time keeps the
// schedule deterministic under retries and variable timing.
type Window struct {
	Period int
	Flaky  int
}

// Down is a whole-endpoint outage schedule: unlike the per-request
// rates above, it takes the entire handler down — every path, including
// health probes — so fleet tests and the swarm can kill a whole origin.
// It is evaluated against elapsed time since the injector started (the
// swarm substitutes virtual elapsed time), which keeps flapping windows
// reproducible in discrete-event runs.
//
// Always is a permanent outage. Otherwise the outage starts After into
// the run and lasts For; a positive Every repeats the window with that
// period (flapping), while Every == 0 is a one-shot outage.
type Down struct {
	Always bool
	After  time.Duration
	For    time.Duration
	Every  time.Duration
}

// active reports whether the schedule can ever take the handler down.
func (d Down) active() bool { return d.Always || d.For > 0 }

// Validate rejects a flapping schedule whose period does not exceed the
// outage window: with 0 < Every <= For, t % Every always lands inside
// the window, silently degenerating to a permanent outage. The spec
// parser enforces this for spec strings; callers constructing Down
// values programmatically should validate here.
func (d Down) Validate() error {
	if d.Every > 0 && d.Every <= d.For {
		return fmt.Errorf("chaos: down period %s must exceed the window %s", d.Every, d.For)
	}
	return nil
}

// At reports whether the handler is down at elapsed time t.
func (d Down) At(t time.Duration) bool {
	if d.Always {
		return true
	}
	if d.For <= 0 || t < d.After {
		return false
	}
	t -= d.After
	if d.Every > 0 {
		t %= d.Every
	}
	return t < d.For
}

// Profile is a full injection configuration.
type Profile struct {
	// Seed drives every probabilistic decision.
	Seed uint64
	// Manifest applies to /manifest.json and /manifest.mpd; Tile to
	// /video/... objects. Other paths are never touched.
	Manifest Rule
	Tile     Rule
	// Window optionally gates both rules.
	Window Window
	// Down takes the whole handler (every path) down on a time
	// schedule, independent of the per-request rules.
	Down Down
}

// Enabled reports whether the profile can inject anything.
func (p Profile) Enabled() bool {
	return p.Manifest.active() || p.Tile.active() || p.Down.active()
}

// Option configures an Injector.
type Option func(*Injector)

// WithObs attaches a metrics registry: pano_chaos_requests_total and
// pano_chaos_injections_total{endpoint,kind}. nil is the no-op default.
func WithObs(reg *obs.Registry) Option {
	return func(in *Injector) { in.reg = reg }
}

// WithEventLog attaches a structured log of injected faults. nil is the
// no-op default.
func WithEventLog(l *obs.EventLog) Option {
	return func(in *Injector) { in.log = l }
}

// WithNow replaces the Down schedule's clock (tests drive outage
// windows deterministically with a fake clock). The injector's start
// time is read from the clock when New returns.
func WithNow(now func() time.Time) Option {
	return func(in *Injector) { in.now = now }
}

// Injector wraps handlers with the faults of one Profile. It is safe
// for concurrent use; decision determinism is per (path, attempt), so
// concurrent sessions do not perturb each other's draws (only the
// shared window schedule is ordered by arrival).
type Injector struct {
	p     Profile
	reg   *obs.Registry
	log   *obs.EventLog
	start time.Time
	now   func() time.Time // Down schedule clock (tests may override)

	mu   sync.Mutex
	seq  map[string]uint64 // per-path request count
	reqs uint64            // global wrapped-request count (window schedule)
}

// New returns an injector for the profile. The Down schedule's clock
// starts now.
func New(p Profile, opts ...Option) *Injector {
	in := &Injector{p: p, seq: make(map[string]uint64), now: time.Now}
	for _, o := range opts {
		o(in)
	}
	in.start = in.now()
	return in
}

// Profile returns the injector's configuration.
func (in *Injector) Profile() Profile { return in.p }

// endpointRule classifies a request path; ok is false for paths the
// injector never touches (e.g. /metrics).
func (in *Injector) endpointRule(path string) (string, Rule, bool) {
	switch {
	case path == "/manifest.json" || path == "/manifest.mpd":
		return "manifest", in.p.Manifest, true
	case strings.HasPrefix(path, "/video/"):
		return "tile", in.p.Tile, true
	}
	return "", Rule{}, false
}

// Outcome is the fault plan for one request, fully resolved before any
// byte moves — the exported form of the middleware's per-request
// decision, so logical transports (internal/swarm's virtual network)
// can replay the exact fault streams an HTTP session would see.
type Outcome struct {
	// Abort kills the connection before any response byte.
	Abort bool
	// Error500 answers 500 without reaching the handler.
	Error500 bool
	// Truncate serves roughly half the body then kills the connection;
	// Stall pauses Rule.StallFor mid-body. Both can fire together.
	Truncate bool
	Stall    bool
	// Latency is the injected pre-handler delay (Rule.Latency plus the
	// drawn jitter share).
	Latency time.Duration
}

// Draw resolves the fault plan for the n-th request with the given
// draw key under rule r. The draws happen in a fixed order so each
// fault type's stream is stable as other rates change, and precedence
// is abort > 500 > truncate|stall. The HTTP middleware keys its own
// draws with KeyString(path), so a non-HTTP transport keyed the same
// way reproduces its sequence exactly.
func (r Rule) Draw(seed, key, n uint64) Outcome {
	rng := mathx.NewRNG(seed ^ key ^ (n * 0x9e3779b97f4a7c15))
	uAbort := rng.Float64()
	uErr := rng.Float64()
	uTrunc := rng.Float64()
	uStall := rng.Float64()
	uJitter := rng.Float64()

	var d Outcome
	switch {
	case uAbort < r.AbortRate:
		d.Abort = true
	case uErr < r.ErrorRate:
		d.Error500 = true
	default:
		d.Truncate = uTrunc < r.TruncateRate
		d.Stall = uStall < r.StallRate
	}
	d.Latency = r.Latency + time.Duration(float64(r.Jitter)*uJitter)
	return d
}

// KeyString hashes a request path into a draw key (fnv-64a), matching
// the middleware's keying of Draw.
func KeyString(path string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(path))
	return h.Sum64()
}

// decide draws the request's fault plan from (seed, path, per-path
// attempt n).
func decide(seed uint64, path string, n uint64, r Rule) Outcome {
	return r.Draw(seed, KeyString(path), n)
}

// Wrap returns a handler injecting the profile's faults in front of
// next. A disabled profile returns next unchanged, so the wrapped
// pipeline is byte-identical to the unwrapped one.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	if !in.p.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// The outage schedule is checked before endpoint classification:
		// a down origin answers nothing, health probes included.
		if in.p.Down.active() && in.p.Down.At(in.now().Sub(in.start)) {
			in.inject("all", "down", r)
			trace.FromContext(r.Context()).Annotate("chaos.down", true)
			panic(http.ErrAbortHandler)
		}
		endpoint, rule, ok := in.endpointRule(r.URL.Path)
		if !ok || !rule.active() {
			next.ServeHTTP(w, r)
			return
		}
		in.mu.Lock()
		n := in.seq[r.URL.Path]
		in.seq[r.URL.Path] = n + 1
		g := in.reqs
		in.reqs++
		in.mu.Unlock()

		in.reg.Counter("pano_chaos_requests_total",
			"requests seen by the chaos injector", obs.L("endpoint", endpoint)).Inc()
		if p := in.p.Window.Period; p > 0 && int(g%uint64(p)) >= in.p.Window.Flaky {
			next.ServeHTTP(w, r)
			return
		}

		d := decide(in.p.Seed, r.URL.Path, n, rule)
		// When trace.Middleware wrapped us (it must sit OUTSIDE the
		// injector), every injected fault is annotated on the active
		// handler span, so a failed attempt's trace names its cause.
		sp := trace.FromContext(r.Context())
		if d.Latency > 0 {
			in.count(endpoint, "latency")
			sp.Annotate("chaos.latency_sec", d.Latency.Seconds())
			time.Sleep(d.Latency)
		}
		switch {
		case d.Abort:
			in.inject(endpoint, "abort", r)
			sp.Annotate("chaos.abort", true)
			panic(http.ErrAbortHandler)
		case d.Error500:
			in.inject(endpoint, "error", r)
			sp.Annotate("chaos.error", true)
			http.Error(w, "chaos: injected error", http.StatusInternalServerError)
			return
		}
		cw := &chaosWriter{rw: w, throttleBps: rule.ThrottleBps, truncateAt: -1, stallAt: -1}
		if d.Truncate {
			in.inject(endpoint, "truncate", r)
			sp.Annotate("chaos.truncate", true)
			cw.truncate = true
		}
		if d.Stall {
			in.inject(endpoint, "stall", r)
			sp.Annotate("chaos.stall", true)
			cw.stall = true
			cw.stallFor = rule.StallFor
			if cw.stallFor <= 0 {
				cw.stallFor = 250 * time.Millisecond
			}
		}
		if rule.ThrottleBps > 0 {
			in.count(endpoint, "throttle")
			sp.Annotate("chaos.throttle_bps", rule.ThrottleBps)
		}
		next.ServeHTTP(cw, r)
	})
}

func (in *Injector) count(endpoint, kind string) {
	in.reg.Counter("pano_chaos_injections_total",
		"faults injected by endpoint and kind",
		obs.L("endpoint", endpoint), obs.L("kind", kind)).Inc()
}

func (in *Injector) inject(endpoint, kind string, r *http.Request) {
	in.count(endpoint, kind)
	in.log.Logger().Warn("chaos_injected", "kind", kind, "endpoint", endpoint, "path", r.URL.Path)
}

// chaosWriter applies body-level faults: throttling, truncation at half
// the declared length, and a one-shot mid-body stall.
type chaosWriter struct {
	rw          http.ResponseWriter
	throttleBps float64
	truncate    bool
	stall       bool
	stallFor    time.Duration
	truncateAt  int // body bytes before the connection is cut; -1 = unresolved
	stallAt     int // body bytes before the stall; -1 = unresolved
	written     int
}

func (w *chaosWriter) Header() http.Header { return w.rw.Header() }

func (w *chaosWriter) WriteHeader(code int) {
	w.resolve(0)
	w.rw.WriteHeader(code)
}

// resolve fixes the truncation/stall offsets at half the body size: the
// declared Content-Length when the handler set one, otherwise the first
// write's size (firstChunk).
func (w *chaosWriter) resolve(firstChunk int) {
	size := firstChunk
	if cl, err := strconv.Atoi(w.rw.Header().Get("Content-Length")); err == nil && cl > 0 {
		size = cl
	}
	if w.truncate && w.truncateAt < 0 && size > 0 {
		w.truncateAt = size / 2
	}
	if w.stall && w.stallAt < 0 && size > 0 {
		w.stallAt = size / 2
	}
}

func (w *chaosWriter) Write(p []byte) (int, error) {
	w.resolve(len(p))
	wrote := 0
	if w.stallAt >= 0 && w.written <= w.stallAt && w.stallAt < w.written+len(p) {
		// Deliver up to the stall point, pause, then continue.
		head := w.stallAt - w.written
		n, err := w.deliver(p[:head])
		wrote += n
		if err != nil {
			return wrote, err
		}
		w.stallAt = -1
		time.Sleep(w.stallFor)
		p = p[head:]
	}
	n, err := w.deliver(p)
	return wrote + n, err
}

// deliver writes through the throttle and enforces truncation.
func (w *chaosWriter) deliver(p []byte) (int, error) {
	if w.truncateAt >= 0 && w.written+len(p) >= w.truncateAt {
		head := w.truncateAt - w.written
		if head > 0 {
			w.throttled(p[:head])
		}
		// Cut the connection mid-body: net/http recognizes
		// ErrAbortHandler and closes without a trailing chunk, so the
		// client observes a short read against Content-Length.
		panic(http.ErrAbortHandler)
	}
	return w.throttled(p)
}

// throttled writes p, pacing to ThrottleBps in sub-chunks so large
// bodies drip rather than burst.
func (w *chaosWriter) throttled(p []byte) (int, error) {
	if w.throttleBps <= 0 {
		n, err := w.rw.Write(p)
		w.written += n
		return n, err
	}
	const chunk = 4 << 10
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > chunk {
			n = chunk
		}
		m, err := w.rw.Write(p[:n])
		total += m
		w.written += m
		if err != nil {
			return total, err
		}
		time.Sleep(time.Duration(float64(m*8) / w.throttleBps * float64(time.Second)))
		p = p[n:]
	}
	return total, nil
}
