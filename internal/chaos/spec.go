package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse builds a Profile from a compact comma-separated spec, the
// format the -chaos flag and the bench scripts use:
//
//	seed=7,tile-error=0.1,tile-latency=2ms,tile-jitter=1ms,window=20:5
//
// Keys:
//
//	seed=N                 decision seed (default 1)
//	window=P:F             flaky window: F flaky requests per period of P
//	down=always            hard outage: every request aborted
//	down=A+F               outage window: down F long, starting A in
//	down=A+F/E             flapping: the A+F window repeats every E
//	manifest-error=R       manifest 500 probability
//	manifest-latency=D     manifest added latency
//	tile-error=R           tile 500 probability
//	tile-abort=R           tile connection-abort probability
//	tile-truncate=R        tile truncated-body probability
//	tile-stall=R           tile mid-body stall probability
//	tile-stall-for=D       stall duration (default 250ms)
//	tile-latency=D         tile added latency
//	tile-jitter=D          uniform extra tile latency in [0, D)
//	tile-throttle-bps=F    tile body bandwidth cap, bits/second
//
// R is a probability in [0, 1], D a Go duration, N/F numbers. An empty
// spec returns a disabled (zero) Profile.
func Parse(spec string) (Profile, error) {
	p := Profile{Seed: 1}
	if strings.TrimSpace(spec) == "" {
		return Profile{}, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return Profile{}, fmt.Errorf("chaos: bad spec element %q (want key=value)", part)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "window":
			per, fl, ok := strings.Cut(val, ":")
			if !ok {
				return Profile{}, fmt.Errorf("chaos: bad window %q (want period:flaky)", val)
			}
			if p.Window.Period, err = strconv.Atoi(per); err == nil {
				p.Window.Flaky, err = strconv.Atoi(fl)
			}
		case "down":
			p.Down, err = parseDown(val)
		case "manifest-error":
			p.Manifest.ErrorRate, err = parseRate(val)
		case "manifest-latency":
			p.Manifest.Latency, err = time.ParseDuration(val)
		case "tile-error":
			p.Tile.ErrorRate, err = parseRate(val)
		case "tile-abort":
			p.Tile.AbortRate, err = parseRate(val)
		case "tile-truncate":
			p.Tile.TruncateRate, err = parseRate(val)
		case "tile-stall":
			p.Tile.StallRate, err = parseRate(val)
		case "tile-stall-for":
			p.Tile.StallFor, err = time.ParseDuration(val)
		case "tile-latency":
			p.Tile.Latency, err = time.ParseDuration(val)
		case "tile-jitter":
			p.Tile.Jitter, err = time.ParseDuration(val)
		case "tile-throttle-bps":
			p.Tile.ThrottleBps, err = strconv.ParseFloat(val, 64)
		default:
			return Profile{}, fmt.Errorf("chaos: unknown spec key %q", key)
		}
		if err != nil {
			return Profile{}, fmt.Errorf("chaos: bad value for %q: %v", key, err)
		}
	}
	return p, nil
}

// parseDown parses an outage schedule: "always", "A+F" (one-shot
// window), or "A+F/E" (flapping with period E).
func parseDown(s string) (Down, error) {
	if s == "always" {
		return Down{Always: true}, nil
	}
	after, rest, ok := strings.Cut(s, "+")
	if !ok {
		return Down{}, fmt.Errorf("bad down %q (want always, A+F, or A+F/E)", s)
	}
	var d Down
	var err error
	if d.After, err = time.ParseDuration(after); err != nil {
		return Down{}, err
	}
	forPart, every, flap := strings.Cut(rest, "/")
	if d.For, err = time.ParseDuration(forPart); err != nil {
		return Down{}, err
	}
	if d.For <= 0 {
		return Down{}, fmt.Errorf("down window %q must be positive", forPart)
	}
	if flap {
		if d.Every, err = time.ParseDuration(every); err != nil {
			return Down{}, err
		}
		if d.Every <= d.For {
			return Down{}, fmt.Errorf("down period %q must exceed the window %q", every, forPart)
		}
	}
	return d, nil
}

func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", v)
	}
	return v, nil
}

// String renders the profile as a canonical spec Parse accepts.
func (p Profile) String() string {
	if !p.Enabled() {
		return "off"
	}
	var parts []string
	add := func(key, val string) { parts = append(parts, key+"="+val) }
	if p.Seed != 0 {
		add("seed", strconv.FormatUint(p.Seed, 10))
	}
	if p.Window.Period > 0 {
		add("window", fmt.Sprintf("%d:%d", p.Window.Period, p.Window.Flaky))
	}
	switch {
	case p.Down.Always:
		add("down", "always")
	case p.Down.active():
		v := p.Down.After.String() + "+" + p.Down.For.String()
		if p.Down.Every > 0 {
			v += "/" + p.Down.Every.String()
		}
		add("down", v)
	}
	rate := func(key string, v float64) {
		if v > 0 {
			add(key, strconv.FormatFloat(v, 'g', -1, 64))
		}
	}
	dur := func(key string, d time.Duration) {
		if d > 0 {
			add(key, d.String())
		}
	}
	rate("manifest-error", p.Manifest.ErrorRate)
	dur("manifest-latency", p.Manifest.Latency)
	rate("tile-error", p.Tile.ErrorRate)
	rate("tile-abort", p.Tile.AbortRate)
	rate("tile-truncate", p.Tile.TruncateRate)
	rate("tile-stall", p.Tile.StallRate)
	dur("tile-stall-for", p.Tile.StallFor)
	dur("tile-latency", p.Tile.Latency)
	dur("tile-jitter", p.Tile.Jitter)
	rate2 := p.Tile.ThrottleBps
	if rate2 > 0 {
		add("tile-throttle-bps", strconv.FormatFloat(rate2, 'g', -1, 64))
	}
	return strings.Join(parts, ",")
}
