package obs

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestLabelKeyEscaping is the regression test for the series-key
// collision: the old encoding concatenated raw values with =/;
// delimiters, so {a="x;b=y"} and {a="x", b="y"} produced the same key
// and collapsed into one series.
func TestLabelKeyEscaping(t *testing.T) {
	collisions := [][2][]Label{
		{{L("a", "x;b=y")}, {L("a", "x"), L("b", "y")}},
		{{L("a", "x="), L("b", "y")}, {L("a", "x"), L("=b", "y")}},
		{{L("a", ";")}, {L("a", ""), L("", "")}},
		{{L("a", `x\;`)}, {L("a", `x\`), L("", "")}},
	}
	for _, pair := range collisions {
		k0, k1 := labelKey(pair[0]), labelKey(pair[1])
		if k0 == k1 {
			t.Errorf("labelKey collision: %v and %v both map to %q", pair[0], pair[1], k0)
		}
	}

	// The collision was observable end to end: two distinct label sets
	// incremented the same counter series.
	r := NewRegistry()
	r.Counter("x_total", "", L("a", "x;b=y")).Inc()
	r.Counter("x_total", "", L("a", "x"), L("b", "y")).Add(10)
	if got := r.CounterValue("x_total", L("a", "x;b=y")); got != 1 {
		t.Errorf("series {a=\"x;b=y\"} = %v, want 1 (collided with {a,b}?)", got)
	}
	if got := r.CounterValue("x_total", L("a", "x"), L("b", "y")); got != 10 {
		t.Errorf("series {a,b} = %v, want 10", got)
	}
	if n := len(r.Snapshot()); n != 2 {
		t.Errorf("snapshot has %d series, want 2 distinct", n)
	}
}

func TestSeriesKeyOrderInsensitive(t *testing.T) {
	a := SeriesKey(L("b", "2"), L("a", "1"))
	b := SeriesKey(L("a", "1"), L("b", "2"))
	if a != b {
		t.Errorf("SeriesKey order-sensitive: %q vs %q", a, b)
	}
}

// populate fills a registry with the nasty cases federation must
// survive: delimiter characters in values, quotes, backslashes,
// newlines, exemplars, +Inf observations, and multiple bucket layouts.
func populate(r *Registry) {
	r.Counter("pano_test_tiles_total", "tiles fetched", L("edge", "a")).Add(41)
	r.Counter("pano_test_tiles_total", "tiles fetched", L("edge", "b")).Add(3.5)
	r.Counter("pano_test_plain_total", "no labels here").Inc()
	c := r.Counter("pano_test_exemplar_total", "counter with exemplar", L("k", "v"))
	c.IncExemplar("deadbeefcafe0123")
	r.Gauge("pano_test_mean_px", "mean\nmulti-line help", L("q", `she said "hi"`)).Set(-12.75)
	r.Gauge("pano_test_nasty", "delimiters", L("a", "x;b=y"), L("c", `back\slash`), L("d", "line\nbreak")).Set(2)
	h := r.Histogram("pano_test_latency_seconds", "fetch latency", DefBuckets, L("tier", "edge"))
	for _, v := range []float64{0.001, 0.02, 0.3, 4, 99, math.Inf(1)} {
		h.Observe(v)
	}
	h.ObserveExemplar(0.25, "0123456789abcdef")
	h2 := r.Histogram("pano_test_sizes_bytes", "tile sizes", ExponentialBuckets(1024, 4, 6))
	h2.Observe(2048)
	h2.Observe(1 << 20)
}

// TestParseRoundTrip renders a populated registry and parses it back,
// requiring the parsed series to equal Snapshot (modulo the rendering
// of multi-line help as single-line).
func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	populate(r)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ParsePrometheus: %v\ninput:\n%s", err, buf.String())
	}
	want := r.Snapshot()
	compareSeries(t, want, got)
}

func compareSeries(t *testing.T, want, got []SnapshotSeries) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("parsed %d series, want %d", len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if g.Name != w.Name || g.Key != w.Key || g.Type != w.Type {
			t.Errorf("series %d: got (%s, %q, %s), want (%s, %q, %s)",
				i, g.Name, g.Key, g.Type, w.Name, w.Key, w.Type)
			continue
		}
		wantHelp := strings.ReplaceAll(w.Help, "\n", " ")
		if g.Help != wantHelp {
			t.Errorf("%s: help %q, want %q", g.Name, g.Help, wantHelp)
		}
		if len(g.Labels) != len(w.Labels) {
			t.Errorf("%s: %d labels, want %d", g.Name, len(g.Labels), len(w.Labels))
			continue
		}
		for j := range w.Labels {
			if g.Labels[j] != w.Labels[j] {
				t.Errorf("%s: label %d = %+v, want %+v", g.Name, j, g.Labels[j], w.Labels[j])
			}
		}
		if w.Type == "histogram" {
			if g.Count != w.Count || g.Sum != w.Sum {
				t.Errorf("%s: count/sum (%d, %v), want (%d, %v)", g.Name, g.Count, g.Sum, w.Count, w.Sum)
			}
			if len(g.Uppers) != len(w.Uppers) || len(g.Counts) != len(w.Counts) {
				t.Errorf("%s: bucket layout (%d uppers, %d counts), want (%d, %d)",
					g.Name, len(g.Uppers), len(g.Counts), len(w.Uppers), len(w.Counts))
				continue
			}
			for j := range w.Uppers {
				if g.Uppers[j] != w.Uppers[j] || g.Counts[j] != w.Counts[j] {
					t.Errorf("%s: bucket %d = (%v, %d), want (%v, %d)",
						g.Name, j, g.Uppers[j], g.Counts[j], w.Uppers[j], w.Counts[j])
				}
			}
			if g.Counts[len(g.Counts)-1] != w.Counts[len(w.Counts)-1] {
				t.Errorf("%s: +Inf bucket %d, want %d",
					g.Name, g.Counts[len(g.Counts)-1], w.Counts[len(w.Counts)-1])
			}
		} else if g.Value != w.Value {
			t.Errorf("%s{%s}: value %v, want %v", g.Name, g.Key, g.Value, w.Value)
		}
	}
}

// TestParseRoundTripRandom round-trips many randomized registries.
func TestParseRoundTripRandom(t *testing.T) {
	nastyVals := []string{"", "plain", `x;b=y`, `a=b`, `q"u"o`, `tr\ail\`, "nl\nnl", "=;\\\"\n", "日本語"}
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 40; iter++ {
		r := NewRegistry()
		nFam := 1 + rng.Intn(5)
		for f := 0; f < nFam; f++ {
			name := "pano_rand_" + string(rune('a'+f)) + "_total"
			nSeries := 1 + rng.Intn(4)
			for s := 0; s < nSeries; s++ {
				var labels []Label
				for l := 0; l < rng.Intn(3); l++ {
					labels = append(labels,
						L("l"+string(rune('a'+l)), nastyVals[rng.Intn(len(nastyVals))]))
				}
				switch rng.Intn(3) {
				case 0:
					c := r.Counter(name, "random counter", labels...)
					c.Add(float64(rng.Intn(1000)) / 8)
					if rng.Intn(2) == 0 {
						c.IncExemplar("abcdef0123456789")
					}
				case 1:
					r.Gauge(strings.TrimSuffix(name, "_total"), "random gauge", labels...).
						Set(rng.NormFloat64() * 100)
				case 2:
					h := r.Histogram(strings.TrimSuffix(name, "_total")+"_seconds",
						"random hist", LinearBuckets(0, 0.5, 1+rng.Intn(8)), labels...)
					for o := 0; o < rng.Intn(20); o++ {
						h.Observe(rng.ExpFloat64())
					}
					if rng.Intn(3) == 0 {
						h.Observe(math.Inf(1))
					}
				}
			}
		}
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("iter %d: ParsePrometheus: %v\ninput:\n%s", iter, err, buf.String())
		}
		compareSeries(t, r.Snapshot(), got)
		if t.Failed() {
			t.Fatalf("iter %d diverged; input:\n%s", iter, buf.String())
		}
	}
}

// TestWritePrometheusSeriesFixpoint checks render∘parse is the identity
// on the rendered text — the stability pano-obsd's /metrics relies on.
func TestWritePrometheusSeriesFixpoint(t *testing.T) {
	r := NewRegistry()
	populate(r)
	var first bytes.Buffer
	if err := WritePrometheusSeries(&first, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	series, err := ParsePrometheus(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("parse of rendered series: %v\n%s", err, first.String())
	}
	var second bytes.Buffer
	if err := WritePrometheusSeries(&second, series); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Errorf("render→parse→render not a fixpoint:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}
}

func TestParsePrometheusErrors(t *testing.T) {
	cases := []struct {
		name  string
		input string
	}{
		{"duplicate series", "x_total 1\nx_total 2\n"},
		{"duplicate labeled series", `x{a="1"} 1` + "\n" + `x{a="1"} 2` + "\n"},
		{"duplicate label key", `x{a="1",a="2"} 1` + "\n"},
		{"retyped family", "# TYPE x counter\n# TYPE x gauge\n"},
		{"bad escape", `x{a="\q"} 1` + "\n"},
		{"unterminated value", `x{a="oops} 1` + "\n"},
		{"bad value", "x one\n"},
		{"trailing garbage", "x 1 2 3\n"},
		{"bad metric name", "1x 1\n"},
		{"bad label name", `x{1a="v"} 1` + "\n"},
		{"bucket without le", "# TYPE h histogram\nh_bucket 1\nh_count 1\n"},
		{"non-cumulative histogram", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" + "h_count 5\n"},
		{"histogram without count", "# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n"},
		{"count disagrees with inf", "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 5` + "\n" + "h_count 6\n"},
		{"count below finite buckets", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + "h_count 3\n"},
		{"histogram sampled directly", "# TYPE h histogram\nh 1\n"},
		{"duplicate le", "# TYPE h histogram\n" +
			`h_bucket{le="1"} 2` + "\n" + `h_bucket{le="1"} 2` + "\n" + "h_count 2\n"},
		{"type after samples", "x 1\n# TYPE x counter\n"},
	}
	for _, tc := range cases {
		if _, err := ParsePrometheus(strings.NewReader(tc.input)); err == nil {
			t.Errorf("%s: no error for:\n%s", tc.name, tc.input)
		}
	}
}

func TestParsePrometheusLenient(t *testing.T) {
	input := "# a free-form comment\n" +
		"# exemplar x_total{} trace_id=\"abc\" 1\n" +
		"# TYPE x_total counter\n" +
		"x_total 4 1700000000000\n" +
		"\n" +
		"untyped_metric{a=\"1\"} 2.5\n" +
		"# TYPE inf_gauge gauge\n" +
		"inf_gauge +Inf\n"
	series, err := ParsePrometheus(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SnapshotSeries{}
	for _, s := range series {
		byName[s.Name] = s
	}
	if s := byName["x_total"]; s.Type != "counter" || s.Value != 4 {
		t.Errorf("x_total = %+v", s)
	}
	if s := byName["untyped_metric"]; s.Type != "gauge" || s.Value != 2.5 {
		t.Errorf("untyped_metric parsed as %+v, want gauge 2.5", s)
	}
	if s := byName["inf_gauge"]; !math.IsInf(s.Value, 1) {
		t.Errorf("inf_gauge = %v, want +Inf", s.Value)
	}
}

// FuzzParsePrometheus asserts the parser never panics, and that any
// exposition it accepts reaches a render fixpoint: parse → render →
// parse → render must produce identical text both times.
func FuzzParsePrometheus(f *testing.F) {
	f.Add([]byte("# TYPE x counter\nx_total 1\n"))
	f.Add([]byte(`h_bucket{le="0.5"} 1` + "\n" + `h_bucket{le="+Inf"} 3` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		series, err := ParsePrometheus(bytes.NewReader(data))
		if err != nil {
			return
		}
		var one bytes.Buffer
		if err := WritePrometheusSeries(&one, series); err != nil {
			t.Fatalf("render of accepted input: %v", err)
		}
		again, err := ParsePrometheus(bytes.NewReader(one.Bytes()))
		if err != nil {
			t.Fatalf("reparse of own rendering failed: %v\nrendered:\n%s", err, one.String())
		}
		var two bytes.Buffer
		if err := WritePrometheusSeries(&two, again); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(one.Bytes(), two.Bytes()) {
			t.Fatalf("not a fixpoint:\nfirst:\n%s\nsecond:\n%s", one.String(), two.String())
		}
	})
}
