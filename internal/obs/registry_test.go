package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pano_test_total", "test counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-1) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	if got := r.CounterValue("pano_test_total"); got != 3.5 {
		t.Fatalf("CounterValue = %v, want 3.5", got)
	}
	g := r.Gauge("pano_test_gauge", "test gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	// Same name+labels returns the same series.
	r.Counter("pano_test_total", "").Inc()
	if got := c.Value(); got != 4.5 {
		t.Fatalf("counter after re-get = %v, want 4.5", got)
	}
}

func TestLabelsSeparateSeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("pano_req_total", "", L("code", "200")).Add(3)
	r.Counter("pano_req_total", "", L("code", "404")).Add(1)
	if got := r.CounterValue("pano_req_total", L("code", "200")); got != 3 {
		t.Fatalf("code=200: %v", got)
	}
	if got := r.CounterValue("pano_req_total", L("code", "404")); got != 1 {
		t.Fatalf("code=404: %v", got)
	}
	// Label order must not matter.
	r.Counter("pano_multi_total", "", L("a", "1"), L("b", "2")).Inc()
	if got := r.CounterValue("pano_multi_total", L("b", "2"), L("a", "1")); got != 1 {
		t.Fatalf("label order sensitivity: %v", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pano_lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
	if got := h.Sum(); math.Abs(got-55.55) > 1e-9 {
		t.Fatalf("sum = %v, want 55.55", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pano_lat_seconds_bucket{le="0.1"} 1`,
		`pano_lat_seconds_bucket{le="1"} 2`,
		`pano_lat_seconds_bucket{le="10"} 3`,
		`pano_lat_seconds_bucket{le="+Inf"} 4`,
		`pano_lat_seconds_count 4`,
		"# TYPE pano_lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("pano_b_total", "bytes served", L("endpoint", "tile")).Add(42)
	r.Gauge("pano_a_gauge", "a gauge").Set(1.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Families sorted by name: pano_a_gauge before pano_b_total.
	if ai, bi := strings.Index(out, "pano_a_gauge"), strings.Index(out, "pano_b_total"); ai < 0 || bi < 0 || ai > bi {
		t.Errorf("families not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP pano_b_total bytes served",
		"# TYPE pano_b_total counter",
		`pano_b_total{endpoint="tile"} 42`,
		"# TYPE pano_a_gauge gauge",
		"pano_a_gauge 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("pano_esc_total", "", L("path", `a"b\c`+"\n")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `pano_esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaping: got\n%s\nwant substring %q", b.String(), want)
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("pano_name", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as gauge should panic")
		}
	}()
	r.Gauge("pano_name", "")
}

func TestNopRegistryAndInstruments(t *testing.T) {
	r := Nop()
	// Every call on the nil registry and its nil instruments must be a
	// safe no-op.
	r.Counter("x", "").Inc()
	r.Counter("x", "").Add(3)
	r.Gauge("x2", "").Set(1)
	r.Histogram("x3", "", nil).Observe(2)
	NewTimer(r.Histogram("x3", "", nil)).ObserveDuration()
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if v := r.CounterValue("x"); v != 0 {
		t.Fatalf("nop counter value %v", v)
	}
	if n := r.HistogramCount("x3"); n != 0 {
		t.Fatalf("nop histogram count %d", n)
	}
}

func TestTimerRecordsSeconds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pano_t_seconds", "", DefBuckets)
	tm := NewTimer(h)
	time.Sleep(2 * time.Millisecond)
	d := tm.ObserveDuration()
	if d < 2*time.Millisecond {
		t.Fatalf("elapsed %v", d)
	}
	if h.Count() != 1 || h.Sum() <= 0 {
		t.Fatalf("histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	Time(h, func() {})
	if h.Count() != 2 {
		t.Fatalf("Time did not record")
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines —
// run under `go test -race` (the Makefile check target does) to verify
// the registry is data-race free.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 12
	const perG = 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			lbl := L("worker", string(rune('a'+id%4)))
			for i := 0; i < perG; i++ {
				r.Counter("pano_conc_total", "concurrent counter").Inc()
				r.Counter("pano_conc_labeled_total", "", lbl).Add(2)
				r.Gauge("pano_conc_gauge", "").Set(float64(i))
				r.Histogram("pano_conc_seconds", "", DefBuckets).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var b strings.Builder
					_ = r.WritePrometheus(&b)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.CounterValue("pano_conc_total"); got != goroutines*perG {
		t.Fatalf("concurrent counter = %v, want %d", got, goroutines*perG)
	}
	var labeled float64
	for _, w := range []string{"a", "b", "c", "d"} {
		labeled += r.CounterValue("pano_conc_labeled_total", L("worker", w))
	}
	if labeled != goroutines*perG*2 {
		t.Fatalf("labeled sum = %v, want %d", labeled, goroutines*perG*2)
	}
	if got := r.HistogramCount("pano_conc_seconds"); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(10, 5, 3)
	if lin[0] != 10 || lin[1] != 15 || lin[2] != 20 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 10, 3)
	if exp[0] != 1 || exp[1] != 10 || exp[2] != 100 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func TestCounterExemplar(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pano_test_hedge_total", "test", L("kind", "win"))
	if _, ok := c.Exemplar(); ok {
		t.Fatal("fresh counter holds an exemplar")
	}
	c.IncExemplar("")
	if _, ok := c.Exemplar(); ok {
		t.Fatal("empty trace id must not attach an exemplar")
	}
	c.IncExemplar("aaaa")
	c.IncExemplar("bbbb")
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	ex, ok := r.CounterExemplar("pano_test_hedge_total", L("kind", "win"))
	if !ok || ex.TraceID != "bbbb" {
		t.Fatalf("exemplar = %+v ok=%v, want last trace id bbbb", ex, ok)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# exemplar pano_test_hedge_total{kind="win"} trace_id="bbbb" 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing counter exemplar line %q:\n%s", want, b.String())
	}
	// Nil counter stays no-op.
	var nilC *Counter
	nilC.IncExemplar("cccc")
	if _, ok := nilC.Exemplar(); ok {
		t.Fatal("nil counter returned an exemplar")
	}
}
