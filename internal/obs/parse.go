package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// ParsePrometheus parses Prometheus text exposition (version 0.0.4, the
// dialect WritePrometheus emits) back into SnapshotSeries — the inverse
// of a registry scrape, and the foundation of /metrics federation.
//
// HELP and TYPE comment lines attach help text and a type to a family;
// any other comment line (including the "# exemplar" lines
// WritePrometheus rides along) is skipped. Histogram families are
// reassembled from their cumulative _bucket/_sum/_count expansion into
// the per-bucket non-cumulative Counts layout Snapshot uses. Families
// sampled without a TYPE line come back as gauges. Series are returned
// sorted by name then label key, matching Registry.Snapshot, so
// parse(render(snapshot)) is the identity on everything Snapshot
// reports (help newlines excepted: rendering flattens them to spaces).
//
// The parser is strict where sloppiness would corrupt federation math:
// duplicate series, duplicate label keys, malformed escapes, retyped
// families, non-monotone histogram buckets, and trailing garbage are
// all errors rather than guesses.
func ParsePrometheus(r io.Reader) ([]SnapshotSeries, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := &promParser{
		fams: make(map[string]*parseFamily),
	}
	for ln, line := range strings.Split(string(data), "\n") {
		if err := p.line(line); err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", ln+1, err)
		}
	}
	return p.finish()
}

// parseFamily accumulates one metric family while scanning.
type parseFamily struct {
	name string
	help string
	typ  string // "counter", "gauge", "histogram", "untyped", "" (unseen)

	// Plain (counter/gauge/untyped) series, keyed by label key.
	order  []string
	series map[string]*parsedSeries

	// Histogram accumulators, keyed by the label key WITHOUT le.
	horder []string
	hists  map[string]*histAccum
}

type parsedSeries struct {
	labels []Label
	value  float64
}

// histAccum gathers one histogram series' cumulative exposition lines.
type histAccum struct {
	labels  []Label
	les     []float64 // finite upper bounds in line order
	cums    []uint64  // cumulative counts per finite bound
	infCum  uint64
	hasInf  bool
	sum     float64
	hasSum  bool
	count   uint64
	hasCnt  bool
	seenLEs map[string]bool
}

type promParser struct {
	order []string
	fams  map[string]*parseFamily
}

func (p *promParser) fam(name string) *parseFamily {
	f := p.fams[name]
	if f == nil {
		f = &parseFamily{
			name:   name,
			series: make(map[string]*parsedSeries),
			hists:  make(map[string]*histAccum),
		}
		p.fams[name] = f
		p.order = append(p.order, name)
	}
	return f
}

func (p *promParser) line(line string) error {
	line = strings.TrimRight(line, "\r")
	if strings.TrimSpace(line) == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return p.comment(line)
	}
	return p.sample(line)
}

func (p *promParser) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 3 {
		return nil // bare comment
	}
	switch fields[1] {
	case "HELP":
		name := fields[2]
		if err := checkMetricName(name); err != nil {
			return err
		}
		help := ""
		if len(fields) == 4 {
			help = fields[3]
		}
		p.fam(name).help = help
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("bad TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		if err := checkMetricName(name); err != nil {
			return err
		}
		switch typ {
		case "counter", "gauge", "histogram", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		f := p.fam(name)
		if f.typ != "" && f.typ != typ {
			return fmt.Errorf("metric %s retyped from %s to %s", name, f.typ, typ)
		}
		if f.typ == "" && (len(f.order) > 0 || len(f.horder) > 0) {
			return fmt.Errorf("TYPE for %s after its samples", name)
		}
		f.typ = typ
	}
	// Any other comment (exemplars included) is skipped.
	return nil
}

// sample parses one "name{labels} value [timestamp]" line.
func (p *promParser) sample(line string) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	fields := strings.Fields(rest)
	if len(fields) != 1 && len(fields) != 2 {
		return fmt.Errorf("bad sample %q (want value [timestamp])", line)
	}
	val, err := parsePromFloat(fields[0])
	if err != nil {
		return fmt.Errorf("bad value %q: %w", fields[0], err)
	}
	if len(fields) == 2 {
		// Optional millisecond timestamp: accepted, not retained (the
		// snapshot model is point-in-time).
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("bad timestamp %q", fields[1])
		}
	}

	// Histogram components route by suffix when the base family was
	// declared a histogram; an exact non-histogram family wins first, so
	// an independent counter named x_sum is never swallowed by a
	// histogram x.
	if f, ok := p.fams[name]; ok && f.typ != "" && f.typ != "histogram" {
		return p.plainSample(f, name, labels, val)
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suf)
		if !found {
			continue
		}
		if f, ok := p.fams[base]; ok && f.typ == "histogram" {
			return p.histSample(f, suf, labels, val, line)
		}
	}
	if f, ok := p.fams[name]; ok && f.typ == "histogram" {
		return fmt.Errorf("histogram %s sampled directly (want _bucket/_sum/_count)", name)
	}
	return p.plainSample(p.fam(name), name, labels, val)
}

func (p *promParser) plainSample(f *parseFamily, name string, labels []Label, val float64) error {
	key := labelKey(labels)
	if _, dup := f.series[key]; dup {
		return fmt.Errorf("duplicate series %s{%s}", name, key)
	}
	f.series[key] = &parsedSeries{labels: sortedLabels(labels), value: val}
	f.order = append(f.order, key)
	return nil
}

func (p *promParser) histSample(f *parseFamily, suf string, labels []Label, val float64, line string) error {
	var le string
	if suf == "_bucket" {
		rest := labels[:0]
		for _, l := range labels {
			if l.Key == "le" {
				le = l.Value
			} else {
				rest = append(rest, l)
			}
		}
		if le == "" {
			return fmt.Errorf("bucket without le label: %q", line)
		}
		labels = rest
	}
	key := labelKey(labels)
	h := f.hists[key]
	if h == nil {
		h = &histAccum{labels: sortedLabels(labels), seenLEs: make(map[string]bool)}
		f.hists[key] = h
		f.horder = append(f.horder, key)
	}
	switch suf {
	case "_bucket":
		if h.seenLEs[le] {
			return fmt.Errorf("duplicate bucket le=%q in %s", le, f.name)
		}
		h.seenLEs[le] = true
		if val < 0 || val != math.Trunc(val) || val >= float64(1<<63) {
			return fmt.Errorf("bad bucket count %v in %s", val, f.name)
		}
		if le == "+Inf" {
			h.infCum, h.hasInf = uint64(val), true
			return nil
		}
		ub, err := parsePromFloat(le)
		if err != nil || math.IsInf(ub, 0) || math.IsNaN(ub) {
			return fmt.Errorf("bad bucket bound le=%q in %s", le, f.name)
		}
		h.les = append(h.les, ub)
		h.cums = append(h.cums, uint64(val))
	case "_sum":
		if h.hasSum {
			return fmt.Errorf("duplicate _sum in %s", f.name)
		}
		h.sum, h.hasSum = val, true
	case "_count":
		if h.hasCnt {
			return fmt.Errorf("duplicate _count in %s", f.name)
		}
		if val < 0 || val != math.Trunc(val) || val >= float64(1<<63) {
			return fmt.Errorf("bad _count %v in %s", val, f.name)
		}
		h.count, h.hasCnt = uint64(val), true
	}
	return nil
}

// finish assembles the scanned families into sorted SnapshotSeries.
func (p *promParser) finish() ([]SnapshotSeries, error) {
	names := append([]string(nil), p.order...)
	sort.Strings(names)
	var out []SnapshotSeries
	for _, name := range names {
		f := p.fams[name]
		typ := f.typ
		switch typ {
		case "", "untyped":
			typ = "gauge"
		}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			out = append(out, SnapshotSeries{
				Name: name, Help: f.help, Type: typ,
				Labels: s.labels, Key: k, Value: s.value,
			})
		}
		hkeys := append([]string(nil), f.horder...)
		sort.Strings(hkeys)
		for _, k := range hkeys {
			ss, err := f.hists[k].build(name, f.help, k)
			if err != nil {
				return nil, fmt.Errorf("obs: parse: %w", err)
			}
			out = append(out, ss)
		}
	}
	return out, nil
}

// build converts a histogram accumulator to the Snapshot layout:
// sorted finite uppers, per-bucket (non-cumulative) counts with the
// +Inf overflow bucket last.
func (h *histAccum) build(name, help, key string) (SnapshotSeries, error) {
	type bkt struct {
		ub  float64
		cum uint64
	}
	bs := make([]bkt, len(h.les))
	for i := range h.les {
		bs[i] = bkt{h.les[i], h.cums[i]}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i].ub < bs[j].ub })
	ss := SnapshotSeries{
		Name: name, Help: help, Type: "histogram",
		Labels: h.labels, Key: key,
		Uppers: make([]float64, len(bs)),
		Counts: make([]uint64, len(bs)+1),
	}
	var prev uint64
	var finite uint64
	for i, b := range bs {
		if b.cum < prev {
			return ss, fmt.Errorf("histogram %s: bucket counts not cumulative at le=%v", name, b.ub)
		}
		ss.Uppers[i] = b.ub
		ss.Counts[i] = b.cum - prev
		finite = b.cum
		prev = b.cum
	}
	switch {
	case h.hasCnt && h.hasInf && h.count != h.infCum:
		return ss, fmt.Errorf("histogram %s: _count %d disagrees with +Inf bucket %d", name, h.count, h.infCum)
	case h.hasCnt:
		ss.Count = h.count
	case h.hasInf:
		ss.Count = h.infCum
	default:
		return ss, fmt.Errorf("histogram %s: no _count or +Inf bucket", name)
	}
	if ss.Count < finite {
		return ss, fmt.Errorf("histogram %s: total %d below finite buckets %d", name, ss.Count, finite)
	}
	ss.Counts[len(bs)] = ss.Count - finite
	ss.Sum = h.sum
	return ss, nil
}

// splitSample splits a sample line into metric name, parsed labels, and
// the remaining value text.
func splitSample(line string) (name string, labels []Label, rest string, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i <= 0 {
		return "", nil, "", fmt.Errorf("bad sample %q", line)
	}
	name = line[:i]
	if err := checkMetricName(name); err != nil {
		return "", nil, "", err
	}
	rest = line[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, "", fmt.Errorf("%s: %w", name, err)
		}
	}
	return name, labels, rest, nil
}

// parseLabels consumes `k="v",...}` (the opening brace already eaten),
// returning the labels and the text after the closing brace.
func parseLabels(s string) ([]Label, string, error) {
	var labels []Label
	seen := map[string]bool{}
	for {
		s = strings.TrimLeft(s, " \t")
		if strings.HasPrefix(s, "}") {
			return labels, s[1:], nil
		}
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, "", fmt.Errorf("bad label set near %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if err := checkLabelName(key); err != nil {
			return nil, "", err
		}
		if seen[key] {
			return nil, "", fmt.Errorf("duplicate label %q", key)
		}
		seen[key] = true
		s = strings.TrimLeft(s[eq+1:], " \t")
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("unquoted value for label %q", key)
		}
		val, tail, err := parseQuoted(s[1:])
		if err != nil {
			return nil, "", fmt.Errorf("label %q: %w", key, err)
		}
		labels = append(labels, Label{Key: key, Value: val})
		s = strings.TrimLeft(tail, " \t")
		switch {
		case strings.HasPrefix(s, ","):
			s = s[1:]
		case strings.HasPrefix(s, "}"):
			return labels, s[1:], nil
		default:
			return nil, "", fmt.Errorf("bad label separator near %q", s)
		}
	}
}

// parseQuoted consumes a label value up to its closing quote, undoing
// the \\ \n \" escapes escapeLabel applies.
func parseQuoted(s string) (val, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], nil
		case '\\':
			i++
			if i >= len(s) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case '"':
				b.WriteByte('"')
			default:
				return "", "", fmt.Errorf("bad escape \\%c", s[i])
			}
		default:
			b.WriteByte(c)
		}
	}
	return "", "", fmt.Errorf("unterminated value")
}

func parsePromFloat(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

func checkMetricName(s string) error {
	if s == "" {
		return fmt.Errorf("empty metric name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("bad metric name %q", s)
		}
	}
	return nil
}

func checkLabelName(s string) error {
	if s == "" {
		return fmt.Errorf("empty label name")
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("bad label name %q", s)
		}
	}
	return nil
}

// WritePrometheusSeries renders snapshot series in the same text
// exposition WritePrometheus produces from a live registry — the other
// half of the federation round trip, used by pano-obsd to serve merged
// cluster series. Series are grouped into families and sorted by name
// then label key; histogram Counts are re-expanded into cumulative
// _bucket lines with the +Inf bucket and _count both carrying Count.
// Exemplars are not part of SnapshotSeries and so are not rendered.
func WritePrometheusSeries(w io.Writer, series []SnapshotSeries) error {
	sorted := append([]SnapshotSeries(nil), series...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Name != sorted[j].Name {
			return sorted[i].Name < sorted[j].Name
		}
		return sorted[i].Key < sorted[j].Key
	})
	var b strings.Builder
	prev := ""
	for _, ss := range sorted {
		if ss.Name != prev {
			prev = ss.Name
			if ss.Help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", ss.Name, strings.ReplaceAll(ss.Help, "\n", " "))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", ss.Name, ss.Type)
		}
		switch ss.Type {
		case "histogram":
			var cum uint64
			for i, ub := range ss.Uppers {
				if i < len(ss.Counts) {
					cum += ss.Counts[i]
				}
				le := Label{Key: "le", Value: fmtFloat(ub)}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", ss.Name, renderLabels(ss.Labels, &le), cum)
			}
			le := Label{Key: "le", Value: "+Inf"}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", ss.Name, renderLabels(ss.Labels, &le), ss.Count)
			fmt.Fprintf(&b, "%s_sum%s %s\n", ss.Name, renderLabels(ss.Labels, nil), fmtFloat(ss.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", ss.Name, renderLabels(ss.Labels, nil), ss.Count)
		default:
			fmt.Fprintf(&b, "%s%s %s\n", ss.Name, renderLabels(ss.Labels, nil), fmtFloat(ss.Value))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
