package obs

import (
	"math"
	"sort"
)

// SnapshotSeries is one metric series read out of the registry at a
// point in time — the scrape surface internal/telemetry samples into
// its windowed store. Counter/gauge series carry Value; histogram
// series carry the bucket layout plus per-bucket counts.
type SnapshotSeries struct {
	Name   string
	Help   string
	Type   string // "counter", "gauge", or "histogram"
	Labels []Label
	// Key is the canonical label key (stable identity for the series
	// within its family across scrapes).
	Key string
	// Value is the current counter or gauge value (0 for histograms).
	Value float64
	// Uppers are the histogram's sorted finite bucket upper bounds.
	Uppers []float64
	// Counts are per-bucket observation counts (NOT cumulative),
	// len(Uppers)+1 with the +Inf overflow bucket last.
	Counts []uint64
	// Count and Sum are the histogram's total observations and their sum.
	Count uint64
	Sum   float64
}

// Snapshot reads every series in the registry. The read is per-series
// atomic (each counter/gauge/bucket is an atomic load) but not globally
// consistent — adequate for periodic scraping, where cross-series skew
// is far below the scrape interval. Families and series come out in
// sorted order so successive snapshots align. A nil registry returns
// nil.
func (r *Registry) Snapshot() []SnapshotSeries {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()

	var out []SnapshotSeries
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := f.series[k]
			ss := SnapshotSeries{
				Name: f.name, Help: f.help, Type: f.typ.String(),
				Labels: e.labels, Key: k,
			}
			switch f.typ {
			case counterType:
				ss.Value = e.counter.Value()
			case gaugeType:
				ss.Value = e.gauge.Value()
			case histogramType:
				ss.Uppers, ss.Counts = e.hist.Buckets()
				ss.Count = e.hist.Count()
				ss.Sum = e.hist.Sum()
			}
			out = append(out, ss)
		}
		f.mu.RUnlock()
	}
	return out
}

// Buckets returns the histogram's finite upper bounds and per-bucket
// (non-cumulative) counts; the returned counts slice has one extra
// final element for the +Inf overflow bucket. Nil-safe.
func (h *Histogram) Buckets() (uppers []float64, counts []uint64) {
	if h == nil {
		return nil, nil
	}
	uppers = h.upper // immutable after construction
	counts = make([]uint64, len(h.upper)+1)
	var finite uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		finite += c
	}
	total := h.total.Load()
	if total > finite {
		counts[len(counts)-1] = total - finite
	}
	return uppers, counts
}

// HistogramQuantile estimates the q-quantile (0 < q < 1) of a
// fixed-bucket histogram by linear interpolation within the bucket the
// rank falls in, Prometheus histogram_quantile style. counts are
// per-bucket (non-cumulative) observation counts with the +Inf overflow
// bucket last (len(uppers)+1, as returned by Histogram.Buckets; a
// same-length slice of window DELTAS works identically, which is how
// telemetry estimates windowed p99s). The lower edge of the first
// bucket is 0. When the rank lands in the +Inf bucket the highest
// finite bound is returned (the estimate saturates); an empty
// histogram returns 0.
func HistogramQuantile(q float64, uppers []float64, counts []uint64) float64 {
	if len(counts) == 0 || len(counts) != len(uppers)+1 {
		return 0
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank > next {
			cum = next
			continue
		}
		if i == len(uppers) {
			// Overflow bucket: no finite upper edge to interpolate toward.
			if len(uppers) == 0 {
				return 0
			}
			return uppers[len(uppers)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = uppers[i-1]
		}
		frac := (rank - cum) / float64(c)
		if math.IsNaN(frac) || frac < 0 {
			frac = 0
		}
		return lower + (uppers[i]-lower)*frac
	}
	if len(uppers) == 0 {
		return 0
	}
	return uppers[len(uppers)-1]
}
