package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value dimension on a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// Registry is a concurrent-safe metrics registry. A nil *Registry is a
// valid no-op registry: every method on it (and on the nil instruments
// it hands out) is safe to call and does nothing, so instrumented code
// pays only a nil check when observability is disabled.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*family
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64

	mu     sync.RWMutex
	series map[string]*seriesEntry
}

type seriesEntry struct {
	labels  []Label
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// Nop returns the no-op registry (nil). Instrumented packages take a
// *Registry and treat nil as "observability disabled".
func Nop() *Registry { return nil }

// family returns (creating if needed) the family for name, enforcing
// that a metric name keeps one type for the life of the registry.
func (r *Registry) family(name, help string, typ metricType, buckets []float64) *family {
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		f = r.fams[name]
		if f == nil {
			f = &family{
				name: name, help: help, typ: typ,
				buckets: buckets,
				series:  make(map[string]*seriesEntry),
			}
			r.fams[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

func (f *family) entry(labels []Label) *seriesEntry {
	key := labelKey(labels)
	f.mu.RLock()
	e := f.series[key]
	f.mu.RUnlock()
	if e != nil {
		return e
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if e = f.series[key]; e != nil {
		return e
	}
	e = &seriesEntry{labels: sortedLabels(labels)}
	switch f.typ {
	case counterType:
		e.counter = &Counter{}
	case gaugeType:
		e.gauge = &Gauge{}
	case histogramType:
		e.hist = newHistogram(f.buckets)
	}
	f.series[key] = e
	return e
}

// Counter returns the counter series for name+labels, creating it on
// first use. Help is recorded from the first registration of the name.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, counterType, nil).entry(labels).counter
}

// Gauge returns the gauge series for name+labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, gaugeType, nil).entry(labels).gauge
}

// Histogram returns the histogram series for name+labels. The bucket
// upper bounds come from the first registration of the name; pass nil
// for DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.family(name, help, histogramType, buckets).entry(labels).hist
}

// CounterValue reads a counter's current value for test assertions; it
// returns 0 when the series does not exist.
func (r *Registry) CounterValue(name string, labels ...Label) float64 {
	if e := r.lookup(name, labels); e != nil && e.counter != nil {
		return e.counter.Value()
	}
	return 0
}

// GaugeValue reads a gauge's current value (0 when absent).
func (r *Registry) GaugeValue(name string, labels ...Label) float64 {
	if e := r.lookup(name, labels); e != nil && e.gauge != nil {
		return e.gauge.Value()
	}
	return 0
}

// CounterSum sums every series of a counter family — the family total
// across label values (0 when the family does not exist). Useful when a
// counter gained a label (e.g. error class) but tests or dashboards
// still want the aggregate.
func (r *Registry) CounterSum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil || f.typ != counterType {
		return 0
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	var sum float64
	for _, e := range f.series {
		sum += e.counter.Value()
	}
	return sum
}

// HistogramCount reads a histogram's observation count (0 when absent).
func (r *Registry) HistogramCount(name string, labels ...Label) uint64 {
	if e := r.lookup(name, labels); e != nil && e.hist != nil {
		return e.hist.Count()
	}
	return 0
}

// HistogramSum reads a histogram's observation sum (0 when absent).
func (r *Registry) HistogramSum(name string, labels ...Label) float64 {
	if e := r.lookup(name, labels); e != nil && e.hist != nil {
		return e.hist.Sum()
	}
	return 0
}

func (r *Registry) lookup(name string, labels []Label) *seriesEntry {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	f := r.fams[name]
	r.mu.RUnlock()
	if f == nil {
		return nil
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.series[labelKey(labels)]
}

// Counter is a monotonically increasing float64. Nil-safe. It can hold
// one exemplar — the trace id of the most recent traced increment — so
// a rare-event counter (a hedge fired, a budget ran dry) links straight
// to the triggering trace (see IncExemplar).
type Counter struct {
	bits     atomic.Uint64
	exemplar atomic.Pointer[Exemplar]
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas are ignored to keep monotonicity).
func (c *Counter) Add(d float64) {
	if c == nil || d < 0 {
		return
	}
	addFloat(&c.bits, d)
}

// IncExemplar adds 1 and attaches traceID as the counter's exemplar
// (last write wins, so the exemplar always points at a recent
// triggering trace). An empty traceID degrades to a plain Inc.
func (c *Counter) IncExemplar(traceID string) {
	if c == nil {
		return
	}
	addFloat(&c.bits, 1)
	if traceID != "" {
		c.exemplar.Store(&Exemplar{Value: 1, TraceID: traceID})
	}
}

// Exemplar returns the counter's current exemplar (ok is false when it
// has none).
func (c *Counter) Exemplar() (Exemplar, bool) {
	if c == nil {
		return Exemplar{}, false
	}
	if e := c.exemplar.Load(); e != nil {
		return *e, true
	}
	return Exemplar{}, false
}

// Value returns the current value.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is an arbitrary float64. Nil-safe.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, d)
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket cumulative histogram. Nil-safe. Each
// bucket can additionally hold one exemplar — the trace id of the most
// recent observation that landed in it — so a spiking latency bucket
// links straight to an offending trace (see ObserveExemplar).
type Histogram struct {
	upper     []float64 // sorted upper bounds, excluding +Inf
	counts    []atomic.Uint64
	sumBits   atomic.Uint64
	total     atomic.Uint64
	exemplars []atomic.Pointer[Exemplar] // len(upper)+1; last is +Inf
}

func newHistogram(buckets []float64) *Histogram {
	up := append([]float64(nil), buckets...)
	sort.Float64s(up)
	return &Histogram{
		upper:     up,
		counts:    make([]atomic.Uint64, len(up)),
		exemplars: make([]atomic.Pointer[Exemplar], len(up)+1),
	}
}

// bucketIndex returns the index of the bucket v falls in; len(upper)
// means the implicit +Inf bucket.
func (h *Histogram) bucketIndex(v float64) int {
	for i, ub := range h.upper {
		if v <= ub {
			return i
		}
	}
	return len(h.upper)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if i := h.bucketIndex(v); i < len(h.upper) {
		h.counts[i].Add(1)
	}
	h.total.Add(1)
	addFloat(&h.sumBits, v)
}

// Exemplar links one histogram bucket to the trace that produced its
// most recent observation.
type Exemplar struct {
	// LE is the bucket's upper bound (+Inf for the overflow bucket).
	LE float64
	// Value is the observed sample.
	Value float64
	// TraceID is the hex trace id of the observation's trace.
	TraceID string
}

// ObserveExemplar records one sample and attaches traceID as the
// observation's exemplar in the bucket it lands in (last write wins per
// bucket, so slow buckets always point at a recent slow trace). An
// empty traceID degrades to a plain Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := h.bucketIndex(v)
	if i < len(h.upper) {
		h.counts[i].Add(1)
	}
	h.total.Add(1)
	addFloat(&h.sumBits, v)
	if traceID == "" {
		return
	}
	le := math.Inf(1)
	if i < len(h.upper) {
		le = h.upper[i]
	}
	h.exemplars[i].Store(&Exemplar{LE: le, Value: v, TraceID: traceID})
}

// Exemplars returns the buckets' current exemplars (only buckets that
// have one), ordered by upper bound.
func (h *Histogram) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// CounterExemplar reads a counter series' exemplar (ok is false when
// the series does not exist or holds none).
func (r *Registry) CounterExemplar(name string, labels ...Label) (Exemplar, bool) {
	if e := r.lookup(name, labels); e != nil && e.counter != nil {
		return e.counter.Exemplar()
	}
	return Exemplar{}, false
}

// HistogramExemplars reads a histogram series' bucket exemplars (nil
// when the series does not exist or holds none).
func (r *Registry) HistogramExemplars(name string, labels ...Label) []Exemplar {
	if e := r.lookup(name, labels); e != nil && e.hist != nil {
		return e.hist.Exemplars()
	}
	return nil
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// DefBuckets are latency-oriented default bounds in seconds.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns n bounds starting at start, spaced by width.
func LinearBuckets(start, width float64, n int) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = start + float64(i)*width
	}
	return b
}

// ExponentialBuckets returns n bounds starting at start, each factor
// times the previous.
func ExponentialBuckets(start, factor float64, n int) []float64 {
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// addFloat atomically adds d to the float64 stored as bits in u.
func addFloat(u *atomic.Uint64, d float64) {
	for {
		old := u.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if u.CompareAndSwap(old, nw) {
			return
		}
	}
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by
// label set, histograms expanded into cumulative _bucket/_sum/_count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.fams[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e := f.series[k]
			switch f.typ {
			case counterType:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(e.labels, nil), fmtFloat(e.counter.Value()))
				if ex, ok := e.counter.Exemplar(); ok {
					fmt.Fprintf(&b, "# exemplar %s%s trace_id=%q %s\n",
						f.name, renderLabels(e.labels, nil), ex.TraceID, fmtFloat(ex.Value))
				}
			case gaugeType:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(e.labels, nil), fmtFloat(e.gauge.Value()))
			case histogramType:
				h := e.hist
				var cum uint64
				for i, ub := range h.upper {
					cum += h.counts[i].Load()
					le := Label{Key: "le", Value: fmtFloat(ub)}
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(e.labels, &le), cum)
				}
				le := Label{Key: "le", Value: "+Inf"}
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, renderLabels(e.labels, &le), h.Count())
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, renderLabels(e.labels, nil), fmtFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, renderLabels(e.labels, nil), h.Count())
				// Exemplars ride along as comments (OpenMetrics-style
				// payload, but a 0.0.4-safe line: plain-text parsers skip
				// any # line that is not HELP/TYPE).
				for _, ex := range h.Exemplars() {
					exLE := Label{Key: "le", Value: fmtFloat(ex.LE)}
					fmt.Fprintf(&b, "# exemplar %s_bucket%s trace_id=%q %s\n",
						f.name, renderLabels(e.labels, &exLE), ex.TraceID, fmtFloat(ex.Value))
				}
			}
		}
		f.mu.RUnlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry in Prometheus exposition format; mount it
// at /metrics. A nil registry serves 503.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if !AllowGetHead(w, req) {
			return
		}
		if r == nil {
			http.Error(w, "metrics disabled", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if req.Method == http.MethodHead {
			return
		}
		_ = r.WritePrometheus(w)
	})
}

func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey renders a canonical map key for a label set. The '=' and
// ';' delimiters (and the escape character itself) are backslash-escaped
// inside keys and values, so label content can never collide with the
// encoding: {a="x;b=y"} and {a="x", b="y"} stay distinct series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := sortedLabels(labels)
	var b strings.Builder
	for _, l := range ls {
		keyEscape(&b, l.Key)
		b.WriteByte('=')
		keyEscape(&b, l.Value)
		b.WriteByte(';')
	}
	return b.String()
}

func keyEscape(b *strings.Builder, s string) {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\', '=', ';':
			b.WriteByte('\\')
			b.WriteByte(c)
		default:
			b.WriteByte(c)
		}
	}
}

// SeriesKey renders the canonical series key for a label set — the same
// identity Snapshot reports in SnapshotSeries.Key. Exported so layers
// that synthesize SnapshotSeries outside a registry (the telemetry
// federation rollup) key them consistently.
func SeriesKey(labels ...Label) string { return labelKey(labels) }

// renderLabels renders {k="v",...} with values escaped; extra, when
// non-nil, is appended after the series labels (used for histogram le).
func renderLabels(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	write := func(l Label) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	for _, l := range labels {
		write(l)
	}
	if extra != nil {
		write(*extra)
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}
