package obs

import "net/http"

// AllowGetHead rejects every method but GET and HEAD with 405 (plus an
// Allow header), reporting whether the request may proceed. All pano
// metrics/debug endpoints — /metrics, /debug/slo, /debug/dash,
// /debug/traces, /debug/events, /healthz — share it across binaries so
// method handling stays uniform; handlers that pass must still skip
// their body write on HEAD.
func AllowGetHead(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		return true
	}
	w.Header().Set("Allow", "GET, HEAD")
	http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	return false
}
