package obs

import (
	"context"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Event is one captured log record, flattened for test assertions.
// Group names are joined into the attribute key with dots.
type Event struct {
	Time  time.Time
	Level slog.Level
	Msg   string
	Attrs map[string]any
}

// Attr returns the named attribute (nil when absent).
func (e Event) Attr(key string) any { return e.Attrs[key] }

// Str returns the named attribute rendered as a string ("" when
// absent); convenient for status fields.
func (e Event) Str(key string) string {
	v, ok := e.Attrs[key]
	if !ok {
		return ""
	}
	if s, ok := v.(string); ok {
		return s
	}
	return strings.TrimSpace(slog.AnyValue(v).String())
}

// ring is a fixed-capacity event buffer shared by handler clones.
type ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dropped uint64
	dropCt  *Counter // optional pano_events_dropped_total mirror
}

func (r *ring) add(e Event) {
	r.mu.Lock()
	if r.full {
		// The buffer already wrapped: this write overwrites the oldest
		// retained event — silent telemetry loss, made observable here.
		r.dropped++
		r.dropCt.Inc()
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.next == 0 {
		r.full = true
	}
	r.mu.Unlock()
}

func (r *ring) events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// ringHandler is a slog.Handler capturing records into a ring and
// optionally forwarding them to a second handler (e.g. JSON to stderr).
type ringHandler struct {
	ring   *ring
	attrs  []slog.Attr // accumulated WithAttrs, keys already prefixed
	groups []string
	fwd    slog.Handler
}

func (h *ringHandler) Enabled(context.Context, slog.Level) bool { return true }

func (h *ringHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	c := *h
	c.attrs = append(append([]slog.Attr(nil), h.attrs...), prefixAttrs(h.groups, attrs)...)
	if h.fwd != nil {
		c.fwd = h.fwd.WithAttrs(attrs)
	}
	return &c
}

func (h *ringHandler) WithGroup(name string) slog.Handler {
	c := *h
	c.groups = append(append([]string(nil), h.groups...), name)
	if h.fwd != nil {
		c.fwd = h.fwd.WithGroup(name)
	}
	return &c
}

func (h *ringHandler) Handle(ctx context.Context, rec slog.Record) error {
	e := Event{Time: rec.Time, Level: rec.Level, Msg: rec.Message, Attrs: make(map[string]any)}
	for _, a := range h.attrs {
		e.Attrs[a.Key] = a.Value.Resolve().Any()
	}
	prefix := strings.Join(h.groups, ".")
	rec.Attrs(func(a slog.Attr) bool {
		k := a.Key
		if prefix != "" {
			k = prefix + "." + k
		}
		e.Attrs[k] = a.Value.Resolve().Any()
		return true
	})
	h.ring.add(e)
	if h.fwd != nil {
		return h.fwd.Handle(ctx, rec)
	}
	return nil
}

func prefixAttrs(groups []string, attrs []slog.Attr) []slog.Attr {
	if len(groups) == 0 {
		return attrs
	}
	prefix := strings.Join(groups, ".") + "."
	out := make([]slog.Attr, len(attrs))
	for i, a := range attrs {
		out[i] = slog.Attr{Key: prefix + a.Key, Value: a.Value}
	}
	return out
}

// EventLog is a structured event logger built on log/slog. It keeps the
// most recent events in an in-memory ring buffer for test assertions
// and can mirror records as JSON lines to a writer. A nil *EventLog is
// a valid no-op logger.
type EventLog struct {
	ring   *ring
	logger *slog.Logger
}

// DefaultRingSize is the event capacity used when NewEventLog is given
// a non-positive size.
const DefaultRingSize = 512

// NewEventLog returns an event log retaining the last ringSize events
// (DefaultRingSize if <= 0). When w is non-nil, records are also
// emitted to it in slog's JSON format.
func NewEventLog(w io.Writer, ringSize int) *EventLog {
	if ringSize <= 0 {
		ringSize = DefaultRingSize
	}
	r := &ring{buf: make([]Event, ringSize)}
	var fwd slog.Handler
	if w != nil {
		fwd = slog.NewJSONHandler(w, nil)
	}
	return &EventLog{ring: r, logger: slog.New(&ringHandler{ring: r, fwd: fwd})}
}

// discardHandler drops everything (stand-in for slog.DiscardHandler,
// which needs go >= 1.24).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

var nopLogger = slog.New(discardHandler{})

// Logger returns the underlying *slog.Logger (a discard logger when l
// is nil), so call sites never need a nil check before logging.
func (l *EventLog) Logger() *slog.Logger {
	if l == nil {
		return nopLogger
	}
	return l.logger
}

// Session returns a logger scoped with session attributes (e.g. video
// ID, chunk count, tile count) attached to every subsequent record.
func (l *EventLog) Session(attrs ...any) *slog.Logger {
	return l.Logger().With(attrs...)
}

// Dropped reports how many events the ring buffer has overwritten
// before anything read them — nonzero means the retained window is
// shorter than the burst that produced it. Nil-safe.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.ring.mu.Lock()
	defer l.ring.mu.Unlock()
	return l.ring.dropped
}

// ObserveDrops mirrors ring-buffer overwrites into reg as
// pano_events_dropped_total, so silent event loss is itself a scrapable
// signal. Call once at wiring time; nil receiver or registry is a
// no-op.
func (l *EventLog) ObserveDrops(reg *Registry) {
	if l == nil || reg == nil {
		return
	}
	ct := reg.Counter("pano_events_dropped_total",
		"events overwritten by the ring buffer before being read")
	l.ring.mu.Lock()
	l.ring.dropCt = ct
	l.ring.mu.Unlock()
}

// Events returns the buffered events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	return l.ring.events()
}

// Find returns every buffered event with the given message.
func (l *EventLog) Find(msg string) []Event {
	var out []Event
	for _, e := range l.Events() {
		if e.Msg == msg {
			out = append(out, e)
		}
	}
	return out
}

// Last returns the most recent event with the given message.
func (l *EventLog) Last(msg string) (Event, bool) {
	evs := l.Find(msg)
	if len(evs) == 0 {
		return Event{}, false
	}
	return evs[len(evs)-1], true
}
