package obs

import (
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestEventLogCapturesEvents(t *testing.T) {
	l := NewEventLog(nil, 16)
	l.Logger().Info("chunk_done", "chunk", 3, "bytes", 1024)
	l.Logger().Warn("rebuffer", "seconds", 0.25)

	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("captured %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Msg != "chunk_done" || e.Level != slog.LevelInfo {
		t.Fatalf("event 0 = %+v", e)
	}
	if got, ok := e.Attr("chunk").(int64); !ok || got != 3 {
		t.Fatalf("chunk attr = %v", e.Attr("chunk"))
	}
	if got, ok := l.Last("rebuffer"); !ok || got.Attr("seconds").(float64) != 0.25 {
		t.Fatalf("Last(rebuffer) = %+v ok=%v", got, ok)
	}
}

func TestEventLogSessionScope(t *testing.T) {
	l := NewEventLog(nil, 16)
	sess := l.Session("video", "roller-coaster", "tiles", 30)
	sess.Info("session_start")
	sess.Info("chunk_done", "chunk", 0)

	for _, e := range l.Events() {
		if e.Str("video") != "roller-coaster" {
			t.Fatalf("event %q missing session attr: %+v", e.Msg, e.Attrs)
		}
		if got, ok := e.Attr("tiles").(int64); !ok || got != 30 {
			t.Fatalf("event %q tiles attr = %v", e.Msg, e.Attr("tiles"))
		}
	}
	if e, _ := l.Last("chunk_done"); e.Attr("chunk").(int64) != 0 {
		t.Fatalf("chunk attr lost: %+v", e.Attrs)
	}
}

func TestEventLogGroups(t *testing.T) {
	l := NewEventLog(nil, 8)
	l.Logger().WithGroup("qoe").With("mos", 4).Info("summary", "pspnr", 61.5)
	e, ok := l.Last("summary")
	if !ok {
		t.Fatal("no summary event")
	}
	if got, ok := e.Attr("qoe.mos").(int64); !ok || got != 4 {
		t.Fatalf("grouped With attr = %v (attrs %+v)", e.Attr("qoe.mos"), e.Attrs)
	}
	if got, ok := e.Attr("qoe.pspnr").(float64); !ok || got != 61.5 {
		t.Fatalf("grouped record attr = %v", e.Attr("qoe.pspnr"))
	}
}

func TestEventLogRingWraps(t *testing.T) {
	l := NewEventLog(nil, 4)
	for i := 0; i < 10; i++ {
		l.Logger().Info("e", "i", i)
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(evs))
	}
	// Oldest first: 6,7,8,9.
	for j, e := range evs {
		if got := e.Attr("i").(int64); got != int64(6+j) {
			t.Fatalf("evs[%d].i = %d, want %d", j, got, 6+j)
		}
	}
}

func TestEventLogForwardsJSON(t *testing.T) {
	var b strings.Builder
	l := NewEventLog(&b, 8)
	l.Session("video", "v1").Info("session_summary", "status", "ok")
	line := strings.TrimSpace(b.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("forwarded line not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "session_summary" || rec["status"] != "ok" || rec["video"] != "v1" {
		t.Fatalf("forwarded record = %v", rec)
	}
}

func TestNopEventLog(t *testing.T) {
	var l *EventLog
	l.Logger().Info("ignored", "k", "v") // must not panic
	l.Session("a", 1).Warn("also ignored")
	if evs := l.Events(); evs != nil {
		t.Fatalf("nil log events = %v", evs)
	}
	if _, ok := l.Last("ignored"); ok {
		t.Fatal("nil log retained an event")
	}
}

func TestEventLogConcurrent(t *testing.T) {
	l := NewEventLog(nil, 128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			sess := l.Session("worker", id)
			for i := 0; i < 50; i++ {
				sess.Info("tick", "i", i)
			}
		}(g)
	}
	wg.Wait()
	if got := len(l.Events()); got != 128 {
		t.Fatalf("ring holds %d, want full 128", got)
	}
}
