package obs

import (
	"math"
	"sort"
	"testing"
)

func TestSnapshotReadsEverySeries(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_requests_total", "requests", L("ep", "tile")).Add(7)
	r.Counter("z_requests_total", "requests", L("ep", "manifest")).Add(3)
	r.Gauge("a_buffer_sec", "buffer").Set(2.5)
	h := r.Histogram("m_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("len(snap) = %d, want 4", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool {
		if snap[i].Name != snap[j].Name {
			return snap[i].Name < snap[j].Name
		}
		return snap[i].Key < snap[j].Key
	}) {
		t.Errorf("snapshot not sorted by (name, key)")
	}

	byNameKey := map[string]SnapshotSeries{}
	for _, s := range snap {
		byNameKey[s.Name+"/"+s.Key] = s
	}
	found := 0
	for _, s := range snap {
		switch {
		case s.Name == "a_buffer_sec":
			if s.Type != "gauge" || s.Value != 2.5 {
				t.Errorf("gauge series = %+v", s)
			}
			found++
		case s.Name == "z_requests_total" && len(s.Labels) == 1 && s.Labels[0].Value == "tile":
			if s.Type != "counter" || s.Value != 7 {
				t.Errorf("counter series = %+v", s)
			}
			found++
		case s.Name == "m_latency_seconds":
			if s.Type != "histogram" || s.Count != 3 {
				t.Errorf("histogram series = %+v", s)
			}
			wantCounts := []uint64{1, 1, 1} // <=0.1, <=1, +Inf
			for i, c := range s.Counts {
				if c != wantCounts[i] {
					t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
				}
			}
			if math.Abs(s.Sum-5.55) > 1e-9 {
				t.Errorf("Sum = %v, want 5.55", s.Sum)
			}
			found++
		}
	}
	if found != 3 {
		t.Errorf("matched %d expected series, want 3", found)
	}

	// Key is stable across scrapes: the same series maps to the same key.
	r.Counter("z_requests_total", "requests", L("ep", "tile")).Inc()
	for _, s := range r.Snapshot() {
		if s.Name == "z_requests_total" && s.Labels[0].Value == "tile" {
			prev := byNameKey[s.Name+"/"+s.Key]
			if prev.Key == "" {
				t.Fatalf("series key changed across scrapes")
			}
			if s.Value != 8 {
				t.Errorf("second scrape Value = %v, want 8", s.Value)
			}
		}
	}

	var nilReg *Registry
	if nilReg.Snapshot() != nil {
		t.Errorf("nil registry Snapshot should be nil")
	}
}

func TestHistogramBucketsSnapshot(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 100} {
		h.Observe(v)
	}
	uppers, counts := h.Buckets()
	if len(uppers) != 3 || len(counts) != 4 {
		t.Fatalf("shape = %d uppers / %d counts", len(uppers), len(counts))
	}
	want := []uint64{1, 2, 1, 1}
	for i, c := range counts {
		if c != want[i] {
			t.Errorf("counts[%d] = %d, want %d", i, c, want[i])
		}
	}
	var nilH *Histogram
	if u, c := nilH.Buckets(); u != nil || c != nil {
		t.Errorf("nil histogram Buckets = %v/%v, want nil/nil", u, c)
	}
}

func TestHistogramQuantileKnownDistributions(t *testing.T) {
	uppers := []float64{10, 20, 30, 40}

	// Uniform 0..40: 100 observations spread evenly, 25 per bucket.
	uniform := []uint64{25, 25, 25, 25, 0}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.25, 10}, {0.5, 20}, {0.75, 30}, {1, 40},
		{0.125, 5},  // middle of the first bucket
		{0.875, 35}, // middle of the last bucket
	}
	for _, c := range cases {
		if got := HistogramQuantile(c.q, uppers, uniform); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("uniform q=%v: got %v, want %v", c.q, got, c.want)
		}
	}

	// Skewed: 90 in the first bucket, 10 in the last finite one.
	skew := []uint64{90, 0, 0, 10, 0}
	if got := HistogramQuantile(0.5, uppers, skew); math.Abs(got-10.0/90*50) > 1e-9 {
		t.Errorf("skew p50 = %v, want %v", got, 10.0/90*50)
	}
	if got := HistogramQuantile(0.95, uppers, skew); got <= 30 || got > 40 {
		t.Errorf("skew p95 = %v, want in (30, 40]", got)
	}

	// Overflow saturation: mass in +Inf returns the top finite bound.
	over := []uint64{1, 0, 0, 0, 9}
	if got := HistogramQuantile(0.99, uppers, over); got != 40 {
		t.Errorf("overflow p99 = %v, want 40 (saturated)", got)
	}

	// Degenerate shapes.
	if got := HistogramQuantile(0.5, uppers, []uint64{0, 0, 0, 0, 0}); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	if got := HistogramQuantile(0.5, uppers, []uint64{1, 2}); got != 0 {
		t.Errorf("mismatched lengths quantile = %v, want 0", got)
	}
	if got := HistogramQuantile(-1, uppers, uniform); got != 0 {
		t.Errorf("q<0 = %v, want 0 (clamped to min)", got)
	}
	if got := HistogramQuantile(2, uppers, uniform); got != 40 {
		t.Errorf("q>1 = %v, want 40 (clamped to max)", got)
	}
}

func TestEventLogDropCounter(t *testing.T) {
	reg := NewRegistry()
	l := NewEventLog(nil, 4)
	l.ObserveDrops(reg)
	for i := 0; i < 10; i++ {
		l.Logger().Info("evt", "i", i)
	}
	if got := l.Dropped(); got != 6 {
		t.Errorf("Dropped() = %d, want 6", got)
	}
	if got := reg.CounterValue("pano_events_dropped_total"); got != 6 {
		t.Errorf("pano_events_dropped_total = %v, want 6", got)
	}
	// Without ObserveDrops the ring still counts, just unmirrored.
	l2 := NewEventLog(nil, 2)
	for i := 0; i < 3; i++ {
		l2.Logger().Info("evt")
	}
	if got := l2.Dropped(); got != 1 {
		t.Errorf("unmirrored Dropped() = %d, want 1", got)
	}
	var nilLog *EventLog
	nilLog.ObserveDrops(reg) // must not panic
	if nilLog.Dropped() != 0 {
		t.Errorf("nil log Dropped != 0")
	}
}
