package obs

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// BuildCommit resolves the commit that built the binary: the embedded
// VCS stamp when present (go build from a clean checkout), else git in
// the working directory (go run, tests), else "unknown". The same
// provenance stamps BENCH_*.json files (cmd/pano-bench) and the
// pano_build_info gauge every binary exports.
func BuildCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev, dirty string
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				if s.Value == "true" {
					dirty = "-dirty"
				}
			}
		}
		if rev != "" {
			if len(rev) > 12 {
				rev = rev[:12]
			}
			return rev + dirty
		}
	}
	if out, err := exec.Command("git", "rev-parse", "--short=12", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

// ExportBuildInfo sets the pano_build_info gauge to 1, labelled with
// the building commit and Go version. Every binary calls it right after
// creating its registry, so a federated dashboard can spot version skew
// across edges and origins (the cluster rollup sums the gauge per
// {commit, go_version} pair — the count of instances on each build).
// Nil-safe.
func ExportBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge("pano_build_info",
		"build provenance: constant 1 per process, labelled with the building commit and Go version",
		L("commit", BuildCommit()), L("go_version", runtime.Version())).Set(1)
}
